// Streaming: the paper's motivating scenario — interaction data
// arriving as a transient stream, assimilated into snapshot epochs and
// analyzed online. Each batch of edge events is buffered in a Stream
// and committed into a fresh immutable CSR epoch; readers pin epochs
// lock-free while the maintained kernels (incremental connectivity,
// warm-started PageRank) answer per batch without recomputing from
// scratch. A final pinned epoch feeds the heavier exploratory kernels.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"math/rand"

	"snap"
)

func main() {
	const n = 5000
	const batches = 10
	const perBatch = 2000

	// The "wire": a skewed interaction stream (a few hot entities),
	// with a trickle of retractions.
	rng := rand.New(rand.NewSource(42))
	endpoint := func() int32 {
		if rng.Intn(10) < 3 {
			return int32(rng.Intn(50)) // hot entities
		}
		return int32(rng.Intn(n))
	}

	s, err := snap.NewEmptyStream(n, false, false, snap.StreamOptions{})
	if err != nil {
		panic(err)
	}
	defer s.Close()

	fmt.Printf("%8s %10s %12s %14s %16s\n",
		"batch", "edges", "components", "largest (%)", "top PageRank")
	var recent []snap.Edge
	for b := 1; b <= batches; b++ {
		for i := 0; i < perBatch; i++ {
			u, v := endpoint(), endpoint()
			if u == v {
				continue
			}
			if err := s.Add(u, v); err != nil {
				panic(err)
			}
			recent = append(recent, snap.Edge{U: u, V: v})
		}
		// Occasionally retract a handful of earlier interactions.
		for i := 0; i < 20 && len(recent) > 0; i++ {
			e := recent[rng.Intn(len(recent))]
			if err := s.Delete(e.U, e.V); err != nil {
				panic(err)
			}
		}
		if _, err := s.Commit(); err != nil {
			panic(err)
		}

		// Maintained kernels: connectivity rides the union-find fast
		// path, PageRank warm-starts from the previous epoch's scores.
		lab := s.Components()
		_, largest := lab.Largest()
		pr := s.PageRank(snap.PageRankOptions{})
		top := snap.TopKVertices(pr, 1)

		e := s.Pin()
		fmt.Printf("%8d %10d %12d %13.1f%% %13d\n",
			b, e.Graph().NumEdges(), lab.Count,
			100*float64(largest)/float64(n), top[0])
		e.Close()
	}

	// Pin the final epoch for the heavy exploratory kernels: the
	// snapshot is immutable, so it stays valid even if the stream keeps
	// committing behind it.
	e := s.Pin()
	defer e.Close()
	g := e.Graph()
	fmt.Printf("\nsnapshot (epoch %d): %v\n", e.Seq(), g)
	st := snap.Degrees(g)
	fmt.Printf("degrees: max %d, mean %.2f\n", st.Max, st.Mean)
	pr := s.PageRank(snap.PageRankOptions{})
	top := snap.TopKVertices(pr, 5)
	fmt.Println("most influential entities (PageRank):")
	for rank, v := range top {
		fmt.Printf("  %d. entity %4d  rank %.5f  degree %d\n",
			rank+1, v, pr[v], g.Degree(v))
	}
	ok, d := snap.STConnectivity(g, top[0], top[1])
	fmt.Printf("top-2 entities connected: %v (distance %d)\n", ok, d)
}
