// Streaming: the paper's motivating scenario — interaction data
// arriving as a transient stream, assimilated into a dynamic graph and
// analyzed online: connectivity is tracked incrementally per batch,
// and a CSR snapshot is frozen periodically for the heavier kernels.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"math/rand"

	"snap"
)

func main() {
	const n = 5000
	const batches = 10
	const perBatch = 2000

	// The "wire": a skewed interaction stream (a few hot entities).
	rng := rand.New(rand.NewSource(42))
	endpoint := func() int32 {
		if rng.Intn(10) < 3 {
			return int32(rng.Intn(50)) // hot entities
		}
		return int32(rng.Intn(n))
	}

	dyn := snap.NewDynamic(n, false)
	conn := snap.NewIncrementalConnectivity(n)

	fmt.Printf("%8s %10s %12s %14s %16s\n",
		"batch", "edges", "components", "largest (%)", "hub degree")
	for b := 1; b <= batches; b++ {
		for i := 0; i < perBatch; i++ {
			u, v := endpoint(), endpoint()
			if u == v {
				continue
			}
			if added, err := dyn.AddEdge(u, v); err == nil && added {
				conn.AddEdge(u, v)
			}
		}
		lab := conn.Labeling()
		_, largest := lab.Largest()
		// The treap-backed dynamic graph answers degree queries on the
		// hot vertices without scanning.
		hubDeg := 0
		for v := int32(0); v < 50; v++ {
			if d := dyn.Degree(v); d > hubDeg {
				hubDeg = d
			}
		}
		fmt.Printf("%8d %10d %12d %13.1f%% %16d\n",
			b, dyn.NumEdges(), conn.Components(),
			100*float64(largest)/float64(n), hubDeg)
	}

	// Freeze a snapshot for the heavy exploratory kernels.
	g := snap.FromDynamic(dyn)
	fmt.Printf("\nsnapshot: %v\n", g)
	st := snap.Degrees(g)
	fmt.Printf("degrees: max %d, mean %.2f\n", st.Max, st.Mean)
	pr := snap.PageRank(g, snap.PageRankOptions{})
	top := snap.TopKVertices(pr, 5)
	fmt.Println("most influential entities (PageRank):")
	for rank, v := range top {
		fmt.Printf("  %d. entity %4d  rank %.5f  degree %d\n",
			rank+1, v, pr[v], g.Degree(v))
	}
	ok, d := snap.STConnectivity(g, top[0], top[1])
	fmt.Printf("top-2 entities connected: %v (distance %d)\n", ok, d)
}
