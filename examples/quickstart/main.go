// Quickstart: build a graph, traverse it, and find its communities.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"snap"
)

func main() {
	// Two tight groups of friends joined by a single acquaintance.
	edges := []snap.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}, {U: 0, V: 3},
		{U: 4, V: 5}, {U: 5, V: 6}, {U: 4, V: 6}, {U: 6, V: 7}, {U: 4, V: 7},
		{U: 3, V: 4}, // the bridge
	}
	g, err := snap.Build(8, edges, snap.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:", g)

	// Breadth-first search from vertex 0.
	bfs := snap.BFS(g, 0)
	fmt.Printf("BFS: vertex 7 is %d hops from vertex 0\n", bfs.Dist[7])

	// Connectivity structure.
	cc := snap.ConnectedComponents(g)
	fmt.Printf("connected components: %d\n", cc.Count)
	bi := snap.Biconnected(g)
	fmt.Printf("bridges: %d, articulation points: %v\n",
		len(bi.Bridges()), bi.ArticulationPoints())

	// Which edge carries the most shortest-path traffic?
	bc := snap.Betweenness(g, snap.BetweennessOptions{ComputeEdge: true})
	best := int32(0)
	for id, s := range bc.Edge {
		if s > bc.Edge[best] {
			best = int32(id)
		}
	}
	fmt.Printf("highest-betweenness edge id: %d (score %.1f)\n", best, bc.Edge[best])

	// Community detection with the divisive pBD algorithm.
	clusters, _ := snap.PBD(g, snap.PBDOptions{Seed: 1})
	fmt.Printf("pBD found %d communities with modularity %.3f\n", clusters.Count, clusters.Q)
	for id, members := range clusters.Members() {
		fmt.Printf("  community %d: %v\n", id, members)
	}
}
