// Centrality: the paper's computational-biology use case — rank the
// proteins of a protein-interaction network by betweenness to assess
// lethality, and cross-check with articulation-point analysis
// (low-degree articulation points are unlikely to be essential,
// Bader & Madduri, HiCOMB 2007).
//
//	go run ./examples/centrality
package main

import (
	"fmt"
	"time"

	"snap"
	"snap/internal/datasets"
)

func main() {
	net, err := datasets.ByLabel("PPI")
	if err != nil {
		panic(err)
	}
	g := net.Build(1)
	fmt.Println("protein interaction network:", g)

	st := snap.Degrees(g)
	fmt.Printf("degrees: min %d, max %d, mean %.1f\n", st.Min, st.Max, st.Mean)
	fmt.Printf("assortativity: %+.3f (biological networks are disassortative)\n",
		snap.Assortativity(g))

	// Exact betweenness would need n traversals; the adaptive-sampling
	// estimator ranks the high-centrality proteins at ~5% of the cost.
	start := time.Now()
	approx := snap.ApproxBetweenness(g, snap.ApproxOptions{Seed: 3, ComputeVertex: true})
	fmt.Printf("\napproximate betweenness: %d of %d sources sampled, %.2fs\n",
		approx.Sources, g.NumVertices(), time.Since(start).Seconds())

	fmt.Println("most central proteins (lethality candidates):")
	for rank, v := range snap.TopKVertices(approx.Vertex, 10) {
		fmt.Printf("  %2d. protein %6d  BC %.3g  degree %d\n",
			rank+1, v, approx.Vertex[v], g.Degree(v))
	}

	// Articulation-point analysis: cut proteins whose removal
	// disconnects pathway groups.
	bi := snap.Biconnected(g)
	arts := bi.ArticulationPoints()
	lowDeg := 0
	for _, v := range arts {
		if g.Degree(v) <= 3 {
			lowDeg++
		}
	}
	fmt.Printf("\narticulation points: %d (of which %d low-degree: unlikely essential)\n",
		len(arts), lowDeg)
	fmt.Printf("bridges: %d\n", len(bi.Bridges()))

	// Closeness of the top hub for comparison.
	hub := snap.TopKVertices(snap.DegreeCentrality(g), 1)[0]
	fmt.Printf("\nhighest-degree protein: %d (degree %d)\n", hub, g.Degree(hub))
}
