// Partitioning: the paper's Table 1 phenomenon in miniature — the
// same partitioners produce small cuts on a near-Euclidean road
// network and give dramatically worse cuts on equal-sized random and
// small-world graphs, because small-world topology simply has no
// small balanced cuts.
//
//	go run ./examples/partitioning
package main

import (
	"fmt"

	"snap"
)

func main() {
	const k = 8
	road := snap.RoadMesh(100, 100, 0.12, 1)
	random := snap.ErdosRenyi(road.NumVertices(), 50000, 2)
	small := snap.RMAT(road.NumVertices(), 50000, snap.DefaultRMAT(), 3)

	fmt.Printf("%d-way partitioning, three graph families:\n\n", k)
	fmt.Printf("%-14s %8s %8s %12s %12s %10s\n",
		"family", "n", "m", "kway cut", "spectral cut", "cut %")
	for _, inst := range []struct {
		label string
		g     *snap.Graph
	}{
		{"road mesh", road},
		{"sparse random", random},
		{"small-world", small},
	} {
		kway, err := snap.MultilevelKWay(inst.g, k, snap.MultilevelOptions{Seed: 1})
		if err != nil {
			panic(err)
		}
		spectralCell := "-"
		if res, err := snap.SpectralRQI(inst.g, k, snap.SpectralOptions{Seed: 1}); err == nil {
			spectralCell = fmt.Sprint(res.EdgeCut)
		}
		fmt.Printf("%-14s %8d %8d %12d %12s %9.1f%%\n",
			inst.label, inst.g.NumVertices(), inst.g.NumEdges(),
			kway.EdgeCut, spectralCell,
			100*float64(kway.EdgeCut)/float64(inst.g.NumEdges()))
	}

	fmt.Println("\nThe road mesh cuts a tiny fraction of its edges; the small-world")
	fmt.Println("graph loses a large constant fraction no matter the partitioner —")
	fmt.Println("which is why SNAP optimizes modularity instead of balanced cuts")
	fmt.Println("for community detection on small-world networks.")
}
