// Communities: explore an organization's e-mail network the way the
// paper's Section 4 does — run all four modularity-maximization
// algorithms, compare their trade-offs, and inspect the divisive
// dendrogram trajectory.
//
//	go run ./examples/communities
package main

import (
	"fmt"
	"sort"
	"time"

	"snap"
	"snap/internal/datasets"
)

func main() {
	// An URV-e-mail-like network (n=1133, m~5451): a deterministic
	// surrogate with the same size and community strength.
	net, err := datasets.ByLabel("E-mail")
	if err != nil {
		panic(err)
	}
	g := net.Build(1)
	fmt.Println("e-mail network:", g)

	type result struct {
		name string
		c    snap.Clustering
		dur  time.Duration
	}
	var results []result
	run := func(name string, f func() snap.Clustering) {
		start := time.Now()
		c := f()
		results = append(results, result{name, c, time.Since(start)})
	}

	run("pMA (agglomerative)", func() snap.Clustering {
		c, _ := snap.PMA(g, snap.PMAOptions{StopWhenNegative: true})
		return c
	})
	run("pLA (local aggregation)", func() snap.Clustering {
		return snap.PLA(g, snap.PLAOptions{Seed: 7})
	})
	var dend *snap.Dendrogram
	run("pBD (divisive, approx BC)", func() snap.Clustering {
		c, d := snap.PBD(g, snap.PBDOptions{Seed: 7, UseBridgeHeuristic: true, Patience: 800})
		dend = d
		return c
	})

	fmt.Println("\nalgorithm comparison:")
	for _, r := range results {
		fmt.Printf("  %-28s Q=%.3f  communities=%-4d  %7.2fs\n",
			r.name, r.c.Q, r.c.Count, r.dur.Seconds())
	}

	// Inspect the divisive trajectory: where did modularity peak?
	fmt.Printf("\npBD dendrogram: %d events, best Q %.3f at step %d\n",
		dend.Len(), dend.BestQ, dend.BestStep)

	// Zoom into the best clustering: the largest communities.
	best := dend.Best()
	sizes := best.Sizes()
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	top := sizes
	if len(top) > 8 {
		top = top[:8]
	}
	fmt.Printf("largest communities: %v\n", top)

	// Polish with local moves (never decreases Q).
	polished := snap.RefineClustering(g, best, 8, 7)
	fmt.Printf("after refinement: Q=%.3f, communities=%d\n", polished.Q, polished.Count)
}
