package snap

// Benchmarks mirroring the paper's evaluation: one group per table and
// figure. These run the same code paths as cmd/snap-bench at sizes
// suitable for `go test -bench=.`; the cmd binary regenerates the full
// tables with paper-vs-measured output (see EXPERIMENTS.md).

import (
	"testing"

	"snap/internal/bfs"
	"snap/internal/centrality"
	"snap/internal/community"
	"snap/internal/datasets"
	"snap/internal/frontier"
	"snap/internal/generate"
	"snap/internal/graph"
	"snap/internal/metrics"
	"snap/internal/partition"
)

// --- Table 1: partitioning the three graph families ---

const (
	t1N = 10000
	t1M = 50000
	t1K = 8
)

func table1Road() *graph.Graph {
	return generate.RoadMesh(100, 100, 0.12, 1)
}

func table1Random() *graph.Graph {
	return generate.ErdosRenyi(t1N, t1M, 2)
}

func table1SmallWorld() *graph.Graph {
	return generate.RMAT(t1N, t1M, generate.DefaultRMAT(), 3)
}

func benchPartition(b *testing.B, g *graph.Graph, method string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		switch method {
		case "kway":
			_, err = partition.MultilevelKWay(g, t1K, partition.MultilevelOptions{Seed: int64(i)})
		case "recur":
			_, err = partition.MultilevelRecursive(g, t1K, partition.MultilevelOptions{Seed: int64(i)})
		case "rqi":
			_, err = partition.SpectralRQI(g, t1K, partition.SpectralOptions{Seed: int64(i)})
		case "lanczos":
			_, err = partition.SpectralLanczos(g, t1K, partition.SpectralOptions{Seed: int64(i)})
		}
		if err != nil && err != partition.ErrNoConvergence {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_Road_MetisKway(b *testing.B)    { benchPartition(b, table1Road(), "kway") }
func BenchmarkTable1_Road_MetisRecur(b *testing.B)   { benchPartition(b, table1Road(), "recur") }
func BenchmarkTable1_Road_ChacoRQI(b *testing.B)     { benchPartition(b, table1Road(), "rqi") }
func BenchmarkTable1_Road_ChacoLAN(b *testing.B)     { benchPartition(b, table1Road(), "lanczos") }
func BenchmarkTable1_Random_MetisKway(b *testing.B)  { benchPartition(b, table1Random(), "kway") }
func BenchmarkTable1_Random_MetisRecur(b *testing.B) { benchPartition(b, table1Random(), "recur") }
func BenchmarkTable1_SmallWorld_MetisKway(b *testing.B) {
	benchPartition(b, table1SmallWorld(), "kway")
}
func BenchmarkTable1_SmallWorld_ChacoRQI(b *testing.B) {
	benchPartition(b, table1SmallWorld(), "rqi")
}

// --- Table 2: modularity algorithms on the benchmark networks ---

func table2Email() *graph.Graph {
	net, err := datasets.ByLabel("E-mail")
	if err != nil {
		panic(err)
	}
	return net.Build(0.5)
}

func BenchmarkTable2_GN_Karate(b *testing.B) {
	g := datasets.Karate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		community.GirvanNewman(g, community.GNOptions{})
	}
}

func BenchmarkTable2_GN_Email(b *testing.B) {
	g := table2Email()
	for i := 0; i < b.N; i++ {
		community.GirvanNewman(g, community.GNOptions{Patience: 300})
	}
}

func BenchmarkTable2_PBD_Email(b *testing.B) {
	g := table2Email()
	for i := 0; i < b.N; i++ {
		community.PBD(g, community.PBDOptions{Seed: int64(i), Patience: 300})
	}
}

func BenchmarkTable2_PMA_Email(b *testing.B) {
	g := table2Email()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		community.PMA(g, community.PMAOptions{StopWhenNegative: true})
	}
}

func BenchmarkTable2_PLA_Email(b *testing.B) {
	g := table2Email()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		community.PLA(g, community.PLAOptions{Seed: int64(i)})
	}
}

// --- Figure 2: scaling workload on RMAT-SF ---

func figure2Graph() *graph.Graph {
	net, err := datasets.ByLabel("RMAT-SF")
	if err != nil {
		panic(err)
	}
	return net.Build(0.01)
}

func BenchmarkFigure2_PBD_RMATSF(b *testing.B) {
	g := figure2Graph()
	for i := 0; i < b.N; i++ {
		community.PBD(g, community.PBDOptions{
			Seed: int64(i), SampleFraction: 0.02, SwitchThreshold: 128,
			RefreshInterval: 64, Patience: 100, MaxRemovals: 500,
		})
	}
}

func BenchmarkFigure2_PMA_RMATSF(b *testing.B) {
	g := figure2Graph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		community.PMA(g, community.PMAOptions{StopWhenNegative: true})
	}
}

func BenchmarkFigure2_PLA_RMATSF(b *testing.B) {
	g := figure2Graph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		community.PLA(g, community.PLAOptions{Seed: int64(i)})
	}
}

// --- Figure 3(a): pBD vs one GN removal on PPI ---

func figure3PPI() *graph.Graph {
	net, err := datasets.ByLabel("PPI")
	if err != nil {
		panic(err)
	}
	return net.Build(0.25)
}

func BenchmarkFigure3a_PBD_PPI(b *testing.B) {
	g := figure3PPI()
	for i := 0; i < b.N; i++ {
		community.PBD(g, community.PBDOptions{
			Seed: int64(i), SampleFraction: 0.02, SwitchThreshold: 128,
			RefreshInterval: 64, Patience: 200,
		})
	}
}

func BenchmarkFigure3a_GNRemoval_PPI(b *testing.B) {
	g := figure3PPI()
	for i := 0; i < b.N; i++ {
		community.GirvanNewman(g, community.GNOptions{MaxRemovals: 1})
	}
}

// --- Figure 3(b): agglomerative algorithms on Citations ---

func figure3Citations() *graph.Graph {
	net, err := datasets.ByLabel("Citations")
	if err != nil {
		panic(err)
	}
	return net.Build(0.1)
}

func BenchmarkFigure3b_PMA_Citations(b *testing.B) {
	g := figure3Citations()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		community.PMA(g, community.PMAOptions{StopWhenNegative: true})
	}
}

func BenchmarkFigure3b_PLA_Citations(b *testing.B) {
	g := figure3Citations()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		community.PLA(g, community.PLAOptions{Seed: int64(i)})
	}
}

// --- Supporting kernels (the SNAP "building blocks") ---

func BenchmarkKernel_ModularityEval(b *testing.B) {
	g := generate.RMAT(1<<15, 1<<17, generate.DefaultRMAT(), 1)
	assign := make([]int32, g.NumVertices())
	for v := range assign {
		assign[v] = int32(v % 64)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		community.Modularity(g, assign, 0)
	}
}

func BenchmarkKernel_ApproxBetweennessEdge(b *testing.B) {
	g := generate.RMAT(1<<13, 1<<15, generate.DefaultRMAT(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApproxBetweenness(g, ApproxOptions{Seed: int64(i), ComputeEdge: true})
	}
}

// --- Workspace group: allocation-regression benchmarks for the
// epoch-stamped traversal workspaces (multi-source BFS hot paths).
// Run with -benchmem; allocs/op is the tracked regression metric.

func workspaceGraph() *graph.Graph {
	return generate.RMAT(1<<12, 1<<14, generate.DefaultRMAT(), 7)
}

func workspaceSources(n, k int) []int32 {
	sources := make([]int32, k)
	for i := range sources {
		sources[i] = int32(i * (n / k))
	}
	return sources
}

func BenchmarkWorkspaceCloseness(b *testing.B) {
	g := workspaceGraph()
	sources := workspaceSources(g.NumVertices(), 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		centrality.Closeness(g, centrality.ClosenessOptions{Sources: sources})
	}
}

func BenchmarkWorkspaceDiameter(b *testing.B) {
	g := workspaceGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.Diameter(g)
	}
}

func BenchmarkWorkspaceMultiSource(b *testing.B) {
	g := workspaceGraph()
	sources := workspaceSources(g.NumVertices(), 64)
	totals := make([]int64, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bfs.MultiSourceWorkspace(g, sources, -1, 16, func(w, _ int, ws *bfs.Workspace) {
			totals[w] += int64(ws.Reached())
		})
	}
}

// BenchmarkWorkspaceMultiSourceLegacy measures the deprecated
// compatibility wrapper, which materializes a dense Result per source
// and serializes visit — the pre-workspace allocation behavior, kept
// deliberately as the regression baseline (the last sanctioned caller
// of bfs.MultiSource in this tree).
func BenchmarkWorkspaceMultiSourceLegacy(b *testing.B) {
	g := workspaceGraph()
	sources := workspaceSources(g.NumVertices(), 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var total int64
		bfs.MultiSource(g, sources, -1, 0, func(_ int, r bfs.Result) {
			total += int64(r.Reached())
		})
	}
}

// --- Frontier group: direction-optimizing engine vs always-top-down.
// On the small-world RMAT graph the bottom-up middle levels should win;
// on the high-diameter RoadMesh the frontier never gets dense enough to
// switch, so direction-optimizing must stay within noise of top-down.
// Run with -benchmem; numbers are recorded in EXPERIMENTS.md.

func frontierRMAT() *graph.Graph {
	return generate.RMAT(1<<14, 1<<16, generate.DefaultRMAT(), 11)
}

func frontierRoadMesh() *graph.Graph {
	return generate.RoadMesh(128, 128, 0.05, 11)
}

// frontierSource picks the max-degree vertex, guaranteed inside the
// giant component on both families.
func frontierSource(g *graph.Graph) int32 {
	src := int32(0)
	for v := int32(1); int(v) < g.NumVertices(); v++ {
		if g.Degree(v) > g.Degree(src) {
			src = v
		}
	}
	return src
}

func benchFrontier(b *testing.B, g *graph.Graph, alpha float64) {
	src := frontierSource(g)
	e := frontier.AcquireEngine(g.NumVertices())
	defer frontier.ReleaseEngine(e)
	opt := frontier.Options{Workers: 1, MaxDepth: -1, Alpha: alpha}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunOptions(g, src, opt)
	}
}

func BenchmarkFrontierTopDown_RMAT(b *testing.B) { benchFrontier(b, frontierRMAT(), 0) }

func BenchmarkFrontierDirOpt_RMAT(b *testing.B) {
	benchFrontier(b, frontierRMAT(), frontier.DefaultAlpha)
}

func BenchmarkFrontierTopDown_RoadMesh(b *testing.B) { benchFrontier(b, frontierRoadMesh(), 0) }

func BenchmarkFrontierDirOpt_RoadMesh(b *testing.B) {
	benchFrontier(b, frontierRoadMesh(), frontier.DefaultAlpha)
}

// BenchmarkWorkspaceSerialClosenessBaseline is the pre-change closeness
// inner loop — one freshly allocated bfs.Serial per source — kept so
// the allocation win of the workspace path stays visible in-tree.
func BenchmarkWorkspaceSerialClosenessBaseline(b *testing.B) {
	g := workspaceGraph()
	sources := workspaceSources(g.NumVertices(), 64)
	out := make([]float64, g.NumVertices())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range sources {
			r := bfs.Serial(g, v, nil)
			var total int64
			for _, d := range r.Dist {
				if d > 0 {
					total += int64(d)
				}
			}
			if total > 0 {
				out[v] = 1 / float64(total)
			}
		}
	}
}
