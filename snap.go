// Package snap is SNAP-Go: a parallel framework for small-world
// network analysis and partitioning, reproducing Bader & Madduri,
// "SNAP, Small-world Network Analysis and Partitioning" (IPDPS 2008).
//
// The package is a facade over the internal kernel packages and is the
// supported public API:
//
//   - Graph construction: Build, NewDynamic, ReadEdgeList, generators
//     (RMAT, ErdosRenyi, RoadMesh, WattsStrogatz, ...).
//   - Graph kernels: BFS, ConnectedComponents, Biconnected, MST,
//     ShortestPaths.
//   - Centrality: Degree, Closeness, Betweenness (exact and
//     adaptive-sampling approximate, vertex and edge).
//   - Network metrics: clustering coefficients, assortativity,
//     rich-club, average path length.
//   - Approximate analytics: ApproxNeighborhood (HyperANF),
//     EffectiveDiameter, SampledCloseness, NewDistanceOracle.
//   - Community detection: GirvanNewman, PBD, PMA, PLA, Modularity.
//   - Partitioning: Partition (parallel multilevel k-way),
//     MultilevelRecursive, SpectralRQI, SpectralLanczos, EdgeCut —
//     and the blocked layout it enables: BlockedPerm, Relabel,
//     NewSharded (shard-local BFS/PageRank).
//
// Parallelism: every kernel obeys GOMAXPROCS (or an explicit Workers
// option). See DESIGN.md for the architecture and EXPERIMENTS.md for
// the paper-reproduction results.
package snap

import (
	"context"
	"io"

	"snap/internal/bfs"
	"snap/internal/centrality"
	"snap/internal/community"
	"snap/internal/components"
	"snap/internal/generate"
	"snap/internal/graph"
	"snap/internal/graph/container"
	"snap/internal/ingest"
	"snap/internal/metrics"
	"snap/internal/partition"
	"snap/internal/shard"
	"snap/internal/sketch"
	"snap/internal/sssp"
)

// Graph is the immutable CSR graph at the heart of SNAP.
type Graph = graph.Graph

// ErrGraphClosed is returned by operations on a graph whose backing
// storage has been released with Close (for example an unmapped SNP2
// container). Long-lived services should check Graph.Closed — or just
// propagate this error — rather than risk a fault on unmapped pages.
var ErrGraphClosed = graph.ErrClosed

// Edge is an input edge for graph construction.
type Edge = graph.Edge

// BuildOptions controls CSR construction. SumWeights makes duplicate
// edges accumulate their weights (in input order) instead of keeping
// the first; AllowMulti keeps parallel edges distinct.
type BuildOptions = graph.BuildOptions

// Dynamic is the mutable graph with treap-backed high-degree
// adjacencies.
type Dynamic = graph.Dynamic

// Build constructs a CSR graph from an edge list. Large inputs are
// assembled by a parallel counting-sort pipeline (validate, histogram,
// scatter, per-vertex sort/dedup); the result is bit-identical for any
// worker count, and identical to the serial builder used below the
// size threshold.
func Build(n int, edges []Edge, opt BuildOptions) (*Graph, error) {
	return graph.Build(n, edges, opt)
}

// NewDynamic returns an empty dynamic graph with n vertices.
func NewDynamic(n int, directed bool) *Dynamic { return graph.NewDynamic(n, directed) }

// FromDynamic freezes a dynamic graph into CSR form.
func FromDynamic(d *Dynamic) (*Graph, error) { return d.ToCSR() }

// Undirected returns g or its symmetrized copy when g is directed.
// Symmetrization merges each vertex's out- and in-adjacency runs
// straight from the CSR (no intermediate edge list), keeping the
// lowest edge id when antiparallel arcs collapse.
func Undirected(g *Graph) *Graph { return graph.Undirected(g) }

// Reverse returns the in-adjacency (transposed) CSR of a directed
// graph, preserving per-arc edge ids and weights. The transpose is what
// lets direction-optimizing BFS run bottom-up steps on directed graphs
// (pass it via BFSOptions.Reverse). Undirected graphs are returned
// unchanged.
func Reverse(g *Graph) *Graph { return graph.Reverse(g) }

// ReadEdgeList parses the text edge-list interchange format. Large
// inputs are split at newline boundaries and parsed by parallel
// shards; errors report the same line numbers as a serial scan.
func ReadEdgeList(r io.Reader, directed bool) (*Graph, error) {
	return graph.ReadEdgeList(r, directed)
}

// WriteEdgeList writes the text edge-list interchange format.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// ReadBinary reads the compact binary CSR snapshot format (SNP1).
func ReadBinary(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// WriteBinary writes the compact binary CSR snapshot format (SNP1).
func WriteBinary(w io.Writer, g *Graph) error { return graph.WriteBinary(w, g) }

// ContainerOptions controls SNP2 container writes; Compress selects the
// varint delta-encoded adjacency section (about half the raw
// adjacency bytes, paid for by a parallel decode at load).
type ContainerOptions = container.Options

// MapLoadOptions controls SNP2 loads. ForceCopy materializes the graph
// on the heap instead of aliasing the mapping; Validate runs the full
// structural check after the O(n) header/offset validation that every
// load performs.
type MapLoadOptions = container.LoadOptions

// WriteContainer writes g as an SNP2 binary CSR container, the
// page-aligned format MapBinary loads without copying.
func WriteContainer(path string, g *Graph, opt ContainerOptions) error {
	return container.Save(path, g, opt)
}

// MapBinary memory-maps an SNP2 container: the returned graph's CSR
// slices alias the read-only mapping, so loads are O(1) in allocations
// and pages fault in on first touch. Call Close when done; a finalizer
// backstops leaked graphs. Compressed containers decode their
// adjacency onto the heap at load; the other sections still alias the
// mapping.
func MapBinary(path string) (*Graph, error) {
	return container.Load(path, container.LoadOptions{})
}

// MapBinaryOptions is MapBinary with explicit load options.
func MapBinaryOptions(path string, opt MapLoadOptions) (*Graph, error) {
	return container.Load(path, opt)
}

// EncodeContainer writes the SNP2 byte stream to w (Save without the
// file); DecodeContainer is its inverse over an in-memory image.
func EncodeContainer(w io.Writer, g *Graph, opt ContainerOptions) error {
	return container.Encode(w, g, opt)
}

// DecodeContainer parses an SNP2 image already in memory. The returned
// graph aliases data unless opt.ForceCopy is set; data must stay live
// and unmodified for the graph's lifetime.
func DecodeContainer(data []byte, opt MapLoadOptions) (*Graph, error) {
	return container.Decode(data, opt)
}

// Generators.

// RMATParams are the R-MAT quadrant probabilities.
type RMATParams = generate.RMATParams

// DefaultRMAT returns the standard skewed R-MAT parameters.
func DefaultRMAT() RMATParams { return generate.DefaultRMAT() }

// RMAT generates an undirected R-MAT small-world graph.
func RMAT(n, m int, p RMATParams, seed int64) *Graph { return generate.RMAT(n, m, p, seed) }

// ErdosRenyi generates a sparse uniform random graph with m edges.
func ErdosRenyi(n, m int, seed int64) *Graph { return generate.ErdosRenyi(n, m, seed) }

// RoadMesh generates a road-network-like 2-D mesh.
func RoadMesh(rows, cols int, extra float64, seed int64) *Graph {
	return generate.RoadMesh(rows, cols, extra, seed)
}

// WattsStrogatz generates the classic rewired-ring small-world graph.
func WattsStrogatz(n, k int, beta float64, seed int64) *Graph {
	return generate.WattsStrogatz(n, k, beta, seed)
}

// PlantedPartition generates the planted community benchmark, returning
// the graph and ground-truth assignment.
func PlantedPartition(k, csize int, pin, pout float64, seed int64) (*Graph, []int32) {
	return generate.PlantedPartition(k, csize, pin, pout, seed)
}

// PreferentialAttachment generates a Barabási–Albert power-law graph.
func PreferentialAttachment(n, k int, seed int64) *Graph {
	return generate.PreferentialAttachment(n, k, seed)
}

// Kernels.

// BFSResult is a breadth-first tree (hop distances and parents).
type BFSResult = bfs.Result

// BFS runs the lock-free level-synchronous parallel BFS from src.
func BFS(g *Graph, src int32) BFSResult {
	return bfs.Parallel(g, src, bfs.Options{DegreeAware: true})
}

// BFSSerial runs the serial reference BFS.
func BFSSerial(g *Graph, src int32) BFSResult { return bfs.Serial(g, src, nil) }

// BFSOptions tunes the shared frontier engine behind the BFS entry
// points: worker count, degree-aware frontier partitioning, the
// direction-optimizing Alpha/Beta switch thresholds, and the reverse
// (in-adjacency) graph that enables bottom-up steps on directed graphs.
type BFSOptions = bfs.Options

// BFSWithOptions runs the direction-optimizing BFS with explicit
// engine tuning. Alpha <= 0 selects the default switch threshold;
// set Beta to tune when the traversal returns to top-down.
func BFSWithOptions(g *Graph, src int32, opt BFSOptions) BFSResult {
	return bfs.DirectionOptimizing(g, src, opt)
}

// BFSContext is BFSWithOptions with cooperative cancellation: the
// context is polled once per frontier level (on top of any Cancel
// already in opt), and a cancelled or expired context aborts the
// traversal at the next level boundary and returns ctx.Err(). The
// partial result is discarded — callers that want partial traversals
// should bound the work with BFSOptions.MaxDepth instead.
func BFSContext(ctx context.Context, g *Graph, src int32, opt BFSOptions) (BFSResult, error) {
	if err := ctx.Err(); err != nil {
		return BFSResult{}, err
	}
	prev := opt.Cancel
	opt.Cancel = func() bool {
		return ctx.Err() != nil || (prev != nil && prev())
	}
	res := bfs.DirectionOptimizing(g, src, opt)
	if err := ctx.Err(); err != nil {
		return BFSResult{}, err
	}
	return res, nil
}

// BFSWorkspace is reusable epoch-stamped BFS state: resetting between
// sources is O(1), so multi-source traversal loops run allocation-free.
// Not safe for concurrent use; acquire one per goroutine.
type BFSWorkspace = bfs.Workspace

// AcquireBFSWorkspace returns a pooled traversal workspace sized for n
// vertices. Release it with ReleaseBFSWorkspace when done.
func AcquireBFSWorkspace(n int) *BFSWorkspace { return bfs.AcquireWorkspace(n) }

// ReleaseBFSWorkspace returns a workspace to the shared pool.
func ReleaseBFSWorkspace(ws *BFSWorkspace) { bfs.ReleaseWorkspace(ws) }

// BFSMultiSource runs one BFS per source with per-worker reusable
// workspaces; visit is called concurrently (stable worker ids, each
// source index exactly once). maxDepth < 0 means unlimited.
func BFSMultiSource(g *Graph, sources []int32, maxDepth int32, visit func(worker, i int, ws *BFSWorkspace)) {
	bfs.MultiSourceWorkspace(g, sources, maxDepth, 0, visit)
}

// Components is a partition of the vertices into connected components.
type Components = components.Labeling

// ConnectedComponents computes connected components (parallel label
// propagation).
func ConnectedComponents(g *Graph) Components {
	return components.ConnectedParallel(g, nil, 0)
}

// BiconnectedResult holds articulation points, bridges, and the
// edge partition into biconnected components.
type BiconnectedResult = components.BiCC

// Biconnected decomposes g into biconnected components.
func Biconnected(g *Graph) BiconnectedResult { return components.Biconnected(g) }

// MSTResult is a minimum spanning forest.
type MSTResult = components.MST

// MST computes a minimum spanning forest with parallel Borůvka rounds.
func MST(g *Graph) MSTResult { return components.BoruvkaMST(g, 0) }

// SSSPResult holds single-source shortest-path distances and parents.
type SSSPResult = sssp.Result

// ShortestPaths computes SSSP with parallel delta-stepping at the
// default bucket width and worker count. Use DeltaStepping to tune
// either, or an SSSPWorkspace for allocation-free multi-source loops.
func ShortestPaths(g *Graph, src int32) SSSPResult {
	return sssp.DeltaStepping(g, src, sssp.DeltaSteppingOptions{})
}

// DeltaSteppingOptions tunes the bucket width (Delta) and parallelism
// (Workers) of the delta-stepping engine; the zero value selects the
// maxWeight/avgDegree heuristic and the full worker pool.
type DeltaSteppingOptions = sssp.DeltaSteppingOptions

// DeltaStepping computes SSSP with the lock-free parallel
// delta-stepping engine under explicit options. Dist is bit-identical
// to Dijkstra for any delta and worker count; unweighted graphs
// degenerate to the direction-optimizing BFS engine.
func DeltaStepping(g *Graph, src int32, opt DeltaSteppingOptions) SSSPResult {
	return sssp.DeltaStepping(g, src, opt)
}

// DeltaSteppingContext is DeltaStepping with cooperative cancellation:
// the context is polled at every bucket-phase boundary (on top of any
// Cancel already in opt), and a cancelled or expired context aborts
// the run and returns ctx.Err(). An aborted delta-stepping run never
// finalizes its tentative distances, so no partial result is returned.
func DeltaSteppingContext(ctx context.Context, g *Graph, src int32, opt DeltaSteppingOptions) (SSSPResult, error) {
	if err := ctx.Err(); err != nil {
		return SSSPResult{}, err
	}
	prev := opt.Cancel
	opt.Cancel = func() bool {
		return ctx.Err() != nil || (prev != nil && prev())
	}
	res := sssp.DeltaStepping(g, src, opt)
	if err := ctx.Err(); err != nil {
		return SSSPResult{}, err
	}
	return res, nil
}

// SSSPWorkspace is the reusable state of the delta-stepping engine:
// repeated sources on one graph allocate nothing once warm. Not safe
// for concurrent use; acquire one per goroutine.
type SSSPWorkspace = sssp.Workspace

// AcquireSSSPWorkspace returns a pooled delta-stepping workspace.
// Release it with ReleaseSSSPWorkspace when done.
func AcquireSSSPWorkspace() *SSSPWorkspace { return sssp.AcquireWorkspace() }

// ReleaseSSSPWorkspace returns a workspace to the shared pool.
func ReleaseSSSPWorkspace(ws *SSSPWorkspace) { sssp.ReleaseWorkspace(ws) }

// Dijkstra computes SSSP with the serial reference algorithm.
func Dijkstra(g *Graph, src int32) SSSPResult { return sssp.Dijkstra(g, src) }

// Centrality.

// CentralityScores holds vertex and/or edge betweenness scores.
type CentralityScores = centrality.Scores

// BetweennessOptions configures betweenness computation.
type BetweennessOptions = centrality.BetweennessOptions

// Betweenness computes exact betweenness centrality (Brandes).
func Betweenness(g *Graph, opt BetweennessOptions) CentralityScores {
	return centrality.Betweenness(g, opt)
}

// ApproxOptions configures adaptive-sampling approximate betweenness.
type ApproxOptions = centrality.ApproxOptions

// ApproxBetweenness estimates betweenness by adaptive sampling.
func ApproxBetweenness(g *Graph, opt ApproxOptions) CentralityScores {
	return centrality.ApproxBetweenness(g, opt)
}

// DegreeCentrality returns per-vertex degree scores.
func DegreeCentrality(g *Graph) []float64 { return centrality.DegreeCentrality(g) }

// Closeness computes closeness centrality for every vertex.
func Closeness(g *Graph) []float64 {
	return centrality.Closeness(g, centrality.ClosenessOptions{})
}

// TopKVertices returns the indices of the k largest scores, descending.
func TopKVertices(scores []float64, k int) []int32 { return centrality.TopKVertices(scores, k) }

// Metrics.

// DegreeStats summarizes a degree distribution.
type DegreeStats = metrics.DegreeStats

// Degrees computes degree statistics.
func Degrees(g *Graph) DegreeStats { return metrics.Degrees(g) }

// ClusteringCoefficient returns the mean local clustering coefficient.
func ClusteringCoefficient(g *Graph) float64 { return metrics.GlobalClustering(g, 0) }

// LocalClustering returns per-vertex local clustering coefficients.
func LocalClustering(g *Graph) []float64 { return metrics.LocalClustering(g, 0) }

// Assortativity returns Newman's degree assortativity coefficient.
func Assortativity(g *Graph) float64 { return metrics.Assortativity(g) }

// RichClub returns the rich-club coefficient per degree threshold.
func RichClub(g *Graph) []float64 { return metrics.RichClub(g) }

// AvgNeighborDegree returns the average neighbor connectivity knn(k).
func AvgNeighborDegree(g *Graph) []float64 { return metrics.AvgNeighborDegree(g) }

// AvgPathLength estimates the mean shortest-path length (sampled BFS)
// and a diameter lower bound.
func AvgPathLength(g *Graph) (float64, int) {
	return metrics.AvgPathLength(g, metrics.PathLengthOptions{})
}

// Approximate (sketch-tier) analytics.

// ANFOptions configures the HyperANF neighborhood-function kernel.
type ANFOptions = sketch.ANFOptions

// ANFResult is the estimated neighborhood function and derived
// distance statistics.
type ANFResult = sketch.ANFResult

// ApproxNeighborhood estimates the neighborhood function NF(t) of g by
// HyperANF: per-vertex HyperLogLog sketches advanced by level-
// synchronous union sweeps. One pass yields the effective diameter,
// the average path length over ALL reachable pairs, and per-vertex
// reachable-set sizes — orders of magnitude faster than exact BFS
// tiers on large small-world graphs, at a few percent error.
func ApproxNeighborhood(g *Graph, opt ANFOptions) ANFResult {
	return sketch.ANF(g, opt)
}

// EffectiveDiameter returns the HyperANF 90%-quantile effective
// diameter of g with default settings. Use ApproxNeighborhood for
// custom quantiles, registers, or seeds.
func EffectiveDiameter(g *Graph) float64 {
	return sketch.ANF(g, sketch.ANFOptions{}).EffectiveDiameter
}

// ApproxAvgPathLength estimates the mean shortest-path length via the
// HyperANF sketch tier (all reachable pairs at once, no source
// sampling) along with the sketch's diameter estimate.
func ApproxAvgPathLength(g *Graph) (float64, int) {
	return metrics.AvgPathLength(g, metrics.PathLengthOptions{Approx: true})
}

// SampledClosenessOptions configures the Eppstein–Wang sampled
// closeness estimator (pivot count, or an epsilon/confidence target it
// is derived from).
type SampledClosenessOptions = sketch.ClosenessOptions

// SampledClosenessResult carries the estimated scores and the realized
// Hoeffding error contract.
type SampledClosenessResult = sketch.ClosenessResult

// SampledCloseness estimates closeness centrality from sampled BFS
// pivots with a Hoeffding error bound: every vertex's estimated
// average distance is within Epsilon·diameter of the truth with
// probability Confidence.
func SampledCloseness(g *Graph, opt SampledClosenessOptions) SampledClosenessResult {
	return sketch.Closeness(g, opt)
}

// DistanceOracleOptions configures landmark selection.
type DistanceOracleOptions = sketch.OracleOptions

// DistanceOracle answers point-to-point distance queries in O(k) from
// k landmark BFS vectors via triangle-inequality brackets. Immutable
// and safe for concurrent queries.
type DistanceOracle = sketch.Oracle

// NewDistanceOracle builds a k-landmark distance oracle over an
// undirected graph (one BFS sweep per landmark).
func NewDistanceOracle(g *Graph, opt DistanceOracleOptions) (*DistanceOracle, error) {
	return sketch.BuildOracle(g, opt)
}

// Community detection.

// Clustering is a partition of the vertices into communities.
type Clustering = community.Clustering

// Dendrogram records the trajectory of a divisive or agglomerative run.
type Dendrogram = community.Dendrogram

// Modularity computes Newman–Girvan modularity of assign on g.
func Modularity(g *Graph, assign []int32) float64 {
	return community.Modularity(g, assign, 0)
}

// GNOptions configures the Girvan–Newman baseline.
type GNOptions = community.GNOptions

// GirvanNewman runs the exact edge-betweenness divisive baseline.
func GirvanNewman(g *Graph, opt GNOptions) (Clustering, *Dendrogram) {
	return community.GirvanNewman(g, opt)
}

// PBDOptions configures the approximate-betweenness divisive algorithm.
type PBDOptions = community.PBDOptions

// PBD runs the parallel approximate-betweenness divisive algorithm.
func PBD(g *Graph, opt PBDOptions) (Clustering, *Dendrogram) {
	return community.PBD(g, opt)
}

// PMAOptions configures the agglomerative algorithm.
type PMAOptions = community.PMAOptions

// PMA runs the parallel modularity-maximizing agglomerative algorithm.
func PMA(g *Graph, opt PMAOptions) (Clustering, *Dendrogram) {
	return community.PMA(g, opt)
}

// PLAOptions configures the greedy local aggregation algorithm.
type PLAOptions = community.PLAOptions

// PLA runs the parallel greedy local aggregation algorithm.
func PLA(g *Graph, opt PLAOptions) Clustering {
	return community.PLA(g, opt)
}

// RefineClustering improves a clustering with greedy vertex moves.
func RefineClustering(g *Graph, c Clustering, passes int, seed int64) Clustering {
	return community.Refine(g, c, passes, seed)
}

// Partitioning.

// PartitionResult is a k-way partition with cut and balance metrics.
type PartitionResult = partition.Result

// MultilevelOptions configures the Metis-style partitioners.
type MultilevelOptions = partition.MultilevelOptions

// SpectralOptions configures the Chaco-style spectral partitioners.
type SpectralOptions = partition.SpectralOptions

// MultilevelKWay partitions g into k parts (multilevel k-way).
func MultilevelKWay(g *Graph, k int, opt MultilevelOptions) (PartitionResult, error) {
	return partition.MultilevelKWay(g, k, opt)
}

// MultilevelRecursive partitions g into k parts (recursive bisection).
func MultilevelRecursive(g *Graph, k int, opt MultilevelOptions) (PartitionResult, error) {
	return partition.MultilevelRecursive(g, k, opt)
}

// SpectralRQI partitions g spectrally (multilevel power/RQI Fiedler).
func SpectralRQI(g *Graph, k int, opt SpectralOptions) (PartitionResult, error) {
	return partition.SpectralRQI(g, k, opt)
}

// SpectralLanczos partitions g spectrally (Lanczos Fiedler).
func SpectralLanczos(g *Graph, k int, opt SpectralOptions) (PartitionResult, error) {
	return partition.SpectralLanczos(g, k, opt)
}

// EdgeCut counts edges crossing parts.
func EdgeCut(g *Graph, part []int32) int64 { return partition.EdgeCut(g, part) }

// PartitionOptions configures Partition, the high-level entry to the
// parallel multilevel k-way engine.
type PartitionOptions struct {
	// K is the number of parts (required, >= 1; K == 1 trivially
	// assigns everything to part 0).
	K int
	// Workers caps parallelism; <= 0 means par.Workers(). The
	// partition is bit-identical at every worker count.
	Workers int
	// Seed drives matching and seeding randomness; 0 means the pinned
	// repo default.
	Seed int64
	// Imbalance is the allowed part-weight overrun (default 0.05).
	Imbalance float64
}

// Partition computes a k-way partition with the parallel multilevel
// engine (heavy-edge matching, counting-sort contraction,
// batch-synchronous boundary refinement). The result is deterministic
// for a given seed regardless of worker count.
func Partition(g *Graph, opt PartitionOptions) (PartitionResult, error) {
	return partition.MultilevelKWay(g, opt.K, MultilevelOptions{
		Imbalance: opt.Imbalance,
		Seed:      opt.Seed,
		Workers:   opt.Workers,
	})
}

// PartitionWorkspace holds the pooled buffers of the multilevel
// engine; reusing one across calls makes warm partitions allocation-
// free. Acquire with AcquirePartitionWorkspace and call
// PartitionInWorkspace; the returned Part slice aliases workspace
// memory and is valid until the next call with the same workspace.
type PartitionWorkspace = partition.Workspace

// AcquirePartitionWorkspace takes a pooled partitioner workspace.
func AcquirePartitionWorkspace() *PartitionWorkspace { return partition.AcquireWorkspace() }

// ReleasePartitionWorkspace returns a workspace to the pool.
func ReleasePartitionWorkspace(ws *PartitionWorkspace) { partition.ReleaseWorkspace(ws) }

// PartitionInWorkspace runs Partition inside a caller-held workspace.
// The returned Part aliases workspace memory — clone it if it must
// outlive the next call.
func PartitionInWorkspace(ws *PartitionWorkspace, g *Graph, opt PartitionOptions) (PartitionResult, error) {
	return ws.KWay(g, opt.K, MultilevelOptions{
		Imbalance: opt.Imbalance,
		Seed:      opt.Seed,
		Workers:   opt.Workers,
	})
}

// BlockedPerm computes the partition-blocked relabeling permutation
// for a partition: perm[newID] = oldID orders vertices by (part,
// descending degree), and bounds (length k+1) marks each part's
// contiguous new-id block. Feed perm to Relabel and bounds to
// NewSharded.
func BlockedPerm(g *Graph, part []int32, k int) (perm, bounds []int32, err error) {
	return partition.BlockedPerm(g, part, k)
}

// Relabel permutes a graph's vertex ids: perm[newID] = oldID. Returns
// the relabeled graph and the inverse map inv (inv[oldID] = newID).
// Edge ids and weights follow their arcs.
func Relabel(g *Graph, perm []int32) (*Graph, []int32, error) {
	return graph.Relabel(g, perm)
}

// ShardedGraph executes kernels shard-locally over a partition-blocked
// graph: BFS and PageRank run bulk-synchronously with batched
// cross-shard exchange, bit-identical at every worker count.
type ShardedGraph = shard.Graph

// ShardedPageRankOptions configures ShardedGraph.PageRank.
type ShardedPageRankOptions = shard.PageRankOptions

// NewSharded wraps a partition-blocked graph (from Partition +
// BlockedPerm + Relabel) with its shard bounds for shard-local kernel
// execution.
func NewSharded(g *Graph, bounds []int32) (*ShardedGraph, error) {
	return shard.New(g, bounds)
}

// Extensions beyond the paper's sections 3-5, implementing its stated
// ongoing work (Section 6).

// CommunitySpectralOptions configures the spectral modularity maximizer.
type CommunitySpectralOptions = community.SpectralOptions

// SpectralCommunities detects communities with Newman's
// leading-eigenvector method over the modularity matrix — the paper's
// "spectral algorithms that optimize modularity" future-work item.
func SpectralCommunities(g *Graph, opt CommunitySpectralOptions) Clustering {
	return community.SpectralCommunities(g, opt)
}

// IncrementalConnectivity maintains connected components of a growing
// network online — the paper's dynamic-network analysis direction.
type IncrementalConnectivity = components.Incremental

// NewIncrementalConnectivity returns an incremental connectivity index
// over n isolated vertices.
func NewIncrementalConnectivity(n int) *IncrementalConnectivity {
	return components.NewIncremental(n)
}

// PageRankOptions configures the PageRank power iteration.
type PageRankOptions = centrality.PageRankOptions

// PageRank computes the random-surfer stationary distribution
// (influential-entity identification).
func PageRank(g *Graph, opt PageRankOptions) []float64 {
	if g.Directed() {
		return centrality.PageRankDirected(g, opt)
	}
	return centrality.PageRank(g, opt)
}

// EigenvectorCentrality computes principal-eigenvector centrality.
func EigenvectorCentrality(g *Graph) []float64 {
	return centrality.EigenvectorCentrality(g, 0, 0)
}

// WeightedBetweenness computes exact betweenness on positively
// weighted graphs (Brandes with Dijkstra traversals).
func WeightedBetweenness(g *Graph, opt BetweennessOptions) CentralityScores {
	return centrality.WeightedBetweenness(g, opt)
}

// STConnectivity answers an s-t connectivity query with bidirectional
// search, returning reachability and hop distance.
func STConnectivity(g *Graph, s, t int32) (bool, int32) {
	return bfs.STConnectivity(g, s, t)
}

// KCore returns every vertex's core number (Batagelj–Zaveršnik peeling).
func KCore(g *Graph) []int32 { return metrics.KCore(g) }

// Degeneracy returns the maximum core number.
func Degeneracy(g *Graph) int { return metrics.Degeneracy(g) }

// Coverage is the fraction of intra-community edges of a clustering.
func Coverage(g *Graph, assign []int32) float64 { return community.Coverage(g, assign) }

// Conductance returns per-community conductance (lower is better).
func Conductance(g *Graph, c Clustering) []float64 {
	return community.Conductance(g, c.Assign, c.Count)
}

// NMI scores two clusterings' agreement (1 = identical partitions).
func NMI(a, b []int32) float64 { return community.NMI(a, b) }

// LouvainOptions configures the multilevel local-moving heuristic.
type LouvainOptions = community.LouvainOptions

// Louvain runs the multilevel local-moving modularity heuristic
// (Blondel et al. 2008), included as the modern comparison baseline.
// For a fixed Seed the partition is identical at every worker count.
func Louvain(g *Graph, opt LouvainOptions) Clustering {
	return community.Louvain(g, opt)
}

// MoveWorkspace is the pooled state of the local-moving engine behind
// Louvain and RefineClustering. Holding one across calls makes
// repeated runs allocation-free; results returned by its methods alias
// the workspace.
type MoveWorkspace = community.MoveWorkspace

// AcquireMoveWorkspace returns a pooled local-moving workspace.
func AcquireMoveWorkspace() *MoveWorkspace { return community.AcquireMoveWorkspace() }

// ReleaseMoveWorkspace returns a workspace to the pool.
func ReleaseMoveWorkspace(ws *MoveWorkspace) { community.ReleaseMoveWorkspace(ws) }

// CommunityGraph contracts a clustering into its weighted quotient.
func CommunityGraph(g *Graph, c Clustering) *Graph {
	return community.MakeQuotient(g, c.Assign, c.Count).Graph
}

// Attributes is a typed vertex/edge attribute side table.
type Attributes = graph.Attributes

// NewAttributes returns an empty attribute table for g.
func NewAttributes(g *Graph) *Attributes { return graph.NewAttributes(g) }

// WriteMETIS / ReadMETIS interoperate with the METIS/Chaco graph format.
func WriteMETIS(w io.Writer, g *Graph) error { return graph.WriteMETIS(w, g) }
func ReadMETIS(r io.Reader) (*Graph, error)  { return graph.ReadMETIS(r) }

// WriteDIMACS / ReadDIMACS interoperate with the DIMACS edge format.
func WriteDIMACS(w io.Writer, g *Graph) error { return graph.WriteDIMACS(w, g) }
func ReadDIMACS(r io.Reader) (*Graph, error)  { return graph.ReadDIMACS(r) }

// WriteDOT exports GraphViz DOT, optionally colored by communities.
func WriteDOT(w io.Writer, g *Graph, assign []int32) error {
	return graph.WriteDOT(w, g, assign)
}

// InducedSubgraph extracts the subgraph on the given vertices, with
// the mapping from new ids back to the originals.
func InducedSubgraph(g *Graph, vertices []int32) (*Graph, []int32, error) {
	return graph.InducedSubgraph(g, vertices)
}

// BFSDirectionOptimizing runs the direction-optimizing (top-down /
// bottom-up hybrid) BFS, the fastest traversal on small-world graphs
// whose middle levels cover most vertices.
func BFSDirectionOptimizing(g *Graph, src int32) BFSResult {
	return bfs.DirectionOptimizing(g, src, bfs.Options{})
}

// RCMOrder computes a reverse Cuthill-McKee cache-friendly ordering
// (perm[newID] = oldID).
func RCMOrder(g *Graph) []int32 { return graph.RCMOrder(g) }

// Permute relabels g under perm, returning the relabeled graph and the
// old-to-new id map.
func Permute(g *Graph, perm []int32) (*Graph, []int32) { return graph.Permute(g, perm) }

// Bandwidth reports the maximum id distance across any edge (the
// quantity RCM minimizes).
func Bandwidth(g *Graph) int64 { return graph.Bandwidth(g) }

// StronglyConnectedComponents computes SCCs of a directed graph
// (iterative Tarjan); undirected graphs yield connected components.
func StronglyConnectedComponents(g *Graph) Components {
	return components.StronglyConnected(g)
}

// Condensation builds the DAG of strongly connected components.
func Condensation(g *Graph, scc Components) *Graph {
	return components.Condensation(g, scc)
}

// ApproxCloseness estimates closeness centrality by pivot sampling
// (Eppstein–Wang).
func ApproxCloseness(g *Graph, samples int, seed int64) []float64 {
	return centrality.ApproxCloseness(g, samples, seed, 0)
}

// LabelPropagation runs the Raghavan–Albert–Kumara community heuristic.
func LabelPropagation(g *Graph, seed int64) Clustering {
	return community.LabelPropagation(g, 0, seed)
}

// RewireDegreePreserving randomizes g while preserving its exact
// degree sequence (the configuration-model null graph behind
// modularity's "expected at random" term).
func RewireDegreePreserving(g *Graph, swaps int, seed int64) *Graph {
	return generate.RewireDegreePreserving(g, swaps, seed)
}

// PowerLawAlpha fits a discrete power-law exponent to the degree
// distribution by maximum likelihood (Clauset–Shalizi–Newman).
func PowerLawAlpha(g *Graph, dmin int) (float64, int) {
	return metrics.PowerLawAlpha(g, dmin)
}

// Diameter computes the exact diameter of the largest component (iFUB).
func Diameter(g *Graph) int { return metrics.Diameter(g) }

// Snapshot-epoch streaming ingest (the paper's dynamic-network
// direction, rebuilt on immutable CSR epochs).

// Stream buffers edge insertions and deletions against the current
// snapshot and, on Commit, merges them into a fresh immutable Graph
// published as a new Epoch. Readers pin epochs lock-free and never
// block behind writers; maintained kernels (Components, PageRank,
// Communities) answer from incremental state instead of recomputing.
type Stream = ingest.Stream

// StreamOptions configures a Stream (auto-commit threshold, merge
// worker count).
type StreamOptions = ingest.Options

// Epoch is one pinned immutable snapshot of a Stream; Close releases
// it. The underlying Graph stays valid until every pin is closed.
type Epoch = ingest.Epoch

// CommitStats summarizes one committed delta.
type CommitStats = ingest.CommitStats

// NewStream starts a snapshot-epoch stream seeded with g. The stream
// takes ownership of g: it is closed when its epoch is superseded and
// unpinned, so pass a graph the caller no longer uses directly.
func NewStream(g *Graph, opt StreamOptions) *Stream { return ingest.New(g, opt) }

// NewEmptyStream starts a stream over n isolated vertices.
func NewEmptyStream(n int, directed, weighted bool, opt StreamOptions) (*Stream, error) {
	return ingest.NewEmpty(n, directed, weighted, opt)
}

// MergeDelta applies a batch of deletions and insertions to an
// immutable CSR snapshot, returning a fresh Graph bit-identical to
// rebuilding from the updated edge list; g is unmodified. The kernel
// behind Stream.Commit, usable standalone for one-shot updates.
func MergeDelta(g *Graph, add, del []Edge) (*Graph, error) {
	return graph.MergeDelta(g, add, del)
}

// PageRankFrom computes PageRank warm-started from a previous score
// vector (for example the previous epoch's), converging in the few
// sweeps the carried-over vector is away from the new fixpoint.
func PageRankFrom(g *Graph, prev []float64, opt PageRankOptions) []float64 {
	return centrality.PageRankFrom(g, prev, opt)
}

// PageRankDelta computes PageRank incrementally from the previous
// epoch's scores given the vertices whose adjacency changed: a
// residual push localizes the correction, and a warm polish certifies
// the usual tolerance.
func PageRankDelta(g *Graph, prev []float64, seeds []int32, opt PageRankOptions) []float64 {
	return centrality.PageRankDelta(g, prev, seeds, opt)
}
