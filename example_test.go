package snap_test

import (
	"fmt"

	"snap"
)

// Two triangles joined by a bridge — the smallest graph with obvious
// community structure.
func twoTriangles() *snap.Graph {
	g, err := snap.Build(6, []snap.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5},
		{U: 2, V: 3},
	}, snap.BuildOptions{})
	if err != nil {
		panic(err)
	}
	return g
}

func ExampleBFS() {
	g := twoTriangles()
	r := snap.BFS(g, 0)
	fmt.Println(r.Dist[5])
	// Output: 3
}

func ExampleModularity() {
	g := twoTriangles()
	q := snap.Modularity(g, []int32{0, 0, 0, 1, 1, 1})
	fmt.Printf("%.4f\n", q)
	// Output: 0.3571
}

func ExamplePMA() {
	g := twoTriangles()
	c, _ := snap.PMA(g, snap.PMAOptions{StopWhenNegative: true})
	fmt.Println(c.Count)
	// Output: 2
}

func ExampleGirvanNewman() {
	g := twoTriangles()
	c, _ := snap.GirvanNewman(g, snap.GNOptions{})
	fmt.Printf("%d communities, Q=%.4f\n", c.Count, c.Q)
	// Output: 2 communities, Q=0.3571
}

func ExampleBiconnected() {
	g := twoTriangles()
	b := snap.Biconnected(g)
	fmt.Println(len(b.Bridges()), "bridge;", len(b.ArticulationPoints()), "articulation points")
	// Output: 1 bridge; 2 articulation points
}

func ExampleEdgeCut() {
	g := twoTriangles()
	fmt.Println(snap.EdgeCut(g, []int32{0, 0, 0, 1, 1, 1}))
	// Output: 1
}

func ExampleSTConnectivity() {
	g := twoTriangles()
	ok, d := snap.STConnectivity(g, 0, 5)
	fmt.Println(ok, d)
	// Output: true 3
}

func ExampleKCore() {
	g := twoTriangles()
	core := snap.KCore(g)
	fmt.Println(core[0], core[2])
	// Output: 2 2
}

func ExampleDeltaStepping() {
	// The two-triangle graph with weighted arcs: the bridge is cheap,
	// the triangle edges cost 2 each.
	g, err := snap.Build(6, []snap.Edge{
		{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 2},
		{U: 3, V: 4, W: 2}, {U: 4, V: 5, W: 2}, {U: 3, V: 5, W: 2},
		{U: 2, V: 3, W: 1},
	}, snap.BuildOptions{Weighted: true})
	if err != nil {
		panic(err)
	}
	// A wide bucket makes every edge light; two workers relax them
	// concurrently. Any Delta and Workers give the same distances.
	r := snap.DeltaStepping(g, 0, snap.DeltaSteppingOptions{Delta: 4, Workers: 2})
	fmt.Println(r.Dist[5])
	// Output: 5
}

func ExampleNMI() {
	a := []int32{0, 0, 0, 1, 1, 1}
	b := []int32{1, 1, 1, 0, 0, 0} // same partition, relabeled
	fmt.Printf("%.1f\n", snap.NMI(a, b))
	// Output: 1.0
}

func ExamplePartition() {
	g := twoTriangles()
	// Partition into two parts, then reorder the graph so each part
	// occupies one contiguous id block and run BFS shard-locally.
	res, err := snap.Partition(g, snap.PartitionOptions{K: 2})
	if err != nil {
		panic(err)
	}
	perm, bounds, err := snap.BlockedPerm(g, res.Part, res.K)
	if err != nil {
		panic(err)
	}
	rg, inv, err := snap.Relabel(g, perm)
	if err != nil {
		panic(err)
	}
	s, err := snap.NewSharded(rg, bounds)
	if err != nil {
		panic(err)
	}
	dist := s.BFS(inv[0], 0)
	fmt.Println(res.EdgeCut, dist[inv[5]])
	// Output: 1 3
}
