module snap

go 1.22
