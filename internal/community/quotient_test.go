package community

import (
	"math"
	"testing"

	"snap/internal/datasets"
	"snap/internal/generate"
)

func TestMakeQuotientTwoTriangles(t *testing.T) {
	g := twoTriangles(t)
	q := MakeQuotient(g, []int32{0, 0, 0, 1, 1, 1}, 2)
	if q.Graph.NumVertices() != 2 || q.Graph.NumEdges() != 1 {
		t.Fatalf("quotient: %v", q.Graph)
	}
	if q.Intra[0] != 3 || q.Intra[1] != 3 {
		t.Fatalf("intra = %v", q.Intra)
	}
	if q.Size[0] != 3 || q.Size[1] != 3 {
		t.Fatalf("size = %v", q.Size)
	}
	if q.DegSum[0] != 7 || q.DegSum[1] != 7 {
		t.Fatalf("degsum = %v", q.DegSum)
	}
	// The single quotient edge has weight 1 (the bridge).
	if w := q.Graph.TotalWeight(); w != 1 {
		t.Fatalf("quotient edge weight = %g", w)
	}
}

func TestQuotientAccountingConsistency(t *testing.T) {
	// Sum of intra + quotient weights must equal m; degsum and sizes
	// must sum to 2m and n.
	g := generate.RMAT(300, 1200, generate.DefaultRMAT(), 4)
	pma, _ := PMA(g, PMAOptions{StopWhenNegative: true})
	q := MakeQuotient(g, pma.Assign, pma.Count)
	var intra int64
	for _, w := range q.Intra {
		intra += w
	}
	if got := float64(intra) + q.Graph.TotalWeight(); got != float64(g.NumEdges()) {
		t.Fatalf("edge accounting: %g vs m=%d", got, g.NumEdges())
	}
	var size, degsum int64
	for c := range q.Size {
		size += q.Size[c]
		degsum += q.DegSum[c]
	}
	if size != int64(g.NumVertices()) || degsum != int64(g.NumArcs()) {
		t.Fatalf("size/degsum accounting: %d / %d", size, degsum)
	}
}

func TestLouvainTwoTriangles(t *testing.T) {
	g := twoTriangles(t)
	c := Louvain(g, LouvainOptions{Seed: 1})
	want := 6.0/7.0 - 0.5
	if c.Count != 2 || math.Abs(c.Q-want) > 1e-9 {
		t.Fatalf("louvain: count=%d Q=%g, want 2 / %g", c.Count, c.Q, want)
	}
}

func TestLouvainKarate(t *testing.T) {
	g := datasets.Karate()
	c := Louvain(g, LouvainOptions{Seed: 1})
	if c.Q < 0.40 {
		t.Fatalf("louvain karate Q = %.4f, want >= 0.40", c.Q)
	}
	if q := Modularity(g, c.Assign, 1); math.Abs(q-c.Q) > 1e-9 {
		t.Fatalf("reported Q %g != recomputed %g", c.Q, q)
	}
}

func TestLouvainPlantedRecovery(t *testing.T) {
	g, truth := generate.PlantedPartition(5, 40, 0.4, 0.005, 8)
	c := Louvain(g, LouvainOptions{Seed: 2})
	truthQ := Modularity(g, truth, 1)
	if c.Q < truthQ*0.95 {
		t.Fatalf("louvain planted Q = %.3f, want >= 95%% of %.3f", c.Q, truthQ)
	}
	if v := NMI(truth, c.Assign); v < 0.9 {
		t.Fatalf("louvain NMI = %.3f", v)
	}
}

func TestLouvainAtLeastAsGoodAsPMAOnSurrogates(t *testing.T) {
	// Louvain is the modern reference; it should match or beat CNM-
	// style agglomeration on community-structured graphs.
	net, _ := datasets.ByLabel("E-mail")
	g := net.Build(0.5)
	lv := Louvain(g, LouvainOptions{Seed: 3})
	pma, _ := PMA(g, PMAOptions{StopWhenNegative: true})
	if lv.Q < pma.Q-0.05 {
		t.Fatalf("louvain Q=%.3f clearly below pMA Q=%.3f", lv.Q, pma.Q)
	}
}
