package community

import "encoding/json"

// Dendrogram records the sequence of clustering events (splits for
// divisive algorithms, joins for agglomerative ones) together with the
// modularity after each event, so the caller can inspect the whole
// trajectory and extract the best clustering — step 9 of the paper's
// Algorithm 1 ("inspect the dendrogram, set C to the clustering with
// the highest modularity score").
type Dendrogram struct {
	Events []DendrogramEvent
	// BestQ and BestStep identify the maximum-modularity event.
	BestQ    float64
	BestStep int
	// bestAssign is a snapshot of the assignment at the best event.
	bestAssign []int32
	bestCount  int
}

// DendrogramEvent is one split or join.
type DendrogramEvent struct {
	// Step is the iteration number.
	Step int
	// Join reports a merge (agglomerative); false means a split.
	Join bool
	// A and B are the community ids involved: for a join, the merged
	// pair; for a split, A is the community that split and B the new
	// community created.
	A, B int32
	// EdgeID is the removed edge for divisive splits (-1 otherwise).
	EdgeID int32
	// Clusters is the number of communities after the event.
	Clusters int
	// Q is the modularity after the event.
	Q float64
}

// NewDendrogram returns an empty dendrogram with a starting snapshot.
func NewDendrogram(assign []int32, count int, q float64) *Dendrogram {
	d := &Dendrogram{BestQ: q, BestStep: -1}
	d.snapshot(assign, count)
	return d
}

// Record appends an event, snapshotting the assignment whenever the
// modularity reaches a new maximum.
func (d *Dendrogram) Record(ev DendrogramEvent, assign []int32, count int) {
	d.Events = append(d.Events, ev)
	if ev.Q > d.BestQ {
		d.BestQ = ev.Q
		d.BestStep = ev.Step
		d.snapshot(assign, count)
	}
}

func (d *Dendrogram) snapshot(assign []int32, count int) {
	if cap(d.bestAssign) < len(assign) {
		d.bestAssign = make([]int32, len(assign))
	}
	d.bestAssign = d.bestAssign[:len(assign)]
	copy(d.bestAssign, assign)
	d.bestCount = count
}

// Best returns the maximum-modularity clustering seen (with dense ids).
func (d *Dendrogram) Best() Clustering {
	remap := make(map[int32]int32, d.bestCount)
	assign := make([]int32, len(d.bestAssign))
	for v, l := range d.bestAssign {
		id, ok := remap[l]
		if !ok {
			id = int32(len(remap))
			remap[l] = id
		}
		assign[v] = id
	}
	return Clustering{Assign: assign, Count: len(remap), Q: d.BestQ}
}

// Len reports the number of recorded events.
func (d *Dendrogram) Len() int { return len(d.Events) }

// MarshalJSON serializes the dendrogram events and best-step summary
// so CLI tools can export clustering trajectories for inspection.
func (d *Dendrogram) MarshalJSON() ([]byte, error) {
	type alias struct {
		BestQ    float64           `json:"best_q"`
		BestStep int               `json:"best_step"`
		Events   []DendrogramEvent `json:"events"`
	}
	return json.Marshal(alias{BestQ: d.BestQ, BestStep: d.BestStep, Events: d.Events})
}
