package community

import (
	"math"

	"snap/internal/graph"
)

// Quality measures beyond modularity, used to evaluate clusterings —
// including conductance, the measure the paper contrasts modularity
// against when discussing partitioning-based clustering heuristics
// (Section 2.2), and NMI for comparing against planted ground truth.

// Coverage is the fraction of edges that are intra-community.
// Coverage 1 means no inter-community edges.
func Coverage(g *graph.Graph, assign []int32) float64 {
	m := g.NumEdges()
	if m == 0 {
		return 0
	}
	intra := 0
	for _, e := range g.EdgeEndpoints() {
		if assign[e.U] == assign[e.V] {
			intra++
		}
	}
	return float64(intra) / float64(m)
}

// Performance is the fraction of vertex pairs classified correctly:
// intra-community pairs that are edges plus inter-community pairs that
// are non-edges, over all pairs (Brandes et al., "Engineering graph
// clustering").
func Performance(g *graph.Graph, assign []int32, count int) float64 {
	n := g.NumVertices()
	if n < 2 {
		return 1
	}
	sizes := make([]int64, count)
	for _, c := range assign {
		sizes[c]++
	}
	var intraPairs int64
	for _, s := range sizes {
		intraPairs += s * (s - 1) / 2
	}
	var intraEdges, interEdges int64
	for _, e := range g.EdgeEndpoints() {
		if assign[e.U] == assign[e.V] {
			intraEdges++
		} else {
			interEdges++
		}
	}
	totalPairs := int64(n) * int64(n-1) / 2
	interPairs := totalPairs - intraPairs
	correct := intraEdges + (interPairs - interEdges)
	return float64(correct) / float64(totalPairs)
}

// Conductance returns the conductance of every community: the number
// of boundary edges divided by the smaller of the community's and the
// complement's total degree. Lower is better; isolated communities
// (no boundary) get 0; degenerate communities (zero volume on either
// side) get 1 (the standard worst-case convention).
func Conductance(g *graph.Graph, assign []int32, count int) []float64 {
	volume := make([]float64, count)
	boundary := make([]float64, count)
	var totalVol float64
	for v := 0; v < g.NumVertices(); v++ {
		d := float64(g.Degree(int32(v)))
		volume[assign[v]] += d
		totalVol += d
	}
	for _, e := range g.EdgeEndpoints() {
		if assign[e.U] != assign[e.V] {
			boundary[assign[e.U]]++
			boundary[assign[e.V]]++
		}
	}
	out := make([]float64, count)
	for c := 0; c < count; c++ {
		minVol := volume[c]
		if other := totalVol - volume[c]; other < minVol {
			minVol = other
		}
		switch {
		case boundary[c] == 0:
			out[c] = 0
		case minVol == 0:
			out[c] = 1
		default:
			out[c] = boundary[c] / minVol
		}
	}
	return out
}

// AvgConductance averages per-community conductance (a common scalar
// summary; lower is better).
func AvgConductance(g *graph.Graph, assign []int32, count int) float64 {
	cs := Conductance(g, assign, count)
	if len(cs) == 0 {
		return 0
	}
	var s float64
	for _, c := range cs {
		s += c
	}
	return s / float64(len(cs))
}

// NMI computes the normalized mutual information between two
// clusterings of the same vertex set (1 = identical partitions up to
// relabeling, ~0 = independent). Standard for scoring recovered
// communities against planted ground truth.
func NMI(a, b []int32) float64 {
	n := len(a)
	if n == 0 || len(b) != n {
		return 0
	}
	ka, kb := maxLabel(a)+1, maxLabel(b)+1
	joint := make([]float64, ka*kb)
	ca := make([]float64, ka)
	cb := make([]float64, kb)
	for i := 0; i < n; i++ {
		joint[int(a[i])*int(kb)+int(b[i])]++
		ca[a[i]]++
		cb[b[i]]++
	}
	fn := float64(n)
	var mi, ha, hb float64
	for i := int32(0); i < ka; i++ {
		for j := int32(0); j < kb; j++ {
			p := joint[int(i)*int(kb)+int(j)] / fn
			if p > 0 {
				mi += p * math.Log(p/((ca[i]/fn)*(cb[j]/fn)))
			}
		}
	}
	for _, c := range ca {
		if c > 0 {
			p := c / fn
			ha -= p * math.Log(p)
		}
	}
	for _, c := range cb {
		if c > 0 {
			p := c / fn
			hb -= p * math.Log(p)
		}
	}
	if ha == 0 && hb == 0 {
		return 1 // both trivial single-cluster partitions
	}
	denom := (ha + hb) / 2
	if denom == 0 {
		return 0
	}
	return mi / denom
}

func maxLabel(xs []int32) int32 {
	var mx int32
	for _, x := range xs {
		if x > mx {
			mx = x
		}
	}
	return mx
}

// MixingParameter returns the average fraction of each vertex's edges
// that leave its community (the LFR benchmark's mu). Vertices with no
// edges are skipped.
func MixingParameter(g *graph.Graph, assign []int32) float64 {
	n := g.NumVertices()
	var sum float64
	cnt := 0
	for v := int32(0); int(v) < n; v++ {
		d := g.Degree(v)
		if d == 0 {
			continue
		}
		out := 0
		for _, u := range g.Neighbors(v) {
			if assign[u] != assign[v] {
				out++
			}
		}
		sum += float64(out) / float64(d)
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}
