package community

import (
	"sort"
	"sync"

	"snap/internal/graph"
	"snap/internal/par"
)

// PMAOptions configures the modularity-maximizing agglomerative
// clustering algorithm (Algorithm 2 of the paper).
type PMAOptions struct {
	// Workers bounds parallelism; <= 0 means par.Workers().
	Workers int
	// StopWhenNegative stops agglomeration once every possible merge
	// has negative ΔQ. This is lossless: ΔQ update rules only ever
	// subtract positive quantities, so once all entries are negative
	// modularity can only decrease; the best clustering has already
	// been recorded. Set false to build the complete dendrogram down
	// to a single community, matching Algorithm 2 literally.
	StopWhenNegative bool
	// ParallelThreshold is the union-row size above which the per-
	// neighbor ΔQ updates of a merge run in parallel (the paper's
	// parallelized step 10). 0 => 512.
	ParallelThreshold int
}

// deltaRow is one row of the sparse ΔQ matrix, stored exactly as the
// paper describes: a sorted dynamic array (parallel id/value slices,
// O(log n) lookup, ordered linear merges) plus a multilevel bucket
// structure tracking the row maximum.
type deltaRow struct {
	ids  []int32 // sorted ascending
	vals []float64
	pq   *bucketPQ
}

func newDeltaRow() *deltaRow {
	return &deltaRow{pq: newBucketPQ()}
}

func (r *deltaRow) find(id int32) int {
	return sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= id })
}

func (r *deltaRow) get(id int32) (float64, bool) {
	i := r.find(id)
	if i < len(r.ids) && r.ids[i] == id {
		return r.vals[i], true
	}
	return 0, false
}

func (r *deltaRow) set(id int32, v float64) {
	i := r.find(id)
	if i < len(r.ids) && r.ids[i] == id {
		r.vals[i] = v
	} else {
		r.ids = append(r.ids, 0)
		r.vals = append(r.vals, 0)
		copy(r.ids[i+1:], r.ids[i:])
		copy(r.vals[i+1:], r.vals[i:])
		r.ids[i] = id
		r.vals[i] = v
	}
	r.pq.Set(id, v)
}

func (r *deltaRow) delete(id int32) {
	i := r.find(id)
	if i >= len(r.ids) || r.ids[i] != id {
		return
	}
	r.ids = append(r.ids[:i], r.ids[i+1:]...)
	r.vals = append(r.vals[:i], r.vals[i+1:]...)
	r.pq.Delete(id)
}

func (r *deltaRow) max() (int32, float64, bool) { return r.pq.Max() }

func (r *deltaRow) len() int { return len(r.ids) }

// PMA is the parallel greedy agglomerative clustering algorithm (pMA):
// Clauset–Newman–Moore-style modularity agglomeration over SNAP's row
// representation. Every community pair merge selects the global
// maximum ΔQ via a lazy heap over per-row bucketed maxima; the ΔQ
// updates radiating to neighboring communities are applied in parallel.
func PMA(g *graph.Graph, opt PMAOptions) (Clustering, *Dendrogram) {
	workers := opt.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	if opt.ParallelThreshold <= 0 {
		opt.ParallelThreshold = 512
	}
	n := g.NumVertices()
	mEdges := g.NumEdges()
	if n == 0 || mEdges == 0 {
		return Singletons(g), NewDendrogram(make([]int32, n), n, 0)
	}
	m := float64(mEdges)

	// a[i] = deg(i) / 2m for singleton communities.
	a := make([]float64, n)
	for v := 0; v < n; v++ {
		a[v] = float64(g.Degree(int32(v))) / (2 * m)
	}
	// Q of the singleton partition: sum(0 - a_i^2).
	q := 0.0
	for _, av := range a {
		q -= av * av
	}

	rows := make([]*deltaRow, n)
	active := make([]bool, n)
	heap := &pairHeap{}
	for vi := 0; vi < n; vi++ {
		v := int32(vi)
		row := newDeltaRow()
		for _, u := range g.Neighbors(v) {
			if u == v {
				continue
			}
			row.set(u, 1/m-2*a[v]*a[u])
		}
		rows[vi] = row
		active[vi] = true
		if id, dq, ok := row.max(); ok {
			heap.Push(pairItem{dq: dq, row: v, with: id})
		}
	}

	// Community membership for dendrogram snapshots. Row slots and
	// labels are decoupled: rows[] merge small-row-into-large-row for
	// ΔQ efficiency, while vertex labels merge small-member-set-into-
	// large-member-set so total relabeling stays O(n log n).
	assign := make([]int32, n)
	labelOf := make([]int32, n)     // row slot -> current label
	membersOf := make([][]int32, n) // label -> member vertices
	for v := range assign {
		assign[v] = int32(v)
		labelOf[v] = int32(v)
		membersOf[v] = []int32{int32(v)}
	}
	dend := NewDendrogram(assign, n, q)

	nC := n
	var mu sync.Mutex
	step := 0
	for nC > 1 && heap.Len() > 0 {
		it := heap.Pop()
		if !active[it.row] {
			continue
		}
		id, dq, ok := rows[it.row].max()
		if !ok {
			continue // isolated community: no merge can ever involve it
		}
		if dq != it.dq || id != it.with {
			// Stale entry: reinsert the fresh maximum.
			heap.Push(pairItem{dq: dq, row: it.row, with: id})
			continue
		}
		if opt.StopWhenNegative && dq < 0 {
			break
		}
		i, j := it.with, it.row
		// Merge the smaller row into the larger one.
		if rows[i].len() > rows[j].len() {
			i, j = j, i
		}
		small, big := rows[i], rows[j]
		small.delete(j)
		big.delete(i)

		// Merge the two sorted rows with two pointers (the paper's
		// parallel row merge), producing the union of neighbor ids
		// and the new ΔQ value of each in one pass.
		union, nvs := mergeRows(small, big, a[i], a[j], a)

		// update applies the ΔQ rules to neighbor row l and returns a
		// fresh heap entry ONLY when l's row maximum changed (row: -1
		// otherwise) — pushing unconditionally floods the lazy heap
		// with stale entries and dominates the runtime.
		update := func(k int) pairItem {
			l := union[k]
			rl := rows[l]
			oldID, oldDQ, hadMax := rl.max()
			rl.delete(i)
			rl.set(j, nvs[k])
			mid, mdq, _ := rl.max()
			if hadMax && mid == oldID && mdq == oldDQ {
				return pairItem{row: -1}
			}
			return pairItem{dq: mdq, row: l, with: mid}
		}

		if len(union) >= opt.ParallelThreshold && workers > 1 {
			pending := make([]pairItem, len(union))
			par.ForChunkedN(len(union), workers, func(_, lo, hi int) {
				for k := lo; k < hi; k++ {
					pending[k] = update(k)
				}
			})
			mu.Lock()
			for _, p := range pending {
				if p.row >= 0 {
					heap.Push(p)
				}
			}
			mu.Unlock()
		} else {
			for k := range union {
				if p := update(k); p.row >= 0 {
					heap.Push(p)
				}
			}
		}

		// The merged row under id j is exactly (union, nvs).
		nr := newDeltaRow()
		nr.ids = union
		nr.vals = nvs
		for k, l := range union {
			nr.pq.Set(l, nvs[k])
		}
		rows[j] = nr
		rows[i] = nil
		active[i] = false
		a[j] += a[i]
		q += dq
		nC--

		// Fold the smaller member set's label into the larger's.
		li, lj := labelOf[i], labelOf[j]
		if len(membersOf[li]) > len(membersOf[lj]) {
			li, lj = lj, li
		}
		for _, v := range membersOf[li] {
			assign[v] = lj
		}
		membersOf[lj] = append(membersOf[lj], membersOf[li]...)
		membersOf[li] = nil
		labelOf[j] = lj

		if mid, mdq, ok := nr.max(); ok {
			heap.Push(pairItem{dq: mdq, row: j, with: mid})
		}
		dend.Record(DendrogramEvent{
			Step:     step,
			Join:     true,
			A:        i,
			B:        j,
			EdgeID:   -1,
			Clusters: nC,
			Q:        q,
		}, assign, nC)
		step++
	}
	return dend.Best(), dend
}

// mergeRows linearly merges the sorted (id, ΔQ) rows of communities i
// and j, applying the CNM update rules: neighbors of both sum their
// entries; single-side neighbors are corrected by -2*a_other*a_l.
func mergeRows(small, big *deltaRow, ai, aj float64, a []float64) ([]int32, []float64) {
	x, xv := small.ids, small.vals
	y, yv := big.ids, big.vals
	ids := make([]int32, 0, len(x)+len(y))
	vals := make([]float64, 0, len(x)+len(y))
	p, q := 0, 0
	for p < len(x) && q < len(y) {
		switch {
		case x[p] < y[q]:
			ids = append(ids, x[p])
			vals = append(vals, xv[p]-2*aj*a[x[p]])
			p++
		case x[p] > y[q]:
			ids = append(ids, y[q])
			vals = append(vals, yv[q]-2*ai*a[y[q]])
			q++
		default:
			ids = append(ids, x[p])
			vals = append(vals, xv[p]+yv[q])
			p++
			q++
		}
	}
	for ; p < len(x); p++ {
		ids = append(ids, x[p])
		vals = append(vals, xv[p]-2*aj*a[x[p]])
	}
	for ; q < len(y); q++ {
		ids = append(ids, y[q])
		vals = append(vals, yv[q]-2*ai*a[y[q]])
	}
	return ids, vals
}
