package community

import (
	"math/rand"
	"sort"

	"snap/internal/graph"
)

// LabelPropagation runs the Raghavan–Albert–Kumara label propagation
// algorithm: every vertex repeatedly adopts the most frequent label
// among its neighbors (ties broken randomly but reproducibly), until
// labels stabilize. Near-linear time per pass and embarrassingly
// local — the natural speed baseline below pLA. Quality is noisier
// than the modularity maximizers; the result is reported with its
// modularity for comparison.
func LabelPropagation(g *graph.Graph, maxPasses int, seed int64) Clustering {
	if maxPasses <= 0 {
		maxPasses = 32
	}
	n := g.NumVertices()
	if n == 0 || g.NumEdges() == 0 {
		return Singletons(g)
	}
	rng := rand.New(rand.NewSource(seed))
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = int32(i)
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	// Neighbor-label counting through the dense epoch-stamped scatter:
	// O(deg) per vertex with an O(1) reset, no map churn.
	counts := &moveScatter{}
	counts.ensure(n)
	var top []int32
	for pass := 0; pass < maxPasses; pass++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		changes := 0
		for _, v := range order {
			adj := g.Neighbors(v)
			if len(adj) == 0 {
				continue
			}
			counts.begin()
			best := 0.0
			for _, u := range adj {
				l := assign[u]
				counts.add(l, 1)
				if counts.wsum[l] > best {
					best = counts.wsum[l]
				}
			}
			// Collect the argmax labels and break ties reproducibly
			// (sorted, as the map-based version did, so a fixed seed
			// draws the same label).
			top = top[:0]
			for _, l := range counts.touched {
				if counts.wsum[l] == best {
					top = append(top, l)
				}
			}
			sort.Slice(top, func(i, j int) bool { return top[i] < top[j] })
			nl := top[rng.Intn(len(top))]
			if nl != assign[v] {
				assign[v] = nl
				changes++
			}
		}
		if changes == 0 {
			break
		}
	}
	return densify(g, assign, 0)
}
