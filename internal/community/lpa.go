package community

import (
	"math/rand"
	"sort"

	"snap/internal/graph"
)

// LabelPropagation runs the Raghavan–Albert–Kumara label propagation
// algorithm: every vertex repeatedly adopts the most frequent label
// among its neighbors (ties broken randomly but reproducibly), until
// labels stabilize. Near-linear time per pass and embarrassingly
// local — the natural speed baseline below pLA. Quality is noisier
// than the modularity maximizers; the result is reported with its
// modularity for comparison.
func LabelPropagation(g *graph.Graph, maxPasses int, seed int64) Clustering {
	if maxPasses <= 0 {
		maxPasses = 32
	}
	n := g.NumVertices()
	if n == 0 || g.NumEdges() == 0 {
		return Singletons(g)
	}
	rng := rand.New(rand.NewSource(seed))
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = int32(i)
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	counts := map[int32]int{}
	for pass := 0; pass < maxPasses; pass++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		changes := 0
		for _, v := range order {
			adj := g.Neighbors(v)
			if len(adj) == 0 {
				continue
			}
			for k := range counts {
				delete(counts, k)
			}
			best := 0
			for _, u := range adj {
				l := assign[u]
				counts[l]++
				if counts[l] > best {
					best = counts[l]
				}
			}
			// Collect the argmax labels and break ties reproducibly.
			var top []int32
			for l, c := range counts {
				if c == best {
					top = append(top, l)
				}
			}
			sort.Slice(top, func(i, j int) bool { return top[i] < top[j] })
			nl := top[rng.Intn(len(top))]
			if nl != assign[v] {
				assign[v] = nl
				changes++
			}
		}
		if changes == 0 {
			break
		}
	}
	return densify(g, assign, 0)
}
