package community

import (
	"snap/internal/graph"
	"snap/internal/par"
)

// This file is the shared local-moving engine behind Louvain, Refine,
// and (indirectly, via Refine's final polish pass) pLA. The previous
// implementations each kept a map[int32]float64 of neighbor-community
// edge weights per visited vertex; on power-law graphs that map is the
// entire inner loop — every probe hashes, every pass re-allocates
// buckets, and the GC churns on millions of tiny maps. The engine
// replaces all of them with one pooled, epoch-stamped dense scatter:
//
//   - moveScatter accumulates "weight from v into community c" in a
//     dense float64 array guarded by a stamp array. A gather costs
//     O(deg(v)) array writes, the reset costs a single epoch bump, and
//     after warm-up the whole pass allocates nothing.
//   - moveBatch-synchronous parallelism: each pass is cut into fixed
//     batches (width independent of the worker count). Workers propose
//     moves against the frozen batch-start state; proposals are then
//     re-validated and applied serially in batch order. Results are
//     identical for EVERY worker count (including 1), each applied
//     move strictly increases Q, and the propose phase is race-free
//     because it only reads shared state.
//   - the Louvain level hierarchy lives in two ping-ponged CSR buffers
//     inside the workspace, so contraction does not call graph.Build
//     and a warm workspace runs the full multilevel heuristic with
//     zero steady-state allocations.
//
// Determinism contract: a fixed seed yields an identical partition for
// every worker count. The shuffle is the same LCG pseudo-shuffle the
// seed's weightedLocalMove used (rand.Shuffle cannot be replicated
// without allocating closures), the candidate set of a batch depends
// only on the frozen state, and the serial apply order is the batch
// order. All edge weights are integer-valued edge multiplicities, so
// every float64 sum here is exact and order-independent; equal-gain
// ties break toward the smallest community id.

// moveBatch is the propose/apply batch width of a local-moving pass.
// It is a fixed constant — NOT derived from the worker count — so the
// batch boundaries, and therefore the result, are identical no matter
// how many workers propose. 4096 vertices amortize the barrier cost
// while keeping the frozen state fresh enough that almost every
// proposal survives re-validation.
const moveBatch = 4096

// louvainPasses caps local-moving passes per Louvain level, matching
// the seed's weightedLocalMove bound.
const louvainPasses = 16

// moveSeed expands a user seed into the LCG state of the
// pseudo-shuffle (same mixing constants as the seed's engine).
func moveSeed(seed int64) uint64 {
	return uint64(seed)*2862933555777941757 + 3037000493
}

// scratch returns buf resized to n, reallocating only on growth, so a
// warm workspace reuses its arrays allocation-free. Contents are
// unspecified; callers that need zeroing clear explicitly.
func scratch[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// moveScatter is the dense replacement for map[int32]float64 neighbor
// accumulation: wsum[c] is valid iff stamp[c] equals the current
// epoch, and touched lists the valid entries. begin is O(1) — it bumps
// the epoch; when the uint32 epoch wraps the stamps are cleared once
// every 2^32-1 gathers.
type moveScatter struct {
	wsum    []float64
	stamp   []uint32
	touched []int32
	epoch   uint32
}

func (s *moveScatter) ensure(k int) {
	if len(s.stamp) >= k {
		return
	}
	s.wsum = make([]float64, k)
	s.stamp = make([]uint32, k)
	s.epoch = 0
}

func (s *moveScatter) begin() {
	s.touched = s.touched[:0]
	s.epoch++
	if s.epoch == 0 {
		clear(s.stamp)
		s.epoch = 1
	}
}

func (s *moveScatter) add(c int32, w float64) {
	if s.stamp[c] != s.epoch {
		s.stamp[c] = s.epoch
		s.wsum[c] = w
		s.touched = append(s.touched, c)
		return
	}
	s.wsum[c] += w
}

// get returns the accumulated weight into c, zero if untouched.
func (s *moveScatter) get(c int32) float64 {
	if s.stamp[c] == s.epoch {
		return s.wsum[c]
	}
	return 0
}

// relabeler densifies arbitrary labels to [0, n) in first-seen order —
// the stamp/epoch analogue of the map[int32]int32 the seed's densify
// and weightedLocalMove tails used.
type relabeler struct {
	remap []int32
	stamp []uint32
	epoch uint32
	next  int32
}

func (r *relabeler) ensure(k int) {
	if len(r.stamp) >= k {
		return
	}
	r.remap = make([]int32, k)
	r.stamp = make([]uint32, k)
	r.epoch = 0
}

func (r *relabeler) begin() {
	r.next = 0
	r.epoch++
	if r.epoch == 0 {
		clear(r.stamp)
		r.epoch = 1
	}
}

// id returns the dense id of label c, assigning the next free id on
// first sight.
func (r *relabeler) id(c int32) int32 {
	if r.stamp[c] != r.epoch {
		r.stamp[c] = r.epoch
		r.remap[c] = r.next
		r.next++
	}
	return r.remap[c]
}

// moveView is the graph a local-moving pass runs on: either the
// original CSR (w == nil means unit arc weights, kv == nil means the
// vertex strength is its arc count) or a contracted Louvain level
// (weighted arcs, kv[v] = total original degree inside supervertex v).
type moveView struct {
	off []int64
	adj []int32
	w   []float64
	kv  []float64
}

func (vw moveView) strength(v int32) float64 {
	if vw.kv != nil {
		return vw.kv[v]
	}
	return float64(vw.off[v+1] - vw.off[v])
}

// MoveWorkspace is the reusable state of the local-moving engine.
// Acquire one with AcquireMoveWorkspace, call Louvain/Refine, and
// release it; after a warm-up run on a given graph size, repeated runs
// allocate nothing. Clusterings returned by the workspace methods
// alias workspace memory and are valid until the next call on the same
// workspace — the package-level Louvain and Refine wrappers copy.
// A workspace is not safe for concurrent use, but its methods
// parallelize internally across the requested workers.
type MoveWorkspace struct {
	// Shared move state (indexed by current-level vertex/community).
	assign []int32
	degsum []float64
	free   []int32
	order  []int32
	m      float64
	rng    uint64

	// Per-worker propose state.
	sc   []*moveScatter
	cand [][]int32

	rel relabeler

	// Louvain: original-vertex mapping and the ping-ponged level CSR.
	mapping []int32
	lvOff   [2][]int64
	lvAdj   [2][]int32
	lvW     [2][]float64
	lvKv    [2][]float64

	// Contraction scratch: community member lists via counting sort,
	// per-community arc-count weights for degree-aware partitioning,
	// and per-worker CSR output buffers for the parallel arm.
	cCursor []int64
	cMember []int32
	cArcs   []int64
	cAdj    [][]int32
	cW      [][]float64
	bounds  []int

	// Exact modularity accounting (mirrors Modularity bit for bit).
	qIntra []int64
	qDeg   []int64
}

var movePool = par.NewPool(func() *MoveWorkspace { return &MoveWorkspace{} })

// AcquireMoveWorkspace returns a pooled workspace for the local-moving
// engine.
func AcquireMoveWorkspace() *MoveWorkspace { return movePool.Get() }

// ReleaseMoveWorkspace returns a workspace to the pool. Clusterings
// returned by the workspace alias its memory and must be copied first.
func ReleaseMoveWorkspace(ws *MoveWorkspace) { movePool.Put(ws) }

// ensureMove sizes the engine state for n vertices, community ids in
// [0, k), and the given worker count.
func (ws *MoveWorkspace) ensureMove(n, k, workers int) {
	ws.assign = scratch(ws.assign, n)
	ws.order = scratch(ws.order, n)
	ws.degsum = scratch(ws.degsum, k)
	ws.rel.ensure(k)
	for len(ws.sc) < workers {
		ws.sc = append(ws.sc, &moveScatter{})
	}
	for len(ws.cand) < workers {
		ws.cand = append(ws.cand, nil)
	}
	for w := 0; w < workers; w++ {
		ws.sc[w].ensure(k)
	}
}

// bestMove gathers v's neighbor communities into sc and returns the
// best strictly-improving move target, its gain, and whether the best
// move is a detach into a fresh community (Refine only). Ties on gain
// break toward the smaller community id, so the answer is independent
// of the touched-list order. Reads shared state only — safe to run
// concurrently with other bestMove calls.
func (ws *MoveWorkspace) bestMove(sc *moveScatter, vw moveView, v int32, allowDetach bool) (int32, float64, bool) {
	sc.begin()
	lo, hi := vw.off[v], vw.off[v+1]
	if vw.w == nil {
		for a := lo; a < hi; a++ {
			sc.add(ws.assign[vw.adj[a]], 1)
		}
	} else {
		for a := lo; a < hi; a++ {
			sc.add(ws.assign[vw.adj[a]], vw.w[a])
		}
	}
	cv := ws.assign[v]
	kv := vw.strength(v)
	lcv := sc.get(cv)
	m := ws.m
	bestD := cv
	bestGain := 0.0
	for _, d := range sc.touched {
		if d == cv {
			continue
		}
		ld := sc.wsum[d]
		gain := (ld-lcv)/m - kv*(ws.degsum[d]-(ws.degsum[cv]-kv))/(2*m*m)
		if gain > bestGain || (gain == bestGain && gain > 0 && d < bestD) {
			bestGain = gain
			bestD = d
		}
	}
	detach := false
	if allowDetach {
		if gn := -lcv/m + kv*(ws.degsum[cv]-kv)/(2*m*m); gn > bestGain {
			bestGain = gn
			detach = true
		}
	}
	return bestD, bestGain, detach
}

// applyMove commits a validated move. Detach pops the fresh id BEFORE
// the emptied source community is pushed, preserving the seed engine's
// free-list order (a vertex never detaches into the id it vacated).
func (ws *MoveWorkspace) applyMove(vw moveView, v, d int32, detach bool) {
	if detach {
		d = ws.free[len(ws.free)-1]
		ws.free = ws.free[:len(ws.free)-1]
	}
	kv := vw.strength(v)
	cv := ws.assign[v]
	ws.degsum[cv] -= kv
	if ws.degsum[cv] == 0 && ws.free != nil {
		ws.free = append(ws.free, cv)
	}
	ws.degsum[d] += kv
	ws.assign[v] = d
}

// runPassSerial is the workers==1 arm: same propose-then-apply batch
// structure as the parallel arm (so results match it exactly), written
// without closures so nothing escapes and a warm pass is alloc-free.
func (ws *MoveWorkspace) runPassSerial(vw moveView, n int, allowDetach bool) int {
	sc := ws.sc[0]
	moves := 0
	for base := 0; base < n; base += moveBatch {
		end := min(base+moveBatch, n)
		cand := ws.cand[0][:0]
		for i := base; i < end; i++ {
			v := ws.order[i]
			if _, gain, _ := ws.bestMove(sc, vw, v, allowDetach); gain > 0 {
				cand = append(cand, v)
			}
		}
		ws.cand[0] = cand
		for _, v := range cand {
			d, gain, detach := ws.bestMove(sc, vw, v, allowDetach)
			if gain <= 0 {
				continue
			}
			ws.applyMove(vw, v, d, detach)
			moves++
		}
	}
	return moves
}

// runPassParallel proposes each batch across the workers against the
// frozen batch-start state (per-worker scatters and candidate buffers,
// no shared writes), then re-validates and applies serially in batch
// order. ForChunkedN chunks are contiguous, so concatenating the
// per-worker candidate buffers in worker order IS the batch order, and
// the candidate set depends only on the frozen state — the applied
// move sequence is therefore identical for every worker count.
func (ws *MoveWorkspace) runPassParallel(vw moveView, n int, allowDetach bool, workers int) int {
	moves := 0
	for base := 0; base < n; base += moveBatch {
		end := min(base+moveBatch, n)
		bn := end - base
		par.ForChunkedN(bn, workers, func(wk, lo, hi int) {
			sc := ws.sc[wk]
			cand := ws.cand[wk][:0]
			for i := lo; i < hi; i++ {
				v := ws.order[base+i]
				if _, gain, _ := ws.bestMove(sc, vw, v, allowDetach); gain > 0 {
					cand = append(cand, v)
				}
			}
			ws.cand[wk] = cand
		})
		// ForChunkedN clamps to bn workers on short batches; truncate
		// the unused buffers so stale candidates never replay.
		used := min(workers, bn)
		for wk := used; wk < workers; wk++ {
			ws.cand[wk] = ws.cand[wk][:0]
		}
		for wk := 0; wk < used; wk++ {
			for _, v := range ws.cand[wk] {
				d, gain, detach := ws.bestMove(ws.sc[0], vw, v, allowDetach)
				if gain <= 0 {
					continue
				}
				ws.applyMove(vw, v, d, detach)
				moves++
			}
		}
	}
	return moves
}

// localMove runs batch-synchronous local moving to convergence (or the
// pass cap) on the view. Callers prime ws.assign, ws.degsum, and (for
// detach moves) ws.free. Returns whether any move was applied.
//
// Convergence: every applied move is re-validated against the live
// state with the full argmax, so it strictly increases Q (weights are
// integral, sums exact) — the move count is finite. A pass that
// applies no move saw live state throughout (nothing changed it), so
// its empty candidate set certifies a fixpoint of the serial greedy.
func (ws *MoveWorkspace) localMove(vw moveView, n int, m float64, seed int64, workers, maxPasses int, allowDetach bool) bool {
	ws.m = m
	ws.rng = moveSeed(seed)
	order := ws.order[:n]
	for i := range order {
		order[i] = int32(i)
	}
	improved := false
	for pass := 0; pass < maxPasses; pass++ {
		// The seed engine's deterministic LCG pseudo-shuffle.
		for i := n - 1; i > 0; i-- {
			ws.rng = ws.rng*6364136223846793005 + 1442695040888963407
			j := int(ws.rng % uint64(i+1))
			order[i], order[j] = order[j], order[i]
		}
		var moves int
		if workers > 1 {
			moves = ws.runPassParallel(vw, n, allowDetach, workers)
		} else {
			moves = ws.runPassSerial(vw, n, allowDetach)
		}
		if moves == 0 {
			break
		}
		improved = true
	}
	return improved
}

// relabelAssign densifies ws.assign[:n] in place (first-seen order)
// and returns the community count.
func (ws *MoveWorkspace) relabelAssign(n int) int {
	ws.rel.begin()
	assign := ws.assign[:n]
	for v := range assign {
		assign[v] = ws.rel.id(assign[v])
	}
	return int(ws.rel.next)
}

// contract builds the next Louvain level from the current view and the
// dense assignment: members are counting-sorted by community, each
// community's arcs are scatter-folded into its aggregated adjacency
// (first-touch order — deterministic), and intra-community arcs are
// dropped (they never influence move gains; m stays the original edge
// count). The result lands in the `slot` ping-pong buffers.
func (ws *MoveWorkspace) contract(vw moveView, n, qc, slot, workers int) moveView {
	assign := ws.assign[:n]
	ws.cCursor = scratch(ws.cCursor, qc+1)
	ws.cMember = scratch(ws.cMember, n)
	ws.cArcs = scratch(ws.cArcs, qc)
	cur := ws.cCursor
	clear(cur)
	clear(ws.cArcs)
	kvNew := scratch(ws.lvKv[slot], qc)
	clear(kvNew)
	for v := 0; v < n; v++ {
		c := assign[v]
		cur[c]++
		ws.cArcs[c] += vw.off[v+1] - vw.off[v]
		kvNew[c] += vw.strength(int32(v))
	}
	// counts -> cursors, then scatter members (stable by vertex id).
	var sum int64
	for c := 0; c < qc; c++ {
		cnt := cur[c]
		cur[c] = sum
		sum += cnt
	}
	for v := 0; v < n; v++ {
		c := assign[v]
		ws.cMember[cur[c]] = int32(v)
		cur[c]++
	}
	// cur[c] is now the END of community c's member run; the start is
	// cur[c-1] (0 for c == 0).
	offNew := scratch(ws.lvOff[slot], qc+1)
	offNew[0] = 0
	if workers > 1 && qc > 1 {
		ws.contractParallel(vw, qc, offNew, workers)
	} else {
		ws.contractRange(vw, 0, qc, offNew[1:], &ws.lvAdj[slot], &ws.lvW[slot], ws.sc[0])
		for c := 0; c < qc; c++ {
			offNew[c+1] += offNew[c]
		}
	}
	ws.lvOff[slot] = offNew
	ws.lvKv[slot] = kvNew
	if workers > 1 && qc > 1 {
		ws.lvAdj[slot] = ws.assembleParallel(offNew, qc, workers, slot)
	}
	return moveView{off: ws.lvOff[slot], adj: ws.lvAdj[slot], w: ws.lvW[slot], kv: ws.lvKv[slot]}
}

// contractRange folds communities [lo, hi) into adj/w buffers (reset
// by the caller), writing each community's aggregated arc count into
// lens[c-lo]. The member run of community c is
// cMember[cCursor[c-1]:cCursor[c]].
func (ws *MoveWorkspace) contractRange(vw moveView, lo, hi int, lens []int64, adjBuf *[]int32, wBuf *[]float64, sc *moveScatter) {
	adj := (*adjBuf)[:0]
	w := (*wBuf)[:0]
	assign := ws.assign
	for c := lo; c < hi; c++ {
		mlo := int64(0)
		if c > 0 {
			mlo = ws.cCursor[c-1]
		}
		sc.begin()
		for _, v := range ws.cMember[mlo:ws.cCursor[c]] {
			alo, ahi := vw.off[v], vw.off[v+1]
			if vw.w == nil {
				for a := alo; a < ahi; a++ {
					if d := assign[vw.adj[a]]; d != int32(c) {
						sc.add(d, 1)
					}
				}
			} else {
				for a := alo; a < ahi; a++ {
					if d := assign[vw.adj[a]]; d != int32(c) {
						sc.add(d, vw.w[a])
					}
				}
			}
		}
		lens[c-lo] = int64(len(sc.touched))
		for _, d := range sc.touched {
			adj = append(adj, d)
			w = append(w, sc.wsum[d])
		}
	}
	*adjBuf = adj
	*wBuf = w
}

// contractParallel folds disjoint degree-aware community ranges into
// per-worker buffers. The range bounds depend on the worker count but
// the per-community adjacency (first-touch order of a serial member
// scan) does not, so the assembled CSR is identical to the serial arm.
func (ws *MoveWorkspace) contractParallel(vw moveView, qc int, offNew []int64, workers int) {
	for len(ws.cAdj) < workers {
		ws.cAdj = append(ws.cAdj, nil)
		ws.cW = append(ws.cW, nil)
	}
	bounds := par.DegreeAware(ws.cArcs[:qc], workers)
	par.ForEachN(workers, workers, func(wk int) {
		lo, hi := bounds[wk], bounds[wk+1]
		if lo >= hi {
			ws.cAdj[wk] = ws.cAdj[wk][:0]
			ws.cW[wk] = ws.cW[wk][:0]
			return
		}
		ws.contractRange(vw, lo, hi, offNew[1+lo:1+hi], &ws.cAdj[wk], &ws.cW[wk], ws.sc[wk])
	})
	for c := 0; c < qc; c++ {
		offNew[c+1] += offNew[c]
	}
	ws.bounds = bounds
}

// assembleParallel copies the per-worker contraction buffers into the
// final level CSR at the offsets the prefix sum fixed.
func (ws *MoveWorkspace) assembleParallel(offNew []int64, qc, workers, slot int) []int32 {
	total := int(offNew[qc])
	adj := scratch(ws.lvAdj[slot], total)
	w := scratch(ws.lvW[slot], total)
	par.ForEachN(workers, workers, func(wk int) {
		lo := ws.bounds[wk]
		hi := ws.bounds[wk+1]
		if lo >= hi {
			return
		}
		copy(adj[offNew[lo]:offNew[hi]], ws.cAdj[wk])
		copy(w[offNew[lo]:offNew[hi]], ws.cW[wk])
	})
	ws.lvW[slot] = w
	return adj
}

// modularityScan recomputes Q of the dense assignment exactly as
// Modularity does — int64 intra/degree histograms folded in ascending
// community order — so the workspace-reported Q is bit-identical to an
// independent Modularity recomputation.
func (ws *MoveWorkspace) modularityScan(g *graph.Graph, assign []int32, count int) float64 {
	m := float64(g.NumEdges())
	if m == 0 {
		return 0
	}
	ws.qIntra = scratch(ws.qIntra, count)
	ws.qDeg = scratch(ws.qDeg, count)
	clear(ws.qIntra)
	clear(ws.qDeg)
	n := g.NumVertices()
	for vi := 0; vi < n; vi++ {
		v := int32(vi)
		cv := assign[v]
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		ws.qDeg[cv] += hi - lo
		for a := lo; a < hi; a++ {
			u := g.Adj[a]
			if u > v && assign[u] == cv {
				ws.qIntra[cv]++
			}
		}
	}
	var q float64
	twoM := 2 * m
	for c := 0; c < count; c++ {
		frac := float64(ws.qDeg[c]) / twoM
		q += float64(ws.qIntra[c])/m - frac*frac
	}
	return q
}

// Louvain runs the multilevel heuristic inside the workspace. The
// returned Assign aliases workspace memory (valid until the next call
// on ws); the package-level Louvain wrapper copies it out.
func (ws *MoveWorkspace) Louvain(g *graph.Graph, opt LouvainOptions) Clustering {
	workers := opt.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	maxLevels := opt.MaxLevels
	if maxLevels <= 0 {
		maxLevels = 16
	}
	n := g.NumVertices()
	if n == 0 || g.NumEdges() == 0 {
		return Singletons(g)
	}
	m := float64(g.NumEdges())
	ws.ensureMove(n, n, workers)
	ws.free = nil
	ws.mapping = scratch(ws.mapping, n)
	mapping := ws.mapping
	for v := range mapping {
		mapping[v] = int32(v)
	}
	// Level 0 runs directly on g's CSR: unit weights, strength = degree.
	vw := moveView{off: g.Offsets, adj: g.Adj}
	nLvl := n
	slot := 0
	for lv := 0; lv < maxLevels; lv++ {
		assign := ws.assign[:nLvl]
		degsum := ws.degsum[:nLvl]
		warm := lv == 0 && opt.InitialAssign != nil
		if warm {
			// Warm start: seed level 0 from a previous partition (the
			// ingest layer passes the prior epoch's assignment) instead
			// of singletons. Community ids live in the same [0, n)
			// space as vertex ids, so the move engine is unchanged.
			if len(opt.InitialAssign) != nLvl {
				panic("community: InitialAssign length != NumVertices")
			}
			clear(degsum)
			for v := 0; v < nLvl; v++ {
				c := opt.InitialAssign[v]
				if c < 0 || int(c) >= nLvl {
					panic("community: InitialAssign id out of range")
				}
				assign[v] = c
				degsum[c] += vw.strength(int32(v))
			}
		} else {
			for v := 0; v < nLvl; v++ {
				assign[v] = int32(v)
				degsum[v] = vw.strength(int32(v))
			}
		}
		moved := ws.localMove(vw, nLvl, m, opt.Seed+int64(lv), workers, louvainPasses, false)
		if !moved && !warm {
			break
		}
		// A warm level folds its (possibly unmoved) assignment into the
		// mapping and contracts, so the seed partition is never lost.
		qc := ws.relabelAssign(nLvl)
		for v := 0; v < n; v++ {
			mapping[v] = ws.assign[mapping[v]]
		}
		if qc <= 1 {
			break
		}
		vw = ws.contract(vw, nLvl, qc, slot, workers)
		nLvl = qc
		slot = 1 - slot
	}
	ws.rel.begin()
	for v := range mapping {
		mapping[v] = ws.rel.id(mapping[v])
	}
	count := int(ws.rel.next)
	return Clustering{
		Assign: mapping,
		Count:  count,
		Q:      ws.modularityScan(g, mapping, count),
	}
}

// Refine improves a clustering by batch-synchronous greedy vertex
// moves, including detaching into a fresh singleton community; it
// never decreases Q. The returned Assign aliases workspace memory; the
// package-level Refine wrapper copies it out.
func (ws *MoveWorkspace) Refine(g *graph.Graph, c Clustering, maxPasses int, seed int64, workers int) Clustering {
	if workers <= 0 {
		workers = par.Workers()
	}
	if maxPasses <= 0 {
		maxPasses = 16
	}
	n := g.NumVertices()
	if n == 0 || g.NumEdges() == 0 {
		return c
	}
	// Community id space: the input ids plus n+1 spare ids so every
	// vertex could in principle detach (same headroom as the seed's
	// moveState).
	k := n + c.Count + 1
	ws.ensureMove(n, k, workers)
	assign := ws.assign[:n]
	copy(assign, c.Assign)
	degsum := ws.degsum[:k]
	clear(degsum)
	for v := 0; v < n; v++ {
		degsum[assign[v]] += float64(g.Offsets[v+1] - g.Offsets[v])
	}
	ws.free = scratch(ws.free, 0)
	for id := int32(c.Count); int(id) < k; id++ {
		ws.free = append(ws.free, id)
	}
	vw := moveView{off: g.Offsets, adj: g.Adj}
	ws.localMove(vw, n, float64(g.NumEdges()), seed, workers, maxPasses, true)
	count := ws.relabelAssign(n)
	return Clustering{
		Assign: assign,
		Count:  count,
		Q:      ws.modularityScan(g, assign, count),
	}
}
