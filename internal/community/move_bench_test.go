package community

import (
	"os"
	"strconv"
	"testing"

	"snap/internal/datasets"
	"snap/internal/generate"
	"snap/internal/graph"
)

// moveBenchScale returns the RMAT scale for the community benchmarks:
// SNAP_BENCH_SCALE when set, else 14 under -short (CI smoke) and 18
// for a full run (the EXPERIMENTS.md numbers).
func moveBenchScale(tb testing.TB) int {
	if s := os.Getenv("SNAP_BENCH_SCALE"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			tb.Fatalf("bad SNAP_BENCH_SCALE %q: %v", s, err)
		}
		return v
	}
	if testing.Short() {
		return 14
	}
	return 18
}

func communityRMAT(scale int) *graph.Graph {
	n := 1 << scale
	return generate.RMAT(n, 8*n, generate.DefaultRMAT(), 1)
}

func BenchmarkLouvainRMAT(b *testing.B) {
	g := communityRMAT(moveBenchScale(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Louvain(g, LouvainOptions{Seed: 1})
	}
}

// BenchmarkLouvainRMATMapBaseline is the seed implementation (map
// gathers, graph.Build contraction) — the "before" row of the
// EXPERIMENTS.md table.
func BenchmarkLouvainRMATMapBaseline(b *testing.B) {
	g := communityRMAT(moveBenchScale(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		louvainMapBaseline(g, 0, 1)
	}
}

func BenchmarkRefineRMAT(b *testing.B) {
	g := communityRMAT(moveBenchScale(b))
	start := Singletons(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Refine(g, start, 4, 1)
	}
}

func BenchmarkRefineRMATMapBaseline(b *testing.B) {
	g := communityRMAT(moveBenchScale(b))
	start := Singletons(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refineMapBaseline(g, start, 4, 1)
	}
}

func BenchmarkPLARMAT(b *testing.B) {
	g := communityRMAT(moveBenchScale(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PLA(g, PLAOptions{Seed: 1})
	}
}

func BenchmarkLouvainKarate(b *testing.B) {
	g := datasets.Karate()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Louvain(g, LouvainOptions{Seed: 1})
	}
}

func BenchmarkRefineKarate(b *testing.B) {
	g := datasets.Karate()
	start := Singletons(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Refine(g, start, 16, 1)
	}
}

// The warm-workspace benchmarks hold a MoveWorkspace across
// iterations; with -benchmem they certify the zero-allocs-steady-state
// acceptance criterion.
func BenchmarkLouvainWorkspaceKarate(b *testing.B) {
	g := datasets.Karate()
	ws := AcquireMoveWorkspace()
	defer ReleaseMoveWorkspace(ws)
	opt := LouvainOptions{Workers: 1, Seed: 1}
	ws.Louvain(g, opt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Louvain(g, opt)
	}
}

func BenchmarkRefineWorkspaceKarate(b *testing.B) {
	g := datasets.Karate()
	start := Singletons(g)
	ws := AcquireMoveWorkspace()
	defer ReleaseMoveWorkspace(ws)
	ws.Refine(g, start, 16, 1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Refine(g, start, 16, 1, 1)
	}
}

func BenchmarkLouvainWorkspaceRMAT(b *testing.B) {
	g := communityRMAT(moveBenchScale(b))
	ws := AcquireMoveWorkspace()
	defer ReleaseMoveWorkspace(ws)
	opt := LouvainOptions{Workers: 1, Seed: 1}
	ws.Louvain(g, opt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Louvain(g, opt)
	}
}
