package community

import (
	"testing"

	"snap/internal/generate"
)

func TestLabelPropagationTwoTriangles(t *testing.T) {
	g := twoTriangles(t)
	c := LabelPropagation(g, 0, 3)
	// LPA should find the two triangles (occasionally it collapses to
	// one community on tiny graphs; both are acceptable stable states,
	// but with this seed it should find two).
	if c.Count < 1 || c.Count > 3 {
		t.Fatalf("LPA count = %d", c.Count)
	}
	if c.Count == 2 && c.Q < 0.3 {
		t.Fatalf("LPA found 2 communities with Q=%.3f", c.Q)
	}
}

func TestLabelPropagationPlanted(t *testing.T) {
	g, truth := generate.PlantedPartition(4, 40, 0.5, 0.002, 6)
	c := LabelPropagation(g, 0, 2)
	if v := NMI(truth, c.Assign); v < 0.8 {
		t.Fatalf("LPA NMI = %.3f on a strong planted partition", v)
	}
}

func TestLabelPropagationDeterministic(t *testing.T) {
	g, _ := generate.PlantedPartition(3, 30, 0.4, 0.01, 2)
	a := LabelPropagation(g, 0, 9)
	b := LabelPropagation(g, 0, 9)
	if a.Count != b.Count || a.Q != b.Q {
		t.Fatalf("LPA not deterministic: %v vs %v", a, b)
	}
}

func TestLabelPropagationEdgeless(t *testing.T) {
	g := generate.Ring(1) // single vertex, zero edges after self-loop drop
	c := LabelPropagation(g, 0, 1)
	if len(c.Assign) != 1 {
		t.Fatal("size")
	}
}
