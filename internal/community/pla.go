package community

import (
	"math/rand"
	"sort"

	"snap/internal/components"
	"snap/internal/graph"
	"snap/internal/par"
)

// LocalMetric selects the local measure pLA uses to pick which
// neighboring cluster a seed vertex tries to join (the paper suggests
// degree or clustering coefficient).
type LocalMetric int

const (
	// MetricDegree attaches seeds toward their highest-degree neighbor.
	MetricDegree LocalMetric = iota
	// MetricClusteringCoeff attaches seeds toward the neighbor with
	// the highest local clustering coefficient.
	MetricClusteringCoeff
)

// PLAOptions configures the greedy local aggregation algorithm
// (Algorithm 3 of the paper).
type PLAOptions struct {
	// Workers bounds parallelism; <= 0 means par.Workers(). Distinct
	// connected components (after bridge removal) aggregate
	// concurrently — the paper's relaxation of global synchronization.
	Workers int
	// Metric is the local attachment measure.
	Metric LocalMetric
	// MaxPasses bounds the number of aggregation sweeps per component
	// (each pass visits every vertex once in random order). 0 => 8.
	MaxPasses int
	// Seed makes the random seed-vertex ordering deterministic.
	Seed int64
}

// PLA is the parallel greedy local aggregation clustering algorithm
// (pLA): bridges are removed via biconnected components, the remaining
// components are aggregated concurrently using a local metric with a
// modularity acceptance test, and finally the per-component clusters
// are amalgamated across the removed bridges when that improves
// modularity.
func PLA(g *graph.Graph, opt PLAOptions) Clustering {
	workers := opt.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	if opt.MaxPasses <= 0 {
		opt.MaxPasses = 8
	}
	n := g.NumVertices()
	mEdges := g.NumEdges()
	if n == 0 {
		return Clustering{Assign: nil, Count: 0, Q: 0}
	}
	if mEdges == 0 {
		return Singletons(g)
	}

	// Steps 1–2: remove bridges, split into components.
	bc := components.Biconnected(g)
	alive := make([]bool, mEdges)
	for i := range alive {
		alive[i] = !bc.Bridge[i]
	}
	lab := components.Connected(g, alive)
	comps := lab.Members()

	// During the concurrent per-component phase, bridge arcs are
	// masked so no worker ever reads another component's state
	// (bridges are exactly the arcs that cross components here).
	st := newPLAState(g, bc.Bridge)

	// Precompute the local metric scores once.
	var metric []float64
	if opt.Metric == MetricClusteringCoeff {
		metric = localClusteringScores(g, workers)
	} else {
		metric = make([]float64, n)
		for v := 0; v < n; v++ {
			metric[v] = float64(g.Degree(int32(v)))
		}
	}

	// Step 3: aggregate each component concurrently. Components own
	// disjoint vertex (and hence cluster-id) ranges, and the contact
	// rows exclude the masked bridges, so no locking is needed across
	// them.
	par.ForGuidedN(len(comps), 1, workers, func(ci int) {
		comp := comps[ci]
		if len(comp) < 2 {
			return
		}
		rng := rand.New(rand.NewSource(opt.Seed + int64(ci)*7919))
		st.aggregate(comp, metric, opt.MaxPasses, rng)
	})

	// Top-level amalgamation (serial): the bridge edges become visible
	// — each one's unit weight joins the contact rows of the cluster
	// pair it connects — and cluster pairs across them merge whenever
	// modularity improves.
	st.skipEdge = nil
	ends := g.EdgeEndpoints()
	for eid, e := range ends {
		if !bc.Bridge[eid] {
			continue
		}
		cu, cv := st.assign[e.U], st.assign[e.V]
		if cu != cv {
			st.rowID[cu], st.rowW[cu] = rowAdd(st.rowID[cu], st.rowW[cu], cv, 1)
			st.rowID[cv], st.rowW[cv] = rowAdd(st.rowID[cv], st.rowW[cv], cu, 1)
		}
	}
	for eid, e := range ends {
		if !bc.Bridge[eid] {
			continue
		}
		cu, cv := st.assign[e.U], st.assign[e.V]
		if cu != cv {
			st.tryMerge(cu, cv)
		}
	}

	out := densify(g, st.assign, workers)
	// Final greedy step: individual vertices keep being added to the
	// cluster they fit best (single-vertex moves with a modularity
	// acceptance test), correcting stragglers the cluster-level merges
	// placed badly.
	return Refine(g, out, 4, opt.Seed)
}

// plaCand is an adjacent-cluster merge candidate ranked first by the
// seed's local affinity to the cluster (how many of its edges point
// there — a purely local measure), then by the local metric of its
// best contact vertex.
type plaCand struct {
	cluster  int32
	contacts int
	score    float64
}

func sortCandsByScore(cands []plaCand) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].contacts != cands[j].contacts {
			return cands[i].contacts > cands[j].contacts
		}
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].cluster < cands[j].cluster
	})
}

// plaScratch is the pooled per-aggregation scratch for gathering a
// seed vertex's adjacent-cluster candidates: an epoch-stamped position
// index replaces the per-seed map[int32]int, and the candidate slice
// is reused across seeds.
type plaScratch struct {
	pos   []int32
	stamp []uint32
	epoch uint32
	cands []plaCand
}

var plaScratchPool = par.NewPool(func() *plaScratch { return &plaScratch{} })

func (s *plaScratch) ensure(k int) {
	if len(s.stamp) >= k {
		return
	}
	s.pos = make([]int32, k)
	s.stamp = make([]uint32, k)
	s.epoch = 0
}

func (s *plaScratch) begin() {
	s.cands = s.cands[:0]
	s.epoch++
	if s.epoch == 0 {
		clear(s.stamp)
		s.epoch = 1
	}
}

// plaState is the shared cluster accounting for pLA. Cluster ids live
// in vertex-id space; degsum/member/rows are indexed by cluster id.
//
// rowID[c]/rowW[c] are the cluster's CONTACT ROW: the sorted ids of
// its neighboring clusters and the live count of unmasked edges to
// each. The rows are the incremental replacement for the seed
// implementation's member-list rescans — tryMerge reads `between` with
// one binary search, and a merge folds the smaller row into the larger
// with a two-pointer union (the pMA dynamic-row idiom) plus a fix-up
// of each affected neighbor's row.
type plaState struct {
	g      *graph.Graph
	m      float64
	assign []int32
	degsum []int64
	member [][]int32
	rowID  [][]int32
	rowW   [][]int32
	// skipEdge masks arcs (by edge id) that must not be scanned; nil
	// means every arc is visible.
	skipEdge []bool
}

// newPLAState builds the singleton-cluster state with contact rows
// over the unmasked arcs. Initial rows slice one shared arena (CSR
// adjacency is sorted, so each vertex's row is a run-length fold of
// its arc list).
func newPLAState(g *graph.Graph, skipEdge []bool) *plaState {
	n := g.NumVertices()
	st := &plaState{
		g:        g,
		m:        float64(g.NumEdges()),
		assign:   make([]int32, n),
		degsum:   make([]int64, n),
		member:   make([][]int32, n),
		rowID:    make([][]int32, n),
		rowW:     make([][]int32, n),
		skipEdge: skipEdge,
	}
	arenaID := make([]int32, 0, g.NumArcs())
	arenaW := make([]int32, 0, g.NumArcs())
	for v := 0; v < n; v++ {
		st.assign[v] = int32(v)
		st.degsum[v] = int64(g.Degree(int32(v)))
		st.member[v] = []int32{int32(v)}
		start := len(arenaID)
		adj := g.Neighbors(int32(v))
		eids := g.EdgeIDs(int32(v))
		for ai, u := range adj {
			if skipEdge != nil && skipEdge[eids[ai]] {
				continue
			}
			if last := len(arenaID) - 1; last >= start && arenaID[last] == u {
				arenaW[last]++
				continue
			}
			arenaID = append(arenaID, u)
			arenaW = append(arenaW, 1)
		}
		st.rowID[v] = arenaID[start:len(arenaID):len(arenaID)]
		st.rowW[v] = arenaW[start:len(arenaW):len(arenaW)]
	}
	return st
}

// rowFind returns the index of x in the sorted ids, or -1.
func rowFind(ids []int32, x int32) int {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if ids[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ids) && ids[lo] == x {
		return lo
	}
	return -1
}

// rowAdd accumulates weight w onto entry x, inserting it in sorted
// position when absent.
func rowAdd(ids []int32, wts []int32, x int32, w int32) ([]int32, []int32) {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if ids[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ids) && ids[lo] == x {
		wts[lo] += w
		return ids, wts
	}
	ids = append(ids, 0)
	wts = append(wts, 0)
	copy(ids[lo+1:], ids[lo:])
	copy(wts[lo+1:], wts[lo:])
	ids[lo] = x
	wts[lo] = w
	return ids, wts
}

// rowRemove deletes entry x, returning its weight (0 if absent).
func rowRemove(ids []int32, wts []int32, x int32) ([]int32, []int32, int32) {
	i := rowFind(ids, x)
	if i < 0 {
		return ids, wts, 0
	}
	w := wts[i]
	copy(ids[i:], ids[i+1:])
	copy(wts[i:], wts[i+1:])
	return ids[:len(ids)-1], wts[:len(wts)-1], w
}

// aggregate runs random-seed greedy aggregation passes over one
// component until a pass makes no merge or the pass budget is spent.
func (st *plaState) aggregate(comp []int32, metric []float64, maxPasses int, rng *rand.Rand) {
	order := append([]int32(nil), comp...)
	sc := plaScratchPool.Get()
	sc.ensure(st.g.NumVertices())
	for pass := 0; pass < maxPasses; pass++ {
		rng.Shuffle(len(order), func(i, j int) {
			order[i], order[j] = order[j], order[i]
		})
		merges := 0
		for _, v := range order {
			// Step 6: v is the random seed. Rank the adjacent
			// clusters by the local metric of their best contact
			// vertex, and greedily attempt merges in that order until
			// one passes the modularity test (steps 7–8).
			cv := st.assign[v]
			sc.begin()
			adj := st.g.Neighbors(v)
			eids := st.g.EdgeIDs(v)
			for ai, u := range adj {
				if st.skipEdge != nil && st.skipEdge[eids[ai]] {
					continue
				}
				cu := st.assign[u]
				if cu == cv {
					continue
				}
				if sc.stamp[cu] == sc.epoch {
					c := &sc.cands[sc.pos[cu]]
					c.contacts++
					if metric[u] > c.score {
						c.score = metric[u]
					}
					continue
				}
				sc.stamp[cu] = sc.epoch
				sc.pos[cu] = int32(len(sc.cands))
				sc.cands = append(sc.cands, plaCand{cluster: cu, contacts: 1, score: metric[u]})
			}
			if len(sc.cands) == 0 {
				continue
			}
			sortCandsByScore(sc.cands)
			tries := len(sc.cands)
			if tries > 4 {
				tries = 4
			}
			for i := 0; i < tries; i++ {
				if st.tryMerge(cv, sc.cands[i].cluster) {
					merges++
					break
				}
			}
		}
		if merges == 0 {
			break
		}
	}
	plaScratchPool.Put(sc)
}

// tryMerge merges clusters c and d when the modularity delta
// m_cd/m − 2 a_c a_d is positive, reporting whether it merged. The
// inter-cluster edge count comes straight from the maintained contact
// rows — one binary search instead of the seed engine's rescan of the
// smaller member list.
func (st *plaState) tryMerge(c, d int32) bool {
	if c == d {
		return false
	}
	small, other := c, d
	if len(st.member[small]) > len(st.member[other]) {
		small, other = other, small
	}
	var between int64
	if i := rowFind(st.rowID[small], other); i >= 0 {
		between = int64(st.rowW[small][i])
	}
	twoM := 2 * st.m
	dq := float64(between)/st.m - 2*(float64(st.degsum[c])/twoM)*(float64(st.degsum[d])/twoM)
	if dq <= 0 {
		return false
	}
	st.fold(small, other)
	return true
}

// fold merges cluster s into cluster o: members, degree sums, and the
// contact rows. Every neighbor e of s re-points its s entry at o, and
// the surviving row of o is the sorted two-pointer union of both rows
// with the mutual pair (now intra) dropped.
func (st *plaState) fold(s, o int32) {
	sID, sW := st.rowID[s], st.rowW[s]
	for _, e := range sID {
		if e == o {
			continue
		}
		var w int32
		st.rowID[e], st.rowW[e], w = rowRemove(st.rowID[e], st.rowW[e], s)
		st.rowID[e], st.rowW[e] = rowAdd(st.rowID[e], st.rowW[e], o, w)
	}
	oID, oW := st.rowID[o], st.rowW[o]
	mergedID := make([]int32, 0, len(oID)+len(sID))
	mergedW := make([]int32, 0, len(oID)+len(sID))
	i, j := 0, 0
	for i < len(oID) || j < len(sID) {
		switch {
		case j == len(sID) || (i < len(oID) && oID[i] < sID[j]):
			if oID[i] != s {
				mergedID = append(mergedID, oID[i])
				mergedW = append(mergedW, oW[i])
			}
			i++
		case i == len(oID) || sID[j] < oID[i]:
			if sID[j] != o {
				mergedID = append(mergedID, sID[j])
				mergedW = append(mergedW, sW[j])
			}
			j++
		default: // common neighbor
			mergedID = append(mergedID, oID[i])
			mergedW = append(mergedW, oW[i]+sW[j])
			i++
			j++
		}
	}
	st.rowID[o], st.rowW[o] = mergedID, mergedW
	st.rowID[s], st.rowW[s] = nil, nil

	for _, v := range st.member[s] {
		st.assign[v] = o
	}
	st.member[o] = append(st.member[o], st.member[s]...)
	st.member[s] = nil
	st.degsum[o] += st.degsum[s]
	st.degsum[s] = 0
}

// localClusteringScores computes local clustering coefficients on the
// shared sorted-adjacency intersection kernel (metrics uses the same
// one; importing metrics here would be an upward dependency).
func localClusteringScores(g *graph.Graph, workers int) []float64 {
	n := g.NumVertices()
	out := make([]float64, n)
	par.ForGuidedN(n, 64, workers, func(vi int) {
		v := int32(vi)
		adj := g.Neighbors(v)
		d := len(adj)
		if d < 2 {
			return
		}
		links := 0
		for i := 0; i < d; i++ {
			links += graph.SortedIntersectCount(g.Neighbors(adj[i]), adj[i+1:])
		}
		out[vi] = 2 * float64(links) / (float64(d) * float64(d-1))
	})
	return out
}
