package community

import (
	"math/rand"
	"sort"

	"snap/internal/components"
	"snap/internal/graph"
	"snap/internal/par"
)

// LocalMetric selects the local measure pLA uses to pick which
// neighboring cluster a seed vertex tries to join (the paper suggests
// degree or clustering coefficient).
type LocalMetric int

const (
	// MetricDegree attaches seeds toward their highest-degree neighbor.
	MetricDegree LocalMetric = iota
	// MetricClusteringCoeff attaches seeds toward the neighbor with
	// the highest local clustering coefficient.
	MetricClusteringCoeff
)

// PLAOptions configures the greedy local aggregation algorithm
// (Algorithm 3 of the paper).
type PLAOptions struct {
	// Workers bounds parallelism; <= 0 means par.Workers(). Distinct
	// connected components (after bridge removal) aggregate
	// concurrently — the paper's relaxation of global synchronization.
	Workers int
	// Metric is the local attachment measure.
	Metric LocalMetric
	// MaxPasses bounds the number of aggregation sweeps per component
	// (each pass visits every vertex once in random order). 0 => 8.
	MaxPasses int
	// Seed makes the random seed-vertex ordering deterministic.
	Seed int64
}

// PLA is the parallel greedy local aggregation clustering algorithm
// (pLA): bridges are removed via biconnected components, the remaining
// components are aggregated concurrently using a local metric with a
// modularity acceptance test, and finally the per-component clusters
// are amalgamated across the removed bridges when that improves
// modularity.
func PLA(g *graph.Graph, opt PLAOptions) Clustering {
	workers := opt.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	if opt.MaxPasses <= 0 {
		opt.MaxPasses = 8
	}
	n := g.NumVertices()
	mEdges := g.NumEdges()
	if n == 0 {
		return Clustering{Assign: nil, Count: 0, Q: 0}
	}
	if mEdges == 0 {
		return Singletons(g)
	}

	// Steps 1–2: remove bridges, split into components.
	bc := components.Biconnected(g)
	alive := make([]bool, mEdges)
	for i := range alive {
		alive[i] = !bc.Bridge[i]
	}
	lab := components.Connected(g, alive)
	comps := lab.Members()

	st := &plaState{
		g:      g,
		m:      float64(mEdges),
		assign: make([]int32, n),
		degsum: make([]int64, n),
		member: make([][]int32, n),
		// During the concurrent per-component phase, bridge arcs are
		// masked so no worker ever reads another component's state
		// (bridges are exactly the arcs that cross components here).
		skipEdge: bc.Bridge,
	}
	for v := 0; v < n; v++ {
		st.assign[v] = int32(v)
		st.degsum[v] = int64(g.Degree(int32(v)))
		st.member[v] = []int32{int32(v)}
	}

	// Precompute the local metric scores once.
	var metric []float64
	if opt.Metric == MetricClusteringCoeff {
		metric = localClusteringScores(g, workers)
	} else {
		metric = make([]float64, n)
		for v := 0; v < n; v++ {
			metric[v] = float64(g.Degree(int32(v)))
		}
	}

	// Step 3: aggregate each component concurrently. Components own
	// disjoint vertex (and hence cluster-id) ranges, so no locking is
	// needed across them.
	par.ForGuidedN(len(comps), 1, workers, func(ci int) {
		comp := comps[ci]
		if len(comp) < 2 {
			return
		}
		rng := rand.New(rand.NewSource(opt.Seed + int64(ci)*7919))
		st.aggregate(comp, metric, opt.MaxPasses, rng)
	})

	// Top-level amalgamation (serial): bridges are visible again, and
	// cluster pairs across them merge whenever modularity improves.
	st.skipEdge = nil
	for eid, e := range g.EdgeEndpoints() {
		if !bc.Bridge[eid] {
			continue
		}
		cu, cv := st.assign[e.U], st.assign[e.V]
		if cu != cv {
			st.tryMerge(cu, cv)
		}
	}

	out := densify(g, st.assign, workers)
	// Final greedy step: individual vertices keep being added to the
	// cluster they fit best (single-vertex moves with a modularity
	// acceptance test), correcting stragglers the cluster-level merges
	// placed badly.
	return Refine(g, out, 4, opt.Seed)
}

// plaCand is an adjacent-cluster merge candidate ranked first by the
// seed's local affinity to the cluster (how many of its edges point
// there — a purely local measure), then by the local metric of its
// best contact vertex.
type plaCand struct {
	cluster  int32
	contacts int
	score    float64
}

func sortCandsByScore(cands []plaCand) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].contacts != cands[j].contacts {
			return cands[i].contacts > cands[j].contacts
		}
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].cluster < cands[j].cluster
	})
}

// plaState is the shared cluster accounting for pLA. Cluster ids live
// in vertex-id space; degsum/member are indexed by cluster id.
type plaState struct {
	g      *graph.Graph
	m      float64
	assign []int32
	degsum []int64
	member [][]int32
	// skipEdge masks arcs (by edge id) that must not be scanned; nil
	// means every arc is visible.
	skipEdge []bool
}

// aggregate runs random-seed greedy aggregation passes over one
// component until a pass makes no merge or the pass budget is spent.
func (st *plaState) aggregate(comp []int32, metric []float64, maxPasses int, rng *rand.Rand) {
	order := append([]int32(nil), comp...)
	for pass := 0; pass < maxPasses; pass++ {
		rng.Shuffle(len(order), func(i, j int) {
			order[i], order[j] = order[j], order[i]
		})
		merges := 0
		for _, v := range order {
			// Step 6: v is the random seed. Rank the adjacent
			// clusters by the local metric of their best contact
			// vertex, and greedily attempt merges in that order until
			// one passes the modularity test (steps 7–8).
			cv := st.assign[v]
			var cands []plaCand
			seen := map[int32]int{}
			adj := st.g.Neighbors(v)
			eids := st.g.EdgeIDs(v)
			for ai, u := range adj {
				if st.skipEdge != nil && st.skipEdge[eids[ai]] {
					continue
				}
				cu := st.assign[u]
				if cu == cv {
					continue
				}
				if i, ok := seen[cu]; ok {
					cands[i].contacts++
					if metric[u] > cands[i].score {
						cands[i].score = metric[u]
					}
					continue
				}
				seen[cu] = len(cands)
				cands = append(cands, plaCand{cluster: cu, contacts: 1, score: metric[u]})
			}
			if len(cands) == 0 {
				continue
			}
			sortCandsByScore(cands)
			tries := len(cands)
			if tries > 4 {
				tries = 4
			}
			for i := 0; i < tries; i++ {
				if st.tryMerge(cv, cands[i].cluster) {
					merges++
					break
				}
			}
		}
		if merges == 0 {
			break
		}
	}
}

// tryMerge merges clusters c and d when the modularity delta
// m_cd/m − 2 a_c a_d is positive, reporting whether it merged.
func (st *plaState) tryMerge(c, d int32) bool {
	if c == d {
		return false
	}
	// Count edges between c and d by scanning the smaller side.
	small, other := c, d
	if len(st.member[small]) > len(st.member[other]) {
		small, other = other, small
	}
	var between int64
	for _, v := range st.member[small] {
		adj := st.g.Neighbors(v)
		eids := st.g.EdgeIDs(v)
		for ai, u := range adj {
			if st.skipEdge != nil && st.skipEdge[eids[ai]] {
				continue
			}
			if st.assign[u] == other {
				between++
			}
		}
	}
	twoM := 2 * st.m
	dq := float64(between)/st.m - 2*(float64(st.degsum[c])/twoM)*(float64(st.degsum[d])/twoM)
	if dq <= 0 {
		return false
	}
	// Fold small into other.
	for _, v := range st.member[small] {
		st.assign[v] = other
	}
	st.member[other] = append(st.member[other], st.member[small]...)
	st.member[small] = nil
	st.degsum[other] += st.degsum[small]
	st.degsum[small] = 0
	return true
}

// localClusteringScores computes local clustering coefficients without
// importing the metrics package (which would be an upward dependency).
func localClusteringScores(g *graph.Graph, workers int) []float64 {
	n := g.NumVertices()
	out := make([]float64, n)
	par.ForGuidedN(n, 64, workers, func(vi int) {
		v := int32(vi)
		adj := g.Neighbors(v)
		d := len(adj)
		if d < 2 {
			return
		}
		links := 0
		for i := 0; i < d; i++ {
			links += sortedCommon(g.Neighbors(adj[i]), adj[i+1:])
		}
		out[vi] = 2 * float64(links) / (float64(d) * float64(d-1))
	})
	return out
}

func sortedCommon(a, b []int32) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}
