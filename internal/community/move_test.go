package community

import (
	"math/rand"
	"testing"

	"snap/internal/components"
	"snap/internal/datasets"
	"snap/internal/generate"
	"snap/internal/graph"
	"snap/internal/par"
)

func moveTestGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	planted, _ := generate.PlantedPartition(5, 40, 0.4, 0.005, 8)
	return map[string]*graph.Graph{
		"karate":  datasets.Karate(),
		"planted": planted,
		"rmat10":  generate.RMAT(1024, 8192, generate.DefaultRMAT(), 7),
	}
}

func sameAssign(t *testing.T, what string, a, b Clustering) {
	t.Helper()
	if a.Count != b.Count || a.Q != b.Q {
		t.Fatalf("%s: count/Q mismatch: %d/%.9f vs %d/%.9f", what, a.Count, a.Q, b.Count, b.Q)
	}
	for v := range a.Assign {
		if a.Assign[v] != b.Assign[v] {
			t.Fatalf("%s: assign[%d] = %d vs %d", what, v, a.Assign[v], b.Assign[v])
		}
	}
}

// The engine's determinism contract: for a fixed seed the partition is
// identical at EVERY worker count — the candidate set of a batch
// depends only on the frozen batch-start state, and applies replay
// serially in batch order.
func TestLouvainWorkerInvariance(t *testing.T) {
	for name, g := range moveTestGraphs(t) {
		ref := Louvain(g, LouvainOptions{Workers: 1, Seed: 42})
		for _, w := range []int{2, 3, par.Workers() + 2} {
			got := Louvain(g, LouvainOptions{Workers: w, Seed: 42})
			sameAssign(t, name, ref, got)
		}
	}
}

func TestRefineWorkerInvariance(t *testing.T) {
	ws := AcquireMoveWorkspace()
	defer ReleaseMoveWorkspace(ws)
	for name, g := range moveTestGraphs(t) {
		start, _ := PMA(g, PMAOptions{StopWhenNegative: true})
		ref := ws.Refine(g, start, 8, 7, 1)
		refCopy := Clustering{Assign: append([]int32(nil), ref.Assign...), Count: ref.Count, Q: ref.Q}
		for _, w := range []int{2, 3, par.Workers() + 2} {
			got := ws.Refine(g, start, 8, 7, w)
			sameAssign(t, name, refCopy, got)
		}
	}
}

func TestLouvainDeterministicForFixedSeed(t *testing.T) {
	g := datasets.Karate()
	a := Louvain(g, LouvainOptions{Seed: 9})
	b := Louvain(g, LouvainOptions{Seed: 9})
	sameAssign(t, "karate", a, b)
}

// A warm workspace must reproduce a cold one exactly (stale epochs,
// buffers, and free lists never leak between runs).
func TestMoveWorkspaceReuseMatchesFresh(t *testing.T) {
	g := datasets.Karate()
	planted, _ := generate.PlantedPartition(5, 40, 0.4, 0.005, 8)
	ws := AcquireMoveWorkspace()
	defer ReleaseMoveWorkspace(ws)
	for i := 0; i < 3; i++ {
		for name, gr := range map[string]*graph.Graph{"karate": g, "planted": planted} {
			fresh := Louvain(gr, LouvainOptions{Seed: 5})
			warm := ws.Louvain(gr, LouvainOptions{Seed: 5})
			sameAssign(t, name, fresh, warm)
		}
	}
}

// Refine may only ever raise Q, from any starting partition.
func TestEngineRefineMonotone(t *testing.T) {
	for name, g := range moveTestGraphs(t) {
		for _, start := range []Clustering{
			Singletons(g),
			Louvain(g, LouvainOptions{Seed: 3}),
		} {
			ref := Refine(g, start, 8, 1)
			if ref.Q < start.Q-1e-12 {
				t.Fatalf("%s: Refine decreased Q: %g -> %g", name, start.Q, ref.Q)
			}
			if q := Modularity(g, ref.Assign, 1); q != ref.Q {
				t.Fatalf("%s: reported Q %g != recomputed %g", name, ref.Q, q)
			}
		}
	}
}

// The scatter engine must not lose quality against the seed's
// map-based implementations.
func TestEngineQualityNoWorseThanMapBaseline(t *testing.T) {
	for name, g := range moveTestGraphs(t) {
		base := louvainMapBaseline(g, 0, 1)
		eng := Louvain(g, LouvainOptions{Seed: 1})
		if eng.Q < base.Q-0.01 {
			t.Fatalf("%s: engine Louvain Q=%.6f below map baseline %.6f", name, eng.Q, base.Q)
		}
		start, _ := PMA(g, PMAOptions{StopWhenNegative: true})
		baseR := refineMapBaseline(g, start, 16, 1)
		engR := Refine(g, start, 16, 1)
		if engR.Q < baseR.Q-0.01 {
			t.Fatalf("%s: engine Refine Q=%.6f below map baseline %.6f", name, engR.Q, baseR.Q)
		}
	}
}

// Acceptance criterion: a warm workspace runs the full multilevel
// Louvain and a Refine pass with zero steady-state allocations.
func TestMoveWorkspaceZeroAllocSteadyState(t *testing.T) {
	g := datasets.Karate()
	ws := AcquireMoveWorkspace()
	defer ReleaseMoveWorkspace(ws)
	opt := LouvainOptions{Workers: 1, Seed: 1}
	ws.Louvain(g, opt) // warm-up sizes every buffer
	if n := testing.AllocsPerRun(20, func() { ws.Louvain(g, opt) }); n != 0 {
		t.Fatalf("warm ws.Louvain allocates %.1f/op, want 0", n)
	}
	start := Singletons(g)
	ws.Refine(g, start, 8, 1, 1)
	if n := testing.AllocsPerRun(20, func() { ws.Refine(g, start, 8, 1, 1) }); n != 0 {
		t.Fatalf("warm ws.Refine allocates %.1f/op, want 0", n)
	}
}

func TestMoveScatterAndRelabeler(t *testing.T) {
	sc := &moveScatter{}
	sc.ensure(8)
	sc.epoch = ^uint32(0) - 1 // force a wraparound within the test
	for round := 0; round < 4; round++ {
		sc.begin()
		sc.add(3, 1)
		sc.add(5, 2.5)
		sc.add(3, 1)
		if got := sc.get(3); got != 2 {
			t.Fatalf("round %d: get(3) = %g", round, got)
		}
		if got := sc.get(5); got != 2.5 {
			t.Fatalf("round %d: get(5) = %g", round, got)
		}
		if got := sc.get(0); got != 0 {
			t.Fatalf("round %d: get(0) = %g (stale)", round, got)
		}
		if len(sc.touched) != 2 {
			t.Fatalf("round %d: touched = %v", round, sc.touched)
		}
	}
	r := &relabeler{}
	r.ensure(10)
	r.epoch = ^uint32(0) // wraparound on first begin
	r.begin()
	order := []int32{7, 2, 7, 9, 2, 0}
	want := []int32{0, 1, 0, 2, 1, 3}
	for i, c := range order {
		if got := r.id(c); got != want[i] {
			t.Fatalf("id(%d) = %d, want %d", c, got, want[i])
		}
	}
	if r.next != 4 {
		t.Fatalf("next = %d", r.next)
	}
}

// The pLA contact rows must stay consistent with a brute-force
// member-list recount (the seed implementation's method) after a full
// concurrent aggregation plus bridge amalgamation.
func TestPLARowsMatchMemberScan(t *testing.T) {
	for name, g := range moveTestGraphs(t) {
		bc := components.Biconnected(g)
		alive := make([]bool, g.NumEdges())
		for i := range alive {
			alive[i] = !bc.Bridge[i]
		}
		comps := components.Connected(g, alive).Members()
		st := newPLAState(g, bc.Bridge)
		checkPLARows(t, name+"/initial", st)
		par.ForGuidedN(len(comps), 1, 4, func(ci int) {
			comp := comps[ci]
			if len(comp) < 2 {
				return
			}
			metric := make([]float64, g.NumVertices())
			for v := range metric {
				metric[v] = float64(g.Degree(int32(v)))
			}
			rng := rand.New(rand.NewSource(int64(ci)))
			st.aggregate(comp, metric, 8, rng)
		})
		checkPLARows(t, name+"/aggregated", st)
		st.skipEdge = nil
		for eid, e := range g.EdgeEndpoints() {
			if !bc.Bridge[eid] {
				continue
			}
			cu, cv := st.assign[e.U], st.assign[e.V]
			if cu != cv {
				st.rowID[cu], st.rowW[cu] = rowAdd(st.rowID[cu], st.rowW[cu], cv, 1)
				st.rowID[cv], st.rowW[cv] = rowAdd(st.rowID[cv], st.rowW[cv], cu, 1)
			}
		}
		for eid, e := range g.EdgeEndpoints() {
			if !bc.Bridge[eid] {
				continue
			}
			cu, cv := st.assign[e.U], st.assign[e.V]
			if cu != cv {
				st.tryMerge(cu, cv)
			}
		}
		checkPLARows(t, name+"/amalgamated", st)
	}
}

// checkPLARows recounts every cluster's unmasked edges per neighboring
// cluster from the member lists and compares with the contact rows.
func checkPLARows(t *testing.T, what string, st *plaState) {
	t.Helper()
	g := st.g
	for c := range st.member {
		counts := map[int32]int32{}
		for _, v := range st.member[c] {
			adj := g.Neighbors(v)
			eids := g.EdgeIDs(v)
			for ai, u := range adj {
				if st.skipEdge != nil && st.skipEdge[eids[ai]] {
					continue
				}
				if cu := st.assign[u]; cu != int32(c) {
					counts[cu]++
				}
			}
		}
		if len(counts) != len(st.rowID[c]) {
			t.Fatalf("%s: cluster %d: %d row entries, scan found %d (%v vs %v)",
				what, c, len(st.rowID[c]), len(counts), st.rowID[c], counts)
		}
		for i, d := range st.rowID[c] {
			if i > 0 && st.rowID[c][i-1] >= d {
				t.Fatalf("%s: cluster %d: row ids not sorted: %v", what, c, st.rowID[c])
			}
			if counts[d] != st.rowW[c][i] {
				t.Fatalf("%s: cluster %d -> %d: row weight %d, scan %d",
					what, c, d, st.rowW[c][i], counts[d])
			}
		}
	}
}

// Warm-started Louvain: seeding level 0 from an existing partition must
// stay worker-invariant, never lose modularity relative to the seed
// partition, and degenerate to plain Louvain when seeded with
// singletons.
func TestLouvainWarmStart(t *testing.T) {
	for name, g := range moveTestGraphs(t) {
		cold := Louvain(g, LouvainOptions{Seed: 42})

		// Singleton seed == cold start, bit-identical.
		n := g.NumVertices()
		singles := make([]int32, n)
		for v := range singles {
			singles[v] = int32(v)
		}
		got := Louvain(g, LouvainOptions{Seed: 42, InitialAssign: singles})
		sameAssign(t, name+"/singleton-seed", cold, got)

		// Warm seed from the cold result: Q must not drop, and the run
		// must be identical at every worker count.
		warmRef := Louvain(g, LouvainOptions{Workers: 1, Seed: 42, InitialAssign: cold.Assign})
		if warmRef.Q < cold.Q-1e-12 {
			t.Fatalf("%s: warm Q %.9f < seed Q %.9f", name, warmRef.Q, cold.Q)
		}
		for _, w := range []int{2, 3, par.Workers() + 2} {
			got := Louvain(g, LouvainOptions{Workers: w, Seed: 42, InitialAssign: cold.Assign})
			sameAssign(t, name+"/warm", warmRef, got)
		}

		// A perturbed seed (a few vertices dislodged) still recovers a
		// partition at least as good as the perturbed seed itself.
		rng := rand.New(rand.NewSource(3))
		perturbed := append([]int32(nil), cold.Assign...)
		for i := 0; i < n/20+1; i++ {
			perturbed[rng.Intn(n)] = int32(rng.Intn(n))
		}
		qSeed := Modularity(g, perturbed, 0)
		rec := Louvain(g, LouvainOptions{Seed: 42, InitialAssign: perturbed})
		if rec.Q < qSeed-1e-12 {
			t.Fatalf("%s: recovered Q %.9f < perturbed seed Q %.9f", name, rec.Q, qSeed)
		}
	}
}

func TestLouvainWarmStartValidation(t *testing.T) {
	g := datasets.Karate()
	for _, bad := range [][]int32{
		make([]int32, 3),                      // wrong length
		func() []int32 { a := make([]int32, g.NumVertices()); a[0] = -1; return a }(),
		func() []int32 { a := make([]int32, g.NumVertices()); a[1] = int32(g.NumVertices()); return a }(),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic on invalid InitialAssign")
				}
			}()
			Louvain(g, LouvainOptions{InitialAssign: bad})
		}()
	}
}
