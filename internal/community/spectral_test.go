package community

import (
	"math"
	"testing"

	"snap/internal/datasets"
	"snap/internal/generate"
)

func TestSpectralCommunitiesTwoTriangles(t *testing.T) {
	g := twoTriangles(t)
	c := SpectralCommunities(g, SpectralOptions{Seed: 1, Refine: true})
	want := 6.0/7.0 - 0.5
	if c.Count != 2 || math.Abs(c.Q-want) > 1e-9 {
		t.Fatalf("spectral: count=%d Q=%g, want 2 / %g", c.Count, c.Q, want)
	}
}

func TestSpectralCommunitiesKarate(t *testing.T) {
	g := datasets.Karate()
	c := SpectralCommunities(g, SpectralOptions{Seed: 2, Refine: true})
	// Newman reports ~0.393 for the refined leading-eigenvector method.
	if c.Q < 0.35 {
		t.Fatalf("spectral karate Q = %.4f, want >= 0.35", c.Q)
	}
	if q := Modularity(g, c.Assign, 1); math.Abs(q-c.Q) > 1e-9 {
		t.Fatalf("reported Q %g != recomputed %g", c.Q, q)
	}
}

func TestSpectralCommunitiesPlanted(t *testing.T) {
	g, truth := generate.PlantedPartition(4, 25, 0.5, 0.01, 7)
	truthQ := Modularity(g, truth, 1)
	c := SpectralCommunities(g, SpectralOptions{Seed: 3, Refine: true})
	if c.Q < truthQ*0.9 {
		t.Fatalf("spectral planted Q = %.3f, want >= 90%% of %.3f", c.Q, truthQ)
	}
}

func TestSpectralCommunitiesEdgeCases(t *testing.T) {
	// Empty graph.
	gEmpty := generate.Ring(5)
	c := SpectralCommunities(gEmpty, SpectralOptions{Seed: 1})
	if len(c.Assign) != 5 {
		t.Fatal("assign size")
	}
	// A clique is indivisible: one community.
	k := generate.Complete(8)
	c = SpectralCommunities(k, SpectralOptions{Seed: 1, Refine: true})
	if c.Count != 1 {
		t.Fatalf("K8 split into %d communities", c.Count)
	}
}
