package community

import (
	"math"
	"math/rand"
	"sort"

	"snap/internal/graph"
	"snap/internal/par"
)

// moveState is the single-move bookkeeping Anneal's Metropolis walk
// uses: community degree sums with a free-list of empty community ids
// so a vertex can detach into a fresh singleton community (without
// this, local moving can never increase the community count and misses
// optima such as karate's 4-community Q = 0.4198 partition). The
// batch-synchronous engine in move.go keeps the same accounting for
// Louvain and Refine.
type moveState struct {
	g      *graph.Graph
	m      float64
	assign []int32
	degsum []float64
	free   []int32
}

func newMoveState(g *graph.Graph, c Clustering) *moveState {
	n := g.NumVertices()
	st := &moveState{
		g:      g,
		m:      float64(g.NumEdges()),
		assign: append([]int32(nil), c.Assign...),
		degsum: make([]float64, n+c.Count+1),
	}
	for v := 0; v < n; v++ {
		st.degsum[st.assign[v]] += float64(g.Degree(int32(v)))
	}
	for id := int32(c.Count); int(id) < len(st.degsum); id++ {
		st.free = append(st.free, id)
	}
	return st
}

// gain computes the modularity change of moving v from its community
// to community d, where ld is the number of v's edges into d and lcv
// the number into its own community (excluding v).
func (st *moveState) gain(v int32, d int32, ld, lcv float64) float64 {
	kv := float64(st.g.Degree(v))
	cv := st.assign[v]
	return (ld-lcv)/st.m - kv*(st.degsum[d]-(st.degsum[cv]-kv))/(2*st.m*st.m)
}

// detachGain computes the modularity change of moving v into a fresh
// empty community.
func (st *moveState) detachGain(v int32, lcv float64) float64 {
	kv := float64(st.g.Degree(v))
	cv := st.assign[v]
	return -lcv/st.m + kv*(st.degsum[cv]-kv)/(2*st.m*st.m)
}

// apply moves v to community d, managing degree sums and the free list.
func (st *moveState) apply(v, d int32) {
	kv := float64(st.g.Degree(v))
	cv := st.assign[v]
	st.degsum[cv] -= kv
	if st.degsum[cv] == 0 {
		st.free = append(st.free, cv)
	}
	st.degsum[d] += kv
	st.assign[v] = d
}

// freshCommunity pops an empty community id.
func (st *moveState) freshCommunity() int32 {
	id := st.free[len(st.free)-1]
	st.free = st.free[:len(st.free)-1]
	return id
}

// Refine improves a clustering by greedy single-vertex moves
// (Kernighan–Lin style local moving): each pass visits the vertices in
// pseudo-random order and applies the best positive-gain move — either
// into a neighboring community or detaching into a fresh singleton. It
// never decreases Q. This is the post-pass used to approximate the
// "best known" comparator column of the paper's Table 2 on small
// instances. The work runs on the pooled batch-synchronous engine
// (move.go): for a fixed seed the result is identical at every worker
// count, and holding a MoveWorkspace across calls makes repeated
// refinement allocation-free.
func Refine(g *graph.Graph, c Clustering, maxPasses int, seed int64) Clustering {
	ws := AcquireMoveWorkspace()
	out := ws.Refine(g, c, maxPasses, seed, par.Workers())
	out.Assign = append([]int32(nil), out.Assign...)
	ReleaseMoveWorkspace(ws)
	return out
}

// Anneal estimates a near-optimal modularity on SMALL graphs with
// simulated annealing over single-vertex moves (including detach
// moves), seeded by pMA+Refine. It is the stand-in for the paper's
// exhaustive/extremal-optimization "best known" column and is only
// intended for n up to a few thousand.
func Anneal(g *graph.Graph, steps int, seed int64) Clustering {
	start, _ := PMA(g, PMAOptions{StopWhenNegative: true})
	start = Refine(g, start, 16, seed)
	n := g.NumVertices()
	if n == 0 || g.NumEdges() == 0 || steps <= 0 {
		return start
	}
	rng := rand.New(rand.NewSource(seed))
	st := newMoveState(g, start)
	bestAssign := append([]int32(nil), st.assign...)
	cur := start.Q
	best := start.Q
	temp := 0.05
	// Neighbor-community accumulation via the dense epoch-stamped
	// scatter (one gather per step, no map).
	links := &moveScatter{}
	links.ensure(len(st.degsum))
	var cands []int32
	for s := 0; s < steps; s++ {
		v := int32(rng.Intn(n))
		if g.Degree(v) == 0 {
			continue
		}
		cv := st.assign[v]
		links.begin()
		for _, u := range g.Neighbors(v) {
			links.add(st.assign[u], 1)
		}
		lcv := links.get(cv)
		// Candidate: random neighboring community, or a detach move.
		var gn float64
		var target int32
		detach := rng.Intn(8) == 0
		if !detach {
			cands = cands[:0]
			for _, d := range links.touched {
				if d != cv {
					cands = append(cands, d)
				}
			}
			if len(cands) == 0 {
				continue
			}
			// Sort so the RNG draw matches the former map-based walk
			// (which sorted to neutralize map iteration order).
			sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
			target = cands[rng.Intn(len(cands))]
			gn = st.gain(v, target, links.get(target), lcv)
		} else {
			gn = st.detachGain(v, lcv)
		}
		t := temp * (1 - float64(s)/float64(steps))
		if gn > 0 || (t > 0 && rng.Float64() < math.Exp(gn/t)) {
			if detach {
				target = st.freshCommunity()
			}
			st.apply(v, target)
			cur += gn
			if cur > best {
				best = cur
				copy(bestAssign, st.assign)
			}
		}
	}
	out := densify(g, bestAssign, 0)
	out = Refine(g, out, 16, seed+1)
	// Keep whichever of {seed clustering, annealed} is better; the
	// Metropolis walk must never lose quality versus its start.
	if out.Q < start.Q {
		return start
	}
	return out
}
