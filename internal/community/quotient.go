package community

import (
	"snap/internal/graph"
)

// Quotient contracts a clustering into its community graph: one vertex
// per community, edge weights equal to the number of original edges
// between the communities, and self-weights (intra-edge counts)
// reported separately (the CSR form drops self-loops). The quotient is
// the substrate of hierarchical community analysis and of the Louvain
// comparison baseline.
type Quotient struct {
	// Graph is the weighted community graph (no self-loops).
	Graph *graph.Graph
	// Intra[c] is the number of original edges inside community c.
	Intra []int64
	// Size[c] is the number of original vertices in community c.
	Size []int64
	// DegSum[c] is the total original degree of community c.
	DegSum []int64
}

// MakeQuotient builds the quotient of g under assign with dense
// community ids in [0, count).
func MakeQuotient(g *graph.Graph, assign []int32, count int) Quotient {
	q := Quotient{
		Intra:  make([]int64, count),
		Size:   make([]int64, count),
		DegSum: make([]int64, count),
	}
	for v := 0; v < g.NumVertices(); v++ {
		c := assign[v]
		q.Size[c]++
		q.DegSum[c] += int64(g.Degree(int32(v)))
	}
	edges := make([]graph.Edge, 0, g.NumEdges())
	for _, e := range g.EdgeEndpoints() {
		ca, cb := assign[e.U], assign[e.V]
		if ca == cb {
			q.Intra[ca]++
			continue
		}
		edges = append(edges, graph.Edge{U: ca, V: cb, W: 1})
	}
	q.Graph = aggregateQuotient(count, edges, "quotient")
	return q
}

// aggregateQuotient collapses raw inter-community edge observations
// into the weighted community graph. The parallel assembly kernel's
// summing dedup does the aggregation: duplicates of a community pair
// sum their weights in input order, so the result is identical to the
// former map-then-sort path while skipping both the map and the global
// edge sort.
func aggregateQuotient(count int, edges []graph.Edge, what string) *graph.Graph {
	qg, err := graph.Build(count, edges, graph.BuildOptions{Weighted: true, SumWeights: true})
	if err != nil {
		panic("community: " + what + ": " + err.Error())
	}
	return qg
}

// Louvain is the multilevel local-moving heuristic (Blondel et al.
// 2008) — published the same year as the paper and since become the
// standard fast modularity baseline; it is included for comparison
// with pBD/pMA/pLA. Each level runs local moving to convergence on the
// (weighted) quotient, then contracts communities and recurses.
func Louvain(g *graph.Graph, maxLevels int, seed int64) Clustering {
	if maxLevels <= 0 {
		maxLevels = 16
	}
	n := g.NumVertices()
	if n == 0 || g.NumEdges() == 0 {
		return Singletons(g)
	}
	// mapping[v] = community of original vertex v in the current level.
	mapping := identity(n)
	level := MakeQuotient(g, mapping, n)
	for lv := 0; lv < maxLevels; lv++ {
		qa, qc, improved := weightedLocalMove(level, seed+int64(lv))
		if !improved {
			break
		}
		for v := 0; v < n; v++ {
			mapping[v] = qa[mapping[v]]
		}
		level = contractQuotient(level, qa, qc)
		if level.Graph.NumVertices() <= 1 {
			break
		}
	}
	return densify(g, mapping, 0)
}

// contractQuotient merges the communities of a quotient into a coarser
// quotient: sizes, degree sums, and intra weights aggregate, and the
// surviving inter-community weights collapse.
func contractQuotient(level Quotient, qa []int32, qc int) Quotient {
	out := Quotient{
		Intra:  make([]int64, qc),
		Size:   make([]int64, qc),
		DegSum: make([]int64, qc),
	}
	for v, c := range qa {
		out.Size[c] += level.Size[v]
		out.DegSum[c] += level.DegSum[v]
		out.Intra[c] += level.Intra[v]
	}
	edges := make([]graph.Edge, 0, level.Graph.NumEdges())
	for _, e := range level.Graph.EdgeEndpoints() {
		ca, cb := qa[e.U], qa[e.V]
		if ca == cb {
			// A level edge of weight w is w original edges.
			out.Intra[ca] += int64(e.W)
			continue
		}
		edges = append(edges, graph.Edge{U: ca, V: cb, W: e.W})
	}
	out.Graph = aggregateQuotient(qc, edges, "contract")
	return out
}

// weightedLocalMove runs modularity local moving on a weighted
// quotient graph whose vertices carry intra-community self-weights.
// Returns the new (dense) assignment, community count, and whether any
// move improved modularity.
func weightedLocalMove(q Quotient, seed int64) ([]int32, int, bool) {
	qg := q.Graph
	nq := qg.NumVertices()
	// Total edge weight of the ORIGINAL graph: sum intra + inter.
	var m float64
	for _, w := range q.Intra {
		m += float64(w)
	}
	m += qg.TotalWeight()
	if m == 0 {
		return identity(nq), nq, false
	}
	assign := identity(nq)
	// Community degree sums start as the quotient vertices' own.
	degsum := make([]float64, nq)
	for c := 0; c < nq; c++ {
		degsum[c] = float64(q.DegSum[c])
	}
	improvedAny := false
	rngState := uint64(seed)*2862933555777941757 + 3037000493
	order := make([]int32, nq)
	for i := range order {
		order[i] = int32(i)
	}
	linksTo := map[int32]float64{}
	for pass := 0; pass < 16; pass++ {
		// Deterministic pseudo-shuffle.
		for i := nq - 1; i > 0; i-- {
			rngState = rngState*6364136223846793005 + 1442695040888963407
			j := int(rngState % uint64(i+1))
			order[i], order[j] = order[j], order[i]
		}
		moves := 0
		for _, v := range order {
			cv := assign[v]
			kv := float64(q.DegSum[v])
			for k := range linksTo {
				delete(linksTo, k)
			}
			lo, hi := qg.Offsets[v], qg.Offsets[v+1]
			for a := lo; a < hi; a++ {
				linksTo[assign[qg.Adj[a]]] += qg.W[a]
			}
			lcv := linksTo[cv]
			bestD := cv
			bestGain := 0.0
			for d, ld := range linksTo {
				if d == cv {
					continue
				}
				gain := (ld-lcv)/m - kv*(degsum[d]-(degsum[cv]-kv))/(2*m*m)
				if gain > bestGain || (gain == bestGain && gain > 0 && d < bestD) {
					bestGain = gain
					bestD = d
				}
			}
			if bestD != cv && bestGain > 0 {
				degsum[cv] -= kv
				degsum[bestD] += kv
				assign[v] = bestD
				moves++
				improvedAny = true
			}
		}
		if moves == 0 {
			break
		}
	}
	// Densify ids.
	remap := map[int32]int32{}
	for v, c := range assign {
		if _, ok := remap[c]; !ok {
			remap[c] = int32(len(remap))
		}
		assign[v] = remap[c]
	}
	return assign, len(remap), improvedAny
}

func identity(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}
