package community

import (
	"snap/internal/graph"
	"snap/internal/par"
)

// Quotient contracts a clustering into its community graph: one vertex
// per community, edge weights equal to the number of original edges
// between the communities, and self-weights (intra-edge counts)
// reported separately (the CSR form drops self-loops). The quotient is
// the substrate of hierarchical community analysis and of the Louvain
// comparison baseline.
type Quotient struct {
	// Graph is the weighted community graph (no self-loops).
	Graph *graph.Graph
	// Intra[c] is the number of original edges inside community c.
	Intra []int64
	// Size[c] is the number of original vertices in community c.
	Size []int64
	// DegSum[c] is the total original degree of community c.
	DegSum []int64
}

// MakeQuotient builds the quotient of g under assign with dense
// community ids in [0, count). The O(n) vertex scan and O(m) edge walk
// both run across par.Workers() goroutines with per-worker histograms
// and edge buffers, merged in worker order so the result is identical
// to a serial scan.
func MakeQuotient(g *graph.Graph, assign []int32, count int) Quotient {
	workers := par.Workers()
	q := Quotient{
		Intra:  make([]int64, count),
		Size:   make([]int64, count),
		DegSum: make([]int64, count),
	}
	n := g.NumVertices()
	sizeW := make([][]int64, workers)
	degW := make([][]int64, workers)
	par.ForChunkedN(n, workers, func(w, lo, hi int) {
		ls := make([]int64, count)
		ld := make([]int64, count)
		for v := lo; v < hi; v++ {
			c := assign[v]
			ls[c]++
			ld[c] += g.Offsets[v+1] - g.Offsets[v]
		}
		sizeW[w] = ls
		degW[w] = ld
	})
	reduceHistograms(q.Size, sizeW)
	reduceHistograms(q.DegSum, degW)
	all := g.EdgeEndpoints()
	intraW := make([][]int64, workers)
	edgesW := make([][]graph.Edge, workers)
	par.ForChunkedN(len(all), workers, func(w, lo, hi int) {
		li := make([]int64, count)
		le := make([]graph.Edge, 0, hi-lo)
		for _, e := range all[lo:hi] {
			ca, cb := assign[e.U], assign[e.V]
			if ca == cb {
				li[ca]++
				continue
			}
			le = append(le, graph.Edge{U: ca, V: cb, W: 1})
		}
		intraW[w] = li
		edgesW[w] = le
	})
	reduceHistograms(q.Intra, intraW)
	q.Graph = aggregateQuotient(count, concatEdges(edgesW), "quotient")
	return q
}

// reduceHistograms folds per-worker histograms into dst (nil entries
// come from workers the loop clamp never started).
func reduceHistograms(dst []int64, parts [][]int64) {
	for _, p := range parts {
		for i, v := range p {
			dst[i] += v
		}
	}
}

// concatEdges joins per-worker edge buffers in worker order.
func concatEdges(parts [][]graph.Edge) []graph.Edge {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]graph.Edge, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// aggregateQuotient collapses raw inter-community edge observations
// into the weighted community graph. The parallel assembly kernel's
// summing dedup does the aggregation: duplicates of a community pair
// sum their weights in input order, so the result is identical to the
// former map-then-sort path while skipping both the map and the global
// edge sort.
func aggregateQuotient(count int, edges []graph.Edge, what string) *graph.Graph {
	qg, err := graph.Build(count, edges, graph.BuildOptions{Weighted: true, SumWeights: true})
	if err != nil {
		panic("community: " + what + ": " + err.Error())
	}
	return qg
}

// LouvainOptions configures the multilevel local-moving heuristic.
type LouvainOptions struct {
	// Workers bounds parallelism; <= 0 means par.Workers(). For a
	// fixed Seed the partition is identical for EVERY worker count —
	// see the batch-synchronous engine in move.go.
	Workers int
	// MaxLevels caps the contraction hierarchy depth. 0 => 16.
	MaxLevels int
	// Seed drives the deterministic vertex-order pseudo-shuffle.
	Seed int64
	// InitialAssign, when non-nil, warm-starts level 0 from an existing
	// partition (length NumVertices, community ids in [0, NumVertices))
	// instead of singletons — the snapshot-epoch ingest layer re-seeds
	// each commit from the previous epoch's communities, so the move
	// engine only pays for the vertices the delta actually dislodged.
	// The warm level always folds into the hierarchy, so the result's Q
	// is never below the seed partition's.
	InitialAssign []int32
}

// Louvain is the multilevel local-moving heuristic (Blondel et al.
// 2008) — published the same year as the paper and since become the
// standard fast modularity baseline; it is included for comparison
// with pBD/pMA/pLA. Each level runs batch-synchronous local moving to
// convergence, then contracts communities and recurses. The whole
// hierarchy runs inside a pooled MoveWorkspace; callers that sweep
// many graphs can hold a workspace and call its Louvain method
// directly to skip even the per-call result copy.
func Louvain(g *graph.Graph, opt LouvainOptions) Clustering {
	ws := AcquireMoveWorkspace()
	c := ws.Louvain(g, opt)
	c.Assign = append([]int32(nil), c.Assign...)
	ReleaseMoveWorkspace(ws)
	return c
}

// contractQuotient merges the communities of a quotient into a coarser
// quotient: sizes, degree sums, and intra weights aggregate, and the
// surviving inter-community weights collapse. Like MakeQuotient, the
// vertex fold and edge walk run with per-worker histograms. (The
// engine's Louvain contracts inside its workspace; this entry point
// serves quotient-level analyses and the in-tree map baseline.)
func contractQuotient(level Quotient, qa []int32, qc int) Quotient {
	workers := par.Workers()
	out := Quotient{
		Intra:  make([]int64, qc),
		Size:   make([]int64, qc),
		DegSum: make([]int64, qc),
	}
	nv := len(qa)
	sizeW := make([][]int64, workers)
	degW := make([][]int64, workers)
	intraVW := make([][]int64, workers)
	par.ForChunkedN(nv, workers, func(w, lo, hi int) {
		ls := make([]int64, qc)
		ld := make([]int64, qc)
		li := make([]int64, qc)
		for v := lo; v < hi; v++ {
			c := qa[v]
			ls[c] += level.Size[v]
			ld[c] += level.DegSum[v]
			li[c] += level.Intra[v]
		}
		sizeW[w] = ls
		degW[w] = ld
		intraVW[w] = li
	})
	reduceHistograms(out.Size, sizeW)
	reduceHistograms(out.DegSum, degW)
	reduceHistograms(out.Intra, intraVW)
	all := level.Graph.EdgeEndpoints()
	intraEW := make([][]int64, workers)
	edgesW := make([][]graph.Edge, workers)
	par.ForChunkedN(len(all), workers, func(w, lo, hi int) {
		li := make([]int64, qc)
		le := make([]graph.Edge, 0, hi-lo)
		for _, e := range all[lo:hi] {
			ca, cb := qa[e.U], qa[e.V]
			if ca == cb {
				// A level edge of weight w is w original edges.
				li[ca] += int64(e.W)
				continue
			}
			le = append(le, graph.Edge{U: ca, V: cb, W: e.W})
		}
		intraEW[w] = li
		edgesW[w] = le
	})
	reduceHistograms(out.Intra, intraEW)
	out.Graph = aggregateQuotient(qc, concatEdges(edgesW), "contract")
	return out
}

func identity(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}
