package community

import (
	"math"
	"testing"

	"snap/internal/generate"
)

func TestCoverage(t *testing.T) {
	g := twoTriangles(t)
	perfect := []int32{0, 0, 0, 1, 1, 1}
	// 6 of 7 edges intra.
	if c := Coverage(g, perfect); math.Abs(c-6.0/7) > 1e-12 {
		t.Fatalf("coverage = %g", c)
	}
	if c := Coverage(g, []int32{0, 0, 0, 0, 0, 0}); c != 1 {
		t.Fatalf("single-community coverage = %g", c)
	}
}

func TestPerformance(t *testing.T) {
	g := twoTriangles(t)
	perfect := []int32{0, 0, 0, 1, 1, 1}
	// Intra pairs: 2*C(3,2)=6, all are edges. Inter pairs: 9, of which
	// 1 is an edge -> correct = 6 + 8 = 14 of 15.
	if p := Performance(g, perfect, 2); math.Abs(p-14.0/15) > 1e-12 {
		t.Fatalf("performance = %g", p)
	}
}

func TestConductance(t *testing.T) {
	g := twoTriangles(t)
	perfect := []int32{0, 0, 0, 1, 1, 1}
	cs := Conductance(g, perfect, 2)
	// Each triangle: boundary 1, volume 7 -> 1/7.
	for c, v := range cs {
		if math.Abs(v-1.0/7) > 1e-12 {
			t.Fatalf("conductance[%d] = %g, want 1/7", c, v)
		}
	}
	if a := AvgConductance(g, perfect, 2); math.Abs(a-1.0/7) > 1e-12 {
		t.Fatalf("avg conductance = %g", a)
	}
	// Whole graph as one community: no boundary -> 0.
	if cs := Conductance(g, []int32{0, 0, 0, 0, 0, 0}, 1); cs[0] != 0 {
		t.Fatalf("closed community conductance = %g", cs[0])
	}
}

func TestNMI(t *testing.T) {
	a := []int32{0, 0, 0, 1, 1, 1}
	if v := NMI(a, a); math.Abs(v-1) > 1e-12 {
		t.Fatalf("NMI(self) = %g", v)
	}
	// Relabeled partition is still identical.
	b := []int32{1, 1, 1, 0, 0, 0}
	if v := NMI(a, b); math.Abs(v-1) > 1e-12 {
		t.Fatalf("NMI(relabel) = %g", v)
	}
	// Partition vs all-singletons shares no information beyond chance
	// structure; must be strictly below 1.
	c := []int32{0, 1, 2, 3, 4, 5}
	if v := NMI(a, c); v >= 1 {
		t.Fatalf("NMI(singletons) = %g", v)
	}
	// Trivial vs trivial.
	d := []int32{0, 0, 0, 0, 0, 0}
	if v := NMI(d, d); v != 1 {
		t.Fatalf("NMI(trivial) = %g", v)
	}
}

func TestNMIRecoversPlanted(t *testing.T) {
	g, truth := generate.PlantedPartition(4, 25, 0.5, 0.01, 3)
	pla := PLA(g, PLAOptions{Seed: 2})
	if v := NMI(truth, pla.Assign); v < 0.9 {
		t.Fatalf("NMI(truth, pLA) = %g, want >= 0.9", v)
	}
}

func TestMixingParameter(t *testing.T) {
	g := twoTriangles(t)
	perfect := []int32{0, 0, 0, 1, 1, 1}
	// Vertices 2 and 3 each have 1 of 3 edges leaving: mu =
	// (0+0+1/3+1/3+0+0)/6 = 1/9.
	if mu := MixingParameter(g, perfect); math.Abs(mu-1.0/9) > 1e-12 {
		t.Fatalf("mu = %g, want 1/9", mu)
	}
}
