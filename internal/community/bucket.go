package community

import "math"

// bucketPQ is the multilevel-bucket maximum tracker the paper attaches
// to every ΔQ matrix row: entries (community id, ΔQ value) are binned
// by quantized value so the row maximum is found by scanning only the
// highest non-empty bucket, and inserts/deletes are O(1) expected.
//
// ΔQ values lie in [-1, 1] but cluster around ±1/m, so the bins are
// logarithmic: sign, then binary exponent, then 3 mantissa bits. Two
// values share a bin only when they are within ~12.5%% of each other,
// which keeps the top bin small for the exact within-bin max scan.
type bucketPQ struct {
	buckets [][]bucketEntry
	loc     map[int32]bucketLoc
	hi      int // index of the highest possibly-non-empty bucket
	// Cached maximum: most Max queries are O(1); the cache is
	// invalidated when the current maximum is deleted or downgraded
	// and lazily rebuilt by a top-bucket scan.
	maxValid bool
	maxEntry bucketEntry
}

type bucketEntry struct {
	id  int32
	val float64
}

type bucketLoc struct {
	bucket int
	pos    int
}

const (
	// Exponents are clamped to [-minExp, 0]; 8 mantissa sub-bins per
	// exponent, both signs, plus a dedicated zero bin.
	minExp      = 63
	magBins     = (minExp + 1) * 8
	zeroBucket  = magBins
	bucketCount = 2*magBins + 1
)

func bucketIndex(v float64) int {
	if v == 0 {
		return zeroBucket
	}
	frac, exp := math.Frexp(math.Abs(v)) // frac in [0.5, 1)
	if exp > 0 {
		exp = 0 // |v| >= 1 saturates at the top magnitude bin
	}
	if exp < -minExp {
		exp = -minExp
	}
	sub := int((frac - 0.5) * 16)
	if sub > 7 {
		sub = 7
	}
	mag := (exp+minExp)*8 + sub // larger |v| -> larger mag
	if v > 0 {
		return zeroBucket + 1 + mag
	}
	return zeroBucket - 1 - mag
}

func newBucketPQ() *bucketPQ {
	return &bucketPQ{
		buckets: make([][]bucketEntry, bucketCount),
		loc:     make(map[int32]bucketLoc),
		hi:      -1,
	}
}

// Len reports the number of stored entries.
func (b *bucketPQ) Len() int { return len(b.loc) }

// Set inserts or updates the value of id.
func (b *bucketPQ) Set(id int32, v float64) {
	if b.maxValid {
		switch {
		case id == b.maxEntry.id:
			if v >= b.maxEntry.val {
				b.maxEntry.val = v // raising the max keeps it the max
			} else {
				b.maxValid = false
			}
		case v > b.maxEntry.val || (v == b.maxEntry.val && id < b.maxEntry.id):
			b.maxEntry = bucketEntry{id: id, val: v}
		}
	}
	idx := bucketIndex(v)
	if old, ok := b.loc[id]; ok {
		if idx == old.bucket {
			b.buckets[old.bucket][old.pos].val = v
			return
		}
		b.removeFromBucket(old)
	}
	b.buckets[idx] = append(b.buckets[idx], bucketEntry{id: id, val: v})
	b.loc[id] = bucketLoc{bucket: idx, pos: len(b.buckets[idx]) - 1}
	if idx > b.hi {
		b.hi = idx
	}
}

// Delete removes id, reporting whether it was present.
func (b *bucketPQ) Delete(id int32) bool {
	old, ok := b.loc[id]
	if !ok {
		return false
	}
	if b.maxValid && id == b.maxEntry.id {
		b.maxValid = false
	}
	b.removeFromBucket(old)
	delete(b.loc, id)
	return true
}

// removeFromBucket swap-deletes the entry at l, fixing the moved
// entry's recorded position.
func (b *bucketPQ) removeFromBucket(l bucketLoc) {
	bk := b.buckets[l.bucket]
	last := len(bk) - 1
	if l.pos != last {
		moved := bk[last]
		bk[l.pos] = moved
		b.loc[moved.id] = bucketLoc{bucket: l.bucket, pos: l.pos}
	}
	b.buckets[l.bucket] = bk[:last]
}

// Max returns the id with the largest value (smallest id on ties) and
// its value. ok is false when empty.
func (b *bucketPQ) Max() (id int32, v float64, ok bool) {
	if b.maxValid {
		return b.maxEntry.id, b.maxEntry.val, true
	}
	for b.hi >= 0 && len(b.buckets[b.hi]) == 0 {
		b.hi--
	}
	if b.hi < 0 {
		return 0, 0, false
	}
	bk := b.buckets[b.hi]
	best := bk[0]
	for _, e := range bk[1:] {
		if e.val > best.val || (e.val == best.val && e.id < best.id) {
			best = e
		}
	}
	b.maxValid = true
	b.maxEntry = best
	return best.id, best.val, true
}

// Get returns the stored value of id.
func (b *bucketPQ) Get(id int32) (float64, bool) {
	l, ok := b.loc[id]
	if !ok {
		return 0, false
	}
	return b.buckets[l.bucket][l.pos].val, true
}

// Each iterates over all (id, value) pairs in unspecified order.
func (b *bucketPQ) Each(f func(id int32, v float64)) {
	for id, l := range b.loc {
		f(id, b.buckets[l.bucket][l.pos].val)
	}
}

// pairHeap is the global lazy max-heap over (community, best ΔQ,
// partner) triples — Algorithm 2's heap H. Entries are invalidated
// lazily: popped entries are checked against the row's current
// maximum before use.
type pairHeap struct {
	items []pairItem
}

type pairItem struct {
	dq   float64
	row  int32
	with int32
}

func (h *pairHeap) Len() int { return len(h.items) }

func (h *pairHeap) Push(it pairItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.greater(i, p) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *pairHeap) Pop() pairItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < last && h.greater(l, big) {
			big = l
		}
		if r < last && h.greater(r, big) {
			big = r
		}
		if big == i {
			break
		}
		h.items[i], h.items[big] = h.items[big], h.items[i]
		i = big
	}
	return top
}

func (h *pairHeap) greater(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.dq != b.dq {
		return a.dq > b.dq
	}
	if a.row != b.row {
		return a.row < b.row
	}
	return a.with < b.with
}

// BucketPQ exposes the multilevel-bucket row-maximum structure for the
// benchmark harness's ablation study (buckets vs naive linear scan).
type BucketPQ struct{ inner *bucketPQ }

// NewBucketPQForBench returns an empty exported bucket structure.
func NewBucketPQForBench() *BucketPQ { return &BucketPQ{inner: newBucketPQ()} }

// Set inserts or updates the value of id.
func (b *BucketPQ) Set(id int32, v float64) { b.inner.Set(id, v) }

// Max returns the id with the largest value.
func (b *BucketPQ) Max() (int32, float64, bool) { return b.inner.Max() }
