package community

import (
	"math"
	"math/rand"

	"snap/internal/graph"
)

// The paper's stated ongoing work: "support for spectral analysis of
// small-world networks, and efficient parallel implementations of
// spectral algorithms that optimize modularity." This file implements
// Newman's leading-eigenvector method (PNAS 2006): communities are
// split recursively by the sign pattern of the dominant eigenvector of
// the modularity matrix B = A − k kᵀ/2m, restricted to the subgraph
// under consideration, with a KL-style sign-flip refinement per split.

// SpectralOptions configures the spectral modularity maximizer.
type SpectralOptions struct {
	// MaxIterations bounds the power iteration per split (default 500).
	MaxIterations int
	// Refine applies single-vertex sign-flip refinement to every
	// split (Newman's suggested "KL-style" polish). Default true via
	// NewSpectralOptions; the zero value disables it.
	Refine bool
	// Seed drives the random starting vectors.
	Seed int64
}

// SpectralCommunities detects communities by recursive leading-
// eigenvector bisection of the modularity matrix, splitting while the
// modularity gain of a proposed split is positive. It complements the
// greedy pMA/pLA heuristics with a spectrally-informed partition and
// is a reference implementation of the paper's "future work" item.
func SpectralCommunities(g *graph.Graph, opt SpectralOptions) Clustering {
	if opt.MaxIterations <= 0 {
		opt.MaxIterations = 500
	}
	n := g.NumVertices()
	m := float64(g.NumEdges())
	if n == 0 || m == 0 {
		return Singletons(g)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	assign := make([]int32, n)
	// Work queue of community ids to try splitting; ids are assigned
	// densely as splits succeed.
	next := int32(1)
	queue := []int32{0}
	members := map[int32][]int32{}
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	members[0] = all

	deg := make([]float64, n)
	for v := 0; v < n; v++ {
		deg[v] = float64(g.Degree(int32(v)))
	}

	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		group := members[c]
		if len(group) < 2 {
			continue
		}
		side, gain := spectralSplit(g, group, deg, m, opt, rng)
		if gain <= 1e-12 || side == nil {
			continue // indivisible community
		}
		var s0, s1 []int32
		for i, v := range group {
			if side[i] == 0 {
				s0 = append(s0, v)
			} else {
				s1 = append(s1, v)
			}
		}
		if len(s0) == 0 || len(s1) == 0 {
			continue
		}
		nc := next
		next++
		for _, v := range s1 {
			assign[v] = nc
		}
		members[c] = s0
		members[nc] = s1
		queue = append(queue, c, nc)
	}
	return densify(g, assign, 0)
}

// spectralSplit computes the leading eigenvector of the generalized
// modularity matrix B^(g) restricted to group, proposes the sign
// split, refines it, and returns the per-member side plus the
// modularity gain of the split.
func spectralSplit(g *graph.Graph, group []int32, deg []float64, m float64, opt SpectralOptions, rng *rand.Rand) ([]int8, float64) {
	ng := len(group)
	pos := make(map[int32]int, ng) // vertex -> index in group
	for i, v := range group {
		pos[v] = i
	}
	// Generalized modularity matrix for a subgraph (Newman 2006 eq. 6):
	// B^(g)_ij = A_ij − k_i k_j / 2m − δ_ij (k^(g)_i − k_i * K_g / 2m)
	// where k^(g)_i is i's degree within the group and K_g the total
	// group degree.
	var totalDeg float64
	kin := make([]float64, ng)
	for i, v := range group {
		totalDeg += deg[v]
		for _, u := range g.Neighbors(v) {
			if _, ok := pos[u]; ok {
				kin[i]++
			}
		}
	}
	diag := make([]float64, ng)
	for i, v := range group {
		diag[i] = kin[i] - deg[v]*totalDeg/(2*m)
	}
	// Multiply y = B^(g) x without materializing B. A positive shift
	// makes the dominant eigenvalue of (B + cI) correspond to B's most
	// positive one.
	mul := func(x, y []float64) {
		var kx float64
		for i, v := range group {
			kx += deg[v] * x[i]
		}
		for i, v := range group {
			var ax float64
			for _, u := range g.Neighbors(v) {
				if j, ok := pos[u]; ok {
					ax += x[j]
				}
			}
			y[i] = ax - deg[v]*kx/(2*m) - diag[i]*x[i]
		}
	}
	// Shift: Gershgorin-ish bound on |lambda_min|.
	shift := 0.0
	for i, v := range group {
		r := kin[i] + deg[v]*totalDeg/(2*m) + math.Abs(diag[i])
		if r > shift {
			shift = r
		}
	}
	x := make([]float64, ng)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	normalizeVec(x)
	y := make([]float64, ng)
	var lambda float64
	for it := 0; it < opt.MaxIterations; it++ {
		mul(x, y)
		lambda = dotVec(x, y)
		for i := range y {
			y[i] += shift * x[i]
		}
		if !normalizeVec(y) {
			return nil, 0
		}
		x, y = y, x
		if it%32 == 31 {
			// Cheap residual check on the unshifted operator.
			mul(x, y)
			rq := dotVec(x, y)
			var res float64
			for i := range x {
				d := y[i] - rq*x[i]
				res += d * d
			}
			if math.Sqrt(res) < 1e-6*(math.Abs(rq)+1) {
				lambda = rq
				break
			}
		}
	}
	if lambda <= 0 {
		return nil, 0 // no positive eigenvalue: indivisible
	}
	side := make([]int8, ng)
	for i, xv := range x {
		if xv < 0 {
			side[i] = 1
		}
	}
	gain := splitGain(g, group, pos, side, deg, m)
	if opt.Refine {
		gain = refineSplit(g, group, pos, side, deg, m, gain)
	}
	return side, gain
}

// splitGain computes the modularity change of splitting group by side,
// relative to keeping it whole: ΔQ = (1/m)(−m_cross) + (K²−K0²−K1²)/4m²
// rearranged from the standard decomposition.
func splitGain(g *graph.Graph, group []int32, pos map[int32]int, side []int8, deg []float64, m float64) float64 {
	var cross float64
	var k0, k1, kAll float64
	for i, v := range group {
		kAll += deg[v]
		if side[i] == 0 {
			k0 += deg[v]
		} else {
			k1 += deg[v]
		}
		for _, u := range g.Neighbors(v) {
			j, ok := pos[u]
			if !ok || u <= v {
				continue
			}
			if side[i] != side[j] {
				cross++
			}
		}
	}
	twoM := 2 * m
	return -cross/m + (kAll*kAll-k0*k0-k1*k1)/(twoM*twoM)
}

// refineSplit greedily flips single vertices between the two sides
// while the split gain improves (Newman's KL-style refinement).
func refineSplit(g *graph.Graph, group []int32, pos map[int32]int, side []int8, deg []float64, m float64, gain float64) float64 {
	for pass := 0; pass < 8; pass++ {
		improved := false
		for i := range group {
			side[i] ^= 1
			ng := splitGain(g, group, pos, side, deg, m)
			if ng > gain+1e-15 {
				gain = ng
				improved = true
			} else {
				side[i] ^= 1
			}
		}
		if !improved {
			break
		}
	}
	return gain
}

func normalizeVec(x []float64) bool {
	var s float64
	for _, v := range x {
		s += v * v
	}
	s = math.Sqrt(s)
	if s < 1e-300 {
		return false
	}
	inv := 1 / s
	for i := range x {
		x[i] *= inv
	}
	return true
}

func dotVec(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
