package community

import (
	"math/rand"

	"snap/internal/graph"
)

// This file preserves the seed's map-based Louvain and Refine engines,
// verbatim apart from the names, as the "before" comparators of the
// BenchmarkLouvain*/BenchmarkRefine* tables in EXPERIMENTS.md and of
// the engine-equivalence quality tests. They are test-only: production
// code routes through the batch-synchronous scatter engine in move.go.

// louvainMapBaseline is the seed's Louvain: quotient levels built with
// graph.Build and local moving over a map[int32]float64 of neighbor
// community weights.
func louvainMapBaseline(g *graph.Graph, maxLevels int, seed int64) Clustering {
	if maxLevels <= 0 {
		maxLevels = 16
	}
	n := g.NumVertices()
	if n == 0 || g.NumEdges() == 0 {
		return Singletons(g)
	}
	// mapping[v] = community of original vertex v in the current level.
	mapping := identity(n)
	level := MakeQuotient(g, mapping, n)
	for lv := 0; lv < maxLevels; lv++ {
		qa, qc, improved := weightedLocalMoveMap(level, seed+int64(lv))
		if !improved {
			break
		}
		for v := 0; v < n; v++ {
			mapping[v] = qa[mapping[v]]
		}
		level = contractQuotient(level, qa, qc)
		if level.Graph.NumVertices() <= 1 {
			break
		}
	}
	return densify(g, mapping, 0)
}

// weightedLocalMoveMap runs modularity local moving on a weighted
// quotient graph whose vertices carry intra-community self-weights.
// Returns the new (dense) assignment, community count, and whether any
// move improved modularity.
func weightedLocalMoveMap(q Quotient, seed int64) ([]int32, int, bool) {
	qg := q.Graph
	nq := qg.NumVertices()
	// Total edge weight of the ORIGINAL graph: sum intra + inter.
	var m float64
	for _, w := range q.Intra {
		m += float64(w)
	}
	m += qg.TotalWeight()
	if m == 0 {
		return identity(nq), nq, false
	}
	assign := identity(nq)
	// Community degree sums start as the quotient vertices' own.
	degsum := make([]float64, nq)
	for c := 0; c < nq; c++ {
		degsum[c] = float64(q.DegSum[c])
	}
	improvedAny := false
	rngState := moveSeed(seed)
	order := make([]int32, nq)
	for i := range order {
		order[i] = int32(i)
	}
	linksTo := map[int32]float64{}
	for pass := 0; pass < 16; pass++ {
		// Deterministic pseudo-shuffle.
		for i := nq - 1; i > 0; i-- {
			rngState = rngState*6364136223846793005 + 1442695040888963407
			j := int(rngState % uint64(i+1))
			order[i], order[j] = order[j], order[i]
		}
		moves := 0
		for _, v := range order {
			cv := assign[v]
			kv := float64(q.DegSum[v])
			for k := range linksTo {
				delete(linksTo, k)
			}
			lo, hi := qg.Offsets[v], qg.Offsets[v+1]
			for a := lo; a < hi; a++ {
				linksTo[assign[qg.Adj[a]]] += qg.W[a]
			}
			lcv := linksTo[cv]
			bestD := cv
			bestGain := 0.0
			for d, ld := range linksTo {
				if d == cv {
					continue
				}
				gain := (ld-lcv)/m - kv*(degsum[d]-(degsum[cv]-kv))/(2*m*m)
				if gain > bestGain || (gain == bestGain && gain > 0 && d < bestD) {
					bestGain = gain
					bestD = d
				}
			}
			if bestD != cv && bestGain > 0 {
				degsum[cv] -= kv
				degsum[bestD] += kv
				assign[v] = bestD
				moves++
				improvedAny = true
			}
		}
		if moves == 0 {
			break
		}
	}
	// Densify ids.
	remap := map[int32]int32{}
	for v, c := range assign {
		if _, ok := remap[c]; !ok {
			remap[c] = int32(len(remap))
		}
		assign[v] = remap[c]
	}
	return assign, len(remap), improvedAny
}

// refineMapBaseline is the seed's Refine: sequential greedy moves with
// a rand.Shuffle visit order and a map-based neighbor gather.
func refineMapBaseline(g *graph.Graph, c Clustering, maxPasses int, seed int64) Clustering {
	if maxPasses <= 0 {
		maxPasses = 16
	}
	n := g.NumVertices()
	if n == 0 || g.NumEdges() == 0 {
		return c
	}
	st := newMoveState(g, c)
	rng := rand.New(rand.NewSource(seed))
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	linksTo := map[int32]float64{}
	for pass := 0; pass < maxPasses; pass++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		moves := 0
		for _, v := range order {
			cv := st.assign[v]
			for k := range linksTo {
				delete(linksTo, k)
			}
			for _, u := range st.g.Neighbors(v) {
				linksTo[st.assign[u]]++
			}
			lcv := linksTo[cv]
			bestD := cv
			bestGain := 0.0
			detach := false
			for d, ld := range linksTo {
				if d == cv {
					continue
				}
				if gn := st.gain(v, d, ld, lcv); gn > bestGain || (gn == bestGain && gn > 0 && d < bestD) {
					bestGain = gn
					bestD = d
					detach = false
				}
			}
			if gn := st.detachGain(v, lcv); gn > bestGain {
				bestGain = gn
				detach = true
			}
			if bestGain <= 0 {
				continue
			}
			if detach {
				st.apply(v, st.freshCommunity())
			} else {
				st.apply(v, bestD)
			}
			moves++
		}
		if moves == 0 {
			break
		}
	}
	return densify(g, st.assign, 0)
}
