package community

import (
	"math"
	"testing"
	"testing/quick"

	"snap/internal/datasets"
	"snap/internal/generate"
	"snap/internal/graph"
)

func buildGraph(t *testing.T, n int, pairs [][2]int32) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, len(pairs))
	for i, p := range pairs {
		edges[i] = graph.Edge{U: p[0], V: p[1]}
	}
	g, err := graph.Build(n, edges, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// twoTriangles is the classic two-community toy graph: triangles
// {0,1,2} and {3,4,5} joined by one edge.
func twoTriangles(t *testing.T) *graph.Graph {
	return buildGraph(t, 6, [][2]int32{
		{0, 1}, {1, 2}, {0, 2},
		{3, 4}, {4, 5}, {3, 5},
		{2, 3},
	})
}

func TestModularityKnownValues(t *testing.T) {
	g := twoTriangles(t)
	// Perfect split: Q = (3/7 - (7/14)^2) * 2 = 6/7 - 1/2 = 5/14.
	assign := []int32{0, 0, 0, 1, 1, 1}
	want := 6.0/7.0 - 0.5
	if q := Modularity(g, assign, 1); math.Abs(q-want) > 1e-12 {
		t.Fatalf("Q = %g, want %g", q, want)
	}
	// One community: Q = 1 - 1 = 0.
	if q := Modularity(g, []int32{0, 0, 0, 0, 0, 0}, 1); math.Abs(q) > 1e-12 {
		t.Fatalf("single-community Q = %g, want 0", q)
	}
}

func TestModularityWorkerInvariance(t *testing.T) {
	g := generate.RMAT(500, 2500, generate.DefaultRMAT(), 3)
	assign := make([]int32, g.NumVertices())
	for v := range assign {
		assign[v] = int32(v % 17)
	}
	q1 := Modularity(g, assign, 1)
	for _, w := range []int{2, 4, 8} {
		if q := Modularity(g, assign, w); math.Abs(q-q1) > 1e-9 {
			t.Fatalf("workers=%d: Q drifted %g vs %g", w, q, q1)
		}
	}
}

func TestQuickModularityBounds(t *testing.T) {
	// Q is always in [-1/2, 1) for any partition.
	check := func(raw []uint16, k uint8) bool {
		g := generate.ErdosRenyi(40, 80, int64(len(raw)))
		kk := int32(k%8) + 1
		assign := make([]int32, 40)
		for i := range assign {
			if i < len(raw) {
				assign[i] = int32(raw[i]) % kk
			}
		}
		q := Modularity(g, assign, 1)
		return q >= -0.5-1e-9 && q < 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCommunityStatsMatchModularity(t *testing.T) {
	g := generate.RMAT(200, 800, generate.DefaultRMAT(), 8)
	assign := make([]int32, g.NumVertices())
	for v := range assign {
		assign[v] = int32(v % 5)
	}
	st := NewCommunityStats(g, assign, 5)
	if math.Abs(st.Q()-Modularity(g, assign, 1)) > 1e-9 {
		t.Fatalf("stats Q %g != modularity %g", st.Q(), Modularity(g, assign, 1))
	}
}

func TestSingletons(t *testing.T) {
	g := twoTriangles(t)
	c := Singletons(g)
	if c.Count != 6 || len(c.Assign) != 6 {
		t.Fatalf("singletons: %v", c)
	}
	if c.Q >= 0 {
		t.Fatalf("singleton Q = %g, want negative", c.Q)
	}
}

func TestGirvanNewmanTwoTriangles(t *testing.T) {
	g := twoTriangles(t)
	best, dend := GirvanNewman(g, GNOptions{Workers: 2})
	if best.Count != 2 {
		t.Fatalf("GN found %d communities, want 2", best.Count)
	}
	want := 6.0/7.0 - 0.5
	if math.Abs(best.Q-want) > 1e-9 {
		t.Fatalf("GN Q = %g, want %g", best.Q, want)
	}
	if best.Assign[0] != best.Assign[1] || best.Assign[0] == best.Assign[3] {
		t.Fatalf("GN split wrong: %v", best.Assign)
	}
	if dend.Len() != g.NumEdges() {
		t.Fatalf("dendrogram has %d events, want %d", dend.Len(), g.NumEdges())
	}
}

func TestGirvanNewmanKarateQuality(t *testing.T) {
	g := datasets.Karate()
	best, _ := GirvanNewman(g, GNOptions{})
	// The paper reports Q = 0.401 for GN on karate.
	if math.Abs(best.Q-0.401) > 0.01 {
		t.Fatalf("GN karate Q = %.4f, want ~0.401", best.Q)
	}
}

func TestGirvanNewmanMaxRemovals(t *testing.T) {
	g := datasets.Karate()
	iterations := 0
	GirvanNewman(g, GNOptions{MaxRemovals: 5, OnRemoval: func(int) { iterations++ }})
	if iterations != 5 {
		t.Fatalf("OnRemoval fired %d times, want 5", iterations)
	}
}

func TestGNBestQMatchesRecomputedModularity(t *testing.T) {
	g := datasets.Karate()
	best, _ := GirvanNewman(g, GNOptions{})
	if q := Modularity(g, best.Assign, 1); math.Abs(q-best.Q) > 1e-9 {
		t.Fatalf("reported Q %g != recomputed %g", best.Q, q)
	}
}

func TestPBDTwoTriangles(t *testing.T) {
	g := twoTriangles(t)
	best, _ := PBD(g, PBDOptions{Seed: 1})
	want := 6.0/7.0 - 0.5
	if best.Count != 2 || math.Abs(best.Q-want) > 1e-9 {
		t.Fatalf("pBD: count=%d Q=%g, want 2 / %g", best.Count, best.Q, want)
	}
}

func TestPBDKarateQuality(t *testing.T) {
	g := datasets.Karate()
	best, _ := PBD(g, PBDOptions{Seed: 7})
	// Paper reports 0.397 for pBD on karate; allow sampling slack.
	if best.Q < 0.35 {
		t.Fatalf("pBD karate Q = %.4f, want >= 0.35", best.Q)
	}
	if q := Modularity(g, best.Assign, 1); math.Abs(q-best.Q) > 1e-9 {
		t.Fatalf("reported Q %g != recomputed %g", best.Q, q)
	}
}

func TestPBDBridgeHeuristicAndPatience(t *testing.T) {
	g, _ := generate.PlantedPartition(4, 20, 0.4, 0.01, 5)
	a, _ := PBD(g, PBDOptions{Seed: 1, UseBridgeHeuristic: true, Patience: 50})
	b, _ := PBD(g, PBDOptions{Seed: 1, UseBridgeHeuristic: false, Patience: 50})
	if a.Q < 0.3 || b.Q < 0.3 {
		t.Fatalf("pBD planted-partition Q too low: %.3f / %.3f", a.Q, b.Q)
	}
}

func TestPMATwoTriangles(t *testing.T) {
	g := twoTriangles(t)
	best, dend := PMA(g, PMAOptions{StopWhenNegative: true})
	want := 6.0/7.0 - 0.5
	if best.Count != 2 || math.Abs(best.Q-want) > 1e-9 {
		t.Fatalf("pMA: count=%d Q=%g, want 2 / %g", best.Count, best.Q, want)
	}
	if dend.Len() == 0 {
		t.Fatal("pMA recorded no joins")
	}
	// Each event must be a join.
	for _, ev := range dend.Events {
		if !ev.Join {
			t.Fatal("pMA produced a split event")
		}
	}
}

func TestPMAKarateQuality(t *testing.T) {
	g := datasets.Karate()
	best, _ := PMA(g, PMAOptions{StopWhenNegative: true})
	// Paper reports 0.381; CNM on karate is known to achieve ~0.3807.
	if math.Abs(best.Q-0.3807) > 0.02 {
		t.Fatalf("pMA karate Q = %.4f, want ~0.38", best.Q)
	}
	if q := Modularity(g, best.Assign, 1); math.Abs(q-best.Q) > 1e-9 {
		t.Fatalf("reported Q %g != recomputed %g", best.Q, q)
	}
}

func TestPMAFullDendrogramReachesOneCommunity(t *testing.T) {
	g := datasets.Karate()
	_, dend := PMA(g, PMAOptions{StopWhenNegative: false})
	last := dend.Events[len(dend.Events)-1]
	if last.Clusters != 1 {
		t.Fatalf("full pMA ended with %d clusters, want 1", last.Clusters)
	}
}

func TestPMAStopWhenNegativeLossless(t *testing.T) {
	// Stopping at all-negative ΔQ must find the same best Q as the
	// complete dendrogram.
	g := generate.RMAT(200, 800, generate.DefaultRMAT(), 6)
	a, _ := PMA(g, PMAOptions{StopWhenNegative: true})
	b, _ := PMA(g, PMAOptions{StopWhenNegative: false})
	if math.Abs(a.Q-b.Q) > 1e-9 {
		t.Fatalf("early stop lost quality: %g vs %g", a.Q, b.Q)
	}
}

func TestPLATwoTriangles(t *testing.T) {
	g := twoTriangles(t)
	best := PLA(g, PLAOptions{Seed: 3})
	want := 6.0/7.0 - 0.5
	if best.Count != 2 || math.Abs(best.Q-want) > 1e-9 {
		t.Fatalf("pLA: count=%d Q=%g, want 2 / %g", best.Count, best.Q, want)
	}
}

func TestPLAKarateQuality(t *testing.T) {
	g := datasets.Karate()
	best := PLA(g, PLAOptions{Seed: 5})
	// Paper reports 0.397; accept a band for the randomized heuristic.
	if best.Q < 0.30 {
		t.Fatalf("pLA karate Q = %.4f, want >= 0.30", best.Q)
	}
	if q := Modularity(g, best.Assign, 1); math.Abs(q-best.Q) > 1e-9 {
		t.Fatalf("reported Q %g != recomputed %g", best.Q, q)
	}
}

func TestPLAMetricVariants(t *testing.T) {
	g := datasets.Karate()
	d := PLA(g, PLAOptions{Seed: 5, Metric: MetricDegree})
	c := PLA(g, PLAOptions{Seed: 5, Metric: MetricClusteringCoeff})
	if d.Q <= 0 || c.Q <= 0 {
		t.Fatalf("metric variants failed: %g / %g", d.Q, c.Q)
	}
}

func TestPlantedPartitionRecovery(t *testing.T) {
	// All three algorithms must recover strong planted structure.
	g, truth := generate.PlantedPartition(4, 30, 0.5, 0.005, 11)
	truthQ := Modularity(g, truth, 1)
	pma, _ := PMA(g, PMAOptions{StopWhenNegative: true})
	pla := PLA(g, PLAOptions{Seed: 2})
	pbd, _ := PBD(g, PBDOptions{Seed: 2, Patience: 100})
	for name, got := range map[string]float64{"pMA": pma.Q, "pLA": pla.Q, "pBD": pbd.Q} {
		if got < truthQ*0.9 {
			t.Fatalf("%s Q = %.3f, want >= 90%% of truth Q %.3f", name, got, truthQ)
		}
	}
}

func TestRefineNeverDecreasesQ(t *testing.T) {
	g := datasets.Karate()
	start, _ := PMA(g, PMAOptions{StopWhenNegative: true})
	ref := Refine(g, start, 16, 1)
	if ref.Q < start.Q-1e-12 {
		t.Fatalf("Refine decreased Q: %g -> %g", start.Q, ref.Q)
	}
	if q := Modularity(g, ref.Assign, 1); math.Abs(q-ref.Q) > 1e-9 {
		t.Fatalf("refined Q inconsistent: %g vs %g", ref.Q, q)
	}
}

func TestAnnealKarateNearBestKnown(t *testing.T) {
	g := datasets.Karate()
	best := Anneal(g, 20000, 3)
	// Best known Q on karate is 0.4198 (0.431 under the paper's table);
	// anneal should land at >= 0.40.
	if best.Q < 0.40 {
		t.Fatalf("anneal karate Q = %.4f, want >= 0.40", best.Q)
	}
}

func TestDendrogramBestSnapshot(t *testing.T) {
	assign := []int32{0, 0, 1, 1}
	d := NewDendrogram(assign, 2, 0.1)
	assign[0] = 1 // mutate after snapshot; dendrogram must keep a copy
	d.Record(DendrogramEvent{Step: 0, Q: 0.05}, assign, 2)
	best := d.Best()
	if best.Q != 0.1 {
		t.Fatalf("BestQ = %g", best.Q)
	}
	if best.Assign[0] == best.Assign[2] {
		t.Fatal("snapshot should reflect the original assignment")
	}
}

func TestClusteringAccessors(t *testing.T) {
	c := Clustering{Assign: []int32{0, 1, 0, 1, 1}, Count: 2, Q: 0.5}
	sizes := c.Sizes()
	if sizes[0] != 2 || sizes[1] != 3 {
		t.Fatalf("sizes = %v", sizes)
	}
	mem := c.Members()
	if len(mem[0]) != 2 || len(mem[1]) != 3 {
		t.Fatalf("members = %v", mem)
	}
	if c.String() == "" {
		t.Fatal("String empty")
	}
}

func TestBucketPQ(t *testing.T) {
	pq := newBucketPQ()
	if _, _, ok := pq.Max(); ok {
		t.Fatal("empty Max should fail")
	}
	pq.Set(1, 0.5)
	pq.Set(2, 0.9)
	pq.Set(3, -0.3)
	if id, v, ok := pq.Max(); !ok || id != 2 || v != 0.9 {
		t.Fatalf("Max = (%d, %g)", id, v)
	}
	pq.Set(2, 0.1) // downgrade
	if id, _, _ := pq.Max(); id != 1 {
		t.Fatalf("Max after downgrade = %d, want 1", id)
	}
	if !pq.Delete(1) || pq.Delete(1) {
		t.Fatal("delete semantics")
	}
	if id, _, _ := pq.Max(); id != 2 {
		t.Fatalf("Max after delete = %d, want 2", id)
	}
	if pq.Len() != 2 {
		t.Fatalf("Len = %d", pq.Len())
	}
}

func TestQuickBucketPQMatchesOracle(t *testing.T) {
	check := func(ops []int16) bool {
		pq := newBucketPQ()
		oracle := map[int32]float64{}
		for _, op := range ops {
			id := int32(op % 16)
			if id < 0 {
				id = -id
			}
			v := float64(op%97) / 97.0
			if op%5 == 0 {
				ok := pq.Delete(id)
				_, had := oracle[id]
				if ok != had {
					return false
				}
				delete(oracle, id)
			} else {
				pq.Set(id, v)
				oracle[id] = v
			}
		}
		if pq.Len() != len(oracle) {
			return false
		}
		if len(oracle) == 0 {
			_, _, ok := pq.Max()
			return !ok
		}
		bid, bv := int32(-1), math.Inf(-1)
		for id, v := range oracle {
			if v > bv || (v == bv && id < bid) {
				bid, bv = id, v
			}
		}
		id, v, ok := pq.Max()
		return ok && id == bid && v == bv
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGirvanNewmanDisconnectedInput(t *testing.T) {
	// Two separate triangles (no bridge): initial partition is already
	// the two components; GN must handle multi-component input.
	g := buildGraph(t, 6, [][2]int32{
		{0, 1}, {1, 2}, {0, 2},
		{3, 4}, {4, 5}, {3, 5},
	})
	best, _ := GirvanNewman(g, GNOptions{})
	// Two triangles with m=6: Q = 2*(3/6 - (6/12)^2) = 0.5.
	if best.Count != 2 || math.Abs(best.Q-0.5) > 1e-9 {
		t.Fatalf("disconnected GN: count=%d Q=%g", best.Count, best.Q)
	}
}

func TestPBDDeterministicForFixedSeed(t *testing.T) {
	g := datasets.Karate()
	a, _ := PBD(g, PBDOptions{Seed: 11})
	b, _ := PBD(g, PBDOptions{Seed: 11})
	if a.Q != b.Q || a.Count != b.Count {
		t.Fatalf("pBD not deterministic: %v vs %v", a, b)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("assignments differ")
		}
	}
}

func TestPMAEmptyAndEdgelessGraphs(t *testing.T) {
	g, _ := graph.Build(5, nil, graph.BuildOptions{})
	c, _ := PMA(g, PMAOptions{})
	if c.Count != 5 {
		t.Fatalf("edgeless pMA count = %d", c.Count)
	}
	g0, _ := graph.Build(0, nil, graph.BuildOptions{})
	c0, _ := PMA(g0, PMAOptions{})
	if c0.Count != 0 {
		t.Fatalf("empty pMA count = %d", c0.Count)
	}
}
