// Package community implements SNAP's modularity-maximizing community
// detection algorithms — the paper's core contribution:
//
//   - GN:  the Girvan–Newman exact edge-betweenness divisive baseline.
//   - pBD: the engineered divisive algorithm using adaptive-sampling
//     approximate edge betweenness, the biconnected-components bridge
//     heuristic, and a coarse/fine parallelism granularity switch.
//   - pMA: parallel greedy agglomeration (CNM-style) over a sparse ΔQ
//     structure of sorted dynamic rows with bucketed maxima.
//   - pLA: greedy local aggregation seeded after bridge removal, using
//     local metrics with a modularity acceptance test.
//
// All algorithms operate on undirected graphs (directed inputs should
// be symmetrized with graph.Undirected, matching the paper: "we ignore
// edge directivity in the community detection algorithms").
package community

import (
	"fmt"

	"snap/internal/graph"
	"snap/internal/par"
)

// Clustering is a partition of the vertices into communities.
type Clustering struct {
	// Assign maps each vertex to a dense community id in [0, Count).
	Assign []int32
	// Count is the number of communities.
	Count int
	// Q is the modularity of the partition.
	Q float64
}

// Sizes returns the number of vertices in each community.
func (c Clustering) Sizes() []int {
	sizes := make([]int, c.Count)
	for _, id := range c.Assign {
		sizes[id]++
	}
	return sizes
}

// Members returns the vertex lists of all communities.
func (c Clustering) Members() [][]int32 {
	out := make([][]int32, c.Count)
	for v, id := range c.Assign {
		out[id] = append(out[id], int32(v))
	}
	return out
}

// String summarizes the clustering.
func (c Clustering) String() string {
	return fmt.Sprintf("clustering{k=%d, Q=%.4f}", c.Count, c.Q)
}

// Singletons returns the clustering with every vertex in its own
// community.
func Singletons(g *graph.Graph) Clustering {
	n := g.NumVertices()
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = int32(i)
	}
	return Clustering{Assign: assign, Count: n, Q: Modularity(g, assign, 0)}
}

// Modularity computes Newman–Girvan modularity
//
//	Q(C) = sum_i [ m(C_i)/m − (sum_{v in C_i} deg(v) / 2m)^2 ]
//
// of the partition given by assign (community ids need not be dense)
// on the unweighted undirected graph g. The O(m) edge scan and O(n)
// degree scan are parallelized with `workers` goroutines (<= 0 means
// par.Workers()).
func Modularity(g *graph.Graph, assign []int32, workers int) float64 {
	if workers <= 0 {
		workers = par.Workers()
	}
	m := float64(g.NumEdges())
	if m == 0 {
		return 0
	}
	maxID := int32(-1)
	for _, id := range assign {
		if id > maxID {
			maxID = id
		}
	}
	k := int(maxID) + 1
	intra := make([][]int64, workers)  // per-worker intra-edge counts
	degsum := make([][]int64, workers) // per-worker degree sums
	n := g.NumVertices()
	par.ForChunkedN(n, workers, func(w, lo, hi int) {
		li := make([]int64, k)
		ld := make([]int64, k)
		for vi := lo; vi < hi; vi++ {
			v := int32(vi)
			cv := assign[v]
			alo, ahi := g.Offsets[v], g.Offsets[v+1]
			ld[cv] += ahi - alo
			for a := alo; a < ahi; a++ {
				u := g.Adj[a]
				if u > v && assign[u] == cv {
					li[cv]++
				}
			}
		}
		intra[w] = li
		degsum[w] = ld
	})
	var q float64
	twoM := 2 * m
	for c := 0; c < k; c++ {
		var mi, di int64
		for w := 0; w < workers; w++ {
			mi += intra[w][c]
			di += degsum[w][c]
		}
		frac := float64(di) / twoM
		q += float64(mi)/m - frac*frac
	}
	return q
}

// CommunityStats holds the per-community accounting (intra-edge count
// and total degree) that the divisive algorithms update incrementally.
type CommunityStats struct {
	Intra  []int64 // intra-community edges of the ORIGINAL graph
	DegSum []int64 // total original degree
	M      float64 // original edge count
}

// NewCommunityStats computes per-community accounting for assign with
// community ids in [0, count).
func NewCommunityStats(g *graph.Graph, assign []int32, count int) *CommunityStats {
	st := &CommunityStats{
		Intra:  make([]int64, count),
		DegSum: make([]int64, count),
		M:      float64(g.NumEdges()),
	}
	n := g.NumVertices()
	for vi := 0; vi < n; vi++ {
		v := int32(vi)
		c := assign[v]
		st.DegSum[c] += int64(g.Degree(v))
		for _, u := range g.Neighbors(v) {
			if u > v && assign[u] == c {
				st.Intra[c]++
			}
		}
	}
	return st
}

// Q computes modularity from the maintained accounting.
func (st *CommunityStats) Q() float64 {
	if st.M == 0 {
		return 0
	}
	var q float64
	twoM := 2 * st.M
	for c := range st.Intra {
		frac := float64(st.DegSum[c]) / twoM
		q += float64(st.Intra[c])/st.M - frac*frac
	}
	return q
}

var relabelPool = par.NewPool(func() *relabeler { return &relabeler{} })

// densify renumbers arbitrary community labels to [0, Count) in
// first-seen order and computes Q. The renumbering runs through a
// pooled epoch-stamped relabeler — two array probes per vertex instead
// of a map insert.
func densify(g *graph.Graph, assign []int32, workers int) Clustering {
	out := make([]int32, len(assign))
	maxID := int32(-1)
	for _, l := range assign {
		if l > maxID {
			maxID = l
		}
	}
	r := relabelPool.Get()
	r.ensure(int(maxID) + 1)
	r.begin()
	for v, l := range assign {
		out[v] = r.id(l)
	}
	count := int(r.next)
	relabelPool.Put(r)
	return Clustering{Assign: out, Count: count, Q: Modularity(g, out, workers)}
}
