package community

import (
	"math/rand"

	"snap/internal/centrality"
	"snap/internal/components"
	"snap/internal/graph"
	"snap/internal/par"
)

// PBDOptions configures the approximate-betweenness divisive algorithm
// (Algorithm 1 of the paper).
type PBDOptions struct {
	// Workers bounds parallelism; <= 0 means par.Workers().
	Workers int
	// SampleFraction is the fraction of a component's vertices used as
	// traversal sources when estimating edge betweenness (paper: 5%
	// sampling estimates top-1% centrality within ~20%). 0 => 0.05.
	SampleFraction float64
	// MinSamples floors the per-component sample count (default 32).
	MinSamples int
	// SwitchThreshold is the component size at or below which the
	// algorithm switches from approximate to exact per-component
	// betweenness — the paper's semi-automatic parallelism/accuracy
	// granularity switch (controlled by a user parameter). 0 => 1024.
	SwitchThreshold int
	// UseBridgeHeuristic enables the optional step 1 of Algorithm 1:
	// biconnected components are computed up front and bridge edges
	// are seeded as known high-centrality candidates.
	UseBridgeHeuristic bool
	// MaxRemovals caps edge removals (0 = up to m).
	MaxRemovals int
	// Patience stops the division after this many consecutive
	// removals without a new best modularity (0 = run to MaxRemovals).
	Patience int
	// RefreshInterval is the number of removals a large component may
	// absorb before its approximate scores are recomputed. Between
	// refreshes, removals consume the cached candidate ranking — the
	// paper's "only recompute approximate betweenness scores of the
	// known high-centrality edges". Components at or below
	// SwitchThreshold always refresh exactly (cheap). 0 => 16.
	RefreshInterval int
	// Seed makes source sampling deterministic.
	Seed int64
}

func (o *PBDOptions) fill() {
	if o.Workers <= 0 {
		o.Workers = par.Workers()
	}
	if o.SampleFraction <= 0 {
		o.SampleFraction = 0.05
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 32
	}
	if o.SwitchThreshold <= 0 {
		o.SwitchThreshold = 1024
	}
	if o.RefreshInterval <= 0 {
		o.RefreshInterval = 16
	}
}

// PBD is the parallel approximate-betweenness divisive clustering
// algorithm (pBD). It follows the Girvan–Newman structure but replaces
// exact betweenness with adaptive sampled approximation while
// components are large, switching to exact component-local betweenness
// once the graph has fragmented below SwitchThreshold; connectivity
// after each cut is tested with a bidirectional search, and modularity
// and the dendrogram are maintained incrementally (the parallel O(m)
// steps 6–7 of Algorithm 1 reduce to incremental O(split) updates plus
// parallel traversals).
func PBD(g *graph.Graph, opt PBDOptions) (Clustering, *Dendrogram) {
	opt.fill()
	m := g.NumEdges()
	maxRemovals := opt.MaxRemovals
	if maxRemovals <= 0 || maxRemovals > m {
		maxRemovals = m
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	alive := make([]bool, m)
	for i := range alive {
		alive[i] = true
	}
	lab := components.Connected(g, alive)
	assign := lab.Comp
	members := make(map[int32][]int32, lab.Count)
	for v, c := range assign {
		members[c] = append(members[c], int32(v))
	}
	nextComm := int32(lab.Count)
	st := NewCommunityStats(g, assign, lab.Count)
	intra := make(map[int32]int64, lab.Count)
	degsum := make(map[int32]int64, lab.Count)
	for c := 0; c < lab.Count; c++ {
		intra[int32(c)] = st.Intra[c]
		degsum[int32(c)] = st.DegSum[c]
	}
	q := modularityFromMaps(intra, degsum, float64(m))
	dend := NewDendrogram(assign, int(nextComm), q)

	// Optional step 1: bridges are likely high-centrality edges; give
	// them an initial score boost so the first removals consider them
	// even before a full estimate refresh.
	bridgeBoost := make(map[int32]bool)
	if opt.UseBridgeHeuristic {
		bc := components.Biconnected(g)
		for _, b := range bc.Bridges() {
			bridgeBoost[b] = true
		}
	}

	// Initial approximate scores over each initial component.
	scores := make([]float64, m)
	for c := int32(0); c < nextComm; c++ {
		refreshScores(g, alive, members[c], scores, opt, rng)
	}
	for b := range bridgeBoost {
		// A bridge carries all s-t dependencies across it; make sure
		// sampling noise cannot hide it at the start.
		if alive[b] {
			scores[b] *= 1.5
		}
	}

	endpoints := g.EdgeEndpoints()
	clusters := lab.Count
	sinceBest := 0
	stale := make(map[int32]int, lab.Count) // removals since last refresh
	for iter := 0; iter < maxRemovals; iter++ {
		em := centrality.MaxEdge(scores, alive)
		if em < 0 {
			break
		}
		alive[em] = false
		u, v := endpoints[em].U, endpoints[em].V
		comm := assign[u]

		side, connected := bidirSplit(g, alive, u, v)
		if !connected {
			newComm := nextComm
			nextComm++
			inSide := make(map[int32]bool, len(side))
			for _, w := range side {
				inSide[w] = true
			}
			var other []int32
			for _, w := range members[comm] {
				if !inSide[w] {
					other = append(other, w)
				}
			}
			for _, w := range side {
				assign[w] = newComm
			}
			members[newComm] = side
			members[comm] = other
			recomputeStats(g, assign, newComm, side, intra, degsum)
			recomputeStats(g, assign, comm, other, intra, degsum)
			clusters++
			q = modularityFromMaps(intra, degsum, float64(m))

			// A split partially invalidates both fragments' scores
			// (cross-fragment dependencies died with the cut edge).
			// Small fragments refresh immediately — exact and cheap —
			// while large fragments keep their (approximately valid:
			// intra-fragment paths are unchanged) cached ranking and
			// are pushed toward their next scheduled refresh. Eager
			// whole-fragment refreshes on every split would dominate
			// the runtime on graphs that peel, e.g. R-MAT peripheries.
			for _, frag := range [2][]int32{side, other} {
				c := assign[frag[0]]
				if len(frag) <= opt.SwitchThreshold {
					zeroComponentScores(g, frag, alive, scores)
					refreshScores(g, alive, frag, scores, opt, rng)
					stale[c] = 0
				} else {
					stale[c] += 2
					if stale[c] >= opt.RefreshInterval {
						zeroComponentScores(g, frag, alive, scores)
						refreshScores(g, alive, frag, scores, opt, rng)
						stale[c] = 0
					}
				}
			}
		} else {
			// No split: reuse the cached candidate ranking until
			// RefreshInterval removals have accumulated, then refresh
			// (exactly for components at or below the switch
			// threshold, sampled above it).
			stale[comm]++
			if stale[comm] >= opt.RefreshInterval {
				zeroComponentScores(g, members[comm], alive, scores)
				refreshScores(g, alive, members[comm], scores, opt, rng)
				stale[comm] = 0
			}
		}

		prevBest := dend.BestQ
		dend.Record(DendrogramEvent{
			Step:     iter,
			A:        comm,
			B:        nextComm - 1,
			EdgeID:   em,
			Clusters: clusters,
			Q:        q,
		}, assign, clusters)
		if dend.BestQ > prevBest {
			sinceBest = 0
		} else {
			sinceBest++
			if opt.Patience > 0 && sinceBest >= opt.Patience {
				break
			}
		}
	}
	return dend.Best(), dend
}

// refreshScores recomputes the betweenness estimate of every alive
// edge inside the component given by its member list. Components at or
// below the switch threshold get exact scores (every member is a
// source); larger components get sampled approximate scores scaled to
// the exact range. Traversals are parallelized coarsely over sources.
func refreshScores(g *graph.Graph, alive []bool, comp []int32, scores []float64, opt PBDOptions, rng *rand.Rand) {
	if len(comp) < 2 {
		return
	}
	sources := comp
	scale := 1.0
	if len(comp) > opt.SwitchThreshold {
		k := int(opt.SampleFraction * float64(len(comp)))
		if k < opt.MinSamples {
			k = opt.MinSamples
		}
		if k < len(comp) {
			sources = sampleVertices(comp, k, rng)
			scale = float64(len(comp)) / float64(k)
		}
	}
	part := centrality.Betweenness(g, centrality.BetweennessOptions{
		Workers:     opt.Workers,
		Alive:       alive,
		ComputeEdge: true,
		Sources:     sources,
	})
	for id, s := range part.Edge {
		if s != 0 {
			scores[id] += s * scale
		}
	}
}

func sampleVertices(comp []int32, k int, rng *rand.Rand) []int32 {
	// Partial Fisher–Yates over a copy.
	cp := append([]int32(nil), comp...)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(cp)-i)
		cp[i], cp[j] = cp[j], cp[i]
	}
	return cp[:k]
}

// bidirSplit tests whether u and v are still connected after removing
// the edge between them, by alternating BFS waves from both endpoints.
// If they are disconnected it returns the full vertex set of the side
// whose wave exhausted first (the smaller side) and connected=false.
func bidirSplit(g *graph.Graph, alive []bool, u, v int32) (side []int32, connected bool) {
	visitU := map[int32]bool{u: true}
	visitV := map[int32]bool{v: true}
	frontU := []int32{u}
	frontV := []int32{v}
	orderU := []int32{u}
	orderV := []int32{v}
	for {
		// Expand the smaller frontier.
		if len(frontU) <= len(frontV) {
			var hit bool
			frontU, orderU, hit = expandWave(g, alive, frontU, orderU, visitU, visitV)
			if hit {
				return nil, true
			}
			if len(frontU) == 0 {
				return orderU, false
			}
		} else {
			var hit bool
			frontV, orderV, hit = expandWave(g, alive, frontV, orderV, visitV, visitU)
			if hit {
				return nil, true
			}
			if len(frontV) == 0 {
				return orderV, false
			}
		}
	}
}

func expandWave(g *graph.Graph, alive []bool, front, order []int32, mine, theirs map[int32]bool) (nf, no []int32, hit bool) {
	var next []int32
	for _, v := range front {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		for a := lo; a < hi; a++ {
			if alive != nil && !alive[g.EID[a]] {
				continue
			}
			u := g.Adj[a]
			if theirs[u] {
				return nil, order, true
			}
			if !mine[u] {
				mine[u] = true
				next = append(next, u)
				order = append(order, u)
			}
		}
	}
	return next, order, false
}
