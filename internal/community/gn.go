package community

import (
	"sort"

	"snap/internal/bfs"
	"snap/internal/centrality"
	"snap/internal/components"
	"snap/internal/graph"
	"snap/internal/par"
)

// GNOptions configures the Girvan–Newman baseline.
type GNOptions struct {
	// Workers bounds parallelism; <= 0 means par.Workers().
	Workers int
	// MaxRemovals stops after that many edge removals (0 = remove
	// every edge, the full NG trajectory).
	MaxRemovals int
	// Patience stops after this many consecutive removals without a
	// new best modularity (0 = disabled). Since the NG modularity
	// trajectory declines once communities fragment past the optimum,
	// a generous patience recovers the full-run answer at a fraction
	// of the cost on large instances.
	Patience int
	// OnRemoval, when non-nil, is called after every removal with the
	// iteration index — used by the benchmark harness to meter
	// per-iteration cost on instances too large for a full run.
	OnRemoval func(iter int)
}

// GirvanNewman is the exact edge-betweenness divisive algorithm
// (Newman & Girvan 2004): repeatedly recompute exact edge betweenness,
// remove the highest-scoring edge, and track the modularity of the
// connected-component partition, returning the best clustering seen.
//
// Exactness is preserved while avoiding redundant work: removing an
// edge only perturbs shortest paths inside its own connected
// component, so betweenness is recomputed only for the affected
// component(s), with cached scores reused elsewhere. Traversals within
// the recomputation are distributed over workers (coarse-grained).
func GirvanNewman(g *graph.Graph, opt GNOptions) (Clustering, *Dendrogram) {
	workers := opt.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	m := g.NumEdges()
	maxRemovals := opt.MaxRemovals
	if maxRemovals <= 0 || maxRemovals > m {
		maxRemovals = m
	}

	alive := make([]bool, m)
	for i := range alive {
		alive[i] = true
	}

	// Initial partition: connected components of the input.
	lab := components.Connected(g, alive)
	assign := lab.Comp
	members := make(map[int32][]int32, lab.Count)
	for v, c := range assign {
		members[c] = append(members[c], int32(v))
	}
	nextComm := int32(lab.Count)
	stats := NewCommunityStats(g, assign, lab.Count)
	// Stats indexed by community id; switch to map-backed growth.
	intra := make(map[int32]int64, lab.Count)
	degsum := make(map[int32]int64, lab.Count)
	for c := 0; c < lab.Count; c++ {
		intra[int32(c)] = stats.Intra[c]
		degsum[int32(c)] = stats.DegSum[c]
	}
	q := modularityFromMaps(intra, degsum, float64(m))
	dend := NewDendrogram(assign, int(nextComm), q)

	// Full exact edge betweenness once.
	scores := centrality.Betweenness(g, centrality.BetweennessOptions{
		Workers:     workers,
		Alive:       alive,
		ComputeEdge: true,
	}).Edge

	endpoints := g.EdgeEndpoints()
	clusters := lab.Count
	sinceBest := 0
	// One epoch-stamped workspace serves every split-check BFS across
	// all removals: O(1) reset per check instead of two O(n) arrays.
	ws := bfs.AcquireWorkspace(g.NumVertices())
	defer bfs.ReleaseWorkspace(ws)
	for iter := 0; iter < maxRemovals; iter++ {
		em := centrality.MaxEdge(scores, alive)
		if em < 0 {
			break
		}
		alive[em] = false
		u, v := endpoints[em].U, endpoints[em].V
		comm := assign[u]

		// Does the removal split comm? BFS from u over alive edges.
		ws.Run(g, u, alive, -1)
		split := !ws.Visited(v)
		if split {
			// Relabel the side containing u.
			newComm := nextComm
			nextComm++
			var sideU, sideV []int32
			for _, w := range members[comm] {
				if ws.Visited(w) {
					assign[w] = newComm
					sideU = append(sideU, w)
				} else {
					sideV = append(sideV, w)
				}
			}
			members[newComm] = sideU
			members[comm] = sideV
			recomputeStats(g, assign, newComm, sideU, intra, degsum)
			recomputeStats(g, assign, comm, sideV, intra, degsum)
			clusters++
			q = modularityFromMaps(intra, degsum, float64(m))
		}
		// Recompute betweenness for the affected component(s):
		// zero scores of their alive edges, then accumulate fresh
		// traversals from their vertices only.
		affected := members[comm]
		if split {
			affected = append(append([]int32(nil), affected...), members[nextComm-1]...)
		}
		zeroComponentScores(g, affected, alive, scores)
		if len(affected) > 1 {
			part := centrality.Betweenness(g, centrality.BetweennessOptions{
				Workers:     workers,
				Alive:       alive,
				ComputeEdge: true,
				Sources:     affected,
			})
			for id, s := range part.Edge {
				if s != 0 {
					scores[id] += s
				}
			}
		}
		prevBest := dend.BestQ
		dend.Record(DendrogramEvent{
			Step:     iter,
			A:        comm,
			B:        nextComm - 1,
			EdgeID:   em,
			Clusters: clusters,
			Q:        q,
		}, assign, clusters)
		if opt.OnRemoval != nil {
			opt.OnRemoval(iter)
		}
		if dend.BestQ > prevBest {
			sinceBest = 0
		} else {
			sinceBest++
			if opt.Patience > 0 && sinceBest >= opt.Patience {
				break
			}
		}
	}
	return dend.Best(), dend
}

// recomputeStats refreshes the intra/degsum accounting of community c
// whose member list is members. Modularity is always measured against
// the ORIGINAL graph (Newman–Girvan), so intra counts original edges
// between members, regardless of alive status.
func recomputeStats(g *graph.Graph, assign []int32, c int32, members []int32, intra, degsum map[int32]int64) {
	var mi, di int64
	for _, v := range members {
		di += int64(g.Degree(v))
		for _, u := range g.Neighbors(v) {
			if u > v && assign[u] == c {
				mi++
			}
		}
	}
	intra[c] = mi
	degsum[c] = di
}

func modularityFromMaps(intra, degsum map[int32]int64, m float64) float64 {
	if m == 0 {
		return 0
	}
	// Sum in sorted key order: float addition is not associative, and
	// map iteration order is random, so an unsorted sum would make
	// runs with identical seeds differ in the last few bits of Q.
	keys := make([]int32, 0, len(intra))
	for c := range intra {
		keys = append(keys, c)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var q float64
	twoM := 2 * m
	for _, c := range keys {
		frac := float64(degsum[c]) / twoM
		q += float64(intra[c])/m - frac*frac
	}
	return q
}

// zeroComponentScores clears the cached betweenness of every alive
// edge incident to the given vertices (exactly the edges whose scores
// the follow-up component-local recomputation will repopulate).
func zeroComponentScores(g *graph.Graph, vertices []int32, alive []bool, scores []float64) {
	for _, v := range vertices {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		for a := lo; a < hi; a++ {
			if id := g.EID[a]; alive[id] {
				scores[id] = 0
			}
		}
	}
}
