package partition

import (
	"math/rand"
	"slices"

	"snap/internal/graph"
	"snap/internal/sketch"
)

// MultilevelOptions configures the Metis-style partitioners.
type MultilevelOptions struct {
	// CoarsenTarget is the coarsest-graph size per part (default 30:
	// coarsening stops near K*30 vertices).
	CoarsenTarget int
	// Imbalance is the allowed part-weight overrun (default 0.05,
	// i.e. parts may weigh up to 1.05x the ideal).
	Imbalance float64
	// RefinePasses bounds boundary-refinement sweeps per level
	// (default 8).
	RefinePasses int
	// Seed drives matching and seeding randomness; 0 means the pinned
	// repo default (sketch.EffectiveSeed). The partition is the same
	// for a given seed at every worker count.
	Seed int64
	// Workers caps the worker count for the k-way engine (default
	// par.Workers()).
	Workers int
}

func (o *MultilevelOptions) fill() {
	if o.CoarsenTarget <= 0 {
		o.CoarsenTarget = 30
	}
	if o.Imbalance <= 0 {
		o.Imbalance = 0.05
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 8
	}
}

// MultilevelKWay partitions g into k parts with the multilevel k-way
// scheme (the pmetis/kmetis analogue): parallel heavy-edge handshake
// matching with counting-sort contraction, greedy growing on the
// coarsest graph, then projection with batch-synchronous boundary
// refinement at every level. The result is bit-identical at every
// worker count. Allocates a fresh result; callers on a hot loop should
// use Workspace.KWay directly.
func MultilevelKWay(g *graph.Graph, k int, opt MultilevelOptions) (Result, error) {
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	res, err := ws.KWay(g, k, opt)
	if err != nil {
		return Result{}, err
	}
	res.Part = slices.Clone(res.Part)
	return res, nil
}

// MultilevelRecursive partitions g into k parts (k a power of two is
// ideal; other k are split near-evenly) by recursive multilevel
// bisection — the pmetis-style alternative to direct k-way.
func MultilevelRecursive(g *graph.Graph, k int, opt MultilevelOptions) (Result, error) {
	if err := validateK(g, k); err != nil {
		return Result{}, err
	}
	opt.fill()
	part := make([]int32, g.NumVertices())
	w := fromGraph(g)
	verts := make([]int32, g.NumVertices())
	for i := range verts {
		verts[i] = int32(i)
	}
	rb := &recursiveBisector{
		opt:    opt,
		seed:   sketch.EffectiveSeed(opt.Seed),
		part:   part,
		bisect: multilevelBisect,
	}
	rb.split(w, verts, 0, k)
	return finish(g, part, k), nil
}

// recursiveBisector drives recursive bisection over induced weighted
// subgraphs, writing final part ids into part.
type recursiveBisector struct {
	opt  MultilevelOptions
	seed int64 // effective seed; each split derives its own stream
	part []int32
	// bisect computes a 2-way split of w with the given target weight
	// fraction for side 0; returns side ids (0/1) per wgraph vertex.
	bisect func(w *wgraph, frac float64, opt MultilevelOptions, rng *rand.Rand) ([]int32, error)
	err    error
}

// splitSeed derives the per-split seed: the effective user seed mixed
// with the (base, k) recursion coordinates through splitmix64 so every
// subproblem gets an independent stream.
func (rb *recursiveBisector) splitSeed(base, k int) int64 {
	return int64(splitmix64(uint64(rb.seed) ^ uint64(base)*0x9e3779b97f4a7c15 ^ uint64(k)))
}

func (rb *recursiveBisector) split(w *wgraph, verts []int32, base, k int) {
	if rb.err != nil {
		return
	}
	if k <= 1 {
		for _, v := range verts {
			rb.part[v] = int32(base)
		}
		return
	}
	kl := k / 2
	kr := k - kl
	frac := float64(kl) / float64(k)
	rng := sketch.NewRNG(rb.splitSeed(base, k))
	side, err := rb.bisect(w, frac, rb.opt, rng)
	if err != nil {
		rb.err = err
		return
	}
	wl, vl, wr, vr := inducedSplit(w, verts, side)
	rb.split(wl, vl, base, kl)
	rb.split(wr, vr, base+kl, kr)
}

// inducedSplit builds the two induced weighted subgraphs of a bisection
// along with the original-vertex lists of each side.
func inducedSplit(w *wgraph, verts []int32, side []int32) (*wgraph, []int32, *wgraph, []int32) {
	n := w.n()
	newID := make([]int32, n)
	var n0, n1 int32
	for v := 0; v < n; v++ {
		if side[v] == 0 {
			newID[v] = n0
			n0++
		} else {
			newID[v] = n1
			n1++
		}
	}
	build := func(want int32, count int32) (*wgraph, []int32) {
		out := &wgraph{vw: make([]int64, count), offsets: make([]int64, count+1)}
		origs := make([]int32, count)
		// Count arcs.
		for v := 0; v < n; v++ {
			if side[v] != want {
				continue
			}
			var deg int64
			for a := w.offsets[v]; a < w.offsets[v+1]; a++ {
				if side[w.adj[a]] == want {
					deg++
				}
			}
			out.offsets[newID[v]+1] = deg
		}
		for i := int32(1); i <= count; i++ {
			out.offsets[i] += out.offsets[i-1]
		}
		out.adj = make([]int32, out.offsets[count])
		out.ew = make([]int64, out.offsets[count])
		cursor := make([]int64, count)
		copy(cursor, out.offsets[:count])
		for v := 0; v < n; v++ {
			if side[v] != want {
				continue
			}
			nv := newID[v]
			out.vw[nv] = w.vw[v]
			origs[nv] = verts[v]
			for a := w.offsets[v]; a < w.offsets[v+1]; a++ {
				u := w.adj[a]
				if side[u] != want {
					continue
				}
				c := cursor[nv]
				out.adj[c] = newID[u]
				out.ew[c] = w.ew[a]
				cursor[nv] = c + 1
			}
		}
		return out, origs
	}
	w0, v0 := build(0, n0)
	w1, v1 := build(1, n1)
	return w0, v0, w1, v1
}

// multilevelBisect bisects a weighted graph with the full multilevel
// pipeline, aiming for weight fraction frac on side 0.
func multilevelBisect(w *wgraph, frac float64, opt MultilevelOptions, rng *rand.Rand) ([]int32, error) {
	levels, maps := coarsenHierarchy(w, 2*opt.CoarsenTarget, int64(rng.Uint64()))
	coarsest := levels[len(levels)-1]
	side := growBisection(coarsest, frac, rng)
	refineBisection(coarsest, side, frac, opt, rng)
	for li := len(levels) - 2; li >= 0; li-- {
		fine := levels[li]
		coarseOf := maps[li]
		fineSide := make([]int32, fine.n())
		for v := range fineSide {
			fineSide[v] = side[coarseOf[v]]
		}
		side = fineSide
		refineBisection(fine, side, frac, opt, rng)
	}
	return side, nil
}

// coarsenHierarchy runs the workspace coarsener over a standalone
// weighted graph and copies the hierarchy out: levels (finest first,
// levels[0] == w) and the fine-to-coarse maps (maps[i] maps level i to
// level i+1 ids). Used by the bisection and spectral paths, which own
// their levels across recursive splits.
func coarsenHierarchy(w *wgraph, target int, seed int64) (levels []*wgraph, maps [][]int32) {
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	ws.primeLevel0(wview{off: w.offsets, adj: w.adj, ew: w.ew, vw: w.vw})
	nl := ws.coarsenToSize(target, seed, 1)
	levels = make([]*wgraph, nl)
	levels[0] = w
	maps = make([][]int32, nl-1)
	for li := 1; li < nl; li++ {
		lv := &ws.lv[li]
		levels[li] = &wgraph{
			offsets: slices.Clone(lv.off),
			adj:     slices.Clone(lv.adj),
			ew:      slices.Clone(lv.ew),
			vw:      slices.Clone(lv.vw),
		}
		maps[li-1] = slices.Clone(ws.lv[li-1].coarseOf)
	}
	return levels, maps
}
