// Package partition implements the graph-partitioning baselines of the
// paper's Table 1: multilevel k-way and recursive-bisection
// partitioners in the style of Metis (heavy-edge-matching coarsening,
// greedy growing, boundary Kernighan–Lin/Fiduccia–Mattheyses
// refinement), and spectral bisection heuristics in the style of Chaco
// (Fiedler vectors by multilevel power/Rayleigh-quotient iteration and
// by Lanczos iteration). The experiment these support shows that such
// partitioners produce good cuts on near-Euclidean "physical" graphs
// and poor, orders-of-magnitude-worse cuts on small-world networks.
package partition

import (
	"errors"
	"fmt"

	"snap/internal/graph"
)

// ErrNoConvergence is returned by the spectral methods when the
// eigensolver fails to converge within its budget — the analogue of
// Chaco's failure to complete on the paper's small-world instance.
var ErrNoConvergence = errors.New("partition: eigensolver failed to converge")

// Result is a k-way partition of the vertices.
type Result struct {
	// Part maps each vertex to a part id in [0, K).
	Part []int32
	// K is the requested number of parts.
	K int
	// EdgeCut is the number (weight) of edges crossing parts.
	EdgeCut int64
	// Balance is max part vertex-weight divided by the ideal
	// (total/K); 1.0 is perfect balance.
	Balance float64
}

// EdgeCut counts the total weight of edges whose endpoints are in
// different parts.
func EdgeCut(g *graph.Graph, part []int32) int64 {
	var cut int64
	for _, e := range g.EdgeEndpoints() {
		if part[e.U] != part[e.V] {
			if g.Weighted() {
				cut += int64(e.W)
			} else {
				cut++
			}
		}
	}
	return cut
}

// Balance computes max-part-size / ideal-part-size for a k-way
// partition (vertex weight 1 per vertex).
func Balance(part []int32, k int) float64 {
	if len(part) == 0 || k <= 0 {
		return 1
	}
	sizes := make([]int64, k)
	for _, p := range part {
		if int(p) < k {
			sizes[p]++
		}
	}
	var mx int64
	for _, s := range sizes {
		if s > mx {
			mx = s
		}
	}
	ideal := float64(len(part)) / float64(k)
	return float64(mx) / ideal
}

// finish assembles a Result from an assignment.
func finish(g *graph.Graph, part []int32, k int) Result {
	return Result{
		Part:    part,
		K:       k,
		EdgeCut: EdgeCut(g, part),
		Balance: Balance(part, k),
	}
}

// validateK rejects nonsensical part counts.
func validateK(g *graph.Graph, k int) error {
	if k < 2 {
		return fmt.Errorf("partition: k=%d, need k >= 2", k)
	}
	if k > g.NumVertices() {
		return fmt.Errorf("partition: k=%d exceeds n=%d", k, g.NumVertices())
	}
	return nil
}
