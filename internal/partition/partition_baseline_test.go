package partition

import (
	"math/rand"
	"slices"
	"testing"

	"snap/internal/generate"
	"snap/internal/graph"
	"snap/internal/par"
)

// This file keeps the seed-era serial multilevel k-way implementation
// verbatim (baseline* names) as the quality oracle for the parallel
// engine: on every gated instance the new partitioner's edge cut must
// stay within tolerance of what the old code produced. Mirrors the
// move_baseline_test.go precedent in internal/community.

// baselineQualityTolerance allows the parallel engine's cut to exceed
// the seed-era cut by at most 10% on the gated instances.
const baselineQualityTolerance = 1.10

func TestKWayEdgecutNoWorseThanBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("quality gate runs the serial baseline partitioner")
	}
	cases := []struct {
		name string
		g    *graph.Graph
		k    int
		seed int64
	}{
		{"mesh40x40", generate.RoadMesh(40, 40, 0, 1), 8, 1},
		{"mesh64x64", generate.RoadMesh(64, 64, 0, 2), 16, 2},
		{"rmat14", generate.RMAT(1<<14, 8<<14, generate.DefaultRMAT(), 3), 32, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := baselineMultilevelKWay(tc.g, tc.k, MultilevelOptions{Seed: tc.seed})
			if err != nil {
				t.Fatal(err)
			}
			got, err := MultilevelKWay(tc.g, tc.k, MultilevelOptions{Seed: tc.seed})
			if err != nil {
				t.Fatal(err)
			}
			limit := int64(float64(want.EdgeCut) * baselineQualityTolerance)
			if got.EdgeCut > limit {
				t.Fatalf("cut %d exceeds baseline %d by more than %.0f%%",
					got.EdgeCut, want.EdgeCut, (baselineQualityTolerance-1)*100)
			}
			t.Logf("cut %d vs baseline %d", got.EdgeCut, want.EdgeCut)
		})
	}
}

// ---- seed-era implementation, kept verbatim below this line ----

func baselineMultilevelKWay(g *graph.Graph, k int, opt MultilevelOptions) (Result, error) {
	if err := validateK(g, k); err != nil {
		return Result{}, err
	}
	opt.fill()
	rng := rand.New(rand.NewSource(opt.Seed))
	w := fromGraph(g)
	levels, maps := baselineCoarsenToSize(w, k*opt.CoarsenTarget, rng)
	coarsest := levels[len(levels)-1]
	part := baselineGreedyGrow(coarsest, k, rng)
	baselineRefineKWay(coarsest, part, k, opt, rng)
	for li := len(levels) - 2; li >= 0; li-- {
		fine := levels[li]
		coarseOf := maps[li]
		finePart := make([]int32, fine.n())
		for v := range finePart {
			finePart[v] = part[coarseOf[v]]
		}
		part = finePart
		baselineRefineKWay(fine, part, k, opt, rng)
	}
	return finish(g, part, k), nil
}

func baselineHeavyEdgeMatching(w *wgraph, rng *rand.Rand) []int32 {
	n := w.n()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	for _, vi := range order {
		v := int32(vi)
		if match[v] != -1 {
			continue
		}
		best := int32(-1)
		var bestW int64
		for a := w.offsets[v]; a < w.offsets[v+1]; a++ {
			u := w.adj[a]
			if u == v || match[u] != -1 {
				continue
			}
			if w.ew[a] > bestW || (w.ew[a] == bestW && best == -1) {
				best, bestW = u, w.ew[a]
			}
		}
		if best == -1 {
			match[v] = v
		} else {
			match[v] = best
			match[best] = v
		}
	}
	return match
}

func baselineCoarsen(w *wgraph, match []int32) (*wgraph, []int32) {
	n := w.n()
	coarseOf := make([]int32, n)
	for i := range coarseOf {
		coarseOf[i] = -1
	}
	var cn int32
	for v := int32(0); int(v) < n; v++ {
		if coarseOf[v] != -1 {
			continue
		}
		coarseOf[v] = cn
		if m := match[v]; m != v && m != -1 {
			coarseOf[m] = cn
		}
		cn++
	}

	workers := par.Workers()
	if workers > n {
		workers = max(1, n)
	}
	counts := make([][]int64, workers)
	par.ForChunkedN(n, workers, func(ww, lo, hi int) {
		c := make([]int64, cn)
		for v := lo; v < hi; v++ {
			cv := coarseOf[v]
			for a := w.offsets[v]; a < w.offsets[v+1]; a++ {
				if coarseOf[w.adj[a]] != cv {
					c[cv]++
				}
			}
		}
		counts[ww] = c
	})
	for ww := range counts {
		if counts[ww] == nil {
			counts[ww] = make([]int64, cn)
		}
	}
	bucketOff := make([]int64, cn+1)
	total := par.CursorsFromCounts(counts, bucketOff)

	arcs := make([]ce, total)
	par.ForChunkedN(n, workers, func(ww, lo, hi int) {
		cur := counts[ww]
		for v := lo; v < hi; v++ {
			cv := coarseOf[v]
			for a := w.offsets[v]; a < w.offsets[v+1]; a++ {
				cu := coarseOf[w.adj[a]]
				if cu == cv {
					continue
				}
				arcs[cur[cv]] = ce{to: cu, w: w.ew[a]}
				cur[cv]++
			}
		}
	})
	vw := make([]int64, cn)
	for v := 0; v < n; v++ {
		vw[coarseOf[v]] += w.vw[v]
	}

	uniq := make([]int64, cn)
	sizes := make([]int64, cn)
	for cv := int32(0); cv < cn; cv++ {
		sizes[cv] = bucketOff[cv+1] - bucketOff[cv]
	}
	par.ForDegreeAware(sizes, workers, func(ww, lo, hi int) {
		for cv := lo; cv < hi; cv++ {
			b := arcs[bucketOff[cv]:bucketOff[cv+1]]
			slices.SortFunc(b, ceLess)
			k := 0
			for i := 0; i < len(b); {
				j := i
				var sum int64
				for j < len(b) && b[j].to == b[i].to {
					sum += b[j].w
					j++
				}
				b[k] = ce{to: b[i].to, w: sum}
				k++
				i = j
			}
			uniq[cv] = int64(k)
		}
	})

	out := &wgraph{vw: vw, offsets: par.PrefixSum(uniq)}
	out.adj = make([]int32, out.offsets[cn])
	out.ew = make([]int64, out.offsets[cn])
	par.ForDegreeAware(uniq, workers, func(ww, lo, hi int) {
		for cv := lo; cv < hi; cv++ {
			base := out.offsets[cv]
			blo := bucketOff[cv]
			for i := int64(0); i < uniq[cv]; i++ {
				out.adj[base+i] = arcs[blo+i].to
				out.ew[base+i] = arcs[blo+i].w
			}
		}
	})
	return out, coarseOf
}

func baselineCoarsenToSize(w *wgraph, target int, rng *rand.Rand) (levels []*wgraph, maps [][]int32) {
	levels = []*wgraph{w}
	for levels[len(levels)-1].n() > target {
		cur := levels[len(levels)-1]
		match := baselineHeavyEdgeMatching(cur, rng)
		next, coarseOf := baselineCoarsen(cur, match)
		if next.n() >= cur.n()*19/20 {
			break
		}
		levels = append(levels, next)
		maps = append(maps, coarseOf)
	}
	return levels, maps
}

func baselineGreedyGrow(w *wgraph, k int, rng *rand.Rand) []int32 {
	n := w.n()
	part := make([]int32, n)
	for i := range part {
		part[i] = -1
	}
	total := w.totalVW()
	weights := make([]int64, k)
	queue := make([]int32, 0, 256)
	unassigned := n
	assignedW := int64(0)
	for p := 0; p < k-1 && unassigned > 0; p++ {
		ideal := float64(total-assignedW) / float64(k-p)
		seed := int32(-1)
		for tries := 0; tries < 64; tries++ {
			c := int32(rng.Intn(n))
			if part[c] == -1 {
				seed = c
				break
			}
		}
		if seed == -1 {
			for v := int32(0); int(v) < n; v++ {
				if part[v] == -1 {
					seed = v
					break
				}
			}
		}
		queue = append(queue[:0], seed)
		part[seed] = int32(p)
		weights[p] += w.vw[seed]
		unassigned--
		for head := 0; head < len(queue) && float64(weights[p]) < ideal; head++ {
			v := queue[head]
			for a := w.offsets[v]; a < w.offsets[v+1]; a++ {
				u := w.adj[a]
				if part[u] != -1 {
					continue
				}
				part[u] = int32(p)
				weights[p] += w.vw[u]
				unassigned--
				queue = append(queue, u)
				if float64(weights[p]) >= ideal {
					break
				}
			}
		}
		assignedW += weights[p]
	}
	for v := 0; v < n; v++ {
		if part[v] == -1 {
			part[v] = int32(k - 1)
			weights[k-1] += w.vw[v]
		}
	}
	return part
}

func baselineRefineKWay(w *wgraph, part []int32, k int, opt MultilevelOptions, rng *rand.Rand) {
	n := w.n()
	total := w.totalVW()
	ideal := float64(total) / float64(k)
	maxW := int64(ideal * (1 + opt.Imbalance))
	minW := int64(ideal * (1 - opt.Imbalance))
	weights := make([]int64, k)
	for v := 0; v < n; v++ {
		weights[part[v]] += w.vw[v]
	}
	order := rng.Perm(n)
	conn := make(map[int32]int64, 8)
	for pass := 0; pass < opt.RefinePasses; pass++ {
		moves := 0
		for _, vi := range order {
			v := int32(vi)
			pv := part[v]
			if weights[pv]-w.vw[v] < minW {
				continue
			}
			for key := range conn {
				delete(conn, key)
			}
			for a := w.offsets[v]; a < w.offsets[v+1]; a++ {
				conn[part[w.adj[a]]] += w.ew[a]
			}
			internal := conn[pv]
			bestP := pv
			var bestGain int64
			for p, ext := range conn {
				if p == pv {
					continue
				}
				if weights[p]+w.vw[v] > maxW {
					continue
				}
				gain := ext - internal
				if gain > bestGain ||
					(gain == bestGain && gain > 0 && weights[p] < weights[bestP]) {
					bestGain = gain
					bestP = p
				}
			}
			if bestP != pv && bestGain > 0 {
				weights[pv] -= w.vw[v]
				weights[bestP] += w.vw[v]
				part[v] = bestP
				moves++
			}
		}
		if moves == 0 {
			break
		}
	}
	baselineRebalance(w, part, k, weights, maxW)
}

func baselineRebalance(w *wgraph, part []int32, k int, weights []int64, maxW int64) {
	n := w.n()
	for p := int32(0); int(p) < k; p++ {
		guard := 0
		for weights[p] > maxW && guard < n {
			guard++
			bestV := int32(-1)
			bestP := int32(-1)
			var bestGain int64 = -1 << 62
			for v := int32(0); int(v) < n; v++ {
				if part[v] != p {
					continue
				}
				var internal int64
				extBest := int64(-1 << 62)
				extPart := int32(-1)
				ext := map[int32]int64{}
				for a := w.offsets[v]; a < w.offsets[v+1]; a++ {
					q := part[w.adj[a]]
					if q == p {
						internal += w.ew[a]
					} else {
						ext[q] += w.ew[a]
					}
				}
				for q, x := range ext {
					if weights[q]+w.vw[v] > maxW {
						continue
					}
					if x > extBest || (x == extBest && weights[q] < weights[extPart]) {
						extBest = x
						extPart = q
					}
				}
				if extPart == -1 {
					continue
				}
				if g := extBest - internal; g > bestGain {
					bestGain = g
					bestV = v
					bestP = extPart
				}
			}
			if bestV == -1 {
				lightest := int32(0)
				for q := int32(1); int(q) < k; q++ {
					if weights[q] < weights[lightest] {
						lightest = q
					}
				}
				if lightest == p {
					break
				}
				for v := int32(0); int(v) < n; v++ {
					if part[v] == p {
						bestV = v
						break
					}
				}
				if bestV == -1 {
					break
				}
				bestP = lightest
			}
			weights[p] -= w.vw[bestV]
			weights[bestP] += w.vw[bestV]
			part[bestV] = bestP
		}
	}
}
