package partition

import (
	"snap/internal/par"
)

// Workspace is the reusable state of the multilevel k-way engine.
// Acquire one with AcquireWorkspace, call KWay, and release it; after a
// warm-up run on a given graph, repeated runs allocate nothing on the
// serial arm (workers == 1). Partitions returned by workspace methods
// alias workspace memory and are valid until the next call on the same
// workspace — the package-level MultilevelKWay wrapper copies.
// A workspace is not safe for concurrent use, but its methods
// parallelize internally across the requested workers.
type Workspace struct {
	// Coarsening hierarchy: lv[0] views the input graph, lv[1..] own
	// their materialized buffers. Buffers are grow-only and reused by
	// level index across runs.
	lv []lvl

	// Matching scratch (sized to the current level).
	match []int32
	pref  []int32

	// Contraction scratch: per-worker histograms/cursors, coarse
	// bucket boundaries, the arc scatter arena, and per-bucket unique
	// counts.
	counts    [][]int64
	bucketOff []int64
	arcs      []ce
	uniq      []int64
	sizes     []int64
	cvw       []int64

	// Initial-partition scratch: the maintained unassigned list (ulist
	// holds the unassigned vertices, upos[v] is v's index in ulist, -1
	// once assigned) and the BFS growth queue.
	ulist []int32
	upos  []int32
	queue []int32

	// Refinement scratch: part weight accumulators, the pass order,
	// per-worker gather scatters and candidate buffers, and per-worker
	// int64 partials for cut/count reductions.
	weights []int64
	order   []int32
	psc     []*partScatter
	cand    [][]int32
	partial []int64

	// LCG state expanded from sketch.EffectiveSeed; all serial
	// randomness (greedy growing, pass shuffles) consumes it in
	// sequence, so results are independent of the worker count.
	rng uint64
}

// lvl is one level of the coarsening hierarchy.
type lvl struct {
	view     wview
	coarseOf []int32 // fine-to-coarse map into the next level
	part     []int32 // part assignment of this level's vertices

	// Backing buffers for materialized (coarse) levels; the finest
	// level aliases the input graph instead.
	off []int64
	adj []int32
	ew  []int64
	vw  []int64
}

var wsPool = par.NewPool(func() *Workspace { return &Workspace{} })

// AcquireWorkspace returns a pooled partitioner workspace.
func AcquireWorkspace() *Workspace { return wsPool.Get() }

// ReleaseWorkspace returns a workspace to the pool. Partitions
// returned by workspace methods alias its memory and must be copied
// first.
func ReleaseWorkspace(ws *Workspace) { wsPool.Put(ws) }

// scratch returns buf resized to n, reallocating only on growth, so a
// warm workspace reuses its arrays allocation-free. Contents are
// unspecified; callers that need zeroing clear explicitly.
func scratch[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// splitmix64 is the splitmix64 finalizer: a fixed bijective scramble
// used to derive per-level matching salts and per-vertex tie-break
// hashes from the user seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// seedRNG primes the workspace LCG from a user seed (already passed
// through sketch.EffectiveSeed by the caller).
func (ws *Workspace) seedRNG(seed int64) {
	ws.rng = splitmix64(uint64(seed)) | 1
}

// rngNext steps the LCG.
func (ws *Workspace) rngNext() uint64 {
	ws.rng = ws.rng*6364136223846793005 + 1442695040888963407
	return ws.rng
}

// shuffleOrder applies a Fisher–Yates pass to order using the
// workspace LCG — the deterministic, allocation-free stand-in for
// rand.Perm the move engines use.
func (ws *Workspace) shuffleOrder(order []int32) {
	for i := len(order) - 1; i > 0; i-- {
		j := int(ws.rngNext() % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
}

// ensureWorkers sizes the per-worker scatter and candidate state.
func (ws *Workspace) ensureWorkers(workers, k int) {
	for len(ws.psc) < workers {
		ws.psc = append(ws.psc, &partScatter{})
	}
	for len(ws.cand) < workers {
		ws.cand = append(ws.cand, nil)
	}
	for w := 0; w < workers; w++ {
		ws.psc[w].ensure(k)
	}
	ws.partial = scratch(ws.partial, workers)
}

// partScatter accumulates "edge weight from v into part p" in a dense
// int64 array guarded by an epoch-stamp array — the k-way refinement
// analogue of the community engine's moveScatter. begin is O(1); when
// the uint32 epoch wraps the stamps are cleared once every 2^32-1
// gathers.
type partScatter struct {
	wsum    []int64
	stamp   []uint32
	touched []int32
	epoch   uint32
}

func (s *partScatter) ensure(k int) {
	if len(s.stamp) >= k {
		return
	}
	s.wsum = make([]int64, k)
	s.stamp = make([]uint32, k)
	s.epoch = 0
}

func (s *partScatter) begin() {
	s.touched = s.touched[:0]
	s.epoch++
	if s.epoch == 0 {
		clear(s.stamp)
		s.epoch = 1
	}
}

func (s *partScatter) add(p int32, w int64) {
	if s.stamp[p] != s.epoch {
		s.stamp[p] = s.epoch
		s.wsum[p] = w
		s.touched = append(s.touched, p)
		return
	}
	s.wsum[p] += w
}

// get returns the accumulated weight into p, zero if untouched.
func (s *partScatter) get(p int32) int64 {
	if s.stamp[p] == s.epoch {
		return s.wsum[p]
	}
	return 0
}
