package partition

import (
	"testing"
	"testing/quick"

	"snap/internal/generate"
)

// Every multilevel partition of every random graph must be a valid
// partition: all vertices placed, all parts within the balance window,
// and the reported cut consistent with a recount.
func TestQuickMultilevelPartitionValidity(t *testing.T) {
	check := func(seed uint8, kRaw uint8) bool {
		k := int(kRaw%6) + 2 // 2..7
		g := generate.ErdosRenyi(200, 600, int64(seed))
		r, err := MultilevelKWay(g, k, MultilevelOptions{Seed: int64(seed)})
		if err != nil {
			return false
		}
		if len(r.Part) != g.NumVertices() {
			return false
		}
		for _, p := range r.Part {
			if p < 0 || int(p) >= k {
				return false
			}
		}
		if r.EdgeCut != EdgeCut(g, r.Part) {
			return false
		}
		// The contract is maxW <= ideal*(1+imbalance); allow +1 vertex
		// of slack for integer rounding on small parts.
		sizes := make([]int, k)
		for _, p := range r.Part {
			sizes[p]++
		}
		ideal := float64(g.NumVertices()) / float64(k)
		for _, s := range sizes {
			if float64(s) > ideal*1.05+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Recursive bisection must satisfy the same contract, including on
// disconnected graphs (where greedy growing needs its re-seeding path).
func TestQuickRecursiveOnDisconnectedGraphs(t *testing.T) {
	check := func(seed uint8) bool {
		// Sparse enough to be disconnected with high probability.
		g := generate.ErdosRenyi(150, 120, int64(seed))
		r, err := MultilevelRecursive(g, 4, MultilevelOptions{Seed: int64(seed)})
		if err != nil {
			return false
		}
		seen := make([]bool, 4)
		for _, p := range r.Part {
			if p < 0 || p >= 4 {
				return false
			}
			seen[p] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
