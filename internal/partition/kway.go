package partition

import (
	"snap/internal/graph"
	"snap/internal/par"
	"snap/internal/sketch"
)

// The k-way engine: greedy graph growing for the coarsest partition,
// then batch-synchronous boundary refinement at every level on the
// PR-5 move-engine discipline — fixed-size vertex batches (width
// independent of the worker count), workers proposing moves against
// the frozen batch-start state, and a serial apply pass that
// recomputes every gain against the live state before committing.
// Candidate sets depend only on frozen state and apply order is the
// batch order (contiguous par chunks concatenated in worker order), so
// partitions are bit-identical at EVERY worker count; every applied
// move strictly decreases the (integer) edge cut, so passes terminate.

// kwayBatch is the propose/apply batch width. Fixed — NOT derived from
// the worker count — so batch boundaries, and therefore the result,
// are identical no matter how many workers propose.
const kwayBatch = 4096

// KWay partitions g into k parts with the multilevel k-way scheme
// inside the workspace. The returned Result.Part aliases workspace
// memory (valid until the next call on ws); the package-level
// MultilevelKWay wrapper copies it out.
func (ws *Workspace) KWay(g *graph.Graph, k int, opt MultilevelOptions) (Result, error) {
	if err := validateK(g, k); err != nil {
		return Result{}, err
	}
	opt.fill()
	workers := opt.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	seed := sketch.EffectiveSeed(opt.Seed)
	ws.seedRNG(seed)

	ws.primeLevel0(wview{off: g.Offsets, adj: g.Adj})
	levels := ws.coarsenToSize(k*opt.CoarsenTarget, seed, workers)

	total := ws.lv[0].view.totalVW()
	ideal := float64(total) / float64(k)
	maxW := int64(ideal * (1 + opt.Imbalance))
	minW := int64(ideal * (1 - opt.Imbalance))

	coarsest := &ws.lv[levels-1]
	coarsest.part = scratch(coarsest.part, coarsest.view.n())
	ws.greedyGrow(coarsest.view, coarsest.part, k, total)
	ws.ensureWorkers(workers, k)
	ws.refineLevel(coarsest.view, coarsest.part, k, maxW, minW, opt.RefinePasses, workers)

	// Uncoarsen: project and refine.
	for li := levels - 2; li >= 0; li-- {
		fine := &ws.lv[li]
		n := fine.view.n()
		fine.part = scratch(fine.part, n)
		coarsePart := ws.lv[li+1].part
		coarseOf := fine.coarseOf
		finePart := fine.part
		if workers > 1 {
			par.ForChunkedN(n, workers, func(_, lo, hi int) {
				projectRange(finePart, coarsePart, coarseOf, lo, hi)
			})
		} else {
			projectRange(finePart, coarsePart, coarseOf, 0, n)
		}
		ws.refineLevel(fine.view, finePart, k, maxW, minW, opt.RefinePasses, workers)
	}
	return ws.resultFor(g, ws.lv[0].part, k, workers), nil
}

func projectRange(fine, coarse, coarseOf []int32, lo, hi int) {
	for x := lo; x < hi; x++ {
		fine[x] = coarse[coarseOf[x]]
	}
}

// greedyGrow produces the initial k-way partition of the coarsest
// graph by greedy graph growing: each part grows a BFS region from a
// random unassigned seed until it reaches its (adaptive) share of the
// remaining weight; leftovers join the last part. Seeds are drawn in
// O(1) from a maintained unassigned list (swap-remove on assignment) —
// the seed engine's 64-try rejection sampling silently degraded to
// first-unassigned scan order on nearly-full graphs.
func (ws *Workspace) greedyGrow(v wview, part []int32, k int, total int64) {
	n := v.n()
	fill32(part[:n], -1)
	ws.ulist = scratch(ws.ulist, n)
	ws.upos = scratch(ws.upos, n)
	for i := range ws.ulist[:n] {
		ws.ulist[i] = int32(i)
		ws.upos[i] = int32(i)
	}
	ulen := n
	ws.weights = scratch(ws.weights, k)
	weights := ws.weights
	clear(weights[:k])
	ws.queue = scratch(ws.queue, n)

	var assignedW int64
	for p := 0; p < k-1 && ulen > 0; p++ {
		// Adaptive target: divide the remaining weight over the
		// remaining parts so early overshoot cannot starve the last
		// parts into (near-)emptiness.
		ideal := float64(total-assignedW) / float64(k-p)
		// Re-seed whenever the BFS frontier exhausts before the part
		// reaches its target — disconnected or hub-capped regions
		// otherwise starve the part and dump their weight on part k-1,
		// leaving a rebalance bill that dwarfs the partitioning itself.
		for float64(weights[p]) < ideal && ulen > 0 {
			seedV := ws.ulist[int(ws.rngNext()%uint64(ulen))]
			ulen = ws.assignVertex(v, part, seedV, int32(p), ulen)
			queue := ws.queue[:0]
			queue = append(queue, seedV)
			for head := 0; head < len(queue) && float64(weights[p]) < ideal; head++ {
				x := queue[head]
				for a := v.off[x]; a < v.off[x+1]; a++ {
					u := v.adj[a]
					if part[u] != -1 {
						continue
					}
					ulen = ws.assignVertex(v, part, u, int32(p), ulen)
					queue = append(queue, u)
					if float64(weights[p]) >= ideal {
						break
					}
				}
			}
		}
		assignedW += weights[p]
	}
	// Everything left goes to the last part.
	for i := 0; i < ulen; i++ {
		x := ws.ulist[i]
		part[x] = int32(k - 1)
		weights[k-1] += v.vweight(x)
	}
}

// assignVertex places x in part p, swap-removes it from the unassigned
// list, and returns the shrunk list length.
func (ws *Workspace) assignVertex(v wview, part []int32, x, p int32, ulen int) int {
	part[x] = p
	ws.weights[p] += v.vweight(x)
	i := ws.upos[x]
	last := ws.ulist[ulen-1]
	ws.ulist[i] = last
	ws.upos[last] = i
	return ulen - 1
}

// refineLevel runs batch-synchronous boundary refinement passes over
// one level, then enforces the balance cap.
func (ws *Workspace) refineLevel(v wview, part []int32, k int, maxW, minW int64, passes, workers int) {
	n := v.n()
	weights := ws.weights[:k]
	clear(weights)
	for x := 0; x < n; x++ {
		weights[part[x]] += v.vweight(int32(x))
	}
	ws.order = scratch(ws.order, n)
	order := ws.order[:n]
	for i := range order {
		order[i] = int32(i)
	}
	for pass := 0; pass < passes; pass++ {
		ws.shuffleOrder(order)
		var moves int
		if workers > 1 {
			moves = ws.runKWayPassParallel(v, part, k, maxW, minW, workers)
		} else {
			moves = ws.runKWayPassSerial(v, part, maxW, minW)
		}
		if moves == 0 {
			break
		}
	}
	ws.enforceBalance(v, part, k, maxW)
}

// bestKMove gathers x's per-part incident edge weights into sc and
// returns the best cut-gain move target with its gain. Returns the
// current part when no strictly-improving feasible move exists. Ties
// on gain break toward the lighter part, then the smaller part id, so
// the answer is independent of the gather (touched-list) order. Reads
// shared state only — safe to run concurrently with other bestKMove
// calls.
func (ws *Workspace) bestKMove(sc *partScatter, v wview, part []int32, x int32, maxW, minW int64) (int32, int64) {
	pv := part[x]
	vwx := v.vweight(x)
	if ws.weights[pv]-vwx < minW {
		return pv, 0
	}
	sc.begin()
	lo, hi := v.off[x], v.off[x+1]
	if v.ew == nil {
		for a := lo; a < hi; a++ {
			sc.add(part[v.adj[a]], 1)
		}
	} else {
		for a := lo; a < hi; a++ {
			sc.add(part[v.adj[a]], v.ew[a])
		}
	}
	internal := sc.get(pv)
	bestP := pv
	var bestGain int64
	for _, p := range sc.touched {
		if p == pv {
			continue
		}
		if ws.weights[p]+vwx > maxW {
			continue
		}
		gain := sc.wsum[p] - internal
		if gain > bestGain ||
			(gain == bestGain && gain > 0 &&
				(ws.weights[p] < ws.weights[bestP] ||
					(ws.weights[p] == ws.weights[bestP] && p < bestP))) {
			bestGain = gain
			bestP = p
		}
	}
	return bestP, bestGain
}

// applyKMove commits a validated move.
func (ws *Workspace) applyKMove(v wview, part []int32, x, d int32) {
	vwx := v.vweight(x)
	ws.weights[part[x]] -= vwx
	ws.weights[d] += vwx
	part[x] = d
}

// runKWayPassSerial is the workers==1 arm: same propose-then-apply
// batch structure as the parallel arm (so results match it exactly),
// written without closures so nothing escapes and a warm pass is
// alloc-free.
func (ws *Workspace) runKWayPassSerial(v wview, part []int32, maxW, minW int64) int {
	sc := ws.psc[0]
	n := v.n()
	moves := 0
	for base := 0; base < n; base += kwayBatch {
		end := min(base+kwayBatch, n)
		cand := ws.cand[0][:0]
		for i := base; i < end; i++ {
			x := ws.order[i]
			if d, gain := ws.bestKMove(sc, v, part, x, maxW, minW); gain > 0 && d != part[x] {
				cand = append(cand, x)
			}
		}
		ws.cand[0] = cand
		for _, x := range cand {
			d, gain := ws.bestKMove(sc, v, part, x, maxW, minW)
			if gain <= 0 || d == part[x] {
				continue
			}
			ws.applyKMove(v, part, x, d)
			moves++
		}
	}
	return moves
}

// runKWayPassParallel proposes each batch across the workers against
// the frozen batch-start state (per-worker scatters and candidate
// buffers, no shared writes), then re-validates and applies serially
// in batch order. ForChunkedN chunks are contiguous, so concatenating
// the per-worker candidate buffers in worker order IS the batch order,
// and the candidate set depends only on the frozen state — the applied
// move sequence is therefore identical for every worker count.
func (ws *Workspace) runKWayPassParallel(v wview, part []int32, k int, maxW, minW int64, workers int) int {
	n := v.n()
	moves := 0
	for base := 0; base < n; base += kwayBatch {
		end := min(base+kwayBatch, n)
		bn := end - base
		par.ForChunkedN(bn, workers, func(wk, lo, hi int) {
			sc := ws.psc[wk]
			cand := ws.cand[wk][:0]
			for i := lo; i < hi; i++ {
				x := ws.order[base+i]
				if d, gain := ws.bestKMove(sc, v, part, x, maxW, minW); gain > 0 && d != part[x] {
					cand = append(cand, x)
				}
			}
			ws.cand[wk] = cand
		})
		// ForChunkedN clamps to bn workers on short batches; truncate
		// the unused buffers so stale candidates never replay.
		used := min(workers, bn)
		for wk := used; wk < workers; wk++ {
			ws.cand[wk] = ws.cand[wk][:0]
		}
		for wk := 0; wk < used; wk++ {
			for _, x := range ws.cand[wk] {
				d, gain := ws.bestKMove(ws.psc[0], v, part, x, maxW, minW)
				if gain <= 0 || d == part[x] {
					continue
				}
				ws.applyKMove(v, part, x, d)
				moves++
			}
		}
	}
	return moves
}

// enforceBalance fixes any part exceeding the weight cap by shedding
// its cheapest boundary vertices into the lightest adjacent part (or,
// failing that, force-moving to the globally lightest part). This
// sacrifices cut for balance, which is the contract of the pass. It is
// a serial no-op when every part is already inside the cap — the
// common case, since refinement moves respect the window.
func (ws *Workspace) enforceBalance(v wview, part []int32, k int, maxW int64) {
	n := v.n()
	weights := ws.weights[:k]
	sc := ws.psc[0]
	for p := int32(0); int(p) < k; p++ {
		guard := 0
		for weights[p] > maxW && guard < n {
			guard++
			// Find the boundary vertex of p with the best (least bad)
			// move gain.
			bestV := int32(-1)
			bestP := int32(-1)
			var bestGain int64 = -1 << 62
			for x := int32(0); int(x) < n; x++ {
				if part[x] != p {
					continue
				}
				var internal int64
				extBest := int64(-1 << 62)
				extPart := int32(-1)
				sc.begin()
				for a := v.off[x]; a < v.off[x+1]; a++ {
					w := int64(1)
					if v.ew != nil {
						w = v.ew[a]
					}
					if q := part[v.adj[a]]; q == p {
						internal += w
					} else {
						sc.add(q, w)
					}
				}
				vwx := v.vweight(x)
				for _, q := range sc.touched {
					if weights[q]+vwx > maxW {
						continue
					}
					ext := sc.wsum[q]
					if ext > extBest ||
						(ext == extBest && (weights[q] < weights[extPart] ||
							(weights[q] == weights[extPart] && q < extPart))) {
						extBest = ext
						extPart = q
					}
				}
				if extPart == -1 {
					continue
				}
				if g := extBest - internal; g > bestGain {
					bestGain = g
					bestV = x
					bestP = extPart
				}
			}
			if bestV == -1 {
				// No adjacent feasible destination: force-move the
				// first boundary vertex of p to the globally lightest
				// part.
				lightest := int32(0)
				for q := int32(1); int(q) < k; q++ {
					if weights[q] < weights[lightest] {
						lightest = q
					}
				}
				if lightest == p {
					break
				}
				for x := int32(0); int(x) < n; x++ {
					if part[x] == p {
						bestV = x
						break
					}
				}
				if bestV == -1 {
					break
				}
				bestP = lightest
			}
			vwx := v.vweight(bestV)
			weights[p] -= vwx
			weights[bestP] += vwx
			part[bestV] = bestP
		}
	}
}

// resultFor assembles a Result, recomputing the cut CSR-direct with
// per-worker integer partials (deterministic at any worker count) —
// each undirected edge is counted once per arc direction and halved,
// matching EdgeCut's per-edge int64 truncation exactly.
func (ws *Workspace) resultFor(g *graph.Graph, part []int32, k, workers int) Result {
	n := g.NumVertices()
	var cut int64
	if workers > 1 {
		ws.partial = scratch(ws.partial, workers)
		clear(ws.partial[:workers])
		par.ForChunkedN(n, workers, func(w, lo, hi int) {
			ws.partial[w] = cutRange(g, part, lo, hi)
		})
		for _, p := range ws.partial[:workers] {
			cut += p
		}
	} else {
		cut = cutRange(g, part, 0, n)
	}
	if !g.Directed() {
		cut /= 2
	}
	// Balance: vertex counts per part against the ideal.
	weights := ws.weights[:k]
	clear(weights)
	for _, p := range part {
		weights[p]++
	}
	var mx int64
	for _, s := range weights {
		if s > mx {
			mx = s
		}
	}
	bal := 1.0
	if n > 0 {
		bal = float64(mx) / (float64(n) / float64(k))
	}
	return Result{Part: part, K: k, EdgeCut: cut, Balance: bal}
}

func cutRange(g *graph.Graph, part []int32, lo, hi int) int64 {
	var cut int64
	if g.W == nil {
		for x := lo; x < hi; x++ {
			px := part[x]
			for a := g.Offsets[x]; a < g.Offsets[x+1]; a++ {
				if part[g.Adj[a]] != px {
					cut++
				}
			}
		}
	} else {
		for x := lo; x < hi; x++ {
			px := part[x]
			for a := g.Offsets[x]; a < g.Offsets[x+1]; a++ {
				if part[g.Adj[a]] != px {
					cut += int64(g.W[a])
				}
			}
		}
	}
	return cut
}
