package partition

import (
	"fmt"
	"slices"

	"snap/internal/graph"
	"snap/internal/par"
)

// BlockedPerm computes the partition-blocked relabeling permutation
// for a k-way partition: vertices are ordered by (part id, descending
// degree, ascending old id), so each part's vertices become one
// contiguous block of new ids — the layout that makes kernels
// shard-local — with hubs leading each block. perm[newID] = oldID is
// ready for graph.Relabel; bounds has length k+1 and part p's block is
// the new-id range [bounds[p], bounds[p+1]).
func BlockedPerm(g *graph.Graph, part []int32, k int) (perm []int32, bounds []int32, err error) {
	n := g.NumVertices()
	if len(part) != n {
		return nil, nil, fmt.Errorf("partition: part length %d != n %d", len(part), n)
	}
	counts := make([]int32, k+1)
	for _, p := range part {
		if p < 0 || int(p) >= k {
			return nil, nil, fmt.Errorf("partition: part id %d out of range [0,%d)", p, k)
		}
		counts[p+1]++
	}
	bounds = counts
	for p := 0; p < k; p++ {
		bounds[p+1] += bounds[p]
	}
	perm = make([]int32, n)
	cursor := make([]int32, k)
	copy(cursor, bounds[:k])
	for v := int32(0); int(v) < n; v++ {
		p := part[v]
		perm[cursor[p]] = v
		cursor[p]++
	}
	// Each block is in ascending old-id order; sort by descending
	// degree with the old id as tie-break so the order stays total and
	// deterministic. Blocks are disjoint, so they sort in parallel.
	off := g.Offsets
	par.ForEachN(k, par.Workers(), func(p int) {
		block := perm[bounds[p]:bounds[p+1]]
		slices.SortFunc(block, func(a, b int32) int {
			da := off[a+1] - off[a]
			db := off[b+1] - off[b]
			if da != db {
				return int(db - da)
			}
			return int(a - b)
		})
	})
	return perm, bounds, nil
}
