package partition

import "math/rand"

// greedyGrow produces an initial k-way partition of a weighted graph by
// greedy graph growing: each part grows a BFS region from a random
// unassigned seed until it reaches the ideal weight; leftovers join
// their lightest adjacent part (or the lightest part overall).
func greedyGrow(w *wgraph, k int, rng *rand.Rand) []int32 {
	n := w.n()
	part := make([]int32, n)
	for i := range part {
		part[i] = -1
	}
	total := w.totalVW()
	weights := make([]int64, k)
	queue := make([]int32, 0, 256)
	unassigned := n
	assignedW := int64(0)
	for p := 0; p < k-1 && unassigned > 0; p++ {
		// Adaptive target: divide the remaining weight over the
		// remaining parts so early overshoot cannot starve the last
		// parts into (near-)emptiness.
		ideal := float64(total-assignedW) / float64(k-p)
		// Random unassigned seed.
		seed := int32(-1)
		for tries := 0; tries < 64; tries++ {
			c := int32(rng.Intn(n))
			if part[c] == -1 {
				seed = c
				break
			}
		}
		if seed == -1 {
			for v := int32(0); int(v) < n; v++ {
				if part[v] == -1 {
					seed = v
					break
				}
			}
		}
		queue = append(queue[:0], seed)
		part[seed] = int32(p)
		weights[p] += w.vw[seed]
		unassigned--
		for head := 0; head < len(queue) && float64(weights[p]) < ideal; head++ {
			v := queue[head]
			for a := w.offsets[v]; a < w.offsets[v+1]; a++ {
				u := w.adj[a]
				if part[u] != -1 {
					continue
				}
				part[u] = int32(p)
				weights[p] += w.vw[u]
				unassigned--
				queue = append(queue, u)
				if float64(weights[p]) >= ideal {
					break
				}
			}
		}
		assignedW += weights[p]
	}
	// Everything left goes to the last part, then rebalance strays.
	for v := 0; v < n; v++ {
		if part[v] == -1 {
			part[v] = int32(k - 1)
			weights[k-1] += w.vw[v]
		}
	}
	return part
}

// refineKWay performs greedy boundary refinement: passes over the
// vertices in random order moving each to the adjacent part with the
// best edge-cut gain, subject to the balance constraint.
func refineKWay(w *wgraph, part []int32, k int, opt MultilevelOptions, rng *rand.Rand) {
	n := w.n()
	total := w.totalVW()
	ideal := float64(total) / float64(k)
	maxW := int64(ideal * (1 + opt.Imbalance))
	// Lower bound keeps small parts from evaporating during
	// refinement (an empty part can never be refilled by gain moves).
	minW := int64(ideal * (1 - opt.Imbalance))
	weights := make([]int64, k)
	for v := 0; v < n; v++ {
		weights[part[v]] += w.vw[v]
	}
	order := rng.Perm(n)
	conn := make(map[int32]int64, 8) // part -> incident edge weight
	for pass := 0; pass < opt.RefinePasses; pass++ {
		moves := 0
		for _, vi := range order {
			v := int32(vi)
			pv := part[v]
			if weights[pv]-w.vw[v] < minW {
				continue
			}
			for key := range conn {
				delete(conn, key)
			}
			for a := w.offsets[v]; a < w.offsets[v+1]; a++ {
				conn[part[w.adj[a]]] += w.ew[a]
			}
			internal := conn[pv]
			bestP := pv
			var bestGain int64
			for p, ext := range conn {
				if p == pv {
					continue
				}
				if weights[p]+w.vw[v] > maxW {
					continue
				}
				gain := ext - internal
				if gain > bestGain ||
					(gain == bestGain && gain > 0 && weights[p] < weights[bestP]) {
					bestGain = gain
					bestP = p
				}
			}
			if bestP != pv && bestGain > 0 {
				weights[pv] -= w.vw[v]
				weights[bestP] += w.vw[v]
				part[v] = bestP
				moves++
			}
		}
		if moves == 0 {
			break
		}
	}
	rebalance(w, part, k, weights, maxW)
}

// rebalance fixes any part exceeding the weight cap by shedding its
// cheapest boundary vertices into the lightest adjacent part.
func rebalance(w *wgraph, part []int32, k int, weights []int64, maxW int64) {
	n := w.n()
	for p := int32(0); int(p) < k; p++ {
		guard := 0
		for weights[p] > maxW && guard < n {
			guard++
			// Find the boundary vertex of p with the best (least bad)
			// move gain.
			bestV := int32(-1)
			bestP := int32(-1)
			var bestGain int64 = -1 << 62
			for v := int32(0); int(v) < n; v++ {
				if part[v] != p {
					continue
				}
				var internal int64
				extBest := int64(-1 << 62)
				extPart := int32(-1)
				ext := map[int32]int64{}
				for a := w.offsets[v]; a < w.offsets[v+1]; a++ {
					q := part[w.adj[a]]
					if q == p {
						internal += w.ew[a]
					} else {
						ext[q] += w.ew[a]
					}
				}
				for q, x := range ext {
					if weights[q]+w.vw[v] > maxW {
						continue
					}
					if x > extBest || (x == extBest && weights[q] < weights[extPart]) {
						extBest = x
						extPart = q
					}
				}
				if extPart == -1 {
					continue
				}
				if g := extBest - internal; g > bestGain {
					bestGain = g
					bestV = v
					bestP = extPart
				}
			}
			if bestV == -1 {
				// No adjacent feasible destination: force-move the
				// loosest boundary vertex of p to the globally
				// lightest part. This sacrifices cut for balance,
				// which is the contract of the rebalancing pass.
				lightest := int32(0)
				for q := int32(1); int(q) < k; q++ {
					if weights[q] < weights[lightest] {
						lightest = q
					}
				}
				if lightest == p {
					break
				}
				for v := int32(0); int(v) < n; v++ {
					if part[v] == p {
						bestV = v
						break
					}
				}
				if bestV == -1 {
					break
				}
				bestP = lightest
			}
			weights[p] -= w.vw[bestV]
			weights[bestP] += w.vw[bestV]
			part[bestV] = bestP
		}
	}
}

// growBisection seeds side 0 from a random vertex and grows it to the
// target fraction of total weight; the rest is side 1.
func growBisection(w *wgraph, frac float64, rng *rand.Rand) []int32 {
	n := w.n()
	side := make([]int32, n)
	for i := range side {
		side[i] = 1
	}
	if n == 0 {
		return side
	}
	total := w.totalVW()
	target := int64(frac * float64(total))
	var grown int64
	queue := make([]int32, 0, 256)
	visited := make([]bool, n)
	for grown < target {
		// Seed (or re-seed for disconnected graphs).
		seed := int32(-1)
		for tries := 0; tries < 64; tries++ {
			c := int32(rng.Intn(n))
			if !visited[c] {
				seed = c
				break
			}
		}
		if seed == -1 {
			for v := int32(0); int(v) < n; v++ {
				if !visited[v] {
					seed = v
					break
				}
			}
			if seed == -1 {
				break
			}
		}
		visited[seed] = true
		side[seed] = 0
		grown += w.vw[seed]
		queue = append(queue[:0], seed)
		for head := 0; head < len(queue) && grown < target; head++ {
			v := queue[head]
			for a := w.offsets[v]; a < w.offsets[v+1]; a++ {
				u := w.adj[a]
				if visited[u] {
					continue
				}
				visited[u] = true
				side[u] = 0
				grown += w.vw[u]
				queue = append(queue, u)
				if grown >= target {
					break
				}
			}
		}
	}
	return side
}

// refineBisection is two-part boundary refinement with a weight target
// of frac for side 0.
func refineBisection(w *wgraph, side []int32, frac float64, opt MultilevelOptions, rng *rand.Rand) {
	n := w.n()
	total := w.totalVW()
	target0 := float64(total) * frac
	max0 := int64(target0 * (1 + opt.Imbalance))
	min0 := int64(target0 * (1 - opt.Imbalance))
	var w0 int64
	for v := 0; v < n; v++ {
		if side[v] == 0 {
			w0 += w.vw[v]
		}
	}
	order := rng.Perm(n)
	for pass := 0; pass < opt.RefinePasses; pass++ {
		moves := 0
		for _, vi := range order {
			v := int32(vi)
			var internal, external int64
			sv := side[v]
			for a := w.offsets[v]; a < w.offsets[v+1]; a++ {
				if side[w.adj[a]] == sv {
					internal += w.ew[a]
				} else {
					external += w.ew[a]
				}
			}
			gain := external - internal
			if gain <= 0 {
				continue
			}
			if sv == 0 {
				if w0-w.vw[v] < min0 {
					continue
				}
				w0 -= w.vw[v]
				side[v] = 1
			} else {
				if w0+w.vw[v] > max0 {
					continue
				}
				w0 += w.vw[v]
				side[v] = 0
			}
			moves++
		}
		if moves == 0 {
			break
		}
	}
	// Hard rebalance toward the window if we drifted outside it.
	balanceBisection(w, side, &w0, min0, max0)
}

// balanceBisection moves lowest-loss boundary vertices until side 0's
// weight is inside [min0, max0].
func balanceBisection(w *wgraph, side []int32, w0 *int64, min0, max0 int64) {
	n := w.n()
	guard := 0
	for (*w0 > max0 || *w0 < min0) && guard < n {
		guard++
		from := int32(0)
		if *w0 < min0 {
			from = 1
		}
		bestV := int32(-1)
		var bestGain int64 = -1 << 62
		for v := int32(0); int(v) < n; v++ {
			if side[v] != from {
				continue
			}
			var internal, external int64
			for a := w.offsets[v]; a < w.offsets[v+1]; a++ {
				if side[w.adj[a]] == from {
					internal += w.ew[a]
				} else {
					external += w.ew[a]
				}
			}
			if g := external - internal; g > bestGain {
				bestGain = g
				bestV = v
			}
		}
		if bestV == -1 {
			break
		}
		if from == 0 {
			*w0 -= w.vw[bestV]
			side[bestV] = 1
		} else {
			*w0 += w.vw[bestV]
			side[bestV] = 0
		}
	}
}
