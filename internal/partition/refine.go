package partition

import "math/rand"

// Bisection-side refinement helpers used by the recursive-bisection and
// spectral pipelines. The direct k-way engine's initial partition and
// refinement live in kway.go on the pooled Workspace.

// growBisection seeds side 0 from a random vertex and grows it to the
// target fraction of total weight; the rest is side 1.
func growBisection(w *wgraph, frac float64, rng *rand.Rand) []int32 {
	n := w.n()
	side := make([]int32, n)
	for i := range side {
		side[i] = 1
	}
	if n == 0 {
		return side
	}
	total := w.totalVW()
	target := int64(frac * float64(total))
	var grown int64
	queue := make([]int32, 0, 256)
	visited := make([]bool, n)
	for grown < target {
		// Seed (or re-seed for disconnected graphs).
		seed := int32(-1)
		for tries := 0; tries < 64; tries++ {
			c := int32(rng.Intn(n))
			if !visited[c] {
				seed = c
				break
			}
		}
		if seed == -1 {
			for v := int32(0); int(v) < n; v++ {
				if !visited[v] {
					seed = v
					break
				}
			}
			if seed == -1 {
				break
			}
		}
		visited[seed] = true
		side[seed] = 0
		grown += w.vw[seed]
		queue = append(queue[:0], seed)
		for head := 0; head < len(queue) && grown < target; head++ {
			v := queue[head]
			for a := w.offsets[v]; a < w.offsets[v+1]; a++ {
				u := w.adj[a]
				if visited[u] {
					continue
				}
				visited[u] = true
				side[u] = 0
				grown += w.vw[u]
				queue = append(queue, u)
				if grown >= target {
					break
				}
			}
		}
	}
	return side
}

// refineBisection is two-part boundary refinement with a weight target
// of frac for side 0.
func refineBisection(w *wgraph, side []int32, frac float64, opt MultilevelOptions, rng *rand.Rand) {
	n := w.n()
	total := w.totalVW()
	target0 := float64(total) * frac
	max0 := int64(target0 * (1 + opt.Imbalance))
	min0 := int64(target0 * (1 - opt.Imbalance))
	var w0 int64
	for v := 0; v < n; v++ {
		if side[v] == 0 {
			w0 += w.vw[v]
		}
	}
	order := rng.Perm(n)
	for pass := 0; pass < opt.RefinePasses; pass++ {
		moves := 0
		for _, vi := range order {
			v := int32(vi)
			var internal, external int64
			sv := side[v]
			for a := w.offsets[v]; a < w.offsets[v+1]; a++ {
				if side[w.adj[a]] == sv {
					internal += w.ew[a]
				} else {
					external += w.ew[a]
				}
			}
			gain := external - internal
			if gain <= 0 {
				continue
			}
			if sv == 0 {
				if w0-w.vw[v] < min0 {
					continue
				}
				w0 -= w.vw[v]
				side[v] = 1
			} else {
				if w0+w.vw[v] > max0 {
					continue
				}
				w0 += w.vw[v]
				side[v] = 0
			}
			moves++
		}
		if moves == 0 {
			break
		}
	}
	// Hard rebalance toward the window if we drifted outside it.
	balanceBisection(w, side, &w0, min0, max0)
}

// balanceBisection moves lowest-loss boundary vertices until side 0's
// weight is inside [min0, max0].
func balanceBisection(w *wgraph, side []int32, w0 *int64, min0, max0 int64) {
	n := w.n()
	guard := 0
	for (*w0 > max0 || *w0 < min0) && guard < n {
		guard++
		from := int32(0)
		if *w0 < min0 {
			from = 1
		}
		bestV := int32(-1)
		var bestGain int64 = -1 << 62
		for v := int32(0); int(v) < n; v++ {
			if side[v] != from {
				continue
			}
			var internal, external int64
			for a := w.offsets[v]; a < w.offsets[v+1]; a++ {
				if side[w.adj[a]] == from {
					internal += w.ew[a]
				} else {
					external += w.ew[a]
				}
			}
			if g := external - internal; g > bestGain {
				bestGain = g
				bestV = v
			}
		}
		if bestV == -1 {
			break
		}
		if from == 0 {
			*w0 -= w.vw[bestV]
			side[bestV] = 1
		} else {
			*w0 += w.vw[bestV]
			side[bestV] = 0
		}
	}
}
