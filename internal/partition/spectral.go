package partition

import (
	"math"
	"math/rand"

	"snap/internal/graph"
	"snap/internal/sketch"
)

// SpectralOptions configures the Chaco-style spectral partitioners.
type SpectralOptions struct {
	// MaxIterations bounds the eigensolver work per bisection
	// (power-iteration steps for RQI, Lanczos steps for LAN).
	// Defaults: 3000 (RQI), 300 (LAN).
	MaxIterations int
	// Tolerance is the relative eigen-residual required for
	// convergence (default 1e-4). Failing to reach it within the
	// budget yields ErrNoConvergence, mirroring the Chaco failures the
	// paper reports on small-world instances.
	Tolerance float64
	// Refine applies boundary refinement after each median split
	// (Chaco's spectral+KL mode). Default true.
	Refine bool
	// Seed drives the random starting vectors.
	Seed int64

	refinePasses int
	imbalance    float64
}

func (o *SpectralOptions) fill(defaultIter int) {
	if o.MaxIterations <= 0 {
		o.MaxIterations = defaultIter
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-4
	}
	o.refinePasses = 4
	o.imbalance = 0.05
}

// SpectralRQI partitions g into k parts by recursive spectral
// bisection, computing each Fiedler vector with multilevel-accelerated
// power iteration and a Rayleigh-quotient convergence test — the
// Chaco-RQI analogue.
func SpectralRQI(g *graph.Graph, k int, opt SpectralOptions) (Result, error) {
	if err := validateK(g, k); err != nil {
		return Result{}, err
	}
	opt.fill(3000)
	return spectralRecursive(g, k, opt, fiedlerRQI)
}

// SpectralLanczos partitions g into k parts by recursive spectral
// bisection with a Lanczos eigensolver (full reorthogonalization,
// Sturm-sequence bisection on the tridiagonal) — the Chaco-LAN
// analogue.
func SpectralLanczos(g *graph.Graph, k int, opt SpectralOptions) (Result, error) {
	if err := validateK(g, k); err != nil {
		return Result{}, err
	}
	opt.fill(300)
	return spectralRecursive(g, k, opt, fiedlerLanczos)
}

type fiedlerFunc func(w *wgraph, opt SpectralOptions, rng *rand.Rand) ([]float64, error)

func spectralRecursive(g *graph.Graph, k int, opt SpectralOptions, fiedler fiedlerFunc) (Result, error) {
	part := make([]int32, g.NumVertices())
	w := fromGraph(g)
	verts := make([]int32, g.NumVertices())
	for i := range verts {
		verts[i] = int32(i)
	}
	mlOpt := MultilevelOptions{Imbalance: opt.imbalance, RefinePasses: opt.refinePasses, Seed: opt.Seed}
	rb := &recursiveBisector{
		opt:  mlOpt,
		seed: sketch.EffectiveSeed(opt.Seed),
		part: part,
		bisect: func(w *wgraph, frac float64, _ MultilevelOptions, rng *rand.Rand) ([]int32, error) {
			return spectralBisect(w, frac, opt, fiedler, rng)
		},
	}
	rb.split(w, verts, 0, k)
	if rb.err != nil {
		return Result{}, rb.err
	}
	return finish(g, part, k), nil
}

// spectralBisect splits one weighted graph by its Fiedler vector,
// placing the frac-weight prefix of the sorted vector on side 0.
func spectralBisect(w *wgraph, frac float64, opt SpectralOptions, fiedler fiedlerFunc, rng *rand.Rand) ([]int32, error) {
	n := w.n()
	side := make([]int32, n)
	if n <= 1 {
		return side, nil
	}
	if n == 2 {
		side[1] = 1
		return side, nil
	}
	// The eigensolvers are seed-sensitive on near-degenerate spectra;
	// retry a few restarts before declaring failure (Chaco-style
	// robustness: a failed restart is not a failed partitioner).
	var fv []float64
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		fv, err = fiedler(w, opt, rng)
		if err == nil {
			break
		}
	}
	if err != nil {
		return nil, err
	}
	// Weighted median split along the Fiedler order.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sortByValue(order, fv)
	total := w.totalVW()
	target := int64(frac * float64(total))
	var acc int64
	for _, v := range order {
		if acc < target {
			side[v] = 0
			acc += w.vw[v]
		} else {
			side[v] = 1
		}
	}
	if opt.Refine {
		mlOpt := MultilevelOptions{Imbalance: opt.imbalance, RefinePasses: opt.refinePasses, Seed: opt.Seed}
		refineBisection(w, side, frac, mlOpt, rng)
	}
	return side, nil
}

func sortByValue(order []int32, val []float64) {
	// Heapsort on (val, id) to stay allocation-free and deterministic.
	less := func(a, b int32) bool {
		if val[a] != val[b] {
			return val[a] < val[b]
		}
		return a < b
	}
	nh := len(order)
	for i := nh/2 - 1; i >= 0; i-- {
		siftDown(order, i, nh, less)
	}
	for end := nh - 1; end > 0; end-- {
		order[0], order[end] = order[end], order[0]
		siftDown(order, 0, end, less)
	}
}

func siftDown(a []int32, start, end int, less func(x, y int32) bool) {
	root := start
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && less(a[child], a[child+1]) {
			child++
		}
		if !less(a[root], a[child]) {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}

// lapMul computes y = L x for the weighted Laplacian of w.
func lapMul(w *wgraph, x, y []float64) {
	n := w.n()
	for v := 0; v < n; v++ {
		var s, d float64
		for a := w.offsets[v]; a < w.offsets[v+1]; a++ {
			ew := float64(w.ew[a])
			s += ew * x[w.adj[a]]
			d += ew
		}
		y[v] = d*x[v] - s
	}
}

func maxWeightedDegree(w *wgraph) float64 {
	mx := 0.0
	for v := int32(0); int(v) < w.n(); v++ {
		if d := float64(w.degree(v)); d > mx {
			mx = d
		}
	}
	return mx
}

func deflateOnes(x []float64) {
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for i := range x {
		x[i] -= mean
	}
}

func norm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func normalize(x []float64) bool {
	nm := norm(x)
	if nm < 1e-300 {
		return false
	}
	inv := 1 / nm
	for i := range x {
		x[i] *= inv
	}
	return true
}

// fiedlerRQI approximates the Fiedler vector with multilevel
// acceleration: the vector is computed on a coarsened graph first,
// interpolated upward, and polished at each level by power iteration
// on (cI − L) with a Rayleigh-quotient residual test.
func fiedlerRQI(w *wgraph, opt SpectralOptions, rng *rand.Rand) ([]float64, error) {
	levels, maps := coarsenHierarchy(w, 64, int64(rng.Uint64()))
	coarsest := levels[len(levels)-1]
	x := randomVector(coarsest.n(), rng)
	if _, err := polish(coarsest, x, opt.MaxIterations, opt.Tolerance); err != nil {
		return nil, err
	}
	for li := len(levels) - 2; li >= 0; li-- {
		fine := levels[li]
		coarseOf := maps[li]
		fx := make([]float64, fine.n())
		for v := range fx {
			fx[v] = x[coarseOf[v]]
		}
		x = fx
		iters := opt.MaxIterations / 4
		if li == 0 {
			iters = opt.MaxIterations
		}
		if _, err := polish(fine, x, iters, opt.Tolerance); err != nil && li == 0 {
			return nil, err
		}
	}
	return x, nil
}

// polish runs deflated power iteration on B = cI − L until either the
// Rayleigh-quotient residual of x drops below tol (true eigenpair
// convergence) or the Rayleigh quotient itself stabilizes (the vector
// direction has stopped improving — sufficient for a median split even
// when near-degenerate eigenvalues keep the residual from vanishing,
// as on large meshes with tiny spectral gaps).
func polish(w *wgraph, x []float64, maxIter int, tol float64) (float64, error) {
	n := w.n()
	if n <= 2 {
		return 0, nil
	}
	c := 2*maxWeightedDegree(w) + 1
	y := make([]float64, n)
	deflateOnes(x)
	if !normalize(x) {
		return 0, ErrNoConvergence
	}
	lambda := 0.0
	prevRQ := math.Inf(1)
	for it := 0; it < maxIter; it++ {
		lapMul(w, x, y)
		// Rayleigh quotient and residual on L.
		var rq float64
		for i := range x {
			rq += x[i] * y[i]
		}
		var res float64
		for i := range x {
			d := y[i] - rq*x[i]
			res += d * d
		}
		lambda = rq
		// Residual is judged against the operator scale c (≈ the
		// largest Laplacian eigenvalue), not against λ2: meshes have
		// tiny λ2 and a λ2-relative test would demand far more
		// precision than the median split needs.
		if math.Sqrt(res) <= tol*c {
			return lambda, nil
		}
		if it%64 == 63 {
			if math.Abs(prevRQ-rq) <= 1e-6*math.Max(rq, 1e-12) {
				return lambda, nil
			}
			prevRQ = rq
		}
		// x <- normalize(deflate(c*x − y))
		for i := range x {
			x[i] = c*x[i] - y[i]
		}
		deflateOnes(x)
		if !normalize(x) {
			return 0, ErrNoConvergence
		}
	}
	return lambda, ErrNoConvergence
}

func randomVector(n int, rng *rand.Rand) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	return x
}

// fiedlerLanczos computes the Fiedler vector by the Lanczos process
// with full reorthogonalization. The second-smallest Laplacian
// eigenvalue is isolated by deflating the constant vector, so the
// smallest Ritz value of the tridiagonal approximates lambda_2.
func fiedlerLanczos(w *wgraph, opt SpectralOptions, rng *rand.Rand) ([]float64, error) {
	n := w.n()
	steps := opt.MaxIterations
	if steps > n-1 {
		steps = n - 1
	}
	if steps < 2 {
		steps = 2
	}
	q := make([][]float64, 0, steps+1)
	alpha := make([]float64, 0, steps)
	beta := make([]float64, 0, steps)

	q0 := randomVector(n, rng)
	deflateOnes(q0)
	if !normalize(q0) {
		return nil, ErrNoConvergence
	}
	q = append(q, q0)
	y := make([]float64, n)
	for j := 0; j < steps; j++ {
		lapMul(w, q[j], y)
		a := dot(q[j], y)
		alpha = append(alpha, a)
		for i := range y {
			y[i] -= a * q[j][i]
		}
		if j > 0 {
			b := beta[j-1]
			for i := range y {
				y[i] -= b * q[j-1][i]
			}
		}
		// Full reorthogonalization (against ones and all basis
		// vectors) keeps the Ritz values honest.
		deflateOnes(y)
		for _, qi := range q {
			d := dot(qi, y)
			for i := range y {
				y[i] -= d * qi[i]
			}
		}
		b := norm(y)
		if b < 1e-12 {
			break // invariant subspace found (happy breakdown)
		}
		beta = append(beta, b)
		qn := make([]float64, n)
		inv := 1 / b
		for i := range y {
			qn[i] = y[i] * inv
		}
		q = append(q, qn)
	}
	k := len(alpha)
	if k == 0 {
		return nil, ErrNoConvergence
	}
	lam := smallestEigTri(alpha[:k], beta[:min(k-1, len(beta))])
	z, ok := eigvecTri(alpha[:k], beta[:min(k-1, len(beta))], lam)
	if !ok {
		return nil, ErrNoConvergence
	}
	// Map back: fv = sum z_j q_j.
	fv := make([]float64, n)
	for j := 0; j < k; j++ {
		for i := range fv {
			fv[i] += z[j] * q[j][i]
		}
	}
	// Convergence check: residual of (lam, fv) on L.
	lapMul(w, fv, y)
	var res float64
	nrm := norm(fv)
	if nrm < 1e-300 {
		return nil, ErrNoConvergence
	}
	for i := range fv {
		d := y[i] - lam*fv[i]
		res += d * d
	}
	if math.Sqrt(res)/nrm > opt.Tolerance*math.Max(lam, 1.0)*10 {
		return nil, ErrNoConvergence
	}
	return fv, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// smallestEigTri finds the smallest eigenvalue of the symmetric
// tridiagonal matrix (alpha, beta) by bisection with Sturm sequences.
func smallestEigTri(alpha, beta []float64) float64 {
	// Gershgorin bounds.
	lo, hi := alpha[0], alpha[0]
	for i := range alpha {
		r := 0.0
		if i > 0 {
			r += math.Abs(beta[i-1])
		}
		if i < len(beta) {
			r += math.Abs(beta[i])
		}
		if alpha[i]-r < lo {
			lo = alpha[i] - r
		}
		if alpha[i]+r > hi {
			hi = alpha[i] + r
		}
	}
	countBelow := func(x float64) int {
		// Sturm sequence: number of eigenvalues < x.
		count := 0
		d := alpha[0] - x
		if d < 0 {
			count++
		}
		for i := 1; i < len(alpha); i++ {
			b2 := beta[i-1] * beta[i-1]
			if d == 0 {
				d = 1e-300
			}
			d = alpha[i] - x - b2/d
			if d < 0 {
				count++
			}
		}
		return count
	}
	for it := 0; it < 200 && hi-lo > 1e-12*(1+math.Abs(lo)); it++ {
		mid := (lo + hi) / 2
		if countBelow(mid) >= 1 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}

// eigvecTri computes an eigenvector of the tridiagonal (alpha, beta)
// for eigenvalue lam by inverse iteration with a Thomas solve.
func eigvecTri(alpha, beta []float64, lam float64) ([]float64, bool) {
	k := len(alpha)
	x := make([]float64, k)
	for i := range x {
		x[i] = 1 / float64(k+i+1) // deterministic non-degenerate start
	}
	shift := lam - 1e-8
	for iter := 0; iter < 4; iter++ {
		nx, ok := thomasSolve(alpha, beta, shift, x)
		if !ok {
			shift -= 1e-8
			continue
		}
		x = nx
		nm := norm(x)
		if nm < 1e-300 {
			return nil, false
		}
		for i := range x {
			x[i] /= nm
		}
	}
	return x, true
}

// thomasSolve solves (T − shift I) y = b for tridiagonal T.
func thomasSolve(alpha, beta []float64, shift float64, b []float64) ([]float64, bool) {
	k := len(alpha)
	c := make([]float64, k) // modified super-diagonal
	d := make([]float64, k) // modified rhs
	den := alpha[0] - shift
	if math.Abs(den) < 1e-300 {
		return nil, false
	}
	if k > 1 {
		c[0] = beta[0] / den
	}
	d[0] = b[0] / den
	for i := 1; i < k; i++ {
		den = alpha[i] - shift - beta[i-1]*c[i-1]
		if math.Abs(den) < 1e-300 {
			return nil, false
		}
		if i < k-1 {
			c[i] = beta[i] / den
		}
		d[i] = (b[i] - beta[i-1]*d[i-1]) / den
	}
	y := make([]float64, k)
	y[k-1] = d[k-1]
	for i := k - 2; i >= 0; i-- {
		y[i] = d[i] - c[i]*y[i+1]
	}
	return y, true
}
