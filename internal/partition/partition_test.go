package partition

import (
	"errors"

	"testing"

	"snap/internal/generate"
	"snap/internal/graph"
)

func validPartition(t *testing.T, name string, g *graph.Graph, r Result, k int) {
	t.Helper()
	if len(r.Part) != g.NumVertices() {
		t.Fatalf("%s: part length %d", name, len(r.Part))
	}
	for v, p := range r.Part {
		if p < 0 || int(p) >= k {
			t.Fatalf("%s: vertex %d in invalid part %d", name, v, p)
		}
	}
	if r.EdgeCut != EdgeCut(g, r.Part) {
		t.Fatalf("%s: reported cut %d != recomputed %d", name, r.EdgeCut, EdgeCut(g, r.Part))
	}
	if r.Balance > 1.5 {
		t.Fatalf("%s: balance %.2f too loose", name, r.Balance)
	}
	// All k parts must be nonempty for these test sizes.
	seen := make([]bool, k)
	for _, p := range r.Part {
		seen[p] = true
	}
	for p, s := range seen {
		if !s {
			t.Fatalf("%s: part %d empty", name, p)
		}
	}
}

func TestEdgeCutAndBalance(t *testing.T) {
	g, _ := graph.Build(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 1, V: 2}}, graph.BuildOptions{})
	part := []int32{0, 0, 1, 1}
	if c := EdgeCut(g, part); c != 1 {
		t.Fatalf("cut = %d, want 1", c)
	}
	if b := Balance(part, 2); b != 1 {
		t.Fatalf("balance = %g, want 1", b)
	}
	if b := Balance([]int32{0, 0, 0, 1}, 2); b != 1.5 {
		t.Fatalf("balance = %g, want 1.5", b)
	}
}

func TestValidateK(t *testing.T) {
	g := generate.Ring(8)
	if _, err := MultilevelKWay(g, 1, MultilevelOptions{}); err == nil {
		t.Fatal("k=1 should error")
	}
	if _, err := MultilevelKWay(g, 100, MultilevelOptions{}); err == nil {
		t.Fatal("k>n should error")
	}
}

func TestMultilevelKWayOnMesh(t *testing.T) {
	g := generate.RoadMesh(40, 40, 0, 1)
	r, err := MultilevelKWay(g, 8, MultilevelOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	validPartition(t, "kway", g, r, 8)
	// A 40x40 mesh split 8 ways has cuts around a few hundred at most;
	// random assignment would cut ~87.5% of 3120 edges (~2700).
	if r.EdgeCut > 600 {
		t.Fatalf("mesh cut %d too high for a multilevel partitioner", r.EdgeCut)
	}
}

func TestMultilevelRecursiveOnMesh(t *testing.T) {
	g := generate.RoadMesh(40, 40, 0, 2)
	r, err := MultilevelRecursive(g, 8, MultilevelOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	validPartition(t, "recur", g, r, 8)
	if r.EdgeCut > 600 {
		t.Fatalf("mesh cut %d too high", r.EdgeCut)
	}
}

func TestMultilevelBisectionOnTwoCliques(t *testing.T) {
	// Two K10 cliques joined by a single edge: the optimal 2-way cut
	// is exactly 1, and any decent partitioner must find it.
	var edges []graph.Edge
	for i := int32(0); i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			edges = append(edges, graph.Edge{U: i, V: j})
			edges = append(edges, graph.Edge{U: 10 + i, V: 10 + j})
		}
	}
	edges = append(edges, graph.Edge{U: 0, V: 10})
	g, _ := graph.Build(20, edges, graph.BuildOptions{})
	r, err := MultilevelRecursive(g, 2, MultilevelOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.EdgeCut != 1 {
		t.Fatalf("two-clique cut = %d, want 1", r.EdgeCut)
	}
}

func TestSpectralOnTwoCliques(t *testing.T) {
	var edges []graph.Edge
	for i := int32(0); i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			edges = append(edges, graph.Edge{U: i, V: j})
			edges = append(edges, graph.Edge{U: 10 + i, V: 10 + j})
		}
	}
	edges = append(edges, graph.Edge{U: 0, V: 10})
	g, _ := graph.Build(20, edges, graph.BuildOptions{})

	r, err := SpectralRQI(g, 2, SpectralOptions{Seed: 4, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.EdgeCut != 1 {
		t.Fatalf("spectral RQI two-clique cut = %d, want 1", r.EdgeCut)
	}
	r2, err := SpectralLanczos(g, 2, SpectralOptions{Seed: 4, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	if r2.EdgeCut != 1 {
		t.Fatalf("spectral Lanczos two-clique cut = %d, want 1", r2.EdgeCut)
	}
}

func TestSpectralRQIOnMesh(t *testing.T) {
	g := generate.RoadMesh(24, 24, 0, 5)
	r, err := SpectralRQI(g, 4, SpectralOptions{Seed: 5, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	validPartition(t, "spectral-rqi", g, r, 4)
	// Mesh cuts should be near-linear in the side length.
	if r.EdgeCut > 250 {
		t.Fatalf("mesh spectral cut %d too high", r.EdgeCut)
	}
}

func TestSpectralLanczosOnMesh(t *testing.T) {
	g := generate.RoadMesh(16, 16, 0, 6)
	r, err := SpectralLanczos(g, 2, SpectralOptions{Seed: 6, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	validPartition(t, "spectral-lan", g, r, 2)
	if r.EdgeCut > 60 {
		t.Fatalf("mesh Lanczos cut %d too high", r.EdgeCut)
	}
}

func TestSmallWorldCutsWorseThanMesh(t *testing.T) {
	// The core Table 1 phenomenon: at equal n and m, the small-world
	// graph's cut is dramatically worse than the mesh's.
	mesh := generate.RoadMesh(50, 50, 0.04, 7)
	sw := generate.RMAT(mesh.NumVertices(), mesh.NumEdges(), generate.DefaultRMAT(), 7)
	rm, err := MultilevelKWay(mesh, 8, MultilevelOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := MultilevelKWay(sw, 8, MultilevelOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rs.EdgeCut < 4*rm.EdgeCut {
		t.Fatalf("small-world cut %d not clearly worse than mesh cut %d",
			rs.EdgeCut, rm.EdgeCut)
	}
}

func TestSpectralNoConvergenceSurfaces(t *testing.T) {
	// A starved iteration budget must report ErrNoConvergence rather
	// than returning garbage — the paper's "Chaco fails to complete".
	g := generate.RMAT(2048, 8192, generate.DefaultRMAT(), 8)
	_, err := SpectralRQI(g, 2, SpectralOptions{Seed: 8, MaxIterations: 1001, Tolerance: 1e-12})
	if err != nil && !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("unexpected error type: %v", err)
	}
	// (Convergence is permitted; the assertion is only about the type.)
}

func TestCoarsenPreservesTotals(t *testing.T) {
	g := generate.RMAT(1000, 4000, generate.DefaultRMAT(), 9)
	w := fromGraph(g)
	levels, maps := coarsenHierarchy(w, 64, 42)
	if len(levels) < 2 {
		t.Fatal("no coarsening happened")
	}
	for li := 1; li < len(levels); li++ {
		if levels[li].totalVW() != int64(g.NumVertices()) {
			t.Fatalf("level %d lost vertex weight: %d", li, levels[li].totalVW())
		}
		if levels[li].n() >= levels[li-1].n() {
			t.Fatalf("level %d did not shrink", li)
		}
	}
	// Fine-to-coarse maps must be onto [0, coarse.n).
	for li, mp := range maps {
		coarseN := int32(levels[li+1].n())
		for _, c := range mp {
			if c < 0 || c >= coarseN {
				t.Fatalf("map %d out of range", li)
			}
		}
	}
}

func TestHeavyEdgeMatchingIsMatching(t *testing.T) {
	g := generate.RMAT(500, 2000, generate.DefaultRMAT(), 10)
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	ws.primeLevel0(wview{off: g.Offsets, adj: g.Adj})
	for _, workers := range []int{1, 3} {
		ws.matchLevel(ws.lv[0].view, 0xdecafbad, workers, 1<<30)
		for v := int32(0); int(v) < g.NumVertices(); v++ {
			m := ws.match[v]
			if m == -1 {
				t.Fatalf("workers=%d: vertex %d unprocessed", workers, v)
			}
			if m != v && ws.match[m] != v {
				t.Fatalf("workers=%d: matching not symmetric at %d<->%d", workers, v, m)
			}
		}
	}
}
