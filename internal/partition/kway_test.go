package partition

import (
	"runtime"
	"slices"
	"testing"

	"snap/internal/generate"
	"snap/internal/graph"
)

func kwayTestGraphs() []struct {
	name string
	g    *graph.Graph
	k    int
} {
	return []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"mesh32x32", generate.RoadMesh(32, 32, 0, 11), 8},
		{"rmat12", generate.RMAT(1<<12, 8<<12, generate.DefaultRMAT(), 12), 16},
		{"disconnected", generate.ErdosRenyi(600, 500, 13), 4},
	}
}

// The engine's central contract: the partition is bit-identical at
// every worker count, including counts exceeding the machine.
func TestKWayWorkerInvariance(t *testing.T) {
	for _, tc := range kwayTestGraphs() {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := MultilevelKWay(tc.g, tc.k, MultilevelOptions{Seed: 9, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, runtime.NumCPU() + 2} {
				r, err := MultilevelKWay(tc.g, tc.k, MultilevelOptions{Seed: 9, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if !slices.Equal(ref.Part, r.Part) {
					t.Fatalf("workers=%d: partition differs from workers=1", workers)
				}
				if r.EdgeCut != ref.EdgeCut {
					t.Fatalf("workers=%d: cut %d != %d", workers, r.EdgeCut, ref.EdgeCut)
				}
			}
		})
	}
}

// A reused workspace must produce exactly what a fresh one does.
func TestKWayWorkspaceReuseMatchesFresh(t *testing.T) {
	graphs := kwayTestGraphs()
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	for round := 0; round < 2; round++ {
		for _, tc := range graphs {
			fresh, err := (&Workspace{}).KWay(tc.g, tc.k, MultilevelOptions{Seed: 21, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			reused, err := ws.KWay(tc.g, tc.k, MultilevelOptions{Seed: 21, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(fresh.Part, reused.Part) {
				t.Fatalf("round %d %s: reused workspace diverged from fresh", round, tc.name)
			}
		}
	}
}

// Warm repeats on the serial arm must not allocate: every buffer the
// engine touches is pooled in the workspace.
func TestKWayWarmRepeatsDoNotAllocate(t *testing.T) {
	g := generate.RMAT(1<<12, 8<<12, generate.DefaultRMAT(), 14)
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	opt := MultilevelOptions{Seed: 5, Workers: 1}
	if _, err := ws.KWay(g, 8, opt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := ws.KWay(g, 8, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("warm KWay allocated %.1f times per run, want 0", allocs)
	}
}

// The balance window is a hard cap: no part may exceed
// ideal*(1+Imbalance), with one vertex of integer slack.
func TestKWayBalanceRespected(t *testing.T) {
	for _, tc := range kwayTestGraphs() {
		t.Run(tc.name, func(t *testing.T) {
			r, err := MultilevelKWay(tc.g, tc.k, MultilevelOptions{Seed: 33})
			if err != nil {
				t.Fatal(err)
			}
			sizes := make([]int64, tc.k)
			for _, p := range r.Part {
				sizes[p]++
			}
			maxW := int64(float64(tc.g.NumVertices()) / float64(tc.k) * 1.05)
			for p, s := range sizes {
				if s > maxW+1 {
					t.Fatalf("part %d weight %d exceeds cap %d", p, s, maxW)
				}
			}
		})
	}
}

// Seed 0 must mean the pinned repo default, not a distinct stream.
func TestKWaySeedZeroIsPinnedDefault(t *testing.T) {
	g := generate.RMAT(1<<10, 8<<10, generate.DefaultRMAT(), 15)
	a, err := MultilevelKWay(g, 4, MultilevelOptions{Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MultilevelKWay(g, 4, MultilevelOptions{Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(a.Part, b.Part) {
		t.Fatal("seed 0 not deterministic")
	}
	c, err := MultilevelKWay(g, 4, MultilevelOptions{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if slices.Equal(a.Part, c.Part) {
		t.Fatal("different seeds produced identical partitions (suspicious)")
	}
}

// BlockedPerm must be a permutation grouping each part contiguously,
// ordered by descending degree within the block.
func TestBlockedPerm(t *testing.T) {
	g := generate.RMAT(1<<11, 8<<11, generate.DefaultRMAT(), 16)
	r, err := MultilevelKWay(g, 8, MultilevelOptions{Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	perm, bounds, err := BlockedPerm(g, r.Part, 8)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	if len(perm) != n || len(bounds) != 9 || bounds[0] != 0 || int(bounds[8]) != n {
		t.Fatalf("bad shapes: len(perm)=%d bounds=%v", len(perm), bounds)
	}
	seen := make([]bool, n)
	for _, old := range perm {
		if seen[old] {
			t.Fatalf("vertex %d appears twice", old)
		}
		seen[old] = true
	}
	for p := 0; p < 8; p++ {
		var prevDeg int64 = 1 << 62
		for i := bounds[p]; i < bounds[p+1]; i++ {
			old := perm[i]
			if r.Part[old] != int32(p) {
				t.Fatalf("new id %d (old %d) in block %d but part %d", i, old, p, r.Part[old])
			}
			deg := g.Offsets[old+1] - g.Offsets[old]
			if deg > prevDeg {
				t.Fatalf("block %d not degree-descending at %d", p, i)
			}
			prevDeg = deg
		}
	}
}
