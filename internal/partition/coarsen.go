package partition

import (
	"slices"

	"snap/internal/par"
)

// Coarsening: parallel heavy-edge handshake matching plus counting-sort
// contraction, both deterministic at every worker count.
//
// Matching replaces the seed's serial random-order greedy scan with a
// fixed number of handshake rounds. In each round every unmatched
// vertex proposes to its best unmatched neighbor — heaviest incident
// edge first, ties broken by a seeded per-vertex hash, then by smaller
// id — reading only the match state frozen at round start. Mutual
// proposals (pref[pref[v]] == v) become matches; each endpoint writes
// only its own match slot, so the phase is race-free, and because every
// round is a pure function of the previous round's state the matching
// is bit-identical no matter how the rounds are chunked across workers.
//
// Contraction is the PR-3 histogram → par.CursorsFromCounts →
// disjoint-scatter pattern: per-worker histograms of surviving coarse
// arcs, shared cursors, an atomics-free scatter into per-coarse-vertex
// buckets, then a degree-aware per-bucket sort with in-pass collapse of
// parallel edges. Weight sums are integers, so the result is exact and
// worker-count independent.

// wview is the weighted graph a multilevel pass runs on: either the
// original CSR (ew == nil means unit edge weights, vw == nil means unit
// vertex weights) or a contracted coarse level (both materialized).
type wview struct {
	off []int64
	adj []int32
	ew  []int64
	vw  []int64
}

func (v wview) n() int { return len(v.off) - 1 }

func (v wview) vweight(x int32) int64 {
	if v.vw == nil {
		return 1
	}
	return v.vw[x]
}

func (v wview) totalVW() int64 {
	if v.vw == nil {
		return int64(v.n())
	}
	var s int64
	for _, x := range v.vw {
		s += x
	}
	return s
}

// matchRounds bounds the handshake rounds per level. Four rounds leave
// only a small unmatched tail on every graph family we generate; the
// coarsening stall check catches the pathological remainder.
const matchRounds = 4

// matchLevel computes a heavy-edge matching of v into ws.match[:n]
// (match[x] == x means unmatched). salt seeds the tie-break hashes.
// Pairs whose combined vertex weight would exceed maxCluster are not
// proposed, bounding coarse vertex growth across levels.
func (ws *Workspace) matchLevel(v wview, salt uint64, workers int, maxCluster int64) {
	n := v.n()
	ws.match = scratch(ws.match, n)
	ws.pref = scratch(ws.pref, n)
	match, pref := ws.match, ws.pref
	if workers > 1 {
		par.ForChunkedN(n, workers, func(_, lo, hi int) {
			fill32(match[lo:hi], -1)
		})
	} else {
		fill32(match[:n], -1)
	}
	for round := 0; round < matchRounds; round++ {
		rsalt := salt + uint64(round)*0x9e3779b97f4a7c15
		if workers > 1 {
			par.ForChunkedN(n, workers, func(_, lo, hi int) {
				ws.proposeRange(v, rsalt, lo, hi, maxCluster)
			})
			ws.partial = scratch(ws.partial, workers)
			clear(ws.partial[:workers])
			par.ForChunkedN(n, workers, func(w, lo, hi int) {
				ws.partial[w] = handshakeRange(match, pref, lo, hi)
			})
			var matched int64
			for _, p := range ws.partial[:workers] {
				matched += p
			}
			if matched == 0 {
				break
			}
		} else {
			ws.proposeRange(v, rsalt, 0, n, maxCluster)
			if handshakeRange(match, pref, 0, n) == 0 {
				break
			}
		}
	}
	// Normalize the unmatched tail to the match[x] == x convention.
	if workers > 1 {
		par.ForChunkedN(n, workers, func(_, lo, hi int) {
			normalizeRange(match, lo, hi)
		})
	} else {
		normalizeRange(match, 0, n)
	}
}

// proposeRange computes each unmatched vertex's preferred partner in
// [lo, hi): the unmatched neighbor with the heaviest incident edge,
// ties broken by a seeded EDGE hash (symmetric in the endpoints, so
// both ends rank their shared edge identically — the locally-dominant
// edge trick that makes handshakes plentiful; a vertex hash would be a
// global popularity ranking that funnels all proposals into a few hubs
// and stalls on power-law graphs), then by smaller id. Reads only the
// match state frozen at round start.
func (ws *Workspace) proposeRange(v wview, rsalt uint64, lo, hi int, maxCluster int64) {
	match, pref := ws.match, ws.pref
	for xi := lo; xi < hi; xi++ {
		x := int32(xi)
		if match[x] != -1 {
			pref[x] = -1
			continue
		}
		best := int32(-1)
		var bestW int64
		var bestH uint64
		alo, ahi := v.off[x], v.off[x+1]
		if v.ew == nil {
			for a := alo; a < ahi; a++ {
				u := v.adj[a]
				if u == x || match[u] != -1 {
					continue
				}
				h := splitmix64(rsalt ^ (uint64(u) ^ uint64(x)))
				if best == -1 || h > bestH || (h == bestH && u < best) {
					best, bestH = u, h
				}
			}
		} else {
			for a := alo; a < ahi; a++ {
				u := v.adj[a]
				if u == x || match[u] != -1 {
					continue
				}
				if v.vw != nil && v.vw[x]+v.vw[u] > maxCluster {
					continue
				}
				w := v.ew[a]
				if best != -1 && w < bestW {
					continue
				}
				h := splitmix64(rsalt ^ (uint64(u) ^ uint64(x)))
				if best == -1 || w > bestW || h > bestH || (h == bestH && u < best) {
					best, bestW, bestH = u, w, h
				}
			}
		}
		pref[x] = best
	}
}

// handshakeRange matches mutual proposals in [lo, hi), each endpoint
// writing its own slot, and returns the number matched in the range.
func handshakeRange(match, pref []int32, lo, hi int) int64 {
	var matched int64
	for xi := lo; xi < hi; xi++ {
		x := int32(xi)
		if match[x] != -1 || pref[x] < 0 {
			continue
		}
		if u := pref[x]; pref[u] == x {
			match[x] = u
			matched++
		}
	}
	return matched
}

func normalizeRange(match []int32, lo, hi int) {
	for x := lo; x < hi; x++ {
		if match[x] == -1 {
			match[x] = int32(x)
		}
	}
}

func fill32(s []int32, v int32) {
	for i := range s {
		s[i] = v
	}
}

// ce is a coarse arc observation: target coarse vertex and the weight
// of one contracted fine edge.
type ce struct {
	to int32
	w  int64
}

func ceLess(a, b ce) int { return int(a.to) - int(b.to) }

// contract collapses ws.match over level li into level li+1, storing
// the coarse graph and the fine-to-coarse map in the hierarchy.
// Returns the coarse vertex count.
func (ws *Workspace) contract(li, workers int, maxCluster int64) int {
	v := ws.lv[li].view
	n := v.n()
	match := ws.match

	// Dense coarse ids in fine-vertex order: deterministic, O(n).
	// Matched pairs become clusters first; leftover singletons then try
	// to join a neighboring cluster (heaviest connecting edge, ties to
	// the smaller cluster id) under the cluster weight cap. Without the
	// absorption step coarsening stalls on power-law graphs: degree-1
	// satellites around a hub can pair with the hub only one per level,
	// capping the shrink factor near 1.
	ws.lv[li].coarseOf = scratch(ws.lv[li].coarseOf, n)
	coarseOf := ws.lv[li].coarseOf
	fill32(coarseOf, -1)
	ws.cvw = scratch(ws.cvw, n)
	cvw := ws.cvw
	var cn int32
	for x := int32(0); int(x) < n; x++ {
		if coarseOf[x] != -1 {
			continue
		}
		if m := match[x]; m != x {
			coarseOf[x] = cn
			coarseOf[m] = cn
			cvw[cn] = v.vweight(x) + v.vweight(m)
			cn++
		}
	}
	for x := int32(0); int(x) < n; x++ {
		if coarseOf[x] != -1 {
			continue
		}
		vwx := v.vweight(x)
		best := int32(-1)
		var bestW int64
		for a := v.off[x]; a < v.off[x+1]; a++ {
			c := coarseOf[v.adj[a]]
			if c == -1 || cvw[c]+vwx > maxCluster {
				continue
			}
			w := int64(1)
			if v.ew != nil {
				w = v.ew[a]
			}
			if w > bestW || (w == bestW && (best == -1 || c < best)) {
				best, bestW = c, w
			}
		}
		if best != -1 {
			coarseOf[x] = best
			cvw[best] += vwx
			continue
		}
		coarseOf[x] = cn
		cvw[cn] = vwx
		cn++
	}

	if workers > n {
		workers = max(1, n)
	}
	// Histogram pass: surviving (non-contracted) arcs per coarse vertex.
	for len(ws.counts) < workers {
		ws.counts = append(ws.counts, nil)
	}
	for w := 0; w < workers; w++ {
		ws.counts[w] = scratch(ws.counts[w], int(cn))
		clear(ws.counts[w])
	}
	ws.bucketOff = scratch(ws.bucketOff, int(cn)+1)
	var total int64
	if workers > 1 {
		par.ForChunkedN(n, workers, func(w, lo, hi int) {
			histRange(v, coarseOf, ws.counts[w], lo, hi)
		})
		total = par.CursorsFromCounts(ws.counts[:workers], ws.bucketOff)
	} else {
		histRange(v, coarseOf, ws.counts[0], 0, n)
		total = cursorsSerial(ws.counts[0], ws.bucketOff, int(cn))
	}

	// Scatter pass into disjoint cursor ranges.
	ws.arcs = scratch(ws.arcs, int(total))
	if workers > 1 {
		par.ForChunkedN(n, workers, func(w, lo, hi int) {
			scatterRange(v, coarseOf, ws.counts[w], ws.arcs, lo, hi)
		})
	} else {
		scatterRange(v, coarseOf, ws.counts[0], ws.arcs, 0, n)
	}

	// Aggregate vertex weights serially (O(n), cheap next to arc work).
	out := &ws.lv[li+1]
	out.vw = scratch(out.vw, int(cn))
	clear(out.vw)
	for x := 0; x < n; x++ {
		out.vw[coarseOf[x]] += v.vweight(int32(x))
	}

	// Per-bucket sort + collapse, degree-aware across workers.
	ws.uniq = scratch(ws.uniq, int(cn))
	ws.sizes = scratch(ws.sizes, int(cn))
	for cv := int32(0); cv < cn; cv++ {
		ws.sizes[cv] = ws.bucketOff[cv+1] - ws.bucketOff[cv]
	}
	if workers > 1 {
		par.ForDegreeAware(ws.sizes, workers, func(_, lo, hi int) {
			ws.collapseRange(lo, hi)
		})
	} else {
		ws.collapseRange(0, int(cn))
	}

	out.off = scratch(out.off, int(cn)+1)
	if workers > 1 {
		par.PrefixSumInto(out.off, ws.uniq)
	} else {
		var acc int64
		for cv := int32(0); cv < cn; cv++ {
			out.off[cv] = acc
			acc += ws.uniq[cv]
		}
		out.off[cn] = acc
	}
	out.adj = scratch(out.adj, int(out.off[cn]))
	out.ew = scratch(out.ew, int(out.off[cn]))
	if workers > 1 {
		par.ForDegreeAware(ws.uniq, workers, func(_, lo, hi int) {
			ws.assembleRange(out, lo, hi)
		})
	} else {
		ws.assembleRange(out, 0, int(cn))
	}
	out.view = wview{off: out.off, adj: out.adj, ew: out.ew, vw: out.vw}
	return int(cn)
}

func histRange(v wview, coarseOf []int32, c []int64, lo, hi int) {
	for x := lo; x < hi; x++ {
		cx := coarseOf[x]
		for a := v.off[x]; a < v.off[x+1]; a++ {
			if coarseOf[v.adj[a]] != cx {
				c[cx]++
			}
		}
	}
}

func scatterRange(v wview, coarseOf []int32, cur []int64, arcs []ce, lo, hi int) {
	for x := lo; x < hi; x++ {
		cx := coarseOf[x]
		for a := v.off[x]; a < v.off[x+1]; a++ {
			cu := coarseOf[v.adj[a]]
			if cu == cx {
				continue // contracted (or self) edge
			}
			w := int64(1)
			if v.ew != nil {
				w = v.ew[a]
			}
			arcs[cur[cx]] = ce{to: cu, w: w}
			cur[cx]++
		}
	}
}

// collapseRange sorts each bucket in [lo, hi) and folds parallel edges,
// recording the unique-arc count in ws.uniq.
func (ws *Workspace) collapseRange(lo, hi int) {
	for cv := lo; cv < hi; cv++ {
		b := ws.arcs[ws.bucketOff[cv]:ws.bucketOff[cv+1]]
		slices.SortFunc(b, ceLess)
		k := 0
		for i := 0; i < len(b); {
			j := i
			var sum int64
			for j < len(b) && b[j].to == b[i].to {
				sum += b[j].w
				j++
			}
			b[k] = ce{to: b[i].to, w: sum}
			k++
			i = j
		}
		ws.uniq[cv] = int64(k)
	}
}

func (ws *Workspace) assembleRange(out *lvl, lo, hi int) {
	for cv := lo; cv < hi; cv++ {
		base := out.off[cv]
		blo := ws.bucketOff[cv]
		for i := int64(0); i < ws.uniq[cv]; i++ {
			out.adj[base+i] = ws.arcs[blo+i].to
			out.ew[base+i] = ws.arcs[blo+i].w
		}
	}
}

// cursorsSerial is the single-worker, allocation-free arm of
// par.CursorsFromCounts.
func cursorsSerial(c []int64, off []int64, cn int) int64 {
	var acc int64
	for v := 0; v < cn; v++ {
		off[v] = acc
		t := c[v]
		c[v] = acc
		acc += t
	}
	off[cn] = acc
	return acc
}

// coarsenToSize repeatedly matches and contracts the hierarchy rooted
// at ws.lv[0] (which the caller primes with the input view) until the
// coarsest level has at most target vertices or coarsening stalls.
// Returns the number of levels (≥ 1).
func (ws *Workspace) coarsenToSize(target int, seed int64, workers int) int {
	// Cluster weight cap: the ideal coarsest vertex weight if the
	// target is hit exactly. A cluster at the cap is ~1/CoarsenTarget
	// of one part's weight, well inside the refinement window.
	maxCluster := max(ws.lv[0].view.totalVW()/int64(max(target, 1)), 4)
	levels := 1
	for ws.lv[levels-1].view.n() > target {
		cur := ws.lv[levels-1]
		salt := splitmix64(uint64(seed) + uint64(levels)*0x517cc1b727220a95)
		ws.matchLevel(cur.view, salt, workers, maxCluster)
		for len(ws.lv) <= levels {
			ws.lv = append(ws.lv, lvl{})
		}
		cn := ws.contract(levels-1, workers, maxCluster)
		if cn >= cur.view.n()*19/20 {
			break // stalled: mostly unmatched vertices
		}
		levels++
	}
	return levels
}

// primeLevel0 points the hierarchy root at an input view.
func (ws *Workspace) primeLevel0(v wview) {
	if len(ws.lv) == 0 {
		ws.lv = append(ws.lv, lvl{})
	}
	ws.lv[0].view = v
}
