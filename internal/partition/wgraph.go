package partition

import (
	"snap/internal/graph"
)

// wgraph is the weighted working graph of the recursive-bisection and
// spectral pipelines: vertices carry weights (#fine vertices collapsed
// into them) and edges carry weights (#fine edges collapsed into them).
// The direct k-way engine works on wview levels inside a Workspace
// instead; wgraph survives because the bisection paths own induced
// subgraphs and hierarchies across recursive splits.
type wgraph struct {
	offsets []int64
	adj     []int32
	ew      []int64
	vw      []int64
}

func (w *wgraph) n() int { return len(w.vw) }

func (w *wgraph) totalVW() int64 {
	var s int64
	for _, x := range w.vw {
		s += x
	}
	return s
}

func (w *wgraph) degree(v int32) int64 {
	// Weighted degree: sum of incident edge weights.
	var s int64
	for a := w.offsets[v]; a < w.offsets[v+1]; a++ {
		s += w.ew[a]
	}
	return s
}

// fromGraph converts a CSR graph to a unit-weight wgraph.
func fromGraph(g *graph.Graph) *wgraph {
	n := g.NumVertices()
	w := &wgraph{
		offsets: g.Offsets,
		adj:     g.Adj,
		ew:      make([]int64, len(g.Adj)),
		vw:      make([]int64, n),
	}
	for i := range w.ew {
		w.ew[i] = 1
	}
	for i := range w.vw {
		w.vw[i] = 1
	}
	return w
}
