package partition

import (
	"math/rand"
	"slices"

	"snap/internal/graph"
	"snap/internal/par"
)

// wgraph is the weighted working graph of the multilevel pipeline:
// vertices carry weights (#fine vertices collapsed into them) and edges
// carry weights (#fine edges collapsed into them).
type wgraph struct {
	offsets []int64
	adj     []int32
	ew      []int64
	vw      []int64
}

func (w *wgraph) n() int { return len(w.vw) }

func (w *wgraph) totalVW() int64 {
	var s int64
	for _, x := range w.vw {
		s += x
	}
	return s
}

func (w *wgraph) degree(v int32) int64 {
	// Weighted degree: sum of incident edge weights.
	var s int64
	for a := w.offsets[v]; a < w.offsets[v+1]; a++ {
		s += w.ew[a]
	}
	return s
}

// fromGraph converts a CSR graph to a unit-weight wgraph.
func fromGraph(g *graph.Graph) *wgraph {
	n := g.NumVertices()
	w := &wgraph{
		offsets: g.Offsets,
		adj:     g.Adj,
		ew:      make([]int64, len(g.Adj)),
		vw:      make([]int64, n),
	}
	for i := range w.ew {
		w.ew[i] = 1
	}
	for i := range w.vw {
		w.vw[i] = 1
	}
	return w
}

// heavyEdgeMatching computes a matching that prefers heavy edges
// (visiting vertices in random order, each unmatched vertex matches its
// heaviest unmatched neighbor). match[v] == v means unmatched.
func (w *wgraph) heavyEdgeMatching(rng *rand.Rand) []int32 {
	n := w.n()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	for _, vi := range order {
		v := int32(vi)
		if match[v] != -1 {
			continue
		}
		best := int32(-1)
		var bestW int64
		for a := w.offsets[v]; a < w.offsets[v+1]; a++ {
			u := w.adj[a]
			if u == v || match[u] != -1 {
				continue
			}
			if w.ew[a] > bestW || (w.ew[a] == bestW && best == -1) {
				best, bestW = u, w.ew[a]
			}
		}
		if best == -1 {
			match[v] = v
		} else {
			match[v] = best
			match[best] = v
		}
	}
	return match
}

// ce is a coarse arc observation: target coarse vertex and the weight
// of one contracted fine edge.
type ce struct {
	to int32
	w  int64
}

func ceLess(a, b ce) int { return int(a.to) - int(b.to) }

// coarsen contracts the matching into a coarser wgraph and returns it
// with the fine-to-coarse vertex map.
//
// Edge aggregation uses the same counting-sort assembly pattern as the
// parallel CSR builder: per-worker histograms over fine-vertex chunks,
// a prefix/cursor pass, atomics-free scatter into per-coarse-vertex
// buckets, then a parallel per-bucket sort (one shared comparison
// function — no closure allocation per bucket) with in-pass collapse
// of parallel edges. Weight sums are integers, so the result is
// deterministic for any worker count.
func (w *wgraph) coarsen(match []int32) (*wgraph, []int32) {
	n := w.n()
	coarseOf := make([]int32, n)
	for i := range coarseOf {
		coarseOf[i] = -1
	}
	var cn int32
	for v := int32(0); int(v) < n; v++ {
		if coarseOf[v] != -1 {
			continue
		}
		coarseOf[v] = cn
		if m := match[v]; m != v && m != -1 {
			coarseOf[m] = cn
		}
		cn++
	}

	workers := par.Workers()
	if workers > n {
		workers = max(1, n)
	}
	// Histogram pass: surviving (non-contracted) arcs per coarse vertex.
	counts := make([][]int64, workers)
	par.ForChunkedN(n, workers, func(ww, lo, hi int) {
		c := make([]int64, cn)
		for v := lo; v < hi; v++ {
			cv := coarseOf[v]
			for a := w.offsets[v]; a < w.offsets[v+1]; a++ {
				if coarseOf[w.adj[a]] != cv {
					c[cv]++
				}
			}
		}
		counts[ww] = c
	})
	for ww := range counts {
		if counts[ww] == nil {
			counts[ww] = make([]int64, cn)
		}
	}
	bucketOff := make([]int64, cn+1)
	total := par.CursorsFromCounts(counts, bucketOff)

	// Scatter pass into disjoint cursor ranges, then aggregate vertex
	// weights serially (O(n), cheap next to the arc work).
	arcs := make([]ce, total)
	par.ForChunkedN(n, workers, func(ww, lo, hi int) {
		cur := counts[ww]
		for v := lo; v < hi; v++ {
			cv := coarseOf[v]
			for a := w.offsets[v]; a < w.offsets[v+1]; a++ {
				cu := coarseOf[w.adj[a]]
				if cu == cv {
					continue // contracted (or self) edge
				}
				arcs[cur[cv]] = ce{to: cu, w: w.ew[a]}
				cur[cv]++
			}
		}
	})
	vw := make([]int64, cn)
	for v := 0; v < n; v++ {
		vw[coarseOf[v]] += w.vw[v]
	}

	// Per-bucket sort + collapse, degree-aware across workers.
	uniq := make([]int64, cn)
	sizes := make([]int64, cn)
	for cv := int32(0); cv < cn; cv++ {
		sizes[cv] = bucketOff[cv+1] - bucketOff[cv]
	}
	par.ForDegreeAware(sizes, workers, func(ww, lo, hi int) {
		for cv := lo; cv < hi; cv++ {
			b := arcs[bucketOff[cv]:bucketOff[cv+1]]
			slices.SortFunc(b, ceLess)
			k := 0
			for i := 0; i < len(b); {
				j := i
				var sum int64
				for j < len(b) && b[j].to == b[i].to {
					sum += b[j].w
					j++
				}
				b[k] = ce{to: b[i].to, w: sum}
				k++
				i = j
			}
			uniq[cv] = int64(k)
		}
	})

	out := &wgraph{vw: vw, offsets: par.PrefixSum(uniq)}
	out.adj = make([]int32, out.offsets[cn])
	out.ew = make([]int64, out.offsets[cn])
	par.ForDegreeAware(uniq, workers, func(ww, lo, hi int) {
		for cv := lo; cv < hi; cv++ {
			base := out.offsets[cv]
			blo := bucketOff[cv]
			for i := int64(0); i < uniq[cv]; i++ {
				out.adj[base+i] = arcs[blo+i].to
				out.ew[base+i] = arcs[blo+i].w
			}
		}
	})
	return out, coarseOf
}

// coarsenToSize repeatedly matches and contracts until the graph has at
// most target vertices or coarsening stalls. It returns the hierarchy
// (finest first) and the fine-to-coarse maps (maps[i] maps level i to
// level i+1 ids).
func coarsenToSize(w *wgraph, target int, rng *rand.Rand) (levels []*wgraph, maps [][]int32) {
	levels = []*wgraph{w}
	for levels[len(levels)-1].n() > target {
		cur := levels[len(levels)-1]
		match := cur.heavyEdgeMatching(rng)
		next, coarseOf := cur.coarsen(match)
		if next.n() >= cur.n()*19/20 {
			break // stalled: mostly unmatched vertices
		}
		levels = append(levels, next)
		maps = append(maps, coarseOf)
	}
	return levels, maps
}
