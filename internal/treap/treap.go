// Package treap implements randomized search trees (Seidel & Aragon,
// Algorithmica 1996) keyed by int32 vertex identifiers.
//
// SNAP stores the adjacency lists of high-degree vertices in treaps so
// that dynamic graphs with skewed degree distributions support fast
// insertion, deletion, and membership tests, as well as efficient set
// operations (union, intersection, difference) via split/join. This
// package provides exactly that functionality.
package treap

import "math/rand"

// node is a treap node. Priorities are drawn from a deterministic
// per-treap PRNG so tests are reproducible.
type node struct {
	key         int32
	priority    uint32
	size        int32 // subtree size, maintained for Rank/Kth
	left, right *node
}

// Treap is an ordered set of int32 keys with expected O(log n) update
// and query cost. The zero value is not ready for use; call New.
type Treap struct {
	root *node
	rng  *rand.Rand
}

// New returns an empty treap whose priorities are derived from seed.
func New(seed int64) *Treap {
	return &Treap{rng: rand.New(rand.NewSource(seed))}
}

// Len reports the number of keys stored.
func (t *Treap) Len() int {
	return int(size(t.root))
}

func size(n *node) int32 {
	if n == nil {
		return 0
	}
	return n.size
}

func update(n *node) *node {
	if n != nil {
		n.size = 1 + size(n.left) + size(n.right)
	}
	return n
}

// split partitions n into (< key, >= key).
func split(n *node, key int32) (l, r *node) {
	if n == nil {
		return nil, nil
	}
	if n.key < key {
		l2, r2 := split(n.right, key)
		n.right = l2
		return update(n), r2
	}
	l2, r2 := split(n.left, key)
	n.left = r2
	return l2, update(n)
}

// join concatenates l and r assuming every key in l is less than every
// key in r.
func join(l, r *node) *node {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	if l.priority > r.priority {
		l.right = join(l.right, r)
		return update(l)
	}
	r.left = join(l, r.left)
	return update(r)
}

// Insert adds key to the set. It reports whether the key was newly
// inserted (false if it was already present).
func (t *Treap) Insert(key int32) bool {
	if t.contains(t.root, key) {
		return false
	}
	nn := &node{key: key, priority: t.rng.Uint32(), size: 1}
	l, r := split(t.root, key)
	t.root = join(join(l, nn), r)
	return true
}

// Delete removes key from the set, reporting whether it was present.
func (t *Treap) Delete(key int32) bool {
	var deleted bool
	t.root = deleteRec(t.root, key, &deleted)
	return deleted
}

func deleteRec(n *node, key int32, deleted *bool) *node {
	if n == nil {
		return nil
	}
	switch {
	case key < n.key:
		n.left = deleteRec(n.left, key, deleted)
	case key > n.key:
		n.right = deleteRec(n.right, key, deleted)
	default:
		*deleted = true
		return join(n.left, n.right)
	}
	return update(n)
}

// Contains reports whether key is in the set.
func (t *Treap) Contains(key int32) bool {
	return t.contains(t.root, key)
}

func (t *Treap) contains(n *node, key int32) bool {
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return true
		}
	}
	return false
}

// Min returns the smallest key. ok is false for an empty treap.
func (t *Treap) Min() (key int32, ok bool) {
	n := t.root
	if n == nil {
		return 0, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.key, true
}

// Max returns the largest key. ok is false for an empty treap.
func (t *Treap) Max() (key int32, ok bool) {
	n := t.root
	if n == nil {
		return 0, false
	}
	for n.right != nil {
		n = n.right
	}
	return n.key, true
}

// Kth returns the k-th smallest key (0-indexed). ok is false when
// k is out of range.
func (t *Treap) Kth(k int) (key int32, ok bool) {
	if k < 0 || k >= t.Len() {
		return 0, false
	}
	n := t.root
	for {
		ls := int(size(n.left))
		switch {
		case k < ls:
			n = n.left
		case k > ls:
			k -= ls + 1
			n = n.right
		default:
			return n.key, true
		}
	}
}

// Rank returns the number of keys strictly less than key.
func (t *Treap) Rank(key int32) int {
	r := 0
	n := t.root
	for n != nil {
		if key <= n.key {
			n = n.left
		} else {
			r += int(size(n.left)) + 1
			n = n.right
		}
	}
	return r
}

// Each calls f on every key in ascending order. If f returns false the
// iteration stops early.
func (t *Treap) Each(f func(key int32) bool) {
	each(t.root, f)
}

func each(n *node, f func(key int32) bool) bool {
	if n == nil {
		return true
	}
	return each(n.left, f) && f(n.key) && each(n.right, f)
}

// Keys returns all keys in ascending order.
func (t *Treap) Keys() []int32 {
	out := make([]int32, 0, t.Len())
	t.Each(func(k int32) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Clone returns a deep copy of the treap sharing no nodes with t.
func (t *Treap) Clone() *Treap {
	c := New(t.rng.Int63())
	c.root = cloneRec(t.root)
	return c
}

func cloneRec(n *node) *node {
	if n == nil {
		return nil
	}
	return &node{
		key:      n.key,
		priority: n.priority,
		size:     n.size,
		left:     cloneRec(n.left),
		right:    cloneRec(n.right),
	}
}
