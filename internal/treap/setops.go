package treap

// Set operations over treaps via split/join, after Blelloch &
// Reid-Miller. SNAP uses these for adjacency-set algebra on
// high-degree vertices (e.g. common-neighbor counts in clustering
// coefficient computations, neighborhood merges in agglomeration).

// Union returns a new treap containing every key present in a or b.
// The inputs are not modified.
func Union(a, b *Treap) *Treap {
	out := New(mixSeed(a, b))
	out.root = unionRec(cloneRec(a.root), cloneRec(b.root))
	return out
}

func unionRec(a, b *node) *node {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.priority < b.priority {
		a, b = b, a
	}
	l, r := split(b, a.key)
	// Drop a duplicate of a.key from the right part, if present.
	var dup bool
	r = deleteRec(r, a.key, &dup)
	a.left = unionRec(a.left, l)
	a.right = unionRec(a.right, r)
	return update(a)
}

// Intersect returns a new treap containing the keys present in both a
// and b. The inputs are not modified.
func Intersect(a, b *Treap) *Treap {
	out := New(mixSeed(a, b))
	out.root = intersectRec(cloneRec(a.root), cloneRec(b.root))
	return out
}

func intersectRec(a, b *node) *node {
	if a == nil || b == nil {
		return nil
	}
	if a.priority < b.priority {
		a, b = b, a
	}
	l, r := split(b, a.key)
	var present bool
	r = deleteRec(r, a.key, &present)
	li := intersectRec(a.left, l)
	ri := intersectRec(a.right, r)
	if present {
		a.left, a.right = li, ri
		return update(a)
	}
	return join(li, ri)
}

// Difference returns a new treap with the keys of a that are not in b.
// The inputs are not modified.
func Difference(a, b *Treap) *Treap {
	out := New(mixSeed(a, b))
	out.root = differenceRec(cloneRec(a.root), b.root)
	return out
}

func differenceRec(a, b *node) *node {
	if a == nil {
		return nil
	}
	if b == nil {
		return a
	}
	l, r := split(a, b.key)
	var dup bool
	r = deleteRec(r, b.key, &dup)
	return join(differenceRec(l, b.left), differenceRec(r, b.right))
}

// FromKeys builds a treap from keys (duplicates collapse).
func FromKeys(seed int64, keys []int32) *Treap {
	t := New(seed)
	for _, k := range keys {
		t.Insert(k)
	}
	return t
}

func mixSeed(a, b *Treap) int64 {
	return a.rng.Int63() ^ (b.rng.Int63() << 1)
}
