package treap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertContainsDelete(t *testing.T) {
	tr := New(1)
	if tr.Contains(5) {
		t.Fatal("empty treap contains 5")
	}
	if !tr.Insert(5) || tr.Insert(5) {
		t.Fatal("insert semantics wrong")
	}
	if !tr.Contains(5) || tr.Len() != 1 {
		t.Fatal("contains/len after insert wrong")
	}
	if !tr.Delete(5) || tr.Delete(5) {
		t.Fatal("delete semantics wrong")
	}
	if tr.Contains(5) || tr.Len() != 0 {
		t.Fatal("contains/len after delete wrong")
	}
}

func TestKeysSorted(t *testing.T) {
	tr := New(2)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		tr.Insert(int32(rng.Intn(500)))
	}
	keys := tr.Keys()
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("Keys not sorted")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] == keys[i-1] {
			t.Fatal("duplicate key stored")
		}
	}
}

func TestMinMaxKthRank(t *testing.T) {
	tr := New(3)
	for _, k := range []int32{30, 10, 50, 20, 40} {
		tr.Insert(k)
	}
	if mn, ok := tr.Min(); !ok || mn != 10 {
		t.Fatalf("Min = %d", mn)
	}
	if mx, ok := tr.Max(); !ok || mx != 50 {
		t.Fatalf("Max = %d", mx)
	}
	for i, want := range []int32{10, 20, 30, 40, 50} {
		if got, ok := tr.Kth(i); !ok || got != want {
			t.Fatalf("Kth(%d) = %d, want %d", i, got, want)
		}
	}
	if _, ok := tr.Kth(5); ok {
		t.Fatal("Kth(5) should be out of range")
	}
	if r := tr.Rank(35); r != 3 {
		t.Fatalf("Rank(35) = %d, want 3", r)
	}
	if r := tr.Rank(10); r != 0 {
		t.Fatalf("Rank(10) = %d, want 0", r)
	}
}

func TestEachEarlyStop(t *testing.T) {
	tr := FromKeys(4, []int32{1, 2, 3, 4, 5})
	count := 0
	tr.Each(func(int32) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("Each visited %d keys, want 3", count)
	}
}

func TestCloneIndependent(t *testing.T) {
	tr := FromKeys(5, []int32{1, 2, 3})
	cp := tr.Clone()
	cp.Delete(2)
	if !tr.Contains(2) {
		t.Fatal("Clone shares structure with original")
	}
	if cp.Contains(2) {
		t.Fatal("Delete on clone failed")
	}
}

// TestQuickSetSemantics cross-validates the treap against a map oracle
// on random operation sequences.
func TestQuickSetSemantics(t *testing.T) {
	check := func(ops []int16) bool {
		tr := New(99)
		oracle := map[int32]bool{}
		for _, op := range ops {
			key := int32(op % 64)
			if key < 0 {
				key = -key
			}
			if op%3 == 0 {
				ins := tr.Insert(key)
				if ins == oracle[key] {
					return false // Insert returns true iff absent
				}
				oracle[key] = true
			} else if op%3 == 1 {
				del := tr.Delete(key)
				if del != oracle[key] {
					return false
				}
				delete(oracle, key)
			} else {
				if tr.Contains(key) != oracle[key] {
					return false
				}
			}
		}
		if tr.Len() != len(oracle) {
			return false
		}
		for _, k := range tr.Keys() {
			if !oracle[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func toSet(xs []int32) map[int32]bool {
	s := map[int32]bool{}
	for _, x := range xs {
		s[x%128] = true
	}
	return s
}

func fromSet(seed int64, s map[int32]bool) *Treap {
	tr := New(seed)
	for k := range s {
		tr.Insert(k)
	}
	return tr
}

// TestQuickSetOps cross-validates Union/Intersect/Difference against
// map-based set algebra.
func TestQuickSetOps(t *testing.T) {
	check := func(xs, ys []int32) bool {
		sx, sy := toSet(xs), toSet(ys)
		tx, ty := fromSet(11, sx), fromSet(22, sy)

		u := Union(tx, ty)
		for k := range sx {
			if !u.Contains(k) {
				return false
			}
		}
		for k := range sy {
			if !u.Contains(k) {
				return false
			}
		}
		wantU := 0
		seen := map[int32]bool{}
		for k := range sx {
			seen[k] = true
		}
		for k := range sy {
			seen[k] = true
		}
		wantU = len(seen)
		if u.Len() != wantU {
			return false
		}

		in := Intersect(tx, ty)
		for k := range seen {
			want := sx[k] && sy[k]
			if in.Contains(k) != want {
				return false
			}
		}

		df := Difference(tx, ty)
		for k := range seen {
			want := sx[k] && !sy[k]
			if df.Contains(k) != want {
				return false
			}
		}
		// Inputs must be unmodified.
		if tx.Len() != len(sx) || ty.Len() != len(sy) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOrderInvariant: Keys() is always sorted and duplicate-free
// after arbitrary insert/delete interleavings.
func TestQuickOrderInvariant(t *testing.T) {
	check := func(ops []int32) bool {
		tr := New(7)
		for i, op := range ops {
			k := op % 256
			if k < 0 {
				k = -k
			}
			if i%2 == 0 {
				tr.Insert(k)
			} else {
				tr.Delete(k)
			}
		}
		keys := tr.Keys()
		for i := 1; i < len(keys); i++ {
			if keys[i] <= keys[i-1] {
				return false
			}
		}
		return len(keys) == tr.Len()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTreapInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(int32(rng.Intn(1 << 20)))
	}
}

func BenchmarkTreapContains(b *testing.B) {
	tr := New(1)
	for i := 0; i < 1<<16; i++ {
		tr.Insert(int32(i * 3))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Contains(int32(i % (1 << 18)))
	}
}
