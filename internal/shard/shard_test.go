package shard

import (
	"math"
	"slices"
	"testing"

	"snap/internal/bfs"
	"snap/internal/centrality"
	"snap/internal/generate"
	"snap/internal/graph"
	"snap/internal/partition"
)

// buildSharded runs the full blocked pipeline: partition the graph,
// compute the blocked permutation, relabel, and wrap into shards.
func buildSharded(t *testing.T, g *graph.Graph, k int) *Graph {
	t.Helper()
	res, err := partition.MultilevelKWay(g, k, partition.MultilevelOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	perm, bounds, err := partition.BlockedPerm(g, res.Part, k)
	if err != nil {
		t.Fatal(err)
	}
	rg, _, err := graph.Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(rg, bounds)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func shardTestGraphs() []struct {
	name string
	g    *graph.Graph
	k    int
} {
	return []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"mesh24x24", generate.RoadMesh(24, 24, 0, 3), 4},
		{"rmat11", generate.RMAT(1<<11, 8<<11, generate.DefaultRMAT(), 4), 8},
		{"disconnected", generate.ErdosRenyi(500, 400, 5), 4},
	}
}

// Sharded BFS must agree bit-for-bit with the serial reference on the
// same (relabeled) graph, at every worker count.
func TestShardBFSMatchesSerial(t *testing.T) {
	for _, tc := range shardTestGraphs() {
		t.Run(tc.name, func(t *testing.T) {
			s := buildSharded(t, tc.g, tc.k)
			rg := s.Graph()
			for _, src := range []int32{0, int32(rg.NumVertices() / 2)} {
				want := bfs.Serial(rg, src, nil).Dist
				ref := s.BFS(src, 1)
				if !slices.Equal(ref, want) {
					t.Fatalf("src %d: sharded BFS differs from serial reference", src)
				}
				for _, workers := range []int{2, 3} {
					got := s.BFS(src, workers)
					if !slices.Equal(got, ref) {
						t.Fatalf("src %d workers %d: BFS not worker-invariant", src, workers)
					}
				}
			}
		})
	}
}

// Sharded PageRank matches the centrality package on the same graph.
// Per-row additions reassociate across the two implementations, so the
// comparison is a tight float tolerance rather than bit equality; the
// worker-invariance check within the sharded path IS bitwise.
func TestShardPageRankMatchesCentrality(t *testing.T) {
	for _, tc := range shardTestGraphs() {
		t.Run(tc.name, func(t *testing.T) {
			s := buildSharded(t, tc.g, tc.k)
			rg := s.Graph()
			want := centrality.PageRank(rg, centrality.PageRankOptions{Workers: 1})
			ref := s.PageRank(PageRankOptions{Workers: 1})
			if len(ref) != len(want) {
				t.Fatalf("length mismatch: %d vs %d", len(ref), len(want))
			}
			for v := range ref {
				if math.Abs(ref[v]-want[v]) > 1e-9 {
					t.Fatalf("vertex %d: sharded %g vs centrality %g", v, ref[v], want[v])
				}
			}
			for _, workers := range []int{2, 3} {
				got := s.PageRank(PageRankOptions{Workers: workers})
				for v := range got {
					if got[v] != ref[v] {
						t.Fatalf("workers %d: PageRank not bit-identical at %d", workers, v)
					}
				}
			}
		})
	}
}

func TestShardNewRejectsBadBounds(t *testing.T) {
	g := generate.RoadMesh(8, 8, 0, 1)
	n := int32(g.NumVertices())
	for _, bounds := range [][]int32{
		nil,
		{0},
		{0, n - 1},       // doesn't reach n
		{1, n},           // doesn't start at 0
		{0, n / 2, 1, n}, // not monotone
	} {
		if _, err := New(g, bounds); err == nil {
			t.Fatalf("bounds %v accepted", bounds)
		}
	}
	if _, err := New(g, []int32{0, n / 2, n}); err != nil {
		t.Fatalf("valid bounds rejected: %v", err)
	}
}

// BFS from an invalid source returns all -1 without panicking.
func TestShardBFSInvalidSource(t *testing.T) {
	g := generate.RoadMesh(8, 8, 0, 1)
	s, err := New(g, []int32{0, int32(g.NumVertices())})
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []int32{-1, int32(g.NumVertices())} {
		for _, d := range s.BFS(src, 1) {
			if d != -1 {
				t.Fatalf("src %d: expected all -1", src)
			}
		}
	}
}
