// Package shard executes kernels shard-locally over a
// partition-blocked graph: vertices are relabeled so each partition
// part occupies one contiguous id block (partition.BlockedPerm +
// graph.Relabel), a shard owns exactly its block, and kernels run
// bulk-synchronously — each superstep scans only shard-local state,
// cross-shard traffic is batched into per-(source, destination)
// outboxes, and owners apply inbox messages serially in source-shard
// order. Shards never write another shard's state and never read
// state another shard mutates in the same phase, so runs are race-free
// and bit-identical at every worker count. This is the in-process
// stepping stone to multi-process scale-out: the outbox exchange is
// exactly the message batch a distributed runtime would put on the
// wire, while single-address-space reads of frozen per-iteration
// arrays (PageRank's share vector) stay free.
package shard

import (
	"fmt"

	"snap/internal/graph"
	"snap/internal/par"
)

// Graph is a partition-blocked graph divided into k contiguous vertex
// shards. Build one with New from graph.Relabel output and the block
// bounds from partition.BlockedPerm.
type Graph struct {
	g      *graph.Graph
	bounds []int32
	owner  []int32 // owner[v] = shard owning vertex v, O(1) lookup
}

// New wraps a partition-blocked graph with its shard bounds: shard p
// owns the contiguous vertex range [bounds[p], bounds[p+1]). bounds
// must start at 0, end at NumVertices, and be nondecreasing.
func New(g *graph.Graph, bounds []int32) (*Graph, error) {
	n := g.NumVertices()
	if len(bounds) < 2 || bounds[0] != 0 || int(bounds[len(bounds)-1]) != n {
		return nil, fmt.Errorf("shard: bounds must span [0, %d]", n)
	}
	for p := 1; p < len(bounds); p++ {
		if bounds[p] < bounds[p-1] {
			return nil, fmt.Errorf("shard: bounds not monotone at %d", p)
		}
	}
	s := &Graph{g: g, bounds: bounds, owner: make([]int32, n)}
	k := len(bounds) - 1
	par.ForEachN(k, par.Workers(), func(p int) {
		for v := bounds[p]; v < bounds[p+1]; v++ {
			s.owner[v] = int32(p)
		}
	})
	return s, nil
}

// NumShards returns the shard count.
func (s *Graph) NumShards() int { return len(s.bounds) - 1 }

// Bounds returns the shard boundary array (length NumShards+1).
func (s *Graph) Bounds() []int32 { return s.bounds }

// Graph returns the underlying (relabeled) graph.
func (s *Graph) Graph() *graph.Graph { return s.g }

// BFS runs a level-synchronous breadth-first search from src and
// returns hop distances (-1 for unreached). Each superstep has two
// phases: shards scan their local frontier, claiming owned neighbors
// directly and appending remote candidates to the outbox for the
// neighbor's owner (no remote reads — a remote distance may be mid-
// write by its owner); then owners drain their inboxes in source-shard
// order, claiming still-unvisited vertices. Every write is
// owner-exclusive and the apply order is fixed, so distances are
// bit-identical at every worker count. workers <= 0 means
// par.Workers().
func (s *Graph) BFS(src int32, workers int) []int32 {
	if workers <= 0 {
		workers = par.Workers()
	}
	g, k := s.g, s.NumShards()
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	if n == 0 || src < 0 || int(src) >= n {
		return dist
	}
	cur := make([][]int32, k)
	next := make([][]int32, k)
	outbox := make([][][]int32, k)
	for p := 0; p < k; p++ {
		outbox[p] = make([][]int32, k)
	}
	dist[src] = 0
	home := s.owner[src]
	cur[home] = append(cur[home], src)
	for depth := int32(1); ; depth++ {
		// Scan phase: expand local frontiers, batch remote candidates.
		par.ForEachN(k, workers, func(p int) {
			nxt := next[p][:0]
			out := outbox[p]
			for _, v := range cur[p] {
				for a := g.Offsets[v]; a < g.Offsets[v+1]; a++ {
					u := g.Adj[a]
					if o := s.owner[u]; o != int32(p) {
						out[o] = append(out[o], u)
					} else if dist[u] == -1 {
						dist[u] = depth
						nxt = append(nxt, u)
					}
				}
			}
			next[p] = nxt
		})
		// Exchange phase: owners drain inboxes in source-shard order.
		par.ForEachN(k, workers, func(d int) {
			nxt := next[d]
			for p := 0; p < k; p++ {
				for _, u := range outbox[p][d] {
					if dist[u] == -1 {
						dist[u] = depth
						nxt = append(nxt, u)
					}
				}
			}
			next[d] = nxt
		})
		active := false
		for p := 0; p < k; p++ {
			for d := 0; d < k; d++ {
				outbox[p][d] = outbox[p][d][:0]
			}
			cur[p], next[p] = next[p], cur[p][:0]
			if len(cur[p]) > 0 {
				active = true
			}
		}
		if !active {
			return dist
		}
	}
}

// PageRankOptions configures the sharded PageRank power iteration;
// semantics mirror centrality.PageRankOptions.
type PageRankOptions struct {
	Damping       float64 // default 0.85
	Tolerance     float64 // L1 threshold, default 1e-8
	MaxIterations int     // default 200
	Workers       int     // <= 0 means par.Workers()
}

func (o *PageRankOptions) fill() {
	if o.Damping <= 0 || o.Damping >= 1 {
		o.Damping = 0.85
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-8
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 200
	}
	if o.Workers <= 0 {
		o.Workers = par.Workers()
	}
}

// PageRank computes the stationary random-surfer distribution with
// shard-parallel power iteration, matching centrality.PageRank
// semantics (undirected pull formulation, uniform dangling
// redistribution, L1 convergence). Each shard computes shares,
// dangling mass, ranks, and deltas only for its owned block; the share
// vector is frozen during the pull phase, so cross-shard reads are
// race-free, and on a partition-blocked layout most of them land
// inside the shard's own contiguous block — the cache-locality win the
// partitioner buys. Per-shard partial sums fold in shard order, so
// results are bit-identical at every worker count.
func (s *Graph) PageRank(opt PageRankOptions) []float64 {
	opt.fill()
	g, k := s.g, s.NumShards()
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	rank := make([]float64, n)
	inv := 1 / float64(n)
	for i := range rank {
		rank[i] = inv
	}
	next := make([]float64, n)
	share := make([]float64, n)
	partial := make([]float64, k)
	for it := 0; it < opt.MaxIterations; it++ {
		par.ForEachN(k, opt.Workers, func(p int) {
			var dang float64
			for v := s.bounds[p]; v < s.bounds[p+1]; v++ {
				deg := g.Offsets[v+1] - g.Offsets[v]
				if deg == 0 {
					dang += rank[v]
					share[v] = 0
				} else {
					share[v] = rank[v] / float64(deg)
				}
			}
			partial[p] = dang
		})
		var dangling float64
		for p := 0; p < k; p++ {
			dangling += partial[p]
		}
		base := ((1-opt.Damping)*1 + opt.Damping*dangling) / float64(n)
		par.ForEachN(k, opt.Workers, func(p int) {
			var delta float64
			for v := s.bounds[p]; v < s.bounds[p+1]; v++ {
				var sum float64
				for a := g.Offsets[v]; a < g.Offsets[v+1]; a++ {
					sum += share[g.Adj[a]]
				}
				nv := base + opt.Damping*sum
				next[v] = nv
				d := nv - rank[v]
				if d < 0 {
					d = -d
				}
				delta += d
			}
			partial[p] = delta
		})
		var delta float64
		for p := 0; p < k; p++ {
			delta += partial[p]
		}
		rank, next = next, rank
		if delta < opt.Tolerance {
			break
		}
	}
	return rank
}
