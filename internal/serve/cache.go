package serve

import (
	"sync"
	"sync/atomic"
)

// resultCache is the epoch-keyed LRU over finished response bodies.
// Keys embed the epoch sequence number (see appendKey), so cache
// coherence under streaming ingest costs nothing: a Commit swaps the
// epoch pointer, every subsequent request keys under the new seq, and
// the old epoch's entries — now unreachable by construction — drift to
// the cold end of the LRU and are evicted by capacity pressure. There
// is no invalidation scan, no version check on hit, and no way to
// serve a stale body for a fresh epoch.
//
// Get is allocation-free: the caller assembles the key in its pooled
// scratch and the map lookup uses Go's []byte→string access form,
// which does not materialize the string. Bodies are immutable once
// inserted; Get returns the shared slice, which remains valid after a
// concurrent eviction (eviction only unlinks the entry).
type resultCache struct {
	mu       sync.Mutex
	maxBytes int64
	maxEnt   int
	size     int64
	m        map[string]*centry
	// Intrusive LRU list: head is most recent, tail next to evict.
	head, tail *centry

	hits, misses atomic.Uint64
}

type centry struct {
	key        string
	body       []byte
	prev, next *centry
}

// newResultCache sizes an LRU cache; either bound <= 0 disables the
// cache entirely (newResultCache returns nil and the nil methods
// behave as permanent misses).
func newResultCache(maxBytes int64, maxEnt int) *resultCache {
	if maxBytes <= 0 || maxEnt <= 0 {
		return nil
	}
	return &resultCache{
		maxBytes: maxBytes,
		maxEnt:   maxEnt,
		m:        make(map[string]*centry, 64),
	}
}

// get returns the cached body for key, or nil. The returned slice is
// shared and must not be modified.
func (c *resultCache) get(key []byte) []byte {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	e := c.m[string(key)] // compiler-recognized no-alloc lookup form
	if e == nil {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil
	}
	c.unlink(e)
	c.pushFront(e)
	body := e.body
	c.mu.Unlock()
	c.hits.Add(1)
	return body
}

// put inserts a private copy of key and body and returns the cached
// body copy (the caller's buffers are pooled scratch about to be
// reused, so the copy doubles as the response slice to write). Entries
// larger than the byte budget are not cached; the copy is still
// returned so the caller's response path is uniform.
func (c *resultCache) put(key, body []byte) []byte {
	stored := make([]byte, len(body))
	copy(stored, body)
	if c == nil || int64(len(body)) > c.maxBytes {
		return stored
	}
	e := &centry{key: string(key), body: stored}
	c.mu.Lock()
	if old := c.m[e.key]; old != nil {
		// Concurrent identical misses both computed the body; keep the
		// newer copy (they are identical by determinism).
		c.unlink(old)
		c.size -= int64(len(old.body))
		delete(c.m, old.key)
	}
	c.m[e.key] = e
	c.pushFront(e)
	c.size += int64(len(stored))
	for (c.size > c.maxBytes || len(c.m) > c.maxEnt) && c.tail != nil {
		victim := c.tail
		c.unlink(victim)
		c.size -= int64(len(victim.body))
		delete(c.m, victim.key)
	}
	c.mu.Unlock()
	return stored
}

func (c *resultCache) pushFront(e *centry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *resultCache) unlink(e *centry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// stats snapshots the counters (0s for a disabled cache).
func (c *resultCache) stats() (hits, misses uint64, entries int, bytes int64) {
	if c == nil {
		return 0, 0, 0, 0
	}
	hits, misses = c.hits.Load(), c.misses.Load()
	c.mu.Lock()
	entries, bytes = len(c.m), c.size
	c.mu.Unlock()
	return hits, misses, entries, bytes
}
