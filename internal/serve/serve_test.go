package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"snap/internal/bfs"
	"snap/internal/generate"
	"snap/internal/graph"
	"snap/internal/ingest"
	"snap/internal/sssp"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return generate.RMAT(1<<10, 1<<12, generate.DefaultRMAT(), 7)
}

func weightedGraph(t *testing.T) *graph.Graph {
	t.Helper()
	base := generate.RMAT(1<<9, 1<<11, generate.DefaultRMAT(), 8)
	rng := rand.New(rand.NewSource(9))
	edges := base.EdgeEndpoints()
	for i := range edges {
		edges[i].W = float64(1 + rng.Intn(10))
	}
	return graph.MustBuild(base.NumVertices(), edges, graph.BuildOptions{Weighted: true})
}

func newTestServer(t *testing.T, cfg Config, g *graph.Graph) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	if err := s.RegisterStatic("g", g); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

type distResp struct {
	Graph   string    `json:"graph"`
	Seq     uint64    `json:"seq"`
	Src     int64     `json:"src"`
	Reached int       `json:"reached"`
	Ecc     int32     `json:"ecc"`
	Dst     []int32   `json:"dst"`
	Dist    []float64 `json:"dist"`
	Error   string    `json:"error"`
}

// TestBFSMatchesKernel pins response correctness bit-for-bit against a
// direct kernel run, for unlimited and depth-limited queries, through
// the full coalescing + caching stack.
func TestBFSMatchesKernel(t *testing.T) {
	g := testGraph(t)
	_, ts := newTestServer(t, Config{CoalesceWindow: 100 * time.Microsecond}, g)

	for _, tc := range []struct {
		src      int32
		maxDepth int32
	}{{3, -1}, {3, 2}, {200, -1}, {200, 1}, {5, 0}} {
		want := bfs.Serial(g, tc.src, nil)
		url := fmt.Sprintf("%s/graphs/g/bfs?src=%d&dst=0,1,9,700", ts.URL, tc.src)
		if tc.maxDepth >= 0 {
			url += fmt.Sprintf("&maxdepth=%d", tc.maxDepth)
		}
		var got distResp
		if code := getJSON(t, url, &got); code != 200 {
			t.Fatalf("src=%d depth=%d: status %d (%s)", tc.src, tc.maxDepth, code, got.Error)
		}
		wantReached, wantEcc := 0, int32(-1)
		for _, d := range want.Dist {
			if d >= 0 && (tc.maxDepth < 0 || d <= tc.maxDepth) {
				wantReached++
				if d > wantEcc {
					wantEcc = d
				}
			}
		}
		if got.Reached != wantReached || got.Ecc != wantEcc {
			t.Fatalf("src=%d depth=%d: reached/ecc = %d/%d, want %d/%d",
				tc.src, tc.maxDepth, got.Reached, got.Ecc, wantReached, wantEcc)
		}
		for j, d := range got.Dst {
			wd := want.Dist[d]
			if tc.maxDepth >= 0 && wd > tc.maxDepth {
				wd = -1
			}
			if int32(got.Dist[j]) != wd {
				t.Fatalf("src=%d depth=%d: dist[%d] = %g, want %d", tc.src, tc.maxDepth, d, got.Dist[j], wd)
			}
		}
	}
}

// TestSSSPMatchesKernel does the same for weighted distances.
func TestSSSPMatchesKernel(t *testing.T) {
	g := weightedGraph(t)
	_, ts := newTestServer(t, Config{CoalesceWindow: 100 * time.Microsecond}, g)
	for _, src := range []int32{0, 17, 400} {
		want := sssp.Dijkstra(g, src)
		var got distResp
		url := fmt.Sprintf("%s/graphs/g/sssp?src=%d&dst=1,2,3,499", ts.URL, src)
		if code := getJSON(t, url, &got); code != 200 {
			t.Fatalf("src=%d: status %d (%s)", src, code, got.Error)
		}
		for j, d := range got.Dst {
			wd := want.Dist[d]
			if math.IsInf(wd, 1) {
				wd = -1
			}
			if got.Dist[j] != wd {
				t.Fatalf("src=%d: dist[%d] = %g, want %g", src, d, got.Dist[j], wd)
			}
		}
	}
}

// TestCoalescing pins the batching behavior: concurrent queries inside
// one window — many of them for the same source — execute as a single
// batch with deduplicated traversals, and every response is identical
// to an uncoalesced server's.
func TestCoalescing(t *testing.T) {
	g := testGraph(t)
	s, ts := newTestServer(t, Config{CoalesceWindow: 20 * time.Millisecond, CacheBytes: -1}, g)
	_, direct := newTestServer(t, Config{CoalesceWindow: -1}, g)

	const clients = 16
	urls := make([]string, clients)
	for i := range urls {
		// 4 distinct sources across 16 clients → 12 traversals saved.
		urls[i] = fmt.Sprintf("/graphs/g/bfs?src=%d&dst=1,2,3", 50+i%4)
	}
	got := make([]distResp, clients)
	var wg sync.WaitGroup
	for i := range urls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if code := getJSON(t, ts.URL+urls[i], &got[i]); code != 200 {
				t.Errorf("client %d: status %d", i, code)
			}
		}(i)
	}
	wg.Wait()
	for i := range urls {
		var want distResp
		if code := getJSON(t, direct.URL+urls[i], &want); code != 200 {
			t.Fatalf("direct %d: status %d", i, code)
		}
		want.Seq = got[i].Seq
		if fmt.Sprint(got[i]) != fmt.Sprint(want) {
			t.Fatalf("client %d: coalesced %+v != direct %+v", i, got[i], want)
		}
	}
	st := s.Snapshot()
	if st.Batches == 0 || st.BatchedReqs != clients {
		t.Fatalf("batches=%d batched=%d, want >=1 and %d", st.Batches, st.BatchedReqs, clients)
	}
	if st.DedupSaved < clients-8 {
		t.Fatalf("dedup_saved=%d, want >= %d (16 clients, 4 sources)", st.DedupSaved, clients-8)
	}
}

// TestCacheHitAndEpochInvalidation exercises the result cache against
// a live ingest stream: repeat queries hit, a commit silently retires
// the old epoch's entries (the new seq keys fresh computations), and
// post-commit responses see the new edge.
func TestCacheHitAndEpochInvalidation(t *testing.T) {
	base := generate.RMAT(256, 1024, generate.DefaultRMAT(), 5)
	st := ingest.New(base, ingest.Options{})
	s := New(Config{CoalesceWindow: -1})
	if err := s.RegisterStream("live", st); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Pick an unreached pair, then connect it directly.
	r0 := bfs.Serial(base, 0, nil)
	far := int32(-1)
	for v := int32(1); int(v) < base.NumVertices(); v++ {
		if r0.Dist[v] < 0 {
			far = v
			break
		}
	}
	if far < 0 {
		t.Skip("RMAT instance is connected from 0; no unreached pair")
	}
	url := fmt.Sprintf("%s/graphs/live/bfs?src=0&dst=%d", ts.URL, far)

	var before distResp
	getJSON(t, url, &before)
	getJSON(t, url, &before)
	if st := s.Snapshot(); st.CacheHits == 0 {
		t.Fatalf("repeat query did not hit the cache: %+v", st)
	}
	if before.Dist[0] != -1 {
		t.Fatalf("pre-commit dist 0→%d = %g, want unreached", far, before.Dist[0])
	}

	if err := st.Add(0, far); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	var after distResp
	getJSON(t, url, &after)
	if after.Seq == before.Seq {
		t.Fatalf("post-commit response still keyed to epoch %d", before.Seq)
	}
	if after.Dist[0] != 1 {
		t.Fatalf("post-commit dist 0→%d = %g, want 1", far, after.Dist[0])
	}
}

// TestAdmissionControl pins the 429 fast-fail: with one execution slot
// held, a direct heavy query is rejected rather than queued.
func TestAdmissionControl(t *testing.T) {
	g := testGraph(t)
	s, ts := newTestServer(t, Config{CoalesceWindow: -1, MaxInFlight: 1, MaxWait: 1}, g)
	if !s.lim.tryAcquire() {
		t.Fatal("could not occupy the only slot")
	}
	defer s.lim.release()
	var resp distResp
	if code := getJSON(t, ts.URL+"/graphs/g/bfs?src=1", &resp); code != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429", code)
	}
	if st := s.Snapshot(); st.Rejected == 0 {
		t.Fatalf("rejection not counted: %+v", st)
	}
}

// TestQueryTimeout pins cancellation propagation: an already-expired
// deadline reaches the kernel's poll hook and surfaces as 504, for
// both the level-synchronous and the bucket loop.
func TestQueryTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{CoalesceWindow: -1, QueryTimeout: time.Nanosecond}, weightedGraph(t))
	_ = s
	for _, op := range []string{"bfs", "sssp"} {
		var resp distResp
		if code := getJSON(t, fmt.Sprintf("%s/graphs/g/%s?src=1", ts.URL, op), &resp); code != http.StatusGatewayTimeout {
			t.Fatalf("%s with expired deadline answered %d, want 504", op, code)
		}
	}
}

// TestClosedGraph pins the use-after-Close guard end to end: closing a
// registered graph's backing container turns every query into an HTTP
// 410, not a fault on the dead mapping.
func TestClosedGraph(t *testing.T) {
	g := testGraph(t)
	g.SetCloser(func() error { return nil }) // stand-in for an mmap release
	_, ts := newTestServer(t, Config{CoalesceWindow: -1}, g)
	if code := getJSON(t, ts.URL+"/graphs/g/bfs?src=1", nil); code != 200 {
		t.Fatalf("pre-close query: %d", code)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	var resp distResp
	if code := getJSON(t, ts.URL+"/graphs/g/bfs?src=2", &resp); code != http.StatusGone {
		t.Fatalf("post-close query answered %d, want 410", code)
	}
	if !strings.Contains(resp.Error, "Close") {
		t.Fatalf("error %q does not mention Close", resp.Error)
	}
}

// TestAnalyticsOps smoke-checks the artifact-backed operations and the
// subgraph endpoint through the HTTP surface.
func TestAnalyticsOps(t *testing.T) {
	g := testGraph(t)
	s, ts := newTestServer(t, Config{CoalesceWindow: -1}, g)
	for _, q := range []string{
		"/graphs/g/centrality?kind=degree&k=5",
		"/graphs/g/centrality?kind=pagerank&k=5",
		"/graphs/g/centrality?kind=closeness&k=5",
		"/graphs/g/community?v=1,2,3",
		"/graphs/g/components?v=0,5",
		"/graphs/g/subgraph?v=0,1,2,3,4,5,6,7",
		"/graphs/g/estimate?src=1&dst=9",
		"/graphs/g",
	} {
		var out map[string]any
		if code := getJSON(t, ts.URL+q, &out); code != 200 {
			t.Fatalf("GET %s: status %d (%v)", q, code, out["error"])
		}
	}
	// Artifact singleflight: pagerank ran once despite two requests.
	var out map[string]any
	if code := getJSON(t, ts.URL+"/graphs/g/centrality?kind=pagerank&k=3", &out); code != 200 {
		t.Fatalf("second pagerank: %d", code)
	}
	_ = s
	// Malformed requests fail cleanly.
	for q, want := range map[string]int{
		"/graphs/g/bfs":                   http.StatusBadRequest, // no src
		"/graphs/g/bfs?src=x":             http.StatusBadRequest,
		"/graphs/g/sssp?src=1&maxdepth=2": http.StatusBadRequest,
		"/graphs/g/nosuchop?src=1":        http.StatusNotFound,
		"/graphs/nosuchgraph/bfs?src=1":   http.StatusNotFound,
		"/graphs/g/bfs?src=99999999":      http.StatusBadRequest,
	} {
		if code := getJSON(t, ts.URL+q, nil); code != want {
			t.Fatalf("GET %s: status %d, want %d", q, code, want)
		}
	}
}

// TestStreamMutation drives the POST surface: stage edges, commit, and
// observe the epoch advance.
func TestStreamMutation(t *testing.T) {
	st, err := ingest.NewEmpty(16, false, false, ingest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{CoalesceWindow: -1})
	if err := s.RegisterStream("live", st); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/graphs/live/edges", "application/json",
		strings.NewReader(`{"add":[[0,1],[1,2],[2,3]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("edges: status %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/graphs/live/commit", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var stats ingest.CommitStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Added != 3 || stats.Seq == 0 {
		t.Fatalf("commit stats %+v, want 3 added at seq > 0", stats)
	}
	var dr distResp
	getJSON(t, ts.URL+"/graphs/live/bfs?src=0&dst=3", &dr)
	if dr.Dist[0] != 3 {
		t.Fatalf("dist 0→3 = %g, want 3 after commit", dr.Dist[0])
	}
}

// TestCacheHitZeroAlloc pins the headline steady-state claim: a result
// cache hit through the full answer path — parse, canonical key, LRU
// lookup, body return — performs zero heap allocations. The HTTP
// plumbing above answer (ServeMux, ResponseWriter) is excluded; it is
// the stdlib's and out of scope for the claim.
func TestCacheHitZeroAlloc(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race-mode sync.Pool drops cached scratch at random; the claim is enforced by the normal-build run")
	}
	g := testGraph(t)
	s, _ := newTestServer(t, Config{}, g)
	const q = "src=3&dst=1,2,9&maxdepth=4"
	if body, code := s.Answer(context.Background(), "g", "bfs", q); code != 200 {
		t.Fatalf("warm query failed: %d %s", code, body)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, code := s.Answer(context.Background(), "g", "bfs", q); code != 200 {
			t.Fatal("hit path failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocates %.1f times per query, want 0", allocs)
	}
}

// TestLRUEviction pins the cache bounds: inserting past the byte
// budget evicts the coldest entries first.
func TestLRUEviction(t *testing.T) {
	c := newResultCache(256, 100)
	body := make([]byte, 100)
	c.put([]byte("a"), body)
	c.put([]byte("b"), body)
	if c.get([]byte("a")) == nil { // touch: a is now MRU
		t.Fatal("a missing before eviction")
	}
	c.put([]byte("c"), body) // 300 bytes > 256: evicts LRU = b
	if c.get([]byte("b")) != nil {
		t.Fatal("b survived eviction")
	}
	if c.get([]byte("a")) == nil || c.get([]byte("c")) == nil {
		t.Fatal("a or c wrongly evicted")
	}
	_, _, entries, bytes := c.stats()
	if entries != 2 || bytes != 200 {
		t.Fatalf("entries=%d bytes=%d, want 2/200", entries, bytes)
	}
}
