package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// errBusy is the admission-control rejection: the server is saturated
// with heavy queries and this request should fast-fail (HTTP 429)
// rather than queue unboundedly. Queueing work the CPU can't reach
// only converts overload into timeout storms; a bounded waiting room
// plus fast rejection keeps latency honest under load.
var errBusy = errors.New("serve: too many in-flight queries")

// limiter bounds concurrently executing heavy queries with a
// chan-based semaphore. Two admission styles: tryAcquire for direct
// heavy queries (non-blocking, fail straight to 429) and acquire for
// coalesced batch executors (blocking — a batch aggregates many
// waiters, so parking it briefly is cheaper than failing them all —
// but only through a bounded waiting room).
type limiter struct {
	slots    chan struct{}
	maxWait  int64
	waiting  atomic.Int64
	rejected atomic.Uint64
}

// newLimiter builds a limiter with n execution slots and a waiting
// room of maxWait blocked acquirers. n <= 0 means unlimited: every
// method succeeds immediately (the nil limiter).
func newLimiter(n int, maxWait int) *limiter {
	if n <= 0 {
		return nil
	}
	if maxWait < 0 {
		maxWait = 0
	}
	return &limiter{slots: make(chan struct{}, n), maxWait: int64(maxWait)}
}

func (l *limiter) tryAcquire() bool {
	if l == nil {
		return true
	}
	select {
	case l.slots <- struct{}{}:
		return true
	default:
		l.rejected.Add(1)
		return false
	}
}

func (l *limiter) acquire(ctx context.Context) error {
	if l == nil {
		return nil
	}
	select {
	case l.slots <- struct{}{}:
		return nil
	default:
	}
	if l.waiting.Add(1) > l.maxWait {
		l.waiting.Add(-1)
		l.rejected.Add(1)
		return errBusy
	}
	defer l.waiting.Add(-1)
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (l *limiter) release() {
	if l == nil {
		return
	}
	<-l.slots
}

func (l *limiter) rejectedCount() uint64 {
	if l == nil {
		return 0
	}
	return l.rejected.Load()
}
