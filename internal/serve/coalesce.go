package serve

import (
	"context"
	"math"
	"sort"
	"time"

	"snap/internal/bfs"
	"snap/internal/frontier"
	"snap/internal/sssp"
)

// Request coalescing for single-source distance queries, the dominant
// workload of a graph-serving tier. Concurrent BFS (hop-distance) or
// SSSP (weighted-distance) requests that arrive within a small window
// are drained into one batch which:
//
//   - pins the epoch once (one Pin/Close pair instead of N),
//   - deduplicates sources (N requests for the same hot source run ONE
//     traversal and fan the extraction out),
//   - runs distinct sources through bfs.MultiSourceWorkspace, whose
//     per-worker pooled engines make the whole sweep allocate O(workers)
//     scratch instead of O(N·n) — the zero-alloc steady state — and
//   - occupies one admission slot for the whole batch, so a burst of
//     light queries can't starve heavy analytics of slots.
//
// Depth-limited BFS requests coalesce with unlimited ones: the batch
// runs every source to the deepest requested level and each waiter's
// view is masked down to its own bound. The frontier engine labels
// exactly the vertices at depth <= MaxDepth, and within one traversal
// the visitation order is depth-monotone, so masking (dist > bound →
// unreached, reached = prefix of the order within bound) reproduces
// the depth-limited traversal bit for bit.
//
// The window trades a bounded latency add (default 500µs) for that
// aggregation; window <= 0 disables coalescing and every query runs
// standalone under its own admission slot.

const (
	laneBFS = iota
	laneSSSP
	laneCount
)

// distWaiter is one in-flight distance query: its inputs, its slot in
// a batch, and the result fields the executor fills before closing
// done. dsts is a private copy — the request's parse scratch is pooled
// and returns to the pool while the waiter is still queued.
type distWaiter struct {
	src      int32
	maxDepth int32 // -1 = unlimited; BFS lane only
	dsts     []int32
	ctx      context.Context

	done    chan struct{}
	err     error
	seq     uint64
	hop     []int32   // BFS: per-dst hop distance, -1 unreached
	wdist   []float64 // SSSP: per-dst weighted distance, -1 unreached
	reached int
	ecc     int32
}

type coalescer struct {
	s *Server
	h *handle

	mu      chan struct{} // 1-buffered mutex; select-able
	pending [laneCount][]*distWaiter
}

func newCoalescer(s *Server, h *handle) *coalescer {
	c := &coalescer{s: s, h: h, mu: make(chan struct{}, 1)}
	c.mu <- struct{}{}
	return c
}

// distQuery answers one distance query, batched behind the coalescing
// window when enabled, standalone otherwise.
func (c *coalescer) distQuery(ctx context.Context, lane int, src, maxDepth int32, dsts []int32) (*distWaiter, error) {
	w := &distWaiter{
		src:      src,
		maxDepth: maxDepth,
		dsts:     append([]int32(nil), dsts...),
		ctx:      ctx,
		done:     make(chan struct{}),
	}
	if c.s.cfg.CoalesceWindow <= 0 {
		c.runSingle(lane, w)
		if w.err != nil {
			return nil, w.err
		}
		return w, nil
	}
	if err := c.submit(lane, w); err != nil {
		return nil, err
	}
	select {
	case <-w.done:
		if w.err != nil {
			return nil, w.err
		}
		return w, nil
	case <-ctx.Done():
		// The batch executor may still fill w later; nobody reads it.
		return nil, ctx.Err()
	}
}

// submit queues w on a lane, arming the lane's flush timer when it is
// the first waiter. The pending queue doubles as the waiting room:
// when it exceeds the admission bound the request fast-fails instead
// of joining a batch the CPU is not keeping up with.
func (c *coalescer) submit(lane int, w *distWaiter) error {
	<-c.mu
	if len(c.pending[lane]) >= c.s.waitRoom() {
		c.mu <- struct{}{}
		c.s.lim.rejected.Add(1)
		return errBusy
	}
	first := len(c.pending[lane]) == 0
	c.pending[lane] = append(c.pending[lane], w)
	c.mu <- struct{}{}
	if first {
		time.AfterFunc(c.s.cfg.CoalesceWindow, func() { c.fire(lane) })
	}
	return nil
}

func (c *coalescer) fire(lane int) {
	<-c.mu
	batch := c.pending[lane]
	c.pending[lane] = nil
	c.mu <- struct{}{}
	if len(batch) > 0 {
		c.execute(lane, batch)
	}
}

func (c *coalescer) execute(lane int, batch []*distWaiter) {
	finish := func(ws []*distWaiter, err error) {
		for _, w := range ws {
			w.err = err
			close(w.done)
		}
	}
	// Drop waiters whose client already went away; their traversal
	// would be pure waste.
	live := batch[:0]
	for _, w := range batch {
		if err := w.ctx.Err(); err != nil {
			finish([]*distWaiter{w}, err)
			continue
		}
		live = append(live, w)
	}
	if len(live) == 0 {
		return
	}
	// One admission slot covers the whole batch. Blocking here is
	// deliberate: the batch aggregates many clients, and the pending
	// queue bound in submit already capped how much work can stack up.
	if err := c.s.lim.acquire(context.Background()); err != nil {
		finish(live, err)
		return
	}
	defer c.s.lim.release()

	g, seq, release, err := c.h.pin()
	if err != nil {
		finish(live, err)
		return
	}
	defer release()

	// Source dedupe: one traversal per distinct source, results fanned
	// out to every waiter of that source.
	bySrc := make(map[int32][]*distWaiter, len(live))
	sources := make([]int32, 0, len(live))
	valid := 0
	for _, w := range live {
		if int(w.src) >= g.NumVertices() {
			finish([]*distWaiter{w}, errBadVertex)
			continue
		}
		valid++
		if bySrc[w.src] == nil {
			sources = append(sources, w.src)
		}
		bySrc[w.src] = append(bySrc[w.src], w)
	}
	if len(sources) == 0 {
		return
	}
	c.s.batches.Add(1)
	c.s.batchedReqs.Add(uint64(valid))
	c.s.dedupSaved.Add(uint64(valid - len(sources)))

	switch lane {
	case laneBFS:
		// Deepest requested bound wins; each waiter masks back down.
		eff := int32(0)
		for _, ws := range bySrc {
			for _, w := range ws {
				if w.maxDepth < 0 {
					eff = -1
				} else if eff >= 0 && w.maxDepth > eff {
					eff = w.maxDepth
				}
			}
		}
		bfs.MultiSourceWorkspace(g, sources, eff, c.s.workers(), func(_, i int, ws *bfs.Workspace) {
			for _, w := range bySrc[sources[i]] {
				w.seq = seq
				fillBFS(w, ws)
			}
		})
		for _, src := range sources {
			finish(bySrc[src], nil)
		}
	case laneSSSP:
		ws := sssp.AcquireWorkspace()
		defer sssp.ReleaseWorkspace(ws)
		for _, src := range sources {
			group := bySrc[src]
			cancel := func() bool { return allDone(group) }
			ws.Run(g, src, sssp.DeltaSteppingOptions{Workers: c.s.workers(), Cancel: cancel})
			if allDone(group) {
				finish(group, context.Canceled)
				continue
			}
			for _, w := range group {
				w.seq = seq
				fillSSSP(w, ws)
			}
			finish(group, nil)
		}
	}
}

// runSingle is the uncoalesced path: one traversal per request under
// its own admission slot, with the request context threaded into the
// kernel's cancellation hook.
func (c *coalescer) runSingle(lane int, w *distWaiter) {
	if !c.s.lim.tryAcquire() {
		w.err = errBusy
		return
	}
	defer c.s.lim.release()
	g, seq, release, err := c.h.pin()
	if err != nil {
		w.err = err
		return
	}
	defer release()
	if int(w.src) >= g.NumVertices() {
		w.err = errBadVertex
		return
	}
	w.seq = seq
	cancel := func() bool { return w.ctx.Err() != nil }
	switch lane {
	case laneBFS:
		ws := bfs.AcquireWorkspace(g.NumVertices())
		defer bfs.ReleaseWorkspace(ws)
		ws.RunOptions(g, w.src, frontier.Options{
			Workers:  c.s.workers(),
			MaxDepth: w.maxDepth,
			Alpha:    frontier.DefaultAlpha,
			Cancel:   cancel,
		})
		if err := w.ctx.Err(); err != nil {
			w.err = err
			return
		}
		fillBFS(w, ws)
	case laneSSSP:
		ws := sssp.AcquireWorkspace()
		defer sssp.ReleaseWorkspace(ws)
		ws.Run(g, w.src, sssp.DeltaSteppingOptions{Workers: c.s.workers(), Cancel: cancel})
		if err := w.ctx.Err(); err != nil {
			w.err = err
			return
		}
		fillSSSP(w, ws)
	}
}

// fillBFS extracts one waiter's view from a finished traversal that
// may have run deeper than the waiter asked: distances beyond the
// waiter's bound read as unreached, and the reached count is the
// prefix of the visitation order within the bound (the order is
// depth-monotone, so a binary search finds the cut).
func fillBFS(w *distWaiter, ws *bfs.Workspace) {
	bound := w.maxDepth
	w.hop = make([]int32, len(w.dsts))
	for j, d := range w.dsts {
		h := int32(-1)
		if int(d) < ws.Len() {
			h = ws.Dist(d)
			if bound >= 0 && h > bound {
				h = -1
			}
		}
		w.hop[j] = h
	}
	order := ws.Order()
	if bound < 0 || ws.MaxDist() <= bound {
		w.reached = len(order)
		w.ecc = ws.MaxDist()
		return
	}
	cut := sort.Search(len(order), func(i int) bool { return ws.Dist(order[i]) > bound })
	w.reached = cut
	w.ecc = ws.Dist(order[cut-1]) // cut >= 1: the source is at depth 0
}

func fillSSSP(w *distWaiter, ws *sssp.Workspace) {
	dist := ws.Dist()
	w.wdist = make([]float64, len(w.dsts))
	for j, d := range w.dsts {
		v := -1.0
		if int(d) < len(dist) && !math.IsInf(dist[d], 1) {
			v = dist[d]
		}
		w.wdist[j] = v
	}
	w.reached = len(ws.Reached())
}

func allDone(ws []*distWaiter) bool {
	for _, w := range ws {
		if w.ctx.Err() == nil {
			return false
		}
	}
	return true
}
