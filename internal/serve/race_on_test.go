//go:build race

package serve

// See race_off_test.go.
const raceDetectorEnabled = true
