package serve

import "sync"

// artifactCache holds expensive per-epoch derived structures — exact
// centrality vectors, community assignments, component labelings,
// landmark distance oracles — computed at most once per (epoch, kind)
// and shared by every request against that epoch. Builds are
// singleflighted: the first request for a kind computes while later
// requests wait on its done channel, so a burst of identical cold
// queries costs one kernel run, not N.
//
// Like the result cache, invalidation is the epoch swap itself: the
// cache remembers which seq its entries belong to and drops the whole
// map the first time a newer seq is requested. Only the latest epoch's
// artifacts are retained — an intentional single-version policy, since
// the server always answers from the newest epoch.
type artifactCache struct {
	mu  sync.Mutex
	seq uint64
	m   map[string]*artifact
}

type artifact struct {
	done chan struct{}
	val  any
	err  error
}

// get returns the artifact for (seq, kind), building it with build on
// first request. Failed builds are not retained: the next request
// retries. build runs without the cache lock held; the caller must
// keep its epoch pinned for the duration of the call so build's graph
// stays valid.
func (a *artifactCache) get(seq uint64, kind string, build func() (any, error)) (any, error) {
	a.mu.Lock()
	if a.m == nil || seq != a.seq {
		a.m = make(map[string]*artifact, 4)
		a.seq = seq
	}
	if art := a.m[kind]; art != nil {
		a.mu.Unlock()
		<-art.done
		return art.val, art.err
	}
	art := &artifact{done: make(chan struct{})}
	a.m[kind] = art
	a.mu.Unlock()

	art.val, art.err = build()
	close(art.done)
	if art.err != nil {
		a.mu.Lock()
		if a.seq == seq && a.m[kind] == art {
			delete(a.m, kind)
		}
		a.mu.Unlock()
	}
	return art.val, art.err
}
