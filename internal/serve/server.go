// Package serve is the long-lived graph-analytics serving tier: an
// HTTP/JSON front end over the repo's kernels, built for sustained
// concurrent query load against graphs that are either mmap'd SNP2
// containers (static handles) or live snapshot-epoch ingest streams
// (dynamic handles, queried while a writer commits).
//
// Three mechanisms carry the performance story:
//
//   - Request coalescing (coalesce.go): concurrent single-source
//     distance queries inside a small window run as ONE multi-source
//     sweep over pooled workspaces, with source dedupe and a single
//     epoch pin and admission slot for the batch.
//
//   - An epoch-keyed LRU result cache (cache.go): finished response
//     bodies keyed by (graph, epoch seq, canonical query). Epoch
//     pointer swaps invalidate for free — new requests key under the
//     new seq — and a cache hit allocates nothing (pooled scratch,
//     no-alloc map lookup, pre-built body bytes).
//
//   - Zero-alloc steady state: the kernels already run on epoch-stamped
//     pooled workspaces; the serving layer adds pooled parse/key/body
//     scratch so the per-query garbage is bounded by the miss rate, not
//     the request rate.
//
// Expensive per-epoch artifacts (exact centrality vectors, community
// assignments, component labelings, landmark distance oracles) are
// computed once per epoch and singleflighted (artifacts.go). Admission
// control bounds in-flight heavy queries and fast-fails the overflow
// with HTTP 429 (limit.go). Request contexts thread into the kernels'
// level/bucket-loop cancellation hooks, so abandoned queries stop
// burning cores at the next synchronization boundary.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"snap/internal/centrality"
	"snap/internal/community"
	"snap/internal/components"
	"snap/internal/graph"
	"snap/internal/ingest"
	"snap/internal/metrics"
	"snap/internal/sketch"
)

// Defaults for the Config zero value.
const (
	DefaultCoalesceWindow = 500 * time.Microsecond
	DefaultCacheBytes     = 64 << 20
	DefaultCacheEntries   = 8192
	DefaultMaxWait        = 1024
)

// Config tunes a Server. The zero value serves with coalescing, a
// 64 MiB result cache, and 2×GOMAXPROCS admission slots; negative
// values disable the corresponding mechanism.
type Config struct {
	// CoalesceWindow is how long the first distance query of a batch
	// waits for companions. 0 means DefaultCoalesceWindow; < 0
	// disables coalescing (every query runs standalone).
	CoalesceWindow time.Duration
	// CacheBytes / CacheEntries bound the result cache. 0 means the
	// defaults; either < 0 disables the cache.
	CacheBytes   int64
	CacheEntries int
	// MaxInFlight bounds concurrently executing heavy queries
	// (traversals, artifact builds, subgraph extraction). 0 means
	// 2×GOMAXPROCS; < 0 means unlimited.
	MaxInFlight int
	// MaxWait bounds the admission waiting room and each coalescing
	// lane's pending queue; overflow fast-fails with 429. 0 means
	// DefaultMaxWait.
	MaxWait int
	// Workers caps the parallelism of each kernel invocation; <= 0
	// lets the kernels use par.Workers().
	Workers int
	// QueryTimeout, when > 0, bounds each query's execution; expiry
	// cancels the running kernel at its next poll point.
	QueryTimeout time.Duration
}

func (c *Config) fill() {
	if c.CoalesceWindow == 0 {
		c.CoalesceWindow = DefaultCoalesceWindow
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = DefaultCacheBytes
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = DefaultCacheEntries
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxWait == 0 {
		c.MaxWait = DefaultMaxWait
	}
}

// Server routes analytics queries over a set of registered graph
// handles. Safe for concurrent use; graphs may be registered while
// queries are in flight.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	cache *resultCache
	lim   *limiter

	mu      sync.RWMutex
	handles map[string]*handle

	// Coalescing counters, aggregated across handles.
	batches, batchedReqs, dedupSaved atomic.Uint64
}

// handle is one registered graph: a static *graph.Graph (possibly an
// mmap'd container) or a live ingest stream, plus the per-handle
// coalescer and per-epoch artifact cache.
type handle struct {
	name   string
	static *graph.Graph
	stream *ingest.Stream
	coal   *coalescer
	art    artifactCache
}

// curSeq reads the handle's current epoch sequence without pinning:
// the cheap, allocation-free read the cache-hit path keys on. Static
// handles are forever epoch 0.
func (h *handle) curSeq() uint64 {
	if h.stream != nil {
		return h.stream.Seq()
	}
	return 0
}

// pin acquires a stable view of the handle's graph: for streams a
// pinned epoch (released by the returned func), for static graphs the
// graph itself after the use-after-Close guard. Every compute path
// goes through pin, so a closed mmap'd graph turns into an HTTP 410
// instead of a fault on the dead mapping.
func (h *handle) pin() (*graph.Graph, uint64, func(), error) {
	if h.stream != nil {
		e := h.stream.Pin()
		return e.Graph(), e.Seq(), e.Close, nil
	}
	if err := h.static.CheckOpen(); err != nil {
		return nil, 0, nil, err
	}
	return h.static, 0, func() {}, nil
}

// New builds a Server and its route table.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:     cfg,
		cache:   newResultCache(cfg.CacheBytes, cfg.CacheEntries),
		lim:     newLimiter(cfg.MaxInFlight, cfg.MaxWait),
		handles: make(map[string]*handle),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeBody(w, http.StatusOK, []byte(`{"ok":true}`))
	})
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /graphs", s.handleList)
	mux.HandleFunc("GET /graphs/{name}", s.handleInfo)
	mux.HandleFunc("GET /graphs/{name}/{op}", s.handleQuery)
	mux.HandleFunc("POST /graphs/{name}/edges", s.handleEdges)
	mux.HandleFunc("POST /graphs/{name}/commit", s.handleCommit)
	s.mux = mux
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) workers() int  { return s.cfg.Workers }
func (s *Server) waitRoom() int { return s.cfg.MaxWait }

// RegisterStatic serves g under name. The server does not take
// ownership: closing an mmap'd g while registered is safe (queries
// fail with 410 Gone) but is the operator's lifecycle to manage.
func (s *Server) RegisterStatic(name string, g *graph.Graph) error {
	return s.register(&handle{name: name, static: g})
}

// RegisterStream serves the live epochs of st under name; queries pin
// the newest committed epoch.
func (s *Server) RegisterStream(name string, st *ingest.Stream) error {
	return s.register(&handle{name: name, stream: st})
}

func (s *Server) register(h *handle) error {
	if !validName(h.name) {
		return fmt.Errorf("serve: invalid graph name %q (want [A-Za-z0-9._-]+)", h.name)
	}
	h.coal = newCoalescer(s, h)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.handles[h.name]; ok {
		return fmt.Errorf("serve: graph %q already registered", h.name)
	}
	s.handles[h.name] = h
	return nil
}

// validName keeps graph names JSON- and cache-key-safe without any
// escaping on the hot path.
func validName(s string) bool {
	if s == "" || len(s) > 128 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

func (s *Server) lookup(name string) *handle {
	s.mu.RLock()
	h := s.handles[name]
	s.mu.RUnlock()
	return h
}

// Request-level errors and their HTTP mapping.

type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

var (
	errBadVertex = badRequest("vertex id out of range")
	errUnknownOp = errors.New("serve: unknown operation")
)

// StatusClientClosed is the non-standard (nginx-convention) status for
// a query abandoned by its client before completion.
const StatusClientClosed = 499

func statusFor(err error) int {
	var br *badRequestError
	switch {
	case errors.As(err, &br):
		return http.StatusBadRequest
	case errors.Is(err, errBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, graph.ErrClosed):
		return http.StatusGone
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return StatusClientClosed
	case errors.Is(err, errUnknownOp):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

func errJSON(err error) []byte {
	b, _ := json.Marshal(map[string]string{"error": err.Error()})
	return b
}

// Answer runs one analytics query against a registered graph and
// returns the JSON body and HTTP status, bypassing the HTTP plumbing.
// This is the embeddable entry point — the load harness drives it to
// measure the serving core without socket noise, and in-process
// consumers get the same coalescing/caching/admission behavior as
// remote clients. A result-cache hit allocates nothing.
func (s *Server) Answer(ctx context.Context, graphName, op, rawQuery string) ([]byte, int) {
	h := s.lookup(graphName)
	if h == nil {
		return []byte(`{"error":"unknown graph"}`), http.StatusNotFound
	}
	return s.answer(ctx, h, op, rawQuery)
}

// answer is the core query path, HTTP machinery excluded: parse the
// raw query into pooled scratch, key the result cache under the
// handle's CURRENT epoch seq, and on a hit return the cached body —
// allocating nothing. On a miss, compute (which pins an epoch; the
// pinned seq may be newer than the keyed one if a commit raced) and
// insert under the seq the computation actually observed.
func (s *Server) answer(ctx context.Context, h *handle, op, rawQuery string) ([]byte, int) {
	sc := getScratch()
	defer putScratch(sc)
	if err := parseParams(rawQuery, sc); err != nil {
		return errJSON(badRequest("%v", err)), http.StatusBadRequest
	}
	seq := h.curSeq()
	sc.key = appendKey(sc.key[:0], h.name, seq, op, &sc.p)
	if body := s.cache.get(sc.key); body != nil {
		return body, http.StatusOK
	}
	body, ranSeq, err := s.compute(ctx, h, op, sc)
	if err != nil {
		return errJSON(err), statusFor(err)
	}
	if ranSeq != seq {
		sc.key = appendKey(sc.key[:0], h.name, ranSeq, op, &sc.p)
	}
	return s.cache.put(sc.key, body), http.StatusOK
}

// compute dispatches a cache miss to its kernel path. The returned
// body aliases sc.body; callers must copy before sc is pooled (the
// cache put does).
func (s *Server) compute(ctx context.Context, h *handle, op string, sc *scratch) (body []byte, seq uint64, err error) {
	p := &sc.p
	switch op {
	case "bfs", "sssp":
		if p.src < 0 {
			return nil, 0, badRequest("%s: src parameter required", op)
		}
		lane := laneBFS
		if op == "sssp" {
			lane = laneSSSP
			if p.maxDepth >= 0 {
				return nil, 0, badRequest("sssp: maxdepth applies to bfs only")
			}
		}
		w, err := h.coal.distQuery(ctx, lane, int32(p.src), int32(p.maxDepth), p.dst)
		if err != nil {
			return nil, 0, err
		}
		b := appendJSONHead(sc.body[:0], h.name, w.seq, op)
		b = appendJSONKeyInt(b, "src", p.src)
		if lane == laneBFS && p.maxDepth >= 0 {
			b = appendJSONKeyInt(b, "maxdepth", p.maxDepth)
		}
		b = appendJSONKeyInt(b, "reached", int64(w.reached))
		if lane == laneBFS {
			b = appendJSONKeyInt(b, "ecc", int64(w.ecc))
		}
		b = appendJSONKeyIntList(b, "dst", w.dsts)
		if lane == laneBFS {
			b = appendJSONKeyIntList(b, "dist", w.hop)
		} else {
			b = appendJSONKeyFloatList(b, "dist", w.wdist)
		}
		sc.body = append(b, '}')
		return sc.body, w.seq, nil

	case "estimate":
		if p.src < 0 || len(p.dst) != 1 {
			return nil, 0, badRequest("estimate: src and exactly one dst required")
		}
		g, seq, release, err := h.pin()
		if err != nil {
			return nil, 0, err
		}
		defer release()
		if int(p.src) >= g.NumVertices() || int(p.dst[0]) >= g.NumVertices() {
			return nil, seq, errBadVertex
		}
		val, err := h.art.get(seq, "oracle", func() (any, error) {
			if !s.lim.tryAcquire() {
				return nil, errBusy
			}
			defer s.lim.release()
			return sketch.BuildOracle(g, sketch.OracleOptions{Workers: s.workers()})
		})
		if err != nil {
			return nil, seq, err
		}
		lo, hi := val.(*sketch.Oracle).Estimate(int32(p.src), p.dst[0])
		b := appendJSONHead(sc.body[:0], h.name, seq, op)
		b = appendJSONKeyInt(b, "src", p.src)
		b = appendJSONKeyInt(b, "dst", int64(p.dst[0]))
		b = appendJSONKeyInt(b, "lo", int64(lo))
		b = appendJSONKeyInt(b, "hi", int64(hi))
		sc.body = append(b, '}')
		return sc.body, seq, nil

	case "centrality":
		kind := p.kind
		if kind == "" {
			kind = "degree"
		}
		k := p.k
		if k < 0 {
			k = 10
		}
		if k > maxListIDs {
			return nil, 0, badRequest("centrality: k > %d", maxListIDs)
		}
		g, seq, release, err := h.pin()
		if err != nil {
			return nil, 0, err
		}
		defer release()
		val, err := h.art.get(seq, "centrality/"+kind, func() (any, error) {
			if !s.lim.tryAcquire() {
				return nil, errBusy
			}
			defer s.lim.release()
			switch kind {
			case "degree":
				return centrality.DegreeCentrality(g), nil
			case "pagerank":
				if g.Directed() {
					return centrality.PageRankDirected(g, centrality.PageRankOptions{Workers: s.workers()}), nil
				}
				return centrality.PageRank(g, centrality.PageRankOptions{Workers: s.workers()}), nil
			case "closeness":
				// Sampled (Eppstein–Wang) closeness: the serving-grade
				// estimator; exact closeness is O(n·m) per epoch.
				return sketch.Closeness(g, sketch.ClosenessOptions{Workers: s.workers()}).Scores, nil
			default:
				return nil, badRequest("centrality: unknown kind %q", kind)
			}
		})
		if err != nil {
			return nil, seq, err
		}
		scores := val.([]float64)
		top := centrality.TopKVertices(scores, int(k))
		b := appendJSONHead(sc.body[:0], h.name, seq, op)
		b = append(b, `,"kind":"`...)
		b = append(b, kind...)
		b = append(b, '"')
		b = appendJSONKeyInt(b, "k", int64(len(top)))
		b = appendJSONKeyIntList(b, "top", top)
		b = append(b, `,"score":[`...)
		for i, v := range top {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONFloat(b, scores[v])
		}
		b = append(b, ']', '}')
		sc.body = b
		return sc.body, seq, nil

	case "community":
		algo := p.algo
		if algo == "" {
			algo = "louvain"
		}
		if algo != "louvain" {
			return nil, 0, badRequest("community: unknown algo %q", algo)
		}
		g, seq, release, err := h.pin()
		if err != nil {
			return nil, 0, err
		}
		defer release()
		val, err := h.art.get(seq, "community/louvain", func() (any, error) {
			if !s.lim.tryAcquire() {
				return nil, errBusy
			}
			defer s.lim.release()
			return community.Louvain(g, community.LouvainOptions{Workers: s.workers()}), nil
		})
		if err != nil {
			return nil, seq, err
		}
		cl := val.(community.Clustering)
		b := appendJSONHead(sc.body[:0], h.name, seq, op)
		b = appendJSONKeyInt(b, "count", int64(cl.Count))
		b = appendJSONKeyFloat(b, "q", cl.Q)
		if len(p.vs) > 0 {
			assign, err := gatherInt32(cl.Assign, p.vs, sc)
			if err != nil {
				return nil, seq, err
			}
			b = appendJSONKeyIntList(b, "v", p.vs)
			b = appendJSONKeyIntList(b, "assign", assign)
		}
		sc.body = append(b, '}')
		return sc.body, seq, nil

	case "components":
		g, seq, release, err := h.pin()
		if err != nil {
			return nil, 0, err
		}
		defer release()
		val, err := h.art.get(seq, "components", func() (any, error) {
			if !s.lim.tryAcquire() {
				return nil, errBusy
			}
			defer s.lim.release()
			return components.ConnectedParallel(g, nil, s.workers()), nil
		})
		if err != nil {
			return nil, seq, err
		}
		lab := val.(components.Labeling)
		b := appendJSONHead(sc.body[:0], h.name, seq, op)
		b = appendJSONKeyInt(b, "count", int64(lab.Count))
		if len(p.vs) > 0 {
			comp, err := gatherInt32(lab.Comp, p.vs, sc)
			if err != nil {
				return nil, seq, err
			}
			b = appendJSONKeyIntList(b, "v", p.vs)
			b = appendJSONKeyIntList(b, "comp", comp)
		}
		sc.body = append(b, '}')
		return sc.body, seq, nil

	case "subgraph":
		if len(p.vs) == 0 {
			return nil, 0, badRequest("subgraph: v parameter required")
		}
		if !s.lim.tryAcquire() {
			return nil, 0, errBusy
		}
		defer s.lim.release()
		g, seq, release, err := h.pin()
		if err != nil {
			return nil, 0, err
		}
		defer release()
		for _, v := range p.vs {
			if int(v) >= g.NumVertices() {
				return nil, seq, errBadVertex
			}
		}
		sub, _, err := graph.InducedSubgraph(g, p.vs)
		if err != nil {
			return nil, seq, badRequest("subgraph: %v", err)
		}
		n, m := sub.NumVertices(), sub.NumEdges()
		density := 0.0
		if n > 1 {
			pairs := float64(n) * float64(n-1)
			if !sub.Directed() {
				pairs /= 2
			}
			density = float64(m) / pairs
		}
		b := appendJSONHead(sc.body[:0], h.name, seq, op)
		b = appendJSONKeyInt(b, "n", int64(n))
		b = appendJSONKeyInt(b, "m", int64(m))
		b = appendJSONKeyFloat(b, "density", density)
		b = appendJSONKeyFloat(b, "clustering", metrics.GlobalClustering(sub, s.workers()))
		sc.body = append(b, '}')
		return sc.body, seq, nil
	}
	return nil, 0, errUnknownOp
}

// gatherInt32 indexes vals at each requested vertex, reusing scratch
// id capacity for the gathered run.
func gatherInt32(vals []int32, vs []int32, sc *scratch) ([]int32, error) {
	lo := len(sc.ids)
	for _, v := range vs {
		if int(v) >= len(vals) {
			return nil, errBadVertex
		}
		sc.ids = append(sc.ids, vals[v])
	}
	return sc.ids[lo:], nil
}

// HTTP handlers.

func writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	h := s.lookup(r.PathValue("name"))
	if h == nil {
		writeBody(w, http.StatusNotFound, []byte(`{"error":"unknown graph"}`))
		return
	}
	ctx := r.Context()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	body, status := s.answer(ctx, h, r.PathValue("op"), r.URL.RawQuery)
	writeBody(w, status, body)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	h := s.lookup(r.PathValue("name"))
	if h == nil {
		writeBody(w, http.StatusNotFound, []byte(`{"error":"unknown graph"}`))
		return
	}
	g, seq, release, err := h.pin()
	if err != nil {
		writeBody(w, statusFor(err), errJSON(err))
		return
	}
	defer release()
	b := appendJSONHead(nil, h.name, seq, "info")
	b = appendJSONKeyInt(b, "n", int64(g.NumVertices()))
	b = appendJSONKeyInt(b, "m", int64(g.NumEdges()))
	b = appendJSONKeyBool(b, "directed", g.Directed())
	b = appendJSONKeyBool(b, "weighted", g.Weighted())
	b = appendJSONKeyBool(b, "stream", h.stream != nil)
	if h.stream != nil {
		b = appendJSONKeyInt(b, "pending", int64(h.stream.Pending()))
	}
	writeBody(w, http.StatusOK, append(b, '}'))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.handles))
	for name := range s.handles {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	b, _ := json.Marshal(map[string]any{"graphs": names})
	writeBody(w, http.StatusOK, b)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeBody(w, http.StatusOK, s.statsJSON())
}

// Stats snapshots the server's performance counters.
type Stats struct {
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	CacheEntries int    `json:"cache_entries"`
	CacheBytes   int64  `json:"cache_bytes"`
	Batches      uint64 `json:"batches"`
	BatchedReqs  uint64 `json:"batched_requests"`
	DedupSaved   uint64 `json:"dedup_saved"`
	Rejected     uint64 `json:"rejected"`
	Graphs       int    `json:"graphs"`
}

// Snapshot returns the current counters (also served at /stats).
func (s *Server) Snapshot() Stats {
	hits, misses, entries, bytes := s.cache.stats()
	s.mu.RLock()
	n := len(s.handles)
	s.mu.RUnlock()
	return Stats{
		CacheHits:    hits,
		CacheMisses:  misses,
		CacheEntries: entries,
		CacheBytes:   bytes,
		Batches:      s.batches.Load(),
		BatchedReqs:  s.batchedReqs.Load(),
		DedupSaved:   s.dedupSaved.Load(),
		Rejected:     s.lim.rejectedCount(),
		Graphs:       n,
	}
}

func (s *Server) statsJSON() []byte {
	b, _ := json.Marshal(s.Snapshot())
	return b
}

// Mutation endpoints, stream handles only.

type edgeBatch struct {
	// Add holds [u, v] or [u, v, w] triples; Del holds [u, v] pairs.
	Add [][]float64 `json:"add"`
	Del [][]float64 `json:"del"`
}

func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	h := s.lookup(r.PathValue("name"))
	if h == nil {
		writeBody(w, http.StatusNotFound, []byte(`{"error":"unknown graph"}`))
		return
	}
	if h.stream == nil {
		writeBody(w, http.StatusMethodNotAllowed, []byte(`{"error":"static graph is immutable"}`))
		return
	}
	var batch edgeBatch
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&batch); err != nil {
		writeBody(w, http.StatusBadRequest, errJSON(err))
		return
	}
	apply := func(rows [][]float64, del bool) error {
		for _, row := range rows {
			if len(row) < 2 || (del && len(row) != 2) || len(row) > 3 {
				return badRequest("edge row wants [u,v] or [u,v,w], got %v", row)
			}
			u, v := int32(row[0]), int32(row[1])
			if del {
				if err := h.stream.Delete(u, v); err != nil {
					return err
				}
				continue
			}
			w := 1.0
			if len(row) == 3 {
				w = row[2]
			}
			if err := h.stream.AddWeighted(u, v, w); err != nil {
				return err
			}
		}
		return nil
	}
	if err := apply(batch.Del, true); err != nil {
		writeBody(w, http.StatusBadRequest, errJSON(err))
		return
	}
	if err := apply(batch.Add, false); err != nil {
		writeBody(w, http.StatusBadRequest, errJSON(err))
		return
	}
	b, _ := json.Marshal(map[string]int{"pending": h.stream.Pending()})
	writeBody(w, http.StatusOK, b)
}

func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	h := s.lookup(r.PathValue("name"))
	if h == nil {
		writeBody(w, http.StatusNotFound, []byte(`{"error":"unknown graph"}`))
		return
	}
	if h.stream == nil {
		writeBody(w, http.StatusMethodNotAllowed, []byte(`{"error":"static graph is immutable"}`))
		return
	}
	stats, err := h.stream.Commit()
	if err != nil {
		writeBody(w, http.StatusInternalServerError, errJSON(err))
		return
	}
	b, _ := json.Marshal(struct {
		Seq      uint64 `json:"seq"`
		Added    int    `json:"added"`
		Updated  int    `json:"updated"`
		Deleted  int    `json:"deleted"`
		Vertices int    `json:"vertices"`
		Edges    int    `json:"edges"`
	}{stats.Seq, stats.Added, stats.Updated, stats.Deleted, stats.Vertices, stats.Edges})
	writeBody(w, http.StatusOK, b)
}
