//go:build !race

package serve

// raceDetectorEnabled reports whether this binary was built with
// -race. Under the detector sync.Pool deliberately drops cached items
// at random (to widen the interleavings it can observe), so the pooled
// scratch on the cache-hit path shows spurious allocations there; the
// zero-alloc assertion only holds — and only matters — in a normal
// build, which the plain CI test job and the bench smoke both enforce.
const raceDetectorEnabled = false
