package serve

import (
	"fmt"
	"strconv"
	"sync"
)

// Zero-allocation request plumbing: query-string parsing, canonical
// cache-key assembly, and append-style JSON building, all writing into
// a pooled per-request scratch. The serving hot path — a result-cache
// hit — must not allocate, so nothing here may escape to the heap:
// parsed values are substrings of the raw query or ints, list params
// land in a reused []int32, and keys/bodies grow pooled byte buffers.

// params holds one request's parsed query parameters. String fields
// alias the raw query; slice fields alias the scratch's ids array.
type params struct {
	src      int64   // src= vertex; -1 when absent
	dst      []int32 // dst= comma list (may be empty)
	vs       []int32 // v= comma list (may be empty)
	maxDepth int64   // maxdepth= level bound; -1 when absent (unlimited)
	k        int64   // k= top-k bound; -1 when absent
	kind     string  // kind= centrality selector
	algo     string  // algo= community selector
}

// scratch is the pooled per-request workspace: parsed id lists, the
// canonical cache key, and the response body under construction.
type scratch struct {
	p    params
	ids  []int32 // backing for params.dst and params.vs
	key  []byte
	body []byte
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch  { return scratchPool.Get().(*scratch) }
func putScratch(s *scratch) { scratchPool.Put(s) }

// parseParams parses a raw query string ("src=3&dst=1,2&maxdepth=4")
// into sc.p without allocating. The grammar is deliberately narrow —
// plain decimal values, comma lists, bare identifiers — so no URL
// unescaping is needed; a '%' or '+' in a value is a parse error.
func parseParams(raw string, sc *scratch) error {
	p := &sc.p
	*p = params{src: -1, maxDepth: -1, k: -1}
	sc.ids = sc.ids[:0]
	for len(raw) > 0 {
		var kv string
		if i := indexByte(raw, '&'); i >= 0 {
			kv, raw = raw[:i], raw[i+1:]
		} else {
			kv, raw = raw, ""
		}
		if kv == "" {
			continue
		}
		eq := indexByte(kv, '=')
		if eq < 0 {
			return fmt.Errorf("parameter %q missing '='", kv)
		}
		key, val := kv[:eq], kv[eq+1:]
		switch key {
		case "src":
			v, err := parseUint31(val)
			if err != nil {
				return fmt.Errorf("src: %w", err)
			}
			p.src = v
		case "dst":
			lo := len(sc.ids)
			if err := parseIDList(val, sc); err != nil {
				return fmt.Errorf("dst: %w", err)
			}
			p.dst = sc.ids[lo:len(sc.ids):len(sc.ids)]
		case "v":
			lo := len(sc.ids)
			if err := parseIDList(val, sc); err != nil {
				return fmt.Errorf("v: %w", err)
			}
			p.vs = sc.ids[lo:len(sc.ids):len(sc.ids)]
		case "maxdepth":
			v, err := parseUint31(val)
			if err != nil {
				return fmt.Errorf("maxdepth: %w", err)
			}
			p.maxDepth = v
		case "k":
			v, err := parseUint31(val)
			if err != nil {
				return fmt.Errorf("k: %w", err)
			}
			p.k = v
		case "kind":
			p.kind = val
		case "algo":
			p.algo = val
		default:
			return fmt.Errorf("unknown parameter %q", key)
		}
	}
	return nil
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// parseUint31 parses a non-negative decimal that fits in an int32.
func parseUint31(s string) (int64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty value")
	}
	var v int64
	for i := 0; i < len(s); i++ {
		d := s[i] - '0'
		if d > 9 {
			return 0, fmt.Errorf("invalid number %q", s)
		}
		v = v*10 + int64(d)
		if v > 1<<31-1 {
			return 0, fmt.Errorf("value %q out of range", s)
		}
	}
	return v, nil
}

func parseIDList(s string, sc *scratch) error {
	for len(s) > 0 {
		var tok string
		if i := indexByte(s, ','); i >= 0 {
			tok, s = s[:i], s[i+1:]
		} else {
			tok, s = s, ""
		}
		v, err := parseUint31(tok)
		if err != nil {
			return err
		}
		if len(sc.ids) >= maxListIDs {
			return fmt.Errorf("more than %d ids", maxListIDs)
		}
		sc.ids = append(sc.ids, int32(v))
	}
	return nil
}

// maxListIDs bounds dst=/v= list sizes: response bodies stay small
// enough to cache and a single request can't demand O(n) JSON.
const maxListIDs = 4096

// appendKey assembles the canonical cache key for (graph, epoch, op,
// params). The key embeds the epoch sequence number, which is the
// entire invalidation story: a Commit publishes a new epoch pointer,
// new requests key under the new seq, and stale entries simply stop
// being referenced and age out of the LRU. Parameters are emitted in a
// fixed order so textually different but semantically identical query
// strings share an entry; id lists keep request order because the
// response echoes it (dst=1,2 and dst=2,1 are different responses).
func appendKey(b []byte, name string, seq uint64, op string, p *params) []byte {
	b = append(b, name...)
	b = append(b, 0)
	b = strconv.AppendUint(b, seq, 10)
	b = append(b, 0)
	b = append(b, op...)
	b = append(b, 's')
	b = strconv.AppendInt(b, p.src, 10)
	b = append(b, 'm')
	b = strconv.AppendInt(b, p.maxDepth, 10)
	b = append(b, 'k')
	b = strconv.AppendInt(b, p.k, 10)
	b = append(b, 'K')
	b = append(b, p.kind...)
	b = append(b, 0, 'A')
	b = append(b, p.algo...)
	b = append(b, 0, 'd')
	for _, v := range p.dst {
		b = strconv.AppendInt(b, int64(v), 10)
		b = append(b, ',')
	}
	b = append(b, 'v')
	for _, v := range p.vs {
		b = strconv.AppendInt(b, int64(v), 10)
		b = append(b, ',')
	}
	return b
}

// JSON building: append-style helpers over the scratch body buffer.
// Graph names are restricted at registration (see Server.register) so
// no string escaping is ever required.

func appendJSONHead(b []byte, name string, seq uint64, op string) []byte {
	b = append(b, `{"graph":"`...)
	b = append(b, name...)
	b = append(b, `","seq":`...)
	b = strconv.AppendUint(b, seq, 10)
	b = append(b, `,"op":"`...)
	b = append(b, op...)
	b = append(b, '"')
	return b
}

func appendJSONKeyInt(b []byte, key string, v int64) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendInt(b, v, 10)
}

func appendJSONFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func appendJSONKeyFloat(b []byte, key string, v float64) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func appendJSONKeyBool(b []byte, key string, v bool) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	if v {
		return append(b, "true"...)
	}
	return append(b, "false"...)
}

func appendJSONKeyIntList(b []byte, key string, vs []int32) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, `":[`...)
	for i, v := range vs {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return append(b, ']')
}

func appendJSONKeyFloatList(b []byte, key string, vs []float64) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, `":[`...)
	for i, v := range vs {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendFloat(b, v, 'g', -1, 64)
	}
	return append(b, ']')
}
