package bench

import (
	"fmt"
	"math/rand"

	"snap/internal/bfs"
	"snap/internal/community"
	"snap/internal/datasets"
	"snap/internal/generate"
	"snap/internal/graph"
)

// Ablations measures the design choices DESIGN.md calls out:
//
//  1. pBD with vs without the biconnected-components bridge heuristic
//     (optional step 1 of Algorithm 1).
//  2. pBD approximate vs exact betweenness (the paper's core
//     algorithm-engineering claim).
//  3. Parallel BFS with vs without degree-aware frontier partitioning.
//  4. The pMA ΔQ row structure (multilevel buckets) vs a naive linear
//     scan for the row maximum.
//  5. Dynamic-graph adjacency: hybrid treap representation vs plain
//     arrays under a skewed update/lookup stream.
func Ablations(cfg Config) {
	cfg.fill()
	w := cfg.Out
	fmt.Fprintf(w, "== Ablations ==\n\n")

	// --- 1 & 2: pBD variants on the PPI-like instance. ---
	ppi, _ := datasets.ByLabel("PPI")
	g := ppi.Build(clamp01(cfg.Scale * 10))
	fmt.Fprintf(w, "pBD variants on PPI (n=%d, m=%d):\n", g.NumVertices(), g.NumEdges())
	base := figurePBDOptions(cfg.Seed, 0)
	base.Patience = 1200
	base.MaxRemovals = g.NumEdges()
	variants := []struct {
		label string
		opt   community.PBDOptions
	}{
		{"approx + bridge heuristic", base},
		{"approx, no bridge heuristic", func() community.PBDOptions {
			o := base
			o.UseBridgeHeuristic = false
			return o
		}()},
		{"exact betweenness (GN-style)", func() community.PBDOptions {
			o := base
			o.SampleFraction = 1.0
			o.RefreshInterval = 1 // recompute after every removal, as GN does
			// Exact refreshes are the expensive path; cap removals so
			// the contrast is measurable in bounded time.
			o.MaxRemovals = 200000 / g.NumVertices()
			if o.MaxRemovals < 10 {
				o.MaxRemovals = 10
			}
			o.Patience = 0
			return o
		}()},
	}
	for _, v := range variants {
		var q float64
		var removals int
		dur := timed(func() {
			c, dend := community.PBD(g, v.opt)
			q = c.Q
			removals = dend.Len()
		})
		fmt.Fprintf(w, "  %-30s %8.2fs  Q=%.3f  removals=%d\n",
			v.label, seconds(dur), q, removals)
	}
	fmt.Fprintf(w, "  (exact variant removal-capped; per-removal cost is the contrast)\n\n")

	// --- 3: BFS scheduling and direction strategies. ---
	sw := generate.RMAT(int(100000*clamp01(cfg.Scale*10)), int(800000*clamp01(cfg.Scale*10)),
		generate.DefaultRMAT(), cfg.Seed)
	fmt.Fprintf(w, "parallel BFS on skewed R-MAT (n=%d, m=%d):\n", sw.NumVertices(), sw.NumEdges())
	bfsVariants := []struct {
		label string
		run   func()
	}{
		{"static frontier chunks", func() { bfs.Parallel(sw, 0, bfs.Options{}) }},
		{"degree-aware partitioning", func() { bfs.Parallel(sw, 0, bfs.Options{DegreeAware: true}) }},
		{"direction-optimizing", func() { bfs.DirectionOptimizing(sw, 0, bfs.Options{}) }},
		{"serial reference", func() { bfs.Serial(sw, 0, nil) }},
	}
	for _, v := range bfsVariants {
		reps := 5
		dur := timed(func() {
			for i := 0; i < reps; i++ {
				v.run()
			}
		})
		fmt.Fprintf(w, "  %-30s %8.1f ms/traversal\n", v.label,
			seconds(dur)/float64(reps)*1000)
	}
	fmt.Fprintln(w)

	// --- 4: ΔQ row maximum structure. ---
	fmt.Fprintf(w, "pMA ΔQ row maximum (100k ops on a 4096-entry row):\n")
	fmt.Fprintf(w, "  %-30s %8.1f ms\n", "multilevel buckets", bucketMaxWorkload(true))
	fmt.Fprintf(w, "  %-30s %8.1f ms\n", "naive linear scan", bucketMaxWorkload(false))
	fmt.Fprintln(w)

	// --- Extension baselines: modern comparators on the same instance.
	emailNet, _ := datasets.ByLabel("E-mail")
	ge := emailNet.Build(clamp01(cfg.Scale * 10))
	fmt.Fprintf(w, "community algorithms vs modern baselines on E-mail (n=%d, m=%d):\n",
		ge.NumVertices(), ge.NumEdges())
	type algo struct {
		label string
		run   func() community.Clustering
	}
	for _, al := range []algo{
		{"pMA (paper)", func() community.Clustering {
			c, _ := community.PMA(ge, community.PMAOptions{StopWhenNegative: true})
			return c
		}},
		{"pLA (paper)", func() community.Clustering {
			return community.PLA(ge, community.PLAOptions{Seed: cfg.Seed})
		}},
		{"Louvain (2008 baseline)", func() community.Clustering {
			return community.Louvain(ge, community.LouvainOptions{Seed: cfg.Seed})
		}},
		{"leading-eigenvector", func() community.Clustering {
			return community.SpectralCommunities(ge, community.SpectralOptions{Seed: cfg.Seed, Refine: true})
		}},
	} {
		var c community.Clustering
		dur := timed(func() { c = al.run() })
		fmt.Fprintf(w, "  %-28s %8.2fs  Q=%.3f  communities=%d\n",
			al.label, seconds(dur), c.Q, c.Count)
	}
	fmt.Fprintln(w)

	// --- 5: dynamic adjacency representation. ---
	fmt.Fprintf(w, "dynamic graph: hub-heavy inserts + worst-case membership probes:\n")
	fmt.Fprintf(w, "  %-30s %8.1f ms\n", "hybrid treap (threshold 64)", dynamicWorkload(64))
	fmt.Fprintf(w, "  %-30s %8.1f ms\n", "arrays only", dynamicWorkload(1<<30))
	fmt.Fprintln(w)
}

func clamp01(x float64) float64 {
	if x > 1 {
		return 1
	}
	return x
}

// bucketMaxWorkload simulates the pMA inner loop: interleaved value
// updates and row-maximum queries, with and without the bucket index.
func bucketMaxWorkload(useBuckets bool) float64 {
	const rowSize = 4096
	const ops = 100000
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, rowSize)
	for i := range vals {
		vals[i] = rng.Float64()*2 - 1
	}
	if useBuckets {
		pq := community.NewBucketPQForBench()
		for i, v := range vals {
			pq.Set(int32(i), v)
		}
		dur := timed(func() {
			for op := 0; op < ops; op++ {
				pq.Set(int32(rng.Intn(rowSize)), rng.Float64()*2-1)
				pq.Max()
			}
		})
		return seconds(dur) * 1000
	}
	dur := timed(func() {
		for op := 0; op < ops; op++ {
			vals[rng.Intn(rowSize)] = rng.Float64()*2 - 1
			best := 0
			for i := 1; i < rowSize; i++ {
				if vals[i] > vals[best] {
					best = i
				}
			}
			_ = best
		}
	})
	return seconds(dur) * 1000
}

// dynamicWorkload inserts a skewed edge stream (hub-heavy) and then
// performs membership queries and deletions.
func dynamicWorkload(threshold int) float64 {
	const n = 10000
	const stream = 60000
	rng := rand.New(rand.NewSource(2))
	hub := func() int32 {
		// 80% of endpoints land on 4 hot hubs, so hub adjacency grows
		// to thousands of entries — the regime the treap targets.
		if rng.Intn(10) < 8 {
			return int32(rng.Intn(4))
		}
		return int32(rng.Intn(n))
	}
	dur := timed(func() {
		d := graph.NewDynamic(n, false)
		d.SetTreapThreshold(threshold)
		type e struct{ u, v int32 }
		edges := make([]e, 0, stream)
		for i := 0; i < stream; i++ {
			u, v := hub(), hub()
			if u == v {
				continue
			}
			if ok, _ := d.AddEdge(u, v); ok {
				edges = append(edges, e{u, v})
			}
		}
		// Membership probes against the hot hubs, mostly absent —
		// the worst case for a linear adjacency scan.
		for i := 0; i < stream; i++ {
			d.HasEdge(int32(rng.Intn(4)), int32(rng.Intn(n)))
		}
		for _, ed := range edges {
			d.DeleteEdge(ed.u, ed.v)
		}
	})
	return seconds(dur) * 1000
}
