package bench

import (
	"fmt"
	"math"

	"snap/internal/bfs"
	"snap/internal/centrality"
	"snap/internal/generate"
	"snap/internal/metrics"
	"snap/internal/sketch"
)

// Sketch measures the approximate-analytics tier against the exact
// kernels it shadows, on one R-MAT instance (cfg.Scale = 1 is RMAT
// scale 18, i.e. 2^18 vertices; 4 is scale 20):
//
//   - HyperANF effective diameter + average path length vs the exact
//     iFUB diameter and the sampled-BFS path length, with observed
//     error against a many-source BFS distance histogram (the
//     reference estimates the pair-distance distribution to well under
//     1% at 1024 sources — far below the sketch error it referees).
//   - Eppstein–Wang sampled closeness vs the exact O(nm) kernel on a
//     subinstance the exact kernel can finish, with the max observed
//     per-vertex average-distance error against the Hoeffding bound.
//   - Landmark distance-oracle build cost and per-query latency vs a
//     full BFS per query, with the observed bracket width on sampled
//     pairs.
//
// This experiment has no counterpart in the paper's evaluation; it
// sizes the sketch tier the paper's "massive graphs" motivation calls
// for once instances outgrow exact analytics.
func Sketch(cfg Config) {
	cfg.fill()
	w := cfg.Out
	n := int(float64(1<<18) * cfg.Scale)
	if n < 1<<12 {
		n = 1 << 12
	}
	m := 8 * n
	g := generate.RMAT(n, m, generate.DefaultRMAT(), cfg.Seed)
	fmt.Fprintf(w, "== Sketch: approximate analytics vs exact on RMAT n=%d m=%d (scale %.3g of 2^18 vertices) ==\n",
		g.NumVertices(), g.NumEdges(), cfg.Scale)
	reps := 3
	if cfg.Fast {
		reps = 1
	}

	// Reference pair-distance distribution: a BFS distance histogram
	// over refSrc sampled sources (unbiased in the source dimension;
	// its sampling error is far below the sketch errors it referees).
	refSrc := 1024
	if refSrc > n {
		refSrc = n
	}
	var hist []int64
	sources := sketch.SampleVertices(n, refSrc, cfg.Seed+3)
	refDur := timed(func() {
		bfs.MultiSourceWorkspace(g, sources, -1, 0, func(_, _ int, ws *bfs.Workspace) {
			for _, v := range ws.Order() {
				d := int(ws.Dist(v))
				for len(hist) <= d {
					hist = append(hist, 0)
				}
				hist[d]++
			}
		})
	})
	refNF := make([]float64, len(hist))
	acc := int64(0)
	for t, c := range hist {
		acc += c
		refNF[t] = float64(acc)
	}
	refAvg := refAvgPath(refNF)
	refEff := refEffDiam(refNF, 0.9)

	fmt.Fprintf(w, "\n-- neighborhood function: HyperANF vs exact distance tier (best of %d) --\n", reps)
	fmt.Fprintf(w, "%-34s %12s %10s %12s %12s %8s\n", "kernel", "wall ms", "speedup", "value", "reference", "err")

	var anf sketch.ANFResult
	anfDur := bestOf(reps, func() { anf = sketch.ANF(g, sketch.ANFOptions{Seed: cfg.Seed}) })

	var exactDiam int
	exactDiamDur := bestOf(reps, func() { exactDiam = metrics.Diameter(g) })

	var exactAvg float64
	exactAvgDur := bestOf(reps, func() {
		exactAvg, _ = metrics.AvgPathLength(g, metrics.PathLengthOptions{Seed: cfg.Seed})
	})

	fmt.Fprintf(w, "%-34s %12.2f %10s %12.3f %12.3f %7.1f%%\n",
		"avg path length (sampled BFS)", ms(exactAvgDur), "1.0x", exactAvg, refAvg, 100*relErrF(exactAvg, refAvg))
	fmt.Fprintf(w, "%-34s %12.2f %9.1fx %12.3f %12.3f %7.1f%%\n",
		"avg path length (HyperANF)", ms(anfDur), ratio(exactAvgDur, anfDur), anf.AvgPathLength, refAvg, 100*relErrF(anf.AvgPathLength, refAvg))
	fmt.Fprintf(w, "%-34s %12.2f %10s %12d %12s %8s\n",
		"diameter (exact iFUB)", ms(exactDiamDur), "1.0x", exactDiam, "-", "-")
	fmt.Fprintf(w, "%-34s %12.2f %9.1fx %12.2f %12.2f %7.1f%%\n",
		"effective diameter (HyperANF)", ms(anfDur), ratio(exactDiamDur, anfDur), anf.EffectiveDiameter, refEff, 100*relErrF(anf.EffectiveDiameter, refEff))
	fmt.Fprintf(w, "one HyperANF run (%d sweeps, %d registers/vertex) serves both statistics: %.1fx vs diameter+path-length combined\n",
		anf.Sweeps, anf.Registers, ratio(exactDiamDur+exactAvgDur, anfDur))
	// The exact neighborhood function — the quantity HyperANF actually
	// approximates — requires one BFS per vertex. Its cost is measured
	// from the reference histogram sweep above (refSrc full BFS runs)
	// and scaled to all n sources; the sampled-BFS row is itself an
	// estimator, not the exact tier.
	perSrcMs := ms(refDur) / float64(refSrc)
	exactNFms := perSrcMs * float64(n)
	fmt.Fprintf(w, "exact NF baseline: all-sources BFS measured at %.2f ms/source over %d sources => %.0f s for n=%d; HyperANF speedup %.0fx\n",
		perSrcMs, refSrc, exactNFms/1000, n, exactNFms/ms(anfDur))

	// Sampled closeness vs the exact kernel, on the largest subinstance
	// the exact O(nm) kernel finishes comfortably.
	cn := n
	if cn > 1<<14 {
		cn = 1 << 14
	}
	cg := generate.RMAT(cn, 8*cn, generate.DefaultRMAT(), cfg.Seed+1)
	fmt.Fprintf(w, "\n-- closeness: Eppstein–Wang sampling vs exact O(nm) on RMAT n=%d m=%d --\n", cg.NumVertices(), cg.NumEdges())
	exactCloseDur := bestOf(reps, func() {
		centrality.Closeness(cg, centrality.ClosenessOptions{})
	})
	var sampled sketch.ClosenessResult
	opt := sketch.ClosenessOptions{Epsilon: 0.1, Confidence: 0.95, Seed: cfg.Seed}
	sampledDur := bestOf(reps, func() { sampled = sketch.Closeness(cg, opt) })
	// Observed error in the bound's own unit: each vertex's mean
	// distance (to the vertices that reach it) as a fraction of the
	// diameter — the quantity the Hoeffding bound covers. The exact
	// means come from an untimed all-sources sweep.
	nc := cg.NumVertices()
	totals := make([]float64, nc)
	counts := make([]int32, nc)
	all := make([]int32, nc)
	for i := range all {
		all[i] = int32(i)
	}
	bfs.MultiSourceWorkspace(cg, all, -1, 0, func(_, _ int, ws *bfs.Workspace) {
		for _, v := range ws.Order() {
			totals[v] += float64(ws.Dist(v))
			counts[v]++
		}
	})
	diamC := metrics.Diameter(cg)
	maxErr := 0.0
	for v := 0; v < nc; v++ {
		if counts[v] == 0 || sampled.Scores[v] == 0 {
			continue
		}
		trueMean := totals[v] / float64(counts[v])
		estMean := (1 / sampled.Scores[v]) / float64(nc)
		if e := math.Abs(estMean-trueMean) / float64(diamC); e > maxErr {
			maxErr = e
		}
	}
	fmt.Fprintf(w, "%-34s %12.2f ms\n", "exact closeness", ms(exactCloseDur))
	fmt.Fprintf(w, "%-34s %12.2f ms   speedup %5.1fx   pivots %d   max err %.3fΔ (bound %.3fΔ @ %.0f%%)\n",
		"sampled closeness", ms(sampledDur), ratio(exactCloseDur, sampledDur),
		len(sampled.Pivots), maxErr, sampled.Epsilon, 100*sampled.Confidence)

	// Landmark oracle: build once, then amortized O(k) queries vs one
	// BFS per query.
	fmt.Fprintf(w, "\n-- landmark distance oracle (k=16, degree strategy) --\n")
	var oracle *sketch.Oracle
	buildDur := bestOf(reps, func() {
		var err error
		oracle, err = sketch.BuildOracle(g, sketch.OracleOptions{Landmarks: 16, Seed: cfg.Seed})
		if err != nil {
			panic(err)
		}
	})
	pairs := sketch.SampleVertices(n, 400, cfg.Seed+5)
	queryDur := bestOf(reps, func() {
		for i := 0; i+1 < len(pairs); i += 2 {
			oracle.Estimate(pairs[i], pairs[i+1])
		}
	})
	nq := len(pairs) / 2
	// Exact answers for the sampled pairs: one BFS per distinct source.
	exactQ := map[int32][]int32{}
	srcs := make([]int32, 0, nq)
	for i := 0; i+1 < len(pairs); i += 2 {
		if _, ok := exactQ[pairs[i]]; !ok {
			exactQ[pairs[i]] = nil
			srcs = append(srcs, pairs[i])
		}
	}
	bfsDur := timed(func() {
		bfs.MultiSourceWorkspace(g, srcs, -1, 0, func(_, i int, ws *bfs.Workspace) {
			dist := make([]int32, n)
			for j := range dist {
				dist[j] = -1
			}
			for _, v := range ws.Order() {
				dist[v] = ws.Dist(v)
			}
			exactQ[srcs[i]] = dist
		})
	})
	eligible, exact, within, sumRel := 0, 0, 0, 0.0
	rel := 0
	for i := 0; i+1 < len(pairs); i += 2 {
		d := exactQ[pairs[i]][pairs[i+1]]
		lo, hi := oracle.Estimate(pairs[i], pairs[i+1])
		if d < 0 || hi < 0 {
			continue // disconnected pair, or no landmark in the component
		}
		eligible++
		if lo == hi {
			exact++
		}
		if lo <= d && d <= hi {
			within++
		}
		if d > 0 {
			est := oracle.Distance(pairs[i], pairs[i+1])
			sumRel += math.Abs(float64(est-d)) / float64(d)
			rel++
		}
	}
	fmt.Fprintf(w, "build: %.2f ms (16 BFS sweeps)   query: %.3f µs/pair   BFS per query: %.2f ms (%.0fx)\n",
		ms(buildDur), 1000*ms(queryDur)/float64(nq), ms(bfsDur)/float64(len(srcs)),
		ratio(bfsDur, queryDur)/float64(len(srcs))*float64(nq))
	fmt.Fprintf(w, "sampled pairs: %d (%d connected+covered)   bracketed: %d/%d   exact (lo==hi): %d   mean midpoint error: %.1f%%\n",
		nq, eligible, within, eligible, exact, 100*sumRel/math.Max(float64(rel), 1))
	fmt.Fprintln(w)
}

func relErrF(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// refAvgPath and refEffDiam derive the reference statistics from a
// cumulative distance histogram, mirroring the sketch's definitions so
// the comparison is apples-to-apples.
func refAvgPath(nf []float64) float64 {
	if len(nf) < 2 {
		return 0
	}
	base, total := nf[0], nf[len(nf)-1]
	if total <= base {
		return 0
	}
	var sum float64
	for t := 1; t < len(nf); t++ {
		sum += float64(t) * (nf[t] - nf[t-1])
	}
	return sum / (total - base)
}

func refEffDiam(nf []float64, q float64) float64 {
	if len(nf) == 0 {
		return 0
	}
	target := q * nf[len(nf)-1]
	if nf[0] >= target {
		return 0
	}
	for t := 1; t < len(nf); t++ {
		if nf[t] >= target {
			return float64(t-1) + (target-nf[t-1])/(nf[t]-nf[t-1])
		}
	}
	return float64(len(nf) - 1)
}
