// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section 5). Each experiment
// prints the paper's reported values next to the values measured on
// this machine, so the reproduction can be judged row by row.
// The cmd/snap-bench binary and the root-level testing.B benchmarks
// are thin wrappers over this package. See EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"snap/internal/generate"
	"snap/internal/graph"
	"snap/internal/partition"
)

// Config controls experiment sizing. The zero value is completed by
// fill() with defaults sized for a single-machine run.
type Config struct {
	// Out receives the experiment report.
	Out io.Writer
	// Scale multiplies every instance size (1 = the paper's sizes).
	// The defaults below assume a small multi-purpose machine; pass
	// -scale 1 for paper-sized runs.
	Scale float64
	// K is the part count for Table 1 (paper: 32).
	K int
	// Workers is the thread sweep for the speedup figures
	// (paper: 1..32 on the Sun Fire T2000).
	Workers []int
	// GNMaxN bounds the instance size for full Girvan–Newman runs in
	// Table 2; larger instances print "-" (the paper ran GN on all six,
	// on wall-clock budgets this harness does not assume).
	GNMaxN int
	// Seed drives all generators.
	Seed int64
	// Fast shrinks everything further for smoke tests.
	Fast bool
}

func (c *Config) fill() {
	if c.Out == nil {
		panic("bench: Config.Out is required")
	}
	if c.Scale <= 0 {
		c.Scale = 0.1
	}
	if c.K <= 0 {
		c.K = 32
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2, 4, 8, 16, 32}
	}
	if c.GNMaxN <= 0 {
		c.GNMaxN = 1200
	}
	if c.Seed == 0 {
		c.Seed = 20080414 // IPDPS 2008
	}
	if c.Fast {
		if c.Scale > 0.02 {
			c.Scale = 0.02
		}
		c.GNMaxN = 300
		c.Workers = []int{1, 2}
	}
}

func timed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// timedMin reports the fastest of reps timed runs of f.
func timedMin(reps int, f func()) time.Duration {
	best := timed(f)
	for i := 1; i < reps; i++ {
		if d := timed(f); d < best {
			best = d
		}
	}
	return best
}

func seconds(d time.Duration) float64 { return d.Seconds() }

// Table1 reproduces the paper's Table 1: edge cut of a K-way
// partitioning of three equal-sized graph families — a road network, a
// sparse random graph, and a synthetic small-world network — under
// four partitioners (Metis-kway / Metis-recur analogues and Chaco-RQI /
// Chaco-LAN spectral analogues). The paper's numbers (200k vertices,
// 1M edges, 32 parts): road 1856/1703/2937/3913; sparse random
// 685k/707k/718k/738k; small-world 806k/737k/–/–.
func Table1(cfg Config) {
	cfg.fill()
	w := cfg.Out
	n := int(200000 * cfg.Scale)
	m := int(1000000 * cfg.Scale)
	if n < 256 {
		n, m = 256, 1280
	}
	side := int(math.Sqrt(float64(n)))
	fmt.Fprintf(w, "== Table 1: %d-way partition edge cut (scale %.3g of 200k vertices / 1M edges) ==\n", cfg.K, cfg.Scale)
	fmt.Fprintf(w, "Paper shape: random & small-world cuts ~2 orders of magnitude above road;\n")
	fmt.Fprintf(w, "spectral methods may fail to complete on the small-world instance.\n")
	fmt.Fprintf(w, "The road instance is built at realistic road density (~2.2 edges/vertex,\n")
	fmt.Fprintf(w, "near-planar), matching the topology that gives physical networks their\n")
	fmt.Fprintf(w, "small cuts; the random and small-world instances carry the full m.\n\n")

	instances := []struct {
		label string
		g     *graph.Graph
	}{
		{"Physical (road)", generate.RoadMesh(side, side, 0.12, cfg.Seed)},
		{"Sparse random", generate.ErdosRenyi(n, m, cfg.Seed+1)},
		{"Small-world", generate.RMAT(n, m, generate.DefaultRMAT(), cfg.Seed+2)},
	}
	methods := []struct {
		label string
		run   func(g *graph.Graph) (partition.Result, error)
	}{
		{"Metis-kway", func(g *graph.Graph) (partition.Result, error) {
			return partition.MultilevelKWay(g, cfg.K, partition.MultilevelOptions{Seed: cfg.Seed})
		}},
		{"Metis-recur", func(g *graph.Graph) (partition.Result, error) {
			return partition.MultilevelRecursive(g, cfg.K, partition.MultilevelOptions{Seed: cfg.Seed})
		}},
		{"Chaco-RQI", func(g *graph.Graph) (partition.Result, error) {
			return partition.SpectralRQI(g, cfg.K, partition.SpectralOptions{Seed: cfg.Seed})
		}},
		{"Chaco-LAN", func(g *graph.Graph) (partition.Result, error) {
			return partition.SpectralLanczos(g, cfg.K, partition.SpectralOptions{Seed: cfg.Seed})
		}},
	}
	fmt.Fprintf(w, "%-18s %9s %9s %15s %15s %15s %15s\n", "Graph Instance", "n", "m",
		methods[0].label, methods[1].label, methods[2].label, methods[3].label)
	for _, inst := range instances {
		fmt.Fprintf(w, "%-18s %9d %9d", inst.label, inst.g.NumVertices(), inst.g.NumEdges())
		for _, mth := range methods {
			var res partition.Result
			var err error
			dur := timed(func() { res, err = mth.run(inst.g) })
			if err != nil {
				fmt.Fprintf(w, " %15s", "-")
				continue
			}
			fmt.Fprintf(w, " %9d(%4.1fs)", res.EdgeCut, seconds(dur))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// workersAvailable clips a requested sweep entry to something the host
// can express (GOMAXPROCS is set per measurement).
func setWorkers(n int) (restore func()) {
	prev := runtime.GOMAXPROCS(n)
	return func() { runtime.GOMAXPROCS(prev) }
}
