package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snap/internal/generate"
	"snap/internal/serve"
)

// Serve measures the serving tier under sustained concurrent
// closed-loop load on one R-MAT instance (cfg.Scale = 1 is RMAT scale
// 18; 4 is scale 20), across the 2×2 grid of its two performance
// mechanisms: request coalescing and the epoch-keyed result cache.
//
// The workload is the serving-tier steady state: a fixed pool of hot
// single-source BFS distance queries drawn Zipf-fashion by C
// concurrent clients, measured after one warm pass over the pool (so
// cached configurations are in steady state, exactly the regime the
// cache exists for). Clients drive Server.Answer directly — the
// serving core including parse, coalescing, cache, admission, and
// kernel — so the numbers exclude stdlib HTTP/socket noise.
//
// Correctness across configurations is asserted, not assumed: before
// timing, every probe query must produce byte-identical bodies on all
// four servers (a static handle pins epoch 0, so coalescing and
// caching may not change a single byte).
//
// The final "serve smoke:" line is machine-checked by CI, which
// asserts nonzero sustained qps and nonzero cache hits.
func Serve(cfg Config) {
	cfg.fill()
	w := cfg.Out
	n := int(float64(1<<18) * cfg.Scale)
	if n < 1<<12 {
		n = 1 << 12
	}
	m := 8 * n
	g := generate.RMAT(n, m, generate.DefaultRMAT(), cfg.Seed)

	clients := 8
	hot := 32
	dur := 3 * time.Second
	if cfg.Fast {
		hot = 16
		dur = 300 * time.Millisecond
	}
	fmt.Fprintf(w, "== Serve: concurrent analytics serving on RMAT n=%d m=%d (%d clients, %d hot sources, %v/config) ==\n",
		g.NumVertices(), g.NumEdges(), clients, hot, dur)

	// The hot query pool: distance queries with a 3-destination probe
	// list. Sources are spread deterministically over the vertex set.
	rng := rand.New(rand.NewSource(cfg.Seed + 77))
	queries := make([]string, hot)
	for i := range queries {
		src := rng.Intn(n)
		queries[i] = fmt.Sprintf("src=%d&dst=%d,%d,%d", src, rng.Intn(n), rng.Intn(n), rng.Intn(n))
	}

	window := 200 * time.Microsecond
	configs := []struct {
		name string
		cfg  serve.Config
	}{
		// MaxInFlight is unlimited in all four configs so admission
		// control doesn't mask the mechanisms under comparison.
		{"naive", serve.Config{CoalesceWindow: -1, CacheBytes: -1, MaxInFlight: -1}},
		{"+coalesce", serve.Config{CoalesceWindow: window, CacheBytes: -1, MaxInFlight: -1}},
		{"+cache", serve.Config{CoalesceWindow: -1, MaxInFlight: -1}},
		{"+coalesce+cache", serve.Config{CoalesceWindow: window, MaxInFlight: -1}},
	}
	servers := make([]*serve.Server, len(configs))
	for i, c := range configs {
		servers[i] = serve.New(c.cfg)
		if err := servers[i].RegisterStatic("g", g); err != nil {
			panic(err)
		}
	}

	// Correctness gate: every server answers every hot query with
	// byte-identical bodies (this pass doubles as the cache warm-up).
	for qi, q := range queries {
		var ref []byte
		for si, s := range servers {
			body, code := s.Answer(context.Background(), "g", "bfs", q)
			if code != 200 {
				panic(fmt.Sprintf("bench serve: config %q query %q: status %d", configs[si].name, q, code))
			}
			if si == 0 {
				ref = append([]byte(nil), body...)
			} else if string(body) != string(ref) {
				panic(fmt.Sprintf("bench serve: config %q diverges from naive on query %d", configs[si].name, qi))
			}
		}
	}
	fmt.Fprintf(w, "correctness: all %d configs byte-identical on %d probe queries\n\n", len(configs), hot)

	fmt.Fprintf(w, "%-16s %10s %10s %10s %9s %9s %8s %8s\n",
		"config", "qps", "p50(ms)", "p99(ms)", "hits", "misses", "batches", "dedup")
	var naiveQPS, bothQPS float64
	var bothHits uint64
	for i, c := range configs {
		qps, p50, p99 := serveLoad(servers[i], queries, clients, dur)
		st := servers[i].Snapshot()
		fmt.Fprintf(w, "%-16s %10.0f %10.3f %10.3f %9d %9d %8d %8d\n",
			c.name, qps, ms2(p50), ms2(p99), st.CacheHits, st.CacheMisses, st.Batches, st.DedupSaved)
		switch i {
		case 0:
			naiveQPS = qps
		case len(configs) - 1:
			bothQPS = qps
			bothHits = st.CacheHits
		}
	}

	// The zero-alloc steady-state claim, measured on the live server.
	s := servers[len(servers)-1]
	allocs := testing.AllocsPerRun(200, func() {
		if _, code := s.Answer(context.Background(), "g", "bfs", queries[0]); code != 200 {
			panic("bench serve: warm query failed")
		}
	})
	fmt.Fprintf(w, "\ncache-hit allocs/op: %.1f\n", allocs)
	fmt.Fprintf(w, "speedup (+coalesce+cache vs naive): %.1fx\n", bothQPS/naiveQPS)
	fmt.Fprintf(w, "serve smoke: qps=%.0f cache_hits=%d allocs_per_hit=%.0f\n\n", bothQPS, bothHits, allocs)
}

// serveLoad runs a closed-loop load phase: each client draws hot
// queries Zipf-fashion and issues them back to back for dur. Returns
// sustained qps and latency percentiles across all completed queries.
func serveLoad(s *serve.Server, queries []string, clients int, dur time.Duration) (qps, p50, p99 float64) {
	var stop atomic.Bool
	lats := make([][]float64, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) * 7919))
			zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(queries)-1))
			for !stop.Load() {
				q := queries[zipf.Uint64()]
				t0 := time.Now()
				if _, code := s.Answer(context.Background(), "g", "bfs", q); code != 200 {
					panic(fmt.Sprintf("bench serve: status %d under load", code))
				}
				lats[c] = append(lats[c], time.Since(t0).Seconds())
			}
		}(c)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Float64s(all)
	total := len(all)
	if total == 0 {
		return 0, 0, 0
	}
	pct := func(p float64) float64 { return all[min(total-1, int(p*float64(total)))] }
	return float64(total) / elapsed, pct(0.50), pct(0.99)
}

func ms2(sec float64) float64 { return sec * 1e3 }
