package bench

import (
	"fmt"
	"time"

	"snap/internal/community"
	"snap/internal/datasets"
	"snap/internal/graph"
)

// figure2PBD builds the pBD options used across the figure experiments
// so thread sweeps compare identical work.
func figurePBDOptions(seed int64, workers int) community.PBDOptions {
	return community.PBDOptions{
		Workers:            workers,
		Seed:               seed,
		SampleFraction:     0.01,
		RefreshInterval:    64,
		SwitchThreshold:    128,
		UseBridgeHeuristic: true,
		Patience:           300,
		MaxRemovals:        1000,
	}
}

// Figure2 reproduces the paper's Figure 2: execution time and relative
// speedup of pBD, pMA, and pLA on the RMAT-SF instance as the thread
// count grows (paper: 1..32 hardware threads on the Sun Fire T2000,
// reaching speedups of ~13, ~9, and ~12). GOMAXPROCS is raised to the
// sweep value for each measurement so the goroutine workers can
// actually run in parallel when the host has the cores.
func Figure2(cfg Config) {
	cfg.fill()
	w := cfg.Out
	rm, _ := datasets.ByLabel("RMAT-SF")
	g := rm.Build(cfg.Scale)
	fmt.Fprintf(w, "== Figure 2: community detection scaling on RMAT-SF (n=%d, m=%d) ==\n",
		g.NumVertices(), g.NumEdges())
	fmt.Fprintf(w, "Paper speedups at 32 threads: pBD ~13x, pMA ~9x, pLA ~12x.\n")
	fmt.Fprintf(w, "Notes: speedup is bounded by the host's core count; pBD runs a capped\n")
	fmt.Fprintf(w, "removal budget (timing workload), so its Q here is not a quality result.\n\n")
	fmt.Fprintf(w, "%8s %12s %8s %12s %8s %12s %8s\n",
		"threads", "pBD(s)", "rel", "pMA(s)", "rel", "pLA(s)", "rel")

	var base [3]float64
	for wi, workers := range cfg.Workers {
		restore := setWorkers(workers)
		var q [3]float64
		tPBD := timed(func() {
			c, _ := community.PBD(g, figurePBDOptions(cfg.Seed, workers))
			q[0] = c.Q
		})
		tPMA := timed(func() {
			c, _ := community.PMA(g, community.PMAOptions{Workers: workers, StopWhenNegative: true})
			q[1] = c.Q
		})
		tPLA := timed(func() {
			c := community.PLA(g, community.PLAOptions{Workers: workers, Seed: cfg.Seed})
			q[2] = c.Q
		})
		restore()
		ts := [3]float64{seconds(tPBD), seconds(tPMA), seconds(tPLA)}
		if wi == 0 {
			base = ts
		}
		fmt.Fprintf(w, "%8d %12.2f %8.2f %12.2f %8.2f %12.2f %8.2f\n",
			workers,
			ts[0], base[0]/ts[0],
			ts[1], base[1]/ts[1],
			ts[2], base[2]/ts[2])
		if wi == len(cfg.Workers)-1 {
			fmt.Fprintf(w, "  (modularity at final sweep: pBD %.3f, pMA %.3f, pLA %.3f)\n",
				q[0], q[1], q[2])
		}
	}
	fmt.Fprintln(w)
}

// figure3Instances selects the real-world instances of Figure 3 with
// per-instance default scales sized for a single machine; cfg.Scale
// multiplies them (1.0 => 0.1 of paper size for the two large webs).
func figure3Instances(cfg Config) []struct {
	label string
	g     *graph.Graph
} {
	mult := cfg.Scale * 10 // cfg default 0.1 => mult 1 => defaults below
	pick := func(label string, def float64) *graph.Graph {
		net, err := datasets.ByLabel(label)
		if err != nil {
			panic(err)
		}
		s := def * mult
		if s > 1 {
			s = 1
		}
		return net.Build(s)
	}
	return []struct {
		label string
		g     *graph.Graph
	}{
		{"PPI", pick("PPI", 1.0)},
		{"Citations", pick("Citations", 0.25)},
		{"DBLP", pick("DBLP", 0.03)},
		{"NDwww", pick("NDwww", 0.03)},
	}
}

// Figure3a reproduces the paper's Figure 3(a): the speedup of pBD over
// the GN baseline, decomposed into the algorithm-engineering factor
// (approximate betweenness + small-world optimizations, single thread)
// and the parallel factor. The paper reports e.g. 26x engineering and
// 13.2x parallel (343x total) on NDwww.
//
// GN's full runtime is impractical at these sizes (that is the point
// of the experiment), so the GN cost is metered over its first
// removals and extrapolated to the removal count pBD needed for its
// best clustering; the extrapolation uses the most expensive (early,
// whole-graph) iterations and is therefore a conservative estimate of
// true GN cost per removal.
func Figure3a(cfg Config) {
	cfg.fill()
	w := cfg.Out
	fmt.Fprintf(w, "== Figure 3(a): pBD speedup over GN (engineering x parallel) ==\n\n")
	fmt.Fprintf(w, "%-10s %8s %8s %12s %12s %12s %10s %10s %10s\n",
		"Instance", "n", "m", "GN est(s)", "pBD 1T(s)", "pBD WT(s)", "eng. x", "par. x", "total x")

	maxWorkers := cfg.Workers[len(cfg.Workers)-1]
	for _, inst := range figure3Instances(cfg) {
		g := inst.g
		// pBD, single thread.
		var removals int
		var pbd1 community.Clustering
		restore := setWorkers(1)
		t1 := timed(func() {
			var dend *community.Dendrogram
			pbd1, dend = community.PBD(g, figurePBDOptions(cfg.Seed, 1))
			removals = dend.Len()
		})
		restore()
		// pBD, full thread sweep value.
		restore = setWorkers(maxWorkers)
		tW := timed(func() {
			community.PBD(g, figurePBDOptions(cfg.Seed, maxWorkers))
		})
		restore()
		// Metered GN: a two-point fit separates the one-time setup
		// (initial exact betweenness) from the per-removal cost, then
		// extrapolates to the removal count pBD needed. Early
		// (whole-graph) removals are the costliest, so this estimate
		// is an upper bound on true GN time — the paper's full-run
		// ratios (9-26x engineering) are the calibrated reference.
		restore = setWorkers(1)
		t1rm := timed(func() {
			community.GirvanNewman(g, community.GNOptions{Workers: 1, MaxRemovals: 1})
		})
		meter := 8
		tMeter := timed(func() {
			community.GirvanNewman(g, community.GNOptions{Workers: 1, MaxRemovals: meter})
		})
		restore()
		perIter := (seconds(tMeter) - seconds(t1rm)) / float64(meter-1)
		if perIter <= 0 {
			perIter = seconds(tMeter) / float64(meter)
		}
		setup := seconds(t1rm) - perIter
		if setup < 0 {
			setup = 0
		}
		gnEst := setup + perIter*float64(removals)
		eng := gnEst / seconds(t1)
		par := seconds(t1) / seconds(tW)
		fmt.Fprintf(w, "%-10s %8d %8d %12.1f %12.2f %12.2f %10.1f %10.2f %10.1f\n",
			inst.label, g.NumVertices(), g.NumEdges(),
			gnEst, seconds(t1), seconds(tW), eng, par, eng*par)
		_ = pbd1
	}
	fmt.Fprintf(w, "\nGN est = metered setup + per-removal cost x the removal count pBD used\n")
	fmt.Fprintf(w, "(an upper bound: GN removals get cheaper as the graph fragments, and pBD\n")
	fmt.Fprintf(w, "amortizes its approximate recomputation across batches of removals).\n")
	fmt.Fprintln(w)
}

// Figure3b reproduces the paper's Figure 3(b): parallel speedup of pMA
// and pLA across the real-world instances (paper: 4-7x at 32 threads).
func Figure3b(cfg Config) {
	cfg.fill()
	w := cfg.Out
	maxWorkers := cfg.Workers[len(cfg.Workers)-1]
	fmt.Fprintf(w, "== Figure 3(b): pMA / pLA parallel speedup (1 -> %d threads) ==\n\n", maxWorkers)
	fmt.Fprintf(w, "%-10s %12s %12s %8s %12s %12s %8s\n",
		"Instance", "pMA 1T(s)", "pMA WT(s)", "x", "pLA 1T(s)", "pLA WT(s)", "x")
	for _, inst := range figure3Instances(cfg) {
		g := inst.g
		run := func(workers int) (float64, float64) {
			restore := setWorkers(workers)
			defer restore()
			tMA := timed(func() {
				community.PMA(g, community.PMAOptions{Workers: workers, StopWhenNegative: true})
			})
			tLA := timed(func() {
				community.PLA(g, community.PLAOptions{Workers: workers, Seed: cfg.Seed})
			})
			return seconds(tMA), seconds(tLA)
		}
		ma1, la1 := run(1)
		maW, laW := run(maxWorkers)
		fmt.Fprintf(w, "%-10s %12.2f %12.2f %8.2f %12.2f %12.2f %8.2f\n",
			inst.label, ma1, maW, ma1/maW, la1, laW, la1/laW)
	}
	fmt.Fprintln(w)
}

// All runs every experiment in paper order.
func All(cfg Config) {
	cfg.fill()
	start := time.Now()
	Table1(cfg)
	Table2(cfg)
	Table3(cfg)
	Figure2(cfg)
	Figure3a(cfg)
	Figure3b(cfg)
	Ablations(cfg)
	Loads(cfg)
	Ingest(cfg)
	Sketch(cfg)
	Partition(cfg)
	Serve(cfg)
	fmt.Fprintf(cfg.Out, "total harness time: %.1fs\n", time.Since(start).Seconds())
}
