package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"snap/internal/generate"
	"snap/internal/graph"
	"snap/internal/graph/container"
)

// Loads measures the graph ingest paths on one R-MAT instance: the
// text edge-list parse, the SNP1 binary stream read, the mapped SNP2
// container, and the varint delta-compressed SNP2 container. For each
// it reports the on-disk artifact size, the best-of-three warm load
// time (page cache hot, the steady state of a repeated analysis
// workflow), the speedup over the text parse, and the heap allocated
// by the load — the mapped row's near-zero allocation is the zero-copy
// claim made concrete. This experiment has no counterpart in the
// paper's evaluation; it sizes the I/O layer added on top of it.
func Loads(cfg Config) {
	cfg.fill()
	w := cfg.Out
	n := int(float64(1<<20) * cfg.Scale)
	if n < 1<<12 {
		n = 1 << 12
	}
	m := 8 * n
	g := generate.RMAT(n, m, generate.DefaultRMAT(), cfg.Seed)
	fmt.Fprintf(w, "== Loads: ingest paths on RMAT n=%d m=%d (scale %.3g of 2^20 vertices) ==\n",
		g.NumVertices(), g.NumEdges(), cfg.Scale)

	dir, err := os.MkdirTemp("", "snap-loads-")
	if err != nil {
		fmt.Fprintf(w, "loads: %v\n", err)
		return
	}
	defer os.RemoveAll(dir)

	write := func(name string, save func(path string) error) string {
		p := filepath.Join(dir, name)
		if err := save(p); err != nil {
			fmt.Fprintf(w, "loads: write %s: %v\n", name, err)
			return ""
		}
		return p
	}
	toFile := func(fn func(f *os.File) error) func(string) error {
		return func(p string) error {
			f, err := os.Create(p)
			if err != nil {
				return err
			}
			if err := fn(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
	}
	rows := []struct {
		label string
		path  string
		load  func(path string) (*graph.Graph, error)
	}{
		{"text", write("g.txt", toFile(func(f *os.File) error { return graph.WriteEdgeList(f, g) })),
			func(p string) (*graph.Graph, error) {
				f, err := os.Open(p)
				if err != nil {
					return nil, err
				}
				defer f.Close()
				return graph.ReadEdgeList(f, false)
			}},
		{"snp1", write("g.snp", toFile(func(f *os.File) error { return graph.WriteBinary(f, g) })),
			func(p string) (*graph.Graph, error) {
				f, err := os.Open(p)
				if err != nil {
					return nil, err
				}
				defer f.Close()
				return graph.ReadBinary(f)
			}},
		{"snp2 (mmap)", write("g.snp2", func(p string) error { return container.Save(p, g, container.Options{}) }),
			func(p string) (*graph.Graph, error) { return container.Load(p, container.LoadOptions{}) }},
		{"snp2 compressed", write("g.csnp2", func(p string) error { return container.Save(p, g, container.Options{Compress: true}) }),
			func(p string) (*graph.Graph, error) { return container.Load(p, container.LoadOptions{}) }},
	}

	fmt.Fprintf(w, "%-16s %10s %12s %10s %12s\n", "format", "file MB", "load s", "vs text", "alloc MB")
	var textSec float64
	for _, row := range rows {
		if row.path == "" {
			continue
		}
		st, err := os.Stat(row.path)
		if err != nil {
			fmt.Fprintf(w, "loads: %v\n", err)
			continue
		}
		best := time.Duration(1<<62 - 1)
		var allocated uint64
		for trial := 0; trial < 3; trial++ {
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			var lg *graph.Graph
			d := timed(func() { lg, err = row.load(row.path) })
			runtime.ReadMemStats(&after)
			if err != nil {
				fmt.Fprintf(w, "loads: load %s: %v\n", row.label, err)
				lg = nil
				break
			}
			if lg.NumVertices() != g.NumVertices() || lg.NumArcs() != g.NumArcs() {
				fmt.Fprintf(w, "loads: %s shape mismatch: %v vs %v\n", row.label, lg, g)
			}
			lg.Close()
			if d < best {
				best = d
				allocated = after.TotalAlloc - before.TotalAlloc
			}
		}
		if err != nil {
			continue
		}
		sec := seconds(best)
		if row.label == "text" {
			textSec = sec
		}
		speedup := "-"
		if textSec > 0 && sec > 0 {
			speedup = fmt.Sprintf("%.1fx", textSec/sec)
		}
		fmt.Fprintf(w, "%-16s %10.1f %12.4f %10s %12.3f\n",
			row.label, float64(st.Size())/(1<<20), sec, speedup, float64(allocated)/(1<<20))
	}
	fmt.Fprintln(w)
}
