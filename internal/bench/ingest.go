package bench

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"time"

	"snap/internal/centrality"
	"snap/internal/components"
	"snap/internal/generate"
	"snap/internal/graph"
	"snap/internal/ingest"
)

// Ingest measures the snapshot-epoch streaming pipeline on one R-MAT
// instance (cfg.Scale = 1 is RMAT scale 18; 4 is scale 20):
//
//   - Commit latency vs batch size: the delta-merge commit against the
//     two from-scratch baselines a pre-epoch system pays — re-parsing
//     the updated text edge list, and re-running Build over the
//     materialized edge list.
//   - Incremental kernels vs recompute on a 1% delta: maintained
//     PageRank (residual push + warm polish) vs cold power iteration,
//     and maintained connected components (union-find fast path) vs a
//     full sweep.
//
// This experiment has no counterpart in the paper's evaluation; it
// sizes the dynamic-graph layer built on the paper's stated
// future-work direction.
func Ingest(cfg Config) {
	cfg.fill()
	w := cfg.Out
	n := int(float64(1<<18) * cfg.Scale)
	if n < 1<<12 {
		n = 1 << 12
	}
	m := 8 * n
	g := generate.RMAT(n, m, generate.DefaultRMAT(), cfg.Seed)
	fmt.Fprintf(w, "== Ingest: snapshot-epoch commits on RMAT n=%d m=%d (scale %.3g of 2^18 vertices) ==\n",
		g.NumVertices(), g.NumEdges(), cfg.Scale)

	fracs := []float64{0.001, 0.005, 0.01, 0.02}
	if cfg.Fast {
		fracs = []float64{0.01}
	}

	fmt.Fprintf(w, "\n-- commit latency vs batch size (70%% inserts / 30%% deletes) --\n")
	fmt.Fprintf(w, "%8s %9s %12s %14s %9s %14s %9s\n",
		"batch", "|delta|", "commit ms", "text-rebuild", "speedup", "build-rebuild", "speedup")
	reps := 3
	for _, frac := range fracs {
		add, del := ingestDelta(g, frac, cfg.Seed+7)

		// The epoch path: buffered delta -> MergeDelta -> publish.
		// Best-of-reps, each on a fresh stream (a commit consumes its
		// pending delta).
		commitDur := time.Duration(1<<62 - 1)
		var next *graph.Graph
		for r := 0; r < reps; r++ {
			s := ingest.New(cloneGraph(g), ingest.Options{})
			for _, e := range add {
				s.Add(e.U, e.V)
			}
			for _, e := range del {
				s.Delete(e.U, e.V)
			}
			d := timed(func() {
				if _, err := s.Commit(); err != nil {
					panic(err)
				}
			})
			if d < commitDur {
				commitDur = d
			}
			if next == nil {
				e := s.Pin()
				next = cloneGraph(e.Graph())
				e.Close()
			}
			s.Close()
		}

		// Baseline 1: the seed-era path — serialize the updated graph
		// back to the text edge list and re-enter through the parser.
		// Both halves are inside the timer: a from-scratch text-path
		// rebuild of an updated graph has to write the new list before
		// it can re-read it.
		textDur := bestOf(reps, func() {
			var text bytes.Buffer
			if err := graph.WriteEdgeList(&text, next); err != nil {
				panic(err)
			}
			if _, err := graph.ReadEdgeList(bytes.NewReader(text.Bytes()), false); err != nil {
				panic(err)
			}
		})

		// Baseline 2: rebuild from an already-materialized edge list —
		// the floor any from-scratch path pays.
		edges := next.EdgeEndpoints()
		buildDur := bestOf(reps, func() {
			if _, err := graph.Build(n, edges, graph.BuildOptions{}); err != nil {
				panic(err)
			}
		})

		fmt.Fprintf(w, "%7.1f%% %9d %12.2f %14.2f %8.1fx %14.2f %8.1fx\n",
			100*frac, len(add)+len(del),
			ms(commitDur), ms(textDur), ratio(textDur, commitDur),
			ms(buildDur), ratio(buildDur, commitDur))
	}

	fmt.Fprintf(w, "\n-- incremental kernels vs recompute (1%% delta) --\n")
	add, del := ingestDelta(g, 0.01, cfg.Seed+13)
	s := ingest.New(cloneGraph(g), ingest.Options{})
	defer s.Close()

	// Warm the maintained kernels on the base epoch.
	prOpt := centrality.PageRankOptions{}
	s.PageRank(prOpt)
	s.Components()

	for _, e := range add {
		s.Add(e.U, e.V)
	}
	for _, e := range del {
		s.Delete(e.U, e.V)
	}
	if _, err := s.Commit(); err != nil {
		panic(err)
	}
	e := s.Pin()
	defer e.Close()

	var inc, full []float64
	incDur := timed(func() { inc = s.PageRank(prOpt) })
	fullDur := timed(func() { full = centrality.PageRank(e.Graph(), prOpt) })
	var l1 float64
	for i := range full {
		l1 += math.Abs(inc[i] - full[i])
	}
	fmt.Fprintf(w, "%-28s %10.2f ms   full %10.2f ms   speedup %5.1fx   L1 %.2g\n",
		"PageRank (residual+warm)", ms(incDur), ms(fullDur), ratio(fullDur, incDur), l1)

	ccDur := timed(func() { s.Components() })
	var lab components.Labeling
	ccFullDur := timed(func() { lab = components.Connected(e.Graph(), nil) })
	fmt.Fprintf(w, "%-28s %10.2f ms   full %10.2f ms   speedup %5.1fx   comps %d\n",
		"Components (delta w/ splits)", ms(ccDur), ms(ccFullDur), ratio(ccFullDur, ccDur), lab.Count)

	// Insert-only commit: the union-find fast path keeps the tracker
	// live through the commit, so the post-commit query is a cache hit.
	add2, _ := ingestDelta(g, 0.01, cfg.Seed+21)
	for _, e := range add2 {
		s.Add(e.U, e.V)
	}
	if _, err := s.Commit(); err != nil {
		panic(err)
	}
	e2 := s.Pin()
	defer e2.Close()
	ccIncDur := timed(func() { s.Components() })
	var lab2 components.Labeling
	ccFull2Dur := timed(func() { lab2 = components.Connected(e2.Graph(), nil) })
	fmt.Fprintf(w, "%-28s %10.2f ms   full %10.2f ms   speedup %5.1fx   comps %d\n",
		"Components (insert-only)", ms(ccIncDur), ms(ccFull2Dur), ratio(ccFull2Dur, ccIncDur), lab2.Count)
	fmt.Fprintln(w)
}

func ingestDelta(g *graph.Graph, frac float64, seed int64) (add, del []graph.Edge) {
	rng := rand.New(rand.NewSource(seed))
	n := int32(g.NumVertices())
	k := int(frac * float64(g.NumEdges()))
	ends := g.EdgeEndpoints()
	for i := 0; i < k; i++ {
		if i%10 < 7 {
			add = append(add, graph.Edge{U: rng.Int31n(n), V: rng.Int31n(n)})
		} else {
			del = append(del, ends[rng.Intn(len(ends))])
		}
	}
	return add, del
}

func cloneGraph(g *graph.Graph) *graph.Graph {
	out, err := graph.MergeDelta(g, nil, nil)
	if err != nil {
		panic(err)
	}
	return out
}

func bestOf(n int, f func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < n; i++ {
		if d := timed(f); d < best {
			best = d
		}
	}
	return best
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func ratio(num, den time.Duration) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}
