package bench

import (
	"fmt"

	"snap/internal/bfs"
	"snap/internal/centrality"
	"snap/internal/generate"
	"snap/internal/graph"
	"snap/internal/partition"
	"snap/internal/shard"
)

// Partition measures the parallel multilevel k-way engine and the
// partition-blocked layout it enables:
//
//   - Partitioner throughput and quality (edge cut, balance) on the
//     paper's two instance families — an RMAT small-world graph, where
//     coarsening must survive the power-law degree tail, and a sparse
//     road-style mesh, where cuts are small and balance is tight.
//   - The blocked-layout payoff: BFS and PageRank on the original
//     vertex order versus the same kernels on the partition-blocked
//     relabeled graph executed shard-locally, where each shard walks
//     one contiguous id block and most neighbor reads stay inside it.
//
// The paper partitions to place work, not just to report cut numbers;
// this experiment closes that loop in-process.
func Partition(cfg Config) {
	cfg.fill()
	w := cfg.Out
	n := int(float64(1<<18) * cfg.Scale)
	if n < 1<<12 {
		n = 1 << 12
	}
	side := 1
	for side*side < n/4 {
		side++
	}
	reps := 3
	if cfg.Fast {
		reps = 1
	}
	k := cfg.K
	instances := []struct {
		label string
		g     *graph.Graph
	}{
		{fmt.Sprintf("RMAT n=%d m=%d", n, 8*n), generate.RMAT(n, 8*n, generate.DefaultRMAT(), cfg.Seed)},
		{fmt.Sprintf("mesh %dx%d", side, side), generate.RoadMesh(side, side, 0.1, cfg.Seed+1)},
	}
	fmt.Fprintf(w, "== Partition: multilevel k-way (k=%d) + partition-blocked shard-local kernels ==\n", k)
	fmt.Fprintf(w, "%-24s %10s %12s %8s %10s %10s %10s %10s %10s %10s\n",
		"instance", "part(s)", "cut", "bal",
		"bfs", "bfs-rlb", "bfs-shard", "pr", "pr-rlb", "pr-shard")
	for _, inst := range instances {
		g := inst.g
		var res partition.Result
		var err error
		dPart := timedMin(reps, func() {
			res, err = partition.MultilevelKWay(g, k, partition.MultilevelOptions{Seed: cfg.Seed})
		})
		if err != nil {
			fmt.Fprintf(w, "%-24s partition failed: %v\n", inst.label, err)
			continue
		}
		perm, bounds, err := partition.BlockedPerm(g, res.Part, k)
		if err != nil {
			fmt.Fprintf(w, "%-24s blocked perm failed: %v\n", inst.label, err)
			continue
		}
		rg, _, err := graph.Relabel(g, perm)
		if err != nil {
			fmt.Fprintf(w, "%-24s relabel failed: %v\n", inst.label, err)
			continue
		}
		s, err := shard.New(rg, bounds)
		if err != nil {
			fmt.Fprintf(w, "%-24s shard wrap failed: %v\n", inst.label, err)
			continue
		}
		// Three timings per kernel: the original vertex order, the
		// same kernel on the partition-blocked relabeled graph (the
		// pure layout effect), and the BSP shard-local execution on
		// the blocked graph (layout + owner-exclusive supersteps).
		dBFS := timedMin(reps, func() { bfs.Parallel(g, 0, bfs.Options{}) })
		dBFSRlb := timedMin(reps, func() { bfs.Parallel(rg, 0, bfs.Options{}) })
		dBFSShard := timedMin(reps, func() { s.BFS(0, 0) })
		prOpt := centrality.PageRankOptions{MaxIterations: 30, Tolerance: 1e-15}
		dPR := timedMin(reps, func() { centrality.PageRank(g, prOpt) })
		dPRRlb := timedMin(reps, func() { centrality.PageRank(rg, prOpt) })
		sprOpt := shard.PageRankOptions{MaxIterations: 30, Tolerance: 1e-15}
		dPRShard := timedMin(reps, func() { s.PageRank(sprOpt) })
		fmt.Fprintf(w, "%-24s %10.3f %12d %8.3f %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f\n",
			inst.label, seconds(dPart), res.EdgeCut, res.Balance,
			seconds(dBFS), seconds(dBFSRlb), seconds(dBFSShard),
			seconds(dPR), seconds(dPRRlb), seconds(dPRShard))
	}
	fmt.Fprintln(w)
}
