package bench

import (
	"fmt"

	"snap/internal/community"
	"snap/internal/datasets"
)

// Table2 reproduces the paper's Table 2: modularity achieved by GN,
// pBD, pMA, and pLA on six community-detection benchmarks, against the
// best-known score. Every network except Karate is a documented
// synthetic surrogate (see internal/datasets), so the comparison is
// about relative algorithm quality, not the absolute historical
// values; both the paper's numbers and ours are printed.
func Table2(cfg Config) {
	cfg.fill()
	w := cfg.Out
	fmt.Fprintf(w, "== Table 2: modularity Q per algorithm (paper value in parentheses) ==\n")
	fmt.Fprintf(w, "Instances marked * are synthetic surrogates of the paper's data sets.\n\n")
	fmt.Fprintf(w, "%-16s %6s %14s %14s %14s %14s %16s\n",
		"Network", "n", "GN", "pBD", "pMA", "pLA", "Best known")

	for _, net := range datasets.Table2() {
		scale := 1.0
		if cfg.Fast && net.PaperN > 1000 {
			scale = 0.25
		}
		g := net.Build(scale)
		n := g.NumVertices()

		gnCell := "-"
		if n <= cfg.GNMaxN {
			patience := 0
			if g.NumEdges() > 3000 {
				patience = 1500
			}
			best, _ := community.GirvanNewman(g, community.GNOptions{Patience: patience})
			gnCell = fmt.Sprintf("%.3f", best.Q)
		}

		// Table-2 instances are small, so pBD runs mostly in its exact
		// per-component regime (SwitchThreshold 2048) with a generous
		// sample floor above it — the paper's Table 2 shows pBD within
		// a few hundredths of GN, which is this configuration.
		pbd, _ := community.PBD(g, community.PBDOptions{
			Seed:               cfg.Seed,
			UseBridgeHeuristic: true,
			SampleFraction:     0.10,
			MinSamples:         48,
			SwitchThreshold:    2048,
			RefreshInterval:    8,
			Patience:           patienceFor(g.NumEdges()),
		})
		pma, _ := community.PMA(g, community.PMAOptions{StopWhenNegative: true})
		pla := community.PLA(g, community.PLAOptions{Seed: cfg.Seed})

		bestCell := "-"
		if n <= 20000 {
			steps := 40 * n
			if cfg.Fast {
				steps = 5 * n
			}
			best := community.Anneal(g, steps, cfg.Seed)
			bestCell = fmt.Sprintf("%.3f", best.Q)
		}

		label := net.Label
		if net.Surrogate {
			label += "*"
		}
		fmt.Fprintf(w, "%-16s %6d %6s (%.3f) %6.3f (%.3f) %6.3f (%.3f) %6.3f (%.3f) %8s (%.3f)\n",
			label, n,
			gnCell, net.GNQ,
			pbd.Q, net.PBDQ,
			pma.Q, net.PMAQ,
			pla.Q, net.PLAQ,
			bestCell, net.BestKnownQ)
	}
	fmt.Fprintln(w)
}

// patienceFor picks a pBD stopping patience proportional to instance
// size: small graphs run the full trajectory (patience 0 = disabled).
func patienceFor(m int) int {
	if m <= 3000 {
		return 0
	}
	p := m / 10
	if p < 500 {
		p = 500
	}
	if p > 3000 {
		p = 3000
	}
	return p
}

// Table3 prints the paper's Table 3 data-set inventory next to the
// instances this harness actually builds at the configured scale.
func Table3(cfg Config) {
	cfg.fill()
	w := cfg.Out
	fmt.Fprintf(w, "== Table 3: large small-world instances (built at scale %.3g) ==\n\n", cfg.Scale)
	fmt.Fprintf(w, "%-10s %-44s %10s %10s %10s %10s %10s\n",
		"Label", "Type", "paper n", "paper m", "built n", "built m", "dir")
	for _, net := range datasets.Table3() {
		g := net.Build(cfg.Scale)
		dir := "undir"
		if net.Directed {
			dir = "dir"
		}
		fmt.Fprintf(w, "%-10s %-44s %10d %10d %10d %10d %10s\n",
			net.Label, net.Description, net.PaperN, net.PaperM,
			g.NumVertices(), g.NumEdges(), dir)
	}
	fmt.Fprintln(w)
}
