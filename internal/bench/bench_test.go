package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps experiment smoke tests fast.
func tinyConfig(buf *bytes.Buffer) Config {
	return Config{
		Out:     buf,
		Scale:   0.004,
		K:       4,
		Workers: []int{1},
		GNMaxN:  50,
		Seed:    1,
	}
}

func TestTable1Smoke(t *testing.T) {
	var buf bytes.Buffer
	Table1(tinyConfig(&buf))
	out := buf.String()
	for _, want := range []string{"Table 1", "Physical (road)", "Sparse random", "Small-world", "Metis-kway"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestTable3Smoke(t *testing.T) {
	var buf bytes.Buffer
	Table3(tinyConfig(&buf))
	out := buf.String()
	for _, want := range []string{"PPI", "Citations", "DBLP", "NDwww", "Actor", "RMAT-SF"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestFigure3bSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	Figure3b(cfg)
	out := buf.String()
	if !strings.Contains(out, "Figure 3(b)") || !strings.Contains(out, "PPI") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestConfigFillDefaults(t *testing.T) {
	var buf bytes.Buffer
	c := Config{Out: &buf}
	c.fill()
	if c.Scale != 0.1 || c.K != 32 || len(c.Workers) == 0 || c.GNMaxN != 1200 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	fast := Config{Out: &buf, Fast: true}
	fast.fill()
	if fast.Scale > 0.02 || len(fast.Workers) != 2 {
		t.Fatalf("fast defaults wrong: %+v", fast)
	}
}

func TestConfigRequiresOut(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing Out")
		}
	}()
	c := Config{}
	c.fill()
}

func TestPatienceFor(t *testing.T) {
	if p := patienceFor(100); p != 0 {
		t.Fatalf("small m patience = %d, want 0 (full run)", p)
	}
	if p := patienceFor(4000); p != 500 {
		t.Fatalf("patience floor = %d, want 500", p)
	}
	if p := patienceFor(1000000); p != 3000 {
		t.Fatalf("patience cap = %d, want 3000", p)
	}
}
