package sssp

import (
	"math"
	"testing"

	"snap/internal/generate"
	"snap/internal/graph"
)

func TestDijkstraOnWeightedPath(t *testing.T) {
	g, err := graph.Build(4, []graph.Edge{
		{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}, {U: 2, V: 3, W: 1}, {U: 0, V: 3, W: 10},
	}, graph.BuildOptions{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	r := Dijkstra(g, 0)
	want := []float64{0, 2, 5, 6}
	for v, d := range want {
		if r.Dist[v] != d {
			t.Fatalf("dist[%d] = %g, want %g", v, r.Dist[v], d)
		}
	}
	if r.Parent[3] != 2 {
		t.Fatalf("parent[3] = %d, want 2 (path through 2 beats direct edge)", r.Parent[3])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g, _ := graph.Build(3, []graph.Edge{{U: 0, V: 1, W: 1}}, graph.BuildOptions{Weighted: true})
	r := Dijkstra(g, 0)
	if !math.IsInf(r.Dist[2], 1) || r.Parent[2] != -1 {
		t.Fatal("unreachable vertex should be Inf/-1")
	}
}

func TestDeltaSteppingMatchesDijkstra(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		g := generate.RandomWeights(
			generate.RMAT(300, 1200, generate.DefaultRMAT(), int64(trial)), 10, int64(trial))
		want := Dijkstra(g, 0)
		for _, delta := range []float64{0, 0.5, 2, 100} {
			for _, workers := range []int{1, 3} {
				got := DeltaStepping(g, 0, DeltaSteppingOptions{Delta: delta, Workers: workers})
				for v := range want.Dist {
					if want.Dist[v] != got.Dist[v] {
						t.Fatalf("trial %d delta %g workers %d: dist[%d] = %g, want %g",
							trial, delta, workers, v, got.Dist[v], want.Dist[v])
					}
				}
			}
		}
	}
}

func TestDeltaSteppingUnweightedMatchesBFSDistances(t *testing.T) {
	g := generate.RMAT(500, 2000, generate.DefaultRMAT(), 4)
	want := Dijkstra(g, 7)
	got := DeltaStepping(g, 7, DeltaSteppingOptions{})
	for v := range want.Dist {
		if want.Dist[v] != got.Dist[v] {
			t.Fatalf("dist[%d] = %g, want %g", v, got.Dist[v], want.Dist[v])
		}
	}
}

func TestDeltaSteppingParentsConsistent(t *testing.T) {
	g := generate.RandomWeights(generate.ErdosRenyi(200, 800, 3), 7, 5)
	r := DeltaStepping(g, 0, DeltaSteppingOptions{Workers: 4})
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		if math.IsInf(r.Dist[v], 1) || v == 0 {
			continue
		}
		p := r.Parent[v]
		if p < 0 {
			t.Fatalf("vertex %d reached but has no parent", v)
		}
		// dist[v] must equal dist[p] + w(p, v) for some parallel arc.
		found := false
		lo, hi := g.Offsets[p], g.Offsets[p+1]
		for a := lo; a < hi; a++ {
			if g.Adj[a] == v && r.Dist[p]+g.W[a] == r.Dist[v] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("parent edge (%d,%d) does not certify dist", p, v)
		}
	}
}

func BenchmarkDijkstra(b *testing.B) {
	g := generate.RandomWeights(generate.RMAT(1<<14, 1<<16, generate.DefaultRMAT(), 1), 10, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dijkstra(g, 0)
	}
}

func BenchmarkDeltaStepping(b *testing.B) {
	g := generate.RandomWeights(generate.RMAT(1<<14, 1<<16, generate.DefaultRMAT(), 1), 10, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DeltaStepping(g, 0, DeltaSteppingOptions{})
	}
}

func TestDeltaSteppingDirected(t *testing.T) {
	g, err := graph.Build(4, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1},
		{U: 3, V: 0, W: 1},
	}, graph.BuildOptions{Directed: true, Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	r := DeltaStepping(g, 0, DeltaSteppingOptions{})
	want := []float64{0, 1, 2, 3}
	for v, d := range want {
		if r.Dist[v] != d {
			t.Fatalf("directed dist[%d] = %g, want %g", v, r.Dist[v], d)
		}
	}
}
