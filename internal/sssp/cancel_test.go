package sssp

import (
	"math"
	"testing"

	"snap/internal/generate"
	"snap/internal/graph"
)

// TestDeltaSteppingCancelThenReuse pins the abort path's clean-state
// guarantee: a cancelled run may leave entries in the bucket window and
// far list mid-flight, and abort must clear them (and reset the touched
// distances) so the SAME pooled workspace immediately produces exact
// results on its next run. Exercised at several cancel points — first
// poll, mid-run with a heavy-tailed weight spread that populates the
// far overflow list, and the unweighted BFS degenerate path.
func TestDeltaSteppingCancelThenReuse(t *testing.T) {
	gw := reweight(generate.RMAT(400, 1600, generate.DefaultRMAT(), 12), heavyTailW, 41)
	gu := generate.RMAT(400, 1600, generate.DefaultRMAT(), 13)
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)

	check := func(stage string, g *graph.Graph, delta float64, src int32) {
		want := Dijkstra(g, src)
		ws.Run(g, src, DeltaSteppingOptions{Delta: delta, Workers: 2})
		for v := range want.Dist {
			if math.Float64bits(ws.Dist()[v]) != math.Float64bits(want.Dist[v]) {
				t.Fatalf("%s: post-cancel reuse: dist[%d] = %g, want %g",
					stage, v, ws.Dist()[v], want.Dist[v])
			}
		}
		if len(ws.Reached()) == 0 {
			t.Fatalf("%s: post-cancel reuse: empty Reached()", stage)
		}
	}

	// Cancel on the very first poll: nothing beyond the source is
	// touched. An aborted run's Dist() is unspecified (finalize never
	// runs — partial results must not be served); what abort guarantees
	// is the touched list stays complete so the next reset is exact.
	ws.Run(gw, 7, DeltaSteppingOptions{Delta: 0.5, Workers: 2,
		Cancel: func() bool { return true }})
	if r := ws.Reached(); len(r) != 1 || r[0] != 7 {
		t.Fatalf("first-poll cancel: Reached() = %v, want [7]", r)
	}
	check("first-poll", gw, 0.5, 9) // tiny delta → capped window + far list

	// Cancel deep in the run, once the far list has been fed by the
	// six-orders-of-magnitude weight spread.
	polls := 0
	ws.Run(gw, 3, DeltaSteppingOptions{Delta: 0.5, Workers: 2,
		Cancel: func() bool { polls++; return polls > 12 }})
	if polls <= 12 {
		t.Fatalf("mid-run cancel never tripped (%d polls); pick a later trip point", polls)
	}
	check("mid-run", gw, 0.5, 5)

	// Unweighted degenerate path: cancellation flows through the shared
	// frontier engine's level loop.
	lv := 0
	ws.Run(gu, 2, DeltaSteppingOptions{Workers: 2,
		Cancel: func() bool { lv++; return lv > 2 }})
	check("unweighted", gu, 0, 11)
}
