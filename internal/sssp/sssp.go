// Package sssp implements single-source shortest paths: a binary-heap
// Dijkstra reference and the parallel delta-stepping algorithm
// (Meyer & Sanders) that SNAP uses for weighted small-world graphs,
// where the low diameter keeps the number of bucket phases small.
package sssp

import (
	"math"
	"sync"

	"snap/internal/frontier"
	"snap/internal/graph"
	"snap/internal/par"
)

// Inf marks unreachable vertices.
var Inf = math.Inf(1)

// Result holds the distance and parent arrays of one SSSP run.
// Parent[src] == src; unreachable vertices have Parent -1 and Dist Inf.
type Result struct {
	Dist   []float64
	Parent []int32
}

// Dijkstra is the serial reference implementation (lazy deletion over a
// binary heap). Negative weights are not supported.
func Dijkstra(g *graph.Graph, src int32) Result {
	n := g.NumVertices()
	dist := make([]float64, n)
	parent := make([]int32, n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	dist[src] = 0
	parent[src] = src
	h := &distHeap{}
	h.push(distItem{d: 0, v: src})
	for h.len() > 0 {
		it := h.pop()
		if it.d > dist[it.v] {
			continue // stale entry
		}
		v := it.v
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		for a := lo; a < hi; a++ {
			u := g.Adj[a]
			nd := it.d + arcWeight(g, a)
			if nd < dist[u] {
				dist[u] = nd
				parent[u] = v
				h.push(distItem{d: nd, v: u})
			}
		}
	}
	return Result{Dist: dist, Parent: parent}
}

func arcWeight(g *graph.Graph, a int64) float64 {
	if g.W == nil {
		return 1
	}
	return g.W[a]
}

// DeltaSteppingOptions configures DeltaStepping.
type DeltaSteppingOptions struct {
	// Delta is the bucket width. <= 0 selects delta = maxWeight/avgDegree
	// heuristically (and 1 for unweighted graphs, which degenerates to
	// level-synchronous BFS).
	Delta float64
	// Workers bounds parallelism; <= 0 means par.Workers().
	Workers int
}

// DeltaStepping computes SSSP with the delta-stepping label-correcting
// algorithm. Vertices are kept in buckets of width delta; each phase
// relaxes all light edges (w <= delta) of the current bucket in
// parallel until it stabilizes, then relaxes its heavy edges once.
// Matches Dijkstra exactly on non-negative weights.
//
// Unweighted graphs skip the bucket machinery entirely: every edge
// weighs 1, so delta-stepping degenerates to level-synchronous BFS,
// and the traversal runs through the shared frontier engine (the same
// queue the initial relaxation would otherwise hand-roll), with
// direction optimization enabled.
func DeltaStepping(g *graph.Graph, src int32, opt DeltaSteppingOptions) Result {
	workers := opt.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	if g.W == nil {
		return unweightedBFS(g, src, workers)
	}
	delta := opt.Delta
	if delta <= 0 {
		delta = defaultDelta(g)
	}
	n := g.NumVertices()
	dist := make([]float64, n)
	parent := make([]int32, n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	dist[src] = 0
	parent[src] = src

	buckets := map[int][]int32{0: {src}}
	inBucket := make([]int, n)
	for i := range inBucket {
		inBucket[i] = -1
	}
	inBucket[src] = 0
	var mu sync.Mutex

	getDist := func(v int32) float64 {
		mu.Lock()
		d := dist[v]
		mu.Unlock()
		return d
	}
	relax := func(u int32, nd float64, from int32) {
		mu.Lock()
		if nd < dist[u] {
			dist[u] = nd
			parent[u] = from
			b := int(nd / delta)
			if inBucket[u] != b {
				inBucket[u] = b
				buckets[b] = append(buckets[b], u)
			}
		}
		mu.Unlock()
	}

	for {
		// Find the lowest non-empty bucket.
		cur := -1
		for b := range buckets {
			if len(buckets[b]) > 0 && (cur == -1 || b < cur) {
				cur = b
			}
		}
		if cur == -1 {
			break
		}
		var settled []int32
		// Light-edge phases: re-process the bucket until it stops
		// refilling.
		for len(buckets[cur]) > 0 {
			batch := buckets[cur]
			buckets[cur] = nil
			// Deduplicate and drop stale entries.
			live := batch[:0]
			for _, v := range batch {
				if inBucket[v] == cur {
					inBucket[v] = -2 // being processed
					live = append(live, v)
				}
			}
			settled = append(settled, live...)
			par.ForChunkedN(len(live), workers, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					v := live[i]
					dv := getDist(v)
					alo, ahi := g.Offsets[v], g.Offsets[v+1]
					for a := alo; a < ahi; a++ {
						w := arcWeight(g, a)
						if w > delta {
							continue
						}
						relax(g.Adj[a], dv+w, v)
					}
				}
			})
		}
		delete(buckets, cur)
		// Heavy-edge phase over everything settled in this bucket.
		par.ForChunkedN(len(settled), workers, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				v := settled[i]
				dv := getDist(v)
				alo, ahi := g.Offsets[v], g.Offsets[v+1]
				for a := alo; a < ahi; a++ {
					w := arcWeight(g, a)
					if w <= delta {
						continue
					}
					relax(g.Adj[a], dv+w, v)
				}
			}
		})
	}
	return Result{Dist: dist, Parent: parent}
}

// unweightedBFS is the degenerate delta-stepping case (all weights 1):
// hop distances from one frontier-engine traversal, converted to the
// float64 Result convention.
func unweightedBFS(g *graph.Graph, src int32, workers int) Result {
	n := g.NumVertices()
	e := frontier.AcquireEngine(n)
	defer frontier.ReleaseEngine(e)
	e.RunOptions(g, src, frontier.Options{
		Workers:  workers,
		MaxDepth: -1,
		Alpha:    frontier.DefaultAlpha,
	})
	dist := make([]float64, n)
	parent := make([]int32, n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	for _, v := range e.Order() {
		dist[v] = float64(e.Dist(v))
		parent[v] = e.Parent(v)
	}
	return Result{Dist: dist, Parent: parent}
}

func defaultDelta(g *graph.Graph) float64 {
	if g.W == nil {
		return 1
	}
	maxW := 0.0
	for _, w := range g.W {
		if w > maxW {
			maxW = w
		}
	}
	avgDeg := float64(g.NumArcs()) / float64(max(1, g.NumVertices()))
	if avgDeg < 1 {
		avgDeg = 1
	}
	d := maxW / avgDeg
	if d <= 0 {
		d = 1
	}
	return d
}

type distItem struct {
	d float64
	v int32
}

type distHeap struct{ items []distItem }

func (h *distHeap) len() int { return len(h.items) }

func (h *distHeap) push(it distItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[i].d >= h.items[p].d {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *distHeap) pop() distItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.items[l].d < h.items[small].d {
			small = l
		}
		if r < last && h.items[r].d < h.items[small].d {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}
