// Package sssp implements single-source shortest paths: a binary-heap
// Dijkstra reference and the lock-free parallel delta-stepping
// algorithm (Meyer & Sanders) that SNAP uses for weighted small-world
// graphs, where the low diameter keeps the number of bucket phases
// small. The delta-stepping engine relaxes edges by CAS-min over
// atomic float64 bit patterns and recycles a cyclic bucket window —
// no mutex anywhere on the hot path; see delta.go and DESIGN.md §5e.
package sssp

import (
	"math"

	"snap/internal/graph"
)

// Inf marks unreachable vertices.
var Inf = math.Inf(1)

// Result holds the distance and parent arrays of one SSSP run.
// Parent[src] == src; unreachable vertices have Parent -1 and Dist Inf.
type Result struct {
	Dist   []float64
	Parent []int32
}

// Dijkstra is the serial reference implementation (lazy deletion over a
// binary heap). Negative weights are not supported.
func Dijkstra(g *graph.Graph, src int32) Result {
	n := g.NumVertices()
	dist := make([]float64, n)
	parent := make([]int32, n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	dist[src] = 0
	parent[src] = src
	h := &distHeap{}
	h.push(distItem{d: 0, v: src})
	for h.len() > 0 {
		it := h.pop()
		if it.d > dist[it.v] {
			continue // stale entry
		}
		v := it.v
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		for a := lo; a < hi; a++ {
			u := g.Adj[a]
			nd := it.d + arcWeight(g, a)
			if nd < dist[u] {
				dist[u] = nd
				parent[u] = v
				h.push(distItem{d: nd, v: u})
			}
		}
	}
	return Result{Dist: dist, Parent: parent}
}

func arcWeight(g *graph.Graph, a int64) float64 {
	if g.W == nil {
		return 1
	}
	return g.W[a]
}

// DeltaSteppingOptions configures DeltaStepping.
type DeltaSteppingOptions struct {
	// Delta is the bucket width. <= 0 selects delta = maxWeight/avgDegree
	// heuristically (and 1 for unweighted graphs, which degenerates to
	// level-synchronous BFS).
	Delta float64
	// Workers bounds parallelism; <= 0 means par.Workers().
	Workers int
	// Cancel, when non-nil, is polled at every bucket-phase boundary
	// (and per BFS level on the unweighted path). When it reports true
	// the run aborts early: distances are partial and must not be
	// served, but the workspace's clean-state invariant is restored so
	// it remains poolable — abandoned server requests stop consuming
	// CPU within one bucket phase without poisoning the pool.
	Cancel func() bool
}

// DeltaStepping computes SSSP with the lock-free parallel
// delta-stepping label-correcting algorithm. Vertices are kept in
// buckets of width delta; each phase relaxes all light edges
// (w <= delta) of the current bucket in parallel until it stabilizes,
// then relaxes its heavy edges once. Dist matches Dijkstra
// bit-identically on non-negative weights for any delta and worker
// count; Parent follows the deterministic minimum-arc tie-break
// documented on Workspace.Run.
//
// This convenience wrapper acquires a pooled Workspace and copies the
// results out (two allocations). Multi-source loops should hold a
// Workspace and call Run directly: repeated sources on one graph
// allocate nothing once warm.
func DeltaStepping(g *graph.Graph, src int32, opt DeltaSteppingOptions) Result {
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	ws.Run(g, src, opt)
	n := g.NumVertices()
	out := Result{Dist: make([]float64, n), Parent: make([]int32, n)}
	copy(out.Dist, ws.dist)
	copy(out.Parent, ws.parent)
	return out
}

// defaultDeltaFor is the paper's bucket-width heuristic
// delta = maxWeight/avgDegree, with the max weight supplied by the
// caller (computed once per run and shared with the cyclic-window
// sizing; see Workspace.maxWeight).
func defaultDeltaFor(g *graph.Graph, maxW float64) float64 {
	avgDeg := float64(g.NumArcs()) / float64(max(1, g.NumVertices()))
	if avgDeg < 1 {
		avgDeg = 1
	}
	d := maxW / avgDeg
	if d <= 0 {
		d = 1
	}
	return d
}

// DefaultDelta reports the bucket width the heuristic would select for
// g — an inspection helper for callers that want to scale it; it
// rescans g.W, unlike the engine, which computes the max weight once
// per run and caches it per graph.
func DefaultDelta(g *graph.Graph) float64 {
	if g.W == nil {
		return 1
	}
	mx := 0.0
	for _, w := range g.W {
		if w > mx {
			mx = w
		}
	}
	return defaultDeltaFor(g, mx)
}

type distItem struct {
	d float64
	v int32
}

type distHeap struct{ items []distItem }

func (h *distHeap) len() int { return len(h.items) }

func (h *distHeap) push(it distItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[i].d >= h.items[p].d {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *distHeap) pop() distItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.items[l].d < h.items[small].d {
			small = l
		}
		if r < last && h.items[r].d < h.items[small].d {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}
