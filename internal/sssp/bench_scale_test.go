package sssp

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"snap/internal/generate"
	"snap/internal/graph"
	"snap/internal/par"
)

// benchScale returns the RMAT scale for the weighted SSSP benchmarks:
// SNAP_BENCH_SCALE when set, else 14 under -short (CI smoke) and 18
// for a full run (the EXPERIMENTS.md numbers).
func benchScale(tb testing.TB) int {
	if s := os.Getenv("SNAP_BENCH_SCALE"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			tb.Fatalf("bad SNAP_BENCH_SCALE %q: %v", s, err)
		}
		return v
	}
	if testing.Short() {
		return 14
	}
	return 18
}

func weightedRMAT(scale int) *graph.Graph {
	n := 1 << scale
	return generate.RandomWeights(generate.RMAT(n, 8*n, generate.DefaultRMAT(), 1), 10, 2)
}

// BenchmarkDeltaSteppingRMAT measures one full delta-stepping run per
// op (fresh Result arrays) on a weighted RMAT instance, at the default
// delta and worker count.
func BenchmarkDeltaSteppingRMAT(b *testing.B) {
	g := weightedRMAT(benchScale(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DeltaStepping(g, 0, DeltaSteppingOptions{})
	}
}

// BenchmarkDijkstraRMAT is the serial binary-heap reference on the same
// instance, for context next to the delta-stepping numbers.
func BenchmarkDijkstraRMAT(b *testing.B) {
	g := weightedRMAT(benchScale(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dijkstra(g, 0)
	}
}

// BenchmarkDeltaSteppingSources runs many sources back to back the way
// the weighted analytics consume SSSP; steady-state allocations per
// source are the tracked metric.
func BenchmarkDeltaSteppingSources(b *testing.B) {
	g := weightedRMAT(benchScale(b) - 4)
	sources := make([]int32, 16)
	for i := range sources {
		sources[i] = int32(i * 37)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range sources {
			DeltaStepping(g, s, DeltaSteppingOptions{})
		}
	}
}

// BenchmarkDeltaSteppingWorkspace is the zero-allocation path: one
// pooled workspace reused across sources on one graph. After the
// first (warm-up) run the light/heavy arc partition and all buffers
// are cached, so allocs/op must be 0 in steady state.
func BenchmarkDeltaSteppingWorkspace(b *testing.B) {
	g := weightedRMAT(benchScale(b))
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	for s := int32(0); s < 64; s++ { // warm caches and buffers over the source cycle
		ws.Run(g, s, DeltaSteppingOptions{})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Run(g, int32(i%64), DeltaSteppingOptions{})
	}
}

// BenchmarkDeltaSteppingMutexBaseline is the seed implementation —
// one global mutex around every distance read and relaxation, buckets
// in a map scanned for its minimum key — kept test-only so the
// EXPERIMENTS.md before/after stays reproducible.
func BenchmarkDeltaSteppingMutexBaseline(b *testing.B) {
	g := weightedRMAT(benchScale(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deltaSteppingMutexBaseline(g, 0, DeltaSteppingOptions{})
	}
}

// deltaSteppingMutexBaseline is the seed's engine, verbatim apart from
// the name: the "before" side of the lock-free rewrite.
func deltaSteppingMutexBaseline(g *graph.Graph, src int32, opt DeltaSteppingOptions) Result {
	workers := opt.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	delta := opt.Delta
	if delta <= 0 {
		delta = DefaultDelta(g)
	}
	n := g.NumVertices()
	dist := make([]float64, n)
	parent := make([]int32, n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	dist[src] = 0
	parent[src] = src

	buckets := map[int][]int32{0: {src}}
	inBucket := make([]int, n)
	for i := range inBucket {
		inBucket[i] = -1
	}
	inBucket[src] = 0
	var mu sync.Mutex

	getDist := func(v int32) float64 {
		mu.Lock()
		d := dist[v]
		mu.Unlock()
		return d
	}
	relax := func(u int32, nd float64, from int32) {
		mu.Lock()
		if nd < dist[u] {
			dist[u] = nd
			parent[u] = from
			b := int(nd / delta)
			if inBucket[u] != b {
				inBucket[u] = b
				buckets[b] = append(buckets[b], u)
			}
		}
		mu.Unlock()
	}

	for {
		cur := -1
		for b := range buckets {
			if len(buckets[b]) > 0 && (cur == -1 || b < cur) {
				cur = b
			}
		}
		if cur == -1 {
			break
		}
		var settled []int32
		for len(buckets[cur]) > 0 {
			batch := buckets[cur]
			buckets[cur] = nil
			live := batch[:0]
			for _, v := range batch {
				if inBucket[v] == cur {
					inBucket[v] = -2
					live = append(live, v)
				}
			}
			settled = append(settled, live...)
			par.ForChunkedN(len(live), workers, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					v := live[i]
					dv := getDist(v)
					alo, ahi := g.Offsets[v], g.Offsets[v+1]
					for a := alo; a < ahi; a++ {
						w := g.W[a]
						if w > delta {
							continue
						}
						relax(g.Adj[a], dv+w, v)
					}
				}
			})
		}
		delete(buckets, cur)
		par.ForChunkedN(len(settled), workers, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				v := settled[i]
				dv := getDist(v)
				alo, ahi := g.Offsets[v], g.Offsets[v+1]
				for a := alo; a < ahi; a++ {
					w := g.W[a]
					if w <= delta {
						continue
					}
					relax(g.Adj[a], dv+w, v)
				}
			}
		})
	}
	return Result{Dist: dist, Parent: parent}
}
