package sssp

import (
	"math"
	"sync/atomic"

	"snap/internal/frontier"
	"snap/internal/graph"
	"snap/internal/par"
)

// The lock-free delta-stepping engine. Distances live in an atomic
// uint64 array holding float64 bit patterns: non-negative floats order
// the same as their bit patterns, so "relax" is a CAS-min on the raw
// bits and the hot path takes no lock anywhere. Buckets are a cyclic
// array of k = ceil(maxW/delta)+2 slots indexed by floor(d/delta) mod k
// — any relaxation from the current bucket lands within the window
// [base, base+k), so slots are recycled as the traversal advances (a
// bounded `far` list absorbs the overflow when a tiny delta would need
// more slots than the cap; the base only jumps forward when the window
// has fully drained, so no pending bucket can ever be skipped).
// Successful relaxations are recorded in per-worker insertion
// buffers and merged at phase boundaries with the counts -> cursors ->
// disjoint-scatter pattern of par.CursorsFromCounts, adapted to
// persistent per-slot arrays so a phase only pays for the slots it
// touched, never O(k). See DESIGN.md section 5e.

const (
	// maxSlots caps the cyclic bucket window; bucket indices at or past
	// the window go to the far list and are redistributed when the
	// window catches up. 2^14 slot headers cost 384 KiB per workspace.
	maxSlots = int64(1) << 14
	// infBits is math.Float64bits(+Inf), the clean state of distBits.
	infBits = uint64(0x7FF0000000000000)
	// noArc is the clean state of parentArc (identity of CAS-min).
	noArc = int64(math.MaxInt64)
)

// Workspace is the reusable state of the delta-stepping engine.
// Acquire one with AcquireWorkspace, call Run per source, and read the
// results through Dist/Parent/Result; after a warm-up run on a given
// graph, repeated sources allocate nothing. Between runs the vertex-
// indexed arrays satisfy a clean invariant (dist +Inf, parent -1,
// distBits infBits, parentArc noArc) restored sparsely — O(touched),
// not O(n) — from the previous run's reach set, mirroring the
// PR-1 epoch-stamped scheme. Not safe for concurrent use.
type Workspace struct {
	// Outputs of the last Run (clean invariant between runs).
	dist   []float64
	parent []int32

	// Relaxation state (clean invariant between runs).
	distBits  []uint64 // atomic float64 bit casts
	parentArc []int64  // atomic min certifying arc index
	touched   []int32  // vertices reached by the last run

	// Light/heavy arc partition, cached per (graph, delta): arcs of v
	// occupy arcAdj/arcW[g.Offsets[v]:g.Offsets[v+1]] with light arcs
	// (w <= delta) packed before lightEnd[v] and heavy after, so the
	// light-phase inner loop never re-tests w > delta.
	arcAdj         []int32
	arcW           []float64
	arcW32         []float32
	lightEnd       []int64
	cachedPart     *graph.Graph
	cachedDelta    float64
	cachedAllHeavy bool // no light arcs at all (delta below the minimum weight)
	cachedW32      bool // every weight round-trips through float32 exactly

	// Max edge weight, computed once per run and cached per graph: it
	// feeds both the default delta heuristic and the window size.
	cachedMaxWG *graph.Graph
	cachedMaxW  float64

	// Cyclic bucket window and overflow.
	slots [][]int32
	far   []int32

	// Bucket processing scratch.
	live    []int32
	settled []int32
	stampD  []uint32 // drain dedup stamps
	stampS  []uint32 // per-bucket settled dedup stamps
	epochD  uint32
	epochS  uint32

	// Per-worker insertion buffers.
	wk []deltaWorker

	// Phase-merge scratch (union of touched slots).
	unionSlots []int32
	slotStamp  []uint32
	slotEpoch  uint32

	// parentArcUsed marks that the last run wrote parentArc (directed
	// graphs only), so reset can skip restoring it otherwise.
	parentArcUsed bool

	// Per-run engine state, embedded so Run allocates nothing: a
	// stack-declared run header would escape into the parallel-phase
	// closures and cost one heap allocation per source.
	run deltaRun
}

// deltaWorker is one worker's insertion state for a single phase: the
// (slot, vertex) pairs it emitted, its per-slot histogram (counts),
// which slots it touched (for sparse cursor building and reset), plus
// overflow and first-touch side channels.
type deltaWorker struct {
	slot       []int32
	vert       []int32
	counts     []int64
	slotsUsed  []int32
	far        []int32
	firstTouch []int32
	_          [8]uint64 // keep adjacent workers' append-heavy headers apart
}

var wsPool = par.NewPool(func() *Workspace { return &Workspace{} })

// AcquireWorkspace returns a pooled delta-stepping workspace. Release
// it with ReleaseWorkspace when done; Run sizes it to the graph.
func AcquireWorkspace() *Workspace { return wsPool.Get() }

// ReleaseWorkspace returns a workspace to the shared pool. The arrays
// backing the last Run's Dist/Parent go with it; copy them out first if
// they must outlive the release.
func ReleaseWorkspace(ws *Workspace) { wsPool.Put(ws) }

// Dist returns the distance array of the last Run, Inf for unreachable
// vertices. The slice is workspace-owned: valid until the next Run.
func (ws *Workspace) Dist() []float64 { return ws.dist }

// Parent returns the shortest-path-tree parent array of the last Run:
// Parent[src] = src, unreachable vertices -1, and every other reached
// vertex the deterministic minimum-arc-index certifying parent (see
// Run). Workspace-owned; valid until the next Run.
func (ws *Workspace) Parent() []int32 { return ws.parent }

// Result bundles the workspace-owned Dist and Parent slices.
func (ws *Workspace) Result() Result { return Result{Dist: ws.dist, Parent: ws.parent} }

// Reached returns the vertices reached by the last Run (including the
// source), in no particular order. Serving layers summarize a run —
// reached count, distance sum, maximum — in O(reached) from this slice
// instead of scanning the O(n) distance array. Read-only,
// workspace-owned, valid until the next Run.
func (ws *Workspace) Reached() []int32 { return ws.touched }

// resize establishes the clean invariant for n vertices. Fresh
// allocations are filled to capacity so later in-capacity regrows stay
// clean; previously used entries were restored by the run that touched
// them.
func (ws *Workspace) resize(n int) {
	if cap(ws.dist) < n {
		ws.dist = make([]float64, n)
		ws.dist = ws.dist[:cap(ws.dist)]
		for i := range ws.dist {
			ws.dist[i] = Inf
		}
		ws.parent = make([]int32, cap(ws.dist))
		for i := range ws.parent {
			ws.parent[i] = -1
		}
		ws.distBits = make([]uint64, cap(ws.dist))
		for i := range ws.distBits {
			ws.distBits[i] = infBits
		}
		ws.parentArc = make([]int64, cap(ws.dist))
		for i := range ws.parentArc {
			ws.parentArc[i] = noArc
		}
		ws.stampD = make([]uint32, cap(ws.dist))
		ws.stampS = make([]uint32, cap(ws.dist))
		ws.epochD = 0
		ws.epochS = 0
	}
	ws.dist = ws.dist[:n]
	ws.parent = ws.parent[:n]
	ws.distBits = ws.distBits[:n]
	ws.parentArc = ws.parentArc[:n]
	ws.stampD = ws.stampD[:n]
	ws.stampS = ws.stampS[:n]
}

// reset restores the clean invariant from the previous run's reach set.
// parentArc is only written by directed runs (undirected runs resolve
// parents bucket by bucket), so its restore is gated on the dirty flag.
func (ws *Workspace) reset() {
	if ws.parentArcUsed {
		ws.parentArcUsed = false
		for _, v := range ws.touched {
			ws.parentArc[v] = noArc
		}
	}
	for _, v := range ws.touched {
		ws.dist[v] = Inf
		ws.parent[v] = -1
		ws.distBits[v] = infBits
	}
	ws.touched = ws.touched[:0]
}

// maxWeight returns the maximum edge weight of g, computed once and
// cached per graph (the satellite fix for defaultDelta rescanning all
// of g.W on every call): both the delta heuristic and the cyclic
// window size reuse it.
func (ws *Workspace) maxWeight(g *graph.Graph, workers int) float64 {
	if ws.cachedMaxWG == g {
		return ws.cachedMaxW
	}
	nA := len(g.W)
	mx := 0.0
	if workers <= 1 || nA < 1<<14 {
		for _, w := range g.W {
			if w > mx {
				mx = w
			}
		}
	} else {
		partial := make([]float64, workers)
		par.ForChunkedN(nA, workers, func(w, lo, hi int) {
			m := 0.0
			for i := lo; i < hi; i++ {
				if g.W[i] > m {
					m = g.W[i]
				}
			}
			partial[w] = m
		})
		for _, m := range partial {
			if m > mx {
				mx = m
			}
		}
	}
	ws.cachedMaxWG = g
	ws.cachedMaxW = mx
	return mx
}

// preparePartition builds (or reuses) the light/heavy arc partition
// for (g, delta).
func (ws *Workspace) preparePartition(g *graph.Graph, delta float64, workers int) {
	if ws.cachedPart == g && ws.cachedDelta == delta {
		return
	}
	n := g.NumVertices()
	nA := g.NumArcs()
	if cap(ws.arcAdj) < nA {
		ws.arcAdj = make([]int32, nA)
		ws.arcW = make([]float64, nA)
		ws.arcW32 = make([]float32, nA)
	}
	ws.arcAdj = ws.arcAdj[:nA]
	ws.arcW = ws.arcW[:nA]
	ws.arcW32 = ws.arcW32[:nA]
	if cap(ws.lightEnd) < n {
		ws.lightEnd = make([]int64, n)
	}
	ws.lightEnd = ws.lightEnd[:n]
	var notW32 int32
	par.ForChunkedN(n, workers, func(_, lo, hi int) {
		inexact := false
		for v := lo; v < hi; v++ {
			alo, ahi := g.Offsets[v], g.Offsets[v+1]
			e := alo
			for a := alo; a < ahi; a++ {
				if w := g.W[a]; w <= delta {
					w32 := float32(w)
					inexact = inexact || float64(w32) != w
					ws.arcAdj[e] = g.Adj[a]
					ws.arcW[e] = w
					ws.arcW32[e] = w32
					e++
				}
			}
			ws.lightEnd[v] = e
			for a := alo; a < ahi; a++ {
				if w := g.W[a]; w > delta {
					w32 := float32(w)
					inexact = inexact || float64(w32) != w
					ws.arcAdj[e] = g.Adj[a]
					ws.arcW[e] = w
					ws.arcW32[e] = w32
					e++
				}
			}
		}
		if inexact {
			atomic.StoreInt32(&notW32, 1)
		}
	})
	ws.cachedPart = g
	ws.cachedDelta = delta
	ws.cachedW32 = notW32 == 0
	allHeavy := true
	for v := 0; v < n; v++ {
		if ws.lightEnd[v] != g.Offsets[v] {
			allHeavy = false
			break
		}
	}
	ws.cachedAllHeavy = allHeavy
}

// sizeBuckets sizes the cyclic window and per-worker state for k slots
// and `workers` workers.
func (ws *Workspace) sizeBuckets(k int64, workers int) {
	for int64(len(ws.slots)) < k {
		ws.slots = append(ws.slots, nil)
	}
	for int64(len(ws.slotStamp)) < k {
		ws.slotStamp = append(ws.slotStamp, 0)
	}
	for len(ws.wk) < workers {
		ws.wk = append(ws.wk, deltaWorker{})
	}
	for w := range ws.wk[:workers] {
		wk := &ws.wk[w]
		for int64(len(wk.counts)) < k {
			wk.counts = append(wk.counts, 0)
		}
	}
}

// nextEpoch bumps an epoch counter, clearing the stamp array on uint32
// wraparound so a stale stamp can never collide with a new epoch.
func nextEpoch(epoch *uint32, stamp []uint32) uint32 {
	*epoch++
	if *epoch == 0 {
		for i := range stamp {
			stamp[i] = 0
		}
		*epoch = 1
	}
	return *epoch
}

// bucketOf maps a distance to its absolute bucket index. The same
// expression is used at insertion and at drain so an entry's target
// bucket is reproducible from its distance.
func bucketOf(d, delta float64) int64 {
	q := d / delta
	if q >= float64(int64(1)<<62) {
		return int64(1) << 62
	}
	return int64(q)
}

// deltaRun is the per-run view of the engine: immutable parameters plus
// the window base and current bucket (both fixed for the duration of
// any parallel phase). The window covers absolute buckets
// [base, base+k); base <= cur <= base+k always holds, and base only
// advances in redistributeFar once every window slot has drained.
type deltaRun struct {
	ws       *Workspace
	g        *graph.Graph
	delta    float64
	k        int64
	base     int64
	cur      int64
	queued   int64
	workers  int
	allHeavy bool
	// settleEpoch is the run-wide settle stamp epoch for the fused
	// all-heavy single-worker drain (see processBucketAllHeavy).
	settleEpoch uint32
}

// Run computes SSSP from src into the workspace. Results are exposed
// through Dist/Parent/Result and stay valid until the next Run.
//
// Dist is bit-identical to Dijkstra for any delta and worker count:
// both algorithms converge to the unique least fixed point of
// dist[v] = min over arcs (u,v) of fl(dist[u] + w), evaluated in the
// same float64 arithmetic. Parent follows a deterministic documented
// tie-break: Parent[v] is the tail of the minimum-index arc a with
// dist[tail(a)] + w[a] == dist[v], resolved by a CAS-min post-pass
// over the reached subgraph.
//
// Unweighted graphs (g.W == nil) skip the bucket machinery: every edge
// weighs 1, delta-stepping degenerates to level-synchronous BFS, and
// the traversal runs on the shared direction-optimizing frontier
// engine instead.
func (ws *Workspace) Run(g *graph.Graph, src int32, opt DeltaSteppingOptions) {
	n := g.NumVertices()
	ws.reset() // restore the clean invariant before any resize can shrink the arrays
	ws.resize(n)
	if n == 0 {
		return
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	if g.W == nil {
		ws.runUnweighted(g, src, workers, opt.Cancel)
		return
	}
	maxW := ws.maxWeight(g, workers)
	delta := opt.Delta
	if delta <= 0 {
		delta = defaultDeltaFor(g, maxW)
	}
	ws.preparePartition(g, delta, workers)
	k := maxSlots
	if ratio := maxW / delta; ratio < float64(maxSlots-2) {
		k = int64(math.Ceil(ratio)) + 2
	}
	ws.sizeBuckets(k, workers)

	r := &ws.run
	*r = deltaRun{ws: ws, g: g, delta: delta, k: k, workers: workers, allHeavy: ws.cachedAllHeavy}
	if r.allHeavy && workers == 1 && !g.Directed() {
		r.settleEpoch = nextEpoch(&ws.epochS, ws.stampS)
	}
	atomic.StoreUint64(&ws.distBits[src], 0) // Float64bits(0) == 0
	ws.touched = append(ws.touched, src)
	ws.slots[0] = append(ws.slots[0][:0], src)
	r.queued = 1

	for r.queued > 0 {
		if opt.Cancel != nil && opt.Cancel() {
			ws.abort(r)
			return
		}
		// Find the lowest non-empty bucket in the window [base, base+k).
		// Relaxations never produce a bucket below cur, so cur advances
		// monotonically and the scan never needs to look back; anything
		// at or past base+k sits in the far list. cur is deliberately
		// NOT advanced past a drained bucket: a heavy-phase relaxation
		// can round fl(dv+w) back into bucket cur (see
		// processBucketAllHeavy), and slot cur%k next recurs at bucket
		// cur+k — outside the window — so skipping it would strand the
		// entry (hanging the queued count, or dropping the improved
		// vertex's relaxations as stale). Rescanning from cur re-drains
		// the slot until it stays empty, in every heavy arm.
		found := false
		for b := r.cur; b < r.base+r.k; b++ {
			if len(ws.slots[b%r.k]) > 0 {
				r.cur = b
				found = true
				break
			}
		}
		if !found {
			r.redistributeFar()
			continue
		}
		r.processBucket()
	}
	r.finalize(src)
	r.g = nil // drop the graph reference while pooled
}

// abort cleans up a cancelled run: the bucket window and overflow list
// may still hold entries (a completed run drains both), and leaving
// them behind would leak ghost work into the workspace's next Run. The
// touched list is complete at every phase boundary — the only points
// Run polls Cancel — so reset's sparse clean-state restore stays exact.
func (ws *Workspace) abort(r *deltaRun) {
	for i := range ws.slots {
		ws.slots[i] = ws.slots[i][:0]
	}
	ws.far = ws.far[:0]
	ws.settled = ws.settled[:0]
	r.g = nil
}

// runUnweighted is the degenerate all-weights-1 case on the shared
// frontier engine, converted to the float64 Result convention.
func (ws *Workspace) runUnweighted(g *graph.Graph, src int32, workers int, cancel func() bool) {
	e := frontier.AcquireEngine(g.NumVertices())
	defer frontier.ReleaseEngine(e)
	e.RunOptions(g, src, frontier.Options{
		Workers:  workers,
		MaxDepth: -1,
		Alpha:    frontier.DefaultAlpha,
		Cancel:   cancel,
	})
	ws.touched = append(ws.touched, e.Order()...)
	for _, v := range e.Order() {
		ws.dist[v] = float64(e.Dist(v))
		ws.parent[v] = e.Parent(v)
	}
}

// relax is the lock-free edge relaxation: CAS-min on the distance bit
// pattern, recording the new bucket entry in the calling worker's
// insertion buffer on success. old == infBits detects first touch.
func (r *deltaRun) relax(wk *deltaWorker, v int32, nd float64) {
	bits := math.Float64bits(nd)
	addr := &r.ws.distBits[v]
	for {
		old := atomic.LoadUint64(addr)
		if old <= bits {
			return
		}
		if !atomic.CompareAndSwapUint64(addr, old, bits) {
			continue
		}
		if old == infBits {
			wk.firstTouch = append(wk.firstTouch, v)
		}
		b := bucketOf(nd, r.delta)
		if b >= r.base+r.k {
			wk.far = append(wk.far, v)
		} else {
			s := int32(b % r.k)
			if wk.counts[s] == 0 {
				wk.slotsUsed = append(wk.slotsUsed, s)
			}
			wk.counts[s]++
			wk.slot = append(wk.slot, s)
			wk.vert = append(wk.vert, v)
		}
		return
	}
}

// merge drains every worker's insertion buffer into the persistent
// bucket slots: per-slot totals become write cursors (bucket-major,
// worker-minor — the par.CursorsFromCounts layout), then each worker
// scatters its entries into its disjoint range. Only slots touched
// this phase are visited. Returns the number of entries added.
func (r *deltaRun) merge() int64 {
	ws := r.ws
	epoch := nextEpoch(&ws.slotEpoch, ws.slotStamp)
	union := ws.unionSlots[:0]
	for w := 0; w < r.workers; w++ {
		for _, s := range ws.wk[w].slotsUsed {
			if ws.slotStamp[s] != epoch {
				ws.slotStamp[s] = epoch
				union = append(union, s)
			}
		}
	}
	var added int64
	for _, s := range union {
		acc := int64(len(ws.slots[s]))
		for w := 0; w < r.workers; w++ {
			if c := ws.wk[w].counts[s]; c != 0 {
				ws.wk[w].counts[s] = acc
				acc += c
			}
		}
		added += acc - int64(len(ws.slots[s]))
		ws.slots[s] = growInt32(ws.slots[s], int(acc))
	}
	// Duplicated serial/parallel scatter: a shared func literal would
	// escape into ForEachN and allocate on every merge, even when the
	// serial arm runs (see the note in processBucket).
	if r.workers == 1 {
		wk := &ws.wk[0]
		for i, s := range wk.slot {
			idx := wk.counts[s]
			wk.counts[s] = idx + 1
			ws.slots[s][idx] = wk.vert[i]
		}
		for _, s := range wk.slotsUsed {
			wk.counts[s] = 0
		}
		wk.slot = wk.slot[:0]
		wk.vert = wk.vert[:0]
		wk.slotsUsed = wk.slotsUsed[:0]
	} else {
		par.ForEachN(r.workers, r.workers, func(w int) {
			wk := &ws.wk[w]
			for i, s := range wk.slot {
				idx := wk.counts[s]
				wk.counts[s] = idx + 1
				ws.slots[s][idx] = wk.vert[i]
			}
			for _, s := range wk.slotsUsed {
				wk.counts[s] = 0
			}
			wk.slot = wk.slot[:0]
			wk.vert = wk.vert[:0]
			wk.slotsUsed = wk.slotsUsed[:0]
		})
	}
	ws.unionSlots = union[:0]
	for w := 0; w < r.workers; w++ {
		wk := &ws.wk[w]
		ws.far = append(ws.far, wk.far...)
		added += int64(len(wk.far))
		wk.far = wk.far[:0]
		ws.touched = append(ws.touched, wk.firstTouch...)
		wk.firstTouch = wk.firstTouch[:0]
	}
	return added
}

// processBucket runs the light-edge phases of bucket cur until it
// stops refilling, then relaxes the heavy edges of everything settled
// in it. When the bucket empties, the distances of its members are
// final (no relaxation can produce a value below (cur+1)*delta from
// outside, and light closure exhausts the inside), which is the
// classic delta-stepping invariant the heavy phase relies on.
func (r *deltaRun) processBucket() {
	ws := r.ws
	g := r.g
	if r.workers == 1 && r.allHeavy && !g.Directed() {
		r.processBucketAllHeavy()
		return
	}
	s := r.cur % r.k
	epochS := nextEpoch(&ws.epochS, ws.stampS)
	for len(ws.slots[s]) > 0 {
		entries := ws.slots[s]
		ws.slots[s] = entries[:0]
		r.queued -= int64(len(entries))
		epochD := nextEpoch(&ws.epochD, ws.stampD)
		live := ws.live[:0]
		for _, v := range entries {
			// Drop stale entries (the vertex was re-relaxed into a
			// different bucket after this entry was queued) and
			// same-batch duplicates.
			if bucketOf(math.Float64frombits(ws.distBits[v]), r.delta) != r.cur {
				continue
			}
			if ws.stampD[v] == epochD {
				continue
			}
			ws.stampD[v] = epochD
			live = append(live, v)
			if ws.stampS[v] != epochS {
				ws.stampS[v] = epochS
				ws.settled = append(ws.settled, v)
			}
		}
		ws.live = live
		if len(live) == 0 {
			continue
		}
		// The workers == 1 arms take a different, cheaper route than the
		// parallel closures: no atomics (single goroutine), the stale
		// test inlined into the arc loop so non-improving arcs — the
		// vast majority — never pay a call, entries appended straight
		// into the bucket slots (no insertion buffers, no merge), and
		// no func literals evaluated (closures passed to par escape,
		// and one heap allocation per phase would break the
		// zero-allocation steady state).
		if r.workers == 1 {
			for _, v := range live {
				dv := math.Float64frombits(ws.distBits[v])
				for a, end := g.Offsets[v], ws.lightEnd[v]; a < end; a++ {
					u := ws.arcAdj[a]
					nd := dv + ws.arcW[a]
					bits := math.Float64bits(nd)
					old := ws.distBits[u]
					if old <= bits {
						continue
					}
					r.commitSerial(u, nd, bits, old)
				}
			}
		} else {
			par.ForChunkedN(len(live), r.workers, func(w, lo, hi int) {
				wk := &ws.wk[w]
				for i := lo; i < hi; i++ {
					v := live[i]
					dv := math.Float64frombits(atomic.LoadUint64(&ws.distBits[v]))
					for a, end := g.Offsets[v], ws.lightEnd[v]; a < end; a++ {
						r.relax(wk, ws.arcAdj[a], dv+ws.arcW[a])
					}
				}
			})
			r.queued += r.merge()
		}
	}
	settled := ws.settled
	switch {
	case r.workers == 1 && !g.Directed():
		// Fused heavy phase + parent resolution. The two concerns split
		// an arc's neighbors disjointly: old > dvBits means u cannot
		// certify v (du + w > dv) but may be relaxable, while
		// old <= dvBits means u is final (its bucket already drained)
		// and cannot be improved, but may certify v. So the parent
		// scan rides the heavy sweep's loads for free instead of
		// re-streaming every settled vertex's adjacency in a second
		// pass; only the light segment needs its own (certify-only)
		// walk. See resolveParents for why the certification test
		// against current distances is exact here.
		for _, v := range settled {
			dvBits := ws.distBits[v]
			dv := math.Float64frombits(dvBits)
			p := int32(-1)
			for a, le := g.Offsets[v], ws.lightEnd[v]; a < le; a++ {
				u := ws.arcAdj[a]
				if old := ws.distBits[u]; old <= dvBits {
					if math.Float64frombits(old)+ws.arcW[a] == dv && (p < 0 || u < p) {
						p = u
					}
				}
			}
			for a, end := ws.lightEnd[v], g.Offsets[v+1]; a < end; a++ {
				u := ws.arcAdj[a]
				w := ws.arcW[a]
				old := ws.distBits[u]
				if old > dvBits {
					nd := dv + w
					bits := math.Float64bits(nd)
					if old > bits {
						r.commitSerial(u, nd, bits, old)
					}
				} else if math.Float64frombits(old)+w == dv && (p < 0 || u < p) {
					p = u
				}
			}
			ws.parent[v] = p
		}
		ws.settled = ws.settled[:0]
		return
	case r.workers == 1:
		for _, v := range settled {
			dv := math.Float64frombits(ws.distBits[v])
			for a, end := ws.lightEnd[v], g.Offsets[v+1]; a < end; a++ {
				u := ws.arcAdj[a]
				nd := dv + ws.arcW[a]
				bits := math.Float64bits(nd)
				old := ws.distBits[u]
				if old <= bits {
					continue
				}
				r.commitSerial(u, nd, bits, old)
			}
		}
	default:
		par.ForChunkedN(len(settled), r.workers, func(w, lo, hi int) {
			wk := &ws.wk[w]
			for i := lo; i < hi; i++ {
				v := settled[i]
				dv := math.Float64frombits(atomic.LoadUint64(&ws.distBits[v]))
				for a, end := ws.lightEnd[v], g.Offsets[v+1]; a < end; a++ {
					r.relax(wk, ws.arcAdj[a], dv+ws.arcW[a])
				}
			}
		})
		r.queued += r.merge()
	}
	if !g.Directed() {
		r.resolveParents(settled)
	}
	ws.settled = ws.settled[:0]
}

// processBucketAllHeavy is the single-worker undirected drain for runs
// whose delta sits below the minimum edge weight, so no arc is light —
// the shape the default heuristic produces on the weighted R-MAT
// instances, i.e. the benchmark hot path. With no light arcs a
// bucket's vertices cannot re-relax each other (a heavy relaxation
// from bucket cur lands past cur) and every certifying neighbor
// settled in a strictly earlier bucket, so a vertex is final the first
// time it is drained: the drain, the heavy phase, and the parent
// certification collapse into one pass guarded by one run-wide settle
// stamp — no live list, no settled list, no per-entry staleness
// division, no lightEnd loads, and the relaxation commit inlined.
//
// The one wrinkle is float rounding: fl(dv+w) can fall a hair short of
// the next bucket boundary and re-enter bucket cur, occasionally
// improving an already-settled vertex. The commit detects that case
// and clears the vertex's settle stamp (0 never matches an epoch), so
// the outer re-drain loop reprocesses it — and requeues anything it
// had relaxed at the stale distance — exactly like the general path's
// staleness machinery, just off the hot loop.
func (r *deltaRun) processBucketAllHeavy() {
	ws := r.ws
	if ws.cachedW32 {
		// Weight-compressed flavor: when every weight round-trips
		// through float32 exactly (integer weights, in particular),
		// fl(dv + float64(float32(w))) == fl(dv + w) bit for bit, and
		// streaming 4-byte weights halves the loop's dominant memory
		// traffic.
		r.processBucketAllHeavyW32()
		return
	}
	g := r.g
	s := r.cur % r.k
	epoch := r.settleEpoch
	pf := int64(0)
	for len(ws.slots[s]) > 0 {
		// Detach the drained batch from the slot storage by swapping in
		// the live scratch array: the b == cur rounding requeue below
		// appends back into slot s, and with a shared backing array a
		// burst of requeues could overwrite entries not yet read. The
		// two arrays ping-pong across iterations, so steady state still
		// allocates nothing.
		entries := ws.slots[s]
		ws.slots[s] = ws.live[:0]
		ws.live = entries
		r.queued -= int64(len(entries))
		for i, v := range entries {
			// The loop is latency-bound on the first cache lines of each
			// vertex's arc segment (settle order is effectively random),
			// so touch the segment a few entries ahead; the sink
			// accumulator keeps the loads from being dead-code
			// eliminated, and the store below publishes it.
			if i+6 < len(entries) {
				o := g.Offsets[entries[i+6]]
				pf += int64(ws.arcAdj[o]) + int64(math.Float64bits(ws.arcW[o]))
			}
			// One stamp covers duplicate entries, entries superseded by
			// settling in an earlier bucket, and the settle itself.
			if ws.stampS[v] == epoch {
				continue
			}
			ws.stampS[v] = epoch
			dvBits := ws.distBits[v]
			dv := math.Float64frombits(dvBits)
			p := int32(-1)
			for a, end := g.Offsets[v], g.Offsets[v+1]; a < end; a++ {
				u := ws.arcAdj[a]
				w := ws.arcW[a]
				old := ws.distBits[u]
				if old > dvBits {
					nd := dv + w
					bits := math.Float64bits(nd)
					if old <= bits {
						continue
					}
					ws.distBits[u] = bits
					if old == infBits {
						ws.touched = append(ws.touched, u)
					}
					b := bucketOf(nd, r.delta)
					if b >= r.base+r.k {
						ws.far = append(ws.far, u)
					} else {
						if b == r.cur {
							ws.stampS[u] = 0 // rounding edge: force reprocessing
						}
						bs := b % r.k
						ws.slots[bs] = append(ws.slots[bs], u)
					}
					r.queued++
				} else if math.Float64frombits(old)+w == dv && (p < 0 || u < p) {
					p = u
				}
			}
			ws.parent[v] = p
		}
	}
	prefetchSink = pf
}

// processBucketAllHeavyW32 is processBucketAllHeavy reading the
// float32 weight copy; see the dispatch comment there for why the
// arithmetic is bit-identical.
func (r *deltaRun) processBucketAllHeavyW32() {
	ws := r.ws
	g := r.g
	s := r.cur % r.k
	epoch := r.settleEpoch
	pf := int64(0)
	for len(ws.slots[s]) > 0 {
		// Detached batch: rounding requeues append to slot s, which must
		// not alias the batch being read (see processBucketAllHeavy).
		entries := ws.slots[s]
		ws.slots[s] = ws.live[:0]
		ws.live = entries
		r.queued -= int64(len(entries))
		for i, v := range entries {
			if i+6 < len(entries) {
				o := g.Offsets[entries[i+6]]
				pf += int64(ws.arcAdj[o]) + int64(math.Float32bits(ws.arcW32[o]))
			}
			if ws.stampS[v] == epoch {
				continue
			}
			ws.stampS[v] = epoch
			dvBits := ws.distBits[v]
			dv := math.Float64frombits(dvBits)
			p := int32(-1)
			for a, end := g.Offsets[v], g.Offsets[v+1]; a < end; a++ {
				u := ws.arcAdj[a]
				w := float64(ws.arcW32[a])
				old := ws.distBits[u]
				if old > dvBits {
					nd := dv + w
					bits := math.Float64bits(nd)
					if old <= bits {
						continue
					}
					ws.distBits[u] = bits
					if old == infBits {
						ws.touched = append(ws.touched, u)
					}
					b := bucketOf(nd, r.delta)
					if b >= r.base+r.k {
						ws.far = append(ws.far, u)
					} else {
						if b == r.cur {
							ws.stampS[u] = 0 // rounding edge: force reprocessing
						}
						bs := b % r.k
						ws.slots[bs] = append(ws.slots[bs], u)
					}
					r.queued++
				} else if math.Float64frombits(old)+w == dv && (p < 0 || u < p) {
					p = u
				}
			}
			ws.parent[v] = p
		}
	}
	prefetchSink = pf
}

// prefetchSink absorbs the prefetching loads of processBucketAllHeavy
// so the compiler cannot eliminate them.
var prefetchSink int64

// resolveParents assigns deterministic parents to the vertices settled
// by the bucket that just completed, for undirected graphs. Every
// certifying neighbor u of a settled v (dist[u] + w == dist[v], exact
// equality) has dist[u] <= dist[v], hence a bucket at or below the one
// just finished, hence an already-final distance — so the test against
// current distances is exact. On an undirected CSR the in-arc (u, v)
// mirrors an arc in v's own adjacency with the same weight, and global
// in-arc indices order by tail first, so the documented minimum-index
// certifying arc is simply the minimum certifying neighbor: one warm
// scan of v's arcs right after the heavy phase touched them, instead
// of finalize's cold sweep over the whole reached subgraph. Only the
// parallel path lands here — the single-worker path fuses the same
// certification into its heavy sweep in processBucket.
func (r *deltaRun) resolveParents(settled []int32) {
	ws := r.ws
	g := r.g
	par.ForChunkedN(len(settled), r.workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := settled[i]
			dv := math.Float64frombits(atomic.LoadUint64(&ws.distBits[v]))
			p := int32(-1)
			for a, end := g.Offsets[v], g.Offsets[v+1]; a < end; a++ {
				u := ws.arcAdj[a]
				if math.Float64frombits(atomic.LoadUint64(&ws.distBits[u]))+ws.arcW[a] == dv && (p < 0 || u < p) {
					p = u
				}
			}
			ws.parent[v] = p
		}
	})
}

// commitSerial finishes a single-worker relaxation after the caller's
// inline improvement test: plain (non-atomic) distance store, direct
// slot/far insertion, and direct queued/touched bookkeeping. Only
// called with old > bits from the one goroutine that owns the run.
func (r *deltaRun) commitSerial(v int32, nd float64, bits, old uint64) {
	ws := r.ws
	ws.distBits[v] = bits
	if old == infBits {
		ws.touched = append(ws.touched, v)
	}
	b := bucketOf(nd, r.delta)
	if b >= r.base+r.k {
		ws.far = append(ws.far, v)
	} else {
		s := b % r.k
		ws.slots[s] = append(ws.slots[s], v)
	}
	r.queued++
}

// redistributeFar is the window-recycling step for capped k: when
// every slot in [cur, base+k) is empty but entries remain, slide the
// whole window — base and cur jump together to the lowest live far
// bucket — and re-insert what now fits. An entry whose current bucket
// is below cur is stale: its vertex was relaxed into the window after
// the entry was queued and has already been processed at its final
// distance (window entries always drain before the base moves), so
// dropping it loses nothing. Because the base is fixed between
// redistributions, a far entry can never become due while the window
// still holds work — the overflow condition in relax is b >= base+k,
// and cur never passes base+k without landing here first.
func (r *deltaRun) redistributeFar() {
	ws := r.ws
	minB := int64(math.MaxInt64)
	for _, v := range ws.far {
		b := bucketOf(math.Float64frombits(ws.distBits[v]), r.delta)
		if b >= r.cur && b < minB {
			minB = b
		}
	}
	if minB == int64(math.MaxInt64) {
		r.queued -= int64(len(ws.far))
		ws.far = ws.far[:0]
		return
	}
	r.base = minB
	r.cur = minB
	kept := 0
	for _, v := range ws.far {
		b := bucketOf(math.Float64frombits(ws.distBits[v]), r.delta)
		switch {
		case b < r.cur:
			r.queued--
		case b < r.base+r.k:
			s := b % r.k
			ws.slots[s] = append(ws.slots[s], v)
		default:
			ws.far[kept] = v
			kept++
		}
	}
	ws.far = ws.far[:kept]
}

// finalize converts the converged distance bits to the output arrays
// and, for directed graphs, resolves deterministic parents (undirected
// graphs resolved them bucket by bucket in resolveParents): one sweep
// over each reached vertex's out-arcs min-reduces into parentArc, for
// any neighbor the arc certifies (dist[u] + w == dist[v], exact float
// equality — the arc of the last successful relaxation always
// qualifies), the key (arc index << 31 | tail). The arc index
// determines the tail, so ordering by key is ordering by arc index,
// and the minimum key both picks the documented minimum-index
// certifying arc and carries its tail — the O(touched) resolve pass
// then needs no second arc sweep. Graphs with 2^31 or more arcs (keys
// would overflow) take a two-pass fallback: min-reduce the bare arc
// index, then rescan to map winning arcs back to tails.
func (r *deltaRun) finalize(src int32) {
	ws := r.ws
	g := r.g
	touched := ws.touched
	if !g.Directed() {
		// Parents were resolved bucket by bucket (resolveParents); only
		// the distance bits need converting. O(touched), no arc sweep.
		if r.workers == 1 {
			for _, v := range touched {
				ws.dist[v] = math.Float64frombits(ws.distBits[v])
			}
		} else {
			par.ForChunkedN(len(touched), r.workers, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					v := touched[i]
					ws.dist[v] = math.Float64frombits(ws.distBits[v])
				}
			})
		}
		ws.parent[src] = src
		return
	}
	ws.parentArcUsed = true
	if g.NumArcs() < 1<<31 {
		const tailMask = int64(1)<<31 - 1
		if r.workers == 1 {
			for _, u := range touched {
				du := math.Float64frombits(ws.distBits[u])
				for a, end := g.Offsets[u], g.Offsets[u+1]; a < end; a++ {
					v := g.Adj[a]
					if du+g.W[a] == math.Float64frombits(ws.distBits[v]) {
						if key := a<<31 | int64(u); key < ws.parentArc[v] {
							ws.parentArc[v] = key
						}
					}
				}
			}
			for _, v := range touched {
				ws.dist[v] = math.Float64frombits(ws.distBits[v])
				if key := ws.parentArc[v]; key != noArc {
					ws.parent[v] = int32(key & tailMask)
				}
			}
			ws.parent[src] = src
			return
		}
		par.ForChunkedN(len(touched), r.workers, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				u := touched[i]
				du := math.Float64frombits(ws.distBits[u])
				for a, end := g.Offsets[u], g.Offsets[u+1]; a < end; a++ {
					v := g.Adj[a]
					if du+g.W[a] == math.Float64frombits(ws.distBits[v]) {
						casMinInt64(&ws.parentArc[v], a<<31|int64(u))
					}
				}
			}
		})
		par.ForChunkedN(len(touched), r.workers, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				v := touched[i]
				ws.dist[v] = math.Float64frombits(ws.distBits[v])
				if key := ws.parentArc[v]; key != noArc {
					ws.parent[v] = int32(key & tailMask)
				}
			}
		})
		ws.parent[src] = src
		return
	}
	par.ForChunkedN(len(touched), r.workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			u := touched[i]
			du := math.Float64frombits(ws.distBits[u])
			for a, end := g.Offsets[u], g.Offsets[u+1]; a < end; a++ {
				v := g.Adj[a]
				if du+g.W[a] == math.Float64frombits(ws.distBits[v]) {
					casMinInt64(&ws.parentArc[v], a)
				}
			}
		}
	})
	par.ForChunkedN(len(touched), r.workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			u := touched[i]
			ws.dist[u] = math.Float64frombits(ws.distBits[u])
			for a, end := g.Offsets[u], g.Offsets[u+1]; a < end; a++ {
				if ws.parentArc[g.Adj[a]] == a {
					ws.parent[g.Adj[a]] = u
				}
			}
		}
	})
	ws.parent[src] = src
}

func casMinInt64(addr *int64, v int64) {
	for {
		old := atomic.LoadInt64(addr)
		if old <= v || atomic.CompareAndSwapInt64(addr, old, v) {
			return
		}
	}
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	t := make([]int32, n, max(n, 2*cap(s)))
	copy(t, s)
	return t
}
