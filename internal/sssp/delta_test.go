package sssp

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"snap/internal/generate"
	"snap/internal/graph"
)

// reweight returns a weighted copy of g with weights drawn by pick.
func reweight(g *graph.Graph, pick func(rng *rand.Rand) float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := g.EdgeEndpoints()
	for i := range edges {
		edges[i].W = pick(rng)
	}
	return graph.MustBuild(g.NumVertices(), edges, graph.BuildOptions{
		Directed: g.Directed(),
		Weighted: true,
	})
}

func uniformW(rng *rand.Rand) float64 { return float64(1 + rng.Intn(10)) }
func equalW(*rand.Rand) float64       { return 3 }

// heavyTailW spans three orders of magnitude so the default delta
// leaves many heavy arcs and tiny deltas overflow the cyclic window.
func heavyTailW(rng *rand.Rand) float64 {
	u := rng.Float64()
	return 1 + math.Floor(999*u*u*u*u)
}

// parentOracle computes the documented deterministic Parent: for every
// reached v != src, the tail of the minimum-index arc a satisfying
// dist[tail(a)] + w[a] == dist[v] exactly.
func parentOracle(g *graph.Graph, src int32, dist []float64) []int32 {
	n := g.NumVertices()
	parent := make([]int32, n)
	bestArc := make([]int64, n)
	for i := range parent {
		parent[i] = -1
		bestArc[i] = math.MaxInt64
	}
	for u := int32(0); int(u) < n; u++ {
		du := dist[u]
		if math.IsInf(du, 1) {
			continue
		}
		for a := g.Offsets[u]; a < g.Offsets[u+1]; a++ {
			v := g.Adj[a]
			if du+g.W[a] == dist[v] && a < bestArc[v] {
				bestArc[v] = a
				parent[v] = u
			}
		}
	}
	parent[src] = src
	return parent
}

// TestDeltaSteppingEquivalenceMatrix drives the lock-free engine
// across graph families, weight distributions, bucket widths, and
// worker counts: Dist must be bit-identical to Dijkstra and Parent
// must equal the deterministic minimum-arc oracle in every cell.
func TestDeltaSteppingEquivalenceMatrix(t *testing.T) {
	type tc struct {
		name string
		g    *graph.Graph
	}
	rmat := generate.RMAT(220, 880, generate.DefaultRMAT(), 3)
	er := generate.ErdosRenyi(200, 700, 4)
	// Disconnected: 260 vertices, edges confined to the first 130.
	discEdges := []graph.Edge{}
	drng := rand.New(rand.NewSource(9))
	for i := 0; i < 400; i++ {
		discEdges = append(discEdges, graph.Edge{
			U: int32(drng.Intn(130)), V: int32(drng.Intn(130)),
		})
	}
	disc := graph.MustBuild(260, discEdges, graph.BuildOptions{})
	// Directed: an ER graph rebuilt with directed arcs.
	dirEdges := er.EdgeEndpoints()
	directed := graph.MustBuild(200, dirEdges, graph.BuildOptions{Directed: true})

	cases := []tc{}
	for _, base := range []tc{{"rmat", rmat}, {"er", er}, {"disc", disc}, {"directed", directed}} {
		cases = append(cases,
			tc{base.name + "/uniform", reweight(base.g, uniformW, 11)},
			tc{base.name + "/heavytail", reweight(base.g, heavyTailW, 12)},
			tc{base.name + "/allequal", reweight(base.g, equalW, 13)},
		)
	}
	deltas := []float64{0, 0.01, 1e9} // default heuristic, tiny (window overflow), huge (single bucket)
	workerCounts := []int{1, 2, 3, runtime.NumCPU()}
	for _, c := range cases {
		src := int32(1)
		want := Dijkstra(c.g, src)
		oracle := parentOracle(c.g, src, want.Dist)
		for _, delta := range deltas {
			for _, workers := range workerCounts {
				got := DeltaStepping(c.g, src, DeltaSteppingOptions{Delta: delta, Workers: workers})
				for v := range want.Dist {
					if math.Float64bits(got.Dist[v]) != math.Float64bits(want.Dist[v]) {
						t.Fatalf("%s delta=%g workers=%d: dist[%d] = %g, want %g (bit-exact)",
							c.name, delta, workers, v, got.Dist[v], want.Dist[v])
					}
					if got.Parent[v] != oracle[v] {
						t.Fatalf("%s delta=%g workers=%d: parent[%d] = %d, want %d (min-arc oracle)",
							c.name, delta, workers, v, got.Parent[v], oracle[v])
					}
				}
			}
		}
	}
}

// TestDeltaSteppingWorkspaceReuseManySources reuses one pooled
// workspace for 60+ runs alternating between two graphs of different
// sizes and weight ranges, exercising the sparse reset, the per-graph
// partition/max-weight caches, and cross-graph resizing.
func TestDeltaSteppingWorkspaceReuseManySources(t *testing.T) {
	g1 := reweight(generate.RMAT(300, 1200, generate.DefaultRMAT(), 5), uniformW, 21)
	g2 := reweight(generate.ErdosRenyi(140, 500, 6), heavyTailW, 22)
	want1, want2 := map[int32]Result{}, map[int32]Result{}
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	for i := 0; i < 64; i++ {
		g, want := g1, want1
		if i%3 == 2 {
			g, want = g2, want2
		}
		src := int32((i * 17) % g.NumVertices())
		if _, ok := want[src]; !ok {
			want[src] = Dijkstra(g, src)
		}
		delta := 0.0
		if i%5 == 4 {
			delta = 2.5
		}
		ws.Run(g, src, DeltaSteppingOptions{Delta: delta, Workers: 1 + i%3})
		exp := want[src]
		oracle := parentOracle(g, src, exp.Dist)
		for v := range exp.Dist {
			if math.Float64bits(ws.Dist()[v]) != math.Float64bits(exp.Dist[v]) {
				t.Fatalf("run %d src %d: dist[%d] = %g, want %g", i, src, v, ws.Dist()[v], exp.Dist[v])
			}
			if ws.Parent()[v] != oracle[v] {
				t.Fatalf("run %d src %d: parent[%d] = %d, want %d", i, src, v, ws.Parent()[v], oracle[v])
			}
		}
	}
}

// TestDeltaSteppingFarOverflow forces the capped cyclic window: a
// weight spread of six orders of magnitude with a tiny delta makes
// ceil(maxW/delta) dwarf maxSlots, so heavy relaxations must take the
// far-list detour and be redistributed as the window advances.
func TestDeltaSteppingFarOverflow(t *testing.T) {
	base := generate.ErdosRenyi(120, 420, 7)
	rng := rand.New(rand.NewSource(8))
	edges := base.EdgeEndpoints()
	for i := range edges {
		if rng.Intn(4) == 0 {
			edges[i].W = float64(100000 + rng.Intn(900000))
		} else {
			edges[i].W = float64(1 + rng.Intn(9))
		}
	}
	g := graph.MustBuild(120, edges, graph.BuildOptions{Weighted: true})
	want := Dijkstra(g, 0)
	oracle := parentOracle(g, 0, want.Dist)
	for _, workers := range []int{1, 3} {
		got := DeltaStepping(g, 0, DeltaSteppingOptions{Delta: 0.5, Workers: workers})
		for v := range want.Dist {
			if math.Float64bits(got.Dist[v]) != math.Float64bits(want.Dist[v]) {
				t.Fatalf("workers=%d: dist[%d] = %g, want %g", workers, v, got.Dist[v], want.Dist[v])
			}
			if got.Parent[v] != oracle[v] {
				t.Fatalf("workers=%d: parent[%d] = %d, want %d", workers, v, got.Parent[v], oracle[v])
			}
		}
	}
}

// TestDeltaSteppingSteadyStateAllocs pins the zero-allocation claim:
// once a workspace has run a source on a graph, further single-worker
// runs on that graph allocate nothing.
func TestDeltaSteppingSteadyStateAllocs(t *testing.T) {
	g := reweight(generate.RMAT(1<<10, 1<<13, generate.DefaultRMAT(), 9), uniformW, 31)
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	// Warm the buffers over the same source cycle the measurement uses:
	// steady state means the per-slot arrays and worker buffers have
	// grown to the high-water mark of the workload.
	for s, i := int32(0), 0; i < 12; i++ {
		ws.Run(g, s, DeltaSteppingOptions{Workers: 1})
		s = (s + 41) % int32(g.NumVertices())
	}
	src := int32(0)
	allocs := testing.AllocsPerRun(10, func() {
		ws.Run(g, src, DeltaSteppingOptions{Workers: 1})
		src = (src + 41) % int32(g.NumVertices())
	})
	if allocs != 0 {
		t.Fatalf("steady-state Run allocates %.1f times per run, want 0", allocs)
	}
}

// TestDeltaSteppingUnweightedWorkspace checks the degenerate BFS path
// through the workspace API, including its sparse reset bookkeeping.
func TestDeltaSteppingUnweightedWorkspace(t *testing.T) {
	g := generate.RMAT(400, 1600, generate.DefaultRMAT(), 10)
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	for _, src := range []int32{0, 7, 123, 7} {
		ws.Run(g, src, DeltaSteppingOptions{})
		want := Dijkstra(g, src)
		for v := range want.Dist {
			if ws.Dist()[v] != want.Dist[v] {
				t.Fatalf("src %d: dist[%d] = %g, want %g", src, v, ws.Dist()[v], want.Dist[v])
			}
		}
		if ws.Parent()[src] != src {
			t.Fatalf("src %d: parent[src] = %d", src, ws.Parent()[src])
		}
	}
}

// Rounding triple for the re-entry regressions below, found by search:
// w1 sits in bucket 5 of delta, w2 is heavy (w2 > delta), yet
// fl(w1+w2) floors back into bucket 5 — the float edge where a
// heavy-phase relaxation re-enters the bucket being processed. Typed
// variables, not constants: the scenario depends on float64 rounding
// at every step, and untyped constant arithmetic would evaluate the
// guard's sum in arbitrary precision instead. Each test re-verifies
// the properties so a value drift cannot silently void the scenario.
var (
	reentryDelta = float64(0.7680370929490794)
	reentryW1    = float64(3.840185464745397)
	reentryW2    = float64(0.7680370929490795)
)

func requireReentryTriple(t *testing.T) {
	t.Helper()
	if bucketOf(reentryW1, reentryDelta) != 5 {
		t.Fatal("reentryW1 drifted out of bucket 5")
	}
	if reentryW2 <= reentryDelta {
		t.Fatal("reentryW2 is no longer heavy")
	}
	if bucketOf(reentryW1+reentryW2, reentryDelta) != 5 {
		t.Fatal("fl(reentryW1+reentryW2) no longer re-enters bucket 5")
	}
}

// TestDeltaSteppingHeavyRoundingReentry pins the general-path handling
// of a heavy relaxation that rounds back into the current bucket:
// after bucket 5's heavy phase queues vertex 2 into slot 5, the run
// must re-drain that slot before advancing (slot 5 next recurs at
// bucket 5+k, outside the window), or 2's onward relaxations are lost
// and vertex 3 comes out unreached. The light 2-3 arc keeps the run
// off the fused all-heavy drain, and the far arc 0-4 overflows the
// capped window so a regression surfaces as a wrong answer rather
// than a livelock on a non-empty queue.
func TestDeltaSteppingHeavyRoundingReentry(t *testing.T) {
	requireReentryTriple(t)
	edges := []graph.Edge{
		{U: 0, V: 1, W: reentryW1},
		{U: 1, V: 2, W: reentryW2},
		{U: 2, V: 3, W: 0.5},
		{U: 0, V: 4, W: reentryDelta * 20000}, // past maxSlots buckets: far list
	}
	for _, directed := range []bool{true, false} {
		g := graph.MustBuild(5, edges, graph.BuildOptions{Directed: directed, Weighted: true})
		want := Dijkstra(g, 0)
		if math.IsInf(want.Dist[3], 1) {
			t.Fatal("scenario lost its path to vertex 3")
		}
		oracle := parentOracle(g, 0, want.Dist)
		for _, workers := range []int{1, 2, 3} {
			got := DeltaStepping(g, 0, DeltaSteppingOptions{Delta: reentryDelta, Workers: workers})
			for v := range want.Dist {
				if math.Float64bits(got.Dist[v]) != math.Float64bits(want.Dist[v]) {
					t.Fatalf("directed=%v workers=%d: dist[%d] = %g, want %g",
						directed, workers, v, got.Dist[v], want.Dist[v])
				}
				if got.Parent[v] != oracle[v] {
					t.Fatalf("directed=%v workers=%d: parent[%d] = %d, want %d",
						directed, workers, v, got.Parent[v], oracle[v])
				}
			}
		}
	}
}

// TestDeltaSteppingAllHeavyReentryAliasing pins the fused all-heavy
// drain against requeues outpacing the batch scan: bucket 5's batch is
// [1, 2], and draining vertex 1 rounds two heavy relaxations (to 3 and
// 4) back into bucket 5. If the drained batch still shares storage
// with slot 5, the second requeue overwrites the unread entry for
// vertex 2, which then never settles — no parent, and its pendant
// neighbor 6 never reached. Every arc is heavy, the graph undirected,
// and workers is 1, which is exactly the processBucketAllHeavy shape.
func TestDeltaSteppingAllHeavyReentryAliasing(t *testing.T) {
	requireReentryTriple(t)
	edges := []graph.Edge{
		{U: 0, V: 1, W: reentryW1},
		{U: 0, V: 2, W: reentryW1},
		{U: 1, V: 3, W: reentryW2},
		{U: 1, V: 4, W: reentryW2},
		{U: 2, V: 6, W: reentryW1},
		{U: 0, V: 5, W: reentryDelta * 20000}, // far list: regression fails loud, not livelocked
	}
	g := graph.MustBuild(7, edges, graph.BuildOptions{Weighted: true})
	want := Dijkstra(g, 0)
	if math.IsInf(want.Dist[6], 1) {
		t.Fatal("scenario lost its path to vertex 6")
	}
	oracle := parentOracle(g, 0, want.Dist)
	got := DeltaStepping(g, 0, DeltaSteppingOptions{Delta: reentryDelta, Workers: 1})
	for v := range want.Dist {
		if math.Float64bits(got.Dist[v]) != math.Float64bits(want.Dist[v]) {
			t.Fatalf("dist[%d] = %g, want %g", v, got.Dist[v], want.Dist[v])
		}
		if got.Parent[v] != oracle[v] {
			t.Fatalf("parent[%d] = %d, want %d", v, got.Parent[v], oracle[v])
		}
	}
}
