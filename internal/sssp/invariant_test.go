package sssp

import (
	"math"
	"testing"
	"testing/quick"

	"snap/internal/generate"
)

// Shortest-path distances satisfy the relaxation (triangle) condition
// over every edge: dist[v] <= dist[u] + w(u, v). This is the defining
// certificate of SSSP correctness, checked over random weighted graphs
// for the parallel delta-stepping implementation.
func TestQuickDeltaSteppingRelaxationCertificate(t *testing.T) {
	check := func(seed uint8, delta uint8) bool {
		g := generate.RandomWeights(
			generate.ErdosRenyi(50, 150, int64(seed)), 9, int64(seed)+1)
		d := float64(delta%8) / 2 // 0 (auto) .. 3.5
		r := DeltaStepping(g, 0, DeltaSteppingOptions{Delta: d, Workers: 3})
		for u := int32(0); int(u) < g.NumVertices(); u++ {
			if math.IsInf(r.Dist[u], 1) {
				continue
			}
			lo, hi := g.Offsets[u], g.Offsets[u+1]
			for a := lo; a < hi; a++ {
				v := g.Adj[a]
				if r.Dist[v] > r.Dist[u]+g.W[a]+1e-9 {
					return false
				}
			}
		}
		// Source must be 0; everything reachable must have a parent
		// chain terminating at the source.
		if r.Dist[0] != 0 {
			return false
		}
		for v := int32(1); int(v) < g.NumVertices(); v++ {
			if math.IsInf(r.Dist[v], 1) {
				continue
			}
			steps := 0
			for x := v; x != 0; x = r.Parent[x] {
				if r.Parent[x] < 0 || steps > g.NumVertices() {
					return false
				}
				steps++
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
