package ingest

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"snap/internal/bfs"
	"snap/internal/centrality"
	"snap/internal/community"
	"snap/internal/sssp"
)

// TestStreamReadersDuringCommits is the lock-free-query-path contract
// under the race detector: concurrent readers pin epochs and run
// kernels while the writer drives well over ten commits, with more
// readers hammering the maintained Components/PageRank/Communities
// kernels at the same time. Any unsynchronized access to a snapshot,
// the epoch refcount, or kernel state trips -race in CI.
func TestStreamReadersDuringCommits(t *testing.T) {
	const (
		n       = 400
		commits = 16
		readers = 4
	)
	s, err := NewEmpty(n, false, false, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Seed the first epoch so readers have something to traverse.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1200; i++ {
		s.Add(rng.Int31n(n), rng.Int31n(n))
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var pins atomic.Int64
	var wg sync.WaitGroup

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				e := s.Pin()
				if e == nil {
					return
				}
				g := e.Graph()
				// Traverse the pinned snapshot: every arc read races
				// with commits unless epochs really are immutable.
				res := bfs.Serial(g, rng.Int31n(int32(g.NumVertices())), nil)
				if len(res.Dist) != g.NumVertices() {
					t.Errorf("BFS on pinned epoch returned %d dists", len(res.Dist))
				}
				var arcs int64
				for v := 0; v < g.NumVertices(); v++ {
					arcs += int64(len(g.Neighbors(int32(v))))
				}
				if arcs != int64(g.NumArcs()) {
					t.Errorf("pinned epoch arcs %d != %d", arcs, g.NumArcs())
				}
				e.Close()
				pins.Add(1)
			}
		}(int64(r + 2))
	}
	// Maintained-kernel readers: these serialize on their own locks but
	// must never race with the committing writer.
	for _, q := range []func(){
		func() { s.Components() },
		func() { s.PageRank(centrality.PageRankOptions{Tolerance: 1e-6}) },
		func() { s.Communities(community.LouvainOptions{Seed: 1}) },
		func() { s.ConnectedQuery(0, 1) },
	} {
		wg.Add(1)
		go func(query func()) {
			defer wg.Done()
			for !stop.Load() {
				query()
			}
		}(q)
	}

	// The writer: interleaved adds/deletes, committing each batch. Wait
	// for the first reader pin so commits genuinely overlap readers
	// even on a single-CPU scheduler.
	for pins.Load() == 0 {
		runtime.Gosched()
	}
	wrng := rand.New(rand.NewSource(99))
	for c := 0; c < commits; c++ {
		e := s.Pin()
		ends := e.Graph().EdgeEndpoints()
		e.Close()
		for i := 0; i < 20 && len(ends) > 0; i++ {
			d := ends[wrng.Intn(len(ends))]
			if err := s.Delete(d.U, d.V); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 40; i++ {
			if err := s.Add(wrng.Int31n(n), wrng.Int31n(n)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()

	if got := s.Seq(); got != commits+1 {
		t.Fatalf("seq = %d, want %d", got, commits+1)
	}
	if pins.Load() == 0 {
		t.Fatal("readers never pinned an epoch")
	}
	// After the dust settles the current epoch is exactly the committed
	// edge set (sanity via the maintained components kernel).
	lab := s.Components()
	e := s.Pin()
	defer e.Close()
	if len(lab.Comp) != e.Graph().NumVertices() {
		t.Fatal("final labeling wrong size")
	}
}

// TestServerShapedPinQueryRelease is the serving tier's epoch
// lifecycle under the race detector, in the exact shape the serve
// handlers use it: observe Seq without pinning (the cache-key probe),
// Pin, run a kernel against the pinned snapshot — with pooled
// workspaces and with some queries cancelled mid-run, the way a
// deadline or a disconnected client tears a query down — then release,
// all while a writer publishes new epochs. The invariants: a pinned
// epoch's seq is never older than the seq observed before the pin, the
// pinned snapshot stays internally consistent no matter how many
// commits land during the query, and cancelled runs leave the pooled
// workspaces clean for the next handler.
func TestServerShapedPinQueryRelease(t *testing.T) {
	const (
		n        = 400
		commits  = 12
		handlers = 6
	)
	s, err := NewEmpty(n, false, true, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1600; i++ {
		s.AddWeighted(rng.Int31n(n), rng.Int31n(n), 1+rng.Float64()*9)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var queries atomic.Int64
	var wg sync.WaitGroup
	for h := 0; h < handlers; h++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				// The cache-key probe reads Seq without holding a pin;
				// the pin that follows may land on a newer epoch (a
				// commit slipped in between) but never an older one.
				observed := s.Seq()
				e := s.Pin()
				if e == nil {
					return
				}
				if e.Seq() < observed {
					t.Errorf("pinned seq %d older than observed %d", e.Seq(), observed)
				}
				g := e.Graph()
				src := rng.Int31n(int32(g.NumVertices()))
				switch rng.Intn(4) {
				case 0: // full BFS, pooled workspace
					ws := bfs.AcquireWorkspace(g.NumVertices())
					ws.Run(g, src, nil, -1)
					if ws.Dist(src) != 0 {
						t.Errorf("dist[src] = %d", ws.Dist(src))
					}
					bfs.ReleaseWorkspace(ws)
				case 1: // BFS torn down mid-run (deadline/disconnect shape)
					polls := 0
					bfs.Parallel(g, src, bfs.Options{
						Workers: 2,
						Cancel:  func() bool { polls++; return polls > 2 },
					})
				case 2: // weighted SSSP, pooled workspace
					ws := sssp.AcquireWorkspace()
					ws.Run(g, src, sssp.DeltaSteppingOptions{})
					sssp.ReleaseWorkspace(ws)
				default: // SSSP aborted at a bucket boundary
					polls := 0
					ws := sssp.AcquireWorkspace()
					ws.Run(g, src, sssp.DeltaSteppingOptions{
						Cancel: func() bool { polls++; return polls > 1 },
					})
					sssp.ReleaseWorkspace(ws)
				}
				e.Close()
				queries.Add(1)
			}
		}(int64(h + 11))
	}

	for queries.Load() == 0 {
		runtime.Gosched()
	}
	wrng := rand.New(rand.NewSource(17))
	for c := 0; c < commits; c++ {
		for i := 0; i < 60; i++ {
			if err := s.AddWeighted(wrng.Int31n(n), wrng.Int31n(n), 1+wrng.Float64()*9); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()

	if got := s.Seq(); got != commits+1 {
		t.Fatalf("seq = %d, want %d", got, commits+1)
	}
	if queries.Load() == 0 {
		t.Fatal("handlers never completed a query")
	}
}
