package ingest

import (
	"sync"

	"snap/internal/centrality"
	"snap/internal/community"
	"snap/internal/components"
	"snap/internal/frontier"
	"snap/internal/graph"
)

// kernelState carries the incrementally-maintained analytics of a
// Stream across epochs. Each kernel has its own lock so a slow query
// on one never blocks the others; commits touch this state only under
// short bookkeeping sections (the connected-components update is the
// longest, and it only pays a BFS when a real deletion might split a
// component). None of it blocks Pin, which stays lock-free.
type kernelState struct {
	// Connected components: a union-find tracker kept in lockstep with
	// the published epoch. Inserts union in near-constant amortized
	// time; a deletion forces an epoch-scoped split check (BFS over
	// the suspect components on the new snapshot) and only a detected
	// split discards the tracker for a lazy full recompute. ccMu is
	// held across the epoch pointer swap so the tracker and the
	// current epoch can never be observed out of sync.
	ccMu  sync.Mutex
	cc    *components.Incremental
	ccSeq uint64

	// PageRank: scores of epoch prSeq plus the seed vertices dirtied
	// by commits since. Batches are tagged with the epoch they lead
	// to, so a query pinned to epoch k consumes exactly the batches
	// with seq <= k and leaves in-flight newer ones. prMu serializes
	// the (long) computation; prDirtyMu guards only the cheap
	// commit-side append.
	prMu       sync.Mutex
	prScores   []float64
	prSeq      uint64
	prHave     bool
	prDirtyMu  sync.Mutex
	prTracking bool
	prDirty    []dirtyBatch
	prBuffered int

	// Louvain: the previous epoch's partition, used to warm-start the
	// move engine on the next query.
	cmMu     sync.Mutex
	cmAssign []int32
	cmCount  int
	cmQ      float64
	cmSeq    uint64
	cmHave   bool
}

type dirtyBatch struct {
	seq   uint64
	seeds []int32
	// overflow marks a batch whose seeds were dropped because the
	// buffer outgrew the vertex set — the consumer falls back to a
	// warm full iteration instead of a push.
	overflow bool
}

// publishCommit performs incremental-kernel bookkeeping for one commit
// and publishes the new epoch. Called with the stream mutex held; add
// and realDel are the deduped applied delta (realDel only pairs that
// existed in the superseded snapshot).
func (k *kernelState) publishCommit(s *Stream, old, e *Epoch, add, realDel []graph.Edge) {
	k.prDirtyMu.Lock()
	if k.prTracking {
		b := dirtyBatch{seq: e.seq}
		if want := 2 * (len(add) + len(realDel)); k.prBuffered+want > s.n {
			b.overflow = true
		} else {
			b.seeds = make([]int32, 0, 2*(len(add)+len(realDel)))
			for _, ed := range add {
				b.seeds = append(b.seeds, ed.U, ed.V)
			}
			for _, ed := range realDel {
				b.seeds = append(b.seeds, ed.U, ed.V)
			}
			k.prBuffered += len(b.seeds)
		}
		k.prDirty = append(k.prDirty, b)
	}
	k.prDirtyMu.Unlock()

	k.ccMu.Lock()
	if k.cc != nil && k.ccSeq == old.seq {
		switch {
		case s.directed && len(realDel) > 0:
			// Out-adjacency BFS cannot verify weak connectivity;
			// deletions on directed streams drop to a lazy recompute.
			k.cc = nil
		case len(realDel) > 0:
			k.cc.AddEdges(add)
			if splitsComponent(e.g, realDel) {
				k.cc = nil
			} else {
				k.ccSeq = e.seq
			}
		default:
			k.cc.AddEdges(add)
			k.ccSeq = e.seq
		}
	} else {
		k.cc = nil // tracker missed a commit; rebuild lazily
	}
	s.cur.Store(e)
	k.ccMu.Unlock()
	old.Close()
}

// splitsComponent reports whether deleting the given (previously
// existing) edges disconnected any of their endpoints on the new
// snapshot. If every deleted edge's endpoints remain connected, every
// old path is repairable and the component structure is unchanged —
// the union-find tracker stays exact. The check BFSes each suspect
// component at most once, labeling progressively: a BFS from an
// unlabeled vertex stamps its entire component, so two vertices are
// connected iff they end up with the same label.
func splitsComponent(g *graph.Graph, del []graph.Edge) bool {
	n := g.NumVertices()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	eng := frontier.AcquireEngine(n)
	defer frontier.ReleaseEngine(eng)
	var next int32
	for _, e := range del {
		if comp[e.U] < 0 {
			eng.Run(g, e.U, nil, -1)
			for _, v := range eng.Order() {
				comp[v] = next
			}
			next++
		}
		if comp[e.U] != comp[e.V] {
			return true
		}
	}
	return false
}

// Components returns the connected components of the current epoch
// (weak components on directed streams), maintained incrementally: an
// insert-only commit history is tracked by union-find without touching
// the snapshot, and only component-splitting deletions pay a
// recompute. The labeling is identical to components.Connected on the
// pinned snapshot (dense ids in smallest-member order).
func (s *Stream) Components() components.Labeling {
	k := &s.kernels
	k.ccMu.Lock()
	defer k.ccMu.Unlock()
	e := s.Pin()
	if e == nil {
		return components.Labeling{}
	}
	defer e.Close()
	if k.cc == nil || k.ccSeq != e.seq {
		lab := components.Connected(e.g, nil)
		k.cc = components.IncrementalFromLabeling(lab)
		k.ccSeq = e.seq
		return lab
	}
	return k.cc.Labeling()
}

// ConnectedQuery answers one connectivity question against the
// maintained tracker without materializing a labeling.
func (s *Stream) ConnectedQuery(u, v int32) (bool, error) {
	if err := s.check(u, v); err != nil {
		return false, err
	}
	k := &s.kernels
	k.ccMu.Lock()
	defer k.ccMu.Unlock()
	e := s.Pin()
	if e == nil {
		return false, nil
	}
	defer e.Close()
	if k.cc == nil || k.ccSeq != e.seq {
		k.cc = components.IncrementalFromLabeling(components.Connected(e.g, nil))
		k.ccSeq = e.seq
	}
	return k.cc.Connected(u, v), nil
}

// PageRank returns the PageRank scores of the current epoch,
// maintained incrementally: the first call pays a full power
// iteration, and later calls start from the previous epoch's scores —
// a residual push around the dirtied vertices when the accumulated
// delta is small (under a quarter of the vertex set), a warm power
// iteration otherwise. Results satisfy the same tolerance as
// centrality.PageRank on the pinned snapshot and are deterministic at
// any worker count. The returned slice is the caller's to keep.
func (s *Stream) PageRank(opt centrality.PageRankOptions) []float64 {
	k := &s.kernels
	k.prMu.Lock()
	defer k.prMu.Unlock()

	// Start tracking before pinning: a commit racing with this compute
	// lands a seq-tagged batch we will consume on the next call.
	k.prDirtyMu.Lock()
	k.prTracking = true
	k.prDirtyMu.Unlock()

	e := s.Pin()
	if e == nil {
		return nil
	}
	defer e.Close()

	k.prDirtyMu.Lock()
	var seeds []int32
	overflow := false
	rest := k.prDirty[:0]
	for _, b := range k.prDirty {
		if b.seq <= e.seq {
			overflow = overflow || b.overflow
			seeds = append(seeds, b.seeds...)
			k.prBuffered -= len(b.seeds)
		} else {
			rest = append(rest, b)
		}
	}
	k.prDirty = rest
	k.prDirtyMu.Unlock()

	if k.prHave && k.prSeq == e.seq && len(seeds) == 0 && !overflow {
		return append([]float64(nil), k.prScores...)
	}
	var prev []float64
	if k.prHave && k.prSeq <= e.seq {
		prev = k.prScores
	}
	var scores []float64
	switch {
	case prev == nil:
		scores = centrality.PageRankDelta(e.g, nil, nil, opt) // cold start
	case overflow || 4*len(seeds) > s.n:
		scores = centrality.PageRankFrom(e.g, prev, opt) // large delta: warm full iteration
	default:
		scores = centrality.PageRankDelta(e.g, prev, seeds, opt)
	}
	k.prScores = scores
	k.prSeq = e.seq
	k.prHave = true
	return append([]float64(nil), scores...)
}

// Communities returns a Louvain clustering of the current epoch,
// warm-started from the partition of the previous call: the move
// engine re-seeds from the previous epoch's communities, so it pays
// only for the vertices the delta dislodged, and the returned Q never
// falls below the carried-over partition's. opt.InitialAssign is
// overwritten by the maintained warm seed.
func (s *Stream) Communities(opt community.LouvainOptions) community.Clustering {
	k := &s.kernels
	k.cmMu.Lock()
	defer k.cmMu.Unlock()
	e := s.Pin()
	if e == nil {
		return community.Clustering{}
	}
	defer e.Close()
	if k.cmHave && k.cmSeq == e.seq {
		return community.Clustering{
			Assign: append([]int32(nil), k.cmAssign...),
			Count:  k.cmCount,
			Q:      k.cmQ,
		}
	}
	if k.cmHave && len(k.cmAssign) == s.n {
		opt.InitialAssign = k.cmAssign
	} else {
		opt.InitialAssign = nil
	}
	c := community.Louvain(e.g, opt)
	k.cmAssign = append(k.cmAssign[:0], c.Assign...)
	k.cmCount, k.cmQ = c.Count, c.Q
	k.cmSeq = e.seq
	k.cmHave = true
	return c
}