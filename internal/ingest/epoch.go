package ingest

import (
	"sync/atomic"

	"snap/internal/graph"
)

// Epoch is one immutable published snapshot of a Stream: a CSR graph
// plus a commit sequence number, lifetime-managed by a reference count.
// The stream holds one reference for the current epoch; every
// successful Pin takes another. When the last reference drops — the
// stream has moved on and all readers have closed — the underlying
// graph's Close runs, releasing any mmap'd container backing it (a
// no-op for heap-built graphs, exactly the PR-6 lifetime discipline).
//
// An Epoch's graph is immutable and safe for any number of concurrent
// readers; all parallel kernels in the tree run on it unchanged.
type Epoch struct {
	g    *graph.Graph
	seq  uint64
	refs atomic.Int32
}

func newEpoch(g *graph.Graph, seq uint64) *Epoch {
	e := &Epoch{g: g, seq: seq}
	e.refs.Store(1) // the stream's own reference
	return e
}

// Graph returns the epoch's immutable CSR snapshot. Valid until the
// pin that produced this epoch is closed.
func (e *Epoch) Graph() *graph.Graph { return e.g }

// Seq returns the commit sequence number (0 is the stream's initial
// snapshot; each commit increments it).
func (e *Epoch) Seq() uint64 { return e.seq }

// retain takes a reference iff the epoch is still live. The
// strong-try-retain CAS refuses to resurrect an epoch whose count
// already hit zero — a racing Pin simply reloads the stream's current
// pointer and retries on the newer epoch.
func (e *Epoch) retain() bool {
	for {
		r := e.refs.Load()
		if r <= 0 {
			return false
		}
		if e.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// Close releases one reference — call it exactly once per successful
// Pin (the stream releases its own reference internally). When the
// count reaches zero the snapshot's backing resource is released and
// the epoch's graph must not be touched again.
func (e *Epoch) Close() {
	switch r := e.refs.Add(-1); {
	case r == 0:
		e.g.Close()
	case r < 0:
		panic("ingest: epoch closed more times than pinned")
	}
}
