package ingest

import (
	"math/rand"
	"testing"

	"snap/internal/centrality"
	"snap/internal/generate"
	"snap/internal/graph"
)

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	scale := 14
	if testing.Short() {
		scale = 10
	}
	n := 1 << scale
	return generate.RMAT(n, 8*n, generate.DefaultRMAT(), 1)
}

func benchDelta(g *graph.Graph, frac float64, seed int64) (add, del []graph.Edge) {
	rng := rand.New(rand.NewSource(seed))
	n := int32(g.NumVertices())
	k := int(frac * float64(g.NumEdges()))
	ends := g.EdgeEndpoints()
	for i := 0; i < k; i++ {
		if i%10 < 7 {
			add = append(add, graph.Edge{U: rng.Int31n(n), V: rng.Int31n(n)})
		} else {
			e := ends[rng.Intn(len(ends))]
			del = append(del, e)
		}
	}
	return add, del
}

// BenchmarkIngestCommit measures one commit of a 1% edge delta through
// the delta-merge path.
func BenchmarkIngestCommit(b *testing.B) {
	g := benchGraph(b)
	add, del := benchDelta(g, 0.01, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := New(clone(g), Options{})
		for _, e := range add {
			s.Add(e.U, e.V)
		}
		for _, e := range del {
			s.Delete(e.U, e.V)
		}
		b.StartTimer()
		if _, err := s.Commit(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}

// BenchmarkIngestRebuild is the from-scratch baseline for the same
// delta: materialize the updated edge list and run the full Build
// pipeline.
func BenchmarkIngestRebuild(b *testing.B) {
	g := benchGraph(b)
	add, del := benchDelta(g, 0.01, 2)
	next, err := graph.MergeDelta(g, add, del)
	if err != nil {
		b.Fatal(err)
	}
	edges := next.EdgeEndpoints()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.Build(g.NumVertices(), edges, graph.BuildOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestPageRankIncremental measures the maintained PageRank
// after a small-delta commit (residual push + warm polish).
func BenchmarkIngestPageRankIncremental(b *testing.B) {
	g := benchGraph(b)
	add, del := benchDelta(g, 0.01, 3)
	opt := centrality.PageRankOptions{}
	prev := centrality.PageRank(g, opt)
	next, err := graph.MergeDelta(g, add, del)
	if err != nil {
		b.Fatal(err)
	}
	var seeds []int32
	for _, e := range append(append([]graph.Edge{}, add...), del...) {
		seeds = append(seeds, e.U, e.V)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		centrality.PageRankDelta(next, prev, seeds, opt)
	}
}

// BenchmarkIngestPageRankFull is the cold-recompute baseline on the
// same updated snapshot.
func BenchmarkIngestPageRankFull(b *testing.B) {
	g := benchGraph(b)
	add, del := benchDelta(g, 0.01, 3)
	next, err := graph.MergeDelta(g, add, del)
	if err != nil {
		b.Fatal(err)
	}
	opt := centrality.PageRankOptions{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		centrality.PageRank(next, opt)
	}
}

// clone copies a graph so repeated commits in the benchmark loop never
// share a base snapshot (the stream closes what it supersedes).
func clone(g *graph.Graph) *graph.Graph {
	out, err := graph.MergeDelta(g, nil, nil)
	if err != nil {
		panic(err)
	}
	return out
}
