// Package ingest is the snapshot-epoch streaming pipeline: edge
// insertions and deletions are buffered in a deduped last-write-wins
// delta, and each Commit merges the delta against the current
// snapshot's CSR (graph.MergeDelta, the PR-3 assembly kernel's
// batch-update entry) into a fresh immutable *graph.Graph, published
// as an Epoch by an atomic pointer swap.
//
// The query path is lock-free: readers Pin the current epoch (a CAS
// reference count, never a mutex), run any kernel in the tree against
// its immutable CSR, and Close the pin; commits swap the pointer
// without waiting for readers, and superseded epochs are reclaimed
// when their last pin closes. Writers and Commit serialize on the
// stream's mutex. Commits are deterministic: the published snapshot is
// bit-identical to a from-scratch Build of the equivalent edge list at
// any worker count.
//
// On top of the epochs the stream maintains incremental kernels where
// incrementality pays: connected components (union-find fast path for
// inserts, epoch-scoped BFS recompute only when a deletion may split a
// component), PageRank (residual push seeded from the previous epoch's
// scores, warm/cold power-iteration fallback for large deltas), and
// warm-started Louvain (re-seeded from the previous epoch's
// partition). This is the architecture of NetworKit's dynamic-
// algorithm suite rebuilt on the repo's parallel kernels, and the
// paper's "topological analysis of dynamic networks" future-work
// direction.
package ingest

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"snap/internal/graph"
	"snap/internal/par"
)

// Options configures a Stream.
type Options struct {
	// MaxPending, when > 0, auto-commits whenever the pending delta
	// reaches that many distinct edge operations.
	MaxPending int
	// Workers bounds commit-time merge parallelism; <= 0 means
	// par.Workers(). The published snapshot is identical either way.
	Workers int
}

// CommitStats reports what one commit changed.
type CommitStats struct {
	// Seq is the sequence number of the epoch this commit published
	// (or of the current epoch for an empty commit).
	Seq uint64
	// Added counts inserted pairs that were absent from the previous
	// snapshot; Updated counts insertions that replaced an existing
	// pair (a weight write); Deleted counts deletions of pairs that
	// actually existed.
	Added, Updated, Deleted int
	// Vertices and Edges describe the published snapshot.
	Vertices, Edges int
}

type pendingOp struct {
	u, v int32
	w    float64
	del  bool
}

// Stream buffers edge updates against the current snapshot epoch.
// All methods are safe for concurrent use; Pin is lock-free.
type Stream struct {
	opt      Options
	directed bool
	weighted bool
	n        int

	mu      sync.Mutex // writers + commit critical section
	pending map[uint64]pendingOp
	seq     uint64
	closed  bool

	cur atomic.Pointer[Epoch]

	kernels kernelState
}

// New wraps an existing immutable snapshot as epoch 0 of a stream. The
// stream takes ownership of g's lifetime: it is released (Close) when
// the stream moves past it and every reader pin is closed, so callers
// that also use g directly should do so through a pin.
func New(g *graph.Graph, opt Options) *Stream {
	s := &Stream{
		opt:      opt,
		directed: g.Directed(),
		weighted: g.Weighted(),
		n:        g.NumVertices(),
		pending:  make(map[uint64]pendingOp),
	}
	s.cur.Store(newEpoch(g, 0))
	return s
}

// NewEmpty starts a stream from an edgeless snapshot over n vertices.
// The vertex set of a stream is fixed for its lifetime.
func NewEmpty(n int, directed, weighted bool, opt Options) (*Stream, error) {
	g, err := graph.Build(n, nil, graph.BuildOptions{Directed: directed, Weighted: weighted})
	if err != nil {
		return nil, err
	}
	return New(g, opt), nil
}

// NumVertices reports the fixed vertex-set size.
func (s *Stream) NumVertices() int { return s.n }

// Directed reports the stream's edge orientation.
func (s *Stream) Directed() bool { return s.directed }

// Pin returns the current epoch with a reference taken, or nil after
// Close. The fast path is one atomic load and one CAS — no locks, and
// never blocked by a concurrent commit. Callers must Close the epoch
// exactly once when done.
func (s *Stream) Pin() *Epoch {
	for {
		e := s.cur.Load()
		if e == nil {
			return nil
		}
		if e.retain() {
			return e
		}
		// The epoch died between the load and the retain: a commit
		// just superseded it and the last pin closed. Reload.
	}
}

// Seq reports the sequence number of the current epoch.
func (s *Stream) Seq() uint64 {
	if e := s.cur.Load(); e != nil {
		return e.seq
	}
	return 0
}

// Pending reports the number of buffered distinct edge operations.
func (s *Stream) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

func (s *Stream) key(u, v int32) uint64 {
	if !s.directed && u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

func (s *Stream) check(u, v int32) error {
	if u < 0 || int(u) >= s.n || v < 0 || int(v) >= s.n {
		return fmt.Errorf("ingest: endpoint out of range: (%d,%d), n=%d", u, v, s.n)
	}
	return nil
}

// Add buffers the insertion of edge (u, v) with weight 1. Inserting a
// pair already in the snapshot is a weight write on weighted streams
// and a no-op otherwise. Self-loops are ignored (snapshots are simple
// graphs).
func (s *Stream) Add(u, v int32) error { return s.AddWeighted(u, v, 1) }

// AddWeighted buffers the insertion of edge (u, v) with weight w. The
// weight is ignored on unweighted streams. A later Add or Delete of
// the same pair overwrites this operation (last write wins).
func (s *Stream) AddWeighted(u, v int32, w float64) error {
	return s.apply(pendingOp{u: u, v: v, w: w})
}

// Delete buffers the deletion of edge (u, v). Deleting an absent pair
// is a no-op at commit time.
func (s *Stream) Delete(u, v int32) error {
	return s.apply(pendingOp{u: u, v: v, del: true})
}

// AddEdges buffers a batch of insertions (Edge.W is used on weighted
// streams). The batch obeys the same last-write-wins rule as a
// sequence of AddWeighted calls.
func (s *Stream) AddEdges(edges []graph.Edge) error {
	for _, e := range edges {
		if err := s.AddWeighted(e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return nil
}

func (s *Stream) apply(op pendingOp) error {
	if err := s.check(op.u, op.v); err != nil {
		return err
	}
	if op.u == op.v {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("ingest: stream closed")
	}
	s.pending[s.key(op.u, op.v)] = op
	if s.opt.MaxPending > 0 && len(s.pending) >= s.opt.MaxPending {
		_, err := s.commitLocked()
		s.mu.Unlock()
		return err
	}
	s.mu.Unlock()
	return nil
}

// Commit merges the buffered delta into a fresh snapshot and publishes
// it as the next epoch. Readers holding pins on older epochs are
// untouched. An empty delta publishes nothing and reports the current
// epoch. The published CSR is bit-identical to Build over the updated
// edge list regardless of Options.Workers.
func (s *Stream) Commit() (CommitStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return CommitStats{}, errors.New("ingest: stream closed")
	}
	return s.commitLocked()
}

func (s *Stream) commitLocked() (CommitStats, error) {
	old := s.cur.Load()
	if len(s.pending) == 0 {
		return CommitStats{
			Seq:      old.seq,
			Vertices: s.n,
			Edges:    old.g.NumEdges(),
		}, nil
	}
	add := make([]graph.Edge, 0, len(s.pending))
	del := make([]graph.Edge, 0)
	for _, op := range s.pending {
		if op.del {
			del = append(del, graph.Edge{U: op.u, V: op.v})
		} else {
			add = append(add, graph.Edge{U: op.u, V: op.v, W: op.w})
		}
	}
	workers := s.opt.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	next, err := graph.MergeDeltaWorkers(old.g, add, del, workers)
	if err != nil {
		return CommitStats{}, err
	}

	stats := CommitStats{Vertices: s.n, Edges: next.NumEdges()}
	realDel := del[:0]
	for _, e := range del {
		if old.g.HasEdge(e.U, e.V) {
			stats.Deleted++
			realDel = append(realDel, e)
		}
	}
	for _, e := range add {
		if old.g.HasEdge(e.U, e.V) {
			stats.Updated++
		} else {
			stats.Added++
		}
	}

	s.seq++
	stats.Seq = s.seq
	e := newEpoch(next, s.seq)

	// Incremental-kernel bookkeeping rides inside the publish critical
	// section (it performs the epoch pointer swap and releases the
	// stream's reference to the superseded epoch) so every maintained
	// structure observes commits in order.
	s.kernels.publishCommit(s, old, e, add, realDel)

	clear(s.pending)
	return stats, nil
}

// Close flushes nothing, releases the stream's reference to the
// current epoch, and rejects further updates. Pins already held stay
// valid until their own Close.
func (s *Stream) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if e := s.cur.Swap(nil); e != nil {
		e.Close()
	}
	return nil
}
