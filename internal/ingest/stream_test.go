package ingest

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"snap/internal/bfs"
	"snap/internal/centrality"
	"snap/internal/community"
	"snap/internal/components"
	"snap/internal/graph"
)

// streamModel mirrors a Stream's committed edge set: the reference for
// every epoch-semantics property below.
type streamModel struct {
	n        int
	directed bool
	weighted bool
	edges    map[[2]int32]float64
}

func newStreamModel(n int, directed, weighted bool) *streamModel {
	return &streamModel{n: n, directed: directed, weighted: weighted,
		edges: map[[2]int32]float64{}}
}

func (m *streamModel) key(u, v int32) [2]int32 {
	if !m.directed && u > v {
		u, v = v, u
	}
	return [2]int32{u, v}
}

func (m *streamModel) add(u, v int32, w float64) {
	if u != v {
		m.edges[m.key(u, v)] = w
	}
}

func (m *streamModel) del(u, v int32) {
	if u != v {
		delete(m.edges, m.key(u, v))
	}
}

func (m *streamModel) build(t testing.TB) *graph.Graph {
	t.Helper()
	list := make([]graph.Edge, 0, len(m.edges))
	for k, w := range m.edges {
		list = append(list, graph.Edge{U: k[0], V: k[1], W: w})
	}
	g, err := graph.Build(m.n, list, graph.BuildOptions{Directed: m.directed, Weighted: m.weighted})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func requireSameGraph(t *testing.T, tag string, got, want *graph.Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() ||
		got.Directed() != want.Directed() || got.Weighted() != want.Weighted() {
		t.Fatalf("%s: shape mismatch: %v vs %v", tag, got, want)
	}
	for i := range want.Offsets {
		if got.Offsets[i] != want.Offsets[i] {
			t.Fatalf("%s: Offsets[%d] = %d, want %d", tag, i, got.Offsets[i], want.Offsets[i])
		}
	}
	for i := range want.Adj {
		if got.Adj[i] != want.Adj[i] {
			t.Fatalf("%s: Adj[%d] = %d, want %d", tag, i, got.Adj[i], want.Adj[i])
		}
		if got.EID[i] != want.EID[i] {
			t.Fatalf("%s: EID[%d] = %d, want %d", tag, i, got.EID[i], want.EID[i])
		}
		if want.W != nil && got.W[i] != want.W[i] {
			t.Fatalf("%s: W[%d] = %g, want %g", tag, i, got.W[i], want.W[i])
		}
	}
}

// TestStreamEpochMatchesBuild is the tentpole property: after any
// interleaving of Add/Delete/Commit, the pinned snapshot is
// bit-identical (Offsets/Adj/EID/W) to a from-scratch Build of the
// equivalent edge list, at every worker count — so every deterministic
// kernel result on the pinned snapshot is bit-identical too.
func TestStreamEpochMatchesBuild(t *testing.T) {
	workerCounts := []int{1, 2, 3, runtime.NumCPU()}
	for _, directed := range []bool{false, true} {
		for _, weighted := range []bool{false, true} {
			for _, workers := range workerCounts {
				tag := fmt.Sprintf("dir=%v/w=%v/workers=%d", directed, weighted, workers)
				rng := rand.New(rand.NewSource(11))
				const n = 64
				model := newStreamModel(n, directed, weighted)
				s, err := NewEmpty(n, directed, weighted, Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				for step := 0; step < 200; step++ {
					u, v := rng.Int31n(n), rng.Int31n(n)
					switch rng.Intn(10) {
					case 0, 1: // delete
						if err := s.Delete(u, v); err != nil {
							t.Fatalf("%s: %v", tag, err)
						}
						model.del(u, v)
					case 2: // commit
						if _, err := s.Commit(); err != nil {
							t.Fatalf("%s: %v", tag, err)
						}
						e := s.Pin()
						requireSameGraph(t, tag, e.Graph(), model.build(t))
						e.Close()
					default: // add
						w := float64(rng.Intn(9)) + 1
						if err := s.AddWeighted(u, v, w); err != nil {
							t.Fatalf("%s: %v", tag, err)
						}
						if !weighted {
							w = 0
						}
						model.add(u, v, w)
					}
				}
				if _, err := s.Commit(); err != nil {
					t.Fatal(err)
				}
				e := s.Pin()
				want := model.build(t)
				requireSameGraph(t, tag+"/final", e.Graph(), want)

				// Deterministic kernels agree bitwise between the pinned
				// snapshot and the from-scratch build.
				gotBFS := bfs.Serial(e.Graph(), 0, nil)
				wantBFS := bfs.Serial(want, 0, nil)
				for i := range wantBFS.Dist {
					if gotBFS.Dist[i] != wantBFS.Dist[i] || gotBFS.Parent[i] != wantBFS.Parent[i] {
						t.Fatalf("%s: BFS diverges at %d", tag, i)
					}
				}
				gotCC := components.Connected(e.Graph(), nil)
				wantCC := components.Connected(want, nil)
				if gotCC.Count != wantCC.Count {
					t.Fatalf("%s: CC count %d vs %d", tag, gotCC.Count, wantCC.Count)
				}
				for i := range wantCC.Comp {
					if gotCC.Comp[i] != wantCC.Comp[i] {
						t.Fatalf("%s: CC label diverges at %d", tag, i)
					}
				}
				if !directed && want.NumEdges() > 0 {
					gotPR := centrality.PageRank(e.Graph(), centrality.PageRankOptions{})
					wantPR := centrality.PageRank(want, centrality.PageRankOptions{})
					for i := range wantPR {
						if gotPR[i] != wantPR[i] {
							t.Fatalf("%s: PageRank diverges at %d", tag, i)
						}
					}
					gotLv := community.Louvain(e.Graph(), community.LouvainOptions{Seed: 5})
					wantLv := community.Louvain(want, community.LouvainOptions{Seed: 5})
					if gotLv.Q != wantLv.Q || gotLv.Count != wantLv.Count {
						t.Fatalf("%s: Louvain diverges: %v vs %v", tag, gotLv.Q, wantLv.Q)
					}
					for i := range wantLv.Assign {
						if gotLv.Assign[i] != wantLv.Assign[i] {
							t.Fatalf("%s: Louvain assign diverges at %d", tag, i)
						}
					}
				}
				e.Close()
				s.Close()
			}
		}
	}
}

// TestStreamEpochLifetime pins an epoch, commits past it repeatedly,
// and verifies the pinned snapshot stays valid and bit-stable until
// its pin closes — and that the backing resource is released exactly
// when the last reference drops.
func TestStreamEpochLifetime(t *testing.T) {
	const n = 40
	s, err := NewEmpty(n, false, false, Options{})
	if err != nil {
		t.Fatal(err)
	}
	model := newStreamModel(n, false, false)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 80; i++ {
		u, v := rng.Int31n(n), rng.Int31n(n)
		s.Add(u, v)
		model.add(u, v, 0)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	pinned := s.Pin()
	wantOld := model.build(t)
	oldSeq := pinned.Seq()

	for c := 0; c < 12; c++ {
		for i := 0; i < 10; i++ {
			u, v := rng.Int31n(n), rng.Int31n(n)
			if rng.Intn(3) == 0 {
				s.Delete(u, v)
				model.del(u, v)
			} else {
				s.Add(u, v)
				model.add(u, v, 0)
			}
		}
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
		// The old pin is untouched by newer commits.
		requireSameGraph(t, fmt.Sprintf("pinned-after-%d-commits", c+1), pinned.Graph(), wantOld)
	}
	if s.Seq() == oldSeq {
		t.Fatal("commits did not advance the epoch")
	}
	cur := s.Pin()
	requireSameGraph(t, "current", cur.Graph(), model.build(t))
	cur.Close()
	pinned.Close()
	s.Close()
}

// TestStreamEpochRelease watches the PR-6 closer hook: a superseded
// epoch's graph is closed only when the stream has moved past it AND
// every pin is gone, in either order.
func TestStreamEpochRelease(t *testing.T) {
	mk := func() (*Stream, *int) {
		g := graph.MustBuild(8, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}, graph.BuildOptions{})
		released := 0
		g.SetCloser(func() error { released++; return nil })
		return New(g, Options{}), &released
	}

	// Commit first, close pin second.
	s, released := mk()
	pin := s.Pin()
	s.Add(4, 5)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if *released != 0 {
		t.Fatal("epoch released while still pinned")
	}
	pin.Close()
	if *released != 1 {
		t.Fatalf("released = %d after last pin closed, want 1", *released)
	}

	// Close pin first, commit second.
	s2, released2 := mk()
	pin2 := s2.Pin()
	pin2.Close()
	if *released2 != 0 {
		t.Fatal("epoch released while still current")
	}
	s2.Add(4, 5)
	if _, err := s2.Commit(); err != nil {
		t.Fatal(err)
	}
	if *released2 != 1 {
		t.Fatalf("released = %d after supersede, want 1", *released2)
	}

	// Stream Close releases the final epoch.
	s3, released3 := mk()
	s3.Close()
	if *released3 != 1 {
		t.Fatalf("released = %d after stream close, want 1", *released3)
	}
	if s3.Pin() != nil {
		t.Fatal("Pin after Close must return nil")
	}
	if err := s3.Add(0, 2); err == nil {
		t.Fatal("Add after Close must error")
	}
	if _, err := s3.Commit(); err == nil {
		t.Fatal("Commit after Close must error")
	}
	s.Close()
	s2.Close()
}

func TestStreamCommitStats(t *testing.T) {
	g := graph.MustBuild(6, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}},
		graph.BuildOptions{Weighted: true})
	s := New(g, Options{})
	defer s.Close()
	s.AddWeighted(0, 1, 9) // update
	s.Add(3, 4)            // added
	s.Delete(1, 2)         // deleted
	s.Delete(4, 5)         // absent: no-op
	st, err := s.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if st.Added != 1 || st.Updated != 1 || st.Deleted != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Seq != 1 || st.Edges != 2 || st.Vertices != 6 {
		t.Fatalf("stats = %+v", st)
	}
	// Empty commit: no new epoch.
	st2, err := s.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Seq != 1 || st2.Edges != 2 {
		t.Fatalf("empty commit stats = %+v", st2)
	}
}

func TestStreamLastWriteWins(t *testing.T) {
	s, err := NewEmpty(5, false, true, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.AddWeighted(0, 1, 3)
	s.Delete(1, 0) // overwrites the add (same canonical pair)
	s.AddWeighted(2, 3, 1)
	s.AddWeighted(3, 2, 7) // last write wins
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	e := s.Pin()
	defer e.Close()
	if e.Graph().HasEdge(0, 1) {
		t.Fatal("delete-after-add must win")
	}
	if w := e.Graph().Weights(2); len(w) != 1 || w[0] != 7 {
		t.Fatalf("weights(2) = %v, want [7]", w)
	}
}

func TestStreamAutoCommit(t *testing.T) {
	s, err := NewEmpty(100, false, false, Options{MaxPending: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := int32(0); i < 25; i++ {
		if err := s.Add(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if s.Seq() != 2 {
		t.Fatalf("seq = %d, want 2 auto-commits", s.Seq())
	}
	if s.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", s.Pending())
	}
}

func TestStreamErrors(t *testing.T) {
	s, err := NewEmpty(4, false, false, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Add(0, 4); err == nil {
		t.Fatal("out-of-range add must error")
	}
	if err := s.Delete(-1, 0); err == nil {
		t.Fatal("out-of-range delete must error")
	}
	if err := s.Add(2, 2); err != nil {
		t.Fatalf("self-loop must be ignored, got %v", err)
	}
	if s.Pending() != 0 {
		t.Fatal("self-loop must not buffer")
	}
}

func TestStreamComponentsIncremental(t *testing.T) {
	const n = 200
	s, err := NewEmpty(n, false, false, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	model := newStreamModel(n, false, false)
	rng := rand.New(rand.NewSource(21))

	checkAgainstBatch := func(tag string) {
		t.Helper()
		got := s.Components()
		want := components.Connected(model.build(t), nil)
		if got.Count != want.Count {
			t.Fatalf("%s: count %d vs %d", tag, got.Count, want.Count)
		}
		for v := range want.Comp {
			if got.Comp[v] != want.Comp[v] {
				t.Fatalf("%s: label[%d] = %d vs %d", tag, v, got.Comp[v], want.Comp[v])
			}
		}
	}

	// Insert-only commits ride the union-find fast path.
	for c := 0; c < 5; c++ {
		for i := 0; i < 60; i++ {
			u, v := rng.Int31n(n), rng.Int31n(n)
			s.Add(u, v)
			model.add(u, v, 0)
		}
		s.Commit()
		checkAgainstBatch(fmt.Sprintf("insert-commit-%d", c))
	}
	// Deletions: both the harmless kind (endpoints stay connected) and
	// the component-splitting kind must produce exact labelings.
	for c := 0; c < 6; c++ {
		g := model.build(t)
		ends := g.EdgeEndpoints()
		for i := 0; i < 25 && len(ends) > 0; i++ {
			e := ends[rng.Intn(len(ends))]
			s.Delete(e.U, e.V)
			model.del(e.U, e.V)
		}
		for i := 0; i < 10; i++ {
			u, v := rng.Int31n(n), rng.Int31n(n)
			s.Add(u, v)
			model.add(u, v, 0)
		}
		s.Commit()
		checkAgainstBatch(fmt.Sprintf("mixed-commit-%d", c))
	}
	// A guaranteed split: isolate a pendant vertex.
	s.Add(0, 1)
	model.add(0, 1, 0)
	s.Commit()
	g := model.build(t)
	// Delete every edge at vertex 0.
	for _, v := range g.Neighbors(0) {
		s.Delete(0, v)
		model.del(0, v)
	}
	s.Commit()
	checkAgainstBatch("split-commit")

	ok, err := s.ConnectedQuery(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := components.Connected(model.build(t), nil)
	if ok != (want.Comp[0] == want.Comp[1]) {
		t.Fatal("ConnectedQuery disagrees with batch labeling")
	}
}

func TestStreamPageRankIncremental(t *testing.T) {
	const n = 500
	s, err := NewEmpty(n, false, false, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	model := newStreamModel(n, false, false)
	rng := rand.New(rand.NewSource(31))
	opt := centrality.PageRankOptions{}

	for i := 0; i < 2000; i++ {
		u, v := rng.Int31n(n), rng.Int31n(n)
		s.Add(u, v)
		model.add(u, v, 0)
	}
	s.Commit()
	for c := 0; c < 6; c++ {
		got := s.PageRank(opt)
		want := centrality.PageRank(model.build(t), opt)
		var l1 float64
		for i := range want {
			l1 += math.Abs(got[i] - want[i])
		}
		if l1 > 1e-6 {
			t.Fatalf("commit %d: L1 vs full recompute = %g", c, l1)
		}
		// Small delta for the next round: the incremental path.
		g := model.build(t)
		ends := g.EdgeEndpoints()
		for i := 0; i < 10 && len(ends) > 0; i++ {
			e := ends[rng.Intn(len(ends))]
			s.Delete(e.U, e.V)
			model.del(e.U, e.V)
		}
		for i := 0; i < 15; i++ {
			u, v := rng.Int31n(n), rng.Int31n(n)
			s.Add(u, v)
			model.add(u, v, 0)
		}
		s.Commit()
	}
	// Repeated query on an unchanged epoch returns the cache.
	a := s.PageRank(opt)
	b := s.PageRank(opt)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("cached PageRank not stable")
		}
	}
}

func TestStreamCommunitiesWarm(t *testing.T) {
	const n = 300
	s, err := NewEmpty(n, false, false, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	model := newStreamModel(n, false, false)
	rng := rand.New(rand.NewSource(41))
	// Three planted blocks.
	for i := 0; i < 1800; i++ {
		b := rng.Intn(3)
		u := int32(b*100 + rng.Intn(100))
		v := int32(b*100 + rng.Intn(100))
		s.Add(u, v)
		model.add(u, v, 0)
	}
	s.Commit()
	opt := community.LouvainOptions{Seed: 3}
	c1 := s.Communities(opt)
	if got := community.Modularity(model.build(t), c1.Assign, 0); math.Abs(got-c1.Q) > 1e-12 {
		t.Fatalf("reported Q %.9f != recomputed %.9f", c1.Q, got)
	}
	// Cached on the same epoch.
	c2 := s.Communities(opt)
	if c2.Q != c1.Q || c2.Count != c1.Count {
		t.Fatal("cached clustering differs")
	}
	// Perturb and recommit: the warm start must stay correct and keep
	// modularity at least at the carried-over partition's level.
	for i := 0; i < 40; i++ {
		u, v := rng.Int31n(n), rng.Int31n(n)
		s.Add(u, v)
		model.add(u, v, 0)
	}
	s.Commit()
	c3 := s.Communities(opt)
	g := model.build(t)
	if got := community.Modularity(g, c3.Assign, 0); math.Abs(got-c3.Q) > 1e-12 {
		t.Fatalf("warm Q %.9f != recomputed %.9f", c3.Q, got)
	}
	if seedQ := community.Modularity(g, c1.Assign, 0); c3.Q < seedQ-1e-12 {
		t.Fatalf("warm Q %.9f below carried-over partition %.9f", c3.Q, seedQ)
	}
}
