// Package frontier is the shared traversal core behind every
// level-synchronous kernel in SNAP-Go: a hybrid Frontier that switches
// between a sparse int32 queue and a dense bitmap, and a
// direction-optimizing level-synchronous Engine (Beamer-style top-down
// / bottom-up hybrid) whose state is epoch-stamped so back-to-back
// traversals reset in O(1) and run allocation-free.
//
// The BFS, components, metrics (iFUB diameter, path lengths,
// bipartiteness), Brandes betweenness, community (GN split checks), and
// unweighted SSSP kernels all drive their frontier loops through this
// package instead of hand-rolling queue bookkeeping, so a tuning win
// here is inherited by every traversal consumer at once.
package frontier

// Frontier is one BFS level in its hybrid representation. The sparse
// form (a vertex slice plus the sum of the vertices' out-degrees) is
// always maintained — it is what top-down expansion iterates and what
// the direction heuristic inspects. The dense bitmap form is
// materialized on demand by Densify for bottom-up steps, where the
// membership probe "is u in the frontier?" must be O(1).
//
// The zero value is an empty frontier. A Frontier is not safe for
// concurrent mutation; engines own one per traversal.
type Frontier struct {
	verts []int32
	edges int64
	bits  []uint64
	dense bool
}

// Reset empties the frontier (keeping capacity for reuse).
func (f *Frontier) Reset() {
	f.verts = f.verts[:0]
	f.edges = 0
	f.dense = false
}

// Add appends v, accounting deg (v's out-degree) toward the frontier's
// edge total. Invalidates any bitmap built by an earlier Densify.
func (f *Frontier) Add(v int32, deg int64) {
	f.verts = append(f.verts, v)
	f.edges += deg
	f.dense = false
}

// SetSparse points the frontier at an externally owned vertex slice
// (typically a window of an engine's visitation order) with the given
// out-degree sum. The slice is aliased, not copied.
func (f *Frontier) SetSparse(verts []int32, edges int64) {
	f.verts = verts
	f.edges = edges
	f.dense = false
}

// Len reports the number of frontier vertices.
func (f *Frontier) Len() int { return len(f.verts) }

// Edges reports the sum of out-degrees over the frontier — the
// top-down work estimate the direction heuristic compares against the
// unexplored remainder of the graph.
func (f *Frontier) Edges() int64 { return f.edges }

// Verts returns the sparse form (read-only).
func (f *Frontier) Verts() []int32 { return f.verts }

// Densify (re)builds the dense bitmap over an n-vertex universe from
// the sparse form. O(n/64 + len) — paid only when a level actually runs
// bottom-up. The bitmap storage is retained across calls.
func (f *Frontier) Densify(n int) {
	words := (n + 63) >> 6
	if cap(f.bits) < words {
		f.bits = make([]uint64, words)
	} else {
		f.bits = f.bits[:words]
		clear(f.bits)
	}
	for _, v := range f.verts {
		f.bits[v>>6] |= 1 << (uint(v) & 63)
	}
	f.dense = true
}

// Dense reports whether the bitmap matches the current sparse content.
func (f *Frontier) Dense() bool { return f.dense }

// Has reports frontier membership via the bitmap. Valid only after
// Densify (bottom-up steps densify before probing).
func (f *Frontier) Has(v int32) bool {
	return f.bits[v>>6]>>(uint(v)&63)&1 != 0
}

// Stack is a reusable int32 LIFO — the shared container for the
// iterative DFS kernels (biconnected components) that sit alongside
// the level-synchronous engine, so they stop hand-rolling slice-stack
// bookkeeping.
type Stack struct{ items []int32 }

// Reset empties the stack, keeping capacity.
func (s *Stack) Reset() { s.items = s.items[:0] }

// Push appends v.
func (s *Stack) Push(v int32) { s.items = append(s.items, v) }

// Pop removes and returns the top. Panics on an empty stack.
func (s *Stack) Pop() int32 {
	v := s.items[len(s.items)-1]
	s.items = s.items[:len(s.items)-1]
	return v
}

// Top returns the top without removing it.
func (s *Stack) Top() int32 { return s.items[len(s.items)-1] }

// Len reports the number of stacked items.
func (s *Stack) Len() int { return len(s.items) }
