package frontier_test

import (
	"math/rand"
	"testing"

	"snap/internal/bfs"
	"snap/internal/frontier"
	"snap/internal/generate"
	"snap/internal/graph"
)

// naiveBFS is an independent queue-based oracle (the engine is not
// involved, unlike bfs.Serial which now routes through it).
func naiveBFS(g *graph.Graph, src int32, alive []bool) []int32 {
	dist := make([]int32, g.NumVertices())
	for i := range dist {
		dist[i] = frontier.Unreached
	}
	dist[src] = 0
	queue := []int32{src}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for a := g.Offsets[v]; a < g.Offsets[v+1]; a++ {
			if alive != nil && !alive[g.EID[a]] {
				continue
			}
			u := g.Adj[a]
			if dist[u] == frontier.Unreached {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// checkRun verifies distances against the naive oracle, parent
// validity (any valid BFS tree), visitation order, and the level
// windows the engine maintains.
func checkRun(t *testing.T, g *graph.Graph, e *frontier.Engine, src int32, alive []bool) {
	t.Helper()
	want := naiveBFS(g, src, alive)
	reached := 0
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		if e.Dist(v) != want[v] {
			t.Fatalf("src %d: Dist(%d) = %d, want %d", src, v, e.Dist(v), want[v])
		}
		if want[v] == frontier.Unreached {
			if e.Visited(v) || e.Parent(v) != -1 {
				t.Fatalf("src %d: unreached %d looks visited", src, v)
			}
			continue
		}
		reached++
		p := e.Parent(v)
		if v == src {
			if p != src {
				t.Fatalf("src %d: Parent(src) = %d", src, p)
			}
			continue
		}
		if p < 0 || !e.Visited(p) || e.Dist(p)+1 != e.Dist(v) {
			t.Fatalf("src %d: invalid parent %d of %d (dists %d, %d)", src, p, v, e.Dist(p), e.Dist(v))
		}
		if !g.HasEdge(p, v) {
			t.Fatalf("src %d: parent arc %d->%d not in graph", src, p, v)
		}
		if alive != nil && !alive[g.EdgeIDOf(p, v)] {
			t.Fatalf("src %d: parent arc %d->%d is dead", src, p, v)
		}
	}
	if e.Reached() != reached {
		t.Fatalf("src %d: Reached = %d, want %d", src, e.Reached(), reached)
	}
	prev := int32(0)
	for _, v := range e.Order() {
		if d := e.Dist(v); d < prev {
			t.Fatalf("src %d: Order not sorted by distance", src)
		} else {
			prev = d
		}
	}
	if e.MaxDist() != prev {
		t.Fatalf("src %d: MaxDist = %d, want %d", src, e.MaxDist(), prev)
	}
	// Level windows partition the order into per-distance runs.
	if e.NumLevels() != int(prev)+1 {
		t.Fatalf("src %d: NumLevels = %d, want %d", src, e.NumLevels(), prev+1)
	}
	total := 0
	for d := int32(0); d < int32(e.NumLevels()); d++ {
		lv := e.Level(d)
		if len(lv) == 0 {
			t.Fatalf("src %d: empty level %d", src, d)
		}
		for _, v := range lv {
			if e.Dist(v) != d {
				t.Fatalf("src %d: vertex %d in level %d has dist %d", src, v, d, e.Dist(v))
			}
		}
		total += len(lv)
	}
	if total != e.Reached() {
		t.Fatalf("src %d: levels cover %d of %d reached", src, total, e.Reached())
	}
}

func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	var edges []graph.Edge
	for i := 0; i < 99; i++ { // path
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1)})
	}
	for i := 100; i < 160; i++ { // ring, plus isolated tail [160, 200)
		j := i + 1
		if j == 160 {
			j = 100
		}
		edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
	}
	disconnected, err := graph.Build(200, edges, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"rmat":         generate.RMAT(400, 1600, generate.DefaultRMAT(), 11),
		"erdosrenyi":   generate.ErdosRenyi(400, 1200, 12),
		"roadmesh":     generate.RoadMesh(20, 20, 0.05, 13),
		"disconnected": disconnected,
	}
}

// engineConfigs cover serial/parallel, degree-aware, heuristic
// direction optimization, and forced switches at every level.
func engineConfigs() map[string]frontier.Options {
	alwaysUp := func(int32) bool { return true }
	alternate := func(d int32) bool { return d%2 == 1 }
	return map[string]frontier.Options{
		"serial-topdown":    {Workers: 1, MaxDepth: -1},
		"parallel-topdown":  {Workers: 4, MaxDepth: -1},
		"parallel-degaware": {Workers: 4, MaxDepth: -1, DegreeAware: true},
		"do-serial":         {Workers: 1, MaxDepth: -1, Alpha: frontier.DefaultAlpha},
		"do-parallel":       {Workers: 4, MaxDepth: -1, Alpha: frontier.DefaultAlpha},
		"do-aggressive":     {Workers: 4, MaxDepth: -1, Alpha: 1000, Beta: 1000},
		"force-bottomup":    {Workers: 4, MaxDepth: -1, ForceBottomUp: alwaysUp},
		"force-alternate":   {Workers: 1, MaxDepth: -1, ForceBottomUp: alternate},
	}
}

// The tentpole property: every engine configuration produces oracle
// distances and a valid BFS tree on every graph family.
func TestEngineMatchesOracleAcrossFamilies(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for cname, opt := range engineConfigs() {
			t.Run(gname+"/"+cname, func(t *testing.T) {
				rng := rand.New(rand.NewSource(17))
				e := frontier.NewEngine(g.NumVertices())
				for trial := 0; trial < 8; trial++ {
					src := int32(rng.Intn(g.NumVertices()))
					e.RunOptions(g, src, opt)
					checkRun(t, g, e, src, nil)
				}
			})
		}
	}
}

// The serial path must agree with bfs.Serial exactly — distances and
// parents — since downstream kernels pin those semantics.
func TestEngineSerialMatchesBFSSerial(t *testing.T) {
	g := generate.RMAT(300, 1200, generate.DefaultRMAT(), 3)
	e := frontier.NewEngine(g.NumVertices())
	for src := int32(0); src < 40; src++ {
		e.Run(g, src, nil, -1)
		want := bfs.Serial(g, src, nil)
		for v := int32(0); int(v) < g.NumVertices(); v++ {
			if e.Dist(v) != want.Dist[v] || e.Parent(v) != want.Parent[v] {
				t.Fatalf("src %d vertex %d: (%d,%d) want (%d,%d)",
					src, v, e.Dist(v), e.Parent(v), want.Dist[v], want.Parent[v])
			}
		}
	}
}

// One engine reused across 60 runs with rotating configurations must
// never leak state between traversals.
func TestEngineReuseAcrossRuns(t *testing.T) {
	graphs := testGraphs(t)
	names := []string{"rmat", "erdosrenyi", "roadmesh", "disconnected"}
	var opts []frontier.Options
	for _, o := range engineConfigs() {
		opts = append(opts, o)
	}
	rng := rand.New(rand.NewSource(23))
	e := frontier.NewEngine(0)
	for trial := 0; trial < 60; trial++ {
		g := graphs[names[trial%len(names)]]
		e.Resize(g.NumVertices())
		src := int32(rng.Intn(g.NumVertices()))
		e.RunOptions(g, src, opts[trial%len(opts)])
		checkRun(t, g, e, src, nil)
	}
}

// Alive masks must filter both push and pull traversal identically.
func TestEngineAliveMask(t *testing.T) {
	g := generate.ErdosRenyi(200, 800, 31)
	rng := rand.New(rand.NewSource(31))
	alive := make([]bool, g.NumEdges())
	for i := range alive {
		alive[i] = rng.Intn(4) != 0
	}
	e := frontier.NewEngine(g.NumVertices())
	for cname, opt := range engineConfigs() {
		opt.Alive = alive
		for trial := 0; trial < 4; trial++ {
			src := int32(rng.Intn(g.NumVertices()))
			e.RunOptions(g, src, opt)
			t.Run(cname, func(t *testing.T) { checkRun(t, g, e, src, alive) })
		}
	}
}

// MaxDepth truncates the traversal at the requested level in every
// direction mode.
func TestEngineMaxDepth(t *testing.T) {
	g := generate.RoadMesh(12, 12, 0, 37)
	full := naiveBFS(g, 0, nil)
	e := frontier.NewEngine(g.NumVertices())
	for cname, opt := range engineConfigs() {
		for _, maxDepth := range []int32{0, 1, 3, 7} {
			opt.MaxDepth = maxDepth
			e.RunOptions(g, 0, opt)
			for v := int32(0); int(v) < g.NumVertices(); v++ {
				want := full[v]
				if want > maxDepth {
					want = frontier.Unreached
				}
				if e.Dist(v) != want {
					t.Fatalf("%s maxDepth %d: Dist(%d) = %d, want %d", cname, maxDepth, v, e.Dist(v), want)
				}
			}
		}
	}
}

func randomDirected(t *testing.T, n, m int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))})
	}
	g, err := graph.Build(n, edges, graph.BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Directed graphs: bottom-up needs the reverse CSR; without it the
// engine must silently stay top-down. Both must match the oracle.
func TestEngineDirected(t *testing.T) {
	g := randomDirected(t, 300, 2400, 41)
	rg := graph.Reverse(g)
	e := frontier.NewEngine(g.NumVertices())
	rng := rand.New(rand.NewSource(43))
	cases := map[string]frontier.Options{
		"do-with-reverse":    {Workers: 4, MaxDepth: -1, Alpha: frontier.DefaultAlpha, Reverse: rg},
		"do-without-reverse": {Workers: 4, MaxDepth: -1, Alpha: frontier.DefaultAlpha},
		"forced-bottomup":    {Workers: 4, MaxDepth: -1, Reverse: rg, ForceBottomUp: func(int32) bool { return true }},
	}
	for cname, opt := range cases {
		t.Run(cname, func(t *testing.T) {
			for trial := 0; trial < 6; trial++ {
				src := int32(rng.Intn(g.NumVertices()))
				e.RunOptions(g, src, opt)
				want := naiveBFS(g, src, nil)
				for v := int32(0); int(v) < g.NumVertices(); v++ {
					if e.Dist(v) != want[v] {
						t.Fatalf("src %d: Dist(%d) = %d, want %d", src, v, e.Dist(v), want[v])
					}
				}
			}
		})
	}
}
