package frontier

import (
	"sync/atomic"

	"snap/internal/graph"
	"snap/internal/par"
)

// Unreached marks vertices not reachable from the source.
const Unreached = int32(-1)

// Default direction-switching thresholds (Beamer et al., SC'12): expand
// bottom-up when the frontier's out-degree sum exceeds 1/Alpha of the
// unexplored edges, and return to top-down when the frontier shrinks
// below 1/Beta of the vertices.
const (
	DefaultAlpha = 14.0
	DefaultBeta  = 24.0
)

// Result holds a BFS tree: hop distances and parents (both -1 when
// unreached, and Parent[src] == src).
type Result struct {
	Dist   []int32
	Parent []int32
}

// MaxDist reports the eccentricity of the source in r (the largest
// finite distance), or 0 for an isolated source.
func (r Result) MaxDist() int32 {
	var mx int32
	for _, d := range r.Dist {
		if d > mx {
			mx = d
		}
	}
	return mx
}

// Reached reports the number of vertices reached (including the source).
func (r Result) Reached() int {
	c := 0
	for _, d := range r.Dist {
		if d != Unreached {
			c++
		}
	}
	return c
}

// Options configures one Engine traversal.
type Options struct {
	// Workers bounds parallelism; <= 0 means par.Workers().
	Workers int
	// Alive, when non-nil, restricts traversal to arcs whose edge id
	// has Alive[eid] == true (logical edge deletion, used by divisive
	// clustering). Honored by both directions: the two arcs of an
	// undirected edge share an id, and reverse CSRs preserve arc ids,
	// so the pull side filters the same edges the push side would.
	Alive []bool
	// MaxDepth bounds the traversal to that many levels (path-limited
	// search); < 0 means unlimited, 0 reaches only the source.
	MaxDepth int32
	// Alpha > 0 enables direction optimization: a level runs bottom-up
	// when frontierEdges·Alpha > unexploredEdges. Zero keeps the
	// traversal always top-down (the exact-parent serial semantics).
	Alpha float64
	// Beta sets the top-down resume threshold (frontier < n/Beta);
	// <= 0 means DefaultBeta.
	Beta float64
	// DegreeAware partitions top-down frontiers by out-degree sum
	// instead of vertex count — the paper's fix for skewed degrees.
	DegreeAware bool
	// Reverse supplies the in-adjacency CSR (graph.Reverse) that
	// bottom-up steps scan on directed graphs. When nil, directed
	// traversals silently fall back to always-top-down.
	Reverse *graph.Graph
	// ForceBottomUp, when non-nil, overrides the Alpha/Beta heuristic:
	// the level discovering depth d runs bottom-up iff
	// ForceBottomUp(d) (still subject to direction eligibility).
	// Testing hook for exercising switches at every level.
	ForceBottomUp func(depth int32) bool
	// Cancel, when non-nil, is polled once per level (the traversal's
	// natural synchronization point — small-world graphs have few
	// levels, so the poll adds no measurable cost). When it reports
	// true the traversal stops before expanding the next level and
	// RunOptions returns early with partial state: distances discovered
	// so far remain readable, but the run is incomplete and must not be
	// treated as a full BFS. The hook is how servers thread
	// context/deadline cancellation into the level-synchronous loop so
	// abandoned requests stop burning cores within one level.
	Cancel func() bool
}

// Engine is the shared level-synchronous traversal core: reusable
// epoch-stamped BFS state plus a direction-optimizing step loop.
// "Visited" is encoded by an epoch stamp — stamp[v] equals the current
// epoch iff v was reached by the most recent run — so resetting between
// sources is a single counter increment (O(1)) instead of an O(n)
// re-fill of the distance and parent arrays. Exact closeness on an
// n-vertex graph therefore touches O(reached) state per source instead
// of paying O(n) allocation + memset traffic per source.
//
// The stamp invariant is that every stamp value is at most the current
// epoch. When the uint32 epoch counter wraps around (once every 2^32-1
// traversals), stamps from the previous generation could otherwise
// collide with fresh epochs, so the wrap path zero-fills the stamp
// array once and restarts at epoch 1 — amortized cost ~n/2^32 per
// traversal.
//
// An Engine is not safe for concurrent use; acquire one per worker
// (see AcquireEngine). Accessor results are valid only until the next
// run or Resize.
type Engine struct {
	epoch  uint32
	stamp  []uint32 // stamp[v] == epoch ⇔ v visited by the latest run
	dist   []int32  // meaningful only where stamp[v] == epoch
	parent []int32  // meaningful only where stamp[v] == epoch
	order  []int32  // visited vertices in BFS order; order[0] = src
	bounds []int32  // level d occupies order[bounds[d]:bounds[d+1]]

	cur   Frontier  // current level in hybrid form
	nexts [][]int32 // per-worker discovery buffers (parallel steps)
	wbuf  []int64   // frontier weight scratch for DegreeAware
}

// NewEngine returns an engine for graphs with n vertices.
func NewEngine(n int) *Engine {
	e := &Engine{}
	e.Resize(n)
	return e
}

// Resize prepares the engine for a graph with n vertices, reusing the
// existing arrays when they are large enough. Any previous traversal
// state is discarded.
func (e *Engine) Resize(n int) {
	if cap(e.dist) < n || cap(e.stamp) < n || cap(e.parent) < n {
		e.stamp = make([]uint32, n)
		e.dist = make([]int32, n)
		e.parent = make([]int32, n)
		e.epoch = 0
	} else {
		e.stamp = e.stamp[:n]
		e.dist = e.dist[:n]
		e.parent = e.parent[:n]
	}
	if e.order == nil {
		e.order = make([]int32, 0, 256)
	}
	e.order = e.order[:0]
	e.bounds = e.bounds[:0]
}

// Len reports the number of vertices the engine is sized for.
func (e *Engine) Len() int { return len(e.dist) }

// begin opens a new traversal epoch: O(1) except on uint32 wraparound,
// where the stamp array is cleared once so stale stamps from the
// previous generation cannot alias the new epoch sequence.
func (e *Engine) begin() {
	e.epoch++
	if e.epoch == 0 {
		clear(e.stamp)
		e.epoch = 1
	}
	e.order = e.order[:0]
	e.bounds = e.bounds[:0]
}

// Run performs a serial always-top-down BFS from src, restricted to
// arcs whose edge id is alive (nil means all arcs) and to maxDepth
// levels (< 0 means unlimited — the paper's path-limited search
// otherwise). It produces exactly the distances and parents of the
// textbook queue loop, readable through Dist/Parent/Order until the
// next run. Shorthand for RunOptions with Workers 1 and Alpha 0.
func (e *Engine) Run(g *graph.Graph, src int32, alive []bool, maxDepth int32) {
	e.RunOptions(g, src, Options{Workers: 1, Alive: alive, MaxDepth: maxDepth})
}

// RunOptions performs a level-synchronous BFS from src under opt. Each
// level is expanded either top-down (frontier pushes to unvisited
// neighbors, serial or lock-free parallel with per-worker buffers) or
// bottom-up (unvisited vertices probe the frontier bitmap through
// their in-arcs), per the Alpha/Beta heuristic. Distances are
// direction-independent; parents are any valid tree (exact serial
// parents when top-down with one worker).
func (e *Engine) RunOptions(g *graph.Graph, src int32, opt Options) {
	workers := opt.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	n := g.NumVertices()
	beta := opt.Beta
	if beta <= 0 {
		beta = DefaultBeta
	}
	// Bottom-up needs in-adjacency: the graph itself when undirected,
	// an explicit reverse CSR when directed, else top-down only.
	pull := g
	if g.Directed() {
		pull = opt.Reverse
	}
	eligible := pull != nil && (opt.Alpha > 0 || opt.ForceBottomUp != nil)

	e.begin()
	ep := e.epoch
	e.stamp[src] = ep
	e.dist[src] = 0
	e.parent[src] = src
	e.order = append(e.order, src)
	e.bounds = append(e.bounds, 0, 1)

	// Lazy degree-sum accounting for the direction heuristic: explored
	// covers the out-degrees of order[:sumPos], advanced only when a
	// switch is actually considered. Traversals that never near a switch
	// (ineligible, or frontiers that stay thin) pay nothing per
	// discovery, keeping always-top-down and direction-optimizing runs
	// cost-identical on graphs where bottom-up never engages.
	totalArcs := int64(g.NumArcs())
	var explored int64
	sumPos := 0
	sumTo := func(hi int) {
		for ; sumPos < hi; sumPos++ {
			v := e.order[sumPos]
			explored += g.Offsets[v+1] - g.Offsets[v]
		}
	}
	levelEdges := func(lo, hi int) int64 {
		var s int64
		for _, v := range e.order[lo:hi] {
			s += g.Offsets[v+1] - g.Offsets[v]
		}
		return s
	}

	levelStart, levelEnd := 0, 1
	prevSize := 0
	bottomUp := false
	for depth := int32(0); levelEnd > levelStart; depth++ {
		if opt.MaxDepth >= 0 && depth >= opt.MaxDepth {
			break
		}
		if opt.Cancel != nil && opt.Cancel() {
			break
		}
		size := levelEnd - levelStart
		if eligible {
			if opt.ForceBottomUp != nil {
				bottomUp = opt.ForceBottomUp(depth + 1)
			} else if !bottomUp {
				// Beamer's C_BT, with three cheap guards evaluated
				// before the degree sums are touched. The frontier must
				// be growing: on high-diameter graphs the shrinking
				// tail frontiers eventually dominate the unexplored
				// remainder, yet pull sweeps would rescan all of V
				// every level. It must exceed the Beta switch-back
				// threshold, or the very next level would flip straight
				// back (hysteresis — stops one-off O(n) sweeps for
				// sparse tail up-ticks). And its out-arcs must
				// outnumber the unvisited vertices, because a pull
				// sweep by construction touches every unvisited vertex
				// at least once: mesh-like frontiers never cover that,
				// and hub bursts on skewed graphs are deferred one
				// level until the frontier's reach actually spans the
				// remaining graph. Only then the Beamer test proper:
				// frontierEdges·Alpha > unexploredEdges.
				bottomUp = false
				if size > prevSize && float64(size)*beta >= float64(n) {
					sumTo(levelEnd)
					curEdges := levelEdges(levelStart, levelEnd)
					bottomUp = curEdges > int64(n-levelEnd) &&
						float64(curEdges)*opt.Alpha > float64(totalArcs-explored)
				}
			} else {
				bottomUp = float64(size)*beta >= float64(n)
			}
		}
		if bottomUp {
			e.cur.SetSparse(e.order[levelStart:levelEnd], levelEdges(levelStart, levelEnd))
			e.stepBottomUp(g, pull, opt.Alive, depth+1, workers)
		} else if workers <= 1 || size <= 1 {
			e.stepTopDownSerial(g, opt.Alive, depth+1, levelStart, levelEnd)
		} else {
			e.stepTopDownParallel(g, opt.Alive, depth+1, levelStart, levelEnd, workers, opt.DegreeAware)
		}
		levelStart, levelEnd = levelEnd, len(e.order)
		if levelEnd > levelStart {
			e.bounds = append(e.bounds, int32(levelEnd))
		}
		prevSize = size
	}
}

// stepTopDownSerial expands order[lo:hi] in place — the textbook queue
// loop, restricted to one level so its results are bit-identical to
// the classic serial BFS.
func (e *Engine) stepTopDownSerial(g *graph.Graph, alive []bool, depth int32, lo, hi int) {
	ep := e.epoch
	stamp, dist, parent := e.stamp, e.dist, e.parent
	order := e.order
	for i := lo; i < hi; i++ {
		v := order[i]
		alo, ahi := g.Offsets[v], g.Offsets[v+1]
		for a := alo; a < ahi; a++ {
			if alive != nil && !alive[g.EID[a]] {
				continue
			}
			u := g.Adj[a]
			if stamp[u] != ep {
				stamp[u] = ep
				dist[u] = depth
				parent[u] = v
				order = append(order, u)
			}
		}
	}
	e.order = order
}

// stepTopDownParallel expands order[lo:hi] with per-worker next
// buffers; visitation is claimed with a compare-and-swap on the stamp
// array (the paper's lock-free scheme), so the only synchronization
// per level is one barrier.
func (e *Engine) stepTopDownParallel(g *graph.Graph, alive []bool, depth int32, lo, hi int, workers int, degreeAware bool) {
	ep := e.epoch
	stamp, dist, parent := e.stamp, e.dist, e.parent
	front := e.order[lo:hi]
	if workers > len(front) {
		workers = len(front)
	}
	e.prepareWorkers(workers)
	expand := func(w, flo, fhi int) {
		next := e.nexts[w][:0]
		for i := flo; i < fhi; i++ {
			v := front[i]
			alo, ahi := g.Offsets[v], g.Offsets[v+1]
			for a := alo; a < ahi; a++ {
				if alive != nil && !alive[g.EID[a]] {
					continue
				}
				u := g.Adj[a]
				s := atomic.LoadUint32(&stamp[u])
				if s != ep && atomic.CompareAndSwapUint32(&stamp[u], s, ep) {
					dist[u] = depth
					parent[u] = v
					next = append(next, u)
				}
			}
		}
		e.nexts[w] = next
	}
	if degreeAware {
		wbuf := e.wbuf[:0]
		for _, v := range front {
			wbuf = append(wbuf, g.Offsets[v+1]-g.Offsets[v])
		}
		e.wbuf = wbuf
		par.ForDegreeAware(wbuf, workers, expand)
	} else {
		par.ForChunkedN(len(front), workers, expand)
	}
	e.merge(workers)
}

// stepBottomUp discovers the next level by scanning unvisited vertices:
// each probes its in-arcs (pull's adjacency) for a member of the
// frozen frontier bitmap and adopts the first alive one as parent.
// Writes are owner-only per vertex, so chunks need no atomics, and the
// parent choice is adjacency-order deterministic regardless of worker
// count.
func (e *Engine) stepBottomUp(g, pull *graph.Graph, alive []bool, depth int32, workers int) {
	n := g.NumVertices()
	e.cur.Densify(n)
	cur := &e.cur
	ep := e.epoch
	stamp, dist, parent := e.stamp, e.dist, e.parent
	if workers <= 1 {
		// Inline single-worker sweep: the pull loop is the hot path of
		// serial direction-optimizing traversals (multi-source kernels),
		// so it must not pay scheduler or closure overhead per level.
		order := e.order
		for vi := 0; vi < n; vi++ {
			if stamp[vi] == ep {
				continue
			}
			alo, ahi := pull.Offsets[vi], pull.Offsets[vi+1]
			for a := alo; a < ahi; a++ {
				if alive != nil && !alive[pull.EID[a]] {
					continue
				}
				if cur.Has(pull.Adj[a]) {
					stamp[vi] = ep
					dist[vi] = depth
					parent[vi] = pull.Adj[a]
					order = append(order, int32(vi))
					break
				}
			}
		}
		e.order = order
		return
	}
	e.prepareWorkers(workers)
	par.ForChunkedN(n, workers, func(w, lo, hi int) {
		next := e.nexts[w][:0]
		for vi := lo; vi < hi; vi++ {
			if stamp[vi] == ep {
				continue
			}
			alo, ahi := pull.Offsets[vi], pull.Offsets[vi+1]
			for a := alo; a < ahi; a++ {
				if alive != nil && !alive[pull.EID[a]] {
					continue
				}
				if cur.Has(pull.Adj[a]) {
					stamp[vi] = ep
					dist[vi] = depth
					parent[vi] = pull.Adj[a]
					next = append(next, int32(vi))
					break
				}
			}
		}
		e.nexts[w] = next
	})
	e.merge(workers)
}

// prepareWorkers sizes and empties the per-worker discovery buffers.
// The reset matters: schedulers may skip a worker entirely (an empty
// degree-aware range), and merge must not pick up its previous level.
func (e *Engine) prepareWorkers(workers int) {
	for len(e.nexts) < workers {
		e.nexts = append(e.nexts, make([]int32, 0, 256))
	}
	for w := 0; w < workers; w++ {
		e.nexts[w] = e.nexts[w][:0]
	}
}

// merge appends the per-worker buffers to the visitation order (worker
// index order keeps bottom-up levels sorted by vertex id).
func (e *Engine) merge(workers int) {
	for w := 0; w < workers; w++ {
		e.order = append(e.order, e.nexts[w]...)
	}
}

// Visited reports whether v was reached by the latest run.
func (e *Engine) Visited(v int32) bool {
	return e.epoch != 0 && e.stamp[v] == e.epoch
}

// Dist reports the hop distance of v from the latest source, or
// Unreached.
func (e *Engine) Dist(v int32) int32 {
	if !e.Visited(v) {
		return Unreached
	}
	return e.dist[v]
}

// Parent reports the BFS-tree parent of v (the source is its own
// parent), or -1 when unreached.
func (e *Engine) Parent(v int32) int32 {
	if !e.Visited(v) {
		return -1
	}
	return e.parent[v]
}

// DistData exposes the raw distance array. dist[v] is meaningful only
// where Visited(v); stale entries from earlier epochs are arbitrary.
// For kernels (e.g. the Brandes forward pass) that only read distances
// of vertices known to be reached.
func (e *Engine) DistData() []int32 { return e.dist }

// Order returns the vertices reached by the latest run in BFS
// visitation order (source first, distances non-decreasing). Read-only;
// valid until the next run.
func (e *Engine) Order() []int32 { return e.order }

// NumLevels reports the number of BFS levels of the latest run
// (eccentricity + 1), or 0 before any run.
func (e *Engine) NumLevels() int {
	if len(e.bounds) == 0 {
		return 0
	}
	return len(e.bounds) - 1
}

// Level returns the vertices at hop distance d, a window of Order().
// The engine maintains level boundaries as the traversal runs, so
// kernels that walk levels (iFUB fringes, Brandes dependency sweeps)
// need no distance-bucketing pass of their own.
func (e *Engine) Level(d int32) []int32 {
	return e.order[e.bounds[d]:e.bounds[d+1]]
}

// Reached reports the number of vertices reached (including the
// source) — O(1), unlike Result.Reached.
func (e *Engine) Reached() int { return len(e.order) }

// MaxDist reports the eccentricity of the latest source in O(1): BFS
// visits vertices in non-decreasing distance order, so the last vertex
// of the visitation order is a farthest one.
func (e *Engine) MaxDist() int32 {
	if len(e.order) == 0 {
		return 0
	}
	return e.dist[e.order[len(e.order)-1]]
}

// SumDist reports the total hop distance from the latest source to
// every reached vertex in O(reached) — the closeness denominator.
func (e *Engine) SumDist() int64 {
	var total int64
	for _, v := range e.order {
		total += int64(e.dist[v])
	}
	return total
}

// Export materializes the latest traversal as a dense, caller-owned
// Result (allocates two O(n) arrays — the compatibility path for code
// that retains full distance vectors).
func (e *Engine) Export() Result {
	n := len(e.dist)
	r := Result{Dist: make([]int32, n), Parent: make([]int32, n)}
	for i := range r.Dist {
		r.Dist[i] = Unreached
		r.Parent[i] = -1
	}
	for _, v := range e.order {
		r.Dist[v] = e.dist[v]
		r.Parent[v] = e.parent[v]
	}
	return r
}

// enginePool amortizes engines across kernel invocations: closeness,
// diameter, average path length, connected components, and the GN
// split check all borrow from the same pool, so back-to-back analyses
// on same-sized graphs reach allocation-free steady state.
var enginePool = par.NewPool(func() *Engine { return &Engine{} })

// AcquireEngine returns a pooled engine sized for n vertices. Release
// it with ReleaseEngine when the traversal loop ends.
func AcquireEngine(n int) *Engine {
	e := enginePool.Get()
	e.Resize(n)
	return e
}

// ReleaseEngine returns an engine to the pool. The caller must not use
// e (or results read from it) afterwards.
func ReleaseEngine(e *Engine) { enginePool.Put(e) }
