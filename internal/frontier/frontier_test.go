package frontier

import (
	"math"
	"testing"

	"snap/internal/generate"
	"snap/internal/graph"
)

func TestFrontierSparseDense(t *testing.T) {
	var f Frontier
	if f.Len() != 0 || f.Edges() != 0 {
		t.Fatal("zero value not empty")
	}
	f.Add(3, 5)
	f.Add(7, 2)
	f.Add(64, 1)
	if f.Len() != 3 || f.Edges() != 8 {
		t.Fatalf("Len/Edges = %d/%d, want 3/8", f.Len(), f.Edges())
	}
	if f.Dense() {
		t.Fatal("dense before Densify")
	}
	f.Densify(100)
	if !f.Dense() {
		t.Fatal("not dense after Densify")
	}
	for v := int32(0); v < 100; v++ {
		want := v == 3 || v == 7 || v == 64
		if f.Has(v) != want {
			t.Fatalf("Has(%d) = %v, want %v", v, f.Has(v), want)
		}
	}
	// Mutation invalidates the bitmap; re-densify picks up the change.
	f.Add(99, 0)
	if f.Dense() {
		t.Fatal("Add did not invalidate bitmap")
	}
	f.Densify(100)
	if !f.Has(99) || !f.Has(3) {
		t.Fatal("re-densify lost members")
	}
	f.Reset()
	if f.Len() != 0 || f.Edges() != 0 || f.Dense() {
		t.Fatal("Reset incomplete")
	}
	f.SetSparse([]int32{1, 2}, 9)
	if f.Len() != 2 || f.Edges() != 9 {
		t.Fatal("SetSparse wrong")
	}
	f.Densify(8)
	if !f.Has(1) || !f.Has(2) || f.Has(3) {
		t.Fatal("bitmap after SetSparse wrong")
	}
}

func TestStack(t *testing.T) {
	var s Stack
	s.Push(4)
	s.Push(9)
	if s.Len() != 2 || s.Top() != 9 {
		t.Fatalf("Len/Top = %d/%d", s.Len(), s.Top())
	}
	if s.Pop() != 9 || s.Pop() != 4 || s.Len() != 0 {
		t.Fatal("pop order wrong")
	}
	s.Push(1)
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("Reset incomplete")
	}
}

// naiveDist is a from-scratch BFS oracle independent of the engine.
func naiveDist(g *graph.Graph, src int32) []int32 {
	dist := make([]int32, g.NumVertices())
	for i := range dist {
		dist[i] = Unreached
	}
	dist[src] = 0
	queue := []int32{src}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for a := g.Offsets[v]; a < g.Offsets[v+1]; a++ {
			u := g.Adj[a]
			if dist[u] == Unreached {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Crossing the uint32 epoch wraparound must clear stale stamps so old
// generations cannot alias fresh epochs.
func TestEngineEpochWraparound(t *testing.T) {
	g := generate.RMAT(300, 1200, generate.DefaultRMAT(), 5)
	e := NewEngine(g.NumVertices())
	e.Run(g, 0, nil, -1) // populate stamps at a low epoch
	e.epoch = math.MaxUint32 - 2
	for i := 0; i < 6; i++ { // walks the counter across 2^32 - 1 -> wrap -> 1, 2, ...
		src := int32(i * 7 % g.NumVertices())
		e.Run(g, src, nil, -1)
		want := naiveDist(g, src)
		for v := int32(0); int(v) < g.NumVertices(); v++ {
			if e.Dist(v) != want[v] {
				t.Fatalf("after wrap step %d: Dist(%d) = %d, want %d", i, v, e.Dist(v), want[v])
			}
		}
	}
	if e.epoch >= math.MaxUint32-2 || e.epoch == 0 {
		t.Fatalf("epoch did not wrap to a small generation: %d", e.epoch)
	}
}
