package sketch

import "testing"

// TestEffectiveSeed pins the unified seeding contract shared by every
// sampled kernel in the repo: seed 0 means the documented DefaultSeed,
// any other value passes through.
func TestEffectiveSeed(t *testing.T) {
	if EffectiveSeed(0) != DefaultSeed {
		t.Fatalf("EffectiveSeed(0) = %#x, want DefaultSeed %#x", EffectiveSeed(0), DefaultSeed)
	}
	if EffectiveSeed(42) != 42 {
		t.Fatalf("EffectiveSeed(42) = %d, want 42", EffectiveSeed(42))
	}
	if EffectiveSeed(-7) != -7 {
		t.Fatalf("EffectiveSeed(-7) = %d, want -7", EffectiveSeed(-7))
	}
}

// TestNewRNGDefault pins that the zero seed and DefaultSeed draw the
// same stream, and a different seed draws a different one.
func TestNewRNGDefault(t *testing.T) {
	a, b := NewRNG(0), NewRNG(DefaultSeed)
	for i := 0; i < 16; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("NewRNG(0) stream differs from NewRNG(DefaultSeed)")
		}
	}
	c, d := NewRNG(0), NewRNG(1)
	same := true
	for i := 0; i < 16; i++ {
		if c.Int63() != d.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("NewRNG(1) stream matches the default stream")
	}
}

// TestSampleVertices pins the sampling scheme: a k-prefix of the seeded
// permutation — no duplicates, deterministic, stable across calls, and
// identical for seed 0 and DefaultSeed.
func TestSampleVertices(t *testing.T) {
	s := SampleVertices(100, 10, 1)
	if len(s) != 10 {
		t.Fatalf("len = %d, want 10", len(s))
	}
	seen := map[int32]bool{}
	for _, v := range s {
		if v < 0 || v >= 100 {
			t.Fatalf("out-of-range vertex %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate vertex %d", v)
		}
		seen[v] = true
	}
	again := SampleVertices(100, 10, 1)
	for i := range s {
		if s[i] != again[i] {
			t.Fatal("SampleVertices not deterministic")
		}
	}
	zero := SampleVertices(100, 10, 0)
	def := SampleVertices(100, 10, DefaultSeed)
	for i := range zero {
		if zero[i] != def[i] {
			t.Fatal("seed 0 sample differs from DefaultSeed sample")
		}
	}
	// k >= n returns all n vertices (a full permutation).
	full := SampleVertices(5, 10, 1)
	if len(full) != 5 {
		t.Fatalf("oversampling returned %d vertices, want 5", len(full))
	}
}

// TestMakeParams pins register-count resolution: clamping, power-of-two
// rounding, and the alpha constants.
func TestMakeParams(t *testing.T) {
	cases := []struct {
		in   int
		regs int
	}{
		{0, 64}, {-3, 64}, {16, 16}, {17, 32}, {64, 64}, {100, 128}, {256, 256}, {1000, 256}, {5, 16},
	}
	for _, c := range cases {
		p := makeParams(c.in)
		if p.regs != c.regs {
			t.Fatalf("makeParams(%d).regs = %d, want %d", c.in, p.regs, c.regs)
		}
		if p.words != p.regs/8 {
			t.Fatalf("regs %d: words = %d", p.regs, p.words)
		}
		if 1<<p.bits != p.regs {
			t.Fatalf("regs %d: bits = %d", p.regs, p.bits)
		}
	}
	if makeParams(16).alpha != 0.673 || makeParams(64).alpha != 0.709 {
		t.Fatal("alpha constants wrong")
	}
}
