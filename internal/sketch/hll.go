package sketch

import (
	"math"
	"math/bits"
)

// HyperLogLog register plumbing for the neighborhood-function kernel.
//
// Every vertex owns a row of R one-byte registers packed into R/8
// uint64 words, so the HyperANF union "counter(v) ← counter(v) ⊔
// counter(u)" is a word-wise byte-max over the two rows — eight
// registers per bit-parallel step instead of one. Register values are
// bounded by 1 + (64 − log2 R) ≤ 61 < 0x80, which is what licenses the
// borrow-free SWAR byte comparison in maxWordBytes.
//
// Rows are unions of hashed vertex ids, and the hash is a fixed
// bijective mix of (vertex, seed): the union lattice (max per
// register) is commutative, associative, and idempotent, so any
// evaluation order — serial, chunked, degree-aware — produces the same
// registers bit for bit. That is the whole determinism argument for
// the parallel sweeps; no atomics or locks are involved because each
// row has exactly one writer per sweep.

const (
	// minRegisters..maxRegisters bound the per-vertex register count;
	// powers of two only. 64 registers (one cache line per vertex,
	// ~13% per-vertex standard error, far less after summing over n
	// vertices) is the default speed/accuracy point.
	minRegisters     = 16
	maxRegisters     = 256
	defaultRegisters = 64
)

// hllParams resolves a requested register count to (registers, words
// per row, bucket bits, alpha bias constant).
type hllParams struct {
	regs  int     // registers per vertex (power of two)
	words int     // uint64 words per row = regs/8
	bits  uint    // log2(regs): hash bits consumed by the bucket index
	alpha float64 // HyperLogLog bias correction constant
}

func makeParams(registers int) hllParams {
	r := registers
	if r <= 0 {
		r = defaultRegisters
	}
	if r < minRegisters {
		r = minRegisters
	}
	if r > maxRegisters {
		r = maxRegisters
	}
	// Round up to a power of two (bucket index must be a bit mask).
	p := minRegisters
	for p < r {
		p <<= 1
	}
	var alpha float64
	switch p {
	case 16:
		alpha = 0.673
	case 32:
		alpha = 0.697
	case 64:
		alpha = 0.709
	default:
		alpha = 0.7213 / (1 + 1.079/float64(p))
	}
	bits := uint(0)
	for 1<<bits < p {
		bits++
	}
	return hllParams{regs: p, words: p / 8, bits: bits, alpha: alpha}
}

// mix64 is the splitmix64 finalizer: a fixed bijective scramble whose
// output bits pass the usual avalanche tests. Element hashes are
// mix64(vertex ^ mix64(seed)) — deterministic in (vertex, seed), and
// changing the seed re-randomizes every bucket/rank assignment.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hllInsert folds element hash h into the row: register h&(R−1) takes
// the max with rho(h >> bits), the 1-based position of the first set
// bit of the remaining hash bits (counted from the top of the 64−bits
// window). Values lie in [1, 65−bits].
func hllInsert(row []uint64, h uint64, p hllParams) {
	bucket := h & uint64(p.regs-1)
	w := h >> p.bits
	// Leading zeros within the (64-bits)-bit window: shift the window
	// to the top of the word first.
	rho := uint64(bits.LeadingZeros64(w<<p.bits)) + 1
	if rho > 64-uint64(p.bits)+1 {
		rho = 64 - uint64(p.bits) + 1
	}
	word := bucket >> 3
	shift := (bucket & 7) * 8
	curr := (row[word] >> shift) & 0xff
	if rho > curr {
		row[word] = (row[word] &^ (uint64(0xff) << shift)) | (rho << shift)
	}
}

// byteMSBs masks the most-significant bit of every byte lane.
const byteMSBs = 0x8080808080808080

// maxWordBytes returns the lane-wise unsigned byte maximum of x and y.
// It requires every byte of both operands to be < 0x80, which HLL
// registers guarantee (max value 61). Under that precondition
// (x|MSBs)−y cannot borrow across byte lanes, and each lane's MSB in
// the difference is set exactly when x's byte ≥ y's byte; spreading
// that bit to a full-byte mask selects the winner per lane.
func maxWordBytes(x, y uint64) uint64 {
	ge := ((x | byteMSBs) - y) & byteMSBs
	mask := (ge >> 7) * 0xff
	return (x & mask) | (y &^ mask)
}

// unionRows folds src into dst lane-wise (dst ← dst ⊔ src), reporting
// whether any register of dst increased. The equal-word fast path
// matters: in late HyperANF sweeps most neighbor rows are already
// subsumed, and comparing one word replaces eight register compares.
func unionRows(dst, src []uint64) bool {
	changed := false
	_ = dst[len(src)-1]
	for i, y := range src {
		x := dst[i]
		if x == y {
			continue
		}
		if m := maxWordBytes(x, y); m != x {
			dst[i] = m
			changed = true
		}
	}
	return changed
}

// unionRowsSum is unionRows plus incremental estimator maintenance
// (the Boldi–Rosa–Vigna systolic trick): it returns the change to the
// row's harmonic sum Σ 2^−reg and zero-register count, so the caller
// keeps a cardinality estimate in O(changed registers) instead of
// rescanning all R after every union. Lane deltas are extracted only
// from words the max actually changed; each row has one writer and
// processes its neighbors in adjacency order, so the float
// accumulation order — hence the estimate, bit for bit — is the same
// at every worker count.
func unionRowsSum(dst, src []uint64, pow *[66]float64) (dSum float64, dZeros int32, changed bool) {
	_ = dst[len(src)-1]
	for i, y := range src {
		x := dst[i]
		if x == y {
			continue
		}
		m := maxWordBytes(x, y)
		if m == x {
			continue
		}
		dst[i] = m
		changed = true
		for diff := m ^ x; diff != 0; {
			s := uint(bits.TrailingZeros64(diff)) &^ 7
			old := (x >> s) & 0xff
			dSum += pow[(m>>s)&0xff] - pow[old]
			if old == 0 {
				dZeros--
			}
			diff &^= 0xff << s
		}
	}
	return dSum, dZeros, changed
}

// rowSummary scans one row into the estimator state: the harmonic sum
// Σ 2^−reg and the zero-register count. O(R); used at plane init, after
// which unionRowsSum maintains both incrementally.
func rowSummary(row []uint64, pow *[66]float64) (sum float64, zeros int32) {
	for _, w := range row {
		for s := 0; s < 64; s += 8 {
			r := (w >> uint(s)) & 0xff
			if r == 0 {
				zeros++
			}
			sum += pow[r]
		}
	}
	return sum, zeros
}

// estimateFrom turns the maintained (sum, zeros) state into the
// cardinality estimate: the raw HyperLogLog harmonic-mean estimator
// with the standard small-range (linear counting) correction. No
// large-range correction is needed — the 64-bit hash space is never
// saturated by graph-sized sets.
func estimateFrom(sum float64, zeros int32, p hllParams) float64 {
	m := float64(p.regs)
	est := p.alpha * m * m / sum
	if est <= 2.5*m && zeros != 0 {
		est = m * math.Log(m/float64(zeros))
	}
	return est
}

// hllEstimate returns the cardinality estimate of one row from
// scratch.
func hllEstimate(row []uint64, p hllParams, pow2neg *[66]float64) float64 {
	sum, zeros := rowSummary(row, pow2neg)
	return estimateFrom(sum, zeros, p)
}

// makePow2Neg builds the 2^−r lookup used by hllEstimate (r ≤ 65).
func makePow2Neg() *[66]float64 {
	var t [66]float64
	for i := range t {
		t[i] = math.Pow(2, -float64(i))
	}
	return &t
}

var pow2neg = makePow2Neg()
