package sketch

import (
	"math"

	"snap/internal/bfs"
	"snap/internal/graph"
	"snap/internal/par"
)

// ClosenessOptions configures the Eppstein–Wang sampled closeness
// estimator.
type ClosenessOptions struct {
	// Samples is the number of BFS pivots. <= 0 derives the count from
	// Epsilon and Confidence via the Hoeffding bound below.
	Samples int
	// Epsilon is the target additive error of each vertex's estimated
	// average distance, as a fraction of the graph's diameter Δ
	// (Eppstein–Wang's error unit). 0 means 0.1.
	Epsilon float64
	// Confidence is the probability that EVERY vertex's estimate is
	// within Epsilon·Δ (a union bound over the n per-vertex Hoeffding
	// events). 0 means 0.95.
	Confidence float64
	// Seed drives pivot sampling; 0 means the documented deterministic
	// default (DefaultSeed).
	Seed int64
	// Workers bounds parallelism; <= 0 means par.Workers().
	Workers int
}

// ClosenessResult carries the scores and the realized error contract.
type ClosenessResult struct {
	// Scores[v] = 1 / (estimated total distance from v), the same
	// convention as the exact centrality.Closeness; vertices reached
	// by no pivot score 0.
	Scores []float64
	// Pivots are the sampled BFS sources actually used.
	Pivots []int32
	// Epsilon is the error guaranteed at the requested confidence by
	// the number of samples actually run: with k pivots, every
	// vertex's estimated average distance is within Epsilon·Δ of the
	// truth with probability Confidence.
	Epsilon float64
	// Confidence echoes the confidence level the bound was solved at.
	Confidence float64
}

// ClosenessSamples returns the Eppstein–Wang pivot count that makes
// every vertex's estimated average distance accurate to eps·Δ with the
// given confidence: the Hoeffding bound for means of [0, Δ]-valued
// samples, union-bounded over the n vertices —
//
//	k = ceil( ln(2n / (1−confidence)) / (2 eps²) ).
func ClosenessSamples(n int, eps, confidence float64) int {
	if n <= 0 {
		return 0
	}
	if eps <= 0 {
		eps = 0.1
	}
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	k := int(math.Ceil(math.Log(2*float64(n)/(1-confidence)) / (2 * eps * eps)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// closenessEpsilon inverts the bound: the eps achieved by k samples.
func closenessEpsilon(n, k int, confidence float64) float64 {
	if n <= 0 || k <= 0 {
		return 0
	}
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	return math.Sqrt(math.Log(2*float64(n)/(1-confidence)) / (2 * float64(k)))
}

// Closeness estimates closeness centrality for every vertex with the
// Eppstein–Wang pivot scheme: k BFS traversals from sampled pivots
// give each vertex an unbiased estimate of its total distance, and the
// score is the reciprocal of that estimate. Each pivot's distance
// vector is folded into per-worker accumulators with no serialization
// (the coarse-grained O(p·n) memory trade, as in coarse-grained
// betweenness), merged once at the end. Which pivot lands on which
// worker is scheduling-dependent, but every accumulated value is an
// integer-valued float64 far below 2^53, where addition is exact and
// therefore associative — so the merged totals, and the scores, are
// bit-identical for a fixed seed at any worker count (pinned by the
// worker-invariance test). On disconnected graphs a
// vertex's sampled total is scaled by n over the number of pivots that
// reached it, the convention the exact kernel's reachable-pairs
// handling mirrors.
func Closeness(g *graph.Graph, opt ClosenessOptions) ClosenessResult {
	n := g.NumVertices()
	if n == 0 {
		return ClosenessResult{}
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	confidence := opt.Confidence
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	samples := opt.Samples
	if samples <= 0 {
		samples = ClosenessSamples(n, opt.Epsilon, confidence)
	}
	if samples > n {
		samples = n
	}
	pivots := SampleVertices(n, samples, opt.Seed)

	// Per-worker accumulators, allocated lazily so only workers that
	// actually run pay O(n); merged in fixed worker order.
	type pivotAcc struct {
		totals []float64
		counts []int32
	}
	accs := make([]pivotAcc, workers)
	bfs.MultiSourceWorkspace(g, pivots, -1, workers, func(w, _ int, ws *bfs.Workspace) {
		a := &accs[w]
		if a.totals == nil {
			a.totals = make([]float64, n)
			a.counts = make([]int32, n)
		}
		for _, v := range ws.Order() {
			a.totals[v] += float64(ws.Dist(v))
			a.counts[v]++
		}
	})
	totals := make([]float64, n)
	counts := make([]int32, n)
	for _, a := range accs {
		if a.totals == nil {
			continue
		}
		for v := 0; v < n; v++ {
			totals[v] += a.totals[v]
			counts[v] += a.counts[v]
		}
	}
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		if counts[v] == 0 || totals[v] == 0 {
			continue
		}
		// Scale the sampled distance sum to the full vertex set.
		est := totals[v] * float64(n) / float64(counts[v])
		out[v] = 1 / est
	}
	return ClosenessResult{
		Scores:     out,
		Pivots:     pivots,
		Epsilon:    closenessEpsilon(n, samples, confidence),
		Confidence: confidence,
	}
}
