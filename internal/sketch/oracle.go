package sketch

import (
	"fmt"

	"snap/internal/bfs"
	"snap/internal/frontier"
	"snap/internal/graph"
	"snap/internal/par"
)

// OracleOptions configures landmark selection for BuildOracle.
type OracleOptions struct {
	// Landmarks is the number of pivot vertices k; 0 means 16. Build
	// cost is one BFS sweep per landmark; queries cost O(k).
	Landmarks int
	// Strategy selects the pivots:
	//   "degree"   — the k highest-degree vertices (default; hubs sit
	//                on many shortest paths, tightening upper bounds).
	//   "farthest" — greedy k-center sweep: each landmark is the
	//                vertex farthest from those already chosen, so
	//                landmarks spread across the graph (and across
	//                components), tightening lower bounds.
	//   "random"   — seeded uniform sample (the unbiased baseline).
	Strategy string
	// Seed drives the "random" strategy (and tie-breaking is
	// deterministic everywhere); 0 means the documented default.
	Seed int64
	// Workers bounds parallelism of the build sweeps; <= 0 means
	// par.Workers().
	Workers int
}

// Oracle answers point-to-point distance queries in O(k) from k
// precomputed landmark BFS vectors: for every landmark L with
// distances dL, the triangle inequality brackets the true distance as
//
//	max_L |dL(s) − dL(t)|  <=  d(s, t)  <=  min_L dL(s) + dL(t).
//
// The structure is immutable after construction and safe for
// concurrent queries — the serving primitive for a long-lived
// analytics service. Memory is k·n int32s.
type Oracle struct {
	landmarks []int32
	n         int
	dist      []int32 // row i = distances from landmarks[i]; -1 unreached
}

// BuildOracle selects k landmarks and runs one multi-source BFS sweep
// to record their distance vectors. Directed graphs are rejected: the
// two-sided triangle-inequality bracket needs a symmetric metric (wrap
// the graph with graph.Undirected first, or serve one-sided bounds
// from a future directed variant).
func BuildOracle(g *graph.Graph, opt OracleOptions) (*Oracle, error) {
	if g.Directed() {
		return nil, fmt.Errorf("sketch: landmark oracle requires an undirected graph (triangle-inequality bounds need a symmetric metric); symmetrize with graph.Undirected first")
	}
	n := g.NumVertices()
	k := opt.Landmarks
	if k <= 0 {
		k = 16
	}
	if k > n {
		k = n
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	o := &Oracle{n: n}
	if n == 0 || k == 0 {
		return o, nil
	}
	if opt.Strategy == "farthest" {
		// The k-center sweep fills the distance rows as it selects, one
		// BFS per landmark.
		o.buildFarthest(g, k, workers)
		return o, nil
	}

	var landmarks []int32
	switch opt.Strategy {
	case "", "degree":
		landmarks = topDegree(g, k)
	case "random":
		landmarks = SampleVertices(n, k, opt.Seed)
	default:
		return nil, fmt.Errorf("sketch: unknown landmark strategy %q (want degree, farthest, or random)", opt.Strategy)
	}
	o.landmarks = landmarks
	o.dist = make([]int32, len(landmarks)*n)
	// One pooled-workspace BFS per landmark, landmarks processed
	// concurrently; each fills its own disjoint row.
	bfs.MultiSourceWorkspace(g, landmarks, -1, workers, func(_, i int, ws *bfs.Workspace) {
		o.fillRow(i, ws)
	})
	return o, nil
}

// fillRow materializes one landmark's distance vector from a finished
// traversal (-1 for unreached vertices).
func (o *Oracle) fillRow(i int, ws *bfs.Workspace) {
	row := o.dist[i*o.n : (i+1)*o.n]
	for j := range row {
		row[j] = -1
	}
	for _, v := range ws.Order() {
		row[v] = ws.Dist(v)
	}
}

// buildFarthest runs the greedy k-center selection: start from the
// max-degree vertex, then repeatedly take the vertex maximizing the
// distance to the chosen set (unreached vertices count as infinitely
// far, so each new component is covered before refinement continues).
// Ties break toward the smaller vertex id, making the selection
// deterministic. The selection BFS runs double as the oracle rows.
func (o *Oracle) buildFarthest(g *graph.Graph, k, workers int) {
	n := o.n
	o.dist = make([]int32, 0, k*n)
	minDist := make([]int32, n) // distance to the chosen landmark set; -1 = unreached
	for i := range minDist {
		minDist[i] = -1
	}
	ws := bfs.AcquireWorkspace(n)
	defer bfs.ReleaseWorkspace(ws)
	opt := frontier.Options{Workers: workers, MaxDepth: -1, Alpha: frontier.DefaultAlpha, DegreeAware: true}

	next := int32(0)
	for v := int32(1); int(v) < n; v++ {
		if g.Degree(v) > g.Degree(next) {
			next = v
		}
	}
	for len(o.landmarks) < k {
		o.landmarks = append(o.landmarks, next)
		ws.RunOptions(g, next, opt)
		row := o.dist[len(o.dist) : len(o.dist)+n]
		o.dist = o.dist[:len(o.dist)+n]
		for j := range row {
			row[j] = -1
		}
		for _, v := range ws.Order() {
			d := ws.Dist(v)
			row[v] = d
			if minDist[v] == -1 || d < minDist[v] {
				minDist[v] = d
			}
		}
		// Farthest-from-set vertex: the first still-unreached vertex if
		// any (a fresh component), else the max finite distance (ties
		// toward the smaller id — the ascending scan keeps the first).
		next = -1
		for v := 0; v < n; v++ {
			if minDist[v] == -1 {
				next = int32(v)
				break
			}
		}
		if next == -1 {
			var bestD int32
			for v := 0; v < n; v++ {
				if minDist[v] > bestD {
					bestD = minDist[v]
					next = int32(v)
				}
			}
			if next == -1 {
				break // every vertex is at distance 0 from the set
			}
		}
	}
}

// topDegree returns the k highest-degree vertices (ties toward the
// smaller id) via a bounded min-heap — O(n log k).
func topDegree(g *graph.Graph, k int) []int32 {
	n := g.NumVertices()
	if k > n {
		k = n
	}
	heap := make([]int32, 0, k)
	// a ranks strictly below b: lower degree, ties toward larger id
	// (so the tied smaller id displaces it).
	worse := func(a, b int32) bool {
		da, db := g.Degree(a), g.Degree(b)
		if da != db {
			return da < db
		}
		return a > b
	}
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(heap) && worse(heap[l], heap[small]) {
				small = l
			}
			if r < len(heap) && worse(heap[r], heap[small]) {
				small = r
			}
			if small == i {
				return
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
	}
	up := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !worse(heap[i], heap[p]) {
				return
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	for v := int32(0); int(v) < n; v++ {
		if len(heap) < k {
			heap = append(heap, v)
			up(len(heap) - 1)
		} else if worse(heap[0], v) {
			heap[0] = v
			down(0)
		}
	}
	out := make([]int32, len(heap))
	for i := len(heap) - 1; i >= 0; i-- {
		out[i] = heap[0]
		heap[0] = heap[len(heap)-1]
		heap = heap[:len(heap)-1]
		down(0)
	}
	return out
}

// Landmarks returns the selected pivot vertices (read-only).
func (o *Oracle) Landmarks() []int32 { return o.landmarks }

// NumVertices reports the vertex count the oracle was built for.
func (o *Oracle) NumVertices() int { return o.n }

// LandmarkDist reports the exact BFS distance from landmark index i to
// v (-1 when unreached).
func (o *Oracle) LandmarkDist(i int, v int32) int32 { return o.dist[i*o.n+int(v)] }

// Estimate brackets d(s, t) by the triangle inequality over every
// landmark: lo <= d(s, t) <= hi. Exact (lo == hi) whenever s or t is a
// landmark or some landmark lies on a shortest s–t path. Returns
// (-1, -1) when the landmarks prove s and t disconnected (some
// landmark reaches exactly one of them) or no landmark reaches either.
// Zero allocations; safe for concurrent use.
func (o *Oracle) Estimate(s, t int32) (lo, hi int32) {
	if s == t {
		return 0, 0
	}
	lo, hi = -1, -1
	for i := range o.landmarks {
		row := o.dist[i*o.n : (i+1)*o.n]
		ds, dt := row[s], row[t]
		if ds < 0 || dt < 0 {
			if ds >= 0 || dt >= 0 {
				// The landmark's component contains exactly one of
				// s, t: on an undirected graph they are disconnected.
				return -1, -1
			}
			continue
		}
		d := ds - dt
		if d < 0 {
			d = -d
		}
		u := ds + dt
		if lo == -1 || d > lo {
			lo = d
		}
		if hi == -1 || u < hi {
			hi = u
		}
	}
	return lo, hi
}

// Distance returns the midpoint point estimate from Estimate's
// bracket, or -1 for pairs the landmarks prove (or cannot refute as)
// disconnected. The serving-path convenience: one number per query.
func (o *Oracle) Distance(s, t int32) int32 {
	lo, hi := o.Estimate(s, t)
	if lo < 0 {
		return -1
	}
	return (lo + hi) / 2
}
