package sketch

import (
	"math"
	"testing"

	"snap/internal/bfs"
	"snap/internal/generate"
	"snap/internal/graph"
)

// exactTotals computes each vertex's exact total distance and reached
// count over the whole graph (the quantities Closeness estimates).
func exactTotals(g *graph.Graph) (totals []float64, counts []int32) {
	n := g.NumVertices()
	totals = make([]float64, n)
	counts = make([]int32, n)
	sources := make([]int32, n)
	for i := range sources {
		sources[i] = int32(i)
	}
	bfs.MultiSourceWorkspace(g, sources, -1, 1, func(_, _ int, ws *bfs.Workspace) {
		for _, v := range ws.Order() {
			totals[v] += float64(ws.Dist(v))
			counts[v]++
		}
	})
	return totals, counts
}

// TestClosenessFullSamplingIsExact pins that sampling every vertex
// reproduces the exact closeness scores (the estimator is unbiased and
// with k = n the sample IS the population).
func TestClosenessFullSamplingIsExact(t *testing.T) {
	g := generate.RMAT(256, 1024, generate.DefaultRMAT(), 3)
	n := g.NumVertices()
	r := Closeness(g, ClosenessOptions{Samples: n, Seed: 1})
	totals, counts := exactTotals(g)
	for v := 0; v < n; v++ {
		want := 0.0
		if counts[v] > 0 && totals[v] > 0 {
			want = 1 / (totals[v] * float64(n) / float64(counts[v]))
		}
		if math.Abs(r.Scores[v]-want) > 1e-12 {
			t.Fatalf("vertex %d: full-sample score %v, want %v", v, r.Scores[v], want)
		}
	}
	if len(r.Pivots) != n {
		t.Fatalf("full sampling used %d pivots, want %d", len(r.Pivots), n)
	}
}

// TestClosenessHoeffdingBound checks the advertised guarantee
// empirically: across seeds, the fraction of trials where EVERY
// vertex's estimated average distance lands within eps·Δ of the truth
// must meet the confidence level.
func TestClosenessHoeffdingBound(t *testing.T) {
	g := generate.ErdosRenyi(400, 1600, 9)
	n := g.NumVertices()
	totals, counts := exactTotals(g)
	// Graph diameter Δ (the Hoeffding range) from the exact sweep.
	var diam float64
	sources := make([]int32, n)
	for i := range sources {
		sources[i] = int32(i)
	}
	bfs.MultiSourceWorkspace(g, sources, -1, 1, func(_, _ int, ws *bfs.Workspace) {
		if d := float64(ws.MaxDist()); d > diam {
			diam = d
		}
	})
	const eps, conf = 0.2, 0.9
	k := ClosenessSamples(n, eps, conf)
	good := 0
	const trials = 30
	for seed := int64(1); seed <= trials; seed++ {
		r := Closeness(g, ClosenessOptions{Samples: k, Seed: seed})
		ok := true
		for v := 0; v < n; v++ {
			if counts[v] == 0 {
				continue
			}
			trueAvg := totals[v] / float64(counts[v])
			var estAvg float64
			if r.Scores[v] > 0 {
				estAvg = (1 / r.Scores[v]) / float64(n)
			}
			if math.Abs(estAvg-trueAvg) > eps*diam {
				ok = false
				break
			}
		}
		if ok {
			good++
		}
	}
	if float64(good) < conf*trials {
		t.Fatalf("Hoeffding bound held on %d/%d trials, want >= %.0f", good, trials, conf*trials)
	}
}

// TestClosenessSamplesFormula spot-checks the pivot-count bound and
// its inverse.
func TestClosenessSamplesFormula(t *testing.T) {
	// ln(2*1000/0.05) / (2*0.01) = ln(40000)/0.02 ≈ 529.8 → 530,
	// clamped to n.
	if k := ClosenessSamples(1000, 0.1, 0.95); k != 530 {
		t.Fatalf("ClosenessSamples(1000, 0.1, 0.95) = %d, want 530", k)
	}
	if k := ClosenessSamples(100, 0.1, 0.95); k != 100 {
		t.Fatalf("clamp to n failed: %d", k)
	}
	if k := ClosenessSamples(0, 0.1, 0.95); k != 0 {
		t.Fatalf("empty graph wants 0 samples, got %d", k)
	}
	// Round-trip: eps achieved by the returned k is <= the requested eps.
	k := ClosenessSamples(1 << 20, 0.05, 0.99)
	if got := closenessEpsilon(1<<20, k, 0.99); got > 0.05+1e-9 {
		t.Fatalf("achieved eps %.4f > requested 0.05", got)
	}
}

// TestClosenessWorkerInvariance pins bitwise determinism of the scores
// across worker counts (integer-exact float64 accumulation).
func TestClosenessWorkerInvariance(t *testing.T) {
	g := generate.RMAT(800, 3200, generate.DefaultRMAT(), 4)
	base := Closeness(g, ClosenessOptions{Samples: 48, Seed: 2, Workers: 1})
	for _, w := range []int{2, 3, 8} {
		got := Closeness(g, ClosenessOptions{Samples: 48, Seed: 2, Workers: w})
		for v := range base.Scores {
			if got.Scores[v] != base.Scores[v] {
				t.Fatalf("workers=%d: Scores[%d] = %v, want %v (bitwise)", w, v, got.Scores[v], base.Scores[v])
			}
		}
	}
}

// TestClosenessSeedZeroIsDefault pins the unified seed contract.
func TestClosenessSeedZeroIsDefault(t *testing.T) {
	g := generate.ErdosRenyi(300, 900, 5)
	zero := Closeness(g, ClosenessOptions{Samples: 16, Seed: 0})
	def := Closeness(g, ClosenessOptions{Samples: 16, Seed: DefaultSeed})
	for i := range zero.Pivots {
		if zero.Pivots[i] != def.Pivots[i] {
			t.Fatal("seed 0 sampled different pivots than DefaultSeed")
		}
	}
	for v := range zero.Scores {
		if zero.Scores[v] != def.Scores[v] {
			t.Fatal("seed 0 scores differ from DefaultSeed")
		}
	}
}

// TestClosenessDisconnected checks the reached-count scaling on a
// two-component graph: scores stay finite and vertices in components no
// pivot reaches score zero.
func TestClosenessDisconnected(t *testing.T) {
	// Component A: path 0-1-2; component B: triangle 3-4-5.
	g, err := graph.Build(6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5},
	}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := Closeness(g, ClosenessOptions{Samples: 6, Seed: 1})
	for v, s := range r.Scores {
		if math.IsInf(s, 0) || math.IsNaN(s) || s < 0 {
			t.Fatalf("vertex %d: score %v", v, s)
		}
	}
	// With all 6 pivots, triangle vertices have total 2, counts 3:
	// est = 2*6/3 = 4 → 0.25.
	for v := 3; v < 6; v++ {
		if math.Abs(r.Scores[v]-0.25) > 1e-12 {
			t.Fatalf("triangle vertex %d score %v, want 0.25", v, r.Scores[v])
		}
	}
}

// TestClosenessDerivedEpsilon checks that the result echoes the
// realized error bound for an explicit sample count.
func TestClosenessDerivedEpsilon(t *testing.T) {
	g := generate.ErdosRenyi(500, 2000, 11)
	r := Closeness(g, ClosenessOptions{Samples: 100, Seed: 1})
	want := closenessEpsilon(500, 100, 0.95)
	if math.Abs(r.Epsilon-want) > 1e-12 || r.Confidence != 0.95 {
		t.Fatalf("echoed bound (%v, %v), want (%v, 0.95)", r.Epsilon, r.Confidence, want)
	}
}
