package sketch

import (
	"os"
	"strconv"
	"testing"

	"snap/internal/generate"
	"snap/internal/graph"
)

// sketchBenchScale picks the RMAT scale: SNAP_BENCH_SCALE when set,
// else 14 under -short (CI smoke) and 18 for a full run (the
// EXPERIMENTS.md numbers).
func sketchBenchScale(tb testing.TB) int {
	if s := os.Getenv("SNAP_BENCH_SCALE"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			tb.Fatalf("bad SNAP_BENCH_SCALE %q: %v", s, err)
		}
		return v
	}
	if testing.Short() {
		return 14
	}
	return 18
}

func sketchRMAT(scale int) *graph.Graph {
	n := 1 << scale
	return generate.RMAT(n, 8*n, generate.DefaultRMAT(), 1)
}

func BenchmarkANFRMAT(b *testing.B) {
	g := sketchRMAT(sketchBenchScale(b))
	b.ReportAllocs()
	b.SetBytes(int64(g.NumArcs() * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ANF(g, ANFOptions{Seed: 1})
	}
}

// BenchmarkANFWarm measures the pooled steady state: one workspace
// reused across runs (the serving-loop shape), serial arm.
func BenchmarkANFWarm(b *testing.B) {
	g := sketchRMAT(sketchBenchScale(b))
	ws := NewANFWorkspace()
	opt := ANFOptions{Seed: 1, Workers: 1}
	ws.Run(g, opt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Run(g, opt)
	}
}

func BenchmarkSampledCloseness(b *testing.B) {
	g := sketchRMAT(sketchBenchScale(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Closeness(g, ClosenessOptions{Samples: 64, Seed: 1})
	}
}

func BenchmarkOracleBuild(b *testing.B) {
	g := sketchRMAT(sketchBenchScale(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildOracle(g, OracleOptions{Landmarks: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOracleEstimate(b *testing.B) {
	g := sketchRMAT(sketchBenchScale(b))
	o, err := BuildOracle(g, OracleOptions{Landmarks: 16})
	if err != nil {
		b.Fatal(err)
	}
	n := int32(g.NumVertices())
	b.ReportAllocs()
	b.ResetTimer()
	var sink int32
	for i := 0; i < b.N; i++ {
		s := int32(i*7919) % n
		t := int32(i*104729) % n
		lo, hi := o.Estimate(s, t)
		sink += lo + hi
	}
	_ = sink
}
