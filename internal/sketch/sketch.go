// Package sketch is the approximate-analytics tier for graphs where
// the exact distance kernels are infeasible: a HyperANF-style
// neighborhood-function kernel over per-vertex HyperLogLog registers
// (effective diameter, average path length, and per-vertex
// neighborhood sizes in a handful of level-synchronous union sweeps
// instead of n BFS runs), Eppstein–Wang sampled closeness with
// Hoeffding error bounds, and a k-landmark distance oracle answering
// point-to-point distance queries in O(k).
//
// Every kernel follows the house rules of the exact tier: pooled
// epoch-free workspaces that reach zero allocations per run once warm,
// seeded deterministic hashing and sampling so serial and parallel
// runs are bit-identical at any worker count, and estimates whose
// error model is documented (DESIGN.md §5i) rather than folklore.
package sketch

import "math/rand"

// DefaultSeed is the seed every sampled or hashed kernel in this
// repository uses when the caller passes seed 0: "zero means the
// documented deterministic default", so out-of-the-box runs are
// reproducible across machines and releases without forcing callers
// to invent a constant. Any other seed value is used as given.
//
// The constant spells "SNAPSKCH" in ASCII — arbitrary, but fixed
// forever: changing it would silently change every default-seeded
// result in the tree (pinned by TestNewRNGDefaultSeed).
const DefaultSeed int64 = 0x534e4150534b4348

// EffectiveSeed maps a caller-provided seed to the seed actually used:
// 0 becomes DefaultSeed, everything else is itself. All sampled
// kernels (sketch closeness, landmark selection, HLL hashing,
// metrics.AvgPathLength, centrality.ApproxCloseness) route their seed
// through this one function so "seed 0" behaves identically everywhere.
func EffectiveSeed(seed int64) int64 {
	if seed == 0 {
		return DefaultSeed
	}
	return seed
}

// NewRNG returns the deterministic random source for a sampled kernel:
// rand.New(rand.NewSource(EffectiveSeed(seed))). The stream for a
// given seed is stable — tests pin sampled results against it.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(EffectiveSeed(seed)))
}

// SampleVertices draws k distinct vertex ids from [0, n) using the
// unified rng: the first k entries of a seeded permutation, the
// sampling scheme the seed-era kernels used, kept verbatim so existing
// fixed-seed results survive the refactor. k is clamped to n.
func SampleVertices(n, k int, seed int64) []int32 {
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	perm := NewRNG(seed).Perm(n)
	out := make([]int32, k)
	for i := range out {
		out[i] = int32(perm[i])
	}
	return out
}
