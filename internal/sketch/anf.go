package sketch

import (
	"math"
	"sync"

	"snap/internal/frontier"
	"snap/internal/graph"
	"snap/internal/par"
)

// ANFOptions configures the HyperANF neighborhood-function kernel.
type ANFOptions struct {
	// Registers is the per-vertex HyperLogLog register count (rounded
	// to a power of two in [16, 256]; 0 means 64). Per-vertex relative
	// standard error is ~1.04/sqrt(Registers); the aggregate
	// neighborhood function averages that error over n near-independent
	// per-vertex sketches, so it is far tighter in practice.
	Registers int
	// Seed drives the register hash; 0 means the documented
	// deterministic default (see DefaultSeed). Runs with equal seeds
	// are bit-identical at every worker count.
	Seed int64
	// Workers bounds parallelism; <= 0 means par.Workers().
	Workers int
	// MaxSweeps bounds the number of union sweeps (distance levels);
	// <= 0 runs to the register fixpoint, which is reached after at
	// most diameter-many sweeps. HyperANF is built for small-world
	// graphs where that is a handful; on mesh-like graphs with huge
	// diameters, bound it or use the exact tier.
	MaxSweeps int
	// Quantile is the effective-diameter quantile (0 means 0.9, the
	// conventional "90% of reachable pairs" definition).
	Quantile float64
}

// ANFResult is the estimated neighborhood function and the distance
// statistics derived from it. For graphs the exact tier can touch, the
// companion property tests hold these within the advertised HLL error
// of the BFS oracle.
type ANFResult struct {
	// NF[t] estimates the number of ordered pairs (u, v), self-pairs
	// included, with d(u, v) <= t. NF[0] ~ n; the last entry estimates
	// the number of reachable pairs. Clamped to be non-decreasing.
	NF []float64
	// Reach[v] estimates |{u : d(v, u) < inf}| — the per-vertex
	// neighborhood (reachable-set) size at convergence.
	Reach []float64
	// EffectiveDiameter is the interpolated smallest t such that NF(t)
	// covers Quantile of all reachable pairs.
	EffectiveDiameter float64
	// AvgPathLength is the mean distance over reachable ordered pairs
	// (self-pairs excluded), estimated from successive NF differences.
	AvgPathLength float64
	// DiameterEstimate is the last sweep that discovered new pairs —
	// an estimate (not a bound) of the diameter of the reachable-pair
	// relation.
	DiameterEstimate int
	// Sweeps is the number of union sweeps run.
	Sweeps int
	// Registers is the resolved per-vertex register count.
	Registers int
}

// ANFWorkspace is the reusable state of the HyperANF kernel: two
// ping-pong register planes, the changed-vertex frontier, and the
// per-vertex estimate plane. Acquire one per goroutine; a warm
// workspace runs with zero allocations at Workers <= 1 (the serial
// arm is closure-free, matching the move-engine discipline). Results
// returned by Run alias the workspace and are valid until the next
// Run or Release.
type ANFWorkspace struct {
	p          hllParams
	cur, next  []uint64 // n rows x p.words registers, ping-pong planes
	est        []float64
	sums       []float64 // per-row harmonic sum, maintained incrementally
	zeros      []int32   // per-row zero-register count, ditto
	nf         []float64
	reach      []float64 // aliased by results only when a copy is needed
	changed    frontier.Frontier
	changedBuf []int32   // sparse changed list backing the frontier
	nexts      [][]int32 // per-worker changed-discovery buffers
	bounds     []int     // degree-aware vertex ranges, one per worker
	weights    []int64   // per-vertex degree weights for the partition
}

// NewANFWorkspace returns an empty workspace; Run sizes it on demand.
func NewANFWorkspace() *ANFWorkspace { return &ANFWorkspace{} }

var anfPool = par.NewPool(func() *ANFWorkspace { return &ANFWorkspace{} })

// AcquireANFWorkspace returns a pooled workspace. Release it with
// ReleaseANFWorkspace when done.
func AcquireANFWorkspace() *ANFWorkspace { return anfPool.Get() }

// ReleaseANFWorkspace returns a workspace to the pool. The caller must
// not use ws (or results aliasing it) afterwards.
func ReleaseANFWorkspace(ws *ANFWorkspace) { anfPool.Put(ws) }

// ANF estimates the neighborhood function of g with a pooled
// workspace, copying the result out so it survives workspace reuse.
// See ANFWorkspace.Run for the kernel.
func ANF(g *graph.Graph, opt ANFOptions) ANFResult {
	ws := AcquireANFWorkspace()
	r := ws.Run(g, opt)
	r.NF = append([]float64(nil), r.NF...)
	r.Reach = append([]float64(nil), r.Reach...)
	ReleaseANFWorkspace(ws)
	return r
}

// Run executes the HyperANF sweep loop on g.
//
// Every vertex starts with an HLL sketch of {v}. Sweep t computes, for
// each vertex, the union of its own sketch with its out-neighbors'
// sweep-(t−1) sketches, so after t sweeps vertex v's sketch describes
// the ball B(v, t) and Σ_v E[|B(v, t)|] estimates NF(t). Sweeps read
// one register plane and write the other (each row has exactly one
// writer), and the union is a lattice max — commutative, associative,
// idempotent — so the result is bit-identical at every worker count.
// Only rows with a neighbor in the changed frontier are re-unioned:
// an unchanged neighbor's contribution is already folded into the
// previous plane, which the new plane starts from. The loop stops at
// the register fixpoint, reached after at most diameter sweeps.
func (ws *ANFWorkspace) Run(g *graph.Graph, opt ANFOptions) ANFResult {
	n := g.NumVertices()
	workers := opt.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	if workers > n {
		workers = n
	}
	p := makeParams(opt.Registers)
	quantile := opt.Quantile
	if quantile <= 0 {
		quantile = 0.9
	}
	if quantile > 1 {
		quantile = 1
	}
	ws.resize(n, p, workers)
	if n == 0 {
		ws.nf = ws.nf[:0]
		return ANFResult{NF: ws.nf, Reach: ws.est, Registers: p.regs}
	}
	seedMix := mix64(uint64(EffectiveSeed(opt.Seed)))

	// Degree-aware contiguous vertex ranges, computed once per run and
	// reused by every sweep (the per-sweep work of a range is
	// proportional to its degree sum, just like a BFS level's).
	if workers > 1 {
		ws.weights = ws.weights[:0]
		for v := 0; v < n; v++ {
			ws.weights = append(ws.weights, g.Offsets[v+1]-g.Offsets[v])
		}
		ws.bounds = append(ws.bounds[:0], par.DegreeAware(ws.weights, workers)...)
	} else {
		ws.bounds = append(ws.bounds[:0], 0, n)
	}

	// Plane init: sketch of {v} per row, plus its estimate; the first
	// changed frontier is everything. The serial arm is inlined — a
	// closure handed to forRanges escapes to goroutines in the parallel
	// branch and would cost the steady state its zero-alloc contract.
	if workers <= 1 {
		ws.initRange(0, n, p, seedMix)
	} else {
		ws.forRanges(workers, func(_, lo, hi int) {
			ws.initRange(lo, hi, p, seedMix)
		})
	}
	ws.changedBuf = ws.changedBuf[:0]
	for v := 0; v < n; v++ {
		ws.changedBuf = append(ws.changedBuf, int32(v))
	}
	ws.changed.SetSparse(ws.changedBuf, 0)
	ws.changed.Densify(n)

	ws.nf = append(ws.nf[:0], ws.sumEst())
	maxSweeps := opt.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = math.MaxInt
	}

	sweeps := 0
	for sweeps < maxSweeps {
		// next := cur, then fold changed neighbors into next.
		copyPlane(ws.next, ws.cur, workers)
		changedCount := 0
		if workers <= 1 {
			// Closure-free serial arm: the zero-allocation steady state.
			buf := ws.sweepRange(g, 0, n, ws.nexts[0][:0])
			ws.nexts[0] = buf
			changedCount = len(buf)
		} else {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				lo, hi := ws.bounds[w], ws.bounds[w+1]
				if lo >= hi {
					ws.nexts[w] = ws.nexts[w][:0]
					continue
				}
				wg.Add(1)
				go func(w, lo, hi int) {
					defer wg.Done()
					ws.nexts[w] = ws.sweepRange(g, lo, hi, ws.nexts[w][:0])
				}(w, lo, hi)
			}
			wg.Wait()
			for w := 0; w < workers; w++ {
				changedCount += len(ws.nexts[w])
			}
		}
		if changedCount == 0 {
			break
		}
		sweeps++
		// Publish the new plane and the new changed frontier (merged in
		// worker order — deterministic, and only its bitmap is probed).
		ws.cur, ws.next = ws.next, ws.cur
		ws.changedBuf = ws.changedBuf[:0]
		for w := 0; w < workers; w++ {
			ws.changedBuf = append(ws.changedBuf, ws.nexts[w]...)
		}
		ws.changed.SetSparse(ws.changedBuf, 0)
		ws.changed.Densify(n)
		// Serial index-order reduction: bit-identical at any worker
		// count (a per-worker partial-sum merge would round differently
		// as the worker count changes the grouping).
		nfT := ws.sumEst()
		if last := ws.nf[len(ws.nf)-1]; nfT < last {
			nfT = last // estimator dips are noise; NF is non-decreasing
		}
		ws.nf = append(ws.nf, nfT)
	}

	res := ANFResult{
		NF:        ws.nf,
		Reach:     ws.est,
		Sweeps:    sweeps,
		Registers: p.regs,
	}
	res.EffectiveDiameter = effectiveDiameter(ws.nf, quantile)
	res.AvgPathLength = anfAvgPath(ws.nf)
	for t := len(ws.nf) - 1; t >= 1; t-- {
		if ws.nf[t] > ws.nf[t-1] {
			res.DiameterEstimate = t
			break
		}
	}
	return res
}

// initRange seeds rows [lo, hi) of the cur plane with the singleton
// sketch {v}, its estimator state, and its estimate.
func (ws *ANFWorkspace) initRange(lo, hi int, p hllParams, seedMix uint64) {
	clear(ws.cur[lo*p.words : hi*p.words])
	for v := lo; v < hi; v++ {
		r := ws.cur[v*p.words : (v+1)*p.words]
		hllInsert(r, mix64(uint64(v)^seedMix), p)
		ws.sums[v], ws.zeros[v] = rowSummary(r, pow2neg)
		ws.est[v] = estimateFrom(ws.sums[v], ws.zeros[v], p)
	}
}

// sweepRange folds the changed neighbors of vertices [lo, hi) from the
// cur plane into the next plane, appending vertices whose registers
// grew to buf. Owner-writes only: row v is written by exactly the
// worker that owns [lo, hi) ∋ v.
func (ws *ANFWorkspace) sweepRange(g *graph.Graph, lo, hi int, buf []int32) []int32 {
	p := ws.p
	cur, next := ws.cur, ws.next
	changed := &ws.changed
	for v := lo; v < hi; v++ {
		alo, ahi := g.Offsets[v], g.Offsets[v+1]
		grew := false
		var dst []uint64
		var dSum float64
		var dZeros int32
		for a := alo; a < ahi; a++ {
			u := g.Adj[a]
			if !changed.Has(u) {
				continue
			}
			if dst == nil {
				dst = next[v*p.words : (v+1)*p.words]
			}
			s, z, ch := unionRowsSum(dst, cur[int(u)*p.words:(int(u)+1)*p.words], pow2neg)
			if ch {
				grew = true
				dSum += s
				dZeros += z
			}
		}
		if grew {
			ws.sums[v] += dSum
			ws.zeros[v] += dZeros
			ws.est[v] = estimateFrom(ws.sums[v], ws.zeros[v], p)
			buf = append(buf, int32(v))
		}
	}
	return buf
}

// sumEst reduces the estimate plane in fixed index order.
func (ws *ANFWorkspace) sumEst() float64 {
	var s float64
	for _, e := range ws.est {
		s += e
	}
	return s
}

// forRanges runs body over the precomputed degree-aware ranges,
// serially when workers <= 1 (closure-free from the caller's
// perspective matters only for the sweep hot loop; init runs once).
func (ws *ANFWorkspace) forRanges(workers int, body func(w, lo, hi int)) {
	if workers <= 1 {
		body(0, ws.bounds[0], ws.bounds[len(ws.bounds)-1])
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := ws.bounds[w], ws.bounds[w+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			body(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// copyPlane copies src into dst in parallel word chunks.
func copyPlane(dst, src []uint64, workers int) {
	if workers <= 1 || len(src) < 1<<16 {
		copy(dst, src)
		return
	}
	par.ForChunkedN(len(src), workers, func(_, lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}

// resize prepares the workspace for an n-vertex run with parameters p.
func (ws *ANFWorkspace) resize(n int, p hllParams, workers int) {
	ws.p = p
	words := n * p.words
	if cap(ws.cur) < words {
		ws.cur = make([]uint64, words)
		ws.next = make([]uint64, words)
	} else {
		ws.cur = ws.cur[:words]
		ws.next = ws.next[:words]
	}
	if cap(ws.est) < n {
		ws.est = make([]float64, n)
		ws.sums = make([]float64, n)
		ws.zeros = make([]int32, n)
	} else {
		ws.est = ws.est[:n]
		ws.sums = ws.sums[:n]
		ws.zeros = ws.zeros[:n]
	}
	if ws.nf == nil {
		ws.nf = make([]float64, 0, 64)
	}
	if cap(ws.changedBuf) < n {
		ws.changedBuf = make([]int32, 0, n)
	}
	for len(ws.nexts) < workers {
		ws.nexts = append(ws.nexts, make([]int32, 0, 256))
	}
	if cap(ws.weights) < n {
		ws.weights = make([]int64, 0, n)
	}
	if cap(ws.bounds) < workers+1 {
		ws.bounds = make([]int, 0, workers+1)
	}
}

// effectiveDiameter interpolates the smallest t with NF(t) >= q·NF(T).
func effectiveDiameter(nf []float64, q float64) float64 {
	if len(nf) == 0 {
		return 0
	}
	target := q * nf[len(nf)-1]
	if nf[0] >= target {
		return 0
	}
	for t := 1; t < len(nf); t++ {
		if nf[t] >= target {
			return float64(t-1) + (target-nf[t-1])/(nf[t]-nf[t-1])
		}
	}
	return float64(len(nf) - 1)
}

// anfAvgPath derives the mean reachable-pair distance from NF
// differences: pairs at distance exactly t number NF(t) − NF(t−1).
func anfAvgPath(nf []float64) float64 {
	if len(nf) < 2 {
		return 0
	}
	base, total := nf[0], nf[len(nf)-1]
	if total <= base {
		return 0
	}
	var sum float64
	for t := 1; t < len(nf); t++ {
		sum += float64(t) * (nf[t] - nf[t-1])
	}
	return sum / (total - base)
}
