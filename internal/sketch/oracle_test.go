package sketch

import (
	"testing"

	"snap/internal/bfs"
	"snap/internal/generate"
	"snap/internal/graph"
)

// exactDistances returns the full n×n BFS distance matrix (-1 for
// unreachable pairs) — the oracle the bracket tests compare against.
func exactDistances(g *graph.Graph) [][]int32 {
	n := g.NumVertices()
	out := make([][]int32, n)
	sources := make([]int32, n)
	for i := range sources {
		sources[i] = int32(i)
	}
	bfs.MultiSourceWorkspace(g, sources, -1, 1, func(_, i int, ws *bfs.Workspace) {
		row := make([]int32, n)
		for j := range row {
			row[j] = -1
		}
		for _, v := range ws.Order() {
			row[v] = ws.Dist(v)
		}
		out[i] = row
	})
	return out
}

// twoComponentGraph builds a graph with a 30-vertex RMAT-ish blob and a
// 10-vertex ring, disjoint.
func twoComponentGraph(t testing.TB) *graph.Graph {
	t.Helper()
	var edges []graph.Edge
	rng := NewRNG(7)
	for i := 0; i < 60; i++ {
		u, v := int32(rng.Intn(30)), int32(rng.Intn(30))
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	// Spanning path so the blob is one component.
	for i := 0; i < 29; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1)})
	}
	for i := 30; i < 40; i++ {
		j := i + 1
		if j == 40 {
			j = 30
		}
		edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
	}
	return buildEdges(t, 40, edges)
}

// TestOracleBoundsBracketExact checks lo <= d <= hi for every pair on
// several families and all three strategies, and that disconnected
// pairs are reported as such.
func TestOracleBoundsBracketExact(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"rmat", generate.RMAT(200, 800, generate.DefaultRMAT(), 3)},
		{"er", generate.ErdosRenyi(150, 600, 4)},
		{"path", pathGraph(t, 64)},
		{"twocomp", twoComponentGraph(t)},
	}
	for _, tc := range graphs {
		exact := exactDistances(tc.g)
		n := tc.g.NumVertices()
		for _, strat := range []string{"degree", "farthest", "random"} {
			o, err := BuildOracle(tc.g, OracleOptions{Landmarks: 8, Strategy: strat, Seed: 1})
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, strat, err)
			}
			for s := int32(0); int(s) < n; s++ {
				for u := int32(0); int(u) < n; u++ {
					d := exact[s][u]
					lo, hi := o.Estimate(s, u)
					if d < 0 {
						// Disconnected pair: the oracle must never return a
						// finite bracket (a landmark reaching both would
						// prove connectivity).
						if hi >= 0 {
							t.Fatalf("%s/%s: disconnected pair (%d,%d) got bracket [%d,%d]", tc.name, strat, s, u, lo, hi)
						}
						continue
					}
					if hi < 0 {
						// Connected pair in a component with no landmark —
						// only possible when the strategy doesn't cover
						// components; farthest must always cover.
						if strat == "farthest" {
							t.Fatalf("%s/farthest: connected pair (%d,%d) unresolved", tc.name, s, u)
						}
						continue
					}
					if lo > d || d > hi {
						t.Fatalf("%s/%s: pair (%d,%d) d=%d outside [%d,%d]", tc.name, strat, s, u, d, lo, hi)
					}
					if est := o.Distance(s, u); est < lo || est > hi {
						t.Fatalf("%s/%s: midpoint %d outside [%d,%d]", tc.name, strat, est, lo, hi)
					}
				}
			}
		}
	}
}

// TestOracleExactAtLandmarks pins that queries touching a landmark are
// exact (lo == hi == d).
func TestOracleExactAtLandmarks(t *testing.T) {
	g := generate.RMAT(300, 1200, generate.DefaultRMAT(), 5)
	exact := exactDistances(g)
	o, err := BuildOracle(g, OracleOptions{Landmarks: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range o.Landmarks() {
		for v := int32(0); int(v) < g.NumVertices(); v++ {
			d := exact[l][v]
			lo, hi := o.Estimate(l, v)
			if d < 0 {
				if hi >= 0 {
					t.Fatalf("landmark %d to unreachable %d: bracket [%d,%d]", l, v, lo, hi)
				}
				continue
			}
			if lo != d || hi != d {
				t.Fatalf("landmark %d to %d: [%d,%d], want exact %d", l, v, lo, hi, d)
			}
			if got := o.LandmarkDist(i, v); got != d {
				t.Fatalf("LandmarkDist(%d,%d) = %d, want %d", i, v, got, d)
			}
		}
	}
}

// TestOracleStrategies pins strategy-specific selection behavior.
func TestOracleStrategies(t *testing.T) {
	g := twoComponentGraph(t)

	// Degree: first landmark is the max-degree vertex.
	o, err := BuildOracle(g, OracleOptions{Landmarks: 4, Strategy: "degree"})
	if err != nil {
		t.Fatal(err)
	}
	best := int32(0)
	for v := int32(1); int(v) < g.NumVertices(); v++ {
		if g.Degree(v) > g.Degree(best) {
			best = v
		}
	}
	found := false
	for _, l := range o.Landmarks() {
		if l == best {
			found = true
		}
	}
	if !found {
		t.Fatalf("degree strategy skipped the max-degree vertex %d (landmarks %v)", best, o.Landmarks())
	}

	// Farthest: with k >= 2 it must place a landmark in each component.
	o, err = BuildOracle(g, OracleOptions{Landmarks: 2, Strategy: "farthest"})
	if err != nil {
		t.Fatal(err)
	}
	var inA, inB bool
	for _, l := range o.Landmarks() {
		if l < 30 {
			inA = true
		} else {
			inB = true
		}
	}
	if !inA || !inB {
		t.Fatalf("farthest strategy left a component uncovered: landmarks %v", o.Landmarks())
	}

	// Random: deterministic per seed, differs across seeds (usually).
	a1, _ := BuildOracle(g, OracleOptions{Landmarks: 5, Strategy: "random", Seed: 3})
	a2, _ := BuildOracle(g, OracleOptions{Landmarks: 5, Strategy: "random", Seed: 3})
	for i := range a1.Landmarks() {
		if a1.Landmarks()[i] != a2.Landmarks()[i] {
			t.Fatal("random strategy not deterministic for a fixed seed")
		}
	}

	// Unknown strategy errors.
	if _, err = BuildOracle(g, OracleOptions{Strategy: "bogus"}); err == nil {
		t.Fatal("unknown strategy accepted")
	}

	// Directed graphs are rejected.
	dg, err := graph.Build(3, []graph.Edge{{U: 0, V: 1}}, graph.BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err = BuildOracle(dg, OracleOptions{}); err == nil {
		t.Fatal("directed graph accepted")
	}
}

// TestOracleWorkerInvariance pins bitwise-identical distance rows at
// every worker count.
func TestOracleWorkerInvariance(t *testing.T) {
	g := generate.RMAT(500, 2000, generate.DefaultRMAT(), 6)
	for _, strat := range []string{"degree", "farthest", "random"} {
		base, err := BuildOracle(g, OracleOptions{Landmarks: 6, Strategy: strat, Seed: 2, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 4} {
			got, err := BuildOracle(g, OracleOptions{Landmarks: 6, Strategy: strat, Seed: 2, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			for i := range base.Landmarks() {
				if base.Landmarks()[i] != got.Landmarks()[i] {
					t.Fatalf("%s workers=%d: landmark %d differs", strat, w, i)
				}
			}
			for i := range base.dist {
				if base.dist[i] != got.dist[i] {
					t.Fatalf("%s workers=%d: dist[%d] differs", strat, w, i)
				}
			}
		}
	}
}

// TestOracleEstimateZeroAlloc pins the query path's allocation
// contract.
func TestOracleEstimateZeroAlloc(t *testing.T) {
	g := generate.RMAT(1000, 4000, generate.DefaultRMAT(), 8)
	o, err := BuildOracle(g, OracleOptions{Landmarks: 16})
	if err != nil {
		t.Fatal(err)
	}
	var sink, q int32
	if allocs := testing.AllocsPerRun(100, func() {
		q = (q + 137) % 1000
		lo, hi := o.Estimate(11, q)
		sink += lo + hi
	}); allocs != 0 {
		t.Fatalf("Estimate allocates %.0f times, want 0", allocs)
	}
	_ = sink
}

// TestOracleEmptyAndSingleton covers degenerate builds.
func TestOracleEmptyAndSingleton(t *testing.T) {
	empty, err := graph.Build(0, nil, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	o, err := BuildOracle(empty, OracleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if o.NumVertices() != 0 || len(o.Landmarks()) != 0 {
		t.Fatalf("empty oracle: %d vertices, %d landmarks", o.NumVertices(), len(o.Landmarks()))
	}
	single, err := graph.Build(1, nil, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	o, err = BuildOracle(single, OracleOptions{Landmarks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi := o.Estimate(0, 0); lo != 0 || hi != 0 {
		t.Fatalf("self-distance: [%d,%d]", lo, hi)
	}
}
