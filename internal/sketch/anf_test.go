package sketch

import (
	"math"
	"runtime"
	"testing"

	"snap/internal/bfs"
	"snap/internal/generate"
	"snap/internal/graph"
)

// --- exact oracles ---------------------------------------------------

// exactNF computes the exact neighborhood function by all-sources BFS:
// nf[t] = number of ordered pairs (u, v), self-pairs included, with
// d(u, v) <= t.
func exactNF(g *graph.Graph) []float64 {
	n := g.NumVertices()
	sources := make([]int32, n)
	for i := range sources {
		sources[i] = int32(i)
	}
	var hist []int64
	bfs.MultiSourceWorkspace(g, sources, -1, 1, func(_, _ int, ws *bfs.Workspace) {
		for _, v := range ws.Order() {
			d := int(ws.Dist(v))
			for len(hist) <= d {
				hist = append(hist, 0)
			}
			hist[d]++
		}
	})
	nf := make([]float64, len(hist))
	acc := int64(0)
	for t, c := range hist {
		acc += c
		nf[t] = float64(acc)
	}
	return nf
}

func exactAvgPath(nf []float64) float64 { return anfAvgPath(nf) }

func exactEffDiam(nf []float64, q float64) float64 { return effectiveDiameter(nf, q) }

func buildEdges(t testing.TB, n int, edges []graph.Edge) *graph.Graph {
	t.Helper()
	g, err := graph.Build(n, edges, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func pathGraph(t testing.TB, n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1)})
	}
	return buildEdges(t, n, edges)
}

func starGraph(t testing.TB, n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: 0, V: int32(i)})
	}
	return buildEdges(t, n, edges)
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// --- property suite ---------------------------------------------------

// TestANFMatchesExactOracle drives the sketch against the exact BFS
// neighborhood function on four graph families. The derived statistics
// (average path length, effective diameter) must sit within the
// advertised error on at least 95% of seeds — they are ratios of NF
// values, so the HLL's correlated multiplicative error largely
// cancels; the raw NF tail gets the per-counter Gaussian bound.
func TestANFMatchesExactOracle(t *testing.T) {
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", pathGraph(t, 200)},
		{"star", starGraph(t, 256)},
		{"rmat", generate.RMAT(512, 2048, generate.DefaultRMAT(), 3)},
		{"er", generate.ErdosRenyi(512, 2048, 4)},
	}
	const seeds = 20
	for _, fam := range families {
		exact := exactNF(fam.g)
		wantAvg := exactAvgPath(exact)
		wantEff := exactEffDiam(exact, 0.9)
		// Per-counter HLL std at R=256 is 1.04/16 = 6.5%; three sigmas
		// for the raw tail, two for the ratio statistics. On small-world
		// graphs the correlated multiplicative error mostly cancels in
		// the ratios and observed errors sit far below these; mesh-like
		// graphs (the path here) realize the full per-counter sigma —
		// see DESIGN.md §5i's error model.
		const tailBound, statBound = 0.195, 0.13
		pass := 0
		for seed := int64(1); seed <= seeds; seed++ {
			r := ANF(fam.g, ANFOptions{Registers: 256, Seed: seed})
			ok := relErr(r.NF[len(r.NF)-1], exact[len(exact)-1]) <= tailBound &&
				relErr(r.AvgPathLength, wantAvg) <= statBound &&
				math.Abs(r.EffectiveDiameter-wantEff) <= statBound*math.Max(wantEff, 1)
			if ok {
				pass++
			}
		}
		if pass < int(0.95*seeds) {
			t.Errorf("%s: only %d/%d seeds within bounds (want >= %d)", fam.name, pass, seeds, int(0.95*seeds))
		}
	}
}

// TestANFReachMatchesComponentSizes pins the per-vertex neighborhood
// sizes on a two-component graph: every vertex's Reach must estimate
// its component's size.
func TestANFReachMatchesComponentSizes(t *testing.T) {
	// Component A: clique of 6 (vertices 0-5); component B: path of 94.
	var edges []graph.Edge
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
		}
	}
	for i := 6; i < 99; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1)})
	}
	g := buildEdges(t, 100, edges)
	r := ANF(g, ANFOptions{Registers: 256, Seed: 1})
	for v := 0; v < 6; v++ {
		if relErr(r.Reach[v], 6) > 0.25 {
			t.Fatalf("clique vertex %d: reach %.2f, want ~6", v, r.Reach[v])
		}
	}
	for v := 6; v < 100; v++ {
		if relErr(r.Reach[v], 94) > 0.25 {
			t.Fatalf("path vertex %d: reach %.2f, want ~94", v, r.Reach[v])
		}
	}
}

// TestANFWorkerInvariance pins the determinism contract: NF, Reach,
// and the derived statistics are bit-identical at every worker count.
func TestANFWorkerInvariance(t *testing.T) {
	graphs := []*graph.Graph{
		generate.RMAT(1000, 4000, generate.DefaultRMAT(), 5),
		generate.ErdosRenyi(777, 2000, 6),
		pathGraph(t, 300),
	}
	counts := []int{1, 2, 3, runtime.NumCPU() + 2}
	for gi, g := range graphs {
		base := ANF(g, ANFOptions{Seed: 9, Workers: 1})
		for _, w := range counts[1:] {
			got := ANF(g, ANFOptions{Seed: 9, Workers: w})
			if len(got.NF) != len(base.NF) {
				t.Fatalf("graph %d workers %d: %d sweeps vs %d", gi, w, len(got.NF), len(base.NF))
			}
			for i := range base.NF {
				if got.NF[i] != base.NF[i] {
					t.Fatalf("graph %d workers %d: NF[%d] = %v, want %v (bitwise)", gi, w, i, got.NF[i], base.NF[i])
				}
			}
			for v := range base.Reach {
				if got.Reach[v] != base.Reach[v] {
					t.Fatalf("graph %d workers %d: Reach[%d] differs", gi, w, v)
				}
			}
			if got.EffectiveDiameter != base.EffectiveDiameter || got.AvgPathLength != base.AvgPathLength {
				t.Fatalf("graph %d workers %d: derived stats differ", gi, w)
			}
		}
	}
}

// TestANFWorkspaceReuseMatchesFresh runs one workspace across graphs
// of different sizes and register widths; every answer must equal a
// fresh workspace's.
func TestANFWorkspaceReuseMatchesFresh(t *testing.T) {
	ws := NewANFWorkspace()
	runs := []struct {
		g   *graph.Graph
		opt ANFOptions
	}{
		{generate.RMAT(600, 2400, generate.DefaultRMAT(), 7), ANFOptions{Seed: 1}},
		{pathGraph(t, 50), ANFOptions{Seed: 2, Registers: 128}},
		{generate.ErdosRenyi(900, 3000, 8), ANFOptions{Seed: 3, Registers: 16}},
		{starGraph(t, 33), ANFOptions{Seed: 4}},
	}
	for i, run := range runs {
		got := ws.Run(run.g, run.opt)
		want := ANF(run.g, run.opt)
		if len(got.NF) != len(want.NF) {
			t.Fatalf("run %d: sweep counts differ", i)
		}
		for j := range want.NF {
			if got.NF[j] != want.NF[j] {
				t.Fatalf("run %d: NF[%d] reuse mismatch", i, j)
			}
		}
		for v := range want.Reach {
			if got.Reach[v] != want.Reach[v] {
				t.Fatalf("run %d: Reach[%d] reuse mismatch", i, v)
			}
		}
	}
}

// TestANFZeroAllocSteadyState pins the warm-workspace allocation
// contract of the serial arm.
func TestANFZeroAllocSteadyState(t *testing.T) {
	g := generate.RMAT(2048, 8192, generate.DefaultRMAT(), 11)
	ws := NewANFWorkspace()
	opt := ANFOptions{Seed: 1, Workers: 1}
	ws.Run(g, opt) // warm
	ws.Run(g, opt)
	if allocs := testing.AllocsPerRun(5, func() { ws.Run(g, opt) }); allocs != 0 {
		t.Fatalf("warm serial ANF run allocates %.0f times, want 0", allocs)
	}
}

// TestANFPathStatistics checks the closed-form path-graph answers:
// average distance (n+1)/3 and diameter n-1.
func TestANFPathStatistics(t *testing.T) {
	const n = 101
	g := pathGraph(t, n)
	r := ANF(g, ANFOptions{Registers: 256, Seed: 1})
	wantAvg := float64(n+1) / 3
	if relErr(r.AvgPathLength, wantAvg) > 0.08 {
		t.Fatalf("path avg = %.3f, want %.3f +-8%%", r.AvgPathLength, wantAvg)
	}
	if r.DiameterEstimate < n-1-5 || r.DiameterEstimate > n-1 {
		t.Fatalf("path diameter estimate = %d, want ~%d", r.DiameterEstimate, n-1)
	}
	if r.Sweeps > n-1 {
		t.Fatalf("path converged after %d sweeps, diameter is %d", r.Sweeps, n-1)
	}
}

// TestANFDirected pins the ordered-pair semantics on a directed path
// 0 -> 1 -> 2 -> 3: NF grows toward exactly 10 reachable pairs.
func TestANFDirected(t *testing.T) {
	g, err := graph.Build(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}},
		graph.BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	r := ANF(g, ANFOptions{Registers: 256, Seed: 1})
	if relErr(r.NF[len(r.NF)-1], 10) > 0.2 {
		t.Fatalf("directed path NF tail = %.2f, want ~10", r.NF[len(r.NF)-1])
	}
	if r.DiameterEstimate != 3 {
		t.Fatalf("directed path diameter estimate = %d, want 3", r.DiameterEstimate)
	}
}

// TestANFMaxSweeps bounds the level loop.
func TestANFMaxSweeps(t *testing.T) {
	g := pathGraph(t, 100)
	r := ANF(g, ANFOptions{Seed: 1, MaxSweeps: 5})
	if r.Sweeps != 5 || len(r.NF) != 6 {
		t.Fatalf("MaxSweeps=5: got %d sweeps, %d NF entries", r.Sweeps, len(r.NF))
	}
}

// TestANFSeedZeroIsDefault pins the unified seed contract: seed 0 and
// DefaultSeed are the same run, and a different seed really changes
// the registers.
func TestANFSeedZeroIsDefault(t *testing.T) {
	g := generate.RMAT(400, 1600, generate.DefaultRMAT(), 13)
	zero := ANF(g, ANFOptions{Seed: 0})
	def := ANF(g, ANFOptions{Seed: DefaultSeed})
	for i := range zero.NF {
		if zero.NF[i] != def.NF[i] {
			t.Fatalf("seed 0 differs from DefaultSeed at NF[%d]", i)
		}
	}
	other := ANF(g, ANFOptions{Seed: 12345})
	same := len(other.NF) == len(zero.NF)
	if same {
		for i := range zero.NF {
			if zero.NF[i] != other.NF[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seed 12345 produced bitwise-identical NF to the default seed")
	}
}

// TestANFEmptyAndTiny covers the degenerate shapes.
func TestANFEmptyAndTiny(t *testing.T) {
	empty, err := graph.Build(0, nil, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := ANF(empty, ANFOptions{})
	if len(r.NF) != 0 || r.AvgPathLength != 0 || r.EffectiveDiameter != 0 {
		t.Fatalf("empty graph: %+v", r)
	}
	isolated, err := graph.Build(5, nil, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r = ANF(isolated, ANFOptions{})
	if r.Sweeps != 0 || r.AvgPathLength != 0 {
		t.Fatalf("isolated vertices: %+v", r)
	}
	if relErr(r.NF[0], 5) > 0.2 {
		t.Fatalf("isolated NF[0] = %.2f, want ~5", r.NF[0])
	}
}

// TestMaxWordBytes drives the SWAR byte-max against a scalar oracle
// over the register value range.
func TestMaxWordBytes(t *testing.T) {
	rng := NewRNG(1)
	for trial := 0; trial < 10000; trial++ {
		var x, y, want uint64
		for b := 0; b < 8; b++ {
			xb := uint64(rng.Intn(0x62)) // register values are < 0x62
			yb := uint64(rng.Intn(0x62))
			x |= xb << (b * 8)
			y |= yb << (b * 8)
			m := xb
			if yb > m {
				m = yb
			}
			want |= m << (b * 8)
		}
		if got := maxWordBytes(x, y); got != want {
			t.Fatalf("maxWordBytes(%#x, %#x) = %#x, want %#x", x, y, got, want)
		}
	}
}

// TestUnionRowsSumMatchesScan drives the incremental estimator
// maintenance against the from-scratch row scan: after any sequence of
// unions, the maintained (sum, zeros) must equal rowSummary of the
// resulting registers (up to float round-off in sum's accumulation
// order, which is fixed — so equality is exact for the zero count and
// within an ulp-scale tolerance for the sum), and the registers
// themselves must match plain unionRows.
func TestUnionRowsSumMatchesScan(t *testing.T) {
	p := makeParams(64)
	rng := NewRNG(3)
	for trial := 0; trial < 200; trial++ {
		a := make([]uint64, p.words)
		b := make([]uint64, p.words)
		for i := 0; i < 30; i++ {
			hllInsert(a, mix64(uint64(rng.Int63())), p)
			hllInsert(b, mix64(uint64(rng.Int63())), p)
		}
		viaSum := append([]uint64(nil), a...)
		viaMax := append([]uint64(nil), a...)
		sum, zeros := rowSummary(viaSum, pow2neg)
		dSum, dZeros, changed := unionRowsSum(viaSum, b, pow2neg)
		changedMax := unionRows(viaMax, b)
		if changed != changedMax {
			t.Fatalf("trial %d: changed %v vs %v", trial, changed, changedMax)
		}
		for i := range viaSum {
			if viaSum[i] != viaMax[i] {
				t.Fatalf("trial %d: registers diverge at word %d", trial, i)
			}
		}
		wantSum, wantZeros := rowSummary(viaSum, pow2neg)
		if zeros+dZeros != wantZeros {
			t.Fatalf("trial %d: zeros %d, want %d", trial, zeros+dZeros, wantZeros)
		}
		if got := sum + dSum; math.Abs(got-wantSum) > 1e-12*math.Max(wantSum, 1) {
			t.Fatalf("trial %d: sum %v, want %v", trial, got, wantSum)
		}
	}
}

// TestHLLEstimateAccuracy checks the raw estimator against known set
// sizes across the register range.
func TestHLLEstimateAccuracy(t *testing.T) {
	for _, regs := range []int{16, 64, 256} {
		p := makeParams(regs)
		for _, size := range []int{1, 10, 100, 10000} {
			row := make([]uint64, p.words)
			seedMix := mix64(uint64(DefaultSeed))
			for i := 0; i < size; i++ {
				hllInsert(row, mix64(uint64(i)^seedMix), p)
			}
			est := hllEstimate(row, p, pow2neg)
			bound := 3 * 1.04 / math.Sqrt(float64(p.regs))
			if relErr(est, float64(size)) > math.Max(bound, 0.05) {
				t.Errorf("R=%d size=%d: est %.1f (err %.1f%%)", regs, size, est, 100*relErr(est, float64(size)))
			}
		}
	}
}
