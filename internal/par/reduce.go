package par

import (
	"sync"
	"sync/atomic"
)

// SumInt64 computes the sum of f(i) for i in [0, n) in parallel.
func SumInt64(n int, f func(i int) int64) int64 {
	workers := Workers()
	if workers <= 1 || n < 1024 {
		var s int64
		for i := 0; i < n; i++ {
			s += f(i)
		}
		return s
	}
	var total int64
	ForChunkedN(n, workers, func(_, lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		atomic.AddInt64(&total, s)
	})
	return total
}

// SumFloat64 computes the sum of f(i) for i in [0, n) in parallel using
// per-worker partial sums merged under a mutex (float64 has no atomic
// add in the stdlib).
func SumFloat64(n int, f func(i int) float64) float64 {
	workers := Workers()
	if workers <= 1 || n < 1024 {
		var s float64
		for i := 0; i < n; i++ {
			s += f(i)
		}
		return s
	}
	var mu sync.Mutex
	var total float64
	ForChunkedN(n, workers, func(_, lo, hi int) {
		var s float64
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		mu.Lock()
		total += s
		mu.Unlock()
	})
	return total
}

// MaxIndexFloat64 returns the index in [0, n) maximizing f(i), and the
// maximum value. Ties resolve to the smallest index so results are
// deterministic regardless of worker count. n must be > 0.
func MaxIndexFloat64(n int, f func(i int) float64) (int, float64) {
	workers := Workers()
	if workers <= 1 || n < 1024 {
		best, bv := 0, f(0)
		for i := 1; i < n; i++ {
			if v := f(i); v > bv {
				best, bv = i, v
			}
		}
		return best, bv
	}
	type cand struct {
		idx int
		val float64
	}
	cands := make([]cand, workers)
	ForChunkedN(n, workers, func(w, lo, hi int) {
		best, bv := lo, f(lo)
		for i := lo + 1; i < hi; i++ {
			if v := f(i); v > bv {
				best, bv = i, v
			}
		}
		cands[w] = cand{best, bv}
	})
	best, bv := cands[0].idx, cands[0].val
	for _, c := range cands[1:] {
		if c.idx >= 0 && (c.val > bv || (c.val == bv && c.idx < best)) {
			best, bv = c.idx, c.val
		}
	}
	return best, bv
}

// CountInt64 counts the i in [0, n) for which pred(i) is true.
func CountInt64(n int, pred func(i int) bool) int64 {
	return SumInt64(n, func(i int) int64 {
		if pred(i) {
			return 1
		}
		return 0
	})
}

// MinMaxInt64 returns the minimum and maximum of f over [0, n).
// n must be > 0.
func MinMaxInt64(n int, f func(i int) int64) (mn, mx int64) {
	mn, mx = f(0), f(0)
	for i := 1; i < n; i++ {
		v := f(i)
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}
