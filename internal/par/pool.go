package par

import "sync"

// Pool is a typed wrapper over sync.Pool for per-worker scratch state
// (traversal workspaces, accumulator buffers). Kernels that manage
// their own worker loops acquire one T per worker at loop start and
// release it at loop end, so steady-state multi-source traversals do
// no allocation: the pool amortizes scratch across calls, and the GC
// may still reclaim idle entries under memory pressure (sync.Pool
// semantics).
type Pool[T any] struct {
	p sync.Pool
}

// NewPool returns a pool whose Get falls back to newT when empty.
func NewPool[T any](newT func() T) *Pool[T] {
	return &Pool[T]{p: sync.Pool{New: func() any { return newT() }}}
}

// Get returns a pooled value, or a fresh one from the constructor.
// The caller owns the value exclusively until Put.
func (p *Pool[T]) Get() T { return p.p.Get().(T) }

// Put returns a value to the pool for reuse.
func (p *Pool[T]) Put(x T) { p.p.Put(x) }
