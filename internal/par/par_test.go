package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1023} {
		for _, workers := range []int{1, 2, 3, 8} {
			hits := make([]int32, n)
			ForEachN(n, workers, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d hit %d times", n, workers, i, h)
				}
			}
		}
	}
}

func TestForChunkedCoversRange(t *testing.T) {
	for _, n := range []int{1, 5, 64, 1000} {
		for _, workers := range []int{1, 2, 7} {
			var total int64
			ForChunkedN(n, workers, func(_, lo, hi int) {
				atomic.AddInt64(&total, int64(hi-lo))
			})
			if total != int64(n) {
				t.Fatalf("n=%d workers=%d: covered %d", n, workers, total)
			}
		}
	}
}

func TestForChunkedRangesDisjoint(t *testing.T) {
	n := 500
	seen := make([]int32, n)
	ForChunkedN(n, 4, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, s := range seen {
		if s != 1 {
			t.Fatalf("index %d covered %d times", i, s)
		}
	}
}

func TestForGuidedCoversAllIndices(t *testing.T) {
	n := 777
	hits := make([]int32, n)
	ForGuidedN(n, 13, 5, func(i int) {
		atomic.AddInt32(&hits[i], 1)
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestSlicePartition(t *testing.T) {
	check := func(n, workers int) bool {
		if n < 0 || workers < 1 {
			return true
		}
		n %= 10000
		workers = workers%64 + 1
		prev := 0
		for w := 0; w < workers; w++ {
			lo, hi := Slice(n, workers, w)
			if lo != prev || hi < lo {
				return false
			}
			if hi-lo > n/workers+1 {
				return false
			}
			prev = hi
		}
		return prev == n
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeAwareBoundsMonotoneAndComplete(t *testing.T) {
	weight := []int64{100, 1, 1, 1, 1, 1, 1, 100}
	bounds := DegreeAware(weight, 4)
	if bounds[0] != 0 || bounds[4] != len(weight) {
		t.Fatalf("bounds endpoints wrong: %v", bounds)
	}
	for i := 0; i < 4; i++ {
		if bounds[i] > bounds[i+1] {
			t.Fatalf("bounds not monotone: %v", bounds)
		}
	}
}

func TestDegreeAwareBalancesSkewedWeights(t *testing.T) {
	// One huge vertex and many tiny ones: the huge one should not
	// share a range with most of the tiny ones.
	weight := make([]int64, 1000)
	weight[0] = 1e6
	for i := 1; i < 1000; i++ {
		weight[i] = 1
	}
	bounds := DegreeAware(weight, 4)
	if bounds[1] != 1 {
		t.Fatalf("heavy vertex should occupy its own range; bounds=%v", bounds[:5])
	}
}

func TestForDegreeAwareCoverage(t *testing.T) {
	weight := make([]int64, 300)
	for i := range weight {
		weight[i] = int64(i % 17)
	}
	seen := make([]int32, 300)
	ForDegreeAware(weight, 5, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, s := range seen {
		if s != 1 {
			t.Fatalf("index %d covered %d times", i, s)
		}
	}
}

func TestSumInt64(t *testing.T) {
	n := 10000
	got := SumInt64(n, func(i int) int64 { return int64(i) })
	want := int64(n) * int64(n-1) / 2
	if got != want {
		t.Fatalf("SumInt64 = %d, want %d", got, want)
	}
}

func TestSumFloat64(t *testing.T) {
	n := 5000
	got := SumFloat64(n, func(i int) float64 { return 0.5 })
	if got != float64(n)/2 {
		t.Fatalf("SumFloat64 = %g, want %g", got, float64(n)/2)
	}
}

func TestMaxIndexFloat64(t *testing.T) {
	vals := make([]float64, 4096)
	vals[1234] = 7
	vals[9] = 7 // tie: smaller index must win
	idx, v := MaxIndexFloat64(len(vals), func(i int) float64 { return vals[i] })
	if idx != 9 || v != 7 {
		t.Fatalf("MaxIndexFloat64 = (%d, %g), want (9, 7)", idx, v)
	}
}

func TestPrefixSum(t *testing.T) {
	out := PrefixSum([]int64{3, 0, 2, 5})
	want := []int64{0, 3, 3, 5, 10}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("PrefixSum = %v, want %v", out, want)
		}
	}
}

func TestCountInt64(t *testing.T) {
	got := CountInt64(100, func(i int) bool { return i%3 == 0 })
	if got != 34 {
		t.Fatalf("CountInt64 = %d, want 34", got)
	}
}

func TestMinMaxInt64(t *testing.T) {
	vals := []int64{5, -2, 9, 0}
	mn, mx := MinMaxInt64(len(vals), func(i int) int64 { return vals[i] })
	if mn != -2 || mx != 9 {
		t.Fatalf("MinMax = (%d, %d), want (-2, 9)", mn, mx)
	}
}
