// Package par provides the parallel execution primitives used by every
// SNAP kernel: bounded worker pools, static and guided loop scheduling,
// and degree-aware work partitioning for graphs with skewed degree
// distributions.
//
// The primitives mirror the scheduling strategies described in the SNAP
// paper (Bader & Madduri, IPDPS 2008): level-synchronous kernels use
// static chunking over contiguous index ranges, while kernels operating
// on small-world graphs use degree-aware partitioning so that a handful
// of high-degree vertices cannot serialize a phase.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers reports the number of workers a parallel kernel should use.
// It honors GOMAXPROCS, which the benchmark harness sweeps to produce
// the paper's speedup curves.
func Workers() int {
	return runtime.GOMAXPROCS(0)
}

// ForEach invokes body(i) for every i in [0, n) using up to Workers()
// goroutines. Indices are divided into contiguous static chunks, one per
// worker, which matches the paper's static scheduling of O(n) sweeps.
// ForEach returns once every invocation has completed.
func ForEach(n int, body func(i int)) {
	ForEachN(n, Workers(), body)
}

// ForEachN is ForEach with an explicit worker count. A worker count of
// one (or n < 2) executes the loop serially on the calling goroutine,
// avoiding any synchronization overhead.
func ForEachN(n, workers int, body func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo, hi := Slice(n, workers, w)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ForChunked invokes body(lo, hi) for contiguous index ranges covering
// [0, n), one range per worker. Kernels that keep per-worker state (for
// example per-worker frontier buffers) use this form to amortize that
// state across a whole range instead of paying for it per element.
func ForChunked(n int, body func(worker, lo, hi int)) {
	ForChunkedN(n, Workers(), body)
}

// ForChunkedN is ForChunked with an explicit worker count.
func ForChunkedN(n, workers int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		body(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo, hi := Slice(n, workers, w)
		go func(w, lo, hi int) {
			defer wg.Done()
			body(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// ForGuided invokes body(i) for every i in [0, n) using dynamic (guided)
// scheduling: workers claim fixed-size blocks from a shared counter.
// This suits loops with irregular per-iteration cost, such as per-vertex
// work proportional to degree, when a degree-aware static partition is
// not available.
func ForGuided(n, grain int, body func(i int)) {
	ForGuidedN(n, grain, Workers(), body)
}

// ForGuidedN is ForGuided with an explicit worker count.
func ForGuidedN(n, grain, workers int, body func(i int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if workers > (n+grain-1)/grain {
		workers = (n + grain - 1) / grain
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&next, int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					body(i)
				}
			}
		}()
	}
	wg.Wait()
}

// Slice returns the half-open index range [lo, hi) assigned to worker w
// when n items are divided evenly among `workers` workers. The first
// n % workers workers receive one extra item, so ranges differ in length
// by at most one.
func Slice(n, workers, w int) (lo, hi int) {
	q, r := n/workers, n%workers
	lo = w*q + min(w, r)
	hi = lo + q
	if w < r {
		hi++
	}
	return lo, hi
}

// DegreeAware partitions [0, n) into `workers` contiguous ranges with
// approximately equal total weight, where weight[i] is the work estimate
// for item i (typically vertex degree). It returns the range boundaries:
// worker w processes [bounds[w], bounds[w+1]). This is the paper's fix
// for severe phase imbalance on skewed degree distributions.
func DegreeAware(weight []int64, workers int) []int {
	n := len(weight)
	bounds := make([]int, workers+1)
	bounds[workers] = n
	if workers <= 1 || n == 0 {
		return bounds
	}
	var total int64
	for _, w := range weight {
		total += w + 1 // +1 so zero-degree vertices still carry cost
	}
	per := total / int64(workers)
	if per == 0 {
		per = 1
	}
	var acc int64
	next := 1
	for i := 0; i < n && next < workers; i++ {
		acc += weight[i] + 1
		if acc >= per*int64(next) {
			bounds[next] = i + 1
			next++
		}
	}
	for ; next < workers; next++ {
		bounds[next] = n
	}
	return bounds
}

// ForDegreeAware runs body over [0, n) with one goroutine per
// degree-aware range computed from weight.
func ForDegreeAware(weight []int64, workers int, body func(worker, lo, hi int)) {
	n := len(weight)
	if n == 0 {
		return
	}
	if workers <= 1 {
		body(0, 0, n)
		return
	}
	bounds := DegreeAware(weight, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			body(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}
