package par

// Prefix-sum and histogram-cursor helpers shared by the counting-sort
// style kernels (CSR assembly, transpose, coarsening). Both are
// deterministic: results depend only on the input values, never on
// worker interleaving.

// PrefixSum returns the exclusive prefix sums of x as a fresh slice of
// length len(x)+1: out[0] = 0 and out[i] = x[0] + ... + x[i-1], so
// out[len(x)] is the grand total. Large inputs are processed with a
// two-pass parallel scan (per-chunk totals, serial prefix over the
// chunk totals, then parallel rewrite).
func PrefixSum(x []int64) []int64 {
	n := len(x)
	out := make([]int64, n+1)
	workers := Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 1<<14 {
		var acc int64
		for i, v := range x {
			out[i] = acc
			acc += v
		}
		out[n] = acc
		return out
	}
	chunkTotal := make([]int64, workers)
	ForChunkedN(n, workers, func(w, lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += x[i]
		}
		chunkTotal[w] = s
	})
	var acc int64
	for w := 0; w < workers; w++ {
		t := chunkTotal[w]
		chunkTotal[w] = acc
		acc += t
	}
	ForChunkedN(n, workers, func(w, lo, hi int) {
		run := chunkTotal[w]
		for i := lo; i < hi; i++ {
			out[i] = run
			run += x[i]
		}
	})
	out[n] = acc
	return out
}

// PrefixSumInto writes the exclusive prefix sums of x into out (which
// must have length len(x)+1) and returns the grand total. It is the
// allocation-free form of PrefixSum for pooled-workspace kernels: the
// serial arm touches nothing but out, so a warm caller pays zero
// allocations. Large inputs use the same two-pass parallel scan as
// PrefixSum (the chunk-total scratch is the only allocation, and only
// on that arm).
func PrefixSumInto(out, x []int64) int64 {
	n := len(x)
	workers := Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 1<<14 {
		var acc int64
		for i, v := range x {
			out[i] = acc
			acc += v
		}
		out[n] = acc
		return acc
	}
	chunkTotal := make([]int64, workers)
	ForChunkedN(n, workers, func(w, lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += x[i]
		}
		chunkTotal[w] = s
	})
	var acc int64
	for w := 0; w < workers; w++ {
		t := chunkTotal[w]
		chunkTotal[w] = acc
		acc += t
	}
	ForChunkedN(n, workers, func(w, lo, hi int) {
		run := chunkTotal[w]
		for i := lo; i < hi; i++ {
			out[i] = run
			run += x[i]
		}
	})
	out[n] = acc
	return acc
}

// CursorsFromCounts converts per-worker bucket histograms into write
// cursors for a stable parallel counting sort. counts[w][v] holds the
// number of items worker w will place into bucket v; on return it holds
// the first write index for those items, laid out so buckets are
// contiguous in v order and, within a bucket, slots appear in worker
// order. offsets must have length n+1 and receives the bucket
// boundaries (offsets[v] .. offsets[v+1]). Returns the grand total.
//
// Because each (worker, bucket) range is disjoint, the subsequent
// placement pass needs no atomics, and items end up ordered first by
// bucket, then by worker id, then by the order the worker emits them —
// a deterministic total order.
func CursorsFromCounts(counts [][]int64, offsets []int64) int64 {
	n := len(offsets) - 1
	workers := len(counts)
	chunks := Workers()
	if chunks > n {
		chunks = n
	}
	if chunks <= 1 || n < 1<<13 {
		var acc int64
		for v := 0; v < n; v++ {
			offsets[v] = acc
			for w := 0; w < workers; w++ {
				c := counts[w][v]
				counts[w][v] = acc
				acc += c
			}
		}
		offsets[n] = acc
		return acc
	}
	chunkTotal := make([]int64, chunks)
	ForChunkedN(n, chunks, func(cw, lo, hi int) {
		var s int64
		for v := lo; v < hi; v++ {
			for w := 0; w < workers; w++ {
				s += counts[w][v]
			}
		}
		chunkTotal[cw] = s
	})
	var acc int64
	for cw := 0; cw < chunks; cw++ {
		t := chunkTotal[cw]
		chunkTotal[cw] = acc
		acc += t
	}
	ForChunkedN(n, chunks, func(cw, lo, hi int) {
		run := chunkTotal[cw]
		for v := lo; v < hi; v++ {
			offsets[v] = run
			for w := 0; w < workers; w++ {
				c := counts[w][v]
				counts[w][v] = run
				run += c
			}
		}
	})
	offsets[n] = acc
	return acc
}
