package graph

import (
	"testing"
)

func gridGraph(t *testing.T, rows, cols int) *Graph {
	t.Helper()
	var edges []Edge
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, Edge{U: id(r, c), V: id(r+1, c)})
			}
		}
	}
	g, err := Build(rows*cols, edges, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRCMOrderIsPermutation(t *testing.T) {
	g := gridGraph(t, 8, 13)
	perm := RCMOrder(g)
	if len(perm) != g.NumVertices() {
		t.Fatalf("perm length %d", len(perm))
	}
	seen := make([]bool, g.NumVertices())
	for _, v := range perm {
		if v < 0 || int(v) >= g.NumVertices() || seen[v] {
			t.Fatalf("perm not a permutation at %d", v)
		}
		seen[v] = true
	}
}

func TestPermutePreservesStructure(t *testing.T) {
	g := gridGraph(t, 6, 6)
	perm := RCMOrder(g)
	ng, newOf := Permute(g, perm)
	if ng.NumVertices() != g.NumVertices() || ng.NumEdges() != g.NumEdges() {
		t.Fatalf("permute changed sizes: %v vs %v", ng, g)
	}
	if err := Validate(ng); err != nil {
		t.Fatal(err)
	}
	// Every original edge must exist under the new labels.
	for _, e := range g.EdgeEndpoints() {
		if !ng.HasEdge(newOf[e.U], newOf[e.V]) {
			t.Fatalf("edge (%d,%d) lost in permutation", e.U, e.V)
		}
	}
	// Degrees must be preserved pointwise.
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		if g.Degree(v) != ng.Degree(newOf[v]) {
			t.Fatalf("degree changed for %d", v)
		}
	}
}

func TestRCMReducesBandwidthOnScrambledGrid(t *testing.T) {
	// A grid with row-major ids has bandwidth = cols. Scramble it with
	// a worst-case-ish permutation, then check RCM restores a small
	// bandwidth (grids are RCM's best case).
	g := gridGraph(t, 10, 10)
	// Scramble: bit-reverse-ish shuffle.
	scramble := make([]int32, g.NumVertices())
	for i := range scramble {
		scramble[i] = int32((i*37 + 11) % g.NumVertices())
	}
	sg, _ := Permute(g, scramble)
	before := Bandwidth(sg)
	perm := RCMOrder(sg)
	rg, _ := Permute(sg, perm)
	after := Bandwidth(rg)
	if after >= before {
		t.Fatalf("RCM did not reduce bandwidth: %d -> %d", before, after)
	}
	if after > 20 { // row-major would be 10; allow 2x slack
		t.Fatalf("RCM bandwidth %d too high for a 10x10 grid", after)
	}
}
