package graph

import (
	"fmt"
	"math"
	"sort"

	"snap/internal/par"
)

// Delta-merge CSR assembly: the batch-update entry point behind the
// snapshot-epoch ingest pipeline (internal/ingest). Instead of
// re-running the full Build pipeline over a materialized edge list, a
// committed delta is merged against the previous snapshot's canonical
// buckets — for every tail u the old sorted unique bucket, the sorted
// insertion run, and the sorted deletion run are combined in one linear
// three-way walk — and the merged buckets are finalized by the same
// assembleSymmetric (undirected) or rank-id (directed) code paths Build
// uses. The result is therefore bit-identical to Build(n, E') on the
// updated edge set E', at any worker count: edge ids are the ranks of
// the unique canonical pairs in (tail, head) order, adjacency arcs are
// ordered by (neighbor, edge id), and every per-vertex walk is serial
// and deterministic.
//
// Cost: O(n + m + |delta| log |delta|) work regardless of how the
// delta is distributed, versus the parse + validate + clean + sort of a
// from-scratch rebuild — the gap the ingest benchmarks quantify.

// MergeDelta applies a batch of edge deletions and insertions to an
// immutable CSR snapshot, returning a fresh independent Graph; g is not
// modified. Semantics, applied per canonical endpoint pair:
//
//   - Deletions apply first, then insertions: a pair present in both
//     del and add ends up present (with add's weight).
//   - Deleting a pair that is absent is a no-op; inserting a pair that
//     is present replaces its weight (for weighted g) or is a no-op.
//   - Duplicate pairs inside add collapse last-wins in input order;
//     undirected pairs are unordered ({u,v} == {v,u}).
//   - Self-loops in the delta are dropped, matching Build's default.
//
// g must be a simple graph (the Build default: no self-loops, no
// parallel edges); weights in add are ignored when g is unweighted.
// Endpoints outside [0, NumVertices()) are an error — the vertex set of
// a snapshot sequence is fixed.
func MergeDelta(g *Graph, add, del []Edge) (*Graph, error) {
	return MergeDeltaWorkers(g, add, del, par.Workers())
}

// MergeDeltaWorkers is MergeDelta with an explicit worker count. The
// output is bit-identical for every workers >= 1.
func MergeDeltaWorkers(g *Graph, add, del []Edge, workers int) (*Graph, error) {
	if err := g.CheckOpen(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = max(1, n)
	}
	directed := g.Directed()
	weighted := g.Weighted()

	adds, err := canonDelta(n, add, directed)
	if err != nil {
		return nil, err
	}
	dels, err := canonDelta(n, del, directed)
	if err != nil {
		return nil, err
	}

	// Sort the insertion run stably by canonical pair so duplicate
	// pairs collapse last-wins in input order; deletions are a set.
	sort.SliceStable(adds, func(i, j int) bool {
		if adds[i].U != adds[j].U {
			return adds[i].U < adds[j].U
		}
		return adds[i].V < adds[j].V
	})
	adds = dedupLastWins(adds)
	sort.Slice(dels, func(i, j int) bool {
		if dels[i].U != dels[j].U {
			return dels[i].U < dels[j].U
		}
		return dels[i].V < dels[j].V
	})
	dels = dedupLastWins(dels)

	// Flatten per-tail delta runs behind offset tables.
	addOff := tailRunOffsets(n, adds)
	delOff := tailRunOffsets(n, dels)
	addV := make([]int32, len(adds))
	var addW []float64
	if weighted {
		addW = make([]float64, len(adds))
	}
	for i, e := range adds {
		addV[i] = e.V
		if weighted {
			addW[i] = e.W
		}
	}
	delV := make([]int32, len(dels))
	for i, e := range dels {
		delV[i] = e.V
	}

	// Per-vertex merge cost drives the degree-aware partitioning of
	// both the count and the fill pass.
	cost := make([]int64, n)
	for v := 0; v < n; v++ {
		cost[v] = (g.Offsets[v+1] - g.Offsets[v]) +
			(addOff[v+1] - addOff[v]) + (delOff[v+1] - delOff[v])
	}

	counts := make([]int64, n)
	par.ForDegreeAware(cost, workers, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			counts[u] = int64(mergeRun(g, int32(u),
				addV[addOff[u]:addOff[u+1]], sliceOrNil(addW, addOff[u], addOff[u+1]),
				delV[delOff[u]:delOff[u+1]], nil, nil))
		}
	})
	bucketOff := par.PrefixSum(counts)
	total := bucketOff[n]
	if total > math.MaxInt32 {
		return nil, fmt.Errorf("graph: merged edge count %d exceeds int32 ids", total)
	}

	hV := make([]int32, total)
	var hW []float64
	if weighted {
		hW = make([]float64, total)
	}
	par.ForDegreeAware(cost, workers, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			blo, bhi := bucketOff[u], bucketOff[u+1]
			mergeRun(g, int32(u),
				addV[addOff[u]:addOff[u+1]], sliceOrNil(addW, addOff[u], addOff[u+1]),
				delV[delOff[u]:delOff[u+1]],
				hV[blo:bhi], sliceOrNil(hW, blo, bhi))
		}
	})

	if directed {
		eid := make([]int32, total)
		par.ForChunkedN(int(total), workers, func(_, lo, hi int) {
			for a := lo; a < hi; a++ {
				eid[a] = int32(a)
			}
		})
		return &Graph{
			Offsets:  bucketOff,
			Adj:      hV,
			EID:      eid,
			W:        hW,
			directed: true,
			numEdges: int(total),
		}, nil
	}
	out := assembleSymmetric(n, bucketOff, hV, hW, counts, bucketOff, workers)
	out.numEdges = int(total)
	return out, nil
}

// canonDelta validates and canonicalizes one side of a delta: endpoints
// range-checked, self-loops dropped, undirected pairs oriented U <= V.
func canonDelta(n int, in []Edge, directed bool) ([]Edge, error) {
	out := make([]Edge, 0, len(in))
	for _, e := range in {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: delta edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			continue
		}
		if !directed && e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		out = append(out, e)
	}
	return out, nil
}

// dedupLastWins collapses runs of equal canonical pairs (the input must
// be sorted by pair, stably for weight determinism) to the run's last
// entry — the most recent write of that pair in input order.
func dedupLastWins(edges []Edge) []Edge {
	out := edges[:0]
	for i := 0; i < len(edges); {
		j := i + 1
		for j < len(edges) && edges[j].U == edges[i].U && edges[j].V == edges[i].V {
			j++
		}
		out = append(out, edges[j-1])
		i = j
	}
	return out
}

// tailRunOffsets computes the n+1 offset table of per-tail runs inside
// a pair-sorted delta slice.
func tailRunOffsets(n int, edges []Edge) []int64 {
	off := make([]int64, n+1)
	for _, e := range edges {
		off[e.U+1]++
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	return off
}

func sliceOrNil(s []float64, lo, hi int64) []float64 {
	if s == nil {
		return nil
	}
	return s[lo:hi]
}

// mergeRun merges vertex u's canonical bucket (heads > u for undirected
// graphs, the full sorted adjacency for directed ones) with its sorted
// unique insertion and deletion runs in one linear three-way walk,
// writing heads (and weights) into dst when non-nil. Returns the merged
// bucket size; the count pass calls it with dst == nil.
func mergeRun(g *Graph, u int32, addV []int32, addW []float64, delV []int32, dstV []int32, dstW []float64) int {
	lo, hi := g.Offsets[u], g.Offsets[u+1]
	if !g.directed {
		adj := g.Adj[lo:hi]
		lo += int64(sort.Search(len(adj), func(i int) bool { return adj[i] > u }))
	}
	// A tail with no delta keeps its bucket verbatim: bulk-copy instead
	// of walking — with a sparse delta this is almost every vertex.
	if len(addV) == 0 && len(delV) == 0 {
		if dstV != nil {
			copy(dstV, g.Adj[lo:hi])
			if dstW != nil {
				copy(dstW, g.W[lo:hi])
			}
		}
		return int(hi - lo)
	}
	j, k, cnt := 0, 0, 0
	for lo < hi || j < len(addV) {
		if j < len(addV) && (lo >= hi || addV[j] <= g.Adj[lo]) {
			// Insertion wins: it overrides an equal old head's weight
			// and revives a pair deleted in the same delta.
			h := addV[j]
			if lo < hi && g.Adj[lo] == h {
				lo++
			}
			for k < len(delV) && delV[k] <= h {
				k++
			}
			if dstV != nil {
				dstV[cnt] = h
				if dstW != nil {
					dstW[cnt] = addW[j]
				}
			}
			j++
			cnt++
			continue
		}
		h := g.Adj[lo]
		for k < len(delV) && delV[k] < h {
			k++
		}
		if k < len(delV) && delV[k] == h {
			k++
			lo++
			continue
		}
		if dstV != nil {
			dstV[cnt] = h
			if dstW != nil {
				dstW[cnt] = g.W[lo]
			}
		}
		lo++
		cnt++
	}
	return cnt
}
