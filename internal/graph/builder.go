package graph

import (
	"fmt"
	"sort"

	"snap/internal/par"
)

// BuildOptions controls CSR construction.
type BuildOptions struct {
	// Directed selects directed arcs; otherwise each input edge is
	// stored as two arcs sharing an edge id.
	Directed bool
	// Weighted keeps per-edge weights; otherwise weights are dropped
	// and the graph is unweighted (weight 1).
	Weighted bool
	// AllowSelfLoops keeps edges with U == V; by default they are
	// silently dropped (SNA metrics assume simple graphs).
	AllowSelfLoops bool
	// AllowMulti keeps parallel edges; by default duplicates (same
	// endpoint pair) collapse to one edge, keeping the first weight.
	AllowMulti bool
	// SumWeights changes the duplicate collapse (AllowMulti false) to
	// sum the duplicates' weights, in input order, instead of keeping
	// the first — the aggregation mode used by community quotients and
	// other graph contractions. Ignored when AllowMulti is set.
	SumWeights bool
}

// Build constructs a CSR graph with n vertices from edges.
// Endpoints outside [0, n) are an error.
//
// Construction runs the parallel assembly kernel (see assemble.go)
// above a small size threshold and a serial reference path below it;
// both produce bit-identical graphs: edge ids are deterministic ranks
// (input order with AllowMulti, sorted unique-pair order without), and
// adjacency arcs are ordered by (neighbor, edge id).
func Build(n int, edges []Edge, opt BuildOptions) (*Graph, error) {
	if len(edges) < serialBuildThreshold {
		return buildSerial(n, edges, opt)
	}
	// Even at one worker the assembly kernel wins: counting-sort
	// placement plus short per-vertex sorts beat the global sort.
	return buildParallel(n, edges, opt, par.Workers())
}

// MustBuild is Build but panics on error; intended for tests, embedded
// datasets, and generators whose inputs are valid by construction.
func MustBuild(n int, edges []Edge, opt BuildOptions) *Graph {
	g, err := Build(n, edges, opt)
	if err != nil {
		panic(err)
	}
	return g
}

// buildSerial is the serial reference builder: a stable global sort
// plus counting pass. The parallel kernel is property-tested to be
// bit-identical to it across the full option matrix.
func buildSerial(n int, edges []Edge, opt BuildOptions) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
	}
	clean := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.U == e.V && !opt.AllowSelfLoops {
			continue
		}
		if !opt.Directed && e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		clean = append(clean, e)
	}
	if !opt.AllowMulti {
		// Stable, so the first occurrence of each duplicate pair leads
		// its run: first-wins (and SumWeights summation order) are
		// pinned to input order.
		sort.SliceStable(clean, func(i, j int) bool {
			if clean[i].U != clean[j].U {
				return clean[i].U < clean[j].U
			}
			return clean[i].V < clean[j].V
		})
		dedup := clean[:0]
		for i, e := range clean {
			if i > 0 && e.U == dedup[len(dedup)-1].U && e.V == dedup[len(dedup)-1].V {
				if opt.SumWeights {
					dedup[len(dedup)-1].W += e.W
				}
				continue
			}
			dedup = append(dedup, e)
		}
		clean = dedup
	}
	m := len(clean)

	// Count arcs per vertex.
	deg := make([]int64, n)
	for _, e := range clean {
		deg[e.U]++
		if !opt.Directed {
			deg[e.V]++
		}
	}
	offsets := make([]int64, n+1)
	var acc int64
	for v := 0; v < n; v++ {
		offsets[v] = acc
		acc += deg[v]
	}
	offsets[n] = acc

	adj := make([]int32, acc)
	eid := make([]int32, acc)
	var w []float64
	if opt.Weighted {
		w = make([]float64, acc)
	}
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	place := func(u, v int32, id int32, wt float64) {
		c := cursor[u]
		adj[c] = v
		eid[c] = id
		if w != nil {
			w[c] = wt
		}
		cursor[u] = c + 1
	}
	for i, e := range clean {
		place(e.U, e.V, int32(i), e.W)
		if !opt.Directed {
			place(e.V, e.U, int32(i), e.W)
		}
	}

	g := &Graph{
		Offsets:  offsets,
		Adj:      adj,
		EID:      eid,
		W:        w,
		directed: opt.Directed,
		numEdges: m,
	}
	g.sortAdjacencies()
	return g, nil
}

// sortAdjacencies sorts each vertex's arcs by neighbor id, carrying the
// parallel EID and W entries along. Arcs are placed in ascending edge
// id order, so the stable sort yields the canonical (neighbor, edge id)
// arc order.
func (g *Graph) sortAdjacencies() {
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		s := arcSorter{g: g, lo: lo, n: int(hi - lo)}
		sort.Stable(s)
	}
}

type arcSorter struct {
	g  *Graph
	lo int64
	n  int
}

func (s arcSorter) Len() int { return s.n }
func (s arcSorter) Less(i, j int) bool {
	return s.g.Adj[s.lo+int64(i)] < s.g.Adj[s.lo+int64(j)]
}
func (s arcSorter) Swap(i, j int) {
	a, b := s.lo+int64(i), s.lo+int64(j)
	g := s.g
	g.Adj[a], g.Adj[b] = g.Adj[b], g.Adj[a]
	g.EID[a], g.EID[b] = g.EID[b], g.EID[a]
	if g.W != nil {
		g.W[a], g.W[b] = g.W[b], g.W[a]
	}
}
