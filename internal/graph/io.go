package graph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"snap/internal/lebytes"
	"snap/internal/par"
)

// Edge-list text format: one edge per line, "u v" or "u v w", with '#'
// comment lines and an optional header comment recording n, m, and
// directedness. This is the interchange format of the cmd/ tools.

// WriteEdgeList writes g in the text edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error {
	if err := g.CheckOpen(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	kind := "undirected"
	if g.Directed() {
		kind = "directed"
	}
	fmt.Fprintf(bw, "# snap edge list: n=%d m=%d %s\n", g.NumVertices(), g.NumEdges(), kind)
	for _, e := range g.EdgeEndpoints() {
		if g.Weighted() {
			fmt.Fprintf(bw, "%d %d %g\n", e.U, e.V, e.W)
		} else {
			fmt.Fprintf(bw, "%d %d\n", e.U, e.V)
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the text edge-list format. The vertex count is
// inferred as max endpoint + 1, or the header comment's n= value,
// whichever is larger.
//
// Parsing is sharded: the input is split into per-worker byte ranges
// aligned to line boundaries, each shard parses its lines into a local
// edge buffer, and the shards concatenate in file order — so edge ids,
// error line numbers, and the inferred header fields match a serial
// scan — before the parallel CSR builder assembles the graph.
func ReadEdgeList(r io.Reader, directed bool) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return parseEdgeList(data, directed, par.Workers())
}

// edgeListShard is the result of parsing one byte range of an edge
// list: its edges in file order plus everything needed to stitch the
// shards back into a sequential-scan result.
type edgeListShard struct {
	edges    []Edge
	lines    int // total lines in the shard (for global line numbers)
	maxID    int32
	hasEdges bool
	headerN  int // largest n= header value seen, -1 if none
	directed bool
	weighted bool
	err      error
	errLine  int // 1-based line number within the shard
}

func parseEdgeList(data []byte, directed bool, workers int) (*Graph, error) {
	// Shard boundaries: even byte cuts advanced to the next newline, so
	// every line belongs to exactly one shard.
	if workers < 1 {
		workers = 1
	}
	if len(data) < 1<<16 {
		workers = 1
	}
	bounds := make([]int, 0, workers+1)
	bounds = append(bounds, 0)
	for w := 1; w < workers; w++ {
		cut := len(data) * w / workers
		if cut <= bounds[len(bounds)-1] {
			continue
		}
		nl := bytes.IndexByte(data[cut:], '\n')
		if nl < 0 {
			break
		}
		bounds = append(bounds, cut+nl+1)
	}
	bounds = append(bounds, len(data))

	shards := make([]edgeListShard, len(bounds)-1)
	par.ForEachN(len(shards), len(shards), func(i int) {
		shards[i] = parseShard(data[bounds[i]:bounds[i+1]])
	})

	// Stitch: earliest error wins, with its line number offset by the
	// preceding shards' line counts.
	n := 0
	weighted := false
	total := 0
	lineBase := 0
	for i := range shards {
		s := &shards[i]
		if s.err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineBase+s.errLine, s.err)
		}
		lineBase += s.lines
		if s.headerN > n {
			n = s.headerN
		}
		if s.hasEdges && int(s.maxID)+1 > n {
			n = int(s.maxID) + 1
		}
		directed = directed || s.directed
		weighted = weighted || s.weighted
		total += len(s.edges)
	}
	edges := make([]Edge, total)
	off := 0
	offs := make([]int, len(shards))
	for i := range shards {
		offs[i] = off
		off += len(shards[i].edges)
	}
	par.ForEachN(len(shards), len(shards), func(i int) {
		copy(edges[offs[i]:], shards[i].edges)
	})
	return Build(n, edges, BuildOptions{Directed: directed, Weighted: weighted})
}

func parseShard(data []byte) edgeListShard {
	s := edgeListShard{headerN: -1}
	for len(data) > 0 {
		var line []byte
		if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
			line, data = data[:nl], data[nl+1:]
		} else {
			line, data = data, nil
		}
		s.lines++
		line = trimSpaceBytes(line)
		if len(line) == 0 {
			continue
		}
		if line[0] == '#' {
			hdr := string(line)
			if v, ok := headerField(hdr, "n="); ok && v > s.headerN {
				s.headerN = v
			}
			if strings.Contains(hdr, "directed") && !strings.Contains(hdr, "undirected") {
				s.directed = true
			}
			continue
		}
		f0, rest := nextField(line)
		f1, rest := nextField(rest)
		f2, _ := nextField(rest)
		if f1 == nil {
			s.err = fmt.Errorf("want 'u v [w]', got %q", line)
			s.errLine = s.lines
			return s
		}
		u, err := parseVertexID(f0)
		if err != nil {
			s.err, s.errLine = err, s.lines
			return s
		}
		v, err := parseVertexID(f1)
		if err != nil {
			s.err, s.errLine = err, s.lines
			return s
		}
		e := Edge{U: u, V: v, W: 1}
		if f2 != nil {
			w, err := strconv.ParseFloat(string(f2), 64)
			if err != nil {
				s.err, s.errLine = err, s.lines
				return s
			}
			e.W = w
			s.weighted = true
		}
		if e.U > s.maxID {
			s.maxID = e.U
		}
		if e.V > s.maxID {
			s.maxID = e.V
		}
		s.hasEdges = true
		s.edges = append(s.edges, e)
	}
	return s
}

// parseVertexID is a fast path for the base-10 int32 parse dominating
// edge-list ingestion; malformed tokens fall back to strconv for its
// canonical error message.
func parseVertexID(b []byte) (int32, error) {
	neg := false
	i := 0
	if i < len(b) && (b[i] == '-' || b[i] == '+') {
		neg = b[i] == '-'
		i++
	}
	var v int64
	start := i
	for ; i < len(b); i++ {
		d := b[i] - '0'
		if d > 9 {
			break
		}
		v = v*10 + int64(d)
		if v > 1<<40 {
			break // defer overflow handling to strconv
		}
	}
	if i != len(b) || i == start || v > math.MaxInt32+1 ||
		(!neg && v > math.MaxInt32) {
		_, err := strconv.ParseInt(string(b), 10, 32)
		if err == nil {
			err = fmt.Errorf("invalid vertex id %q", b)
		}
		return 0, err
	}
	if neg {
		v = -v
	}
	return int32(v), nil
}

func nextField(b []byte) (field, rest []byte) {
	i := 0
	for i < len(b) && isSpaceByte(b[i]) {
		i++
	}
	if i == len(b) {
		return nil, nil
	}
	j := i
	for j < len(b) && !isSpaceByte(b[j]) {
		j++
	}
	return b[i:j], b[j:]
}

func isSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f'
}

func trimSpaceBytes(b []byte) []byte {
	for len(b) > 0 && isSpaceByte(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && isSpaceByte(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func headerField(line, key string) (int, bool) {
	i := strings.Index(line, key)
	if i < 0 {
		return 0, false
	}
	rest := line[i+len(key):]
	j := 0
	for j < len(rest) && rest[j] >= '0' && rest[j] <= '9' {
		j++
	}
	if j == 0 {
		return 0, false
	}
	v, err := strconv.Atoi(rest[:j])
	if err != nil {
		return 0, false
	}
	return v, true
}

// Binary format (SNP1): a compact little-endian serialization of the
// CSR arrays, used to snapshot generated graphs between tool
// invocations. Layout: 4-byte magic, then flags/n/m/arcs as uint64,
// then the Offsets, Adj, EID, and (if weighted) W arrays back to back.
// It remains the stream-friendly interchange snapshot; the mmap'd SNP2
// container (internal/graph/container) is the fast load path.

var binMagic = [4]byte{'S', 'N', 'P', '1'}

const binHeaderSize = 4 + 4*8

// ioChunk is the scratch size for streaming slice<->byte conversions
// on hosts where the slices cannot be viewed as bytes directly.
const ioChunk = 1 << 20

// WriteBinary serializes g in the SNP1 binary CSR format. The arrays
// are written as bulk little-endian byte blocks (on little-endian
// hosts a direct view of the slice memory, no per-element encoding).
func WriteBinary(w io.Writer, g *Graph) error {
	if err := g.CheckOpen(); err != nil {
		return err
	}
	var hdr [binHeaderSize]byte
	copy(hdr[:4], binMagic[:])
	var flags uint64
	if g.Directed() {
		flags |= 1
	}
	if g.Weighted() {
		flags |= 2
	}
	binary.LittleEndian.PutUint64(hdr[4:], flags)
	binary.LittleEndian.PutUint64(hdr[12:], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(g.NumEdges()))
	binary.LittleEndian.PutUint64(hdr[28:], uint64(len(g.Adj)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if err := lebytes.WriteInt64s(w, g.Offsets); err != nil {
		return err
	}
	if err := lebytes.WriteInt32s(w, g.Adj); err != nil {
		return err
	}
	if err := lebytes.WriteInt32s(w, g.EID); err != nil {
		return err
	}
	if g.Weighted() {
		if err := lebytes.WriteFloat64s(w, g.W); err != nil {
			return err
		}
	}
	return nil
}

// inputSize reports the bytes left in r when knowable without
// consuming it (a file, bytes.Reader, or other seeker/measurable),
// else -1. ReadBinary uses it to reject corrupt headers whose claimed
// sizes exceed the input before allocating for them.
func inputSize(r io.Reader) int64 {
	switch v := r.(type) {
	case interface{ Len() int }: // bytes.Reader, bytes.Buffer, strings.Reader
		return int64(v.Len())
	case io.Seeker:
		cur, err := v.Seek(0, io.SeekCurrent)
		if err != nil {
			return -1
		}
		end, err := v.Seek(0, io.SeekEnd)
		if err != nil {
			return -1
		}
		if _, err := v.Seek(cur, io.SeekStart); err != nil {
			return -1
		}
		return end - cur
	}
	return -1
}

// ReadBinary deserializes a graph written by WriteBinary.
//
// The header's claimed sizes are clamped against the remaining input
// before any payload allocation: when the input size is knowable a
// lying header fails immediately, and on pure streams the payload
// arrays grow incrementally with the bytes actually read — either way
// a corrupt 36-byte header cannot force gigabyte allocations.
func ReadBinary(r io.Reader) (*Graph, error) {
	remain := inputSize(r)
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [binHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	if [4]byte(hdr[:4]) != binMagic {
		return nil, fmt.Errorf("graph: bad magic %q", hdr[:4])
	}
	flags := binary.LittleEndian.Uint64(hdr[4:])
	n := binary.LittleEndian.Uint64(hdr[12:])
	m := binary.LittleEndian.Uint64(hdr[20:])
	arcs := binary.LittleEndian.Uint64(hdr[28:])
	if n > 1<<31 || arcs > 1<<33 || m > arcs+1 {
		return nil, fmt.Errorf("graph: implausible sizes n=%d m=%d arcs=%d", n, m, arcs)
	}
	weighted := flags&2 != 0
	if remain >= 0 {
		need := 8 * (n + 1)  // offsets
		need += 2 * 4 * arcs // adj + eid
		if weighted {
			need += 8 * arcs
		}
		if have := uint64(remain - binHeaderSize); uint64(remain) < binHeaderSize || need > have {
			return nil, fmt.Errorf("graph: header claims %d payload bytes but input has %d", need, remain-binHeaderSize)
		}
	}
	sized := remain >= 0
	offsets, err := readInt64s(br, n+1, sized)
	if err != nil {
		return nil, fmt.Errorf("graph: offsets section: %w", err)
	}
	adj, err := readInt32s(br, arcs, sized)
	if err != nil {
		return nil, fmt.Errorf("graph: adjacency section: %w", err)
	}
	eid, err := readInt32s(br, arcs, sized)
	if err != nil {
		return nil, fmt.Errorf("graph: edge-id section: %w", err)
	}
	var wts []float64
	if weighted {
		wts, err = readFloat64s(br, arcs, sized)
		if err != nil {
			return nil, fmt.Errorf("graph: weight section: %w", err)
		}
	}
	g := &Graph{
		Offsets:  offsets,
		Adj:      adj,
		EID:      eid,
		W:        wts,
		directed: flags&1 != 0,
		numEdges: int(m),
	}
	if err := Validate(g); err != nil {
		return nil, err
	}
	return g, nil
}

// readInt64s reads count little-endian values. When sized, the count
// has been validated against the input size and the destination is
// allocated up front (and, on little-endian hosts, filled by reading
// straight into its memory). Otherwise the destination grows as chunks
// arrive, so a lying header allocates only in proportion to the bytes
// the stream actually delivers before EOF.
func readInt64s(r io.Reader, count uint64, sized bool) ([]int64, error) {
	if sized {
		dst := make([]int64, count)
		if view, ok := lebytes.Int64Bytes(dst); ok {
			if _, err := io.ReadFull(r, view); err != nil {
				return nil, truncated(err)
			}
			return dst, nil
		}
	}
	var dst []int64
	if sized {
		dst = make([]int64, 0, count)
	}
	buf := make([]byte, min(count*8, ioChunk))
	for got := uint64(0); got < count; {
		c := min(count-got, uint64(len(buf)/8))
		b := buf[:c*8]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, truncated(err)
		}
		old := len(dst)
		dst = append(dst, make([]int64, c)...)
		lebytes.BytesToInt64s(dst[old:], b)
		got += c
	}
	if dst == nil {
		dst = []int64{}
	}
	return dst, nil
}

func readInt32s(r io.Reader, count uint64, sized bool) ([]int32, error) {
	if sized {
		dst := make([]int32, count)
		if view, ok := lebytes.Int32Bytes(dst); ok {
			if _, err := io.ReadFull(r, view); err != nil {
				return nil, truncated(err)
			}
			return dst, nil
		}
	}
	var dst []int32
	if sized {
		dst = make([]int32, 0, count)
	}
	buf := make([]byte, min(count*4, ioChunk))
	for got := uint64(0); got < count; {
		c := min(count-got, uint64(len(buf)/4))
		b := buf[:c*4]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, truncated(err)
		}
		old := len(dst)
		dst = append(dst, make([]int32, c)...)
		lebytes.BytesToInt32s(dst[old:], b)
		got += c
	}
	if dst == nil {
		dst = []int32{}
	}
	return dst, nil
}

func readFloat64s(r io.Reader, count uint64, sized bool) ([]float64, error) {
	if sized {
		dst := make([]float64, count)
		if view, ok := lebytes.Float64Bytes(dst); ok {
			if _, err := io.ReadFull(r, view); err != nil {
				return nil, truncated(err)
			}
			return dst, nil
		}
	}
	var dst []float64
	if sized {
		dst = make([]float64, 0, count)
	}
	buf := make([]byte, min(count*8, ioChunk))
	for got := uint64(0); got < count; {
		c := min(count-got, uint64(len(buf)/8))
		b := buf[:c*8]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, truncated(err)
		}
		old := len(dst)
		dst = append(dst, make([]float64, c)...)
		lebytes.BytesToFloat64s(dst[old:], b)
		got += c
	}
	if dst == nil {
		dst = []float64{}
	}
	return dst, nil
}

// truncated maps the io errors of a short payload read onto one
// descriptive error.
func truncated(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("truncated input (%w)", err)
	}
	return err
}
