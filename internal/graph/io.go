package graph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"snap/internal/par"
)

// Edge-list text format: one edge per line, "u v" or "u v w", with '#'
// comment lines and an optional header comment recording n, m, and
// directedness. This is the interchange format of the cmd/ tools.

// WriteEdgeList writes g in the text edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	kind := "undirected"
	if g.Directed() {
		kind = "directed"
	}
	fmt.Fprintf(bw, "# snap edge list: n=%d m=%d %s\n", g.NumVertices(), g.NumEdges(), kind)
	for _, e := range g.EdgeEndpoints() {
		if g.Weighted() {
			fmt.Fprintf(bw, "%d %d %g\n", e.U, e.V, e.W)
		} else {
			fmt.Fprintf(bw, "%d %d\n", e.U, e.V)
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the text edge-list format. The vertex count is
// inferred as max endpoint + 1, or the header comment's n= value,
// whichever is larger.
//
// Parsing is sharded: the input is split into per-worker byte ranges
// aligned to line boundaries, each shard parses its lines into a local
// edge buffer, and the shards concatenate in file order — so edge ids,
// error line numbers, and the inferred header fields match a serial
// scan — before the parallel CSR builder assembles the graph.
func ReadEdgeList(r io.Reader, directed bool) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return parseEdgeList(data, directed, par.Workers())
}

// edgeListShard is the result of parsing one byte range of an edge
// list: its edges in file order plus everything needed to stitch the
// shards back into a sequential-scan result.
type edgeListShard struct {
	edges    []Edge
	lines    int // total lines in the shard (for global line numbers)
	maxID    int32
	hasEdges bool
	headerN  int // largest n= header value seen, -1 if none
	directed bool
	weighted bool
	err      error
	errLine  int // 1-based line number within the shard
}

func parseEdgeList(data []byte, directed bool, workers int) (*Graph, error) {
	// Shard boundaries: even byte cuts advanced to the next newline, so
	// every line belongs to exactly one shard.
	if workers < 1 {
		workers = 1
	}
	if len(data) < 1<<16 {
		workers = 1
	}
	bounds := make([]int, 0, workers+1)
	bounds = append(bounds, 0)
	for w := 1; w < workers; w++ {
		cut := len(data) * w / workers
		if cut <= bounds[len(bounds)-1] {
			continue
		}
		nl := bytes.IndexByte(data[cut:], '\n')
		if nl < 0 {
			break
		}
		bounds = append(bounds, cut+nl+1)
	}
	bounds = append(bounds, len(data))

	shards := make([]edgeListShard, len(bounds)-1)
	par.ForEachN(len(shards), len(shards), func(i int) {
		shards[i] = parseShard(data[bounds[i]:bounds[i+1]])
	})

	// Stitch: earliest error wins, with its line number offset by the
	// preceding shards' line counts.
	n := 0
	weighted := false
	total := 0
	lineBase := 0
	for i := range shards {
		s := &shards[i]
		if s.err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineBase+s.errLine, s.err)
		}
		lineBase += s.lines
		if s.headerN > n {
			n = s.headerN
		}
		if s.hasEdges && int(s.maxID)+1 > n {
			n = int(s.maxID) + 1
		}
		directed = directed || s.directed
		weighted = weighted || s.weighted
		total += len(s.edges)
	}
	edges := make([]Edge, total)
	off := 0
	offs := make([]int, len(shards))
	for i := range shards {
		offs[i] = off
		off += len(shards[i].edges)
	}
	par.ForEachN(len(shards), len(shards), func(i int) {
		copy(edges[offs[i]:], shards[i].edges)
	})
	return Build(n, edges, BuildOptions{Directed: directed, Weighted: weighted})
}

func parseShard(data []byte) edgeListShard {
	s := edgeListShard{headerN: -1}
	for len(data) > 0 {
		var line []byte
		if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
			line, data = data[:nl], data[nl+1:]
		} else {
			line, data = data, nil
		}
		s.lines++
		line = trimSpaceBytes(line)
		if len(line) == 0 {
			continue
		}
		if line[0] == '#' {
			hdr := string(line)
			if v, ok := headerField(hdr, "n="); ok && v > s.headerN {
				s.headerN = v
			}
			if strings.Contains(hdr, "directed") && !strings.Contains(hdr, "undirected") {
				s.directed = true
			}
			continue
		}
		f0, rest := nextField(line)
		f1, rest := nextField(rest)
		f2, _ := nextField(rest)
		if f1 == nil {
			s.err = fmt.Errorf("want 'u v [w]', got %q", line)
			s.errLine = s.lines
			return s
		}
		u, err := parseVertexID(f0)
		if err != nil {
			s.err, s.errLine = err, s.lines
			return s
		}
		v, err := parseVertexID(f1)
		if err != nil {
			s.err, s.errLine = err, s.lines
			return s
		}
		e := Edge{U: u, V: v, W: 1}
		if f2 != nil {
			w, err := strconv.ParseFloat(string(f2), 64)
			if err != nil {
				s.err, s.errLine = err, s.lines
				return s
			}
			e.W = w
			s.weighted = true
		}
		if e.U > s.maxID {
			s.maxID = e.U
		}
		if e.V > s.maxID {
			s.maxID = e.V
		}
		s.hasEdges = true
		s.edges = append(s.edges, e)
	}
	return s
}

// parseVertexID is a fast path for the base-10 int32 parse dominating
// edge-list ingestion; malformed tokens fall back to strconv for its
// canonical error message.
func parseVertexID(b []byte) (int32, error) {
	neg := false
	i := 0
	if i < len(b) && (b[i] == '-' || b[i] == '+') {
		neg = b[i] == '-'
		i++
	}
	var v int64
	start := i
	for ; i < len(b); i++ {
		d := b[i] - '0'
		if d > 9 {
			break
		}
		v = v*10 + int64(d)
		if v > 1<<40 {
			break // defer overflow handling to strconv
		}
	}
	if i != len(b) || i == start || v > math.MaxInt32+1 ||
		(!neg && v > math.MaxInt32) {
		_, err := strconv.ParseInt(string(b), 10, 32)
		if err == nil {
			err = fmt.Errorf("invalid vertex id %q", b)
		}
		return 0, err
	}
	if neg {
		v = -v
	}
	return int32(v), nil
}

func nextField(b []byte) (field, rest []byte) {
	i := 0
	for i < len(b) && isSpaceByte(b[i]) {
		i++
	}
	if i == len(b) {
		return nil, nil
	}
	j := i
	for j < len(b) && !isSpaceByte(b[j]) {
		j++
	}
	return b[i:j], b[j:]
}

func isSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f'
}

func trimSpaceBytes(b []byte) []byte {
	for len(b) > 0 && isSpaceByte(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && isSpaceByte(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func headerField(line, key string) (int, bool) {
	i := strings.Index(line, key)
	if i < 0 {
		return 0, false
	}
	rest := line[i+len(key):]
	j := 0
	for j < len(rest) && rest[j] >= '0' && rest[j] <= '9' {
		j++
	}
	if j == 0 {
		return 0, false
	}
	v, err := strconv.Atoi(rest[:j])
	if err != nil {
		return 0, false
	}
	return v, true
}

// Binary format: a compact little-endian serialization of the CSR
// arrays, used to snapshot generated graphs between tool invocations.

var binMagic = [4]byte{'S', 'N', 'P', '1'}

// WriteBinary serializes g in the SNAP binary CSR format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	var flags uint32
	if g.Directed() {
		flags |= 1
	}
	if g.Weighted() {
		flags |= 2
	}
	hdr := []uint64{uint64(flags), uint64(g.NumVertices()), uint64(g.NumEdges()), uint64(len(g.Adj))}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Adj); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.EID); err != nil {
		return err
	}
	if g.Weighted() {
		if err := binary.Write(bw, binary.LittleEndian, g.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != binMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic[:])
	}
	var flags, n, m, arcs uint64
	for _, p := range []*uint64{&flags, &n, &m, &arcs} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if n > 1<<31 || arcs > 1<<33 {
		return nil, fmt.Errorf("graph: implausible sizes n=%d arcs=%d", n, arcs)
	}
	g := &Graph{
		Offsets:  make([]int64, n+1),
		Adj:      make([]int32, arcs),
		EID:      make([]int32, arcs),
		directed: flags&1 != 0,
		numEdges: int(m),
	}
	if err := binary.Read(br, binary.LittleEndian, g.Offsets); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, g.Adj); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, g.EID); err != nil {
		return nil, err
	}
	if flags&2 != 0 {
		g.W = make([]float64, arcs)
		if err := binary.Read(br, binary.LittleEndian, g.W); err != nil {
			return nil, err
		}
	}
	if err := Validate(g); err != nil {
		return nil, err
	}
	return g, nil
}
