package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Edge-list text format: one edge per line, "u v" or "u v w", with '#'
// comment lines and an optional header comment recording n, m, and
// directedness. This is the interchange format of the cmd/ tools.

// WriteEdgeList writes g in the text edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	kind := "undirected"
	if g.Directed() {
		kind = "directed"
	}
	fmt.Fprintf(bw, "# snap edge list: n=%d m=%d %s\n", g.NumVertices(), g.NumEdges(), kind)
	for _, e := range g.EdgeEndpoints() {
		if g.Weighted() {
			fmt.Fprintf(bw, "%d %d %g\n", e.U, e.V, e.W)
		} else {
			fmt.Fprintf(bw, "%d %d\n", e.U, e.V)
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the text edge-list format. The vertex count is
// inferred as max endpoint + 1 unless a header comment provides n.
func ReadEdgeList(r io.Reader, directed bool) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var edges []Edge
	weighted := false
	n := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if v, ok := headerField(line, "n="); ok {
				n = v
			}
			if strings.Contains(line, "directed") && !strings.Contains(line, "undirected") {
				directed = true
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'u v [w]', got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		e := Edge{U: int32(u), V: int32(v), W: 1}
		if len(fields) >= 3 {
			w, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			e.W = w
			weighted = true
		}
		if int(e.U) >= n {
			n = int(e.U) + 1
		}
		if int(e.V) >= n {
			n = int(e.V) + 1
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return Build(n, edges, BuildOptions{Directed: directed, Weighted: weighted})
}

func headerField(line, key string) (int, bool) {
	i := strings.Index(line, key)
	if i < 0 {
		return 0, false
	}
	rest := line[i+len(key):]
	j := 0
	for j < len(rest) && rest[j] >= '0' && rest[j] <= '9' {
		j++
	}
	if j == 0 {
		return 0, false
	}
	v, err := strconv.Atoi(rest[:j])
	if err != nil {
		return 0, false
	}
	return v, true
}

// Binary format: a compact little-endian serialization of the CSR
// arrays, used to snapshot generated graphs between tool invocations.

var binMagic = [4]byte{'S', 'N', 'P', '1'}

// WriteBinary serializes g in the SNAP binary CSR format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	var flags uint32
	if g.Directed() {
		flags |= 1
	}
	if g.Weighted() {
		flags |= 2
	}
	hdr := []uint64{uint64(flags), uint64(g.NumVertices()), uint64(g.NumEdges()), uint64(len(g.Adj))}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Adj); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.EID); err != nil {
		return err
	}
	if g.Weighted() {
		if err := binary.Write(bw, binary.LittleEndian, g.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != binMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic[:])
	}
	var flags, n, m, arcs uint64
	for _, p := range []*uint64{&flags, &n, &m, &arcs} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if n > 1<<31 || arcs > 1<<33 {
		return nil, fmt.Errorf("graph: implausible sizes n=%d arcs=%d", n, arcs)
	}
	g := &Graph{
		Offsets:  make([]int64, n+1),
		Adj:      make([]int32, arcs),
		EID:      make([]int32, arcs),
		directed: flags&1 != 0,
		numEdges: int(m),
	}
	if err := binary.Read(br, binary.LittleEndian, g.Offsets); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, g.Adj); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, g.EID); err != nil {
		return nil, err
	}
	if flags&2 != 0 {
		g.W = make([]float64, arcs)
		if err := binary.Read(br, binary.LittleEndian, g.W); err != nil {
			return nil, err
		}
	}
	if err := Validate(g); err != nil {
		return nil, err
	}
	return g, nil
}
