package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
)

// rmatEdges generates R-MAT-skewed edges (a=0.57 b=0.19 c=0.19) at the
// given scale with avgDeg arcs per vertex — the builder's adversarial
// small-world workload: heavy hubs, many duplicate pairs.
func rmatEdges(scale, avgDeg int, seed int64) (int, []Edge) {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	m := n * avgDeg
	edges := make([]Edge, m)
	for i := range edges {
		var u, v int32
		for l := 0; l < scale; l++ {
			u <<= 1
			v <<= 1
			switch r := rng.Float64(); {
			case r < 0.57:
			case r < 0.76:
				v |= 1
			case r < 0.95:
				u |= 1
			default:
				u |= 1
				v |= 1
			}
		}
		edges[i] = Edge{U: u, V: v, W: rng.Float64()}
	}
	return n, edges
}

func benchScale(b *testing.B) int {
	if s := os.Getenv("SNAP_BENCH_SCALE"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 || v > 28 {
			b.Fatalf("bad SNAP_BENCH_SCALE %q", s)
		}
		return v
	}
	if testing.Short() {
		return 14
	}
	return 18
}

// BenchmarkBuild compares the seed-style serial builder against the
// parallel assembly kernel at several worker counts on an RMAT graph
// (scale set by -short: 14, default 18; EXPERIMENTS.md records scale
// 18–20 runs).
func BenchmarkBuild(b *testing.B) {
	scale := benchScale(b)
	n, edges := rmatEdges(scale, 8, 42)
	for _, opt := range []struct {
		tag string
		o   BuildOptions
	}{
		{"undirected", BuildOptions{Weighted: true}},
		{"directed", BuildOptions{Directed: true, Weighted: true}},
	} {
		b.Run(fmt.Sprintf("rmat%d/%s/serial", scale, opt.tag), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := buildSerial(n, edges, opt.o); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("rmat%d/%s/par-w%d", scale, opt.tag, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := buildParallel(n, edges, opt.o, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkUndirected compares symmetrization through the materialized
// edge list (the seed route) against the CSR-direct merge.
func BenchmarkUndirected(b *testing.B) {
	scale := benchScale(b)
	n, edges := rmatEdges(scale, 8, 43)
	g := MustBuild(n, edges, BuildOptions{Directed: true, Weighted: true})
	b.Run(fmt.Sprintf("rmat%d/edgelist", scale), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Build(g.NumVertices(), g.EdgeEndpoints(),
				BuildOptions{Weighted: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("rmat%d/csr-direct", scale), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Undirected(g)
		}
	})
}

// BenchmarkParseEdgeList measures text ingestion through the sharded
// byte-range scanner at several shard counts.
func BenchmarkParseEdgeList(b *testing.B) {
	scale := benchScale(b)
	n, edges := rmatEdges(scale, 8, 44)
	g := MustBuild(n, edges, BuildOptions{Weighted: true})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("rmat%d/w%d", scale, workers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := parseEdgeList(data, false, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
