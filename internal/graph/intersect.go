package graph

// SortedIntersectCount returns the number of values common to the two
// ascending-sorted id slices. CSR adjacency runs are sorted, so this
// two-pointer merge is the shared inner kernel of triangle counting,
// clustering coefficients (metrics), and pLA's local attachment metric
// (community) — every "how many common neighbors" question in the
// repository routes through it.
func SortedIntersectCount(a, b []int32) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}
