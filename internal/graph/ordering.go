package graph

import "sort"

// Cache-friendly relabeling: the paper stresses cache-friendly
// adjacency layouts for high-performance traversal. RCM (reverse
// Cuthill–McKee) clusters each vertex's neighbors into nearby ids,
// shrinking the working set of level-synchronous sweeps.

// RCMOrder computes a reverse Cuthill–McKee ordering: perm[newID] =
// oldID. Components are processed from peripheral low-degree seeds;
// within a BFS level, neighbors are visited in increasing-degree order.
func RCMOrder(g *Graph) []int32 {
	n := g.NumVertices()
	perm := make([]int32, 0, n)
	visited := make([]bool, n)

	// Seeds: global increasing-degree order, so each component starts
	// from (approximately) a peripheral vertex.
	seeds := make([]int32, n)
	for i := range seeds {
		seeds[i] = int32(i)
	}
	sort.Slice(seeds, func(i, j int) bool {
		di, dj := g.Degree(seeds[i]), g.Degree(seeds[j])
		if di != dj {
			return di < dj
		}
		return seeds[i] < seeds[j]
	})

	queue := make([]int32, 0, 256)
	scratch := make([]int32, 0, 64)
	for _, s := range seeds {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			perm = append(perm, v)
			scratch = scratch[:0]
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					scratch = append(scratch, u)
				}
			}
			sort.Slice(scratch, func(i, j int) bool {
				di, dj := g.Degree(scratch[i]), g.Degree(scratch[j])
				if di != dj {
					return di < dj
				}
				return scratch[i] < scratch[j]
			})
			queue = append(queue, scratch...)
		}
	}
	// Reverse (the "R" in RCM).
	for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// Permute relabels g under perm (perm[newID] = oldID), returning the
// relabeled graph and the inverse map (newOf[oldID] = newID).
func Permute(g *Graph, perm []int32) (*Graph, []int32) {
	n := g.NumVertices()
	newOf := make([]int32, n)
	for newID, oldID := range perm {
		newOf[oldID] = int32(newID)
	}
	edges := g.EdgeEndpoints()
	out := make([]Edge, len(edges))
	for i, e := range edges {
		out[i] = Edge{U: newOf[e.U], V: newOf[e.V], W: e.W}
	}
	ng, err := Build(n, out, BuildOptions{Directed: g.Directed(), Weighted: g.Weighted()})
	if err != nil {
		panic("graph: permute: " + err.Error())
	}
	return ng, newOf
}

// Bandwidth reports the maximum |u − v| over all edges — the quantity
// RCM minimizes; lower bandwidth means adjacent vertices have nearby
// ids and traversals touch fewer cache lines.
func Bandwidth(g *Graph) int64 {
	var bw int64
	for _, e := range g.EdgeEndpoints() {
		d := int64(e.U) - int64(e.V)
		if d < 0 {
			d = -d
		}
		if d > bw {
			bw = d
		}
	}
	return bw
}
