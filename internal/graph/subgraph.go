package graph

import "fmt"

// InducedSubgraph returns the subgraph of g induced by the given
// vertices, together with the mapping from new vertex ids to the
// original ids (origOf[new] == old). Duplicate vertices are an error.
func InducedSubgraph(g *Graph, vertices []int32) (*Graph, []int32, error) {
	if err := g.CheckOpen(); err != nil {
		return nil, nil, err
	}
	n := g.NumVertices()
	newID := make([]int32, n)
	for i := range newID {
		newID[i] = -1
	}
	origOf := make([]int32, len(vertices))
	for i, v := range vertices {
		if v < 0 || int(v) >= n {
			return nil, nil, fmt.Errorf("graph: induced: vertex %d out of range", v)
		}
		if newID[v] != -1 {
			return nil, nil, fmt.Errorf("graph: induced: duplicate vertex %d", v)
		}
		newID[v] = int32(i)
		origOf[i] = v
	}
	var edges []Edge
	for i, v := range vertices {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		for a := lo; a < hi; a++ {
			u := g.Adj[a]
			nu := newID[u]
			if nu < 0 {
				continue
			}
			if !g.Directed() && nu < int32(i) {
				continue // counted from the other endpoint
			}
			if !g.Directed() && nu == int32(i) {
				continue
			}
			edges = append(edges, Edge{U: int32(i), V: nu, W: g.ArcWeight(a)})
		}
	}
	sub, err := Build(len(vertices), edges, BuildOptions{
		Directed: g.Directed(),
		Weighted: g.Weighted(),
	})
	if err != nil {
		return nil, nil, err
	}
	return sub, origOf, nil
}

// FilterEdges returns a copy of g that keeps only edges whose id
// satisfies keep. Vertex ids are preserved (vertices may become
// isolated). Used to materialize the residual graph after pBD edge
// deletions when a caller wants a standalone graph.
func FilterEdges(g *Graph, keep func(eid int32) bool) *Graph {
	all := g.EdgeEndpoints()
	kept := make([]Edge, 0, len(all))
	for id, e := range all {
		if keep(int32(id)) {
			kept = append(kept, e)
		}
	}
	out, err := Build(g.NumVertices(), kept, BuildOptions{
		Directed: g.Directed(),
		Weighted: g.Weighted(),
	})
	if err != nil {
		panic("graph: FilterEdges: " + err.Error())
	}
	return out
}

// Validate checks the structural invariants of a CSR graph: monotone
// offsets, in-range adjacency, sorted neighbor lists, in-range edge
// ids, and — for undirected graphs — arc symmetry with matching edge
// ids. It is used by tests and by ReadBinary.
func Validate(g *Graph) error {
	n := g.NumVertices()
	if len(g.Offsets) != n+1 {
		return fmt.Errorf("graph: offsets length %d != n+1", len(g.Offsets))
	}
	if g.Offsets[0] != 0 || g.Offsets[n] != int64(len(g.Adj)) {
		return fmt.Errorf("graph: offsets endpoints invalid")
	}
	if len(g.EID) != len(g.Adj) {
		return fmt.Errorf("graph: EID length mismatch")
	}
	if g.W != nil && len(g.W) != len(g.Adj) {
		return fmt.Errorf("graph: W length mismatch")
	}
	for v := 0; v < n; v++ {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		if lo > hi {
			return fmt.Errorf("graph: offsets not monotone at %d", v)
		}
		for a := lo; a < hi; a++ {
			u := g.Adj[a]
			if u < 0 || int(u) >= n {
				return fmt.Errorf("graph: arc %d->%d out of range", v, u)
			}
			if a > lo && g.Adj[a-1] > u {
				return fmt.Errorf("graph: adjacency of %d not sorted", v)
			}
			if id := g.EID[a]; id < 0 || int(id) >= g.numEdges {
				return fmt.Errorf("graph: edge id %d out of range [0,%d)", id, g.numEdges)
			}
		}
	}
	if !g.Directed() {
		for v := int32(0); int(v) < n; v++ {
			lo, hi := g.Offsets[v], g.Offsets[v+1]
			for a := lo; a < hi; a++ {
				u := g.Adj[a]
				if back := g.EdgeIDOf(u, v); back != g.EID[a] {
					return fmt.Errorf("graph: asymmetric arc %d->%d (eid %d vs %d)", v, u, g.EID[a], back)
				}
			}
		}
	}
	return nil
}
