package graph

import "testing"

func TestSortedIntersectCount(t *testing.T) {
	cases := []struct {
		a, b []int32
		want int
	}{
		{nil, nil, 0},
		{[]int32{1, 2, 3}, nil, 0},
		{[]int32{1, 2, 3}, []int32{2, 3, 4}, 2},
		{[]int32{1, 3, 5, 7}, []int32{2, 4, 6, 8}, 0},
		{[]int32{1, 2, 3}, []int32{1, 2, 3}, 3},
		{[]int32{5}, []int32{0, 5, 9}, 1},
	}
	for _, c := range cases {
		if got := SortedIntersectCount(c.a, c.b); got != c.want {
			t.Fatalf("SortedIntersectCount(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := SortedIntersectCount(c.b, c.a); got != c.want {
			t.Fatalf("SortedIntersectCount(%v, %v) = %d, want %d", c.b, c.a, got, c.want)
		}
	}
}
