package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// randomDirected builds a directed graph from ~m random edges.
func randomDirected(t *testing.T, n, m int, weighted bool, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		e := Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
		if weighted {
			e.W = rng.Float64() + 0.1
		}
		edges = append(edges, e)
	}
	g, err := Build(n, edges, BuildOptions{Directed: true, Weighted: weighted})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

type arc struct {
	u, v, eid int32
	w         float64
}

// transposeOracle lists g's arcs reversed, sorted the way a CSR stores
// them: by (new source, new target).
func transposeOracle(g *Graph) []arc {
	var arcs []arc
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		for a := lo; a < hi; a++ {
			arcs = append(arcs, arc{u: g.Adj[a], v: u, eid: g.EID[a], w: g.ArcWeight(a)})
		}
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].u != arcs[j].u {
			return arcs[i].u < arcs[j].u
		}
		return arcs[i].v < arcs[j].v
	})
	return arcs
}

// The property: Reverse is exactly the edge-list transpose, including
// edge ids, weights, and the sorted-adjacency invariant.
func TestReverseMatchesTranspose(t *testing.T) {
	cases := []struct {
		name     string
		n, m     int
		weighted bool
		seed     int64
	}{
		{"small", 30, 80, false, 1},
		{"medium", 500, 3000, false, 2},
		{"weighted", 200, 1500, true, 3},
		{"sparse", 1000, 500, false, 4},
		{"singleton", 1, 0, false, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := randomDirected(t, tc.n, tc.m, tc.weighted, tc.seed)
			rg := Reverse(g)
			if !rg.Directed() {
				t.Fatal("reverse lost directedness")
			}
			if rg.NumVertices() != g.NumVertices() || rg.NumArcs() != g.NumArcs() || rg.NumEdges() != g.NumEdges() {
				t.Fatalf("shape mismatch: %v vs %v", rg, g)
			}
			want := transposeOracle(g)
			i := 0
			for u := int32(0); int(u) < rg.NumVertices(); u++ {
				lo, hi := rg.Offsets[u], rg.Offsets[u+1]
				for a := lo; a < hi; a++ {
					if a > lo && rg.Adj[a] < rg.Adj[a-1] {
						t.Fatalf("adjacency of %d not sorted", u)
					}
					got := arc{u: u, v: rg.Adj[a], eid: rg.EID[a], w: rg.ArcWeight(a)}
					if got != want[i] {
						t.Fatalf("arc %d: got %+v, want %+v", i, got, want[i])
					}
					i++
				}
			}
			if i != len(want) {
				t.Fatalf("arc count %d, want %d", i, len(want))
			}
		})
	}
}

// Reversing twice must reproduce the original CSR verbatim.
func TestReverseInvolution(t *testing.T) {
	g := randomDirected(t, 300, 2000, true, 7)
	rr := Reverse(Reverse(g))
	if rr.NumArcs() != g.NumArcs() {
		t.Fatalf("arc count %d, want %d", rr.NumArcs(), g.NumArcs())
	}
	for v := 0; v <= g.NumVertices(); v++ {
		if rr.Offsets[v] != g.Offsets[v] {
			t.Fatalf("offset mismatch at %d", v)
		}
	}
	for a := range g.Adj {
		if rr.Adj[a] != g.Adj[a] || rr.EID[a] != g.EID[a] || rr.W[a] != g.W[a] {
			t.Fatalf("arc %d mismatch", a)
		}
	}
}

// Undirected graphs are their own reverse.
func TestReverseUndirectedIdentity(t *testing.T) {
	g := MustBuild(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}, BuildOptions{})
	if Reverse(g) != g {
		t.Fatal("undirected reverse should return the graph itself")
	}
}
