package graph

import "fmt"

// Attribute tables: the paper's interaction-data model allows vertices
// and edges to be "typed, classified, or assigned attributes based on
// relational information". Attributes is a typed side table keyed by
// vertex or edge id, kept separate from the CSR so analysis kernels
// stay allocation-lean.

// Attributes stores named vertex and edge attribute columns for one
// graph. The zero value is not ready; use NewAttributes.
type Attributes struct {
	n, m    int
	vString map[string][]string
	vFloat  map[string][]float64
	vInt    map[string][]int64
	eString map[string][]string
	eFloat  map[string][]float64
	eInt    map[string][]int64
}

// NewAttributes returns an empty attribute table for g.
func NewAttributes(g *Graph) *Attributes {
	return &Attributes{
		n:       g.NumVertices(),
		m:       g.NumEdges(),
		vString: map[string][]string{},
		vFloat:  map[string][]float64{},
		vInt:    map[string][]int64{},
		eString: map[string][]string{},
		eFloat:  map[string][]float64{},
		eInt:    map[string][]int64{},
	}
}

func (a *Attributes) checkVertex(v int32) error {
	if v < 0 || int(v) >= a.n {
		return fmt.Errorf("graph: attribute vertex %d out of range [0,%d)", v, a.n)
	}
	return nil
}

func (a *Attributes) checkEdge(e int32) error {
	if e < 0 || int(e) >= a.m {
		return fmt.Errorf("graph: attribute edge %d out of range [0,%d)", e, a.m)
	}
	return nil
}

// SetVertexString sets a string attribute of a vertex, creating the
// column on first use.
func (a *Attributes) SetVertexString(name string, v int32, val string) error {
	if err := a.checkVertex(v); err != nil {
		return err
	}
	col, ok := a.vString[name]
	if !ok {
		col = make([]string, a.n)
		a.vString[name] = col
	}
	col[v] = val
	return nil
}

// VertexString reads a string attribute (zero value when unset).
func (a *Attributes) VertexString(name string, v int32) string {
	if col, ok := a.vString[name]; ok && int(v) < len(col) && v >= 0 {
		return col[v]
	}
	return ""
}

// SetVertexFloat sets a float attribute of a vertex.
func (a *Attributes) SetVertexFloat(name string, v int32, val float64) error {
	if err := a.checkVertex(v); err != nil {
		return err
	}
	col, ok := a.vFloat[name]
	if !ok {
		col = make([]float64, a.n)
		a.vFloat[name] = col
	}
	col[v] = val
	return nil
}

// VertexFloat reads a float attribute (0 when unset).
func (a *Attributes) VertexFloat(name string, v int32) float64 {
	if col, ok := a.vFloat[name]; ok && int(v) < len(col) && v >= 0 {
		return col[v]
	}
	return 0
}

// SetVertexInt sets an integer attribute of a vertex.
func (a *Attributes) SetVertexInt(name string, v int32, val int64) error {
	if err := a.checkVertex(v); err != nil {
		return err
	}
	col, ok := a.vInt[name]
	if !ok {
		col = make([]int64, a.n)
		a.vInt[name] = col
	}
	col[v] = val
	return nil
}

// VertexInt reads an integer attribute (0 when unset).
func (a *Attributes) VertexInt(name string, v int32) int64 {
	if col, ok := a.vInt[name]; ok && int(v) < len(col) && v >= 0 {
		return col[v]
	}
	return 0
}

// SetEdgeString sets a string attribute of an edge.
func (a *Attributes) SetEdgeString(name string, e int32, val string) error {
	if err := a.checkEdge(e); err != nil {
		return err
	}
	col, ok := a.eString[name]
	if !ok {
		col = make([]string, a.m)
		a.eString[name] = col
	}
	col[e] = val
	return nil
}

// EdgeString reads a string attribute of an edge.
func (a *Attributes) EdgeString(name string, e int32) string {
	if col, ok := a.eString[name]; ok && int(e) < len(col) && e >= 0 {
		return col[e]
	}
	return ""
}

// SetEdgeFloat sets a float attribute of an edge.
func (a *Attributes) SetEdgeFloat(name string, e int32, val float64) error {
	if err := a.checkEdge(e); err != nil {
		return err
	}
	col, ok := a.eFloat[name]
	if !ok {
		col = make([]float64, a.m)
		a.eFloat[name] = col
	}
	col[e] = val
	return nil
}

// EdgeFloat reads a float attribute of an edge.
func (a *Attributes) EdgeFloat(name string, e int32) float64 {
	if col, ok := a.eFloat[name]; ok && int(e) < len(col) && e >= 0 {
		return col[e]
	}
	return 0
}

// SetEdgeInt sets an integer attribute of an edge.
func (a *Attributes) SetEdgeInt(name string, e int32, val int64) error {
	if err := a.checkEdge(e); err != nil {
		return err
	}
	col, ok := a.eInt[name]
	if !ok {
		col = make([]int64, a.m)
		a.eInt[name] = col
	}
	col[e] = val
	return nil
}

// EdgeInt reads an integer attribute of an edge.
func (a *Attributes) EdgeInt(name string, e int32) int64 {
	if col, ok := a.eInt[name]; ok && int(e) < len(col) && e >= 0 {
		return col[e]
	}
	return 0
}

// VertexColumns lists the defined vertex attribute names by kind.
func (a *Attributes) VertexColumns() (strings, floats, ints []string) {
	for k := range a.vString {
		strings = append(strings, k)
	}
	for k := range a.vFloat {
		floats = append(floats, k)
	}
	for k := range a.vInt {
		ints = append(ints, k)
	}
	return
}

// SelectVertices returns the vertices for which pred holds, given
// access to the attribute table — the building block for typed
// subgraph extraction (combine with InducedSubgraph).
func (a *Attributes) SelectVertices(pred func(v int32) bool) []int32 {
	var out []int32
	for v := int32(0); int(v) < a.n; v++ {
		if pred(v) {
			out = append(out, v)
		}
	}
	return out
}
