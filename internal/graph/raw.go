package graph

// Zero-copy construction and lifetime management. The SNP2 container
// (internal/graph/container) builds graphs whose slice fields alias a
// read-only file mapping; these hooks let it do that without exposing
// the Graph internals, and give such graphs an explicit release point.

// WrapCSR wraps pre-built CSR arrays in a Graph without copying or
// validating them. The caller asserts the Graph invariants hold
// (monotone offsets spanning adj, sorted adjacency, in-range edge ids,
// arc symmetry when undirected — see Validate); kernels index these
// slices unchecked. w may be nil for an unweighted graph. The slices
// are retained, not copied: they must stay immutable (and, for a
// mapped file, mapped) for the graph's lifetime.
func WrapCSR(offsets []int64, adj, eid []int32, w []float64, directed bool, numEdges int) *Graph {
	return &Graph{
		Offsets:  offsets,
		Adj:      adj,
		EID:      eid,
		W:        w,
		directed: directed,
		numEdges: numEdges,
	}
}

// SetCloser registers fn to run on the first Close. Used by loaders
// whose slices alias an external resource (an mmap'd container).
func (g *Graph) SetCloser(fn func() error) { g.closer = fn }

// Close releases the resource backing the graph's slices, if any: for
// a graph mapped from an SNP2 container it unmaps the file, after
// which every slice field (and anything aliasing them — Neighbors
// results, subslices held by callers) becomes invalid. Close is
// idempotent, and a no-op for heap-built graphs. The mapped loader
// also registers a finalizer as a safety net, but relying on it keeps
// address space pinned until GC; call Close deterministically.
func (g *Graph) Close() error {
	fn := g.closer
	if fn == nil {
		return nil
	}
	g.closer = nil
	return fn()
}
