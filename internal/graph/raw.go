package graph

import "errors"

// Zero-copy construction and lifetime management. The SNP2 container
// (internal/graph/container) builds graphs whose slice fields alias a
// read-only file mapping; these hooks let it do that without exposing
// the Graph internals, and give such graphs an explicit release point.

// ErrClosed reports use of a graph after Close released its backing
// resource: the CSR slices alias an unmapped container and any access
// would fault. Returned by CheckOpen and by the error-returning entry
// points that read the CSR.
var ErrClosed = errors.New("graph: use after Close (backing container unmapped)")

// WrapCSR wraps pre-built CSR arrays in a Graph without copying or
// validating them. The caller asserts the Graph invariants hold
// (monotone offsets spanning adj, sorted adjacency, in-range edge ids,
// arc symmetry when undirected — see Validate); kernels index these
// slices unchecked. w may be nil for an unweighted graph. The slices
// are retained, not copied: they must stay immutable (and, for a
// mapped file, mapped) for the graph's lifetime.
func WrapCSR(offsets []int64, adj, eid []int32, w []float64, directed bool, numEdges int) *Graph {
	return &Graph{
		Offsets:  offsets,
		Adj:      adj,
		EID:      eid,
		W:        w,
		directed: directed,
		numEdges: numEdges,
	}
}

// SetCloser registers fn to run on the first Close. Used by loaders
// whose slices alias an external resource (an mmap'd container).
func (g *Graph) SetCloser(fn func() error) { g.closer = fn }

// Close releases the resource backing the graph's slices, if any: for
// a graph mapped from an SNP2 container it unmaps the file, after
// which every slice field (and anything aliasing them — Neighbors
// results, subslices held by callers) becomes invalid. Close is
// idempotent, and a no-op for heap-built graphs. The mapped loader
// also registers a finalizer as a safety net, but relying on it keeps
// address space pinned until GC; call Close deterministically.
func (g *Graph) Close() error {
	fn := g.closer
	if fn == nil {
		return nil
	}
	g.closer = nil
	g.closed = true
	return fn()
}

// Closed reports whether Close released the graph's backing resource.
// A closed graph's slice fields alias a dead mapping: any kernel run
// against it faults on first touch, so query layers must refuse it —
// see CheckOpen. Heap-built graphs (no backing resource) are never
// closed and stay valid for their whole lifetime.
func (g *Graph) Closed() bool { return g.closed }

// CheckOpen returns ErrClosed when the graph has been Closed, nil
// otherwise — the guard every error-returning facade and serving entry
// point runs before touching the CSR, turning a use-after-Close from a
// segfault on the dead mmap into an ordinary error.
func (g *Graph) CheckOpen() error {
	if g.closed {
		return ErrClosed
	}
	return nil
}
