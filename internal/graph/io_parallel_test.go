package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestParseEdgeListSharded checks that the byte-range-sharded parser
// matches a single-shard scan on an input large and messy enough to
// exercise shard stitching: comments and blank lines interleaved,
// CRLF endings, mixed weighted lines, and a mid-file n= header.
func TestParseEdgeListSharded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var sb strings.Builder
	sb.WriteString("# snap edge list: n=900 m=0 undirected\n")
	for i := 0; i < 5000; i++ {
		switch {
		case i%97 == 0:
			sb.WriteString("# interleaved comment\n")
		case i%131 == 0:
			sb.WriteString("\n")
		case i%53 == 0:
			fmt.Fprintf(&sb, "  %d\t%d %g\r\n", rng.Intn(800), rng.Intn(800), rng.Float64())
		default:
			fmt.Fprintf(&sb, "%d %d\n", rng.Intn(800), rng.Intn(800))
		}
	}
	data := []byte(sb.String())

	want, err := parseEdgeList(data, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 7, 16} {
		got, err := parseEdgeList(data, false, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		requireIdentical(t, fmt.Sprintf("workers=%d", workers), got, want)
	}
	if want.NumVertices() != 900 {
		t.Fatalf("NumVertices = %d, want 900 from header", want.NumVertices())
	}
	if !want.Weighted() {
		t.Fatal("mixed weighted lines should yield a weighted graph")
	}
}

func TestParseEdgeListErrorLineNumbers(t *testing.T) {
	var sb strings.Builder
	for i := 1; i <= 4000; i++ {
		if i == 3137 {
			sb.WriteString("12 oops\n")
			continue
		}
		fmt.Fprintf(&sb, "%d %d\n", i%50, (i+7)%50)
	}
	for _, workers := range []int{1, 4, 9} {
		_, err := parseEdgeList([]byte(sb.String()), false, workers)
		if err == nil {
			t.Fatalf("workers=%d: want parse error", workers)
		}
		if !strings.Contains(err.Error(), "line 3137") {
			t.Fatalf("workers=%d: err %q should name line 3137", workers, err)
		}
	}

	// Earliest of several errors wins, regardless of sharding.
	bad := strings.Repeat("1 2\n", 1000) + "x y\n" + strings.Repeat("3 4\n", 1000) + "z w\n"
	for _, workers := range []int{1, 5} {
		_, err := parseEdgeList([]byte(bad), false, workers)
		if err == nil || !strings.Contains(err.Error(), "line 1001") {
			t.Fatalf("workers=%d: err %v, want line 1001", workers, err)
		}
	}
}

func TestEdgeListRoundTripParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var edges []Edge
	for i := 0; i < 9000; i++ {
		edges = append(edges, Edge{int32(rng.Intn(700)), int32(rng.Intn(700)), float64(rng.Intn(90)) / 8})
	}
	for _, opt := range []BuildOptions{
		{Weighted: true},
		{Directed: true, Weighted: true},
		{Directed: true},
	} {
		g := MustBuild(700, edges, opt)
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		back, err := ReadEdgeList(&buf, false)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, fmt.Sprintf("dir=%v w=%v", opt.Directed, opt.Weighted), back, g)
	}
}
