package graph

import (
	"fmt"
	"sort"

	"snap/internal/treap"
)

// DefaultTreapThreshold is the degree above which a dynamic vertex's
// adjacency switches from an unsorted resizable array to a treap, per
// the paper's hybrid representation for skewed degree distributions.
const DefaultTreapThreshold = 64

// Dynamic is a mutable graph supporting edge insertion and deletion.
// Low-degree vertices keep a small unsorted adjacency array (append is
// O(1), delete is O(deg)); once a vertex's degree exceeds the treap
// threshold its adjacency migrates to a treap with O(log deg) updates
// and membership tests.
//
// Dynamic is not safe for concurrent mutation; freeze it with ToCSR
// before handing it to parallel kernels.
type Dynamic struct {
	directed  bool
	threshold int
	numEdges  int
	small     [][]int32
	big       []*treap.Treap // nil until a vertex crosses the threshold
}

// NewDynamic returns an empty dynamic graph with n vertices.
func NewDynamic(n int, directed bool) *Dynamic {
	return &Dynamic{
		directed:  directed,
		threshold: DefaultTreapThreshold,
		small:     make([][]int32, n),
		big:       make([]*treap.Treap, n),
	}
}

// SetTreapThreshold overrides the degree threshold for migrating a
// vertex's adjacency to a treap. Vertices already migrated stay
// migrated. A threshold < 1 forces treaps for every vertex.
func (d *Dynamic) SetTreapThreshold(t int) { d.threshold = t }

// NumVertices reports the number of vertices.
func (d *Dynamic) NumVertices() int { return len(d.small) }

// NumEdges reports the number of edges (undirected) or arcs (directed).
func (d *Dynamic) NumEdges() int { return d.numEdges }

// Directed reports whether the graph is directed.
func (d *Dynamic) Directed() bool { return d.directed }

// Degree reports the out-degree of v.
func (d *Dynamic) Degree(v int32) int {
	if t := d.big[v]; t != nil {
		return t.Len()
	}
	return len(d.small[v])
}

// HasEdge reports whether the arc u->v exists.
func (d *Dynamic) HasEdge(u, v int32) bool {
	if t := d.big[u]; t != nil {
		return t.Contains(v)
	}
	for _, x := range d.small[u] {
		if x == v {
			return true
		}
	}
	return false
}

// AddEdge inserts the edge (u, v), reporting whether it was new.
// Self-loops and out-of-range endpoints are an error.
func (d *Dynamic) AddEdge(u, v int32) (bool, error) {
	if err := d.check(u, v); err != nil {
		return false, err
	}
	if d.HasEdge(u, v) {
		return false, nil
	}
	d.insertArc(u, v)
	if !d.directed {
		d.insertArc(v, u)
	}
	d.numEdges++
	return true, nil
}

// DeleteEdge removes the edge (u, v), reporting whether it existed.
func (d *Dynamic) DeleteEdge(u, v int32) (bool, error) {
	if err := d.check(u, v); err != nil {
		return false, err
	}
	if !d.deleteArc(u, v) {
		return false, nil
	}
	if !d.directed {
		d.deleteArc(v, u)
	}
	d.numEdges--
	return true, nil
}

func (d *Dynamic) check(u, v int32) error {
	n := int32(len(d.small))
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("graph: endpoint out of range: (%d,%d), n=%d", u, v, n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop (%d,%d) not supported", u, v)
	}
	return nil
}

func (d *Dynamic) insertArc(u, v int32) {
	if t := d.big[u]; t != nil {
		t.Insert(v)
		return
	}
	d.small[u] = append(d.small[u], v)
	if len(d.small[u]) > d.threshold {
		t := treap.FromKeys(int64(u)*0x9E3779B9+1, d.small[u])
		d.big[u] = t
		d.small[u] = nil
	}
}

func (d *Dynamic) deleteArc(u, v int32) bool {
	if t := d.big[u]; t != nil {
		return t.Delete(v)
	}
	adj := d.small[u]
	for i, x := range adj {
		if x == v {
			adj[i] = adj[len(adj)-1]
			d.small[u] = adj[:len(adj)-1]
			return true
		}
	}
	return false
}

// Neighbors returns the neighbors of v in ascending order (a fresh
// slice; mutating it does not affect the graph).
func (d *Dynamic) Neighbors(v int32) []int32 {
	if t := d.big[v]; t != nil {
		return t.Keys()
	}
	out := append([]int32(nil), d.small[v]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EachNeighbor calls f for every neighbor of v (unspecified order).
func (d *Dynamic) EachNeighbor(v int32, f func(u int32)) {
	if t := d.big[v]; t != nil {
		t.Each(func(k int32) bool { f(k); return true })
		return
	}
	for _, u := range d.small[v] {
		f(u)
	}
}

// ToCSR freezes the dynamic graph into an immutable CSR graph. The
// edge list is preallocated from NumEdges(), and internal Build
// failures surface as errors instead of panics.
//
// For sustained update/snapshot workloads prefer ingest.Stream, which
// merges batched deltas against the previous snapshot instead of
// re-materializing the whole edge list; Dynamic remains the
// point-update compatibility structure from the paper's hybrid
// array/treap representation.
func (d *Dynamic) ToCSR() (*Graph, error) {
	edges := make([]Edge, 0, d.NumEdges())
	n := int32(d.NumVertices())
	for u := int32(0); u < n; u++ {
		d.EachNeighbor(u, func(v int32) {
			if d.directed || u < v {
				edges = append(edges, Edge{U: u, V: v})
			}
		})
	}
	g, err := Build(int(n), edges, BuildOptions{Directed: d.directed})
	if err != nil {
		return nil, fmt.Errorf("graph: ToCSR: %w", err)
	}
	return g, nil
}

// FromCSR thaws a CSR graph into a dynamic graph.
func FromCSR(g *Graph) (*Dynamic, error) {
	d := NewDynamic(g.NumVertices(), g.Directed())
	for u := int32(0); u < int32(g.NumVertices()); u++ {
		for _, v := range g.Neighbors(u) {
			if g.Directed() || u < v {
				if _, err := d.AddEdge(u, v); err != nil {
					return nil, fmt.Errorf("graph: FromCSR: %w", err)
				}
			}
		}
	}
	return d, nil
}
