package graph

import (
	"math/rand"
	"testing"
)

func relabelTestGraph(t *testing.T, weighted bool) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	n := 300
	var edges []Edge
	for i := 0; i < 4*n; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u == v {
			continue
		}
		e := Edge{U: u, V: v}
		if weighted {
			e.W = float64(rng.Intn(9) + 1)
		}
		edges = append(edges, e)
	}
	g, err := Build(n, edges, BuildOptions{Weighted: weighted})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func shuffledPerm(n int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm
}

func TestRelabelRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := relabelTestGraph(t, weighted)
		n := g.NumVertices()
		perm := shuffledPerm(n, 42)
		rg, inv, err := Relabel(g, perm)
		if err != nil {
			t.Fatal(err)
		}
		// perm ∘ inv = id.
		for old := int32(0); int(old) < n; old++ {
			if perm[inv[old]] != old {
				t.Fatalf("perm[inv[%d]] = %d", old, perm[inv[old]])
			}
		}
		if err := Validate(rg); err != nil {
			t.Fatalf("relabeled graph invalid: %v", err)
		}
		if rg.NumEdges() != g.NumEdges() || rg.NumArcs() != g.NumArcs() {
			t.Fatalf("edge counts changed: %d/%d vs %d/%d",
				rg.NumEdges(), rg.NumArcs(), g.NumEdges(), g.NumArcs())
		}
		// Every old adjacency row must reappear, remapped, at its new id
		// — with edge ids and weights still attached to the same arcs.
		for old := int32(0); int(old) < n; old++ {
			nw := inv[old]
			if rg.Degree(nw) != g.Degree(old) {
				t.Fatalf("degree changed at %d", old)
			}
			type arc struct {
				to  int32
				eid int32
				w   float64
			}
			want := map[arc]int{}
			for a := g.Offsets[old]; a < g.Offsets[old+1]; a++ {
				ar := arc{to: inv[g.Adj[a]], eid: g.EID[a]}
				if weighted {
					ar.w = g.W[a]
				}
				want[ar]++
			}
			for a := rg.Offsets[nw]; a < rg.Offsets[nw+1]; a++ {
				ar := arc{to: rg.Adj[a], eid: rg.EID[a]}
				if weighted {
					ar.w = rg.W[a]
				}
				if want[ar] == 0 {
					t.Fatalf("arc %+v at new %d not in original row", ar, nw)
				}
				want[ar]--
			}
		}
	}
}

func TestRelabelIdentity(t *testing.T) {
	g := relabelTestGraph(t, false)
	n := g.NumVertices()
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	rg, inv, err := Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); int(v) < n; v++ {
		if inv[v] != v {
			t.Fatalf("identity inverse wrong at %d", v)
		}
		a, b := g.Neighbors(v), rg.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("row %d length changed", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("row %d differs at %d", v, i)
			}
		}
	}
}

func TestRelabelRejectsBadPerm(t *testing.T) {
	g := relabelTestGraph(t, false)
	n := g.NumVertices()
	if _, _, err := Relabel(g, make([]int32, n-1)); err == nil {
		t.Fatal("short perm accepted")
	}
	bad := shuffledPerm(n, 1)
	bad[0] = bad[1] // duplicate
	if _, _, err := Relabel(g, bad); err == nil {
		t.Fatal("duplicate perm accepted")
	}
	bad2 := shuffledPerm(n, 2)
	bad2[0] = int32(n) // out of range
	if _, _, err := Relabel(g, bad2); err == nil {
		t.Fatal("out-of-range perm accepted")
	}
}
