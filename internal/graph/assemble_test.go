package graph

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"
)

// buildOracle re-implements the seed serial builder independently of
// builder.go (global stable sort + counting pass + per-vertex stable
// sort), so the parallel kernel and buildSerial are both checked
// against a third implementation rather than against each other.
func buildOracle(n int, edges []Edge, opt BuildOptions) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
	}
	type tagged struct {
		e   Edge
		pos int
	}
	var clean []tagged
	for i, e := range edges {
		if e.U == e.V && !opt.AllowSelfLoops {
			continue
		}
		if !opt.Directed && e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		clean = append(clean, tagged{e, i})
	}
	if !opt.AllowMulti {
		sort.Slice(clean, func(i, j int) bool {
			a, b := clean[i], clean[j]
			if a.e.U != b.e.U {
				return a.e.U < b.e.U
			}
			if a.e.V != b.e.V {
				return a.e.V < b.e.V
			}
			return a.pos < b.pos
		})
		var dedup []tagged
		for _, t := range clean {
			if len(dedup) > 0 && t.e.U == dedup[len(dedup)-1].e.U && t.e.V == dedup[len(dedup)-1].e.V {
				if opt.SumWeights {
					dedup[len(dedup)-1].e.W += t.e.W
				}
				continue
			}
			dedup = append(dedup, t)
		}
		clean = dedup
	}
	m := len(clean)

	type arc struct {
		to  int32
		eid int32
		w   float64
	}
	adjOf := make([][]arc, n)
	for i, t := range clean {
		adjOf[t.e.U] = append(adjOf[t.e.U], arc{t.e.V, int32(i), t.e.W})
		if !opt.Directed {
			adjOf[t.e.V] = append(adjOf[t.e.V], arc{t.e.U, int32(i), t.e.W})
		}
	}
	offsets := make([]int64, n+1)
	var total int64
	for v := 0; v < n; v++ {
		offsets[v] = total
		total += int64(len(adjOf[v]))
	}
	offsets[n] = total
	adj := make([]int32, total)
	eid := make([]int32, total)
	var w []float64
	if opt.Weighted {
		w = make([]float64, total)
	}
	for v := 0; v < n; v++ {
		a := adjOf[v]
		sort.Slice(a, func(i, j int) bool {
			if a[i].to != a[j].to {
				return a[i].to < a[j].to
			}
			return a[i].eid < a[j].eid
		})
		base := offsets[v]
		for i, x := range a {
			adj[base+int64(i)] = x.to
			eid[base+int64(i)] = x.eid
			if w != nil {
				w[base+int64(i)] = x.w
			}
		}
	}
	return &Graph{
		Offsets:  offsets,
		Adj:      adj,
		EID:      eid,
		W:        w,
		directed: opt.Directed,
		numEdges: m,
	}, nil
}

func requireIdentical(t *testing.T, tag string, got, want *Graph) {
	t.Helper()
	if got.directed != want.directed || got.numEdges != want.numEdges {
		t.Fatalf("%s: kind/m mismatch: got (%v,%d) want (%v,%d)",
			tag, got.directed, got.numEdges, want.directed, want.numEdges)
	}
	if len(got.Offsets) != len(want.Offsets) {
		t.Fatalf("%s: offsets length %d != %d", tag, len(got.Offsets), len(want.Offsets))
	}
	for i := range want.Offsets {
		if got.Offsets[i] != want.Offsets[i] {
			t.Fatalf("%s: Offsets[%d] = %d, want %d", tag, i, got.Offsets[i], want.Offsets[i])
		}
	}
	if len(got.Adj) != len(want.Adj) || len(got.EID) != len(want.EID) {
		t.Fatalf("%s: arc array lengths (%d,%d) != (%d,%d)",
			tag, len(got.Adj), len(got.EID), len(want.Adj), len(want.EID))
	}
	for i := range want.Adj {
		if got.Adj[i] != want.Adj[i] {
			t.Fatalf("%s: Adj[%d] = %d, want %d", tag, i, got.Adj[i], want.Adj[i])
		}
		if got.EID[i] != want.EID[i] {
			t.Fatalf("%s: EID[%d] = %d, want %d", tag, i, got.EID[i], want.EID[i])
		}
	}
	if (got.W == nil) != (want.W == nil) {
		t.Fatalf("%s: weighted mismatch: got W nil=%v want nil=%v", tag, got.W == nil, want.W == nil)
	}
	for i := range want.W {
		if got.W[i] != want.W[i] {
			t.Fatalf("%s: W[%d] = %v, want %v", tag, i, got.W[i], want.W[i])
		}
	}
}

type buildCase struct {
	name  string
	n     int
	edges []Edge
}

func adversarialCases() []buildCase {
	rng := rand.New(rand.NewSource(7))
	cases := []buildCase{
		{"empty", 0, nil},
		{"isolated", 9, nil},
		{"single", 2, []Edge{{0, 1, 2.5}}},
		{"self-loops-only", 4, []Edge{{0, 0, 1}, {2, 2, 3}, {2, 2, 5}}},
		{"dup-distinct-weights", 3, []Edge{
			{0, 1, 5}, {1, 0, 7}, {0, 1, 9}, {2, 1, 1}, {1, 2, 4}, {0, 1, 5},
		}},
		{"boundary-endpoints", 5, []Edge{{0, 4, 1}, {4, 0, 2}, {4, 4, 3}, {0, 0, 4}}},
		{"same-edge-repeated", 2, func() []Edge {
			e := make([]Edge, 500)
			for i := range e {
				e[i] = Edge{0, 1, float64(i)}
			}
			return e
		}()},
	}

	// Single high-degree hub with duplicates, self loops, and both
	// orientations.
	hub := buildCase{name: "hub", n: 600}
	for i := 1; i < 600; i++ {
		hub.edges = append(hub.edges, Edge{0, int32(i), float64(i)})
		if i%3 == 0 {
			hub.edges = append(hub.edges, Edge{int32(i), 0, float64(-i)})
		}
		if i%17 == 0 {
			hub.edges = append(hub.edges, Edge{0, 0, 1})
		}
	}
	cases = append(cases, hub)

	// RMAT-style skew: recursive quadrant sampling, heavy duplicates.
	rmat := buildCase{name: "rmat-skew", n: 1 << 9}
	for i := 0; i < 6000; i++ {
		var u, v int32
		for l := 0; l < 9; l++ {
			u <<= 1
			v <<= 1
			r := rng.Float64()
			switch {
			case r < 0.55:
			case r < 0.65:
				v |= 1
			case r < 0.75:
				u |= 1
			default:
				u |= 1
				v |= 1
			}
		}
		rmat.edges = append(rmat.edges, Edge{u, v, rng.Float64()})
	}
	cases = append(cases, rmat)

	// Uniform random with many collisions.
	uni := buildCase{name: "uniform-dense", n: 40}
	for i := 0; i < 4000; i++ {
		uni.edges = append(uni.edges, Edge{int32(rng.Intn(40)), int32(rng.Intn(40)), float64(rng.Intn(5))})
	}
	cases = append(cases, uni)

	// Large sparse case that crosses the serial dispatch threshold.
	big := buildCase{name: "big-sparse", n: 5000}
	for i := 0; i < 3*serialBuildThreshold; i++ {
		big.edges = append(big.edges, Edge{int32(rng.Intn(5000)), int32(rng.Intn(5000)), rng.Float64()})
	}
	cases = append(cases, big)
	return cases
}

func optionMatrix() []BuildOptions {
	var opts []BuildOptions
	for _, directed := range []bool{false, true} {
		for _, weighted := range []bool{false, true} {
			for _, loops := range []bool{false, true} {
				for _, multi := range []bool{false, true} {
					opts = append(opts, BuildOptions{
						Directed: directed, Weighted: weighted,
						AllowSelfLoops: loops, AllowMulti: multi,
					})
					if !multi {
						opts = append(opts, BuildOptions{
							Directed: directed, Weighted: weighted,
							AllowSelfLoops: loops, SumWeights: true,
						})
					}
				}
			}
		}
	}
	return opts
}

func optTag(o BuildOptions) string {
	return fmt.Sprintf("dir=%v,w=%v,loops=%v,multi=%v,sum=%v",
		o.Directed, o.Weighted, o.AllowSelfLoops, o.AllowMulti, o.SumWeights)
}

// TestBuildParallelBitIdentical is the tentpole property test: the
// parallel assembly kernel must be bit-identical (Offsets/Adj/EID/W)
// to the serial reference builder for every option combination, any
// worker count, and adversarial inputs.
func TestBuildParallelBitIdentical(t *testing.T) {
	workerCounts := []int{1, 2, 3, runtime.NumCPU()}
	for _, tc := range adversarialCases() {
		for _, opt := range optionMatrix() {
			want, err := buildOracle(tc.n, tc.edges, opt)
			if err != nil {
				t.Fatalf("%s/%s: oracle: %v", tc.name, optTag(opt), err)
			}
			serial, err := buildSerial(tc.n, tc.edges, opt)
			if err != nil {
				t.Fatalf("%s/%s: serial: %v", tc.name, optTag(opt), err)
			}
			requireIdentical(t, tc.name+"/"+optTag(opt)+"/serial", serial, want)
			for _, workers := range workerCounts {
				tag := fmt.Sprintf("%s/%s/workers=%d", tc.name, optTag(opt), workers)
				got, err := buildParallel(tc.n, tc.edges, opt, workers)
				if err != nil {
					t.Fatalf("%s: %v", tag, err)
				}
				requireIdentical(t, tag, got, want)
				// Validate's symmetry check resolves arcs via
				// EdgeIDOf, which cannot distinguish parallel arcs:
				// it only applies to simple graphs.
				if !opt.AllowMulti {
					if err := Validate(got); err != nil {
						t.Fatalf("%s: invalid CSR: %v", tag, err)
					}
				}
			}
			// The public dispatcher must agree with both paths.
			pub, err := Build(tc.n, tc.edges, opt)
			if err != nil {
				t.Fatalf("%s/%s: Build: %v", tc.name, optTag(opt), err)
			}
			requireIdentical(t, tc.name+"/"+optTag(opt)+"/Build", pub, want)
		}
	}
}

func TestBuildParallelErrors(t *testing.T) {
	edges := make([]Edge, 100)
	for i := range edges {
		edges[i] = Edge{0, 1, 1}
	}
	edges[41] = Edge{0, 5, 1}
	edges[77] = Edge{-3, 1, 1}
	for _, workers := range []int{1, 2, 3, 8} {
		_, err := buildParallel(3, edges, BuildOptions{}, workers)
		if err == nil {
			t.Fatalf("workers=%d: want error for out-of-range edge", workers)
		}
		want := "graph: edge (0,5) out of range [0,3)"
		if err.Error() != want {
			t.Fatalf("workers=%d: err = %q, want earliest offender %q", workers, err, want)
		}
	}
	if _, err := buildParallel(-1, nil, BuildOptions{}, 4); err == nil {
		t.Fatal("want error for negative vertex count")
	}
}

// TestUndirectedMatchesEdgeListSymmetrization checks the CSR-direct
// symmetrization against the reference route (Build over the
// materialized edge list), including weighted, multi-arc, and
// self-loop-bearing directed inputs.
func TestUndirectedMatchesEdgeListSymmetrization(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type gcase struct {
		name string
		g    *Graph
	}
	var cases []gcase

	mk := func(name string, n int, edges []Edge, opt BuildOptions) {
		opt.Directed = true
		g, err := buildOracle(n, edges, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cases = append(cases, gcase{name, g})
	}

	var sparse []Edge
	for i := 0; i < 4000; i++ {
		sparse = append(sparse, Edge{int32(rng.Intn(800)), int32(rng.Intn(800)), rng.Float64()})
	}
	mk("sparse-weighted", 800, sparse, BuildOptions{Weighted: true})
	mk("sparse-unweighted", 800, sparse, BuildOptions{})
	mk("with-self-loops", 800, sparse, BuildOptions{Weighted: true, AllowSelfLoops: true})
	mk("multigraph", 800, sparse, BuildOptions{Weighted: true, AllowMulti: true, AllowSelfLoops: true})

	var anti []Edge
	for i := 0; i < 500; i++ {
		u, v := int32(rng.Intn(60)), int32(rng.Intn(60))
		anti = append(anti, Edge{u, v, float64(i)}, Edge{v, u, float64(1000 + i)})
	}
	mk("antiparallel", 60, anti, BuildOptions{Weighted: true, AllowMulti: true})
	mk("empty", 10, nil, BuildOptions{Weighted: true})

	for _, tc := range cases {
		want, err := buildOracle(tc.g.NumVertices(), tc.g.EdgeEndpoints(),
			BuildOptions{Weighted: tc.g.Weighted()})
		if err != nil {
			t.Fatalf("%s: reference: %v", tc.name, err)
		}
		got := Undirected(tc.g)
		requireIdentical(t, tc.name, got, want)
		if err := Validate(got); err != nil {
			t.Fatalf("%s: invalid CSR: %v", tc.name, err)
		}
	}

	// Undirected input passes through untouched.
	und := MustBuild(4, []Edge{{0, 1, 1}, {1, 2, 1}}, BuildOptions{})
	if Undirected(und) != und {
		t.Fatal("Undirected(undirected) should return the same graph")
	}
}

// TestBuildSumWeights pins the aggregation semantics used by community
// quotients: duplicates collapse with weights summed in input order.
func TestBuildSumWeights(t *testing.T) {
	g, err := Build(3, []Edge{
		{1, 0, 1.5}, {0, 1, 2}, {2, 0, 4}, {0, 1, 0.5}, {0, 2, 8},
	}, BuildOptions{Weighted: true, SumWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if w := g.W[g.Offsets[0]]; w != 4 { // 1.5 + 2 + 0.5 on edge {0,1}
		t.Fatalf("weight of {0,1} = %v, want 4", w)
	}
	if w := g.W[g.Offsets[2]]; w != 12 { // 4 + 8 on edge {0,2}
		t.Fatalf("weight of {0,2} = %v, want 12", w)
	}
}
