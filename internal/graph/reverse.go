package graph

import "snap/internal/par"

// Reverse returns the in-adjacency CSR of a directed graph: vertex v's
// arcs in the result are v's in-neighbors in g, each carrying the same
// edge id and weight as the original arc, so per-edge state (e.g. the
// Alive masks used by divisive clustering) filters identically on the
// pull side. Bottom-up BFS steps on directed graphs scan this reverse
// view. Undirected graphs are their own reverse, so g is returned
// unchanged.
//
// The build is a parallel counting sort: workers count in-degree
// contributions over contiguous source chunks, a prefix pass converts
// the per-(worker, vertex) counts into disjoint write cursors, and a
// second sweep places arcs with no further synchronization. Scanning
// sources in ascending order within and across chunks leaves every
// adjacency list sorted — preserving the Graph invariant — without a
// sort pass.
func Reverse(g *Graph) *Graph {
	if !g.directed {
		return g
	}
	n := g.NumVertices()
	workers := par.Workers()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	// Pass 1: per-worker in-degree counts over source chunks.
	counts := make([][]int64, workers)
	par.ForChunkedN(n, workers, func(w, lo, hi int) {
		c := make([]int64, n)
		for u := lo; u < hi; u++ {
			for a := g.Offsets[u]; a < g.Offsets[u+1]; a++ {
				c[g.Adj[a]]++
			}
		}
		counts[w] = c
	})

	// Prefix pass: offsets per target vertex, then per-worker write
	// cursors (worker order = ascending source order).
	offsets := make([]int64, n+1)
	acc := par.CursorsFromCounts(counts, offsets)

	// Pass 2: place arcs. Cursor ranges are disjoint across workers,
	// so placement needs no atomics.
	adj := make([]int32, acc)
	eid := make([]int32, acc)
	var wts []float64
	if g.W != nil {
		wts = make([]float64, acc)
	}
	par.ForChunkedN(n, workers, func(w, lo, hi int) {
		cur := counts[w]
		for u := lo; u < hi; u++ {
			for a := g.Offsets[u]; a < g.Offsets[u+1]; a++ {
				v := g.Adj[a]
				c := cur[v]
				adj[c] = int32(u)
				eid[c] = g.EID[a]
				if wts != nil {
					wts[c] = g.W[a]
				}
				cur[v] = c + 1
			}
		}
	})

	return &Graph{
		Offsets:  offsets,
		Adj:      adj,
		EID:      eid,
		W:        wts,
		directed: true,
		numEdges: g.numEdges,
	}
}
