package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func smallGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := Build(5, []Edge{
		{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 3}, {U: 0, V: 4, W: 1},
	}, BuildOptions{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMETISRoundTrip(t *testing.T) {
	g := smallGraph(t)
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip sizes: %v vs %v", g2, g)
	}
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		a, b := g.Neighbors(v), g2.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency mismatch at %d", v)
			}
		}
	}
	if !g2.Weighted() || g2.TotalWeight() != g.TotalWeight() {
		t.Fatalf("weights lost: %g vs %g", g2.TotalWeight(), g.TotalWeight())
	}
}

func TestMETISUnweightedRoundTrip(t *testing.T) {
	g, _ := Build(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}, BuildOptions{})
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "4 3\n") {
		t.Fatalf("header: %q", buf.String()[:10])
	}
	g2, err := ReadMETIS(&buf)
	if err != nil || g2.NumEdges() != 3 {
		t.Fatalf("round trip: %v %v", g2, err)
	}
}

func TestMETISRejectsDirected(t *testing.T) {
	g, _ := Build(2, []Edge{{U: 0, V: 1}}, BuildOptions{Directed: true})
	if err := WriteMETIS(&bytes.Buffer{}, g); err == nil {
		t.Fatal("directed METIS write should fail")
	}
}

func TestMETISComments(t *testing.T) {
	in := "% comment\n3 2\n% another\n2 3\n1\n1\n"
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("parsed: %v", g)
	}
}

func TestMETISErrors(t *testing.T) {
	if _, err := ReadMETIS(strings.NewReader("")); err == nil {
		t.Fatal("empty input should fail")
	}
	if _, err := ReadMETIS(strings.NewReader("2 1 011\n2\n1\n")); err == nil {
		t.Fatal("vertex weights should be rejected")
	}
	if _, err := ReadMETIS(strings.NewReader("2 1\n9\n1\n")); err == nil {
		t.Fatal("out-of-range neighbor should fail")
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	g := smallGraph(t)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip sizes: %v vs %v", g2, g)
	}
}

func TestDIMACSErrors(t *testing.T) {
	if _, err := ReadDIMACS(strings.NewReader("e 1 2\n")); err == nil {
		t.Fatal("edge before problem line should fail")
	}
	if _, err := ReadDIMACS(strings.NewReader("p edge 2 1\ne 1 9\n")); err == nil {
		t.Fatal("out-of-range endpoint should fail")
	}
	if _, err := ReadDIMACS(strings.NewReader("x nonsense\n")); err == nil {
		t.Fatal("unknown record should fail")
	}
	if _, err := ReadDIMACS(strings.NewReader("c only comments\n")); err == nil {
		t.Fatal("missing problem line should fail")
	}
}

func TestWriteDOT(t *testing.T) {
	g, _ := Build(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}}, BuildOptions{})
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, []int32{0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph snap {", "0 -- 1;", "fillcolor=1", "fillcolor=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
	gd, _ := Build(2, []Edge{{U: 0, V: 1}}, BuildOptions{Directed: true})
	buf.Reset()
	if err := WriteDOT(&buf, gd, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph snap {") || !strings.Contains(buf.String(), "0 -> 1;") {
		t.Fatalf("directed DOT wrong:\n%s", buf.String())
	}
}

func TestAttributes(t *testing.T) {
	g := smallGraph(t)
	at := NewAttributes(g)
	if err := at.SetVertexString("name", 0, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := at.SetVertexFloat("score", 1, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := at.SetVertexInt("age", 2, 30); err != nil {
		t.Fatal(err)
	}
	if err := at.SetEdgeString("kind", 0, "friend"); err != nil {
		t.Fatal(err)
	}
	if err := at.SetEdgeFloat("strength", 1, 0.7); err != nil {
		t.Fatal(err)
	}
	if err := at.SetEdgeInt("year", 2, 2008); err != nil {
		t.Fatal(err)
	}
	if at.VertexString("name", 0) != "alice" || at.VertexString("name", 1) != "" {
		t.Fatal("vertex string wrong")
	}
	if at.VertexFloat("score", 1) != 2.5 || at.VertexInt("age", 2) != 30 {
		t.Fatal("vertex numeric wrong")
	}
	if at.EdgeString("kind", 0) != "friend" || at.EdgeFloat("strength", 1) != 0.7 || at.EdgeInt("year", 2) != 2008 {
		t.Fatal("edge attributes wrong")
	}
	if err := at.SetVertexString("name", 99, "x"); err == nil {
		t.Fatal("out-of-range vertex should fail")
	}
	if err := at.SetEdgeInt("year", -1, 0); err == nil {
		t.Fatal("out-of-range edge should fail")
	}
	s, f, i := at.VertexColumns()
	if len(s) != 1 || len(f) != 1 || len(i) != 1 {
		t.Fatalf("columns: %v %v %v", s, f, i)
	}
	sel := at.SelectVertices(func(v int32) bool { return at.VertexInt("age", v) > 0 })
	if len(sel) != 1 || sel[0] != 2 {
		t.Fatalf("select: %v", sel)
	}
}

// Failure injection: truncated and corrupted inputs must return errors,
// never panic.
func TestReadBinaryTruncated(t *testing.T) {
	g := smallGraph(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, 4, 5, 12, 36, len(full) / 2, len(full) - 1} {
		if cut >= len(full) {
			continue
		}
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes silently accepted", cut)
		}
	}
}

func TestReadBinaryCorruptedHeader(t *testing.T) {
	g := smallGraph(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Blow up the vertex count field.
	corrupt := append([]byte(nil), data...)
	for i := 12; i < 20; i++ {
		corrupt[i] = 0xFF
	}
	if _, err := ReadBinary(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("implausible header accepted")
	}
}

func TestQuickReadEdgeListNeverPanics(t *testing.T) {
	check := func(junk string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = ReadEdgeList(strings.NewReader(junk), false)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReadMETISNeverPanics(t *testing.T) {
	check := func(junk string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = ReadMETIS(strings.NewReader(junk))
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
