package graph

import (
	"fmt"

	"snap/internal/par"
)

// Relabel builds the graph with vertices renamed by perm, where
// perm[newID] = oldID (a permutation of [0, n)). It returns the
// relabeled graph and the inverse mapping inv (inv[oldID] = newID), so
// results computed on the relabeled graph map back as
// valueOld[v] = valueNew[inv[v]].
//
// The permutation is applied directly on the CSR arrays — no edge-list
// round trip: new offsets come from a permuted-degree prefix sum, each
// row is scattered with remapped neighbor ids and re-sorted (carrying
// EID and W along), and all passes run data-parallel over disjoint
// rows. Edge ids and weights are preserved arc-for-arc, so relabeling
// commutes with every EID- or weight-indexed kernel.
func Relabel(g *Graph, perm []int32) (*Graph, []int32, error) {
	if err := g.CheckOpen(); err != nil {
		return nil, nil, err
	}
	n := g.NumVertices()
	if len(perm) != n {
		return nil, nil, fmt.Errorf("graph: relabel perm length %d != n %d", len(perm), n)
	}
	inv := make([]int32, n)
	for i := range inv {
		inv[i] = -1
	}
	for newID, oldID := range perm {
		if oldID < 0 || int(oldID) >= n {
			return nil, nil, fmt.Errorf("graph: relabel perm[%d] = %d out of range", newID, oldID)
		}
		if inv[oldID] != -1 {
			return nil, nil, fmt.Errorf("graph: relabel perm not a permutation: %d appears twice", oldID)
		}
		inv[oldID] = int32(newID)
	}

	workers := par.Workers()
	deg := make([]int64, n)
	par.ForChunkedN(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			old := perm[v]
			deg[v] = g.Offsets[old+1] - g.Offsets[old]
		}
	})
	offsets := par.PrefixSum(deg)

	adj := make([]int32, len(g.Adj))
	var eid []int32
	if g.EID != nil {
		eid = make([]int32, len(g.EID))
	}
	var w []float64
	if g.W != nil {
		w = make([]float64, len(g.W))
	}
	sizes := deg // reuse: row sizes for degree-aware chunking
	par.ForDegreeAware(sizes, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			old := perm[v]
			dst := offsets[v]
			src := g.Offsets[old]
			rowLen := int(g.Offsets[old+1] - src)
			for i := 0; i < rowLen; i++ {
				adj[dst+int64(i)] = inv[g.Adj[src+int64(i)]]
			}
			if eid != nil {
				copy(eid[dst:dst+int64(rowLen)], g.EID[src:src+int64(rowLen)])
			}
			if w != nil {
				copy(w[dst:dst+int64(rowLen)], g.W[src:src+int64(rowLen)])
			}
			sortRow(adj[dst:dst+int64(rowLen)],
				eidRow(eid, dst, rowLen), wRow(w, dst, rowLen))
		}
	})
	return WrapCSR(offsets, adj, eid, w, g.Directed(), g.NumEdges()), inv, nil
}

func eidRow(eid []int32, dst int64, n int) []int32 {
	if eid == nil {
		return nil
	}
	return eid[dst : dst+int64(n)]
}

func wRow(w []float64, dst int64, n int) []float64 {
	if w == nil {
		return nil
	}
	return w[dst : dst+int64(n)]
}

// sortRow sorts one adjacency row by neighbor id, carrying the
// parallel eid/weight arrays along: in-place insertion sort for
// typical short rows, switching to an in-place heapsort for hub rows
// where insertion's O(d²) bites. Both are allocation-free and
// deterministic; tie order among multi-edges is deterministic though
// not source-stable on the heapsort path.
func sortRow(adj []int32, eid []int32, w []float64) {
	if len(adj) > 48 {
		heapSortRow(adj, eid, w)
		return
	}
	for i := 1; i < len(adj); i++ {
		ai, var1, var2 := adj[i], int32(0), 0.0
		if eid != nil {
			var1 = eid[i]
		}
		if w != nil {
			var2 = w[i]
		}
		j := i - 1
		for j >= 0 && adj[j] > ai {
			adj[j+1] = adj[j]
			if eid != nil {
				eid[j+1] = eid[j]
			}
			if w != nil {
				w[j+1] = w[j]
			}
			j--
		}
		adj[j+1] = ai
		if eid != nil {
			eid[j+1] = var1
		}
		if w != nil {
			w[j+1] = var2
		}
	}
}

func heapSortRow(adj []int32, eid []int32, w []float64) {
	swap := func(i, j int) {
		adj[i], adj[j] = adj[j], adj[i]
		if eid != nil {
			eid[i], eid[j] = eid[j], eid[i]
		}
		if w != nil {
			w[i], w[j] = w[j], w[i]
		}
	}
	n := len(adj)
	sift := func(root, end int) {
		for {
			child := 2*root + 1
			if child >= end {
				return
			}
			if child+1 < end && adj[child] < adj[child+1] {
				child++
			}
			if adj[root] >= adj[child] {
				return
			}
			swap(root, child)
			root = child
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		sift(i, n)
	}
	for end := n - 1; end > 0; end-- {
		swap(0, end)
		sift(0, end)
	}
}
