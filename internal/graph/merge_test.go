package graph

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// mergeModel is the reference semantics of MergeDelta: a map from
// canonical endpoint pair to weight. Rebuilding via Build over the
// map's pairs is unambiguous (each pair appears once), so the expected
// graph is independent of list order.
type mergeModel struct {
	n        int
	directed bool
	weighted bool
	edges    map[[2]int32]float64
}

func newMergeModel(n int, directed, weighted bool) *mergeModel {
	return &mergeModel{n: n, directed: directed, weighted: weighted, edges: map[[2]int32]float64{}}
}

func (m *mergeModel) key(u, v int32) [2]int32 {
	if !m.directed && u > v {
		u, v = v, u
	}
	return [2]int32{u, v}
}

func (m *mergeModel) apply(add, del []Edge) {
	for _, e := range del {
		if e.U != e.V {
			delete(m.edges, m.key(e.U, e.V))
		}
	}
	for _, e := range add {
		if e.U != e.V {
			m.edges[m.key(e.U, e.V)] = e.W
		}
	}
}

func (m *mergeModel) build(t *testing.T) *Graph {
	t.Helper()
	list := make([]Edge, 0, len(m.edges))
	for k, w := range m.edges {
		list = append(list, Edge{U: k[0], V: k[1], W: w})
	}
	g, err := Build(m.n, list, BuildOptions{Directed: m.directed, Weighted: m.weighted})
	if err != nil {
		t.Fatalf("model build: %v", err)
	}
	return g
}

func randomDelta(rng *rand.Rand, g *Graph, adds, dels int) (add, del []Edge) {
	n := int32(g.NumVertices())
	for i := 0; i < adds; i++ {
		add = append(add, Edge{
			U: rng.Int31n(n), V: rng.Int31n(n),
			W: float64(rng.Intn(16)) + 0.5,
		})
	}
	ends := g.EdgeEndpoints()
	for i := 0; i < dels && len(ends) > 0; i++ {
		e := ends[rng.Intn(len(ends))]
		if rng.Intn(2) == 0 { // deletions in either orientation
			e.U, e.V = e.V, e.U
		}
		del = append(del, e)
	}
	// Sprinkle deletions of pairs that (probably) do not exist.
	for i := 0; i < dels/2; i++ {
		del = append(del, Edge{U: rng.Int31n(n), V: rng.Int31n(n)})
	}
	return add, del
}

// TestMergeDeltaMatchesBuild is the delta-merge tentpole property: a
// chain of merges must stay bit-identical (Offsets/Adj/EID/W) to a
// from-scratch Build of the evolving edge set, for every direction and
// weight combination and any worker count.
func TestMergeDeltaMatchesBuild(t *testing.T) {
	workerCounts := []int{1, 2, 3, runtime.NumCPU()}
	for _, directed := range []bool{false, true} {
		for _, weighted := range []bool{false, true} {
			tag := fmt.Sprintf("dir=%v,w=%v", directed, weighted)
			rng := rand.New(rand.NewSource(7))
			const n = 90
			model := newMergeModel(n, directed, weighted)
			// Seed set.
			var seed []Edge
			for i := 0; i < 400; i++ {
				seed = append(seed, Edge{U: rng.Int31n(n), V: rng.Int31n(n), W: float64(i%9) + 1})
			}
			model.apply(seed, nil)
			g := model.build(t)
			for step := 0; step < 12; step++ {
				add, del := randomDelta(rng, g, 30, 15)
				model.apply(add, del)
				want := model.build(t)
				var ref *Graph
				for _, workers := range workerCounts {
					got, err := MergeDeltaWorkers(g, add, del, workers)
					if err != nil {
						t.Fatalf("%s step %d workers=%d: %v", tag, step, workers, err)
					}
					requireIdentical(t, fmt.Sprintf("%s/step=%d/workers=%d", tag, step, workers), got, want)
					if err := Validate(got); err != nil {
						t.Fatalf("%s step %d: invalid CSR: %v", tag, step, err)
					}
					if ref == nil {
						ref = got
					}
				}
				g = ref // chain: next delta applies to the merged graph
			}
		}
	}
}

func TestMergeDeltaSemantics(t *testing.T) {
	g := MustBuild(5, []Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 3}},
		BuildOptions{Weighted: true})

	t.Run("last-wins duplicate adds", func(t *testing.T) {
		out, err := MergeDelta(g, []Edge{{U: 3, V: 4, W: 7}, {U: 4, V: 3, W: 9}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if id := out.EdgeIDOf(3, 4); id < 0 || out.W[out.Offsets[3]+1] != 9 {
			t.Fatalf("want last-wins weight 9, got graph %v weights %v", out, out.Weights(3))
		}
	})
	t.Run("delete then re-add keeps pair", func(t *testing.T) {
		out, err := MergeDelta(g, []Edge{{U: 1, V: 2, W: 8}}, []Edge{{U: 2, V: 1}})
		if err != nil {
			t.Fatal(err)
		}
		if !out.HasEdge(1, 2) || out.NumEdges() != 3 {
			t.Fatalf("pair in both add and del must survive: %v", out)
		}
		if w := out.Weights(1)[1]; w != 8 {
			t.Fatalf("re-add weight = %g, want 8", w)
		}
	})
	t.Run("weight update of existing pair", func(t *testing.T) {
		out, err := MergeDelta(g, []Edge{{U: 1, V: 0, W: 42}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if out.NumEdges() != 3 || out.Weights(0)[0] != 42 {
			t.Fatalf("weight override failed: m=%d w=%v", out.NumEdges(), out.Weights(0))
		}
	})
	t.Run("delete absent pair is a no-op", func(t *testing.T) {
		out, err := MergeDelta(g, nil, []Edge{{U: 0, V: 4}})
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, "noop-delete", out, g)
	})
	t.Run("empty delta copies", func(t *testing.T) {
		out, err := MergeDelta(g, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, "empty-delta", out, g)
		if &out.Adj[0] == &g.Adj[0] {
			t.Fatal("merge must not alias the input snapshot")
		}
	})
	t.Run("delete everything", func(t *testing.T) {
		out, err := MergeDelta(g, nil, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
		if err != nil {
			t.Fatal(err)
		}
		if out.NumEdges() != 0 || out.NumArcs() != 0 {
			t.Fatalf("want empty graph, got %v", out)
		}
	})
	t.Run("out of range errors", func(t *testing.T) {
		if _, err := MergeDelta(g, []Edge{{U: 0, V: 9}}, nil); err == nil {
			t.Fatal("want error for out-of-range add")
		}
		if _, err := MergeDelta(g, nil, []Edge{{U: -1, V: 2}}); err == nil {
			t.Fatal("want error for out-of-range delete")
		}
	})
	t.Run("self loops dropped", func(t *testing.T) {
		out, err := MergeDelta(g, []Edge{{U: 2, V: 2, W: 5}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, "self-loop-add", out, g)
	})
}

func TestMergeDeltaOnEmptyGraph(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := MustBuild(6, nil, BuildOptions{Directed: directed})
		add := []Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 1, V: 0}}
		out, err := MergeDelta(g, add, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := MustBuild(6, add, BuildOptions{Directed: directed})
		requireIdentical(t, fmt.Sprintf("empty-base/dir=%v", directed), out, want)
	}
}
