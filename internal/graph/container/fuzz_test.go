package container

import (
	"bytes"
	"encoding/binary"
	"testing"

	"snap/internal/graph"
)

// FuzzReadContainer throws arbitrary bytes at Decode. The invariant is
// purely defensive: Decode either errors or returns a graph that
// passes the full Validate — it must never panic, read out of the
// input's bounds, or allocate in proportion to a lying header. The
// corpus seeds valid plain and compressed containers plus targeted
// corruptions: truncations at every section boundary, inflated n/arcs,
// misaligned and out-of-bounds section entries, duplicate sections,
// and mangled varint rows.
func FuzzReadContainer(f *testing.F) {
	g := graph.MustBuild(64, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 3},
		{U: 0, V: 63, W: 4}, {U: 30, V: 40, W: 5}, {U: 40, V: 50, W: 6},
	}, graph.BuildOptions{Weighted: true})
	dg := graph.MustBuild(8, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 0}, {U: 5, V: 3}},
		graph.BuildOptions{Directed: true})

	var seeds [][]byte
	for _, gr := range []*graph.Graph{g, dg} {
		for _, compress := range []bool{false, true} {
			var buf bytes.Buffer
			if err := Encode(&buf, gr, Options{Compress: compress}); err != nil {
				f.Fatal(err)
			}
			valid := buf.Bytes()
			seeds = append(seeds, valid)
			// Truncations: mid-header, each page boundary, ragged tails.
			for _, cut := range []int{0, 3, 17, 47, pageSize - 1, pageSize, pageSize + 5} {
				if cut < len(valid) {
					seeds = append(seeds, valid[:cut])
				}
			}
			for off := pageSize; off < len(valid); off += pageSize {
				seeds = append(seeds, valid[:off])
			}
			// Header corruptions.
			mut := func(f func(b []byte)) {
				b := bytes.Clone(valid)
				f(b)
				seeds = append(seeds, b)
			}
			mut(func(b []byte) { binary.LittleEndian.PutUint64(b[16:], 1<<40) })          // giant n
			mut(func(b []byte) { binary.LittleEndian.PutUint64(b[32:], 1<<40) })          // giant arcs
			mut(func(b []byte) { binary.LittleEndian.PutUint64(b[24:], 1<<40) })          // giant m
			mut(func(b []byte) { binary.LittleEndian.PutUint64(b[8:], 0xff) })            // unknown flags
			mut(func(b []byte) { binary.LittleEndian.PutUint64(b[40:], 99) })             // section count
			mut(func(b []byte) { binary.LittleEndian.PutUint64(b[headerFixed+8:], 17) })  // misaligned off
			mut(func(b []byte) { binary.LittleEndian.PutUint64(b[headerFixed+16:], ^uint64(0)) })
			mut(func(b []byte) { copy(b[headerFixed+24:], b[headerFixed:headerFixed+24]) }) // duplicate id
			mut(func(b []byte) { b[pageSize] ^= 0x40 })                                   // first offsets byte
			if len(valid) > 2*pageSize {
				mut(func(b []byte) { b[2*pageSize+1] ^= 0x81 }) // adjacency/varint bytes
			}
			mut(func(b []byte) { b[len(b)-1] ^= 0xff })
		}
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, opt := range []LoadOptions{{Validate: true}, {ForceCopy: true, Validate: true}} {
			got, err := Decode(data, opt)
			if err != nil {
				continue
			}
			if verr := graph.Validate(got); verr != nil {
				// Validate passed inside Decode; a mismatch here means
				// Decode returned slices that changed under it.
				t.Fatalf("Decode accepted, re-Validate failed: %v", verr)
			}
		}
	})
}
