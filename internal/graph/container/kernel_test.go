package container

import (
	"path/filepath"
	"testing"

	"snap/internal/bfs"
	"snap/internal/community"
	"snap/internal/components"
	"snap/internal/generate"
	"snap/internal/graph"
	"snap/internal/sssp"
)

// TestKernelEquivalenceMapped pins the acceptance criterion that every
// kernel class runs bit-identically on a mapped graph: the
// level-synchronous frontier engine (BFS), the weighted CAS-relaxation
// engine (delta-stepping SSSP), label propagation (connected
// components), and the community move engine (Louvain), each compared
// against the same kernel on the heap-built original — for the plain
// mapped container and the varint decoded view.
func TestKernelEquivalenceMapped(t *testing.T) {
	heap := generate.RMAT(1<<12, 1<<15, generate.DefaultRMAT(), 99)
	// Give it weights deterministically so the weighted path is real.
	w := make([]float64, len(heap.Adj))
	eidw := make([]float64, heap.NumEdges())
	for i := range eidw {
		eidw[i] = 0.25 + float64((i*2654435761)%1000)/500
	}
	for a := range w {
		w[a] = eidw[heap.EID[a]]
	}
	heap = graph.WrapCSR(heap.Offsets, heap.Adj, heap.EID, w, heap.Directed(), heap.NumEdges())

	dir := t.TempDir()
	for _, compress := range []bool{false, true} {
		name := "plain"
		if compress {
			name = "compressed"
		}
		p := filepath.Join(dir, name+".snp2")
		if err := Save(p, heap, Options{Compress: compress}); err != nil {
			t.Fatal(err)
		}
		mapped, err := Load(p, LoadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			for _, src := range []int32{0, 1, 511} {
				hb := bfs.Parallel(heap, src, bfs.Options{DegreeAware: true})
				mb := bfs.Parallel(mapped, src, bfs.Options{DegreeAware: true})
				for v := range hb.Dist {
					if hb.Dist[v] != mb.Dist[v] || hb.Parent[v] != mb.Parent[v] {
						t.Fatalf("BFS from %d differs at %d: (%d,%d) vs (%d,%d)",
							src, v, mb.Dist[v], mb.Parent[v], hb.Dist[v], hb.Parent[v])
					}
				}
				hs := sssp.DeltaStepping(heap, src, sssp.DeltaSteppingOptions{})
				ms := sssp.DeltaStepping(mapped, src, sssp.DeltaSteppingOptions{})
				for v := range hs.Dist {
					if hs.Dist[v] != ms.Dist[v] || hs.Parent[v] != ms.Parent[v] {
						t.Fatalf("SSSP from %d differs at %d: (%v,%d) vs (%v,%d)",
							src, v, ms.Dist[v], ms.Parent[v], hs.Dist[v], hs.Parent[v])
					}
				}
			}
			hc := components.ConnectedParallel(heap, nil, 0)
			mc := components.ConnectedParallel(mapped, nil, 0)
			for v := range hc.Comp {
				if hc.Comp[v] != mc.Comp[v] {
					t.Fatalf("components differ at %d: %d vs %d", v, mc.Comp[v], hc.Comp[v])
				}
			}
			hl := community.Louvain(heap, community.LouvainOptions{Seed: 3})
			ml := community.Louvain(mapped, community.LouvainOptions{Seed: 3})
			if hl.Count != ml.Count {
				t.Fatalf("Louvain community counts differ: %d vs %d", ml.Count, hl.Count)
			}
			for v := range hl.Assign {
				if hl.Assign[v] != ml.Assign[v] {
					t.Fatalf("Louvain differs at %d: %d vs %d", v, ml.Assign[v], hl.Assign[v])
				}
			}
		})
		if err := mapped.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
