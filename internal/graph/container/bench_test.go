package container

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"

	"snap/internal/generate"
	"snap/internal/graph"
)

func benchScale(b *testing.B) int {
	if s := os.Getenv("SNAP_BENCH_SCALE"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 || v > 28 {
			b.Fatalf("bad SNAP_BENCH_SCALE %q", s)
		}
		return v
	}
	if testing.Short() {
		return 14
	}
	return 18
}

// BenchmarkLoad compares every load path on one RMAT graph: text
// parse, SNP1 stream read, mapped SNP2, and varint-compressed SNP2
// (scale set by -short: 14, default 18; EXPERIMENTS.md records scale
// 18/20 runs via SNAP_BENCH_SCALE). Each sub-benchmark reports the
// on-disk artifact size as file-MB.
func BenchmarkLoad(b *testing.B) {
	scale := benchScale(b)
	g := generate.RMAT(1<<scale, 8<<scale, generate.DefaultRMAT(), 42)

	var text bytes.Buffer
	if err := graph.WriteEdgeList(&text, g); err != nil {
		b.Fatal(err)
	}
	var snp1 bytes.Buffer
	if err := graph.WriteBinary(&snp1, g); err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	plain := filepath.Join(dir, "g.snp2")
	if err := Save(plain, g, Options{}); err != nil {
		b.Fatal(err)
	}
	compressed := filepath.Join(dir, "g.csnp2")
	if err := Save(compressed, g, Options{Compress: true}); err != nil {
		b.Fatal(err)
	}
	fileMB := func(path string) float64 {
		st, err := os.Stat(path)
		if err != nil {
			b.Fatal(err)
		}
		return float64(st.Size()) / (1 << 20)
	}

	b.Run(fmt.Sprintf("rmat%d/text", scale), func(b *testing.B) {
		b.ReportMetric(float64(text.Len())/(1<<20), "file-MB")
		for i := 0; i < b.N; i++ {
			if _, err := graph.ReadEdgeList(bytes.NewReader(text.Bytes()), false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("rmat%d/snp1", scale), func(b *testing.B) {
		b.ReportMetric(float64(snp1.Len())/(1<<20), "file-MB")
		for i := 0; i < b.N; i++ {
			if _, err := graph.ReadBinary(bytes.NewReader(snp1.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("rmat%d/snp2-mmap", scale), func(b *testing.B) {
		b.ReportMetric(fileMB(plain), "file-MB")
		for i := 0; i < b.N; i++ {
			lg, err := Load(plain, LoadOptions{})
			if err != nil {
				b.Fatal(err)
			}
			lg.Close()
		}
	})
	b.Run(fmt.Sprintf("rmat%d/snp2-compressed", scale), func(b *testing.B) {
		b.ReportMetric(fileMB(compressed), "file-MB")
		for i := 0; i < b.N; i++ {
			lg, err := Load(compressed, LoadOptions{})
			if err != nil {
				b.Fatal(err)
			}
			lg.Close()
		}
	})
}

// BenchmarkSave measures container writes (the one-time conversion
// cost a graph pays to become mappable).
func BenchmarkSave(b *testing.B) {
	scale := benchScale(b)
	g := generate.RMAT(1<<scale, 8<<scale, generate.DefaultRMAT(), 42)
	dir := b.TempDir()
	for _, compress := range []bool{false, true} {
		tag := "plain"
		if compress {
			tag = "compressed"
		}
		b.Run(fmt.Sprintf("rmat%d/%s", scale, tag), func(b *testing.B) {
			p := filepath.Join(dir, tag+".snp2")
			for i := 0; i < b.N; i++ {
				if err := Save(p, g, Options{Compress: compress}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestMappedLoadAllocationsO1 pins the zero-copy claim: loading a
// mapped container allocates a constant few kilobytes (header parse,
// Graph struct, closer) regardless of graph size — while the sections
// it would otherwise copy span megabytes.
func TestMappedLoadAllocationsO1(t *testing.T) {
	g := generate.RMAT(1<<14, 8<<14, generate.DefaultRMAT(), 42)
	p := filepath.Join(t.TempDir(), "g.snp2")
	if err := Save(p, g, Options{}); err != nil {
		t.Fatal(err)
	}
	st, _ := os.Stat(p)

	// Warm up once (lazy runtime init), then measure.
	warm, err := Load(p, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	warm.Close()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	lg, err := Load(p, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	defer lg.Close()
	allocated := after.TotalAlloc - before.TotalAlloc
	if allocated > 1<<16 {
		t.Fatalf("mapped load allocated %d bytes (file is %d); expected O(1) (< 64 KiB)", allocated, st.Size())
	}
	if lg.NumVertices() != g.NumVertices() || lg.NumArcs() != g.NumArcs() {
		t.Fatalf("loaded shape %v differs from %v", lg, g)
	}
}
