//go:build !linux && !darwin

package container

import (
	"io"
	"os"
)

// mapFile is the portable fallback for hosts without a wired mmap: it
// reads the file into heap memory. The nil release func tells Load the
// bytes have no lifetime beyond garbage collection, so no closer or
// finalizer is registered.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, nil, nil
}
