// Package container implements SNP2, the versioned zero-copy binary
// CSR container. A container file is a 4 KiB header page followed by
// page-aligned sections holding the raw little-endian CSR arrays
// (Offsets, Adj, EID, W) or, in the compressed variant, a varint
// delta-encoded adjacency section exploiting the sorted-neighbor
// guarantee of the CSR builder.
//
// Because every section starts on a page boundary, a mapped file is
// correctly aligned for direct reinterpretation: on little-endian
// hosts Load mmaps the file and the returned graph's slices alias the
// mapping — load time is O(1) in the graph size, warm loads allocate
// O(1) memory, multiple processes share one page-cache copy, and
// graphs larger than RAM degrade to demand paging. The compressed
// variant trades that for ~2x smaller adjacency: its Adj section is
// materialized on load by a parallel per-vertex decoder (the decoded
// view), while the remaining sections still alias the mapping.
//
// Lifetime: a mapped graph holds the mapping until Graph.Close; a
// finalizer backstops leaked graphs. Slices handed out by the graph
// (Neighbors, Weights, ...) alias the mapping and die with it. See
// DESIGN.md §5g for the format layout and the full lifetime rules.
package container

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"runtime"

	"snap/internal/graph"
	"snap/internal/lebytes"
)

const (
	pageSize = 4096

	version = 1

	flagDirected   = 1 << 0
	flagWeighted   = 1 << 1
	flagCompressed = 1 << 2
	flagsKnown     = flagDirected | flagWeighted | flagCompressed

	// Section ids. Offsets/EID (and W when weighted) appear in every
	// container; Adj appears in uncompressed containers, COff+CAdj in
	// compressed ones.
	secOffsets = 1 // (n+1) int64 arc offsets
	secAdj     = 2 // arcs int32 neighbor ids
	secEID     = 3 // arcs int32 edge ids
	secW       = 4 // arcs float64 weights
	secCOff    = 5 // (n+1) int64 byte offsets into CAdj
	secCAdj    = 6 // varint delta-encoded adjacency bytes
	maxSecID   = 6

	headerFixed  = 48 // magic, version, flags, n, m, arcs, nsec
	secEntrySize = 24 // id, off, len
)

var magic = [4]byte{'S', 'N', 'P', '2'}

// Options controls Save/Encode.
type Options struct {
	// Compress varint delta-encodes the adjacency section. Loading then
	// materializes the neighbor array on the heap (parallel decode)
	// instead of aliasing it, trading load time and resident adjacency
	// for ~2x smaller adjacency bytes and less page-cache footprint.
	Compress bool
}

// LoadOptions controls Load/Decode.
type LoadOptions struct {
	// ForceCopy materializes every section on the heap instead of
	// aliasing the mapping (or input bytes). The mapping is released
	// before Load returns; use it when the graph must outlive the file.
	ForceCopy bool
	// Validate runs the full graph.Validate invariant check on the
	// loaded graph (O(n + arcs), touches every page). The default load
	// verifies the header, section table, and offset monotonicity only;
	// kernels index the remaining sections unchecked, so turn this on
	// for containers from untrusted sources.
	Validate bool
}

// span is one parsed section-table entry.
type span struct {
	off, n  int64
	present bool
}

// header is the parsed and bounds-checked header page.
type header struct {
	flags   uint64
	n       int64
	m       int64
	arcs    int64
	secs    [maxSecID + 1]span
	fileLen int64
}

func (h *header) directed() bool   { return h.flags&flagDirected != 0 }
func (h *header) weighted() bool   { return h.flags&flagWeighted != 0 }
func (h *header) compressed() bool { return h.flags&flagCompressed != 0 }

// pad returns x rounded up to the next page boundary.
func pad(x int64) int64 { return (x + pageSize - 1) &^ (pageSize - 1) }

// Save writes g to path as an SNP2 container.
func Save(path string, g *graph.Graph, opt Options) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Encode(f, g, opt); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// Encode writes g to w in the SNP2 container layout. The output is
// deterministic for a given graph and options (section contents are
// independent of the worker count).
func Encode(w io.Writer, g *graph.Graph, opt Options) error {
	if err := g.CheckOpen(); err != nil {
		return err
	}
	n := int64(g.NumVertices())
	arcs := int64(len(g.Adj))
	var flags uint64
	if g.Directed() {
		flags |= flagDirected
	}
	if g.Weighted() {
		flags |= flagWeighted
	}

	type section struct {
		id    uint64
		bytes int64
		write func(io.Writer) error
	}
	secs := []section{{secOffsets, 8 * (n + 1), func(w io.Writer) error {
		return lebytes.WriteInt64s(w, g.Offsets)
	}}}
	if opt.Compress {
		flags |= flagCompressed
		coff, cbuf := encodeAdjacency(g)
		secs = append(secs,
			section{secCOff, 8 * (n + 1), func(w io.Writer) error {
				return lebytes.WriteInt64s(w, coff)
			}},
			section{secCAdj, int64(len(cbuf)), func(w io.Writer) error {
				_, err := w.Write(cbuf)
				return err
			}})
	} else {
		secs = append(secs, section{secAdj, 4 * arcs, func(w io.Writer) error {
			return lebytes.WriteInt32s(w, g.Adj)
		}})
	}
	secs = append(secs, section{secEID, 4 * arcs, func(w io.Writer) error {
		return lebytes.WriteInt32s(w, g.EID)
	}})
	if g.Weighted() {
		secs = append(secs, section{secW, 8 * arcs, func(w io.Writer) error {
			return lebytes.WriteFloat64s(w, g.W)
		}})
	}

	// Header page: fixed fields plus the section table, zero padded.
	hdr := make([]byte, pageSize)
	copy(hdr, magic[:])
	binary.LittleEndian.PutUint32(hdr[4:], version)
	binary.LittleEndian.PutUint64(hdr[8:], flags)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(n))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(g.NumEdges()))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(arcs))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(len(secs)))
	off := int64(pageSize)
	for i, s := range secs {
		e := hdr[headerFixed+i*secEntrySize:]
		binary.LittleEndian.PutUint64(e, s.id)
		binary.LittleEndian.PutUint64(e[8:], uint64(off))
		binary.LittleEndian.PutUint64(e[16:], uint64(s.bytes))
		off += pad(s.bytes)
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	zeros := make([]byte, pageSize)
	for _, s := range secs {
		if err := s.write(w); err != nil {
			return err
		}
		if tail := pad(s.bytes) - s.bytes; tail > 0 {
			if _, err := w.Write(zeros[:tail]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Load opens an SNP2 container by memory mapping (on linux/darwin; a
// read-into-heap fallback elsewhere). The returned graph's slices
// alias the mapping unless opt.ForceCopy or the compressed adjacency
// arm materializes them; call Close on the graph to release the
// mapping. A finalizer backstops graphs that are dropped unclosed.
func Load(path string, opt LoadOptions) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < pageSize {
		return nil, fmt.Errorf("container: %s: %d bytes is smaller than the header page", path, size)
	}
	data, unmap, err := mapFile(f, size)
	if err != nil {
		return nil, fmt.Errorf("container: map %s: %w", path, err)
	}
	g, err := Decode(data, opt)
	if err != nil || opt.ForceCopy {
		if unmap != nil {
			unmap()
		}
		return g, err
	}
	if unmap != nil {
		g.SetCloser(unmap)
		runtime.SetFinalizer(g, (*graph.Graph).Close)
	}
	return g, nil
}

// Decode reconstructs a graph from the bytes of an SNP2 container.
// Unless opt.ForceCopy, the graph's slices alias data (zero copy on
// aligned little-endian input), so data must stay live and immutable
// for the graph's lifetime. Every header and section-table field is
// bounds-checked against len(data) before any allocation, so corrupt
// or truncated input yields an error, never a giant allocation or an
// out-of-range read.
func Decode(data []byte, opt LoadOptions) (*graph.Graph, error) {
	h, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	offsets, err := int64Section(data, h.secs[secOffsets], opt.ForceCopy)
	if err != nil {
		return nil, fmt.Errorf("container: offsets section: %w", err)
	}
	if err := checkMonotone("offsets", offsets, h.arcs); err != nil {
		return nil, err
	}

	var adj []int32
	if h.compressed() {
		coff, err := int64Section(data, h.secs[secCOff], false)
		if err != nil {
			return nil, fmt.Errorf("container: compressed-offset section: %w", err)
		}
		if err := checkMonotone("compressed offsets", coff, h.secs[secCAdj].n); err != nil {
			return nil, err
		}
		cadj := data[h.secs[secCAdj].off : h.secs[secCAdj].off+h.secs[secCAdj].n]
		adj, err = decodeAdjacency(int(h.n), offsets, coff, cadj)
		if err != nil {
			return nil, err
		}
	} else {
		adj, err = int32Section(data, h.secs[secAdj], opt.ForceCopy)
		if err != nil {
			return nil, fmt.Errorf("container: adjacency section: %w", err)
		}
	}

	eid, err := int32Section(data, h.secs[secEID], opt.ForceCopy)
	if err != nil {
		return nil, fmt.Errorf("container: edge-id section: %w", err)
	}
	var w []float64
	if h.weighted() {
		w, err = float64Section(data, h.secs[secW], opt.ForceCopy)
		if err != nil {
			return nil, fmt.Errorf("container: weight section: %w", err)
		}
	}

	g := graph.WrapCSR(offsets, adj, eid, w, h.directed(), int(h.m))
	if opt.Validate {
		if err := graph.Validate(g); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// parseHeader validates the header page and section table against the
// actual input length.
func parseHeader(data []byte) (*header, error) {
	if len(data) < pageSize {
		return nil, fmt.Errorf("container: %d bytes is smaller than the header page", len(data))
	}
	if [4]byte(data[:4]) != magic {
		return nil, fmt.Errorf("container: bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != version {
		return nil, fmt.Errorf("container: unsupported version %d", v)
	}
	h := &header{
		flags:   binary.LittleEndian.Uint64(data[8:]),
		fileLen: int64(len(data)),
	}
	if h.flags&^uint64(flagsKnown) != 0 {
		return nil, fmt.Errorf("container: unknown flags %#x", h.flags)
	}
	n := binary.LittleEndian.Uint64(data[16:])
	m := binary.LittleEndian.Uint64(data[24:])
	arcs := binary.LittleEndian.Uint64(data[32:])
	nsec := binary.LittleEndian.Uint64(data[40:])
	if n > 1<<31 || arcs > 1<<33 || m > arcs {
		return nil, fmt.Errorf("container: implausible sizes n=%d m=%d arcs=%d", n, m, arcs)
	}
	h.n, h.m, h.arcs = int64(n), int64(m), int64(arcs)
	if nsec > maxSecID {
		return nil, fmt.Errorf("container: %d sections exceeds the format's %d", nsec, maxSecID)
	}
	for i := 0; i < int(nsec); i++ {
		e := data[headerFixed+i*secEntrySize:]
		id := binary.LittleEndian.Uint64(e)
		off := binary.LittleEndian.Uint64(e[8:])
		ln := binary.LittleEndian.Uint64(e[16:])
		if id < 1 || id > maxSecID {
			return nil, fmt.Errorf("container: unknown section id %d", id)
		}
		if h.secs[id].present {
			return nil, fmt.Errorf("container: duplicate section id %d", id)
		}
		if off%pageSize != 0 || off < pageSize {
			return nil, fmt.Errorf("container: section %d misaligned at offset %d", id, off)
		}
		if off > uint64(h.fileLen) || ln > uint64(h.fileLen)-off {
			return nil, fmt.Errorf("container: section %d [%d,+%d) exceeds the %d-byte input", id, off, ln, h.fileLen)
		}
		h.secs[id] = span{off: int64(off), n: int64(ln), present: true}
	}

	want := func(id int, bytes int64, what string) error {
		s := h.secs[id]
		if !s.present {
			return fmt.Errorf("container: missing %s section", what)
		}
		if s.n != bytes {
			return fmt.Errorf("container: %s section is %d bytes, want %d", what, s.n, bytes)
		}
		return nil
	}
	if err := want(secOffsets, 8*(h.n+1), "offsets"); err != nil {
		return nil, err
	}
	if err := want(secEID, 4*h.arcs, "edge-id"); err != nil {
		return nil, err
	}
	if h.compressed() {
		if err := want(secCOff, 8*(h.n+1), "compressed-offset"); err != nil {
			return nil, err
		}
		if !h.secs[secCAdj].present {
			return nil, fmt.Errorf("container: missing compressed-adjacency section")
		}
	} else if err := want(secAdj, 4*h.arcs, "adjacency"); err != nil {
		return nil, err
	}
	if h.weighted() {
		if err := want(secW, 8*h.arcs, "weight"); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// int64Section views (or copies) a section as []int64.
func int64Section(data []byte, s span, forceCopy bool) ([]int64, error) {
	b := data[s.off : s.off+s.n]
	if !forceCopy {
		if v, ok := lebytes.AliasInt64s(b); ok {
			return v, nil
		}
	}
	dst := make([]int64, len(b)/8)
	lebytes.BytesToInt64s(dst, b)
	return dst, nil
}

func int32Section(data []byte, s span, forceCopy bool) ([]int32, error) {
	b := data[s.off : s.off+s.n]
	if !forceCopy {
		if v, ok := lebytes.AliasInt32s(b); ok {
			return v, nil
		}
	}
	dst := make([]int32, len(b)/4)
	lebytes.BytesToInt32s(dst, b)
	return dst, nil
}

func float64Section(data []byte, s span, forceCopy bool) ([]float64, error) {
	b := data[s.off : s.off+s.n]
	if !forceCopy {
		if v, ok := lebytes.AliasFloat64s(b); ok {
			return v, nil
		}
	}
	dst := make([]float64, len(b)/8)
	lebytes.BytesToFloat64s(dst, b)
	return dst, nil
}

// checkMonotone verifies an offset array starts at 0, ends at total,
// and never decreases — the invariant that keeps kernels (and the
// varint decoder) from indexing out of range. O(n) sequential scan;
// cheap next to the sections it guards.
func checkMonotone(what string, offsets []int64, total int64) error {
	if len(offsets) == 0 {
		return fmt.Errorf("container: empty %s array", what)
	}
	if offsets[0] != 0 || offsets[len(offsets)-1] != total {
		return fmt.Errorf("container: %s array spans [%d,%d], want [0,%d]", what, offsets[0], offsets[len(offsets)-1], total)
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			return fmt.Errorf("container: %s array decreases at %d", what, i)
		}
	}
	return nil
}
