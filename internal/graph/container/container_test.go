package container

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"snap/internal/graph"
)

// equalGraphs reports the first difference between two graphs at the
// bit level (weights compared by bits via the raw slices).
func equalGraphs(t *testing.T, tag string, got, want *graph.Graph) {
	t.Helper()
	if got.Directed() != want.Directed() || got.NumEdges() != want.NumEdges() || got.Weighted() != want.Weighted() {
		t.Fatalf("%s: shape: directed %v/%v edges %d/%d weighted %v/%v", tag,
			got.Directed(), want.Directed(), got.NumEdges(), want.NumEdges(), got.Weighted(), want.Weighted())
	}
	if len(got.Offsets) != len(want.Offsets) {
		t.Fatalf("%s: offsets length %d want %d", tag, len(got.Offsets), len(want.Offsets))
	}
	for i := range want.Offsets {
		if got.Offsets[i] != want.Offsets[i] {
			t.Fatalf("%s: offsets[%d] = %d want %d", tag, i, got.Offsets[i], want.Offsets[i])
		}
	}
	if len(got.Adj) != len(want.Adj) || len(got.EID) != len(want.EID) {
		t.Fatalf("%s: arc arrays sized %d/%d want %d/%d", tag, len(got.Adj), len(got.EID), len(want.Adj), len(want.EID))
	}
	for i := range want.Adj {
		if got.Adj[i] != want.Adj[i] {
			t.Fatalf("%s: adj[%d] = %d want %d", tag, i, got.Adj[i], want.Adj[i])
		}
		if got.EID[i] != want.EID[i] {
			t.Fatalf("%s: eid[%d] = %d want %d", tag, i, got.EID[i], want.EID[i])
		}
	}
	for i := range want.W {
		if got.W[i] != want.W[i] {
			t.Fatalf("%s: w[%d] = %v want %v", tag, i, got.W[i], want.W[i])
		}
	}
}

// testGraphs builds the round-trip corpus: empty, singleton, isolated
// vertices (empty rows), a path, a clique row (dense), a hub star with
// neighbors below and above the hub id (negative first delta), a
// multigraph (zero gaps), and random graphs, across the directed x
// weighted matrix.
func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	out := map[string]*graph.Graph{}
	add := func(name string, n int, edges []graph.Edge, opt graph.BuildOptions) {
		g, err := graph.Build(n, edges, opt)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		out[name] = g
	}
	add("empty", 0, nil, graph.BuildOptions{})
	add("singleton", 1, nil, graph.BuildOptions{})
	add("isolated", 5, []graph.Edge{{U: 1, V: 3, W: 2}}, graph.BuildOptions{Weighted: true})
	path := make([]graph.Edge, 99)
	for i := range path {
		path[i] = graph.Edge{U: int32(i), V: int32(i + 1), W: float64(i)}
	}
	add("path", 100, path, graph.BuildOptions{})
	add("path-directed-weighted", 100, path, graph.BuildOptions{Directed: true, Weighted: true})
	var clique []graph.Edge
	for u := int32(0); u < 40; u++ {
		for v := u + 1; v < 40; v++ {
			clique = append(clique, graph.Edge{U: u, V: v, W: rng.Float64()})
		}
	}
	add("clique", 40, clique, graph.BuildOptions{Weighted: true})
	var star []graph.Edge
	for v := int32(0); v < 64; v++ {
		if v != 32 {
			star = append(star, graph.Edge{U: 32, V: v})
		}
	}
	add("star", 64, star, graph.BuildOptions{Directed: true})
	add("multi", 4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 1}, {U: 0, V: 1}, {U: 2, V: 3}},
		graph.BuildOptions{AllowMulti: true})
	for _, directed := range []bool{false, true} {
		for _, weighted := range []bool{false, true} {
			edges := make([]graph.Edge, 4000)
			for i := range edges {
				edges[i] = graph.Edge{U: rng.Int31n(800), V: rng.Int31n(800), W: rng.NormFloat64()}
			}
			name := "rand"
			if directed {
				name += "-directed"
			}
			if weighted {
				name += "-weighted"
			}
			add(name, 800, edges, graph.BuildOptions{Directed: directed, Weighted: weighted})
		}
	}
	return out
}

// TestRoundTripBytes pins Encode -> Decode as the identity for every
// corpus graph, across compressed x forceCopy, with full validation.
func TestRoundTripBytes(t *testing.T) {
	for name, g := range testGraphs(t) {
		// graph.Validate rejects parallel arcs (its symmetry probe
		// resolves by binary search), so the multigraph round-trips
		// without the full invariant check, as with SNP1.
		validate := name != "multi"
		for _, compress := range []bool{false, true} {
			var buf bytes.Buffer
			if err := Encode(&buf, g, Options{Compress: compress}); err != nil {
				t.Fatalf("%s: encode(compress=%v): %v", name, compress, err)
			}
			for _, forceCopy := range []bool{false, true} {
				got, err := Decode(buf.Bytes(), LoadOptions{ForceCopy: forceCopy, Validate: validate})
				if err != nil {
					t.Fatalf("%s: decode(compress=%v, copy=%v): %v", name, compress, forceCopy, err)
				}
				equalGraphs(t, name, got, g)
			}
		}
	}
}

// TestRoundTripFile pins Save -> Load through the real mapping path,
// including Close (explicitly and doubled, for idempotence).
func TestRoundTripFile(t *testing.T) {
	dir := t.TempDir()
	for name, g := range testGraphs(t) {
		validate := name != "multi" // see TestRoundTripBytes
		for _, compress := range []bool{false, true} {
			p := filepath.Join(dir, name+".snp2")
			if err := Save(p, g, Options{Compress: compress}); err != nil {
				t.Fatalf("%s: save: %v", name, err)
			}
			got, err := Load(p, LoadOptions{Validate: validate})
			if err != nil {
				t.Fatalf("%s: load: %v", name, err)
			}
			equalGraphs(t, name, got, g)
			if err := got.Close(); err != nil {
				t.Fatalf("%s: close: %v", name, err)
			}
			if err := got.Close(); err != nil {
				t.Fatalf("%s: second close: %v", name, err)
			}

			// ForceCopy graphs must survive the mapping's release.
			cp, err := Load(p, LoadOptions{ForceCopy: true, Validate: validate})
			if err != nil {
				t.Fatalf("%s: load copy: %v", name, err)
			}
			equalGraphs(t, name, cp, g)
			if cp.Close() != nil {
				t.Fatalf("%s: copy close should be a no-op", name)
			}
		}
	}
}

// TestFormatChain exercises the full conversion chain of the cmd
// tools: text edge list -> SNP1 -> SNP2 -> compressed SNP2 -> text,
// asserting the graph is unchanged at every hop.
func TestFormatChain(t *testing.T) {
	for name, g := range testGraphs(t) {
		if name == "multi" {
			continue // text round trip rebuilds, collapsing parallel edges
		}
		var text bytes.Buffer
		if err := graph.WriteEdgeList(&text, g); err != nil {
			t.Fatal(err)
		}
		g1, err := graph.ReadEdgeList(bytes.NewReader(text.Bytes()), g.Directed())
		if err != nil {
			t.Fatalf("%s: text: %v", name, err)
		}
		equalGraphs(t, name+" text", g1, g)

		var snp1 bytes.Buffer
		if err := graph.WriteBinary(&snp1, g1); err != nil {
			t.Fatal(err)
		}
		g2, err := graph.ReadBinary(bytes.NewReader(snp1.Bytes()))
		if err != nil {
			t.Fatalf("%s: snp1: %v", name, err)
		}
		equalGraphs(t, name+" snp1", g2, g1)

		var snp2 bytes.Buffer
		if err := Encode(&snp2, g2, Options{}); err != nil {
			t.Fatal(err)
		}
		g3, err := Decode(snp2.Bytes(), LoadOptions{Validate: true})
		if err != nil {
			t.Fatalf("%s: snp2: %v", name, err)
		}
		equalGraphs(t, name+" snp2", g3, g2)

		var csnp2 bytes.Buffer
		if err := Encode(&csnp2, g3, Options{Compress: true}); err != nil {
			t.Fatal(err)
		}
		g4, err := Decode(csnp2.Bytes(), LoadOptions{Validate: true})
		if err != nil {
			t.Fatalf("%s: compressed snp2: %v", name, err)
		}
		equalGraphs(t, name+" csnp2", g4, g3)
	}
}

// TestVarintRoundTrip pins the codec primitives across the value
// range, including the 10-byte maximum and overflow rejection.
func TestVarintRoundTrip(t *testing.T) {
	var buf [12]byte
	cases := []uint64{0, 1, 127, 128, 300, 1 << 14, 1<<14 - 1, 1 << 21, 1<<63 - 1, 1 << 63, ^uint64(0)}
	for _, want := range cases {
		n := putUvarint(buf[:], want)
		if int64(n) != uvarintLen(want) {
			t.Fatalf("uvarintLen(%d) = %d, encoder wrote %d", want, uvarintLen(want), n)
		}
		got, sz := uvarint(buf[:n])
		if got != want || sz != n {
			t.Fatalf("uvarint(%d): got %d size %d want size %d", want, got, sz, n)
		}
		if _, sz := uvarint(buf[:n-1]); sz != 0 {
			t.Fatalf("truncated uvarint(%d) accepted", want)
		}
	}
	overflow := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02}
	if _, sz := uvarint(overflow); sz != 0 {
		t.Fatal("65-bit uvarint accepted")
	}
	for _, d := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), 1<<63 - 1, -1 << 63} {
		if got := unzigzag(zigzag(d)); got != d {
			t.Fatalf("zigzag round trip %d -> %d", d, got)
		}
	}
}

// TestDecodeRejectsCorruption flips bytes in valid containers and
// requires Decode to error or produce a validating graph — never
// panic. (The fuzz target explores this space further.)
func TestDecodeRejectsCorruption(t *testing.T) {
	g := testGraphs(t)["rand-weighted"]
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		if err := Encode(&buf, g, Options{Compress: compress}); err != nil {
			t.Fatal(err)
		}
		valid := buf.Bytes()
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 2000; trial++ {
			data := bytes.Clone(valid)
			// Corrupt 1-8 bytes, biased toward the header page.
			for k := 0; k <= rng.Intn(8); k++ {
				i := rng.Intn(len(data))
				if rng.Intn(2) == 0 {
					i = rng.Intn(pageSize)
				}
				data[i] ^= byte(1 + rng.Intn(255))
			}
			// Sometimes truncate too.
			if rng.Intn(4) == 0 {
				data = data[:rng.Intn(len(data))]
			}
			if got, err := Decode(data, LoadOptions{ForceCopy: true, Validate: true}); err == nil {
				if verr := graph.Validate(got); verr != nil {
					t.Fatalf("compress=%v trial %d: decode accepted a graph failing Validate: %v", compress, trial, verr)
				}
			}
		}
	}
}

// TestLoadErrors pins the clean-error paths: missing file, short file,
// directory.
func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "absent.snp2"), LoadOptions{}); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
	short := filepath.Join(dir, "short.snp2")
	if err := writeFileBytes(short, []byte("SNP2 but far too short")); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(short, LoadOptions{}); err == nil {
		t.Fatal("loading a sub-header file succeeded")
	}
	if _, err := Load(dir, LoadOptions{}); err == nil {
		t.Fatal("loading a directory succeeded")
	}
}

func writeFileBytes(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}
