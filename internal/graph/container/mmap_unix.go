//go:build linux || darwin

package container

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only and shared (one page-cache
// copy across every process mapping the same container). The returned
// release func unmaps; until then the bytes stay valid independent of
// the *os.File, which the caller may close.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, nil, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
