package container

import (
	"fmt"
	"math/bits"

	"snap/internal/graph"
	"snap/internal/par"
)

// Varint delta compression of the adjacency section.
//
// The CSR builder guarantees each vertex's neighbors are sorted
// ascending, so consecutive gaps are non-negative and — on locality-
// relabeled graphs — small. Per vertex v with neighbors a_0 <= a_1 <=
// ... the row encodes zigzag(a_0 - v) (the first neighbor is near v on
// relabeled graphs, but the difference can be negative) followed by
// the plain gaps a_i - a_{i-1}, all as LEB128 uvarints. A parallel
// int64 prefix sum over per-row byte lengths (COff, stored alongside)
// makes every row independently addressable, which is what lets both
// the encoder and the decoder scatter rows across workers with no
// synchronization — the counts -> cursors -> scatter pattern of the
// CSR assembly kernel, with byte lengths as the counts.

// zigzag maps a signed delta onto the unsigned varint domain.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvarintLen is the LEB128-encoded size of x in bytes.
func uvarintLen(x uint64) int64 { return int64(bits.Len64(x|1)+6) / 7 }

// putUvarint encodes x into b (which must have room) and returns the
// bytes written.
func putUvarint(b []byte, x uint64) int {
	i := 0
	for x >= 0x80 {
		b[i] = byte(x) | 0x80
		x >>= 7
		i++
	}
	b[i] = byte(x)
	return i + 1
}

// uvarint decodes a LEB128 value from b, returning the value and the
// bytes consumed (0 when b is truncated or the value overflows 64
// bits).
func uvarint(b []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, c := range b {
		if i == 10 {
			return 0, 0 // > 64 bits
		}
		if c < 0x80 {
			if i == 9 && c > 1 {
				return 0, 0
			}
			return x | uint64(c)<<s, i + 1
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, 0
}

// encodeAdjacency varint delta-encodes every adjacency row of g,
// returning the per-vertex byte offsets (length n+1) and the encoded
// bytes. Two passes — parallel per-row length count, prefix sum to
// cursors, parallel scatter encode into disjoint ranges — so the
// output is bit-identical at any worker count.
func encodeAdjacency(g *graph.Graph) ([]int64, []byte) {
	n := g.NumVertices()
	lens := make([]int64, n)
	par.ForChunked(n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			adj := g.Adj[g.Offsets[v]:g.Offsets[v+1]]
			if len(adj) == 0 {
				continue
			}
			sz := uvarintLen(zigzag(int64(adj[0]) - int64(v)))
			for i := 1; i < len(adj); i++ {
				sz += uvarintLen(uint64(int64(adj[i]) - int64(adj[i-1])))
			}
			lens[v] = sz
		}
	})
	coff := par.PrefixSum(lens)
	buf := make([]byte, coff[n])
	par.ForChunked(n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			adj := g.Adj[g.Offsets[v]:g.Offsets[v+1]]
			if len(adj) == 0 {
				continue
			}
			row := buf[coff[v]:coff[v+1]]
			p := putUvarint(row, zigzag(int64(adj[0])-int64(v)))
			for i := 1; i < len(adj); i++ {
				p += putUvarint(row[p:], uint64(int64(adj[i])-int64(adj[i-1])))
			}
		}
	})
	return coff, buf
}

// decodeAdjacency materializes the varint-compressed adjacency into a
// heap neighbor array — the decoded view every kernel then runs on,
// bit-identical to the heap-built graph. Rows decode in parallel
// (coff makes them independently addressable); each row is checked to
// consume exactly its bytes, produce exactly its degree, and yield
// sorted in-range neighbors, so corrupt input returns an error rather
// than a graph that would crash a kernel.
func decodeAdjacency(n int, offsets, coff []int64, cadj []byte) ([]int32, error) {
	if len(offsets) != n+1 || len(coff) != n+1 {
		return nil, fmt.Errorf("container: offset arrays sized %d/%d, want %d", len(offsets), len(coff), n+1)
	}
	adj := make([]int32, offsets[n])
	workers := par.Workers()
	errs := make([]error, workers)
	par.ForChunkedN(n, workers, func(w, lo, hi int) {
		for v := lo; v < hi; v++ {
			if err := decodeRow(int32(v), n, adj[offsets[v]:offsets[v+1]], cadj[coff[v]:coff[v+1]]); err != nil {
				errs[w] = err
				return
			}
		}
	})
	// Chunks cover vertex ranges in worker order, so the first
	// non-nil error is the lowest-vertex one — deterministic.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return adj, nil
}

// decodeRow decodes one vertex's row into out.
func decodeRow(v int32, n int, out []int32, row []byte) error {
	pos := 0
	prev := int64(-1)
	for i := range out {
		u, sz := uvarint(row[pos:])
		if sz == 0 {
			return fmt.Errorf("container: vertex %d: truncated varint at byte %d", v, pos)
		}
		pos += sz
		var val int64
		if i == 0 {
			val = int64(v) + unzigzag(u)
		} else {
			val = prev + int64(u)
		}
		if val < prev || val < 0 || val >= int64(n) {
			return fmt.Errorf("container: vertex %d: neighbor %d out of range", v, val)
		}
		out[i] = int32(val)
		prev = val
	}
	if pos != len(row) {
		return fmt.Errorf("container: vertex %d: %d trailing bytes", v, len(row)-pos)
	}
	return nil
}
