package graph

import (
	"errors"
	"io"
	"testing"
)

// TestUseAfterClose pins the closed-graph guard: once Close has run a
// registered closer, the error-returning entry points that read the CSR
// refuse with ErrClosed instead of touching the (conceptually dead)
// backing slices.
func TestUseAfterClose(t *testing.T) {
	g := MustBuild(6, []Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5},
	}, BuildOptions{})

	// Heap graphs have no closer: Close is a no-op and never marks the
	// graph closed.
	if err := g.Close(); err != nil {
		t.Fatalf("heap Close: %v", err)
	}
	if g.Closed() {
		t.Fatal("heap graph reports Closed after no-op Close")
	}
	if err := g.CheckOpen(); err != nil {
		t.Fatalf("heap CheckOpen: %v", err)
	}

	closes := 0
	g.SetCloser(func() error { closes++; return nil })
	if err := g.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if closes != 1 {
		t.Fatalf("closer ran %d times, want 1", closes)
	}
	if err := g.Close(); err != nil || closes != 1 {
		t.Fatalf("second Close: err=%v closes=%d, want idempotent no-op", err, closes)
	}
	if !g.Closed() {
		t.Fatal("Closed() = false after Close ran the closer")
	}
	if err := g.CheckOpen(); !errors.Is(err, ErrClosed) {
		t.Fatalf("CheckOpen = %v, want ErrClosed", err)
	}

	if err := WriteEdgeList(io.Discard, g); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteEdgeList on closed graph: %v, want ErrClosed", err)
	}
	if err := WriteBinary(io.Discard, g); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteBinary on closed graph: %v, want ErrClosed", err)
	}
	if _, err := MergeDelta(g, []Edge{{U: 0, V: 5}}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("MergeDelta on closed graph: %v, want ErrClosed", err)
	}
	if _, _, err := Relabel(g, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Relabel on closed graph: %v, want ErrClosed", err)
	}
	if _, _, err := InducedSubgraph(g, []int32{0, 1, 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("InducedSubgraph on closed graph: %v, want ErrClosed", err)
	}
}
