package graph

import (
	"fmt"
	"sort"

	"snap/internal/par"
)

// Parallel CSR assembly (GAP-style, Beamer et al.): every graph
// producer in the repo funnels through Build, so construction speed is
// the admission price of every workload. The serial seed builder paid
// a global O(m log m) comparison sort plus a serial counting pass; the
// parallel assembler replaces that with
//
//  1. a parallel validate pass,
//  2. a parallel clean/canonicalize pass into a dense edge array
//     (input order preserved, so edge ids stay deterministic),
//  3. per-worker degree histograms + a parallel prefix/cursor pass
//     (the counting-sort pattern proven in Reverse),
//  4. scatter placement into disjoint (worker, vertex) cursor ranges —
//     no atomics — and
//  5. a degree-aware parallel per-vertex adjacency sort with in-pass
//     dedup, so AllowMulti=false no longer needs any global ordering.
//
// Determinism: arcs reach each vertex ordered by (worker id, position
// within worker chunk) = ascending cleaned-edge index, and every sort
// uses the total key (neighbor, cleaned index). The output is
// therefore bit-identical for any worker count, and identical to the
// stable serial reference builder (buildSerial).

// serialBuildThreshold is the edge count below which Build runs the
// serial reference path: goroutine fan-out and per-worker histograms
// cost more than they save on tiny inputs.
const serialBuildThreshold = 1 << 12

// buildParallel is the parallel CSR assembly kernel behind Build.
// It produces bit-identical output to buildSerial for every option
// combination and any workers >= 1.
func buildParallel(n int, edges []Edge, opt BuildOptions, workers int) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(edges) {
		workers = len(edges)
	}
	if workers < 1 {
		workers = 1
	}

	// Phase 1: parallel validation. The earliest offending edge wins so
	// the error message matches the serial builder's.
	badAt := make([]int, workers)
	for w := range badAt {
		badAt[w] = -1
	}
	par.ForChunkedN(len(edges), workers, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := edges[i]
			if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
				badAt[w] = i
				return
			}
		}
	})
	for w := 0; w < workers; w++ {
		if badAt[w] >= 0 {
			e := edges[badAt[w]]
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
	}

	// Phase 2: parallel clean/canonicalize into a dense array, input
	// order preserved (per-worker keep counts, prefix, then write).
	keep := make([]int64, workers)
	par.ForChunkedN(len(edges), workers, func(w, lo, hi int) {
		var k int64
		for i := lo; i < hi; i++ {
			if edges[i].U != edges[i].V || opt.AllowSelfLoops {
				k++
			}
		}
		keep[w] = k
	})
	var total int64
	for w := 0; w < workers; w++ {
		t := keep[w]
		keep[w] = total
		total += t
	}
	clean := make([]Edge, total)
	par.ForChunkedN(len(edges), workers, func(w, lo, hi int) {
		c := keep[w]
		for i := lo; i < hi; i++ {
			e := edges[i]
			if e.U == e.V && !opt.AllowSelfLoops {
				continue
			}
			if !opt.Directed && e.U > e.V {
				e.U, e.V = e.V, e.U
			}
			clean[c] = e
			c++
		}
	})

	if opt.AllowMulti {
		return assembleMulti(n, clean, opt, workers), nil
	}
	return assembleDedup(n, clean, opt, workers), nil
}

// assembleMulti builds the CSR keeping parallel edges: edge ids are
// cleaned-list indices, arcs are scattered by counting sort and each
// vertex's arcs are sorted by (neighbor, edge id).
func assembleMulti(n int, clean []Edge, opt BuildOptions, workers int) *Graph {
	if workers > len(clean) {
		workers = max(1, len(clean))
	}
	counts := make([][]int64, workers)
	par.ForChunkedN(len(clean), workers, func(w, lo, hi int) {
		c := make([]int64, n)
		for i := lo; i < hi; i++ {
			c[clean[i].U]++
			if !opt.Directed {
				c[clean[i].V]++
			}
		}
		counts[w] = c
	})
	for w := range counts {
		if counts[w] == nil {
			counts[w] = make([]int64, n)
		}
	}
	offsets := make([]int64, n+1)
	arcs := par.CursorsFromCounts(counts, offsets)

	adj := make([]int32, arcs)
	eid := make([]int32, arcs)
	var wts []float64
	if opt.Weighted {
		wts = make([]float64, arcs)
	}
	par.ForChunkedN(len(clean), workers, func(w, lo, hi int) {
		cur := counts[w]
		place := func(u, v int32, id int32, wt float64) {
			c := cur[u]
			adj[c] = v
			eid[c] = id
			if wts != nil {
				wts[c] = wt
			}
			cur[u] = c + 1
		}
		for i := lo; i < hi; i++ {
			e := clean[i]
			place(e.U, e.V, int32(i), e.W)
			if !opt.Directed {
				place(e.V, e.U, int32(i), e.W)
			}
		}
	})

	g := &Graph{
		Offsets:  offsets,
		Adj:      adj,
		EID:      eid,
		W:        wts,
		directed: opt.Directed,
		numEdges: len(clean),
	}
	parallelSortAdjacencies(g, workers)
	return g
}

// assembleDedup builds the CSR collapsing duplicate endpoint pairs.
// Cleaned edges are counting-sorted into per-tail buckets (preserving
// cleaned order within each bucket), each bucket is sorted by
// (head, position) and compacted — first weight wins, or weights sum
// under SumWeights — and edge ids are the ranks of the unique pairs in
// (tail, head) order, exactly the ids the global-sort serial builder
// assigns. Undirected graphs get their mirror arcs from a second
// counting-sort scatter that preserves sorted adjacency.
func assembleDedup(n int, clean []Edge, opt BuildOptions, workers int) *Graph {
	if workers > len(clean) {
		workers = max(1, len(clean))
	}
	counts := make([][]int64, workers)
	par.ForChunkedN(len(clean), workers, func(w, lo, hi int) {
		c := make([]int64, n)
		for i := lo; i < hi; i++ {
			c[clean[i].U]++
		}
		counts[w] = c
	})
	for w := range counts {
		if counts[w] == nil {
			counts[w] = make([]int64, n)
		}
	}
	tailOff := make([]int64, n+1)
	total := par.CursorsFromCounts(counts, tailOff)

	// Scatter (head, weight, bucket position) triples. Positions are
	// ascending cleaned-edge indices within each bucket, which makes an
	// unstable sort on (head, position) equivalent to a stable sort on
	// head — the tie-break that picks the first-seen duplicate.
	hV := make([]int32, total)
	var hW []float64
	var hPos []int32
	if opt.Weighted {
		hW = make([]float64, total)
		hPos = make([]int32, total)
	}
	par.ForChunkedN(len(clean), workers, func(w, lo, hi int) {
		cur := counts[w]
		for i := lo; i < hi; i++ {
			e := clean[i]
			c := cur[e.U]
			hV[c] = e.V
			if opt.Weighted {
				hW[c] = e.W
				hPos[c] = int32(c - tailOff[e.U])
			}
			cur[e.U] = c + 1
		}
	})

	// Per-vertex sort + dedup, degree-aware across workers. uniq[v]
	// counts the surviving pairs; the bucket prefix holds them.
	uniq := make([]int64, n)
	bucketSizes := make([]int64, n)
	for v := 0; v < n; v++ {
		bucketSizes[v] = tailOff[v+1] - tailOff[v]
	}
	par.ForDegreeAware(bucketSizes, workers, func(w, lo, hi int) {
		var s dedupSorter
		for v := lo; v < hi; v++ {
			blo, bhi := tailOff[v], tailOff[v+1]
			if blo == bhi {
				continue
			}
			s.v = hV[blo:bhi]
			if opt.Weighted {
				s.w = hW[blo:bhi]
				s.pos = hPos[blo:bhi]
			} else {
				s.w, s.pos = nil, nil
			}
			s.sort()
			uniq[v] = int64(s.compact(opt.SumWeights))
		}
	})

	eidBase := par.PrefixSum(uniq)
	m := eidBase[n]

	if opt.Directed {
		adj := make([]int32, m)
		eid := make([]int32, m)
		var wts []float64
		if opt.Weighted {
			wts = make([]float64, m)
		}
		par.ForDegreeAware(uniq, workers, func(w, lo, hi int) {
			for v := lo; v < hi; v++ {
				base := eidBase[v]
				blo := tailOff[v]
				for i := int64(0); i < uniq[v]; i++ {
					adj[base+i] = hV[blo+i]
					eid[base+i] = int32(base + i)
					if wts != nil {
						wts[base+i] = hW[blo+i]
					}
				}
			}
		})
		return &Graph{
			Offsets:  eidBase,
			Adj:      adj,
			EID:      eid,
			W:        wts,
			directed: true,
			numEdges: int(m),
		}
	}
	g := assembleSymmetric(n, tailOff, hV, hW, uniq, eidBase, workers)
	g.numEdges = int(m)
	return g
}

// assembleSymmetric materializes the undirected CSR from per-tail
// buckets of deduplicated canonical edges (tail <= head, heads sorted
// ascending within each bucket, hW nil for unweighted graphs): vertex
// v's adjacency is its mirror arcs (heads v of smaller tails, placed by
// a counting-sort scatter that preserves ascending tail order) followed
// by its forward arcs (its own bucket). Mirror neighbors are <= v and
// forward neighbors are >= v, so the concatenation is sorted without a
// sort pass. Both arcs of edge (u, v) carry edge id eidBase[u] + rank.
//
// Undirected (symmetrization of a directed graph without materializing
// its edge list) reuses this finalization on buckets merged straight
// from the out- and in-adjacencies.
func assembleSymmetric(n int, tailOff []int64, hV []int32, hW []float64, uniq, eidBase []int64, workers int) *Graph {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = max(1, n)
	}
	// Mirror-arc histograms per worker over tail chunks.
	counts := make([][]int64, workers)
	par.ForChunkedN(n, workers, func(w, lo, hi int) {
		c := make([]int64, n)
		for u := lo; u < hi; u++ {
			blo := tailOff[u]
			for i := int64(0); i < uniq[u]; i++ {
				c[hV[blo+i]]++
			}
		}
		counts[w] = c
	})
	for w := range counts {
		if counts[w] == nil {
			counts[w] = make([]int64, n)
		}
	}

	// Offsets: deg[v] = mirror count + forward count. The cursor pass
	// mirrors par.CursorsFromCounts but biases each bucket by uniq[v]
	// for the trailing forward section.
	offsets := make([]int64, n+1)
	chunks := par.Workers()
	if chunks > n {
		chunks = max(1, n)
	}
	chunkTotal := make([]int64, chunks)
	par.ForChunkedN(n, chunks, func(cw, lo, hi int) {
		var s int64
		for v := lo; v < hi; v++ {
			s += uniq[v]
			for w := 0; w < workers; w++ {
				s += counts[w][v]
			}
		}
		chunkTotal[cw] = s
	})
	var acc int64
	for cw := 0; cw < chunks; cw++ {
		t := chunkTotal[cw]
		chunkTotal[cw] = acc
		acc += t
	}
	fwdBase := make([]int64, n)
	par.ForChunkedN(n, chunks, func(cw, lo, hi int) {
		run := chunkTotal[cw]
		for v := lo; v < hi; v++ {
			offsets[v] = run
			for w := 0; w < workers; w++ {
				c := counts[w][v]
				counts[w][v] = run
				run += c
			}
			fwdBase[v] = run
			run += uniq[v]
		}
	})
	offsets[n] = acc

	adj := make([]int32, acc)
	eid := make([]int32, acc)
	var wts []float64
	if hW != nil {
		wts = make([]float64, acc)
	}
	// Mirror scatter: disjoint (worker, head) cursor ranges; ascending
	// tail order within and across chunks keeps each mirror run sorted.
	par.ForChunkedN(n, workers, func(w, lo, hi int) {
		cur := counts[w]
		for u := lo; u < hi; u++ {
			blo := tailOff[u]
			base := eidBase[u]
			for i := int64(0); i < uniq[u]; i++ {
				v := hV[blo+i]
				c := cur[v]
				adj[c] = int32(u)
				eid[c] = int32(base + i)
				if wts != nil {
					wts[c] = hW[blo+i]
				}
				cur[v] = c + 1
			}
		}
	})
	// Forward fill.
	par.ForDegreeAware(uniq, workers, func(w, lo, hi int) {
		for u := lo; u < hi; u++ {
			blo := tailOff[u]
			base := eidBase[u]
			fb := fwdBase[u]
			for i := int64(0); i < uniq[u]; i++ {
				adj[fb+i] = hV[blo+i]
				eid[fb+i] = int32(base + i)
				if wts != nil {
					wts[fb+i] = hW[blo+i]
				}
			}
		}
	})
	return &Graph{
		Offsets:  offsets,
		Adj:      adj,
		EID:      eid,
		W:        wts,
		directed: false,
	}
}

// parallelSortAdjacencies sorts every vertex's arcs by (neighbor, edge
// id) — a total key, so the result is deterministic — with degree-aware
// work partitioning. Arcs arrive in ascending edge-id order, so short
// runs fall to an insertion sort fast path.
func parallelSortAdjacencies(g *Graph, workers int) {
	n := g.NumVertices()
	deg := make([]int64, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Offsets[v+1] - g.Offsets[v]
	}
	par.ForDegreeAware(deg, workers, func(w, lo, hi int) {
		var s arcPairSorter
		s.g = g
		for v := lo; v < hi; v++ {
			blo, bhi := g.Offsets[v], g.Offsets[v+1]
			d := int(bhi - blo)
			if d < 2 {
				continue
			}
			if d <= insertionSortCutoff {
				insertionSortArcs(g, blo, bhi)
				continue
			}
			s.lo, s.n = blo, d
			sort.Sort(&s)
		}
	})
}

const insertionSortCutoff = 24

func insertionSortArcs(g *Graph, lo, hi int64) {
	for i := lo + 1; i < hi; i++ {
		for j := i; j > lo && arcLess(g, j, j-1); j-- {
			g.Adj[j], g.Adj[j-1] = g.Adj[j-1], g.Adj[j]
			g.EID[j], g.EID[j-1] = g.EID[j-1], g.EID[j]
			if g.W != nil {
				g.W[j], g.W[j-1] = g.W[j-1], g.W[j]
			}
		}
	}
}

func arcLess(g *Graph, a, b int64) bool {
	if g.Adj[a] != g.Adj[b] {
		return g.Adj[a] < g.Adj[b]
	}
	return g.EID[a] < g.EID[b]
}

// arcPairSorter sorts one vertex's arc range by (neighbor, edge id),
// carrying EID and W along. A pointer receiver keeps sort.Sort's
// interface conversion allocation-free across vertices.
type arcPairSorter struct {
	g  *Graph
	lo int64
	n  int
}

func (s *arcPairSorter) Len() int { return s.n }
func (s *arcPairSorter) Less(i, j int) bool {
	return arcLess(s.g, s.lo+int64(i), s.lo+int64(j))
}
func (s *arcPairSorter) Swap(i, j int) {
	a, b := s.lo+int64(i), s.lo+int64(j)
	g := s.g
	g.Adj[a], g.Adj[b] = g.Adj[b], g.Adj[a]
	g.EID[a], g.EID[b] = g.EID[b], g.EID[a]
	if g.W != nil {
		g.W[a], g.W[b] = g.W[b], g.W[a]
	}
}

// dedupSorter sorts one bucket of (head, weight, position) triples by
// (head, position) and compacts duplicate heads in place. pos/w are nil
// for unweighted builds, where ties need no break: equal heads collapse
// to the same pair regardless of order.
type dedupSorter struct {
	v   []int32
	w   []float64
	pos []int32
}

func (s *dedupSorter) Len() int { return len(s.v) }
func (s *dedupSorter) Less(i, j int) bool {
	if s.v[i] != s.v[j] {
		return s.v[i] < s.v[j]
	}
	return s.pos != nil && s.pos[i] < s.pos[j]
}
func (s *dedupSorter) Swap(i, j int) {
	s.v[i], s.v[j] = s.v[j], s.v[i]
	if s.w != nil {
		s.w[i], s.w[j] = s.w[j], s.w[i]
		s.pos[i], s.pos[j] = s.pos[j], s.pos[i]
	}
}

func (s *dedupSorter) sort() {
	if len(s.v) < 2 {
		return
	}
	if len(s.v) <= insertionSortCutoff {
		for i := 1; i < len(s.v); i++ {
			for j := i; j > 0 && s.Less(j, j-1); j-- {
				s.Swap(j, j-1)
			}
		}
		return
	}
	sort.Sort(s)
}

// compact collapses runs of equal heads to the run's first entry
// (ascending position = first occurrence in cleaned order), summing
// weights in position order when sum is set. Returns the unique count.
func (s *dedupSorter) compact(sum bool) int {
	k := 0
	for i := 0; i < len(s.v); {
		j := i + 1
		for j < len(s.v) && s.v[j] == s.v[i] {
			j++
		}
		s.v[k] = s.v[i]
		if s.w != nil {
			acc := s.w[i]
			if sum {
				for t := i + 1; t < j; t++ {
					acc += s.w[t]
				}
			}
			s.w[k] = acc
		}
		k++
		i = j
	}
	return k
}

// Undirected returns g if it is already undirected, or a symmetrized
// copy obtained by ignoring arc directions (the paper's treatment of
// directed inputs in community detection: "we ignore edge directivity").
// Self-loops are dropped and antiparallel/multi arcs collapse to one
// undirected edge keeping the lowest-id arc's weight, exactly as
// Build's default options would on the materialized edge list — but the
// symmetrization works directly from the CSR and its transpose: each
// vertex u merges its sorted out- and in-neighbors above u into the
// deduplicated canonical bucket that assembleSymmetric finalizes,
// skipping the edge-list materialization and the global sort entirely.
func Undirected(g *Graph) *Graph {
	if !g.directed {
		return g
	}
	n := g.NumVertices()
	rev := Reverse(g)
	workers := par.Workers()
	if workers > n {
		workers = max(1, n)
	}

	// Upper-candidate counts per vertex: arcs (u, x) with x > u from
	// either direction. Binary search finds each list's upper tail.
	upper := make([]int64, n)
	par.ForEachN(n, workers, func(u int) {
		upper[u] = int64(upperLen(g, int32(u)) + upperLen(rev, int32(u)))
	})
	bucketOff := par.PrefixSum(upper)
	total := bucketOff[n]

	hV := make([]int32, total)
	var hW []float64
	weighted := g.Weighted()
	if weighted {
		hW = make([]float64, total)
	}
	uniq := make([]int64, n)
	// Merge pass: both runs are sorted by (neighbor, eid), so a linear
	// merge that keeps the lowest-eid arc per distinct neighbor yields
	// the deduplicated canonical bucket in one sweep.
	par.ForDegreeAware(upper, workers, func(w, lo, hi int) {
		for u := lo; u < hi; u++ {
			uniq[u] = int64(mergeUpper(g, rev, int32(u), hV, hW, bucketOff[u], weighted))
		}
	})

	eidBase := par.PrefixSum(uniq)
	out := assembleSymmetric(n, bucketOff, hV, hW, uniq, eidBase, workers)
	out.numEdges = int(eidBase[n])
	return out
}

// upperLen reports how many arcs of u point strictly above u.
func upperLen(g *Graph, u int32) int {
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] > u })
	return len(adj) - i
}

// mergeUpper merges u's upper out- and in-neighbor runs into
// dst[base:], collapsing duplicates to the lowest original edge id
// (whose weight survives, matching Build's first-wins dedup over the
// edge-id-ordered edge list). Returns the number of unique neighbors
// written.
func mergeUpper(g, rev *Graph, u int32, dst []int32, dstW []float64, base int64, weighted bool) int {
	oadj := g.Neighbors(u)
	oi := sort.Search(len(oadj), func(i int) bool { return oadj[i] > u })
	olo, ohi := g.Offsets[u]+int64(oi), g.Offsets[u+1]
	radj := rev.Neighbors(u)
	ri := sort.Search(len(radj), func(i int) bool { return radj[i] > u })
	rlo, rhi := rev.Offsets[u]+int64(ri), rev.Offsets[u+1]

	k := int64(0)
	for olo < ohi || rlo < rhi {
		var v int32
		var wt float64
		// Pick the next smallest (neighbor, eid) across both runs.
		takeOut := rlo >= rhi || (olo < ohi && (g.Adj[olo] < rev.Adj[rlo] ||
			(g.Adj[olo] == rev.Adj[rlo] && g.EID[olo] < rev.EID[rlo])))
		if takeOut {
			v = g.Adj[olo]
			if weighted {
				wt = g.W[olo]
			}
			olo++
		} else {
			v = rev.Adj[rlo]
			if weighted {
				wt = rev.W[rlo]
			}
			rlo++
		}
		if k > 0 && dst[base+k-1] == v {
			continue // duplicate: the lowest-eid arc already won
		}
		dst[base+k] = v
		if weighted {
			dstW[base+k] = wt
		}
		k++
	}
	return int(k)
}
