package graph

// Typed-subgraph helpers: the paper's data model classifies vertices
// and edges; these views extract the analysis substrate for one class
// without copying attribute tables.

// SubgraphByVertexFilter induces the subgraph on the vertices
// satisfying keep, returning the subgraph and the new-to-old id map.
func SubgraphByVertexFilter(g *Graph, keep func(v int32) bool) (*Graph, []int32, error) {
	var verts []int32
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		if keep(v) {
			verts = append(verts, v)
		}
	}
	return InducedSubgraph(g, verts)
}

// SubgraphByEdgeFilter keeps only edges satisfying keep (all vertices
// are retained, so ids are stable).
func SubgraphByEdgeFilter(g *Graph, keep func(eid int32) bool) *Graph {
	return FilterEdges(g, keep)
}

// LargestComponentView returns the vertex list of the largest
// connected component (computed by BFS; for the Labeling-based variant
// use components.Connected).
func LargestComponentView(g *Graph) []int32 {
	n := g.NumVertices()
	visited := make([]bool, n)
	var best []int32
	queue := make([]int32, 0, 256)
	for root := int32(0); int(root) < n; root++ {
		if visited[root] {
			continue
		}
		visited[root] = true
		queue = append(queue[:0], root)
		var members []int32
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			members = append(members, v)
			lo, hi := g.Offsets[v], g.Offsets[v+1]
			for a := lo; a < hi; a++ {
				u := g.Adj[a]
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
		if len(members) > len(best) {
			best = members
		}
	}
	return best
}

// DegreeFilteredSubgraph induces the subgraph on vertices with degree
// in [minDeg, maxDeg] (maxDeg < 0 means unbounded) — a common
// preprocessing cut (e.g. dropping degree-1 periphery before heavy
// analysis).
func DegreeFilteredSubgraph(g *Graph, minDeg, maxDeg int) (*Graph, []int32, error) {
	return SubgraphByVertexFilter(g, func(v int32) bool {
		d := g.Degree(v)
		if d < minDeg {
			return false
		}
		if maxDeg >= 0 && d > maxDeg {
			return false
		}
		return true
	})
}
