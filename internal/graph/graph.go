// Package graph provides SNAP's graph representations: a cache-friendly
// static CSR (compressed sparse row) adjacency-array form used by every
// analysis kernel, and a dynamic form with resizable adjacency arrays
// plus treap-backed adjacencies for high-degree vertices.
//
// Vertices are dense int32 identifiers in [0, n). Undirected graphs are
// stored as two arcs per edge; both arcs carry the same edge identifier
// in [0, m), which lets kernels attribute per-edge scores (e.g. edge
// betweenness) and mark logical deletions without rebuilding the CSR.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an input edge for graph construction. For undirected graphs
// the orientation of (U, V) is irrelevant.
type Edge struct {
	U, V int32
	W    float64
}

// Graph is an immutable CSR graph. For an undirected graph, every edge
// {u, v} appears as arc u->v and arc v->u, and NumEdges reports the
// number of undirected edges (half the arc count). For a directed
// graph each arc is its own edge.
//
// The slice fields are exported for kernel-speed access by sibling
// internal packages; they must be treated as read-only.
type Graph struct {
	// Offsets has length n+1; the arcs of vertex v occupy
	// Adj[Offsets[v]:Offsets[v+1]] (and the parallel EID/W slices).
	Offsets []int64
	// Adj holds neighbor vertex ids, sorted ascending within each vertex.
	Adj []int32
	// EID holds the edge identifier of each arc. The two arcs of an
	// undirected edge share one id in [0, NumEdges()).
	EID []int32
	// W holds per-arc weights. Nil for unweighted graphs (weight 1).
	W []float64

	directed bool
	numEdges int

	// closer releases the resource backing the slice fields when they
	// alias something with a lifetime — an mmap'd SNP2 container. Nil
	// for ordinary heap-built graphs. See Close.
	closer func() error
	// closed records that a closer actually ran: the slice fields alias
	// a dead mapping and any access faults. Heap-built graphs never set
	// it. See Closed and CheckOpen.
	closed bool
}

// NumVertices reports n, the number of vertices.
func (g *Graph) NumVertices() int { return len(g.Offsets) - 1 }

// NumEdges reports m: undirected edges for undirected graphs, arcs for
// directed graphs.
func (g *Graph) NumEdges() int { return g.numEdges }

// NumArcs reports the number of stored arcs (2m for undirected graphs).
func (g *Graph) NumArcs() int { return len(g.Adj) }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// Weighted reports whether per-edge weights are stored.
func (g *Graph) Weighted() bool { return g.W != nil }

// Degree reports the out-degree of v (the number of stored arcs).
func (g *Graph) Degree(v int32) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns the (read-only) neighbor slice of v.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.Adj[g.Offsets[v]:g.Offsets[v+1]]
}

// EdgeIDs returns the (read-only) per-arc edge-id slice of v, parallel
// to Neighbors(v).
func (g *Graph) EdgeIDs(v int32) []int32 {
	return g.EID[g.Offsets[v]:g.Offsets[v+1]]
}

// Weights returns the per-arc weight slice of v, parallel to
// Neighbors(v), or nil for unweighted graphs.
func (g *Graph) Weights(v int32) []float64 {
	if g.W == nil {
		return nil
	}
	return g.W[g.Offsets[v]:g.Offsets[v+1]]
}

// ArcWeight returns the weight of arc index a (1 for unweighted graphs).
func (g *Graph) ArcWeight(a int64) float64 {
	if g.W == nil {
		return 1
	}
	return g.W[a]
}

// HasEdge reports whether an arc u->v exists, via binary search over
// the sorted adjacency of u.
func (g *Graph) HasEdge(u, v int32) bool {
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// EdgeIDOf returns the edge id of arc u->v, or -1 when absent.
func (g *Graph) EdgeIDOf(u, v int32) int32 {
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	if i < len(adj) && adj[i] == v {
		return g.EdgeIDs(u)[i]
	}
	return -1
}

// EdgeEndpoints returns, for every edge id, its endpoints (u <= v for
// undirected graphs; tail/head for directed). The result has length
// NumEdges().
func (g *Graph) EdgeEndpoints() []Edge {
	out := make([]Edge, g.numEdges)
	seen := make([]bool, g.numEdges)
	for u := int32(0); u < int32(g.NumVertices()); u++ {
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		for a := lo; a < hi; a++ {
			id := g.EID[a]
			if seen[id] {
				continue
			}
			seen[id] = true
			out[id] = Edge{U: u, V: g.Adj[a], W: g.ArcWeight(a)}
		}
	}
	return out
}

// TotalWeight reports the sum of edge weights (m for unweighted graphs).
func (g *Graph) TotalWeight() float64 {
	if g.W == nil {
		return float64(g.numEdges)
	}
	var s float64
	for _, e := range g.EdgeEndpoints() {
		s += e.W
	}
	return s
}

// MaxDegree reports the largest out-degree in the graph.
func (g *Graph) MaxDegree() int {
	mx := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(int32(v)); d > mx {
			mx = d
		}
	}
	return mx
}

// Degrees returns the out-degree of every vertex as int64 work
// estimates, the input expected by par.DegreeAware.
func (g *Graph) Degrees() []int64 {
	n := g.NumVertices()
	out := make([]int64, n)
	for v := 0; v < n; v++ {
		out[v] = g.Offsets[v+1] - g.Offsets[v]
	}
	return out
}

// String summarizes the graph.
func (g *Graph) String() string {
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	return fmt.Sprintf("graph{%s, n=%d, m=%d}", kind, g.NumVertices(), g.numEdges)
}
