package graph

import "testing"

func TestSubgraphByVertexFilter(t *testing.T) {
	g, _ := Build(6, []Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5},
	}, BuildOptions{})
	sub, orig, err := SubgraphByVertexFilter(g, func(v int32) bool { return v%2 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 || sub.NumEdges() != 0 {
		t.Fatalf("even-vertex subgraph: %v", sub)
	}
	if orig[0] != 0 || orig[1] != 2 || orig[2] != 4 {
		t.Fatalf("orig map: %v", orig)
	}
}

func TestSubgraphByEdgeFilter(t *testing.T) {
	g, _ := Build(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}, BuildOptions{})
	sub := SubgraphByEdgeFilter(g, func(eid int32) bool { return eid != 1 })
	if sub.NumEdges() != 2 || sub.NumVertices() != 4 {
		t.Fatalf("edge-filtered: %v", sub)
	}
}

func TestLargestComponentView(t *testing.T) {
	g, _ := Build(7, []Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 3, V: 4},
	}, BuildOptions{})
	lc := LargestComponentView(g)
	if len(lc) != 3 {
		t.Fatalf("largest component size %d, want 3", len(lc))
	}
	seen := map[int32]bool{}
	for _, v := range lc {
		seen[v] = true
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Fatalf("wrong members: %v", lc)
	}
}

func TestDegreeFilteredSubgraph(t *testing.T) {
	// Star: hub degree 4, leaves degree 1.
	g, _ := Build(5, []Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}}, BuildOptions{})
	sub, orig, err := DegreeFilteredSubgraph(g, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 1 || orig[0] != 0 {
		t.Fatalf("min-degree filter wrong: %v %v", sub, orig)
	}
	sub2, _, err := DegreeFilteredSubgraph(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sub2.NumVertices() != 4 || sub2.NumEdges() != 0 {
		t.Fatalf("max-degree filter wrong: %v", sub2)
	}
}
