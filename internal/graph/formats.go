package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Interchange with the partitioning ecosystem the paper compares
// against: the METIS/Chaco graph format (1-indexed adjacency lists)
// and the DIMACS edge format, plus GraphViz DOT export for small-graph
// visualization.

// WriteMETIS writes g in the METIS graph format: a header "n m [fmt]"
// followed by one line per vertex listing its (1-indexed) neighbors,
// with edge weights when the graph is weighted.
func WriteMETIS(w io.Writer, g *Graph) error {
	if g.Directed() {
		return fmt.Errorf("graph: METIS format requires an undirected graph")
	}
	bw := bufio.NewWriter(w)
	if g.Weighted() {
		fmt.Fprintf(bw, "%d %d 001\n", g.NumVertices(), g.NumEdges())
	} else {
		fmt.Fprintf(bw, "%d %d\n", g.NumVertices(), g.NumEdges())
	}
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		for a := lo; a < hi; a++ {
			if a > lo {
				fmt.Fprint(bw, " ")
			}
			if g.Weighted() {
				fmt.Fprintf(bw, "%d %g", g.Adj[a]+1, g.W[a])
			} else {
				fmt.Fprintf(bw, "%d", g.Adj[a]+1)
			}
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadMETIS parses the METIS graph format (optionally with edge
// weights, fmt code 1 or 001).
func ReadMETIS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var n, m int
	weighted := false
	line, err := nextDataLine(sc)
	if err != nil {
		return nil, fmt.Errorf("graph: METIS: missing header: %v", err)
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil, fmt.Errorf("graph: METIS: bad header %q", line)
	}
	if n, err = strconv.Atoi(fields[0]); err != nil {
		return nil, err
	}
	if m, err = strconv.Atoi(fields[1]); err != nil {
		return nil, err
	}
	if len(fields) >= 3 {
		code := strings.TrimLeft(fields[2], "0")
		switch code {
		case "":
		case "1":
			weighted = true
		default:
			return nil, fmt.Errorf("graph: METIS: unsupported fmt %q (vertex weights not supported)", fields[2])
		}
	}
	edges := make([]Edge, 0, m)
	for v := 0; v < n; v++ {
		line, err := nextDataLine(sc)
		if err != nil {
			return nil, fmt.Errorf("graph: METIS: vertex %d: %v", v+1, err)
		}
		fs := strings.Fields(line)
		step := 1
		if weighted {
			step = 2
		}
		for i := 0; i+step-1 < len(fs); i += step {
			u, err := strconv.Atoi(fs[i])
			if err != nil {
				return nil, fmt.Errorf("graph: METIS: vertex %d: %v", v+1, err)
			}
			if u < 1 || u > n {
				return nil, fmt.Errorf("graph: METIS: vertex %d: neighbor %d out of range", v+1, u)
			}
			wgt := 1.0
			if weighted {
				if wgt, err = strconv.ParseFloat(fs[i+1], 64); err != nil {
					return nil, fmt.Errorf("graph: METIS: vertex %d: %v", v+1, err)
				}
			}
			if u-1 > v { // each undirected edge appears twice; keep one
				edges = append(edges, Edge{U: int32(v), V: int32(u - 1), W: wgt})
			}
		}
	}
	return Build(n, edges, BuildOptions{Weighted: weighted})
}

func nextDataLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue // METIS comments start with %
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}

// WriteDIMACS writes g in the DIMACS edge format ("p edge n m" header,
// "e u v" lines, 1-indexed).
func WriteDIMACS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "c snap graph %d vertices %d edges\n", g.NumVertices(), g.NumEdges())
	fmt.Fprintf(bw, "p edge %d %d\n", g.NumVertices(), g.NumEdges())
	for _, e := range g.EdgeEndpoints() {
		fmt.Fprintf(bw, "e %d %d\n", e.U+1, e.V+1)
	}
	return bw.Flush()
}

// ReadDIMACS parses the DIMACS edge format.
func ReadDIMACS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	n := -1
	var edges []Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "p":
			if len(fields) < 4 {
				return nil, fmt.Errorf("graph: DIMACS line %d: bad problem line", lineNo)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, err
			}
			n = v
		case "e", "a":
			if n < 0 {
				return nil, fmt.Errorf("graph: DIMACS line %d: edge before problem line", lineNo)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: DIMACS line %d: bad edge line", lineNo)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, err
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, err
			}
			if u < 1 || u > n || v < 1 || v > n {
				return nil, fmt.Errorf("graph: DIMACS line %d: endpoint out of range", lineNo)
			}
			edges = append(edges, Edge{U: int32(u - 1), V: int32(v - 1), W: 1})
		default:
			return nil, fmt.Errorf("graph: DIMACS line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("graph: DIMACS: missing problem line")
	}
	return Build(n, edges, BuildOptions{})
}

// WriteDOT writes g in GraphViz DOT format, optionally coloring
// vertices by a community assignment (nil for none). Intended for
// small graphs.
func WriteDOT(w io.Writer, g *Graph, assign []int32) error {
	bw := bufio.NewWriter(w)
	name := "graph"
	sep := "--"
	if g.Directed() {
		name = "digraph"
		sep = "->"
	}
	fmt.Fprintf(bw, "%s snap {\n", name)
	if assign != nil {
		for v := 0; v < g.NumVertices(); v++ {
			fmt.Fprintf(bw, "  %d [label=\"%d\", colorscheme=set312, style=filled, fillcolor=%d];\n",
				v, v, int(assign[v])%12+1)
		}
	}
	for _, e := range g.EdgeEndpoints() {
		fmt.Fprintf(bw, "  %d %s %d;\n", e.U, sep, e.V)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
