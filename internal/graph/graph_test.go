package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func triangle(t *testing.T) *Graph {
	t.Helper()
	g, err := Build(3, []Edge{{0, 1, 1}, {1, 2, 1}, {0, 2, 1}}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildTriangle(t *testing.T) {
	g := triangle(t)
	if g.NumVertices() != 3 || g.NumEdges() != 3 || g.NumArcs() != 6 {
		t.Fatalf("sizes wrong: %v", g)
	}
	for v := int32(0); v < 3; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("degree(%d) = %d", v, g.Degree(v))
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 0) {
		t.Fatal("HasEdge wrong")
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestBuildDropsSelfLoopsAndDuplicates(t *testing.T) {
	g, err := Build(3, []Edge{{0, 1, 1}, {1, 0, 1}, {2, 2, 1}, {0, 1, 1}}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 (dedup + self-loop drop)", g.NumEdges())
	}
}

func TestBuildAllowMulti(t *testing.T) {
	g, err := Build(2, []Edge{{0, 1, 1}, {0, 1, 1}}, BuildOptions{AllowMulti: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 with AllowMulti", g.NumEdges())
	}
}

func TestBuildRejectsOutOfRange(t *testing.T) {
	if _, err := Build(2, []Edge{{0, 5, 1}}, BuildOptions{}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := Build(-1, nil, BuildOptions{}); err == nil {
		t.Fatal("expected negative-n error")
	}
}

func TestDirectedBuild(t *testing.T) {
	g, err := Build(3, []Edge{{0, 1, 1}, {1, 2, 1}}, BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed() || g.NumEdges() != 2 || g.NumArcs() != 2 {
		t.Fatalf("directed sizes wrong: %v", g)
	}
	if g.HasEdge(1, 0) {
		t.Fatal("reverse arc should not exist")
	}
	und := Undirected(g)
	if und.Directed() || und.NumEdges() != 2 || und.NumArcs() != 4 {
		t.Fatalf("symmetrize wrong: %v", und)
	}
}

func TestEdgeIDsSharedAcrossArcs(t *testing.T) {
	g := triangle(t)
	for u := int32(0); u < 3; u++ {
		for _, v := range g.Neighbors(u) {
			if g.EdgeIDOf(u, v) != g.EdgeIDOf(v, u) {
				t.Fatalf("edge id mismatch on (%d,%d)", u, v)
			}
		}
	}
	if g.EdgeIDOf(0, 0) != -1 {
		t.Fatal("EdgeIDOf for absent arc should be -1")
	}
}

func TestEdgeEndpoints(t *testing.T) {
	g := triangle(t)
	eps := g.EdgeEndpoints()
	if len(eps) != 3 {
		t.Fatalf("got %d endpoints", len(eps))
	}
	for id, e := range eps {
		if g.EdgeIDOf(e.U, e.V) != int32(id) {
			t.Fatalf("endpoint %d inconsistent", id)
		}
	}
}

func TestWeightedBuild(t *testing.T) {
	g, err := Build(2, []Edge{{0, 1, 2.5}}, BuildOptions{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() || g.TotalWeight() != 2.5 {
		t.Fatalf("weight wrong: %v", g.TotalWeight())
	}
	if w := g.Weights(0); len(w) != 1 || w[0] != 2.5 {
		t.Fatalf("Weights(0) = %v", w)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := triangle(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 3 || g2.NumEdges() != 3 {
		t.Fatalf("round trip: %v", g2)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("0\n"), false); err == nil {
		t.Fatal("want parse error for single field")
	}
	if _, err := ReadEdgeList(strings.NewReader("a b\n"), false); err == nil {
		t.Fatal("want parse error for non-numeric")
	}
}

func TestReadEdgeListHeaderN(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# snap edge list: n=10 m=1 undirected\n0 1\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 {
		t.Fatalf("header n ignored: n=%d", g.NumVertices())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var edges []Edge
	n := 50
	for i := 0; i < 200; i++ {
		edges = append(edges, Edge{
			U: int32(rng.Intn(n)), V: int32(rng.Intn(n)), W: float64(1 + rng.Intn(9)),
		})
	}
	g, err := Build(n, edges, BuildOptions{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip sizes: %v vs %v", g2, g)
	}
	for v := int32(0); int(v) < n; v++ {
		a, b := g.Neighbors(v), g2.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency mismatch at %d", v)
			}
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a graph")); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestInducedSubgraph(t *testing.T) {
	// Path 0-1-2-3; induce {1, 2, 3} -> path of length 2.
	g, _ := Build(4, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}}, BuildOptions{})
	sub, orig, err := InducedSubgraph(g, []int32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("induced: %v", sub)
	}
	if orig[0] != 1 || orig[2] != 3 {
		t.Fatalf("orig map wrong: %v", orig)
	}
	if _, _, err := InducedSubgraph(g, []int32{1, 1}); err == nil {
		t.Fatal("want duplicate-vertex error")
	}
	if _, _, err := InducedSubgraph(g, []int32{9}); err == nil {
		t.Fatal("want out-of-range error")
	}
}

func TestFilterEdges(t *testing.T) {
	g := triangle(t)
	f := FilterEdges(g, func(eid int32) bool { return eid != 0 })
	if f.NumEdges() != 2 || f.NumVertices() != 3 {
		t.Fatalf("filtered: %v", f)
	}
}

func TestQuickBuildValidates(t *testing.T) {
	check := func(raw []uint16, directed bool) bool {
		n := 40
		var edges []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{
				U: int32(raw[i] % uint16(n)),
				V: int32(raw[i+1] % uint16(n)),
				W: 1,
			})
		}
		g, err := Build(n, edges, BuildOptions{Directed: directed})
		if err != nil {
			return false
		}
		return Validate(g) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDegreeSum(t *testing.T) {
	// Sum of degrees equals 2m for undirected graphs.
	check := func(raw []uint16) bool {
		n := 30
		var edges []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{U: int32(raw[i] % uint16(n)), V: int32(raw[i+1] % uint16(n))})
		}
		g, err := Build(n, edges, BuildOptions{})
		if err != nil {
			return false
		}
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(int32(v))
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicAddDelete(t *testing.T) {
	d := NewDynamic(5, false)
	if added, err := d.AddEdge(0, 1); err != nil || !added {
		t.Fatalf("AddEdge: %v %v", added, err)
	}
	if added, _ := d.AddEdge(1, 0); added {
		t.Fatal("duplicate edge added")
	}
	if !d.HasEdge(0, 1) || !d.HasEdge(1, 0) {
		t.Fatal("symmetry broken")
	}
	if d.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", d.NumEdges())
	}
	if del, _ := d.DeleteEdge(0, 1); !del {
		t.Fatal("delete failed")
	}
	if d.HasEdge(0, 1) || d.NumEdges() != 0 {
		t.Fatal("delete left residue")
	}
	if _, err := d.AddEdge(0, 0); err == nil {
		t.Fatal("self loop should error")
	}
	if _, err := d.AddEdge(0, 99); err == nil {
		t.Fatal("out of range should error")
	}
}

func TestDynamicTreapMigration(t *testing.T) {
	d := NewDynamic(200, false)
	d.SetTreapThreshold(8)
	// Vertex 0 becomes high degree and must migrate to a treap.
	for v := int32(1); v <= 100; v++ {
		if _, err := d.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	if d.Degree(0) != 100 {
		t.Fatalf("degree = %d", d.Degree(0))
	}
	if d.big[0] == nil {
		t.Fatal("high-degree vertex did not migrate to treap")
	}
	nb := d.Neighbors(0)
	if len(nb) != 100 {
		t.Fatalf("neighbors = %d", len(nb))
	}
	for i := 1; i < len(nb); i++ {
		if nb[i] <= nb[i-1] {
			t.Fatal("neighbors not sorted")
		}
	}
	// Deletion still works post-migration.
	if del, _ := d.DeleteEdge(0, 50); !del {
		t.Fatal("treap delete failed")
	}
	if d.HasEdge(0, 50) {
		t.Fatal("edge survived deletion")
	}
}

func TestDynamicCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDynamic(60, false)
	for i := 0; i < 300; i++ {
		u, v := int32(rng.Intn(60)), int32(rng.Intn(60))
		if u != v {
			d.AddEdge(u, v)
		}
	}
	g, err := d.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != d.NumEdges() {
		t.Fatalf("edges: csr=%d dyn=%d", g.NumEdges(), d.NumEdges())
	}
	d2, err := FromCSR(g)
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumEdges() != g.NumEdges() {
		t.Fatalf("thaw edges: %d vs %d", d2.NumEdges(), g.NumEdges())
	}
	for v := int32(0); v < 60; v++ {
		if d2.Degree(v) != g.Degree(v) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
}

func TestQuickDynamicMatchesOracle(t *testing.T) {
	check := func(ops []uint32) bool {
		n := 24
		d := NewDynamic(n, false)
		d.SetTreapThreshold(4) // force treap paths
		oracle := map[[2]int32]bool{}
		for _, op := range ops {
			u := int32(op % uint32(n))
			v := int32((op / 7) % uint32(n))
			if u == v {
				continue
			}
			key := [2]int32{min32(u, v), max32(u, v)}
			if op%2 == 0 {
				added, err := d.AddEdge(u, v)
				if err != nil || added == oracle[key] {
					return false
				}
				oracle[key] = true
			} else {
				del, err := d.DeleteEdge(u, v)
				if err != nil || del != oracle[key] {
					return false
				}
				delete(oracle, key)
			}
		}
		return d.NumEdges() == len(oracle)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
