package bfs

import (
	"math/rand"
	"testing"

	"snap/internal/generate"
	"snap/internal/graph"
)

// disconnectedGraph builds a deliberately fragmented graph: a path
// component, a ring component, and a tail of isolated vertices.
func disconnectedGraph(t *testing.T) *graph.Graph {
	t.Helper()
	var edges []graph.Edge
	for i := 0; i < 99; i++ { // path over [0, 100)
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1)})
	}
	for i := 100; i < 160; i++ { // ring over [100, 160)
		j := i + 1
		if j == 160 {
			j = 100
		}
		edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
	}
	g, err := graph.Build(200, edges, graph.BuildOptions{}) // [160, 200) isolated
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// checkAgainstSerial verifies every accessor of ws against the
// untouched textbook oracle for the same source.
func checkAgainstSerial(t *testing.T, g *graph.Graph, ws *Workspace, src int32) {
	t.Helper()
	want := Serial(g, src, nil)
	reached := 0
	var sum int64
	var maxD int32
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		if got := ws.Dist(v); got != want.Dist[v] {
			t.Fatalf("src %d: Dist(%d) = %d, want %d", src, v, got, want.Dist[v])
		}
		if got := ws.Parent(v); got != want.Parent[v] {
			t.Fatalf("src %d: Parent(%d) = %d, want %d", src, v, got, want.Parent[v])
		}
		if want.Dist[v] != Unreached {
			reached++
			sum += int64(want.Dist[v])
			if want.Dist[v] > maxD {
				maxD = want.Dist[v]
			}
			if !ws.Visited(v) {
				t.Fatalf("src %d: Visited(%d) = false for reached vertex", src, v)
			}
		} else if ws.Visited(v) {
			t.Fatalf("src %d: Visited(%d) = true for unreached vertex", src, v)
		}
	}
	if ws.Reached() != reached {
		t.Fatalf("src %d: Reached = %d, want %d", src, ws.Reached(), reached)
	}
	if ws.SumDist() != sum {
		t.Fatalf("src %d: SumDist = %d, want %d", src, ws.SumDist(), sum)
	}
	if ws.MaxDist() != maxD {
		t.Fatalf("src %d: MaxDist = %d, want %d", src, ws.MaxDist(), maxD)
	}
	prev := int32(0)
	for _, v := range ws.Order() {
		d := ws.Dist(v)
		if d < prev {
			t.Fatalf("src %d: Order not sorted by distance", src)
		}
		prev = d
	}
	exp := ws.Export()
	for v := range exp.Dist {
		if exp.Dist[v] != want.Dist[v] || exp.Parent[v] != want.Parent[v] {
			t.Fatalf("src %d: Export mismatch at %d", src, v)
		}
	}
}

// The tentpole property: one workspace reused back-to-back across 60+
// sources returns distances identical to bfs.Serial on all three graph
// families (RMAT, Erdős–Rényi, disconnected).
func TestWorkspaceMatchesSerialAcrossFamilies(t *testing.T) {
	families := map[string]*graph.Graph{
		"rmat":         generate.RMAT(400, 1600, generate.DefaultRMAT(), 11),
		"erdosrenyi":   generate.ErdosRenyi(400, 1200, 12),
		"disconnected": disconnectedGraph(t),
	}
	for name, g := range families {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(41))
			ws := NewWorkspace(g.NumVertices())
			for trial := 0; trial < 60; trial++ {
				src := int32(rng.Intn(g.NumVertices()))
				ws.Run(g, src, nil, -1)
				checkAgainstSerial(t, g, ws, src)
			}
		})
	}
}

func TestWorkspaceDepthLimit(t *testing.T) {
	g := pathGraph(t, 10)
	ws := NewWorkspace(g.NumVertices())
	ws.Run(g, 0, nil, 3)
	if ws.Dist(3) != 3 {
		t.Errorf("Dist(3) = %d, want 3", ws.Dist(3))
	}
	if ws.Dist(4) != Unreached {
		t.Errorf("depth limit ignored: Dist(4) = %d", ws.Dist(4))
	}
	if ws.Reached() != 4 || ws.MaxDist() != 3 {
		t.Errorf("summary wrong: reached %d max %d", ws.Reached(), ws.MaxDist())
	}
}

func TestWorkspaceAliveMask(t *testing.T) {
	g := pathGraph(t, 6)
	alive := make([]bool, g.NumEdges())
	for i := range alive {
		alive[i] = true
	}
	alive[g.EdgeIDOf(2, 3)] = false
	ws := NewWorkspace(g.NumVertices())
	ws.Run(g, 0, alive, -1)
	if ws.Dist(2) != 2 || ws.Dist(3) != Unreached {
		t.Fatalf("alive mask broken: %d %d", ws.Dist(2), ws.Dist(3))
	}
}

// Pooled workspaces are resized across graphs of different sizes; the
// reuse (shrink, then grow back within capacity) must not leak state.
func TestWorkspacePoolResizeAcrossGraphs(t *testing.T) {
	big := generate.RMAT(500, 2000, generate.DefaultRMAT(), 9)
	small := generate.ErdosRenyi(60, 120, 10)
	ws := AcquireWorkspace(big.NumVertices())
	ws.Run(big, 3, nil, -1)
	checkAgainstSerial(t, big, ws, 3)
	ws.Resize(small.NumVertices())
	ws.Run(small, 5, nil, -1)
	checkAgainstSerial(t, small, ws, 5)
	ws.Resize(big.NumVertices())
	ws.Run(big, 7, nil, -1)
	checkAgainstSerial(t, big, ws, 7)
	ReleaseWorkspace(ws)
}

func TestMultiSourceWorkspaceMatchesSerial(t *testing.T) {
	g := generate.RMAT(300, 1200, generate.DefaultRMAT(), 2)
	n := g.NumVertices()
	sources := make([]int32, 64)
	for i := range sources {
		sources[i] = int32((i * 5) % n)
	}
	for _, workers := range []int{1, 3, 8} {
		sums := make([]int64, len(sources))
		seen := make([]int32, len(sources))
		workerOf := make([]int, len(sources)) // disjoint per-index slots: race-free
		MultiSourceWorkspace(g, sources, -1, workers, func(w, i int, ws *Workspace) {
			workerOf[i] = w
			sums[i] = ws.SumDist()
			seen[i]++
		})
		for i, src := range sources {
			want := Serial(g, src, nil)
			var wantSum int64
			for _, d := range want.Dist {
				if d > 0 {
					wantSum += int64(d)
				}
			}
			if sums[i] != wantSum {
				t.Fatalf("workers %d: source %d SumDist = %d, want %d", workers, src, sums[i], wantSum)
			}
			if seen[i] != 1 {
				t.Fatalf("workers %d: source index %d visited %d times", workers, i, seen[i])
			}
			if workerOf[i] < 0 || workerOf[i] >= workers {
				t.Fatalf("workers %d: worker id %d out of range", workers, workerOf[i])
			}
		}
	}
}

func TestMultiSourceWorkspaceDepthLimit(t *testing.T) {
	g := pathGraph(t, 10)
	MultiSourceWorkspace(g, []int32{0}, 3, 1, func(_, _ int, ws *Workspace) {
		if ws.Dist(3) != 3 {
			t.Errorf("Dist(3) = %d, want 3", ws.Dist(3))
		}
		if ws.Dist(4) != Unreached {
			t.Errorf("depth limit ignored: Dist(4) = %d", ws.Dist(4))
		}
	})
}
