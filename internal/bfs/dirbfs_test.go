package bfs

import (
	"testing"

	"snap/internal/generate"
)

func TestDirectionOptimizingMatchesSerial(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		g := generate.RMAT(2000, 16000, generate.DefaultRMAT(), int64(trial))
		want := Serial(g, 1, nil)
		for _, workers := range []int{1, 4} {
			got := DirectionOptimizing(g, 1, Options{Workers: workers})
			for v := range want.Dist {
				if got.Dist[v] != want.Dist[v] {
					t.Fatalf("trial %d workers %d: dist[%d] = %d, want %d",
						trial, workers, v, got.Dist[v], want.Dist[v])
				}
			}
		}
	}
}

func TestDirectionOptimizingParentsValid(t *testing.T) {
	g := generate.RMAT(3000, 24000, generate.DefaultRMAT(), 3)
	r := DirectionOptimizing(g, 0, Options{Workers: 3})
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		if r.Dist[v] == Unreached || v == 0 {
			continue
		}
		p := r.Parent[v]
		if p < 0 || r.Dist[v] != r.Dist[p]+1 || !g.HasEdge(p, v) {
			t.Fatalf("invalid parent for %d: p=%d", v, p)
		}
	}
}

func TestDirectionOptimizingOnPath(t *testing.T) {
	// A path never triggers bottom-up (frontier stays tiny); make sure
	// the top-down path is still exact.
	g := pathGraph(t, 64)
	r := DirectionOptimizing(g, 0, Options{})
	for v := int32(0); v < 64; v++ {
		if r.Dist[v] != v {
			t.Fatalf("dist[%d] = %d", v, r.Dist[v])
		}
	}
}

func BenchmarkBFSDirectionOptimizing(b *testing.B) {
	g := generate.RMAT(1<<15, 1<<17, generate.DefaultRMAT(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DirectionOptimizing(g, 0, Options{})
	}
}
