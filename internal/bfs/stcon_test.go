package bfs

import (
	"math/rand"
	"testing"

	"snap/internal/generate"
	"snap/internal/graph"
)

func TestSTConnectivityPath(t *testing.T) {
	g := pathGraph(t, 8)
	ok, d := STConnectivity(g, 0, 7)
	if !ok || d != 7 {
		t.Fatalf("path: ok=%v d=%d, want true/7", ok, d)
	}
	ok, d = STConnectivity(g, 3, 3)
	if !ok || d != 0 {
		t.Fatalf("self: ok=%v d=%d", ok, d)
	}
}

func TestSTConnectivityDisconnected(t *testing.T) {
	g, _ := graph.Build(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}, graph.BuildOptions{})
	ok, d := STConnectivity(g, 0, 3)
	if ok || d != -1 {
		t.Fatalf("disconnected: ok=%v d=%d", ok, d)
	}
}

func TestSTConnectivityMatchesBFSDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 6; trial++ {
		g := generate.RMAT(400, 1200, generate.DefaultRMAT(), int64(trial))
		ref := Serial(g, 0, nil)
		for probe := 0; probe < 50; probe++ {
			t2 := int32(rng.Intn(g.NumVertices()))
			ok, d := STConnectivity(g, 0, t2)
			if ref.Dist[t2] == Unreached {
				if ok {
					t.Fatalf("trial %d: claims 0~%d connected", trial, t2)
				}
				continue
			}
			if !ok || d != ref.Dist[t2] {
				t.Fatalf("trial %d target %d: got (%v,%d), want (true,%d)",
					trial, t2, ok, d, ref.Dist[t2])
			}
		}
	}
}

func BenchmarkSTConnectivity(b *testing.B) {
	g := generate.RMAT(1<<15, 1<<17, generate.DefaultRMAT(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		STConnectivity(g, 0, int32(i%g.NumVertices()))
	}
}
