package bfs

import "snap/internal/frontier"

// Workspace is reusable BFS state for multi-source traversal loops —
// an alias of the shared frontier.Engine, which owns the epoch-stamped
// visited encoding, the visitation order, and the level-synchronous
// direction-optimizing step loop. See frontier.Engine for the state
// invariants; the alias keeps the historical bfs-centric name that
// kernel packages and the facade use.
type Workspace = frontier.Engine

// NewWorkspace returns a workspace for graphs with n vertices.
func NewWorkspace(n int) *Workspace { return frontier.NewEngine(n) }

// AcquireWorkspace returns a pooled workspace sized for n vertices.
// Release it with ReleaseWorkspace when the traversal loop ends. The
// pool is shared with every direct frontier.Engine consumer, so
// back-to-back kernels on same-sized graphs reach allocation-free
// steady state.
func AcquireWorkspace(n int) *Workspace { return frontier.AcquireEngine(n) }

// ReleaseWorkspace returns a workspace to the pool. The caller must
// not use ws (or results read from it) afterwards.
func ReleaseWorkspace(ws *Workspace) { frontier.ReleaseEngine(ws) }
