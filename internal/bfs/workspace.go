package bfs

import (
	"snap/internal/graph"
	"snap/internal/par"
)

// Workspace is reusable BFS state for multi-source traversal loops.
// "Visited" is encoded by an epoch stamp — stamp[v] equals the current
// epoch iff v was reached by the most recent Run — so resetting between
// sources is a single counter increment (O(1)) instead of an O(n)
// re-fill of the distance and parent arrays. Exact closeness on an
// n-vertex graph therefore touches O(reached) state per source instead
// of paying O(n) allocation + memset traffic per source.
//
// The stamp invariant is that every stamp value is at most the current
// epoch. When the uint32 epoch counter wraps around (once every 2^32-1
// traversals), stamps from the previous generation could otherwise
// collide with fresh epochs, so the wrap path zero-fills the stamp
// array once and restarts at epoch 1 — amortized cost ~n/2^32 per
// traversal.
//
// A Workspace is not safe for concurrent use; acquire one per worker
// (see AcquireWorkspace / MultiSourceWorkspace). Accessor results are
// valid only until the next Run or Resize.
type Workspace struct {
	epoch  uint32
	stamp  []uint32 // stamp[v] == epoch ⇔ v visited by the latest Run
	dist   []int32  // meaningful only where stamp[v] == epoch
	parent []int32  // meaningful only where stamp[v] == epoch
	order  []int32  // visited vertices in BFS order; order[0] = src
}

// NewWorkspace returns a workspace for graphs with n vertices.
func NewWorkspace(n int) *Workspace {
	ws := &Workspace{}
	ws.Resize(n)
	return ws
}

// Resize prepares the workspace for a graph with n vertices, reusing
// the existing arrays when they are large enough. Any previous
// traversal state is discarded.
func (ws *Workspace) Resize(n int) {
	if cap(ws.dist) < n || cap(ws.stamp) < n || cap(ws.parent) < n {
		ws.stamp = make([]uint32, n)
		ws.dist = make([]int32, n)
		ws.parent = make([]int32, n)
		ws.epoch = 0
	} else {
		ws.stamp = ws.stamp[:n]
		ws.dist = ws.dist[:n]
		ws.parent = ws.parent[:n]
	}
	if ws.order == nil {
		ws.order = make([]int32, 0, 256)
	}
	ws.order = ws.order[:0]
}

// Len reports the number of vertices the workspace is sized for.
func (ws *Workspace) Len() int { return len(ws.dist) }

// begin opens a new traversal epoch: O(1) except on uint32 wraparound,
// where the stamp array is cleared once so stale stamps from the
// previous generation cannot alias the new epoch sequence.
func (ws *Workspace) begin() {
	ws.epoch++
	if ws.epoch == 0 {
		clear(ws.stamp)
		ws.epoch = 1
	}
	ws.order = ws.order[:0]
}

// Run performs a BFS from src, restricted to arcs whose edge id is
// alive (nil means all arcs) and to maxDepth levels (< 0 means
// unlimited — the paper's path-limited search otherwise). It produces
// exactly the distances and parents of Serial / limited traversal,
// readable through Dist/Parent/Order until the next Run.
func (ws *Workspace) Run(g *graph.Graph, src int32, alive []bool, maxDepth int32) {
	ws.begin()
	e := ws.epoch
	stamp, dist, parent := ws.stamp, ws.dist, ws.parent
	stamp[src] = e
	dist[src] = 0
	parent[src] = src
	order := append(ws.order, src)
	for head := 0; head < len(order); head++ {
		v := order[head]
		dv := dist[v]
		if maxDepth >= 0 && dv >= maxDepth {
			continue
		}
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		for a := lo; a < hi; a++ {
			if alive != nil && !alive[g.EID[a]] {
				continue
			}
			u := g.Adj[a]
			if stamp[u] != e {
				stamp[u] = e
				dist[u] = dv + 1
				parent[u] = v
				order = append(order, u)
			}
		}
	}
	ws.order = order
}

// Visited reports whether v was reached by the latest Run.
func (ws *Workspace) Visited(v int32) bool {
	return ws.epoch != 0 && ws.stamp[v] == ws.epoch
}

// Dist reports the hop distance of v from the latest source, or
// Unreached.
func (ws *Workspace) Dist(v int32) int32 {
	if !ws.Visited(v) {
		return Unreached
	}
	return ws.dist[v]
}

// Parent reports the BFS-tree parent of v (the source is its own
// parent), or -1 when unreached.
func (ws *Workspace) Parent(v int32) int32 {
	if !ws.Visited(v) {
		return -1
	}
	return ws.parent[v]
}

// Order returns the vertices reached by the latest Run in BFS
// visitation order (source first, distances non-decreasing). Read-only;
// valid until the next Run.
func (ws *Workspace) Order() []int32 { return ws.order }

// Reached reports the number of vertices reached (including the
// source) — O(1), unlike Result.Reached.
func (ws *Workspace) Reached() int { return len(ws.order) }

// MaxDist reports the eccentricity of the latest source in O(1): BFS
// visits vertices in non-decreasing distance order, so the last vertex
// of the visitation order is a farthest one.
func (ws *Workspace) MaxDist() int32 {
	if len(ws.order) == 0 {
		return 0
	}
	return ws.dist[ws.order[len(ws.order)-1]]
}

// SumDist reports the total hop distance from the latest source to
// every reached vertex in O(reached) — the closeness denominator.
func (ws *Workspace) SumDist() int64 {
	var total int64
	for _, v := range ws.order {
		total += int64(ws.dist[v])
	}
	return total
}

// Export materializes the latest traversal as a dense, caller-owned
// Result (allocates two O(n) arrays — the compatibility path for code
// that retains full distance vectors).
func (ws *Workspace) Export() Result {
	n := len(ws.dist)
	r := Result{Dist: make([]int32, n), Parent: make([]int32, n)}
	for i := range r.Dist {
		r.Dist[i] = Unreached
		r.Parent[i] = -1
	}
	for _, v := range ws.order {
		r.Dist[v] = ws.dist[v]
		r.Parent[v] = ws.parent[v]
	}
	return r
}

// wsPool amortizes workspaces across kernel invocations: closeness,
// diameter, average path length, and the GN split check all borrow
// from the same pool, so back-to-back analyses on same-sized graphs
// reach allocation-free steady state.
var wsPool = par.NewPool(func() *Workspace { return &Workspace{} })

// AcquireWorkspace returns a pooled workspace sized for n vertices.
// Release it with ReleaseWorkspace when the traversal loop ends.
func AcquireWorkspace(n int) *Workspace {
	ws := wsPool.Get()
	ws.Resize(n)
	return ws
}

// ReleaseWorkspace returns a workspace to the pool. The caller must
// not use ws (or results read from it) afterwards.
func ReleaseWorkspace(ws *Workspace) { wsPool.Put(ws) }
