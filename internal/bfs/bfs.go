// Package bfs implements SNAP's breadth-first search kernels: a serial
// reference, and the lock-free level-synchronous parallel BFS with
// degree-aware frontier partitioning that the paper uses as the
// building block for centrality and community detection on small-world
// networks (low diameter means few synchronization barriers).
package bfs

import (
	"sync"
	"sync/atomic"

	"snap/internal/graph"
	"snap/internal/par"
)

// Unreached marks vertices not reachable from the source.
const Unreached = int32(-1)

// Result holds a BFS tree: hop distances and parents (both -1 when
// unreached, and Parent[src] == src).
type Result struct {
	Dist   []int32
	Parent []int32
}

// Options configures a parallel traversal.
type Options struct {
	// Workers bounds parallelism; <= 0 means par.Workers().
	Workers int
	// Alive, when non-nil, restricts traversal to arcs whose edge id
	// has Alive[eid] == true. Used by the divisive clustering
	// algorithm, which logically deletes edges.
	Alive []bool
	// DegreeAware enables work-estimate-based frontier partitioning,
	// the paper's fix for skewed degree distributions.
	DegreeAware bool
}

// Serial runs a textbook queue-based BFS; the reference oracle for the
// parallel kernel, and the fast path for small fragments.
func Serial(g *graph.Graph, src int32, alive []bool) Result {
	n := g.NumVertices()
	dist := make([]int32, n)
	parent := make([]int32, n)
	for i := range dist {
		dist[i] = Unreached
		parent[i] = -1
	}
	dist[src] = 0
	parent[src] = src
	queue := make([]int32, 0, 256)
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		for a := lo; a < hi; a++ {
			if alive != nil && !alive[g.EID[a]] {
				continue
			}
			u := g.Adj[a]
			if dist[u] == Unreached {
				dist[u] = dist[v] + 1
				parent[u] = v
				queue = append(queue, u)
			}
		}
	}
	return Result{Dist: dist, Parent: parent}
}

// Parallel runs the level-synchronous parallel BFS. Vertices at each
// level are expanded concurrently; visitation is claimed with a
// compare-and-swap on the distance array (the paper's lock-free
// scheme), and each worker accumulates its slice of the next frontier
// locally, so the only synchronization per level is one barrier.
func Parallel(g *graph.Graph, src int32, opt Options) Result {
	workers := opt.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	n := g.NumVertices()
	dist := make([]int32, n)
	parent := make([]int32, n)
	for i := range dist {
		dist[i] = Unreached
		parent[i] = -1
	}
	dist[src] = 0
	parent[src] = src

	frontier := []int32{src}
	level := int32(0)
	nexts := make([][]int32, workers)
	for len(frontier) > 0 {
		level++
		expand := func(w, lo, hi int) {
			next := nexts[w][:0]
			for i := lo; i < hi; i++ {
				v := frontier[i]
				alo, ahi := g.Offsets[v], g.Offsets[v+1]
				for a := alo; a < ahi; a++ {
					if opt.Alive != nil && !opt.Alive[g.EID[a]] {
						continue
					}
					u := g.Adj[a]
					if atomic.CompareAndSwapInt32(&dist[u], Unreached, level) {
						atomic.StoreInt32(&parent[u], v)
						next = append(next, u)
					}
				}
			}
			nexts[w] = next
		}
		w := workers
		if w > len(frontier) {
			w = len(frontier)
		}
		for i := range nexts {
			if nexts[i] == nil {
				nexts[i] = make([]int32, 0, 256)
			}
			nexts[i] = nexts[i][:0]
		}
		if w <= 1 {
			expand(0, 0, len(frontier))
		} else if opt.DegreeAware {
			weight := make([]int64, len(frontier))
			for i, v := range frontier {
				weight[i] = g.Offsets[v+1] - g.Offsets[v]
			}
			par.ForDegreeAware(weight, w, expand)
		} else {
			par.ForChunkedN(len(frontier), w, expand)
		}
		frontier = frontier[:0]
		for _, nx := range nexts {
			frontier = append(frontier, nx...)
		}
	}
	return Result{Dist: dist, Parent: parent}
}

// MaxDist reports the eccentricity of the source in r (the largest
// finite distance), or 0 for an isolated source.
func (r Result) MaxDist() int32 {
	var mx int32
	for _, d := range r.Dist {
		if d > mx {
			mx = d
		}
	}
	return mx
}

// Reached reports the number of vertices reached (including the source).
func (r Result) Reached() int {
	c := 0
	for _, d := range r.Dist {
		if d != Unreached {
			c++
		}
	}
	return c
}

// MultiSourceWorkspace runs independent BFS traversals from each
// source across up to `workers` goroutines — the paper's "path-limited
// searches" coarse-grained paradigm — with each worker reusing one
// epoch-stamped Workspace, so the whole sweep allocates O(workers)
// scratch instead of O(len(sources)·n).
//
// visit(worker, i, ws) is invoked CONCURRENTLY (there is no global
// serialization, unlike the legacy MultiSource): worker ids are stable
// and distinct in [0, workers), and each source index i is visited
// exactly once, so callers reduce without locking either into
// per-worker accumulators (indexed by worker) or into disjoint
// per-source slots (indexed by i). The workspace is owned by the
// worker; its contents are valid only for the duration of the call.
// maxDepth < 0 means unlimited; otherwise traversal stops after that
// many levels (path-limited search).
func MultiSourceWorkspace(g *graph.Graph, sources []int32, maxDepth int32, workers int, visit func(worker, i int, ws *Workspace)) {
	if workers <= 0 {
		workers = par.Workers()
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	if len(sources) == 0 {
		return
	}
	n := g.NumVertices()
	if workers <= 1 {
		ws := AcquireWorkspace(n)
		for i, src := range sources {
			ws.Run(g, src, nil, maxDepth)
			visit(0, i, ws)
		}
		ReleaseWorkspace(ws)
		return
	}
	// Guided scheduling: workers claim one source at a time from a
	// shared counter (per-source BFS cost is irregular on skewed
	// graphs, so static chunking would load-imbalance).
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			ws := AcquireWorkspace(n)
			defer ReleaseWorkspace(ws)
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(sources) {
					return
				}
				ws.Run(g, sources[i], nil, maxDepth)
				visit(w, i, ws)
			}
		}(w)
	}
	wg.Wait()
}

// MultiSource is the legacy multi-source entry point, kept for
// compatibility: visit(i, result) calls are serialized under a mutex
// and each receives a freshly allocated dense Result it may retain.
// New code should use MultiSourceWorkspace, which neither serializes
// the reduction nor allocates per source.
func MultiSource(g *graph.Graph, sources []int32, maxDepth int32, workers int, visit func(i int, r Result)) {
	var mu sync.Mutex
	MultiSourceWorkspace(g, sources, maxDepth, workers, func(_, i int, ws *Workspace) {
		r := ws.Export()
		mu.Lock()
		visit(i, r)
		mu.Unlock()
	})
}
