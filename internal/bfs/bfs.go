// Package bfs implements SNAP's breadth-first search kernels: a serial
// reference, the lock-free level-synchronous parallel BFS with
// degree-aware frontier partitioning, and the direction-optimizing
// variant — all thin entry points over the shared frontier.Engine,
// the traversal core the paper's centrality and community kernels
// build on for small-world networks (low diameter means few
// synchronization barriers).
package bfs

import (
	"sync"
	"sync/atomic"

	"snap/internal/frontier"
	"snap/internal/graph"
	"snap/internal/par"
)

// Unreached marks vertices not reachable from the source.
const Unreached = frontier.Unreached

// Result holds a BFS tree: hop distances and parents (both -1 when
// unreached, and Parent[src] == src).
type Result = frontier.Result

// Options configures a parallel traversal.
type Options struct {
	// Workers bounds parallelism; <= 0 means par.Workers().
	Workers int
	// Alive, when non-nil, restricts traversal to arcs whose edge id
	// has Alive[eid] == true. Used by the divisive clustering
	// algorithm, which logically deletes edges.
	Alive []bool
	// DegreeAware enables work-estimate-based frontier partitioning,
	// the paper's fix for skewed degree distributions.
	DegreeAware bool
	// Alpha and Beta tune the direction-optimizing heuristic (only
	// honored by DirectionOptimizing); <= 0 means the frontier
	// package defaults.
	Alpha, Beta float64
	// Reverse supplies the in-adjacency CSR required for bottom-up
	// steps on directed graphs (see graph.Reverse); nil makes
	// directed direction-optimizing traversals fall back to top-down.
	Reverse *graph.Graph
	// Cancel, when non-nil, is polled once per level; reporting true
	// aborts the traversal early with partial results (see
	// frontier.Options.Cancel). The hook servers use to stop abandoned
	// queries from burning cores.
	Cancel func() bool
}

// Serial runs a textbook serial BFS through a pooled engine; the
// reference oracle for the parallel kernels, and the fast path for
// small fragments.
func Serial(g *graph.Graph, src int32, alive []bool) Result {
	e := frontier.AcquireEngine(g.NumVertices())
	defer frontier.ReleaseEngine(e)
	e.Run(g, src, alive, -1)
	return e.Export()
}

// Parallel runs the level-synchronous parallel BFS: vertices at each
// level are expanded concurrently, visitation is claimed with a
// compare-and-swap on the engine's stamp array (the paper's lock-free
// scheme), and each worker accumulates its slice of the next frontier
// locally, so the only synchronization per level is one barrier.
func Parallel(g *graph.Graph, src int32, opt Options) Result {
	e := frontier.AcquireEngine(g.NumVertices())
	defer frontier.ReleaseEngine(e)
	e.RunOptions(g, src, frontier.Options{
		Workers:     opt.Workers,
		Alive:       opt.Alive,
		MaxDepth:    -1,
		DegreeAware: opt.DegreeAware,
		Cancel:      opt.Cancel,
	})
	return e.Export()
}

// DirectionOptimizing runs a direction-optimizing BFS (Beamer-style):
// levels expand top-down (frontier pushes to neighbors) while the
// frontier is small, and switch to bottom-up (unvisited vertices probe
// whether any neighbor is in the frontier) when the frontier covers a
// large fraction of the remaining edges. On small-world graphs the
// middle levels contain most of the graph, and bottom-up sweeps touch
// each unvisited vertex once instead of scanning the frontier's entire
// (huge) neighborhood. Directed graphs run bottom-up only when
// opt.Reverse supplies the in-adjacency CSR.
func DirectionOptimizing(g *graph.Graph, src int32, opt Options) Result {
	e := frontier.AcquireEngine(g.NumVertices())
	defer frontier.ReleaseEngine(e)
	alpha := opt.Alpha
	if alpha <= 0 {
		alpha = frontier.DefaultAlpha
	}
	e.RunOptions(g, src, frontier.Options{
		Workers:     opt.Workers,
		Alive:       opt.Alive,
		MaxDepth:    -1,
		Alpha:       alpha,
		Beta:        opt.Beta,
		DegreeAware: opt.DegreeAware,
		Reverse:     opt.Reverse,
		Cancel:      opt.Cancel,
	})
	return e.Export()
}

// MultiSourceWorkspace runs independent BFS traversals from each
// source across up to `workers` goroutines — the paper's "path-limited
// searches" coarse-grained paradigm — with each worker reusing one
// epoch-stamped Workspace, so the whole sweep allocates O(workers)
// scratch instead of O(len(sources)·n).
//
// visit(worker, i, ws) is invoked CONCURRENTLY (there is no global
// serialization, unlike the legacy MultiSource): worker ids are stable
// and distinct in [0, workers), and each source index i is visited
// exactly once, so callers reduce without locking either into
// per-worker accumulators (indexed by worker) or into disjoint
// per-source slots (indexed by i). The workspace is owned by the
// worker; its contents are valid only for the duration of the call.
// maxDepth < 0 means unlimited; otherwise traversal stops after that
// many levels (path-limited search).
//
// Each traversal runs serially inside its worker with direction
// optimization enabled: every consumer reduces over distances (sums,
// counts, eccentricities), which are direction-independent, so the
// bottom-up sweeps through the dense middle levels of small-world
// graphs are a free win. Directed graphs fall back to top-down.
func MultiSourceWorkspace(g *graph.Graph, sources []int32, maxDepth int32, workers int, visit func(worker, i int, ws *Workspace)) {
	if workers <= 0 {
		workers = par.Workers()
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	if len(sources) == 0 {
		return
	}
	n := g.NumVertices()
	opt := frontier.Options{Workers: 1, MaxDepth: maxDepth, Alpha: frontier.DefaultAlpha}
	if workers <= 1 {
		ws := AcquireWorkspace(n)
		for i, src := range sources {
			ws.RunOptions(g, src, opt)
			visit(0, i, ws)
		}
		ReleaseWorkspace(ws)
		return
	}
	// Guided scheduling: workers claim one source at a time from a
	// shared counter (per-source BFS cost is irregular on skewed
	// graphs, so static chunking would load-imbalance).
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			ws := AcquireWorkspace(n)
			defer ReleaseWorkspace(ws)
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(sources) {
					return
				}
				ws.RunOptions(g, sources[i], opt)
				visit(w, i, ws)
			}
		}(w)
	}
	wg.Wait()
}

// MultiSource is the legacy multi-source entry point, kept for
// compatibility: visit(i, result) calls are serialized under a mutex
// and each receives a freshly allocated dense Result it may retain.
//
// Deprecated: use MultiSourceWorkspace, which neither serializes the
// reduction nor allocates per source — the mutex gates every worker
// behind one consumer and the two O(n) arrays per source defeat the
// pooled-workspace zero-allocation contract. MultiSource survives only
// for callers that genuinely must retain dense Results; none remain in
// this tree.
func MultiSource(g *graph.Graph, sources []int32, maxDepth int32, workers int, visit func(i int, r Result)) {
	var mu sync.Mutex
	MultiSourceWorkspace(g, sources, maxDepth, workers, func(_, i int, ws *Workspace) {
		r := ws.Export()
		mu.Lock()
		visit(i, r)
		mu.Unlock()
	})
}
