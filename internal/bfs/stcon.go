package bfs

import "snap/internal/graph"

// STConnectivity answers s-t connectivity queries with a bidirectional
// BFS that expands the smaller frontier first — the st-connectivity
// kernel the paper's BFS work (Bader & Madduri, ICPP 2006) pairs with
// breadth-first search. Returns whether t is reachable from s and, if
// so, the hop distance between them.
func STConnectivity(g *graph.Graph, s, t int32) (connected bool, dist int32) {
	if s == t {
		return true, 0
	}
	n := g.NumVertices()
	// level markers: 0 unvisited, +d from s side, -d from t side.
	mark := make([]int32, n)
	mark[s] = 1
	mark[t] = -1
	frontS := []int32{s}
	frontT := []int32{t}
	dS, dT := int32(1), int32(1)
	for len(frontS) > 0 && len(frontT) > 0 {
		if len(frontS) <= len(frontT) {
			var meet int32 = -1
			frontS, meet = stExpand(g, frontS, mark, dS, +1)
			if meet >= 0 {
				// meet carries the t-side depth at the contact vertex.
				return true, (dS - 1) + meet
			}
			dS++
		} else {
			var meet int32 = -1
			frontT, meet = stExpand(g, frontT, mark, dT, -1)
			if meet >= 0 {
				return true, (dT - 1) + meet
			}
			dT++
		}
	}
	return false, -1
}

// stExpand advances one wave. sign +1 expands the s side (positive
// marks), -1 the t side. On contact it returns the other side's depth
// at the contact vertex plus one (the connecting edge).
func stExpand(g *graph.Graph, front []int32, mark []int32, depth, sign int32) (next []int32, meet int32) {
	for _, v := range front {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		for a := lo; a < hi; a++ {
			u := g.Adj[a]
			mu := mark[u]
			switch {
			case mu == 0:
				mark[u] = sign * (depth + 1)
				next = append(next, u)
			case mu*sign < 0:
				// Opposite wave: total = this side's depth + other's.
				other := mu
				if other < 0 {
					other = -other
				}
				return nil, other
			}
		}
	}
	return next, -1
}
