package bfs

import (
	"snap/internal/frontier"
	"snap/internal/graph"
)

// STConnectivity answers s-t connectivity queries with a bidirectional
// BFS that expands the smaller frontier first — the st-connectivity
// kernel the paper's BFS work (Bader & Madduri, ICPP 2006) pairs with
// breadth-first search. Returns whether t is reachable from s and, if
// so, the hop distance between them. The two waves live in shared
// frontier.Frontier containers (sparse form).
func STConnectivity(g *graph.Graph, s, t int32) (connected bool, dist int32) {
	if s == t {
		return true, 0
	}
	n := g.NumVertices()
	// level markers: 0 unvisited, +d from s side, -d from t side.
	mark := make([]int32, n)
	mark[s] = 1
	mark[t] = -1
	var frontS, frontT, next frontier.Frontier
	frontS.Add(s, 0)
	frontT.Add(t, 0)
	dS, dT := int32(1), int32(1)
	for frontS.Len() > 0 && frontT.Len() > 0 {
		if frontS.Len() <= frontT.Len() {
			if meet := stExpand(g, &frontS, &next, mark, dS, +1); meet >= 0 {
				// meet carries the t-side depth at the contact vertex.
				return true, (dS - 1) + meet
			}
			frontS, next = next, frontS
			dS++
		} else {
			if meet := stExpand(g, &frontT, &next, mark, dT, -1); meet >= 0 {
				return true, (dT - 1) + meet
			}
			frontT, next = next, frontT
			dT++
		}
	}
	return false, -1
}

// stExpand advances one wave from front into next. sign +1 expands the
// s side (positive marks), -1 the t side. On contact it returns the
// other side's depth at the contact vertex plus one (the connecting
// edge); otherwise -1.
func stExpand(g *graph.Graph, front, next *frontier.Frontier, mark []int32, depth, sign int32) (meet int32) {
	next.Reset()
	for _, v := range front.Verts() {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		for a := lo; a < hi; a++ {
			u := g.Adj[a]
			mu := mark[u]
			switch {
			case mu == 0:
				mark[u] = sign * (depth + 1)
				next.Add(u, 0)
			case mu*sign < 0:
				// Opposite wave: total = this side's depth + other's.
				if mu < 0 {
					return -mu
				}
				return mu
			}
		}
	}
	return -1
}
