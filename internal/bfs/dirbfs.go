package bfs

import (
	"sync/atomic"

	"snap/internal/graph"
	"snap/internal/par"
)

// DirectionOptimizing runs a direction-optimizing BFS (Beamer-style):
// levels expand top-down (frontier pushes to neighbors) while the
// frontier is small, and switch to bottom-up (unvisited vertices probe
// whether any neighbor is in the frontier) when the frontier covers a
// large fraction of the remaining edges. On small-world graphs the
// middle levels contain most of the graph, and bottom-up sweeps touch
// each unvisited vertex once instead of scanning the frontier's entire
// (huge) neighborhood.
func DirectionOptimizing(g *graph.Graph, src int32, opt Options) Result {
	workers := opt.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	n := g.NumVertices()
	dist := make([]int32, n)
	parent := make([]int32, n)
	for i := range dist {
		dist[i] = Unreached
		parent[i] = -1
	}
	dist[src] = 0
	parent[src] = src

	inFrontier := make([]uint32, n) // level+1 of frontier membership
	frontier := []int32{src}
	inFrontier[src] = 1
	level := int32(0)
	nexts := make([][]int32, workers)
	for i := range nexts {
		nexts[i] = make([]int32, 0, 256)
	}

	// Heuristic switch threshold: go bottom-up when the frontier's
	// out-degree sum exceeds a fraction of remaining unexplored edges.
	var frontierEdges int64
	for _, v := range frontier {
		frontierEdges += g.Offsets[v+1] - g.Offsets[v]
	}
	remaining := int64(g.NumArcs())

	for len(frontier) > 0 {
		level++
		useBottomUp := frontierEdges*14 > remaining && opt.Alive == nil
		for i := range nexts {
			nexts[i] = nexts[i][:0]
		}
		if useBottomUp {
			// Bottom-up: every unvisited vertex scans its neighbors
			// for a frontier member.
			par.ForChunkedN(n, workers, func(w, lo, hi int) {
				next := nexts[w]
				for vi := lo; vi < hi; vi++ {
					if dist[vi] != Unreached {
						continue
					}
					alo, ahi := g.Offsets[vi], g.Offsets[vi+1]
					for a := alo; a < ahi; a++ {
						u := g.Adj[a]
						if inFrontier[u] == uint32(level) {
							dist[vi] = level
							parent[vi] = u
							next = append(next, int32(vi))
							break
						}
					}
				}
				nexts[w] = next
			})
		} else {
			par.ForChunkedN(len(frontier), workers, func(w, lo, hi int) {
				next := nexts[w]
				for i := lo; i < hi; i++ {
					v := frontier[i]
					alo, ahi := g.Offsets[v], g.Offsets[v+1]
					for a := alo; a < ahi; a++ {
						if opt.Alive != nil && !opt.Alive[g.EID[a]] {
							continue
						}
						u := g.Adj[a]
						if atomic.CompareAndSwapInt32(&dist[u], Unreached, level) {
							atomic.StoreInt32(&parent[u], v)
							next = append(next, u)
						}
					}
				}
				nexts[w] = next
			})
		}
		remaining -= frontierEdges
		frontier = frontier[:0]
		frontierEdges = 0
		for _, nx := range nexts {
			frontier = append(frontier, nx...)
		}
		for _, v := range frontier {
			inFrontier[v] = uint32(level) + 1
			frontierEdges += g.Offsets[v+1] - g.Offsets[v]
		}
	}
	return Result{Dist: dist, Parent: parent}
}
