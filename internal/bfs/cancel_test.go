package bfs

import (
	"testing"

	"snap/internal/generate"
)

// TestParallelCancel pins the level-boundary cancellation hook: a
// Cancel that trips after k polls leaves exactly the first k levels
// settled (every vertex at depth < k has its serial-BFS distance,
// nothing deeper is labeled), and a hook that never trips changes
// nothing.
func TestParallelCancel(t *testing.T) {
	g := generate.RMAT(1<<10, 1<<12, generate.DefaultRMAT(), 11)
	src := int32(3)
	want := Serial(g, src, nil)

	for _, run := range []struct {
		name string
		bfs  func(cancel func() bool) Result
	}{
		{"parallel", func(cancel func() bool) Result {
			return Parallel(g, src, Options{Workers: 2, Cancel: cancel})
		}},
		{"diropt", func(cancel func() bool) Result {
			return DirectionOptimizing(g, src, Options{Workers: 2, Cancel: cancel})
		}},
	} {
		never := run.bfs(func() bool { return false })
		for v := range want.Dist {
			if never.Dist[v] != want.Dist[v] {
				t.Fatalf("%s: non-tripping Cancel: dist[%d] = %d, want %d",
					run.name, v, never.Dist[v], want.Dist[v])
			}
		}

		const stopAfter = 2
		polls := 0
		got := run.bfs(func() bool { polls++; return polls > stopAfter })
		deeper := 0
		for v := range got.Dist {
			switch {
			case want.Dist[v] >= 0 && want.Dist[v] < stopAfter:
				if got.Dist[v] != want.Dist[v] {
					t.Fatalf("%s: cancelled run lost settled level: dist[%d] = %d, want %d",
						run.name, v, got.Dist[v], want.Dist[v])
				}
			case want.Dist[v] > stopAfter:
				if got.Dist[v] != Unreached {
					deeper++
				}
			}
		}
		if deeper > 0 {
			t.Fatalf("%s: cancelled run labeled %d vertices beyond the cancel level", run.name, deeper)
		}
	}
}
