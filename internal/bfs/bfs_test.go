package bfs

import (
	"math/rand"
	"testing"

	"snap/internal/generate"
	"snap/internal/graph"
)

func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1)})
	}
	g, err := graph.Build(n, edges, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSerialOnPath(t *testing.T) {
	g := pathGraph(t, 5)
	r := Serial(g, 0, nil)
	for v := int32(0); v < 5; v++ {
		if r.Dist[v] != v {
			t.Fatalf("dist[%d] = %d", v, r.Dist[v])
		}
	}
	if r.Parent[0] != 0 || r.Parent[3] != 2 {
		t.Fatalf("parents wrong: %v", r.Parent)
	}
	if r.MaxDist() != 4 || r.Reached() != 5 {
		t.Fatalf("summary wrong: %d %d", r.MaxDist(), r.Reached())
	}
}

func TestSerialDisconnected(t *testing.T) {
	g, _ := graph.Build(4, []graph.Edge{{U: 0, V: 1}}, graph.BuildOptions{})
	r := Serial(g, 0, nil)
	if r.Dist[2] != Unreached || r.Parent[2] != -1 {
		t.Fatal("unreached vertex should stay marked")
	}
	if r.Reached() != 2 {
		t.Fatalf("Reached = %d", r.Reached())
	}
}

func TestSerialAliveMask(t *testing.T) {
	g := pathGraph(t, 5)
	alive := make([]bool, g.NumEdges())
	for i := range alive {
		alive[i] = true
	}
	// Kill the middle edge (2-3).
	alive[g.EdgeIDOf(2, 3)] = false
	r := Serial(g, 0, alive)
	if r.Dist[2] != 2 || r.Dist[3] != Unreached {
		t.Fatalf("mask not respected: %v", r.Dist)
	}
}

func TestParallelMatchesSerialOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		g := generate.RMAT(500, 2000, generate.DefaultRMAT(), int64(trial))
		src := int32(rng.Intn(g.NumVertices()))
		want := Serial(g, src, nil)
		for _, da := range []bool{false, true} {
			for _, workers := range []int{1, 2, 4} {
				got := Parallel(g, src, Options{Workers: workers, DegreeAware: da})
				for v := range want.Dist {
					if got.Dist[v] != want.Dist[v] {
						t.Fatalf("trial %d workers %d da %v: dist[%d] = %d, want %d",
							trial, workers, da, v, got.Dist[v], want.Dist[v])
					}
				}
			}
		}
	}
}

func TestParallelParentsFormValidTree(t *testing.T) {
	g := generate.RMAT(1000, 5000, generate.DefaultRMAT(), 99)
	r := Parallel(g, 0, Options{Workers: 4})
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		if r.Dist[v] == Unreached {
			continue
		}
		p := r.Parent[v]
		if v == 0 {
			if p != 0 {
				t.Fatal("root parent must be itself")
			}
			continue
		}
		if p < 0 {
			t.Fatalf("reached vertex %d has no parent", v)
		}
		if r.Dist[v] != r.Dist[p]+1 {
			t.Fatalf("tree edge %d->%d does not step one level", p, v)
		}
		if !g.HasEdge(p, v) {
			t.Fatalf("parent edge %d->%d not in graph", p, v)
		}
	}
}

func TestParallelAliveMask(t *testing.T) {
	g := pathGraph(t, 6)
	alive := make([]bool, g.NumEdges())
	for i := range alive {
		alive[i] = true
	}
	alive[g.EdgeIDOf(1, 2)] = false
	r := Parallel(g, 0, Options{Alive: alive, Workers: 3})
	if r.Dist[1] != 1 || r.Dist[2] != Unreached {
		t.Fatalf("alive mask broken: %v", r.Dist)
	}
}

func TestMultiSourceVisitsEverySource(t *testing.T) {
	g := generate.RMAT(300, 1200, generate.DefaultRMAT(), 2)
	sources := []int32{0, 5, 10, 15}
	seen := map[int]bool{}
	MultiSource(g, sources, -1, 3, func(i int, r Result) {
		seen[i] = true
		if r.Dist[sources[i]] != 0 {
			t.Errorf("source %d not at distance 0", sources[i])
		}
	})
	if len(seen) != len(sources) {
		t.Fatalf("visited %d sources, want %d", len(seen), len(sources))
	}
}

func TestMultiSourceDepthLimit(t *testing.T) {
	g := pathGraph(t, 10)
	MultiSource(g, []int32{0}, 3, 1, func(_ int, r Result) {
		if r.Dist[3] != 3 {
			t.Errorf("dist[3] = %d, want 3", r.Dist[3])
		}
		if r.Dist[4] != Unreached {
			t.Errorf("depth limit ignored: dist[4] = %d", r.Dist[4])
		}
	})
}

func BenchmarkBFSSerial(b *testing.B) {
	g := generate.RMAT(1<<15, 1<<17, generate.DefaultRMAT(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Serial(g, 0, nil)
	}
}

func BenchmarkBFSParallel(b *testing.B) {
	g := generate.RMAT(1<<15, 1<<17, generate.DefaultRMAT(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Parallel(g, 0, Options{DegreeAware: true})
	}
}
