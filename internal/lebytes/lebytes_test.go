package lebytes

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// TestRoundTrip pins the byte encoding to little-endian (independent of
// the host) and the conversions to exact inverses, including NaN
// payloads and signed extremes.
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 1000

	i64 := make([]int64, n)
	for i := range i64 {
		i64[i] = rng.Int63() - rng.Int63()
	}
	i64[0], i64[1] = math.MaxInt64, math.MinInt64
	b := make([]byte, 8*n)
	Int64sToBytes(b, i64)
	for i, v := range i64 {
		if got := int64(binary.LittleEndian.Uint64(b[i*8:])); got != v {
			t.Fatalf("int64 LE encode [%d]: got %d want %d", i, got, v)
		}
	}
	back64 := make([]int64, n)
	BytesToInt64s(back64, b)
	for i := range i64 {
		if back64[i] != i64[i] {
			t.Fatalf("int64 round trip [%d]: got %d want %d", i, back64[i], i64[i])
		}
	}

	i32 := make([]int32, n)
	for i := range i32 {
		i32[i] = rng.Int31() - rng.Int31()
	}
	i32[0], i32[1] = math.MaxInt32, math.MinInt32
	b = make([]byte, 4*n)
	Int32sToBytes(b, i32)
	for i, v := range i32 {
		if got := int32(binary.LittleEndian.Uint32(b[i*4:])); got != v {
			t.Fatalf("int32 LE encode [%d]: got %d want %d", i, got, v)
		}
	}
	back32 := make([]int32, n)
	BytesToInt32s(back32, b)
	for i := range i32 {
		if back32[i] != i32[i] {
			t.Fatalf("int32 round trip [%d]: got %d want %d", i, back32[i], i32[i])
		}
	}

	f64 := make([]float64, n)
	for i := range f64 {
		f64[i] = rng.NormFloat64()
	}
	f64[0] = math.Inf(1)
	f64[1] = math.Float64frombits(0x7ff8_dead_beef_0001) // NaN payload
	b = make([]byte, 8*n)
	Float64sToBytes(b, f64)
	backF := make([]float64, n)
	BytesToFloat64s(backF, b)
	for i := range f64 {
		if math.Float64bits(backF[i]) != math.Float64bits(f64[i]) {
			t.Fatalf("float64 round trip [%d]: bits %x want %x",
				i, math.Float64bits(backF[i]), math.Float64bits(f64[i]))
		}
	}
}

// TestAlias checks the zero-copy casts view the same memory (a write
// through the alias is visible in the bytes) and reject misaligned or
// ragged input.
func TestAlias(t *testing.T) {
	raw := make([]byte, 64+8)
	b := raw[:64]
	if s, ok := AliasInt64s(b); ok {
		s[0] = 0x0102030405060708
		if binary.LittleEndian.Uint64(b) != 0x0102030405060708 {
			t.Fatal("alias write not visible in bytes")
		}
		if len(s) != 8 {
			t.Fatalf("alias length %d want 8", len(s))
		}
	}
	if s, ok := AliasInt32s(b); ok && len(s) != 16 {
		t.Fatalf("int32 alias length %d want 16", len(s))
	}
	if s, ok := AliasFloat64s(b); ok && len(s) != 8 {
		t.Fatalf("float64 alias length %d want 8", len(s))
	}
	if _, ok := AliasInt64s(raw[:63]); ok {
		t.Fatal("ragged alias accepted")
	}
	if aligned(raw, 8) {
		if _, ok := AliasInt64s(raw[1 : 1+56]); ok {
			t.Fatal("misaligned alias accepted")
		}
	}
	if s, ok := AliasInt64s(nil); !ok || len(s) != 0 {
		t.Fatal("empty alias should succeed with length 0")
	}
}
