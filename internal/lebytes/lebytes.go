// Package lebytes provides bulk little-endian conversions between
// numeric slices and raw bytes, plus zero-copy alias casts for mapped
// files. It is the byte layer under both graph serialization paths:
// the legacy SNP1 stream format (which previously round-tripped every
// element through reflection in encoding/binary) and the mmap'd SNP2
// container (whose sections alias the mapping directly).
//
// On little-endian machines the conversions compile to memmoves and the
// alias casts are free; on big-endian machines the conversions fall
// back to element loops and the alias casts report failure, so callers
// copy instead. Either way the byte encoding is little-endian, the
// on-disk convention of every SNAP format.
package lebytes

import (
	"encoding/binary"
	"io"
	"math"
	"unsafe"
)

// nativeLE reports whether the host stores integers little-endian.
var nativeLE = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// bytesOf returns the raw bytes backing a numeric slice (native order).
func bytesOf[T int32 | int64 | float64](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(s[0])))
}

// Int64sToBytes encodes src into dst (len(dst) >= 8*len(src)).
func Int64sToBytes(dst []byte, src []int64) {
	if nativeLE {
		copy(dst, bytesOf(src))
		return
	}
	for i, v := range src {
		binary.LittleEndian.PutUint64(dst[i*8:], uint64(v))
	}
}

// Int32sToBytes encodes src into dst (len(dst) >= 4*len(src)).
func Int32sToBytes(dst []byte, src []int32) {
	if nativeLE {
		copy(dst, bytesOf(src))
		return
	}
	for i, v := range src {
		binary.LittleEndian.PutUint32(dst[i*4:], uint32(v))
	}
}

// Float64sToBytes encodes src into dst (len(dst) >= 8*len(src)).
func Float64sToBytes(dst []byte, src []float64) {
	if nativeLE {
		copy(dst, bytesOf(src))
		return
	}
	for i, v := range src {
		binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(v))
	}
}

// BytesToInt64s decodes len(dst) values from src (len(src) >= 8*len(dst)).
func BytesToInt64s(dst []int64, src []byte) {
	if nativeLE {
		copy(bytesOf(dst), src)
		return
	}
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(src[i*8:]))
	}
}

// BytesToInt32s decodes len(dst) values from src (len(src) >= 4*len(dst)).
func BytesToInt32s(dst []int32, src []byte) {
	if nativeLE {
		copy(bytesOf(dst), src)
		return
	}
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(src[i*4:]))
	}
}

// BytesToFloat64s decodes len(dst) values from src (len(src) >= 8*len(dst)).
func BytesToFloat64s(dst []float64, src []byte) {
	if nativeLE {
		copy(bytesOf(dst), src)
		return
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
	}
}

// Int64Bytes returns a read-only little-endian byte view of src
// without copying, or nil, false on big-endian hosts (where the caller
// must convert through Int64sToBytes instead). The view aliases src:
// it is valid only while src is, and must not be written.
func Int64Bytes(src []int64) ([]byte, bool) {
	if !nativeLE {
		return nil, false
	}
	return bytesOf(src), true
}

// Int32Bytes is Int64Bytes for []int32.
func Int32Bytes(src []int32) ([]byte, bool) {
	if !nativeLE {
		return nil, false
	}
	return bytesOf(src), true
}

// Float64Bytes is Int64Bytes for []float64.
func Float64Bytes(src []float64) ([]byte, bool) {
	if !nativeLE {
		return nil, false
	}
	return bytesOf(src), true
}

// streamChunk is the scratch size for streaming writes on hosts where
// slice memory cannot be viewed as bytes directly.
const streamChunk = 1 << 20

// WriteInt64s writes src to w as little-endian bytes: a single Write
// of the slice memory on little-endian hosts, chunked conversion
// elsewhere.
func WriteInt64s(w io.Writer, src []int64) error {
	if view, ok := Int64Bytes(src); ok {
		_, err := w.Write(view)
		return err
	}
	buf := make([]byte, streamChunk)
	for len(src) > 0 {
		c := min(len(src), len(buf)/8)
		Int64sToBytes(buf, src[:c])
		if _, err := w.Write(buf[:c*8]); err != nil {
			return err
		}
		src = src[c:]
	}
	return nil
}

// WriteInt32s is WriteInt64s for []int32.
func WriteInt32s(w io.Writer, src []int32) error {
	if view, ok := Int32Bytes(src); ok {
		_, err := w.Write(view)
		return err
	}
	buf := make([]byte, streamChunk)
	for len(src) > 0 {
		c := min(len(src), len(buf)/4)
		Int32sToBytes(buf, src[:c])
		if _, err := w.Write(buf[:c*4]); err != nil {
			return err
		}
		src = src[c:]
	}
	return nil
}

// WriteFloat64s is WriteInt64s for []float64.
func WriteFloat64s(w io.Writer, src []float64) error {
	if view, ok := Float64Bytes(src); ok {
		_, err := w.Write(view)
		return err
	}
	buf := make([]byte, streamChunk)
	for len(src) > 0 {
		c := min(len(src), len(buf)/8)
		Float64sToBytes(buf, src[:c])
		if _, err := w.Write(buf[:c*8]); err != nil {
			return err
		}
		src = src[c:]
	}
	return nil
}

// aligned reports whether b starts on an align-byte boundary.
func aligned(b []byte, align uintptr) bool {
	return len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%align == 0
}

// AliasInt64s reinterprets b as []int64 without copying. It fails (and
// the caller must copy via BytesToInt64s) on big-endian hosts, when b
// is not 8-byte aligned, or when len(b) is not a multiple of 8.
func AliasInt64s(b []byte) ([]int64, bool) {
	if !nativeLE || len(b)%8 != 0 || !aligned(b, 8) {
		return nil, false
	}
	if len(b) == 0 {
		return []int64{}, true
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8), true
}

// AliasInt32s reinterprets b as []int32 without copying; same caveats
// as AliasInt64s with 4-byte alignment.
func AliasInt32s(b []byte) ([]int32, bool) {
	if !nativeLE || len(b)%4 != 0 || !aligned(b, 4) {
		return nil, false
	}
	if len(b) == 0 {
		return []int32{}, true
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4), true
}

// AliasFloat64s reinterprets b as []float64 without copying; same
// caveats as AliasInt64s.
func AliasFloat64s(b []byte) ([]float64, bool) {
	if !nativeLE || len(b)%8 != 0 || !aligned(b, 8) {
		return nil, false
	}
	if len(b) == 0 {
		return []float64{}, true
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8), true
}
