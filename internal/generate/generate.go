// Package generate provides the synthetic graph families used by the
// SNAP experiments: R-MAT small-world networks, sparse Erdős–Rényi
// random graphs, road-network-like 2-D meshes, Watts–Strogatz rings,
// planted-partition community benchmarks, and preferential-attachment
// graphs. All generators are deterministic given a seed.
package generate

import (
	"math"
	"math/rand"

	"snap/internal/graph"
)

// RMATParams are the quadrant probabilities of the recursive matrix
// generator (Chakrabarti, Zhan & Faloutsos, SDM 2004). The defaults
// match the skewed settings commonly used for small-world synthetic
// graphs (and SNAP's RMAT-SF instance).
type RMATParams struct {
	A, B, C, D float64
	// Noise perturbs the quadrant probabilities at each recursion
	// level to avoid exact self-similarity artifacts; 0 disables.
	Noise float64
}

// DefaultRMAT returns the standard skewed R-MAT parameters
// (a=0.55, b=0.1, c=0.1, d=0.25).
func DefaultRMAT() RMATParams {
	return RMATParams{A: 0.55, B: 0.1, C: 0.1, D: 0.25, Noise: 0.05}
}

// RMAT generates an undirected R-MAT graph with n vertices (rounded up
// to a power of two internally, then endpoints reduced mod n) and
// approximately m edges (self-loops and duplicates are dropped during
// CSR construction, so the final edge count may be slightly lower).
func RMAT(n, m int, p RMATParams, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	levels := 0
	for 1<<levels < n {
		levels++
	}
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u, v := rmatEdge(rng, levels, p)
		u %= int32(n)
		v %= int32(n)
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v, W: 1})
	}
	return graph.MustBuild(n, edges, graph.BuildOptions{})
}

func rmatEdge(rng *rand.Rand, levels int, p RMATParams) (int32, int32) {
	var u, v int32
	a, b, c, d := p.A, p.B, p.C, p.D
	for l := 0; l < levels; l++ {
		aa, bb, cc, dd := a, b, c, d
		if p.Noise > 0 {
			aa *= 1 - p.Noise + 2*p.Noise*rng.Float64()
			bb *= 1 - p.Noise + 2*p.Noise*rng.Float64()
			cc *= 1 - p.Noise + 2*p.Noise*rng.Float64()
			dd *= 1 - p.Noise + 2*p.Noise*rng.Float64()
			s := aa + bb + cc + dd
			aa, bb, cc, dd = aa/s, bb/s, cc/s, dd/s
		}
		r := rng.Float64()
		u <<= 1
		v <<= 1
		switch {
		case r < aa:
			// top-left: no bits set
		case r < aa+bb:
			v |= 1
		case r < aa+bb+cc:
			u |= 1
		default:
			u |= 1
			v |= 1
		}
		_ = dd
	}
	return u, v
}

// ErdosRenyi generates a sparse undirected G(n, m) random graph with
// exactly m distinct edges (sampled without replacement).
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[uint64]struct{}, m)
	edges := make([]graph.Edge, 0, m)
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		m = int(maxEdges)
	}
	for len(edges) < m {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(uint32(v))
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		edges = append(edges, graph.Edge{U: u, V: v, W: 1})
	}
	return graph.MustBuild(n, edges, graph.BuildOptions{})
}

// RoadMesh generates a road-network-like graph: a rows×cols 2-D grid
// with 4-neighbor connectivity, plus a fraction extra of random short
// "diagonal" shortcuts connecting vertices at grid distance 2. The
// result has the near-Euclidean topology (high diameter, uniform low
// degree, localized connectivity) that makes multilevel and spectral
// partitioners succeed — the paper's "Physical (road)" instance.
func RoadMesh(rows, cols int, extra float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := rows * cols
	id := func(r, c int) int32 { return int32(r*cols + c) }
	var edges []graph.Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1), W: 1})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c), W: 1})
			}
		}
	}
	nextra := int(extra * float64(len(edges)))
	for i := 0; i < nextra; i++ {
		r := rng.Intn(rows)
		c := rng.Intn(cols)
		dr := rng.Intn(3) - 1
		dc := rng.Intn(3) - 1
		r2, c2 := r+2*dr, c+2*dc
		if (dr == 0 && dc == 0) || r2 < 0 || r2 >= rows || c2 < 0 || c2 >= cols {
			continue
		}
		edges = append(edges, graph.Edge{U: id(r, c), V: id(r2, c2), W: 1})
	}
	return graph.MustBuild(n, edges, graph.BuildOptions{})
}

// WattsStrogatz generates the classic small-world ring: n vertices each
// joined to its k nearest ring neighbors (k even), with each edge
// rewired to a random endpoint with probability beta.
func WattsStrogatz(n, k int, beta float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	if k%2 != 0 {
		k++
	}
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := (u + j) % n
			if rng.Float64() < beta {
				for tries := 0; tries < 32; tries++ {
					cand := rng.Intn(n)
					if cand != u {
						v = cand
						break
					}
				}
			}
			if u != v {
				edges = append(edges, graph.Edge{U: int32(u), V: int32(v), W: 1})
			}
		}
	}
	return graph.MustBuild(n, edges, graph.BuildOptions{})
}

// PlantedPartition generates the planted l-partition community
// benchmark: k communities of size csize; within-community edges occur
// with probability pin and cross-community edges with probability pout.
// It returns the graph and the ground-truth community assignment.
// For tractability on large n, cross-community edges are sampled by
// count rather than by Bernoulli trial per pair.
func PlantedPartition(k, csize int, pin, pout float64, seed int64) (*graph.Graph, []int32) {
	rng := rand.New(rand.NewSource(seed))
	n := k * csize
	truth := make([]int32, n)
	var edges []graph.Edge
	for c := 0; c < k; c++ {
		base := c * csize
		for i := 0; i < csize; i++ {
			truth[base+i] = int32(c)
		}
		for i := 0; i < csize; i++ {
			for j := i + 1; j < csize; j++ {
				if rng.Float64() < pin {
					edges = append(edges, graph.Edge{U: int32(base + i), V: int32(base + j), W: 1})
				}
			}
		}
	}
	crossPairs := float64(n) * float64(n-csize) / 2
	want := int(pout * crossPairs)
	for added := 0; added < want; {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v || truth[u] == truth[v] {
			continue
		}
		edges = append(edges, graph.Edge{U: int32(u), V: int32(v), W: 1})
		added++
	}
	return graph.MustBuild(n, edges, graph.BuildOptions{}), truth
}

// PreferentialAttachment generates a Barabási–Albert graph: vertices
// arrive one at a time and attach k edges to existing vertices chosen
// proportionally to degree. Produces the power-law degree distribution
// typical of collaboration and citation networks.
func PreferentialAttachment(n, k int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	if k < 1 {
		k = 1
	}
	var edges []graph.Edge
	// targets holds one entry per arc endpoint so uniform sampling
	// from it is degree-proportional sampling.
	targets := make([]int32, 0, 2*n*k)
	// Seed clique of k+1 vertices.
	seedN := k + 1
	if seedN > n {
		seedN = n
	}
	for i := 0; i < seedN; i++ {
		for j := i + 1; j < seedN; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j), W: 1})
			targets = append(targets, int32(i), int32(j))
		}
	}
	for v := seedN; v < n; v++ {
		chosen := make(map[int32]struct{}, k)
		for len(chosen) < k && len(chosen) < v {
			t := targets[rng.Intn(len(targets))]
			chosen[t] = struct{}{}
		}
		for t := range chosen {
			edges = append(edges, graph.Edge{U: int32(v), V: t, W: 1})
			targets = append(targets, int32(v), t)
		}
	}
	return graph.MustBuild(n, edges, graph.BuildOptions{})
}

// Tree generates a uniformly random labelled tree on n vertices via a
// random Prüfer-like attachment (each vertex i>0 attaches to a uniform
// random predecessor). Useful for testing bridge/articulation kernels:
// every edge of a tree is a bridge.
func Tree(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		edges = append(edges, graph.Edge{U: int32(u), V: int32(v), W: 1})
	}
	return graph.MustBuild(n, edges, graph.BuildOptions{})
}

// Ring generates the n-cycle. Every vertex has degree 2 and the graph
// is biconnected; useful as a no-bridges test case.
func Ring(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n)
	for v := 0; v < n; v++ {
		edges = append(edges, graph.Edge{U: int32(v), V: int32((v + 1) % n), W: 1})
	}
	return graph.MustBuild(n, edges, graph.BuildOptions{})
}

// Complete generates the complete graph K_n.
func Complete(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j), W: 1})
		}
	}
	return graph.MustBuild(n, edges, graph.BuildOptions{})
}

// RandomWeights returns a copy of g with integer edge weights drawn
// uniformly from [1, maxW], for exercising weighted-path kernels.
func RandomWeights(g *graph.Graph, maxW int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := g.EdgeEndpoints()
	for i := range edges {
		edges[i].W = float64(1 + rng.Intn(maxW))
	}
	return graph.MustBuild(g.NumVertices(), edges, graph.BuildOptions{
		Directed: g.Directed(),
		Weighted: true,
	})
}

// DegreeExponentEstimate fits a crude power-law exponent to the degree
// distribution of g via log-log linear regression over degrees >= 2.
// Returns NaN when fewer than two distinct degrees exist. Used by
// dataset surrogates to confirm skew.
func DegreeExponentEstimate(g *graph.Graph) float64 {
	hist := map[int]int{}
	for v := 0; v < g.NumVertices(); v++ {
		d := g.Degree(int32(v))
		if d >= 2 {
			hist[d]++
		}
	}
	if len(hist) < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	var cnt float64
	for d, c := range hist {
		x := math.Log(float64(d))
		y := math.Log(float64(c))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		cnt++
	}
	denom := cnt*sxx - sx*sx
	if denom == 0 {
		return math.NaN()
	}
	slope := (cnt*sxy - sx*sy) / denom
	return -slope
}

// RewireDegreePreserving returns a copy of g rewired by `swaps` random
// double-edge swaps: edges (a,b) and (c,d) become (a,d) and (c,b)
// when that creates no self-loop or duplicate. The result has exactly
// the degree sequence of g but randomized structure — the
// configuration-model null graph behind the modularity measure's
// "expected by random chance" term.
func RewireDegreePreserving(g *graph.Graph, swaps int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := g.EdgeEndpoints()
	m := len(edges)
	if m < 2 {
		return g
	}
	present := make(map[uint64]struct{}, m)
	key := func(u, v int32) uint64 {
		if u > v {
			u, v = v, u
		}
		return uint64(u)<<32 | uint64(uint32(v))
	}
	for _, e := range edges {
		present[key(e.U, e.V)] = struct{}{}
	}
	done := 0
	for tries := 0; done < swaps && tries < 20*swaps; tries++ {
		i := rng.Intn(m)
		j := rng.Intn(m)
		if i == j {
			continue
		}
		a, b := edges[i].U, edges[i].V
		c, d := edges[j].U, edges[j].V
		// Candidate: (a,d) and (c,b).
		if a == d || c == b {
			continue
		}
		if _, dup := present[key(a, d)]; dup {
			continue
		}
		if _, dup := present[key(c, b)]; dup {
			continue
		}
		delete(present, key(a, b))
		delete(present, key(c, d))
		present[key(a, d)] = struct{}{}
		present[key(c, b)] = struct{}{}
		edges[i].V = d
		edges[j].V = b
		done++
	}
	return graph.MustBuild(g.NumVertices(), edges, graph.BuildOptions{})
}
