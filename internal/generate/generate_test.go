package generate

import (
	"testing"

	"snap/internal/graph"
)

func TestRMATSizesAndDeterminism(t *testing.T) {
	g1 := RMAT(1000, 4000, DefaultRMAT(), 7)
	g2 := RMAT(1000, 4000, DefaultRMAT(), 7)
	if g1.NumVertices() != 1000 {
		t.Fatalf("n = %d", g1.NumVertices())
	}
	// Duplicates/self-loops are dropped, so m is near but <= requested.
	if g1.NumEdges() < 3000 || g1.NumEdges() > 4000 {
		t.Fatalf("m = %d, want (3000, 4000]", g1.NumEdges())
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("RMAT not deterministic for equal seeds")
	}
	if err := graph.Validate(g1); err != nil {
		t.Fatal(err)
	}
}

func TestRMATSkewedDegrees(t *testing.T) {
	g := RMAT(4096, 32768, DefaultRMAT(), 11)
	// A skewed generator must produce a hub far above the mean degree.
	mean := float64(g.NumArcs()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 4*mean {
		t.Fatalf("max degree %d not skewed vs mean %.1f", g.MaxDegree(), mean)
	}
}

func TestErdosRenyiExactEdgeCount(t *testing.T) {
	g := ErdosRenyi(500, 2000, 3)
	if g.NumEdges() != 2000 {
		t.Fatalf("m = %d, want 2000", g.NumEdges())
	}
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyiCapsAtCompleteGraph(t *testing.T) {
	g := ErdosRenyi(5, 100, 3)
	if g.NumEdges() != 10 {
		t.Fatalf("m = %d, want C(5,2)=10", g.NumEdges())
	}
}

func TestRoadMeshStructure(t *testing.T) {
	g := RoadMesh(10, 20, 0, 1)
	if g.NumVertices() != 200 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Grid edges: r*(c-1) + (r-1)*c = 10*19 + 9*20 = 370.
	if g.NumEdges() != 370 {
		t.Fatalf("m = %d, want 370", g.NumEdges())
	}
	if g.MaxDegree() > 4 {
		t.Fatalf("grid degree > 4: %d", g.MaxDegree())
	}
}

func TestRoadMeshExtraEdges(t *testing.T) {
	g0 := RoadMesh(20, 20, 0, 5)
	g1 := RoadMesh(20, 20, 0.3, 5)
	if g1.NumEdges() <= g0.NumEdges() {
		t.Fatal("extra shortcuts did not add edges")
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(100, 4, 0.0, 2)
	// Without rewiring every vertex has exactly k neighbors.
	if g.NumEdges() != 200 {
		t.Fatalf("m = %d, want 200", g.NumEdges())
	}
	for v := int32(0); v < 100; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("degree(%d) = %d", v, g.Degree(v))
		}
	}
	gr := WattsStrogatz(100, 4, 0.5, 2)
	if err := graph.Validate(gr); err != nil {
		t.Fatal(err)
	}
}

func TestPlantedPartitionTruth(t *testing.T) {
	g, truth := PlantedPartition(4, 25, 0.5, 0.01, 9)
	if g.NumVertices() != 100 || len(truth) != 100 {
		t.Fatal("sizes wrong")
	}
	for v, c := range truth {
		if int32(v/25) != c {
			t.Fatalf("truth[%d] = %d", v, c)
		}
	}
	// Intra edges must dominate for these parameters.
	intra, inter := 0, 0
	for _, e := range g.EdgeEndpoints() {
		if truth[e.U] == truth[e.V] {
			intra++
		} else {
			inter++
		}
	}
	if intra <= inter {
		t.Fatalf("intra=%d inter=%d: community structure missing", intra, inter)
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g := PreferentialAttachment(2000, 3, 4)
	if g.NumVertices() != 2000 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
	mean := float64(g.NumArcs()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 5*mean {
		t.Fatalf("no hub: max %d vs mean %.1f", g.MaxDegree(), mean)
	}
}

func TestTreeIsAcyclicConnected(t *testing.T) {
	g := Tree(100, 6)
	if g.NumEdges() != 99 {
		t.Fatalf("m = %d, want 99", g.NumEdges())
	}
}

func TestRingAndComplete(t *testing.T) {
	r := Ring(10)
	if r.NumEdges() != 10 || r.MaxDegree() != 2 {
		t.Fatalf("ring wrong: %v", r)
	}
	k := Complete(6)
	if k.NumEdges() != 15 {
		t.Fatalf("K6 edges = %d", k.NumEdges())
	}
}

func TestRandomWeights(t *testing.T) {
	g := Ring(10)
	wg := RandomWeights(g, 5, 1)
	if !wg.Weighted() {
		t.Fatal("not weighted")
	}
	for _, e := range wg.EdgeEndpoints() {
		if e.W < 1 || e.W > 5 {
			t.Fatalf("weight out of range: %g", e.W)
		}
	}
}

func TestDegreeExponentEstimate(t *testing.T) {
	g := PreferentialAttachment(5000, 3, 8)
	gamma := DegreeExponentEstimate(g)
	// BA networks have gamma ~ 3; accept a generous band.
	if gamma < 1.0 || gamma > 5.0 {
		t.Fatalf("gamma = %.2f, outside [1, 5]", gamma)
	}
}

func TestRewireDegreePreserving(t *testing.T) {
	g := PreferentialAttachment(300, 3, 7)
	r := RewireDegreePreserving(g, 2000, 8)
	if r.NumVertices() != g.NumVertices() || r.NumEdges() != g.NumEdges() {
		t.Fatalf("rewire changed sizes: %v vs %v", r, g)
	}
	// The degree sequence must be exactly preserved, pointwise.
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		if g.Degree(v) != r.Degree(v) {
			t.Fatalf("degree changed at %d: %d -> %d", v, g.Degree(v), r.Degree(v))
		}
	}
	// And the structure should actually change.
	diff := 0
	for _, e := range g.EdgeEndpoints() {
		if !r.HasEdge(e.U, e.V) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("rewiring changed nothing")
	}
}

func TestRewireDestroysCommunityStructure(t *testing.T) {
	// The null model keeps degrees but should erase planted modularity.
	g, truth := PlantedPartition(4, 30, 0.5, 0.01, 9)
	r := RewireDegreePreserving(g, 20000, 10)
	// Modularity of the old truth labels on the rewired graph ~ 0.
	var qOrig, qRewired float64
	qOrig = modularityOf(g, truth)
	qRewired = modularityOf(r, truth)
	if qRewired > qOrig/2 {
		t.Fatalf("rewiring kept structure: %.3f -> %.3f", qOrig, qRewired)
	}
}

// modularityOf avoids importing community (which imports generate).
func modularityOf(g *graph.Graph, assign []int32) float64 {
	m := float64(g.NumEdges())
	if m == 0 {
		return 0
	}
	maxID := int32(0)
	for _, c := range assign {
		if c > maxID {
			maxID = c
		}
	}
	intra := make([]float64, maxID+1)
	deg := make([]float64, maxID+1)
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		deg[assign[v]] += float64(g.Degree(v))
		for _, u := range g.Neighbors(v) {
			if u > v && assign[u] == assign[v] {
				intra[assign[v]]++
			}
		}
	}
	var q float64
	for c := range intra {
		frac := deg[c] / (2 * m)
		q += intra[c]/m - frac*frac
	}
	return q
}
