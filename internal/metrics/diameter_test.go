package metrics

import (
	"testing"

	"snap/internal/bfs"
	"snap/internal/generate"
	"snap/internal/graph"
)

// diameterOracle runs BFS from every vertex of the largest component.
func diameterOracle(g *graph.Graph) int {
	best := 0
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		if g.Degree(v) == 0 {
			continue
		}
		if e := int(bfs.Serial(g, v, nil).MaxDist()); e > best {
			best = e
		}
	}
	return best
}

func TestDiameterPath(t *testing.T) {
	g := buildGraph(t, 9, [][2]int32{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8},
	})
	if d := Diameter(g); d != 8 {
		t.Fatalf("path diameter = %d, want 8", d)
	}
}

func TestDiameterRing(t *testing.T) {
	g := generate.Ring(12)
	if d := Diameter(g); d != 6 {
		t.Fatalf("C12 diameter = %d, want 6", d)
	}
	odd := generate.Ring(13)
	if d := Diameter(odd); d != 6 {
		t.Fatalf("C13 diameter = %d, want 6", d)
	}
}

func TestDiameterMatchesOracleOnRandomGraphs(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		g := generate.ErdosRenyi(120, 240, int64(trial))
		want := diameterOracle(g)
		if got := Diameter(g); got != want {
			t.Fatalf("trial %d: diameter = %d, want %d", trial, got, want)
		}
	}
	for trial := 0; trial < 4; trial++ {
		g := generate.RMAT(200, 800, generate.DefaultRMAT(), int64(trial))
		want := diameterOracle(g)
		if got := Diameter(g); got != want {
			t.Fatalf("rmat trial %d: diameter = %d, want %d", trial, got, want)
		}
	}
}

func TestDiameterEdgeless(t *testing.T) {
	g, _ := graph.Build(5, nil, graph.BuildOptions{})
	if d := Diameter(g); d != 0 {
		t.Fatalf("edgeless diameter = %d", d)
	}
}
