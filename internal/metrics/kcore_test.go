package metrics

import (
	"testing"
	"testing/quick"

	"snap/internal/generate"
	"snap/internal/graph"
)

func TestKCoreCliqueWithTail(t *testing.T) {
	// K4 (core 3) with a path tail (core 1).
	g, _ := graph.Build(6, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3},
		{U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3},
		{U: 3, V: 4}, {U: 4, V: 5},
	}, graph.BuildOptions{})
	core := KCore(g)
	want := []int32{3, 3, 3, 3, 1, 1}
	for v, w := range want {
		if core[v] != w {
			t.Fatalf("core[%d] = %d, want %d (all: %v)", v, core[v], w, core)
		}
	}
	if Degeneracy(g) != 3 {
		t.Fatalf("degeneracy = %d", Degeneracy(g))
	}
	sizes := CoreSizes(g)
	if sizes[3] != 4 || sizes[1] != 6 {
		t.Fatalf("core sizes = %v", sizes)
	}
}

func TestKCoreRing(t *testing.T) {
	g := generate.Ring(9)
	for v, c := range KCore(g) {
		if c != 2 {
			t.Fatalf("ring core[%d] = %d, want 2", v, c)
		}
	}
}

func TestKCoreTree(t *testing.T) {
	g := generate.Tree(50, 3)
	for v, c := range KCore(g) {
		if c != 1 {
			t.Fatalf("tree core[%d] = %d, want 1", v, c)
		}
	}
}

// kCoreOracle peels iteratively by brute force.
func kCoreOracle(g *graph.Graph) []int32 {
	n := g.NumVertices()
	core := make([]int32, n)
	removed := make([]bool, n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(int32(v))
	}
	for k := int32(0); ; k++ {
		// Remove all vertices of degree <= k repeatedly.
		anyLeft := false
		for changed := true; changed; {
			changed = false
			for v := 0; v < n; v++ {
				if removed[v] || deg[v] > int(k) {
					continue
				}
				removed[v] = true
				core[v] = k
				changed = true
				for _, u := range g.Neighbors(int32(v)) {
					if !removed[u] {
						deg[u]--
					}
				}
			}
		}
		for v := 0; v < n; v++ {
			if !removed[v] {
				anyLeft = true
			}
		}
		if !anyLeft {
			return core
		}
	}
}

func TestQuickKCoreMatchesOracle(t *testing.T) {
	check := func(seed uint8) bool {
		g := generate.ErdosRenyi(60, 150, int64(seed))
		fast := KCore(g)
		slow := kCoreOracle(g)
		for v := range fast {
			if fast[v] != slow[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// The k-core invariant: inside the k-core subgraph, every vertex has
// at least k neighbors that are also in the k-core.
func TestKCoreInternalDegreeInvariant(t *testing.T) {
	g := generate.RMAT(500, 2500, generate.DefaultRMAT(), 5)
	core := KCore(g)
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		k := core[v]
		cnt := int32(0)
		for _, u := range g.Neighbors(v) {
			if core[u] >= k {
				cnt++
			}
		}
		if cnt < k {
			t.Fatalf("vertex %d: core %d but only %d same-or-higher-core neighbors", v, k, cnt)
		}
	}
}
