package metrics

import (
	"testing"

	"snap/internal/generate"
	"snap/internal/sketch"
)

// TestAvgPathLengthApproxRoutesToSketch pins that the Approx option is
// a pure routing decision: the metrics entry point returns exactly the
// sketch kernel's numbers.
func TestAvgPathLengthApproxRoutesToSketch(t *testing.T) {
	g := generate.RMAT(2000, 8000, generate.DefaultRMAT(), 3)
	avg, diam := AvgPathLength(g, PathLengthOptions{Approx: true, Seed: 5, Registers: 128})
	want := sketch.ANF(g, sketch.ANFOptions{Seed: 5, Registers: 128})
	if avg != want.AvgPathLength || diam != want.DiameterEstimate {
		t.Fatalf("Approx routing: got (%v, %d), want (%v, %d)",
			avg, diam, want.AvgPathLength, want.DiameterEstimate)
	}
}

// TestAvgPathLengthApproxNearExact sanity-checks the approximate tier
// against the exact tier on a graph small enough for all-pairs BFS.
func TestAvgPathLengthApproxNearExact(t *testing.T) {
	g := generate.ErdosRenyi(1000, 4000, 7)
	exact, _ := AvgPathLength(g, PathLengthOptions{}) // n <= 1024: all-pairs
	approx, _ := AvgPathLength(g, PathLengthOptions{Approx: true, Registers: 256})
	if exact == 0 {
		t.Fatal("exact tier returned 0")
	}
	if rel := (approx - exact) / exact; rel > 0.15 || rel < -0.15 {
		t.Fatalf("approx avg %.3f vs exact %.3f (%.1f%% off)", approx, exact, 100*rel)
	}
}

// TestDiameterWithOptions pins both routes: the default is the exact
// iFUB value, Approx is the sketch's effective diameter verbatim.
func TestDiameterWithOptions(t *testing.T) {
	g := generate.RMAT(1500, 6000, generate.DefaultRMAT(), 9)
	if got, want := DiameterWithOptions(g, DiameterOptions{}), float64(Diameter(g)); got != want {
		t.Fatalf("exact route: %v, want %v", got, want)
	}
	opt := DiameterOptions{Approx: true, Quantile: 0.95, Registers: 128, Seed: 4}
	got := DiameterWithOptions(g, opt)
	want := sketch.ANF(g, sketch.ANFOptions{Registers: 128, Seed: 4, Quantile: 0.95}).EffectiveDiameter
	if got != want {
		t.Fatalf("approx route: %v, want %v", got, want)
	}
	// The effective diameter of the sketch cannot exceed the exact
	// diameter by more than the interpolation slack on a connected
	// small-world graph; sanity-bound it.
	if got > float64(Diameter(g))+1 {
		t.Fatalf("effective diameter %v exceeds exact diameter %d + 1", got, Diameter(g))
	}
}

// TestAvgPathLengthSeedZeroIsDefault pins the unified seeding contract
// at this layer: seed 0 and sketch.DefaultSeed sample the same
// sources.
func TestAvgPathLengthSeedZeroIsDefault(t *testing.T) {
	g := generate.RMAT(4000, 16000, generate.DefaultRMAT(), 11)
	zeroAvg, zeroD := AvgPathLength(g, PathLengthOptions{Samples: 64, Seed: 0})
	defAvg, defD := AvgPathLength(g, PathLengthOptions{Samples: 64, Seed: sketch.DefaultSeed})
	if zeroAvg != defAvg || zeroD != defD {
		t.Fatalf("seed 0 (%v, %d) differs from DefaultSeed (%v, %d)", zeroAvg, zeroD, defAvg, defD)
	}
}
