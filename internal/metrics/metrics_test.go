package metrics

import (
	"math"
	"testing"

	"snap/internal/generate"
	"snap/internal/graph"
)

func buildGraph(t *testing.T, n int, pairs [][2]int32) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, len(pairs))
	for i, p := range pairs {
		edges[i] = graph.Edge{U: p[0], V: p[1]}
	}
	g, err := graph.Build(n, edges, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDegrees(t *testing.T) {
	g := buildGraph(t, 4, [][2]int32{{0, 1}, {0, 2}, {0, 3}})
	st := Degrees(g)
	if st.Min != 1 || st.Max != 3 || st.Mean != 1.5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Hist[1] != 3 || st.Hist[3] != 1 {
		t.Fatalf("hist = %v", st.Hist)
	}
}

func TestLocalClusteringTriangleAndStar(t *testing.T) {
	tri := buildGraph(t, 3, [][2]int32{{0, 1}, {1, 2}, {0, 2}})
	cc := LocalClustering(tri, 2)
	for v, c := range cc {
		if math.Abs(c-1) > 1e-12 {
			t.Fatalf("triangle cc[%d] = %g", v, c)
		}
	}
	star := buildGraph(t, 4, [][2]int32{{0, 1}, {0, 2}, {0, 3}})
	cs := LocalClustering(star, 2)
	if cs[0] != 0 || cs[1] != 0 {
		t.Fatalf("star cc = %v", cs)
	}
}

func TestGlobalClusteringKnownValue(t *testing.T) {
	// Triangle + pendant vertex attached to vertex 0:
	// cc(0) = 1/3 (pairs {1,2},{1,3},{2,3}, only {1,2} linked),
	// cc(1) = cc(2) = 1, cc(3) = 0 -> mean = (1/3 + 1 + 1 + 0)/4.
	g := buildGraph(t, 4, [][2]int32{{0, 1}, {1, 2}, {0, 2}, {0, 3}})
	got := GlobalClustering(g, 1)
	want := (1.0/3 + 1 + 1 + 0) / 4
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("global clustering = %g, want %g", got, want)
	}
}

func TestTransitivity(t *testing.T) {
	// Same graph: 1 triangle, connected triples: deg choose 2 summed =
	// C(3,2)+C(2,2)+C(2,2)+0 = 3+1+1 = 5; transitivity = 3*1/ (3+1+1)...
	// with our per-vertex counting closed/triples = 3/5.
	g := buildGraph(t, 4, [][2]int32{{0, 1}, {1, 2}, {0, 2}, {0, 3}})
	got := Transitivity(g, 2)
	if math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("transitivity = %g, want 0.6", got)
	}
}

func TestTransitivityCompleteGraph(t *testing.T) {
	g := generate.Complete(6)
	if got := Transitivity(g, 3); math.Abs(got-1) > 1e-12 {
		t.Fatalf("K6 transitivity = %g", got)
	}
}

func TestAssortativityStarIsNegative(t *testing.T) {
	// Stars are maximally disassortative.
	g := buildGraph(t, 5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	if r := Assortativity(g); r >= 0 {
		t.Fatalf("star assortativity = %g, want < 0", r)
	}
}

func TestAssortativityRegularGraphUndefined(t *testing.T) {
	// On a cycle every endpoint degree is 2: denominator 0 -> 0.
	g := generate.Ring(8)
	if r := Assortativity(g); r != 0 {
		t.Fatalf("ring assortativity = %g, want 0 (degenerate)", r)
	}
}

func TestAvgNeighborDegree(t *testing.T) {
	g := buildGraph(t, 4, [][2]int32{{0, 1}, {0, 2}, {0, 3}})
	knn := AvgNeighborDegree(g)
	// Leaves (deg 1) all neighbor the hub (deg 3): knn[1] = 3.
	if knn[1] != 3 {
		t.Fatalf("knn[1] = %g, want 3", knn[1])
	}
	// Hub (deg 3) neighbors leaves: knn[3] = 1.
	if knn[3] != 1 {
		t.Fatalf("knn[3] = %g, want 1", knn[3])
	}
	if !math.IsNaN(knn[2]) {
		t.Fatalf("knn[2] should be NaN for missing class, got %g", knn[2])
	}
}

func TestRichClub(t *testing.T) {
	// K4 plus a pendant: vertices of degree > 1 are the K4, whose
	// density is 1.
	g := buildGraph(t, 5, [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {0, 4},
	})
	phi := RichClub(g)
	if math.Abs(phi[1]-1.0) > 1e-12 {
		t.Fatalf("phi(1) = %g, want 1 (K4 core)", phi[1])
	}
	// phi(0): all 5 vertices, 7 edges of C(5,2)=10 pairs.
	if math.Abs(phi[0]-0.7) > 1e-12 {
		t.Fatalf("phi(0) = %g, want 0.7", phi[0])
	}
}

func TestAvgPathLengthPath(t *testing.T) {
	g := buildGraph(t, 4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	avg, diam := AvgPathLength(g, PathLengthOptions{})
	// All pairs distances: 1,2,3,1,2,1 (each counted twice by BFS from
	// both ends, same mean): mean = 10/6.
	if math.Abs(avg-10.0/6) > 1e-9 {
		t.Fatalf("avg = %g, want %g", avg, 10.0/6)
	}
	if diam != 3 {
		t.Fatalf("diameter LB = %d, want 3", diam)
	}
}

func TestAvgPathLengthSmallWorldIsShort(t *testing.T) {
	g := generate.RMAT(2048, 16384, generate.DefaultRMAT(), 2)
	avg, _ := AvgPathLength(g, PathLengthOptions{Samples: 64, Seed: 1})
	if avg <= 0 || avg > 8 {
		t.Fatalf("small-world avg path length = %g, expected short", avg)
	}
}

func TestIsBipartite(t *testing.T) {
	even := generate.Ring(8)
	if !IsBipartite(even) {
		t.Fatal("even cycle should be bipartite")
	}
	odd := generate.Ring(7)
	if IsBipartite(odd) {
		t.Fatal("odd cycle should not be bipartite")
	}
	tri := buildGraph(t, 3, [][2]int32{{0, 1}, {1, 2}, {0, 2}})
	if IsBipartite(tri) {
		t.Fatal("triangle should not be bipartite")
	}
}

func BenchmarkLocalClustering(b *testing.B) {
	g := generate.RMAT(1<<14, 1<<16, generate.DefaultRMAT(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LocalClustering(g, 0)
	}
}

func TestDensity(t *testing.T) {
	k := generate.Complete(5)
	if d := Density(k); math.Abs(d-1) > 1e-12 {
		t.Fatalf("K5 density = %g", d)
	}
	g, _ := graph.Build(4, []graph.Edge{{U: 0, V: 1}}, graph.BuildOptions{})
	if d := Density(g); math.Abs(d-1.0/6) > 1e-12 {
		t.Fatalf("density = %g, want 1/6", d)
	}
}

func TestReciprocity(t *testing.T) {
	g, _ := graph.Build(3, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 0}, {U: 1, V: 2},
	}, graph.BuildOptions{Directed: true})
	// Arcs: 0->1, 1->0, 1->2. Mutual: the first two. 2/3.
	if r := Reciprocity(g); math.Abs(r-2.0/3) > 1e-12 {
		t.Fatalf("reciprocity = %g, want 2/3", r)
	}
	und := generate.Ring(5)
	if Reciprocity(und) != 1 {
		t.Fatal("undirected reciprocity must be 1")
	}
}

func TestPowerLawAlpha(t *testing.T) {
	g := generate.PreferentialAttachment(8000, 3, 11)
	alpha, cnt := PowerLawAlpha(g, 3)
	if cnt < 1000 {
		t.Fatalf("too few samples: %d", cnt)
	}
	// BA graphs have alpha ~= 3.
	if alpha < 2.0 || alpha > 4.0 {
		t.Fatalf("alpha = %.2f, outside [2, 4]", alpha)
	}
	if a, n := PowerLawAlpha(generate.Ring(3), 100); !math.IsNaN(a) || n != 0 {
		t.Fatalf("degenerate alpha should be NaN: %v %d", a, n)
	}
}

func TestCCDF(t *testing.T) {
	g := buildGraph(t, 4, [][2]int32{{0, 1}, {0, 2}, {0, 3}})
	ccdf := CCDF(g)
	// All vertices have degree >= 0 and >= 1; only the hub >= 2.
	if ccdf[0] != 1 || ccdf[1] != 1 {
		t.Fatalf("ccdf low: %v", ccdf)
	}
	if math.Abs(ccdf[3]-0.25) > 1e-12 {
		t.Fatalf("ccdf[3] = %g, want 0.25", ccdf[3])
	}
}
