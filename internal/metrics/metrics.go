// Package metrics implements the network-analysis indices SNAP exposes
// for exploratory study of small-world networks: degree statistics,
// clustering coefficient, assortativity, average neighbor
// connectivity, rich-club coefficient, and (sampled) average shortest
// path length. Most are linear-work and parallelized over vertices.
package metrics

import (
	"math"
	"sort"

	"snap/internal/bfs"
	"snap/internal/graph"
	"snap/internal/par"
	"snap/internal/sketch"
)

// DegreeStats summarizes the degree distribution.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	// Hist[d] is the number of vertices with degree d.
	Hist []int
}

// Degrees computes degree statistics.
func Degrees(g *graph.Graph) DegreeStats {
	n := g.NumVertices()
	st := DegreeStats{Min: math.MaxInt}
	if n == 0 {
		st.Min = 0
		return st
	}
	maxd := 0
	for v := 0; v < n; v++ {
		d := g.Degree(int32(v))
		if d < st.Min {
			st.Min = d
		}
		if d > maxd {
			maxd = d
		}
		st.Mean += float64(d)
	}
	st.Max = maxd
	st.Mean /= float64(n)
	st.Hist = make([]int, maxd+1)
	for v := 0; v < n; v++ {
		st.Hist[g.Degree(int32(v))]++
	}
	return st
}

// LocalClustering returns the local clustering coefficient of every
// vertex: the fraction of pairs of neighbors that are themselves
// adjacent. Vertices of degree < 2 get 0. Neighbor-pair adjacency is
// tested by sorted-adjacency intersection, parallelized over vertices
// with guided scheduling (per-vertex work is O(deg^2)-ish and skewed).
func LocalClustering(g *graph.Graph, workers int) []float64 {
	if workers <= 0 {
		workers = par.Workers()
	}
	n := g.NumVertices()
	out := make([]float64, n)
	par.ForGuidedN(n, 64, workers, func(vi int) {
		v := int32(vi)
		adj := g.Neighbors(v)
		d := len(adj)
		if d < 2 {
			return
		}
		links := 0
		for i := 0; i < d; i++ {
			u := adj[i]
			if u == v {
				continue
			}
			links += graph.SortedIntersectCount(g.Neighbors(u), adj[i+1:])
		}
		out[vi] = 2 * float64(links) / (float64(d) * float64(d-1))
	})
	return out
}

// GlobalClustering returns the mean local clustering coefficient (the
// Watts–Strogatz network clustering coefficient).
func GlobalClustering(g *graph.Graph, workers int) float64 {
	cc := LocalClustering(g, workers)
	if len(cc) == 0 {
		return 0
	}
	var s float64
	for _, c := range cc {
		s += c
	}
	return s / float64(len(cc))
}

// Transitivity returns the global transitivity ratio
// 3*triangles / #connected-triples.
func Transitivity(g *graph.Graph, workers int) float64 {
	if workers <= 0 {
		workers = par.Workers()
	}
	n := g.NumVertices()
	closed := make([]int64, workers)
	triples := make([]int64, workers)
	par.ForChunkedN(n, workers, func(w, lo, hi int) {
		var c, t int64
		for vi := lo; vi < hi; vi++ {
			v := int32(vi)
			adj := g.Neighbors(v)
			d := int64(len(adj))
			t += d * (d - 1) / 2
			for i := 0; i < len(adj); i++ {
				c += int64(graph.SortedIntersectCount(g.Neighbors(adj[i]), adj[i+1:]))
			}
		}
		closed[w] += c
		triples[w] += t
	})
	var c, t int64
	for w := 0; w < workers; w++ {
		c += closed[w]
		t += triples[w]
	}
	if t == 0 {
		return 0
	}
	// Each triangle is counted once per apex vertex whose two lower
	// neighbors close it; summing the pairwise intersections counts
	// each triangle exactly three times across its three vertices.
	return float64(c) / float64(t)
}

// Assortativity returns Newman's degree assortativity coefficient r:
// the Pearson correlation of the degrees at the two ends of each edge.
// r > 0 indicates assortative mixing (hubs link to hubs); r < 0
// indicates disassortative mixing, typical of technological networks.
func Assortativity(g *graph.Graph) float64 {
	var s1, s2, s3 float64 // sum of products, sum of (j+k)/2, sum of (j^2+k^2)/2
	m := 0
	for _, e := range g.EdgeEndpoints() {
		j := float64(g.Degree(e.U))
		k := float64(g.Degree(e.V))
		s1 += j * k
		s2 += (j + k) / 2
		s3 += (j*j + k*k) / 2
		m++
	}
	if m == 0 {
		return 0
	}
	fm := float64(m)
	num := s1/fm - (s2/fm)*(s2/fm)
	den := s3/fm - (s2/fm)*(s2/fm)
	if den == 0 {
		return 0
	}
	return num / den
}

// AvgNeighborDegree returns, for each degree class k, the average
// degree of the neighbors of degree-k vertices (knn(k), the average
// neighbor connectivity). Missing degree classes hold NaN.
func AvgNeighborDegree(g *graph.Graph) []float64 {
	n := g.NumVertices()
	maxd := g.MaxDegree()
	sum := make([]float64, maxd+1)
	cnt := make([]float64, maxd+1)
	for vi := 0; vi < n; vi++ {
		v := int32(vi)
		d := g.Degree(v)
		if d == 0 {
			continue
		}
		var s float64
		for _, u := range g.Neighbors(v) {
			s += float64(g.Degree(u))
		}
		sum[d] += s / float64(d)
		cnt[d]++
	}
	out := make([]float64, maxd+1)
	for k := range out {
		if cnt[k] == 0 {
			out[k] = math.NaN()
		} else {
			out[k] = sum[k] / cnt[k]
		}
	}
	return out
}

// RichClub returns the rich-club coefficient phi(k) for each degree
// threshold k: the edge density among vertices of degree > k.
// Entries where fewer than two vertices qualify hold NaN.
func RichClub(g *graph.Graph) []float64 {
	maxd := g.MaxDegree()
	out := make([]float64, maxd+1)
	n := g.NumVertices()
	// Sort vertices by degree descending so each threshold is a prefix.
	verts := make([]int32, n)
	for i := range verts {
		verts[i] = int32(i)
	}
	sort.Slice(verts, func(i, j int) bool {
		return g.Degree(verts[i]) > g.Degree(verts[j])
	})
	inClub := make([]bool, n)
	idx := 0
	edgesIn := 0
	for k := maxd; k >= 0; k-- {
		// Admit all vertices with degree > k.
		for idx < n && g.Degree(verts[idx]) > k {
			v := verts[idx]
			for _, u := range g.Neighbors(v) {
				if inClub[u] {
					edgesIn++
				}
			}
			inClub[v] = true
			idx++
		}
		nk := idx
		if nk < 2 {
			out[k] = math.NaN()
			continue
		}
		out[k] = 2 * float64(edgesIn) / (float64(nk) * float64(nk-1))
	}
	return out
}

// PathLengthOptions configures AvgPathLength.
type PathLengthOptions struct {
	// Samples bounds the number of BFS sources; <= 0 runs all-pairs
	// (exact) when n <= 1024 and 256 samples otherwise. Ignored when
	// Approx is set (the sketch tier touches every vertex at once).
	Samples int
	// Seed drives source sampling (and the sketch hash under Approx);
	// 0 means the repo-wide deterministic default (sketch.DefaultSeed).
	Seed    int64
	Workers int
	// Approx routes the whole computation through the HyperANF sketch
	// tier (internal/sketch): one union-sweep pass over all vertices
	// simultaneously instead of per-source traversals. Orders of
	// magnitude faster on large small-world graphs at a few percent
	// relative error; the returned diameter lower bound becomes the
	// sketch's diameter estimate (not a certified bound).
	Approx bool
	// Registers is the per-vertex HLL register count under Approx
	// (0 means 64; see sketch.ANFOptions.Registers).
	Registers int
}

// AvgPathLength estimates the average shortest-path length over
// reachable pairs by BFS from sampled sources, and also returns the
// largest distance seen (a diameter lower bound). With Approx set it
// delegates to the HyperANF neighborhood-function kernel, whose mean
// distance covers ALL reachable pairs (no source sampling error, HLL
// estimation error instead).
func AvgPathLength(g *graph.Graph, opt PathLengthOptions) (avg float64, diamLB int) {
	n := g.NumVertices()
	if n == 0 {
		return 0, 0
	}
	if opt.Approx {
		r := sketch.ANF(g, sketch.ANFOptions{
			Registers: opt.Registers,
			Seed:      opt.Seed,
			Workers:   opt.Workers,
		})
		return r.AvgPathLength, r.DiameterEstimate
	}
	samples := opt.Samples
	if samples <= 0 {
		if n <= 1024 {
			samples = n
		} else {
			samples = 256
		}
	}
	if samples > n {
		samples = n
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	sources := sketch.SampleVertices(n, samples, opt.Seed)
	// Per-worker partial sums, padded to a cache line so adjacent
	// workers' updates do not false-share; merged after the sweep. Each
	// source contributes O(1) reduction work: the workspace tracks the
	// distance sum, reach count, and eccentricity of its traversal.
	type plAcc struct {
		dist  int64
		pairs int64
		maxD  int32
		_     [44]byte
	}
	accs := make([]plAcc, workers)
	bfs.MultiSourceWorkspace(g, sources, -1, workers, func(w, _ int, ws *bfs.Workspace) {
		a := &accs[w]
		a.dist += ws.SumDist()
		a.pairs += int64(ws.Reached() - 1) // every reached vertex but the source
		if m := ws.MaxDist(); m > a.maxD {
			a.maxD = m
		}
	})
	var totalDist, totalPairs int64
	var maxD int32
	for i := range accs {
		totalDist += accs[i].dist
		totalPairs += accs[i].pairs
		if accs[i].maxD > maxD {
			maxD = accs[i].maxD
		}
	}
	if totalPairs == 0 {
		return 0, 0
	}
	return float64(totalDist) / float64(totalPairs), int(maxD)
}

// IsBipartite reports whether the graph is 2-colorable (one of the
// "specific graph class" checks the paper's preprocessing uses to pick
// analysis algorithms). Each component is colored by BFS-level parity
// through the shared frontier engine, then a single arc scan looks for
// a same-side edge (an odd cycle).
func IsBipartite(g *graph.Graph) bool {
	n := g.NumVertices()
	side := make([]int8, n) // 0 = unvisited, 1 / 2 = level parity
	ws := bfs.AcquireWorkspace(n)
	defer bfs.ReleaseWorkspace(ws)
	for root := int32(0); int(root) < n; root++ {
		if side[root] != 0 {
			continue
		}
		ws.Run(g, root, nil, -1)
		for _, v := range ws.Order() {
			side[v] = int8(1 + ws.Dist(v)&1)
		}
	}
	for v := int32(0); int(v) < n; v++ {
		for _, u := range g.Neighbors(v) {
			if side[u] == side[v] && u != v {
				return false
			}
		}
	}
	return true
}

// Density is the fraction of possible edges present: 2m / (n(n-1))
// for undirected graphs, m / (n(n-1)) for directed graphs.
func Density(g *graph.Graph) float64 {
	n := float64(g.NumVertices())
	if n < 2 {
		return 0
	}
	m := float64(g.NumEdges())
	if g.Directed() {
		return m / (n * (n - 1))
	}
	return 2 * m / (n * (n - 1))
}

// Reciprocity is the fraction of arcs of a directed graph whose
// reverse arc also exists (1 for undirected graphs by construction).
func Reciprocity(g *graph.Graph) float64 {
	if !g.Directed() {
		return 1
	}
	arcs := 0
	mutual := 0
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			arcs++
			if g.HasEdge(u, v) {
				mutual++
			}
		}
	}
	if arcs == 0 {
		return 0
	}
	return float64(mutual) / float64(arcs)
}

// PowerLawAlpha estimates the exponent of a power-law degree
// distribution by the discrete maximum-likelihood estimator
// (Clauset–Shalizi–Newman): alpha ≈ 1 + n / Σ ln(d_i / (dmin − 1/2)),
// over vertices with degree >= dmin. Returns the estimate and the
// number of samples used; NaN/0 when fewer than two qualify.
func PowerLawAlpha(g *graph.Graph, dmin int) (float64, int) {
	if dmin < 1 {
		dmin = 1
	}
	var sum float64
	cnt := 0
	for v := 0; v < g.NumVertices(); v++ {
		d := g.Degree(int32(v))
		if d >= dmin {
			sum += math.Log(float64(d) / (float64(dmin) - 0.5))
			cnt++
		}
	}
	if cnt < 2 || sum == 0 {
		return math.NaN(), cnt
	}
	return 1 + float64(cnt)/sum, cnt
}

// CCDF returns the complementary cumulative degree distribution:
// out[d] = fraction of vertices with degree >= d.
func CCDF(g *graph.Graph) []float64 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	st := Degrees(g)
	out := make([]float64, len(st.Hist)+1)
	acc := 0
	for d := len(st.Hist) - 1; d >= 0; d-- {
		acc += st.Hist[d]
		out[d] = float64(acc) / float64(n)
	}
	return out[:len(st.Hist)]
}
